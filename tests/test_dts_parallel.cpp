// Thread-count invariance suite for the sharded population engine.
//
// The contract under test: DtsAggregates and DtsCounters are
// bit-identical for every sim_threads value — not statistically close,
// EXPECT_EQ on every counter, every double sum, every histogram bin and
// every residency mode. The schedule (fixed time slices, footprint
// conflict shards, counter-based RNG streams, fixed merge orders) makes
// that hold by construction; this suite is the regression fence.
//
// DtsParallelStress.HighContentionFootprints doubles as the TSan stress
// target (tools/run_sanitizers.sh tsan preset): every node on a handful
// of sites so footprint shards are as contended as the scheduler allows.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/scenario.h"
#include "energy/power_model.h"
#include "net/dts_batch.h"
#include "net/dts_network.h"
#include "obs/metrics.h"
#include "stats/histogram.h"

namespace {

using namespace sinet;
using namespace sinet::net;

DtsNetworkConfig parallel_config(std::size_t nodes, double duration_days) {
  DtsNetworkConfig cfg = scale_fleet_config(
      nodes, 22, 16, core::campaign_epoch_jd(), duration_days);
  // Paper constellation: its contact windows stay in the global cache
  // across cases, so only the first run pays pass prediction.
  cfg.constellation = orbit::paper_constellation("Tianqi");
  cfg.downlink.carrier_hz = cfg.constellation.dts_frequency_hz;
  cfg.uplink.carrier_hz = cfg.constellation.dts_frequency_hz;
  cfg.trace_node_threshold = 64;  // force the sharded aggregate engine
  return cfg;
}

void expect_histograms_equal(const stats::Histogram& a,
                             const stats::Histogram& b, const char* name) {
  SCOPED_TRACE(name);
  ASSERT_EQ(a.bin_count(), b.bin_count());
  for (std::size_t i = 0; i < a.bin_count(); ++i)
    EXPECT_EQ(a.count(i), b.count(i)) << "bin " << i;
  EXPECT_EQ(a.underflow(), b.underflow());
  EXPECT_EQ(a.overflow(), b.overflow());
  EXPECT_EQ(a.nan(), b.nan());
  EXPECT_EQ(a.total(), b.total());
}

void expect_results_identical(const DtsNetworkResult& a,
                              const DtsNetworkResult& b) {
  EXPECT_EQ(a.counters.beacons_sent, b.counters.beacons_sent);
  EXPECT_EQ(a.counters.beacons_heard, b.counters.beacons_heard);
  EXPECT_EQ(a.counters.uplink_attempts, b.counters.uplink_attempts);
  EXPECT_EQ(a.counters.uplinks_received, b.counters.uplinks_received);
  EXPECT_EQ(a.counters.uplinks_collided, b.counters.uplinks_collided);
  EXPECT_EQ(a.counters.acks_sent, b.counters.acks_sent);
  EXPECT_EQ(a.counters.acks_received, b.counters.acks_received);
  EXPECT_EQ(a.counters.duplicate_uplinks, b.counters.duplicate_uplinks);
  EXPECT_EQ(a.counters.satellite_buffer_drops,
            b.counters.satellite_buffer_drops);
  EXPECT_EQ(a.counters.background_losses, b.counters.background_losses);

  EXPECT_EQ(a.agg.reports_generated, b.agg.reports_generated);
  EXPECT_EQ(a.agg.reports_delivered, b.agg.reports_delivered);
  EXPECT_EQ(a.agg.eligible_generated, b.agg.eligible_generated);
  EXPECT_EQ(a.agg.eligible_delivered, b.agg.eligible_delivered);
  EXPECT_EQ(a.agg.local_buffer_drops, b.agg.local_buffer_drops);
  EXPECT_EQ(a.agg.packets_abandoned, b.agg.packets_abandoned);
  EXPECT_EQ(a.agg.sum_end_to_end_s, b.agg.sum_end_to_end_s);
  EXPECT_EQ(a.agg.sum_wait_s, b.agg.sum_wait_s);
  EXPECT_EQ(a.agg.wait_samples, b.agg.wait_samples);
  EXPECT_EQ(a.agg.sum_dts_transfer_s, b.agg.sum_dts_transfer_s);
  EXPECT_EQ(a.agg.sum_delivery_s, b.agg.sum_delivery_s);
  EXPECT_EQ(a.agg.breakdown_samples, b.agg.breakdown_samples);

  expect_histograms_equal(a.agg.latency_s, b.agg.latency_s, "latency_s");
  expect_histograms_equal(a.agg.wait_s, b.agg.wait_s, "wait_s");
  expect_histograms_equal(a.agg.attempts, b.agg.attempts, "attempts");

  for (int m = 0; m < energy::kModeCount; ++m) {
    const auto mode = static_cast<energy::Mode>(m);
    EXPECT_EQ(a.agg.fleet_residency.seconds_in(mode),
              b.agg.fleet_residency.seconds_in(mode))
        << "residency mode " << m;
  }
}

TEST(DtsParallel, ThreadCountInvariance) {
  // Two scenario shapes (ALOHA w/ congestion, scheduled w/ ADR) so the
  // invariance covers both access schemes' draw sequences.
  for (int variant = 0; variant < 2; ++variant) {
    SCOPED_TRACE("variant " + std::to_string(variant));
    DtsNetworkConfig cfg = parallel_config(2000, 0.1);
    cfg.seed = 7000 + static_cast<std::uint64_t>(variant);
    if (variant == 1) {
      cfg.uplink_access = UplinkAccess::kScheduled;
      cfg.adaptive_sf = true;
    }
    cfg.sim_threads = 1;
    const DtsNetworkResult reference = run_dts_network(cfg);
    ASSERT_GT(reference.agg.reports_generated, 0u);
    ASSERT_GT(reference.counters.beacons_sent, 0u);
    for (const unsigned threads : {2u, 4u, 0u}) {  // 0 = all hw threads
      SCOPED_TRACE("threads " + std::to_string(threads));
      cfg.sim_threads = threads;
      expect_results_identical(reference, run_dts_network(cfg));
    }
  }
}

TEST(DtsParallel, ExactModeIgnoresThreads) {
  // Below the trace threshold the bit-parity exact engine runs; the
  // thread knob must not reroute those configs into the sharded engine.
  DtsNetworkConfig cfg = parallel_config(48, 0.1);
  cfg.trace_node_threshold = 64;  // 48 nodes <= threshold: exact mode
  cfg.sim_threads = 1;
  const DtsNetworkResult serial = run_dts_network(cfg);
  cfg.sim_threads = 4;
  const DtsNetworkResult threaded = run_dts_network(cfg);
  ASSERT_FALSE(serial.uplinks.empty()) << "exact mode must keep traces";
  ASSERT_EQ(serial.uplinks.size(), threaded.uplinks.size());
  for (std::size_t i = 0; i < serial.uplinks.size(); ++i) {
    EXPECT_EQ(serial.uplinks[i].sequence, threaded.uplinks[i].sequence);
    EXPECT_EQ(serial.uplinks[i].node, threaded.uplinks[i].node);
    EXPECT_EQ(serial.uplinks[i].server_rx_unix_s,
              threaded.uplinks[i].server_rx_unix_s);
    EXPECT_EQ(serial.uplinks[i].delivered, threaded.uplinks[i].delivered);
  }
  expect_results_identical(serial, threaded);
}

TEST(DtsParallel, ShortProbeRunsKeepNonzeroEligiblePopulation) {
  // Regression: scale_ablation's 100k-node probe runs 0.05 days
  // (4320 s), shorter than the default 6 h aggregate tail exclusion —
  // every report was classified ineligible and the probe published
  // dts.eligible_generated = 0 / dts.eligible_pdr = 0. The exclusion is
  // now clamped to half the run duration.
  DtsNetworkConfig cfg = parallel_config(2000, 0.05);
  ASSERT_LT(cfg.duration_days * 86400.0, cfg.aggregate_tail_exclusion_s)
      << "regression config must be shorter than the configured tail";
  const DtsNetworkResult res = run_dts_network(cfg);
  ASSERT_GT(res.agg.reports_generated, 0u);
  EXPECT_GT(res.agg.eligible_generated, 0u)
      << "tail exclusion swallowed the whole probe run";
  EXPECT_LE(res.agg.eligible_delivered, res.agg.eligible_generated);
  EXPECT_LE(res.agg.eligible_generated, res.agg.reports_generated);
  // The clamp: exactly the first half of the run stays eligible.
  EXPECT_EQ(net::detail::effective_tail_exclusion_s(cfg),
            cfg.duration_days * 86400.0 / 2.0);
}

TEST(DtsParallelStress, HighContentionFootprints) {
  // Every node on 4 sites inside one footprint-sized patch: the
  // conflict scheduler gets maximal location sharing, so this is the
  // worst case for shard isolation. Run under TSan via
  // tools/run_sanitizers.sh; the EXPECT_EQs double as a determinism
  // check under real contention.
  DtsNetworkConfig cfg = parallel_config(10000, 0.05);
  cfg.fleet.sites.clear();
  for (int i = 0; i < 4; ++i)
    cfg.fleet.sites.push_back(
        orbit::Geodetic{22.7 + 0.2 * i, 100.9 + 0.2 * i, 1.0});
  cfg.sim_threads = 4;
  const DtsNetworkResult a = run_dts_network(cfg);
  const DtsNetworkResult b = run_dts_network(cfg);
  ASSERT_GT(a.agg.reports_generated, 0u);
  expect_results_identical(a, b);
  cfg.sim_threads = 1;
  expect_results_identical(a, run_dts_network(cfg));
}

}  // namespace
