// Constellation catalog and synthetic TLE generation (paper Table 3).
#include <gtest/gtest.h>

#include <set>

#include "orbit/constellation.h"
#include "orbit/sgp4.h"
#include "orbit/time.h"

namespace {

using namespace sinet::orbit;

TEST(Catalog, FourConstellationsWithPaperSizes) {
  const auto all = paper_constellations();
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(paper_constellation("Tianqi").total_satellites(), 22);
  EXPECT_EQ(paper_constellation("FOSSA").total_satellites(), 3);
  EXPECT_EQ(paper_constellation("PICO").total_satellites(), 9);
  EXPECT_EQ(paper_constellation("CSTP").total_satellites(), 5);
}

TEST(Catalog, FrequenciesMatchTable3) {
  EXPECT_DOUBLE_EQ(paper_constellation("Tianqi").dts_frequency_hz, 400.45e6);
  EXPECT_DOUBLE_EQ(paper_constellation("FOSSA").dts_frequency_hz, 401.7e6);
  EXPECT_DOUBLE_EQ(paper_constellation("PICO").dts_frequency_hz, 436.26e6);
  EXPECT_DOUBLE_EQ(paper_constellation("CSTP").dts_frequency_hz, 437.985e6);
}

TEST(Catalog, TianqiHasThreeGenerations) {
  const auto tq = paper_constellation("Tianqi");
  ASSERT_EQ(tq.groups.size(), 3u);
  EXPECT_EQ(tq.groups[0].count, 16);
  EXPECT_NEAR(tq.groups[0].inclination_deg, 49.97, 1e-9);
  EXPECT_EQ(tq.groups[1].count, 4);
  EXPECT_NEAR(tq.groups[1].inclination_deg, 35.0, 1e-9);
  EXPECT_EQ(tq.groups[2].count, 2);
  EXPECT_NEAR(tq.groups[2].inclination_deg, 97.61, 1e-9);
}

TEST(Catalog, UnknownNameThrows) {
  EXPECT_THROW(paper_constellation("Starlink"), std::invalid_argument);
}

TEST(GenerateTles, CountsAndNames) {
  const auto spec = paper_constellation("Tianqi");
  const auto tles = generate_tles(spec, julian_from_civil(2025, 3, 1));
  ASSERT_EQ(tles.size(), 22u);
  EXPECT_EQ(tles.front().name, "Tianqi-01");
  EXPECT_EQ(tles.back().name, "Tianqi-22");
  // Catalog numbers are consecutive and unique.
  std::set<int> catalogs;
  for (const Tle& t : tles) catalogs.insert(t.catalog_number);
  EXPECT_EQ(catalogs.size(), tles.size());
}

TEST(GenerateTles, AltitudesInsidePublishedBands) {
  for (const auto& spec : paper_constellations()) {
    const auto tles = generate_tles(spec, julian_from_civil(2025, 3, 1));
    std::size_t idx = 0;
    for (const OrbitalGroup& g : spec.groups) {
      for (int i = 0; i < g.count; ++i, ++idx) {
        const double alt = tles[idx].mean_altitude_km();
        EXPECT_GE(alt, g.altitude_low_km - 2.0) << spec.name;
        EXPECT_LE(alt, g.altitude_high_km + 2.0) << spec.name;
        EXPECT_NEAR(tles[idx].inclination_deg, g.inclination_deg, 1e-6);
      }
    }
  }
}

TEST(GenerateTles, AllPropagatable) {
  for (const auto& spec : paper_constellations()) {
    for (const Tle& tle : generate_tles(spec, julian_from_civil(2025, 3, 1))) {
      const Sgp4 prop(tle);
      const TemeState st = prop.at(100.0);
      EXPECT_GT(st.position_km.norm(), 6378.0 + 400.0);
      EXPECT_LT(st.position_km.norm(), 6378.0 + 1000.0);
    }
  }
}

TEST(GenerateTles, RaanSpreadAvoidsClustering) {
  const auto spec = paper_constellation("Tianqi");
  const auto tles = generate_tles(spec, julian_from_civil(2025, 3, 1));
  // First generation (16 satellites): RAANs should span > 180 degrees.
  double lo = 360.0, hi = 0.0;
  for (int i = 0; i < 16; ++i) {
    lo = std::min(lo, tles[i].raan_deg);
    hi = std::max(hi, tles[i].raan_deg);
  }
  EXPECT_GT(hi - lo, 180.0);
}

TEST(GenerateTles, DeterministicAcrossCalls) {
  const auto spec = paper_constellation("PICO");
  const auto a = generate_tles(spec, julian_from_civil(2025, 3, 1));
  const auto b = generate_tles(spec, julian_from_civil(2025, 3, 1));
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].raan_deg, b[i].raan_deg);
    EXPECT_DOUBLE_EQ(a[i].mean_anomaly_deg, b[i].mean_anomaly_deg);
  }
}

TEST(Footprint, MatchesTable3Values) {
  // Table 3 footprints: Tianqi gen-1 (815.7-897.5 km): 3.27e7 km^2;
  // FOSSA (~510 km): 1.27e7; PICO (~515 km): 1.31e7; CSTP (~496 km):
  // 1.24e7. The Tianqi row matches a 0-degree edge-of-coverage mask;
  // the three ~510 km rows are only consistent with an effective ~5
  // degree mask (the paper's column mixes conventions — documented in
  // EXPERIMENTS.md). Both match our formula within ~10%.
  EXPECT_NEAR(footprint_area_km2(856.6, 0.0), 3.27e7, 0.1 * 3.27e7);
  EXPECT_NEAR(footprint_area_km2(510.4, 5.0), 1.27e7, 0.1 * 1.27e7);
  EXPECT_NEAR(footprint_area_km2(515.0, 5.0), 1.31e7, 0.1 * 1.31e7);
  EXPECT_NEAR(footprint_area_km2(496.0, 5.0), 1.24e7, 0.1 * 1.24e7);
}

TEST(Footprint, MonotonicInAltitudeAndMask) {
  EXPECT_GT(footprint_area_km2(800.0), footprint_area_km2(500.0));
  EXPECT_GT(footprint_area_km2(500.0, 0.0), footprint_area_km2(500.0, 10.0));
  EXPECT_THROW(footprint_area_km2(0.0), std::invalid_argument);
}

TEST(SlantRange, HorizonAndZenith) {
  // At zenith the slant range equals the altitude.
  EXPECT_NEAR(slant_range_km(500.0, 90.0), 500.0, 1.0);
  // At the horizon, a 500 km satellite is ~2,600 km away — the paper's
  // Fig 8 observes DtS links of 600-2,000 km for ~500 km orbits.
  const double horizon = slant_range_km(500.0, 0.0);
  EXPECT_GT(horizon, 2000.0);
  EXPECT_LT(horizon, 3000.0);
  // Tianqi at ~860 km: horizon range ~3,400 km (paper: up to 3,500 km).
  EXPECT_NEAR(slant_range_km(860.0, 0.0), 3400.0, 150.0);
  EXPECT_THROW(slant_range_km(-1.0, 10.0), std::invalid_argument);
}

TEST(Catalog, BeaconRadioProfilesDiffer) {
  // Commercial Tianqi: fast SF, higher EIRP. PocketQube fleets: slower
  // SFs at lower EIRP (they trade airtime for sensitivity).
  const auto tianqi = paper_constellation("Tianqi");
  EXPECT_EQ(tianqi.beacon_sf, 10);
  const auto cstp = paper_constellation("CSTP");
  EXPECT_EQ(cstp.beacon_sf, 12);
  EXPECT_GT(tianqi.beacon_eirp_dbm, cstp.beacon_eirp_dbm);
  for (const auto& spec : paper_constellations()) {
    EXPECT_GE(spec.beacon_sf, 7);
    EXPECT_LE(spec.beacon_sf, 12);
    EXPECT_GT(spec.beacon_eirp_dbm, 0.0);
    EXPECT_LT(spec.beacon_eirp_dbm, 30.0);
  }
}

TEST(SlantRange, MonotonicDecreasingInElevation) {
  double prev = slant_range_km(550.0, 0.0);
  for (double el = 5.0; el <= 90.0; el += 5.0) {
    const double r = slant_range_km(550.0, el);
    EXPECT_LT(r, prev);
    prev = r;
  }
}

}  // namespace
