// Ground-station scheduler tests (the customized TinyGS scheduler).
#include <gtest/gtest.h>

#include "core/passive_campaign.h"
#include "core/scheduler.h"
#include "orbit/time.h"

namespace {

using namespace sinet::core;
using sinet::orbit::ContactWindow;
using sinet::orbit::kSecondsPerDay;

ObservationRequest req(const std::string& sat, double start_s,
                       double duration_s) {
  ObservationRequest r;
  r.satellite = sat;
  r.constellation = "Test";
  r.window.aos_jd = 100.0 + start_s / kSecondsPerDay;
  r.window.los_jd = r.window.aos_jd + duration_s / kSecondsPerDay;
  r.window.tca_jd = 0.5 * (r.window.aos_jd + r.window.los_jd);
  r.window.max_elevation_deg = 45.0;
  return r;
}

TEST(Scheduler, NonOverlappingAllScheduledOnOneStation) {
  const std::vector<ObservationRequest> rs = {
      req("A", 0.0, 600.0), req("B", 700.0, 600.0), req("C", 1400.0, 600.0)};
  const auto sched = schedule_observations(rs, 1);
  ASSERT_EQ(sched.size(), 3u);
  for (const auto& s : sched) EXPECT_EQ(s.station_index, 0);
}

TEST(Scheduler, OverlapBeyondStationBudgetIsDropped) {
  // Three fully overlapping windows, two stations: one goes unobserved.
  const std::vector<ObservationRequest> rs = {
      req("A", 0.0, 600.0), req("B", 10.0, 600.0), req("C", 20.0, 600.0)};
  const auto sched = schedule_observations(rs, 2);
  EXPECT_EQ(sched.size(), 2u);
  const auto sched3 = schedule_observations(rs, 3);
  EXPECT_EQ(sched3.size(), 3u);
}

TEST(Scheduler, AssignedWindowsNeverOverlapOnAStation) {
  std::vector<ObservationRequest> rs;
  for (int i = 0; i < 40; ++i)
    rs.push_back(req("S" + std::to_string(i), i * 137.0, 400.0));
  const auto sched = schedule_observations(rs, 3, 15.0);
  // Check pairwise on each station, including the retune gap.
  for (const auto& a : sched) {
    for (const auto& b : sched) {
      if (&a == &b || a.station_index != b.station_index) continue;
      const bool disjoint =
          a.request.window.los_jd + 15.0 / kSecondsPerDay <=
              b.request.window.aos_jd ||
          b.request.window.los_jd + 15.0 / kSecondsPerDay <=
              a.request.window.aos_jd;
      EXPECT_TRUE(disjoint);
    }
  }
}

TEST(Scheduler, RetuneGapBlocksBackToBackWindows) {
  const std::vector<ObservationRequest> rs = {req("A", 0.0, 600.0),
                                              req("B", 605.0, 600.0)};
  // 5 s turnaround < 15 s retune gap: needs two stations.
  EXPECT_EQ(schedule_observations(rs, 1, 15.0).size(), 1u);
  EXPECT_EQ(schedule_observations(rs, 1, 2.0).size(), 2u);
  EXPECT_EQ(schedule_observations(rs, 2, 15.0).size(), 2u);
}

TEST(Scheduler, GreedyByEndTimeMaximizesCount) {
  // One long window overlapping two short ones: the classic case where
  // earliest-end greedy picks the two short windows.
  const std::vector<ObservationRequest> rs = {
      req("LONG", 0.0, 2000.0), req("S1", 100.0, 300.0),
      req("S2", 600.0, 300.0)};
  const auto sched = schedule_observations(rs, 1, 0.0);
  ASSERT_EQ(sched.size(), 2u);
  EXPECT_EQ(sched[0].request.satellite, "S1");
  EXPECT_EQ(sched[1].request.satellite, "S2");
}

TEST(Scheduler, StatsAccounting) {
  const std::vector<ObservationRequest> rs = {
      req("A", 0.0, 600.0), req("B", 10.0, 600.0)};
  const auto sched = schedule_observations(rs, 1);
  const SchedulerStats st = schedule_stats(rs, sched);
  EXPECT_EQ(st.requested, 2u);
  EXPECT_EQ(st.scheduled, 1u);
  EXPECT_NEAR(st.requested_seconds, 1200.0, 0.1);
  EXPECT_NEAR(st.scheduled_seconds, 600.0, 0.1);
  EXPECT_NEAR(st.coverage_fraction(), 0.5, 1e-6);
  EXPECT_DOUBLE_EQ(SchedulerStats{}.coverage_fraction(), 0.0);
}

TEST(Scheduler, InvalidInputsThrow) {
  EXPECT_THROW(schedule_observations({}, 0), std::invalid_argument);
  EXPECT_THROW(schedule_observations({}, 1, -1.0), std::invalid_argument);
  EXPECT_TRUE(schedule_observations({}, 1).empty());
}

TEST(Scheduler, MoreStationsObserveMoreWindowsInCampaign) {
  // End-to-end: the same site with 1 vs 6 stations observes fewer vs
  // more windows (the Table 1 mechanism).
  PassiveCampaignConfig cfg = default_campaign(1.0);
  MeasurementSite one = paper_site("HK");
  one.station_count = 1;
  one.code = "ONE";
  MeasurementSite six = paper_site("HK");
  six.code = "SIX";
  cfg.sites = {one, six};
  const auto res = run_passive_campaign(cfg);
  const auto& [req1, obs1] = res.windows_requested_observed.at("ONE");
  const auto& [req6, obs6] = res.windows_requested_observed.at("SIX");
  EXPECT_EQ(req1, req6);  // same sky
  EXPECT_LT(obs1, obs6);  // fewer radios, fewer observations
  EXPECT_GT(obs1, 0u);
}

}  // namespace
