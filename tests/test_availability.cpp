// Availability analytics (paper Fig 3a machinery).
#include <gtest/gtest.h>

#include "core/availability.h"
#include "core/scenario.h"

namespace {

using namespace sinet::core;
using sinet::orbit::paper_constellation;

const AvailabilityOptions kFast{1.0, 0.0, 60.0};

TEST(Availability, MoreSatellitesMoreHours) {
  const auto site = paper_site("HK");
  const auto jd = campaign_epoch_jd();
  const double fossa =
      daily_presence_hours(paper_constellation("FOSSA"), site, jd, kFast);
  const double pico =
      daily_presence_hours(paper_constellation("PICO"), site, jd, kFast);
  const double tianqi =
      daily_presence_hours(paper_constellation("Tianqi"), site, jd, kFast);
  EXPECT_LT(fossa, pico);
  EXPECT_LT(pico, tianqi);
  EXPECT_GT(fossa, 0.5);
  EXPECT_LT(tianqi, 24.0);
}

TEST(Availability, MergedNeverExceedsSumOfPerSatellite) {
  const auto site = paper_site("SYD");
  const auto jd = campaign_epoch_jd();
  const auto spec = paper_constellation("CSTP");
  const double merged = daily_presence_hours(spec, site, jd, kFast);
  const auto per_sat = per_satellite_daily_hours(spec, site, jd, kFast);
  ASSERT_EQ(per_sat.size(), 5u);
  double sum = 0.0;
  for (const double h : per_sat) {
    EXPECT_GE(h, 0.0);
    EXPECT_LT(h, 6.0);  // a single ~500 km satellite: a few hours/day
    sum += h;
  }
  EXPECT_LE(merged, sum + 1e-9);  // overlaps only ever reduce the union
  EXPECT_GE(merged, sum / 5.0);   // but the union beats any single one
}

TEST(Availability, SizeSweepIsMonotone) {
  const auto site = paper_site("HK");
  const auto jd = campaign_epoch_jd();
  const auto hours = presence_vs_constellation_size(
      paper_constellation("Tianqi"), site, jd, {4, 10, 16, 22}, kFast);
  ASSERT_EQ(hours.size(), 4u);
  for (std::size_t i = 1; i < hours.size(); ++i)
    EXPECT_GE(hours[i], hours[i - 1] - 1e-9);
}

TEST(Availability, SizeSweepValidation) {
  const auto site = paper_site("HK");
  const auto jd = campaign_epoch_jd();
  const auto spec = paper_constellation("FOSSA");
  EXPECT_THROW(
      presence_vs_constellation_size(spec, site, jd, {0}, kFast),
      std::invalid_argument);
  EXPECT_THROW(
      presence_vs_constellation_size(spec, site, jd, {4}, kFast),
      std::invalid_argument);  // FOSSA has only 3 satellites
}

TEST(Availability, HigherMaskShrinksPresence) {
  const auto site = paper_site("LDN");
  const auto jd = campaign_epoch_jd();
  AvailabilityOptions open = kFast;
  AvailabilityOptions masked = kFast;
  masked.min_elevation_deg = 15.0;
  const auto spec = paper_constellation("PICO");
  EXPECT_GT(daily_presence_hours(spec, site, jd, open),
            daily_presence_hours(spec, site, jd, masked));
}

TEST(Availability, InvalidDurationThrows) {
  AvailabilityOptions bad = kFast;
  bad.duration_days = 0.0;
  EXPECT_THROW(constellation_windows(paper_constellation("FOSSA"),
                                     paper_site("HK"), campaign_epoch_jd(),
                                     bad),
               std::invalid_argument);
}

TEST(Availability, StableAcrossLongitude) {
  // The paper notes availability is roughly location-independent at
  // similar latitudes (Fig 3a): compare HK with a same-latitude probe at
  // a different longitude.
  MeasurementSite probe = paper_site("HK");
  probe.location.longitude_deg = -60.0;
  const auto spec = paper_constellation("Tianqi");
  AvailabilityOptions two_day = kFast;
  two_day.duration_days = 2.0;
  const double hk = daily_presence_hours(spec, paper_site("HK"),
                                         campaign_epoch_jd(), two_day);
  const double other =
      daily_presence_hours(spec, probe, campaign_epoch_jd(), two_day);
  EXPECT_NEAR(hk, other, hk * 0.2);
}

}  // namespace
