// Parity and property tests for the shared-ephemeris pass-prediction
// engine (orbit/ephemeris.h) and the reworked ContactWindowCache.
//
// The engine's contract is *bit-identical* windows: every ContactWindow
// it emits must compare EXPECT_EQ — raw double equality, no tolerance —
// against the legacy per-pair predict_passes scan. The randomized sweep
// below exercises that contract across the paper's Table 3 altitude and
// inclination bands, all eight measurement sites, heterogeneous masks
// and varied spans, including truncated-at-span-edge and zero-pass
// geometries.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/scenario.h"
#include "obs/metrics.h"
#include "orbit/ephemeris.h"
#include "orbit/look_angles.h"
#include "orbit/passes.h"
#include "orbit/sgp4.h"
#include "orbit/tle.h"

namespace sinet {
namespace {

using orbit::ContactWindow;
using orbit::Geodetic;
using orbit::GridObserver;
using orbit::JulianDate;
using orbit::PassPredictionOptions;
using orbit::Sgp4;
using orbit::Tle;

void expect_bit_identical(const std::vector<ContactWindow>& got,
                          const std::vector<ContactWindow>& want,
                          const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (std::size_t w = 0; w < got.size(); ++w) {
    EXPECT_EQ(got[w].aos_jd, want[w].aos_jd) << label << " window " << w;
    EXPECT_EQ(got[w].los_jd, want[w].los_jd) << label << " window " << w;
    EXPECT_EQ(got[w].tca_jd, want[w].tca_jd) << label << " window " << w;
    EXPECT_EQ(got[w].max_elevation_deg, want[w].max_elevation_deg)
        << label << " window " << w;
  }
}

Tle random_tle(std::mt19937_64& rng, int index) {
  // Paper Table 3 regimes: LEO IoT constellations between ~450 and
  // ~1200 km, inclinations from mid-latitude to sun-synchronous.
  static constexpr double kAltBandsKm[] = {450.0, 500.0,  550.0, 600.0,
                                           650.0, 700.0, 800.0, 1200.0};
  static constexpr double kIncBandsDeg[] = {30.0, 45.0, 53.0, 63.4,
                                            85.0, 97.5, 98.6};
  std::uniform_real_distribution<double> jitter(-20.0, 20.0);
  std::uniform_real_distribution<double> inc_jitter(-1.0, 1.0);
  std::uniform_real_distribution<double> ecc(0.0, 0.02);
  std::uniform_real_distribution<double> angle(0.0, 360.0);

  orbit::KeplerianElements kep;
  kep.altitude_km = kAltBandsKm[index % 8] + jitter(rng);
  kep.inclination_deg = kIncBandsDeg[(index / 8) % 7] + inc_jitter(rng);
  kep.eccentricity = ecc(rng);
  kep.raan_deg = angle(rng);
  kep.arg_perigee_deg = angle(rng);
  kep.mean_anomaly_deg = angle(rng);
  return orbit::make_tle("RAND-" + std::to_string(index), 90000 + index,
                         kep, core::campaign_epoch_jd());
}

TEST(ScanGrid, MatchesLegacyFloatAccumulation) {
  const JulianDate jd0 = core::campaign_epoch_jd() + 0.123456789;
  const JulianDate jd1 = jd0 + 0.6789;
  const double step_s = 30.0;
  const orbit::ScanGrid grid(jd0, jd1, step_s);

  // Replay predict_passes' own accumulation: jd += step_days, clamped.
  const double step_days = step_s / orbit::kSecondsPerDay;
  std::vector<JulianDate> want;
  want.push_back(jd0);
  for (JulianDate jd = jd0 + step_days;; jd += step_days) {
    const JulianDate t = std::min(jd, jd1);
    want.push_back(t);
    if (t >= jd1) break;
  }
  ASSERT_EQ(grid.size(), want.size());
  for (std::size_t k = 0; k < want.size(); ++k)
    EXPECT_EQ(grid.time(k), want[k]) << "sample " << k;
  EXPECT_EQ(grid.time(grid.size() - 1), jd1);

  EXPECT_THROW(orbit::ScanGrid(jd1, jd0, step_s), std::invalid_argument);
  EXPECT_THROW(orbit::ScanGrid(jd0, jd1, 0.0), std::invalid_argument);
}

TEST(EphemerisTable, PositionsMatchElevationSampler) {
  std::mt19937_64 rng(7);
  const Tle tle = random_tle(rng, 5);
  const Sgp4 prop(tle);
  const Geodetic site{22.3, 114.2, 0.05};
  const JulianDate jd0 = core::campaign_epoch_jd();
  const orbit::ScanGrid grid(jd0, jd0 + 0.2, 60.0);

  const std::vector<const Sgp4*> sats{&prop};
  orbit::EphemerisTable table(sats, grid);
  table.build(0, grid.size(), nullptr);
  EXPECT_EQ(table.propagations(), grid.size());

  const orbit::ElevationSampler sampler(prop, site);
  for (std::size_t k = 0; k < grid.size(); ++k) {
    const double from_table = orbit::elevation_from_ecef(
        sampler.frame(), table.position_ecef_km(0, k));
    EXPECT_EQ(from_table, sampler.elevation_deg(grid.time(k)))
        << "sample " << k;
    EXPECT_EQ(table.distance_km(0, k), table.position_ecef_km(0, k).norm());
  }
}

TEST(CullBounds, SatelliteBoundsAreConservative) {
  orbit::KeplerianElements kep;
  kep.altitude_km = 550.0;
  kep.eccentricity = 0.01;
  const Tle tle =
      orbit::make_tle("BOUNDS", 90001, kep, core::campaign_epoch_jd());
  const Sgp4 prop(tle);
  const auto bounds = orbit::satellite_cull_bounds(prop);
  ASSERT_TRUE(bounds.valid);

  const double a = prop.semi_major_axis_er() * orbit::kEarthRadiusKm;
  const double e = prop.eccentricity();
  // The distance bound must clear the osculating apogee by the margin.
  EXPECT_GE(bounds.max_distance_km, a * (1.0 + e));
  // The rate bound must clear the circular mean motion plus Earth spin.
  const double mean_motion = std::sqrt(orbit::kMuEarthKm3PerS2 / (a * a * a));
  EXPECT_GT(bounds.max_angular_rate_rad_s, mean_motion);
  EXPECT_LT(bounds.max_angular_rate_rad_s, 10.0 * mean_motion);
}

TEST(CullBounds, HorizonConeIsMonotone) {
  const auto geom = orbit::observer_cull_geometry(Geodetic{51.5, -0.1, 0.0});
  EXPECT_NEAR(geom.radius_km, 6365.0, 25.0);
  EXPECT_GE(geom.vertical_deflection_rad, 0.0);
  EXPECT_LT(geom.vertical_deflection_rad, 0.005);  // <= ~0.2 deg on WGS-84

  const double d = orbit::kEarthRadiusKm + 550.0;
  const double g0 = orbit::horizon_cone_half_angle_rad(geom, d, 0.0);
  const double g10 = orbit::horizon_cone_half_angle_rad(geom, d, 10.0);
  const double g25 = orbit::horizon_cone_half_angle_rad(geom, d, 25.0);
  EXPECT_GT(g0, g10);
  EXPECT_GT(g10, g25);
  // Higher satellites see the observer from farther out.
  const double g0_high =
      orbit::horizon_cone_half_angle_rad(geom, d + 700.0, 0.0);
  EXPECT_GT(g0_high, g0);
  // A 550 km horizon cone is ~24 deg; sanity-band it.
  EXPECT_GT(g0, 0.3);
  EXPECT_LT(g0, 0.6);
  // Degenerate inputs disable culling (cone covers the sphere).
  EXPECT_GE(orbit::horizon_cone_half_angle_rad(geom, 0.0, 0.0), 3.14159);
}

// The tentpole property: windows from the shared+culled grid scan are
// bit-identical to the legacy per-pair scan across >= 200 randomized
// TLEs spanning the Table 3 bands, all 8 paper sites, heterogeneous
// per-site masks, and varied spans. Also checks that the sweep actually
// exercised span-edge truncation and zero-pass pairs.
TEST(EphemerisParity, RandomizedTlesAcrossBandsAndSites) {
  const auto sites = core::paper_measurement_sites();
  ASSERT_EQ(sites.size(), 8u);
  static constexpr double kMasks[] = {0.0, 5.0, 10.0, 25.0};

  std::mt19937_64 rng(20260805u);
  std::uniform_real_distribution<double> start_offset(0.0, 1.0);
  std::uniform_real_distribution<double> span_days(0.35, 0.75);

  constexpr int kGroups = 8;
  constexpr int kTlesPerGroup = 25;  // 200 TLEs total
  int truncated = 0;
  int empty_pairs = 0;

  for (int g = 0; g < kGroups; ++g) {
    std::vector<Tle> tles;
    std::vector<Sgp4> props;
    tles.reserve(kTlesPerGroup);
    props.reserve(kTlesPerGroup);
    for (int i = 0; i < kTlesPerGroup; ++i) {
      tles.push_back(random_tle(rng, g * kTlesPerGroup + i));
      props.emplace_back(tles.back());
    }
    std::vector<const Sgp4*> sat_ptrs;
    for (const Sgp4& p : props) sat_ptrs.push_back(&p);

    std::vector<GridObserver> observers;
    for (std::size_t o = 0; o < sites.size(); ++o)
      observers.push_back(
          GridObserver{sites[o].location, kMasks[o % 4]});

    const JulianDate jd0 = core::campaign_epoch_jd() + start_offset(rng);
    const JulianDate jd1 = jd0 + span_days(rng);
    PassPredictionOptions opts;
    opts.coarse_step_s = 60.0;

    const auto grid = orbit::predict_passes_grid(sat_ptrs, observers, jd0,
                                                 jd1, opts, /*threads=*/1);
    ASSERT_EQ(grid.size(), props.size());
    for (std::size_t s = 0; s < props.size(); ++s) {
      ASSERT_EQ(grid[s].size(), observers.size());
      for (std::size_t o = 0; o < observers.size(); ++o) {
        PassPredictionOptions lopts = opts;
        lopts.min_elevation_deg = observers[o].min_elevation_deg;
        const auto legacy = orbit::predict_passes(
            props[s], observers[o].location, jd0, jd1, lopts);
        expect_bit_identical(grid[s][o], legacy,
                             "group " + std::to_string(g) + " sat " +
                                 std::to_string(s) + " site " +
                                 std::to_string(o));
        if (legacy.empty()) ++empty_pairs;
        for (const ContactWindow& w : legacy)
          if (w.aos_jd == jd0 || w.los_jd == jd1) ++truncated;
      }
    }
  }
  // The sweep must have covered the edge geometries it claims to.
  EXPECT_GT(truncated, 0);
  EXPECT_GT(empty_pairs, 0);
}

TEST(EphemerisParity, TruncationAtSpanEdges) {
  orbit::KeplerianElements kep;  // 500 km SSO: passes over London daily
  const Tle tle =
      orbit::make_tle("TRUNC", 90002, kep, core::campaign_epoch_jd());
  const Sgp4 prop(tle);
  const GridObserver london{Geodetic{51.5074, -0.1278, 0.035}};
  const JulianDate jd0 = core::campaign_epoch_jd();

  PassPredictionOptions opts;
  opts.coarse_step_s = 30.0;
  const auto full =
      orbit::predict_passes(prop, london.location, jd0, jd0 + 1.0, opts);
  ASSERT_FALSE(full.empty());

  // End the span at the first window's TCA: the window must come back
  // truncated (los == jd_end) and still bit-identical to legacy.
  const JulianDate cut_end = full.front().tca_jd;
  const auto grid_end = orbit::predict_passes_grid(
      {&prop}, {london}, jd0, cut_end, opts, /*threads=*/1);
  const auto legacy_end =
      orbit::predict_passes(prop, london.location, jd0, cut_end, opts);
  expect_bit_identical(grid_end[0][0], legacy_end, "end-truncated");
  ASSERT_FALSE(legacy_end.empty());
  EXPECT_EQ(legacy_end.back().los_jd, cut_end);

  // Start the span at the first window's TCA: the window opens already
  // in progress (aos == jd_start).
  const JulianDate cut_start = full.front().tca_jd;
  const JulianDate far_end = cut_start + 0.5;
  const auto grid_start = orbit::predict_passes_grid(
      {&prop}, {london}, cut_start, far_end, opts, /*threads=*/1);
  const auto legacy_start =
      orbit::predict_passes(prop, london.location, cut_start, far_end, opts);
  expect_bit_identical(grid_start[0][0], legacy_start, "start-truncated");
  ASSERT_FALSE(legacy_start.empty());
  EXPECT_EQ(legacy_start.front().aos_jd, cut_start);
}

TEST(EphemerisParity, ZeroPassGeometryIsCulledNotMissed) {
  // A near-equatorial satellite never rises over a high-latitude site;
  // the cull must skip essentially the whole span without ever emitting
  // a window the exact scan would not have.
  orbit::KeplerianElements kep;
  kep.altitude_km = 550.0;
  kep.inclination_deg = 0.5;
  const Tle tle =
      orbit::make_tle("EQUATOR", 90003, kep, core::campaign_epoch_jd());
  const Sgp4 prop(tle);
  const GridObserver helsinki{Geodetic{60.17, 24.94, 0.0}};
  const JulianDate jd0 = core::campaign_epoch_jd();
  const JulianDate jd1 = jd0 + 2.0;
  PassPredictionOptions opts;
  opts.coarse_step_s = 30.0;

  obs::MetricsRegistry metrics;
  const auto windows = orbit::scan_pass_pairs(
      {&prop}, {helsinki}, {orbit::PairTask{0, 0}}, jd0, jd1, opts, {},
      /*threads=*/1, &metrics);
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_TRUE(windows[0].empty());
  EXPECT_TRUE(
      orbit::predict_passes(prop, helsinki.location, jd0, jd1, opts).empty());

  const auto snap = metrics.snapshot();
  const std::uint64_t visited = snap.counters.at("orbit.ephemeris.samples_visited");
  const std::uint64_t culled = snap.counters.at("orbit.ephemeris.samples_culled");
  const orbit::ScanGrid grid(jd0, jd1, opts.coarse_step_s);
  EXPECT_EQ(visited + culled, grid.size());
  EXPECT_GT(culled, static_cast<std::uint64_t>(0.9 * grid.size()));
}

TEST(EphemerisParity, SampleConservationAcrossPairs) {
  std::mt19937_64 rng(11);
  std::vector<Tle> tles;
  std::vector<Sgp4> props;
  for (int i = 0; i < 6; ++i) {
    tles.push_back(random_tle(rng, i * 9));
    props.emplace_back(tles.back());
  }
  std::vector<const Sgp4*> sat_ptrs;
  for (const Sgp4& p : props) sat_ptrs.push_back(&p);
  const std::vector<GridObserver> observers{
      GridObserver{Geodetic{22.3, 114.2, 0.05}},
      GridObserver{Geodetic{-33.87, 151.2, 0.02}, 10.0}};
  std::vector<orbit::PairTask> pairs;
  for (std::size_t s = 0; s < props.size(); ++s)
    for (std::size_t o = 0; o < observers.size(); ++o)
      pairs.push_back(orbit::PairTask{s, o});

  const JulianDate jd0 = core::campaign_epoch_jd();
  const JulianDate jd1 = jd0 + 1.0;
  PassPredictionOptions opts;
  opts.coarse_step_s = 30.0;

  // Chunked scan (tiny chunks to force many boundary crossings) must
  // visit-or-cull every grid sample of every pair exactly once.
  orbit::EphemerisScanOptions scan_opts;
  scan_opts.chunk_samples = 64;
  obs::MetricsRegistry metrics;
  const auto chunked =
      orbit::scan_pass_pairs(sat_ptrs, observers, pairs, jd0, jd1, opts,
                             scan_opts, /*threads=*/1, &metrics);
  const auto snap = metrics.snapshot();
  const orbit::ScanGrid grid(jd0, jd1, opts.coarse_step_s);
  EXPECT_EQ(snap.counters.at("orbit.ephemeris.samples_visited") +
                snap.counters.at("orbit.ephemeris.samples_culled"),
            pairs.size() * grid.size());
  EXPECT_EQ(snap.counters.at("orbit.ephemeris.pairs"), pairs.size());

  // And chunking must not change a single bit of any window (skips and
  // open windows cross chunk boundaries).
  const auto unchunked = orbit::scan_pass_pairs(
      sat_ptrs, observers, pairs, jd0, jd1, opts, {}, /*threads=*/1);
  ASSERT_EQ(chunked.size(), unchunked.size());
  for (std::size_t p = 0; p < pairs.size(); ++p)
    expect_bit_identical(chunked[p], unchunked[p],
                         "pair " + std::to_string(p));

  // Culling disabled (share-only arm) is also bit-identical.
  orbit::EphemerisScanOptions no_cull;
  no_cull.cull = false;
  const auto shared_only = orbit::scan_pass_pairs(
      sat_ptrs, observers, pairs, jd0, jd1, opts, no_cull, /*threads=*/1);
  for (std::size_t p = 0; p < pairs.size(); ++p)
    expect_bit_identical(shared_only[p], unchunked[p],
                         "no-cull pair " + std::to_string(p));
}

TEST(EphemerisParity, ParallelScanMatchesSerial) {
  std::mt19937_64 rng(13);
  std::vector<Tle> tles;
  std::vector<Sgp4> props;
  for (int i = 0; i < 8; ++i) {
    tles.push_back(random_tle(rng, i * 7 + 3));
    props.emplace_back(tles.back());
  }
  std::vector<const Sgp4*> sat_ptrs;
  for (const Sgp4& p : props) sat_ptrs.push_back(&p);
  const std::vector<GridObserver> observers{
      GridObserver{Geodetic{51.5, -0.13, 0.035}},
      GridObserver{Geodetic{1.35, 103.8, 0.0}, 5.0},
      GridObserver{Geodetic{-33.87, 151.2, 0.02}, 25.0}};
  const JulianDate jd0 = core::campaign_epoch_jd();
  const JulianDate jd1 = jd0 + 1.0;
  PassPredictionOptions opts;
  opts.coarse_step_s = 60.0;

  const auto serial = orbit::predict_passes_grid(sat_ptrs, observers, jd0,
                                                 jd1, opts, /*threads=*/1);
  const auto pooled = orbit::predict_passes_grid(sat_ptrs, observers, jd0,
                                                 jd1, opts, /*threads=*/4);
  ASSERT_EQ(serial.size(), pooled.size());
  for (std::size_t s = 0; s < serial.size(); ++s)
    for (std::size_t o = 0; o < observers.size(); ++o)
      expect_bit_identical(pooled[s][o], serial[s][o],
                           "sat " + std::to_string(s) + " obs " +
                               std::to_string(o));
}

TEST(EphemerisParity, BatchDedupsSharedSatellitesAndObservers) {
  std::mt19937_64 rng(17);
  const Tle tle_a = random_tle(rng, 2);
  const Tle tle_b = random_tle(rng, 42);
  const Sgp4 prop_a(tle_a);
  const Sgp4 prop_b(tle_b);
  const Geodetic hk{22.3, 114.2, 0.05};
  const Geodetic syd{-33.87, 151.2, 0.02};

  // Duplicate propagators and observers across requests: the engine
  // dedups both, but results must still come back per-request and
  // bit-identical to serial predict_passes.
  const std::vector<orbit::PassBatchRequest> requests{
      {&prop_a, hk}, {&prop_b, hk}, {&prop_a, syd},
      {&prop_b, syd}, {&prop_a, hk},  // exact repeat of request 0
  };
  const JulianDate jd0 = core::campaign_epoch_jd();
  const JulianDate jd1 = jd0 + 1.0;
  PassPredictionOptions opts;
  opts.min_elevation_deg = 5.0;

  const auto batch =
      orbit::predict_passes_batch(requests, jd0, jd1, opts, /*threads=*/1);
  ASSERT_EQ(batch.size(), requests.size());
  for (std::size_t r = 0; r < requests.size(); ++r) {
    const auto legacy = orbit::predict_passes(
        *requests[r].propagator, requests[r].observer, jd0, jd1, opts);
    expect_bit_identical(batch[r], legacy, "request " + std::to_string(r));
  }
}

TEST(GridCached, MatchesUncachedAndServesHits) {
  std::mt19937_64 rng(19);
  std::vector<Tle> tles;
  std::vector<Sgp4> props;
  for (int i = 0; i < 4; ++i) {
    tles.push_back(random_tle(rng, i * 31));
    props.emplace_back(tles.back());
  }
  std::vector<const Sgp4*> sat_ptrs;
  for (const Sgp4& p : props) sat_ptrs.push_back(&p);
  const std::vector<GridObserver> observers{
      GridObserver{Geodetic{22.3, 114.2, 0.05}},
      GridObserver{Geodetic{51.5, -0.13, 0.035}, 10.0}};
  const JulianDate jd0 = core::campaign_epoch_jd();
  const JulianDate jd1 = jd0 + 0.5;
  PassPredictionOptions opts;
  opts.coarse_step_s = 60.0;
  const std::size_t n_pairs = tles.size() * observers.size();

  orbit::ContactWindowCache cache;
  const auto uncached = orbit::predict_passes_grid(sat_ptrs, observers, jd0,
                                                   jd1, opts, /*threads=*/1);
  const auto first = orbit::predict_passes_grid_cached(
      tles, observers, jd0, jd1, opts, /*threads=*/1, &cache);
  auto st = cache.stats();
  EXPECT_EQ(st.hits, 0u);
  EXPECT_EQ(st.misses, n_pairs);
  EXPECT_EQ(st.entries, n_pairs);

  // All-hit second call, with metrics: the entries gauge must still be
  // refreshed even though no miss computation runs.
  obs::MetricsRegistry metrics;
  const auto second = orbit::predict_passes_grid_cached(
      tles, observers, jd0, jd1, opts, /*threads=*/1, &cache, &metrics);
  st = cache.stats();
  EXPECT_EQ(st.hits, n_pairs);
  EXPECT_EQ(st.misses, n_pairs);
  const auto snap = metrics.snapshot();
  EXPECT_EQ(snap.counters.at("orbit.pass_cache.hits"), n_pairs);
  ASSERT_TRUE(snap.gauges.count("orbit.pass_cache.entries"));
  EXPECT_EQ(snap.gauges.at("orbit.pass_cache.entries").value,
            static_cast<double>(n_pairs));

  for (std::size_t s = 0; s < tles.size(); ++s)
    for (std::size_t o = 0; o < observers.size(); ++o) {
      expect_bit_identical(first[s][o], uncached[s][o],
                           "first s" + std::to_string(s) + " o" +
                               std::to_string(o));
      expect_bit_identical(second[s][o], uncached[s][o],
                           "second s" + std::to_string(s) + " o" +
                               std::to_string(o));
    }

  // Cache keys use the observer's *effective* mask, so batch_cached over
  // the masked site must hit the same entries.
  const auto batch = orbit::predict_passes_batch_cached(
      tles, observers[0].location, jd0, jd1, opts, /*threads=*/1, &cache);
  EXPECT_EQ(cache.stats().hits, n_pairs + tles.size());
  for (std::size_t s = 0; s < tles.size(); ++s)
    expect_bit_identical(batch[s], uncached[s][0],
                         "batch s" + std::to_string(s));
}

TEST(ContactWindowCache, LruEvictionRespectsRecency) {
  std::mt19937_64 rng(23);
  const Tle a = random_tle(rng, 1);
  const Tle b = random_tle(rng, 10);
  const Tle c = random_tle(rng, 20);
  const Geodetic site{22.3, 114.2, 0.05};
  const JulianDate jd0 = core::campaign_epoch_jd();
  const JulianDate jd1 = jd0 + 0.2;

  orbit::ContactWindowCache cache(/*max_entries=*/2);
  (void)cache.get_or_predict(a, site, jd0, jd1);  // miss: {a}
  (void)cache.get_or_predict(b, site, jd0, jd1);  // miss: {a, b}
  (void)cache.get_or_predict(a, site, jd0, jd1);  // hit, touches a
  auto st = cache.stats();
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.misses, 2u);

  // Inserting c evicts the LRU entry — b, not a, because the hit above
  // refreshed a's recency. (FIFO would evict a here.)
  (void)cache.get_or_predict(c, site, jd0, jd1);  // miss: {a, c}
  EXPECT_EQ(cache.stats().entries, 2u);
  (void)cache.get_or_predict(a, site, jd0, jd1);  // still cached
  st = cache.stats();
  EXPECT_EQ(st.hits, 2u);
  EXPECT_EQ(st.misses, 3u);
  (void)cache.get_or_predict(b, site, jd0, jd1);  // evicted: recomputes
  st = cache.stats();
  EXPECT_EQ(st.hits, 2u);
  EXPECT_EQ(st.misses, 4u);
}

TEST(ContactWindowCache, SingleFlightDedupsConcurrentMisses) {
  std::mt19937_64 rng(29);
  const Tle tle = random_tle(rng, 3);
  const Geodetic site{51.5, -0.13, 0.035};
  const JulianDate jd0 = core::campaign_epoch_jd();
  const JulianDate jd1 = jd0 + 1.0;

  orbit::ContactWindowCache cache;
  std::vector<ContactWindow> r1, r2;
  std::thread t1([&] { r1 = cache.get_or_predict(tle, site, jd0, jd1); });
  std::thread t2([&] { r2 = cache.get_or_predict(tle, site, jd0, jd1); });
  t1.join();
  t2.join();

  // Whichever thread arrives second — during the first's computation or
  // after it — must be served without recomputing: exactly one miss.
  const auto st = cache.stats();
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.entries, 1u);
  expect_bit_identical(r1, r2, "concurrent");
  expect_bit_identical(
      r1, orbit::predict_passes(Sgp4(tle), site, jd0, jd1), "vs legacy");
}

// ---------------------------------------------------------------------
// PropagationMode::kFast — the SoA/SIMD batch kernels. kFast windows are
// NOT bit-identical to kReference: the fused visibility test classifies
// coarse samples in the sine domain, so a sample graze within ~1 ulp of
// the mask can shift a refinement bracket by one coarse step. The
// contract (docs/PERFORMANCE.md) is: same window count, AOS/LOS/TCA
// within one coarse step, max elevation within 1e-6 deg.
// ---------------------------------------------------------------------

void expect_within_fast_tolerance(const std::vector<ContactWindow>& fast,
                                  const std::vector<ContactWindow>& ref,
                                  double coarse_step_s,
                                  const std::string& label) {
  ASSERT_EQ(fast.size(), ref.size()) << label;
  const double edge_tol_days = coarse_step_s / orbit::kSecondsPerDay;
  for (std::size_t w = 0; w < fast.size(); ++w) {
    EXPECT_NEAR(fast[w].aos_jd, ref[w].aos_jd, edge_tol_days)
        << label << " window " << w;
    EXPECT_NEAR(fast[w].los_jd, ref[w].los_jd, edge_tol_days)
        << label << " window " << w;
    EXPECT_NEAR(fast[w].tca_jd, ref[w].tca_jd, edge_tol_days)
        << label << " window " << w;
    EXPECT_NEAR(fast[w].max_elevation_deg, ref[w].max_elevation_deg, 1e-6)
        << label << " window " << w;
  }
}

// Run the same pair set through both modes and compare under tolerance.
void expect_modes_agree(const std::vector<const Sgp4*>& sats,
                        const std::vector<GridObserver>& observers,
                        JulianDate jd0, JulianDate jd1,
                        const PassPredictionOptions& opts,
                        const std::string& label) {
  std::vector<orbit::PairTask> pairs;
  for (std::size_t s = 0; s < sats.size(); ++s)
    for (std::size_t o = 0; o < observers.size(); ++o)
      pairs.push_back(orbit::PairTask{s, o});

  orbit::EphemerisScanOptions ref_opts;
  ref_opts.mode = orbit::PropagationMode::kReference;
  orbit::EphemerisScanOptions fast_opts;
  fast_opts.mode = orbit::PropagationMode::kFast;

  const auto ref = orbit::scan_pass_pairs(sats, observers, pairs, jd0, jd1,
                                          opts, ref_opts, /*threads=*/1);
  const auto fast = orbit::scan_pass_pairs(sats, observers, pairs, jd0, jd1,
                                           opts, fast_opts, /*threads=*/1);
  ASSERT_EQ(fast.size(), ref.size()) << label;
  for (std::size_t p = 0; p < pairs.size(); ++p)
    expect_within_fast_tolerance(fast[p], ref[p], opts.coarse_step_s,
                                 label + " pair " + std::to_string(p));
}

// The fast-mode acceptance sweep: the same 200-TLE x 8-site corpus the
// bit-identical reference sweep uses, scanned in both modes.
TEST(FastModeParity, WindowsWithinToleranceAcrossBandsAndSites) {
  const auto sites = core::paper_measurement_sites();
  ASSERT_EQ(sites.size(), 8u);
  static constexpr double kMasks[] = {0.0, 5.0, 10.0, 25.0};

  std::mt19937_64 rng(20260805u);  // same corpus as the reference sweep
  std::uniform_real_distribution<double> start_offset(0.0, 1.0);
  std::uniform_real_distribution<double> span_days(0.35, 0.75);

  constexpr int kGroups = 8;
  constexpr int kTlesPerGroup = 25;  // 200 TLEs total
  for (int g = 0; g < kGroups; ++g) {
    std::vector<Tle> tles;
    std::vector<Sgp4> props;
    for (int i = 0; i < kTlesPerGroup; ++i) {
      tles.push_back(random_tle(rng, g * kTlesPerGroup + i));
      props.emplace_back(tles.back());
    }
    std::vector<const Sgp4*> sat_ptrs;
    for (const Sgp4& p : props) sat_ptrs.push_back(&p);

    std::vector<GridObserver> observers;
    for (std::size_t o = 0; o < sites.size(); ++o)
      observers.push_back(GridObserver{sites[o].location, kMasks[o % 4]});

    const JulianDate jd0 = core::campaign_epoch_jd() + start_offset(rng);
    const JulianDate jd1 = jd0 + span_days(rng);
    PassPredictionOptions opts;
    opts.coarse_step_s = 60.0;
    expect_modes_agree(sat_ptrs, observers, jd0, jd1, opts,
                       "group " + std::to_string(g));
  }
}

// Satellite counts that leave partial lane groups in the batch
// propagator, and observer counts that leave partial lanes in the fused
// visibility blocks, must all agree with the reference scan.
TEST(FastModeParity, LaneRemaindersAcrossSatelliteAndObserverCounts) {
  const auto sites = core::paper_measurement_sites();
  std::mt19937_64 rng(77);
  std::vector<Tle> tles;
  std::vector<Sgp4> props;
  for (int i = 0; i < 7; ++i) {  // 7 = one full lane group + 3 remainder
    tles.push_back(random_tle(rng, i * 13 + 1));
    props.emplace_back(tles.back());
  }
  const JulianDate jd0 = core::campaign_epoch_jd();
  const JulianDate jd1 = jd0 + 0.4;
  PassPredictionOptions opts;
  opts.coarse_step_s = 60.0;

  for (const std::size_t n_sats : {1u, 2u, 3u, 5u, 7u}) {
    for (const std::size_t n_obs : {1u, 3u, 5u}) {
      std::vector<const Sgp4*> sat_ptrs;
      for (std::size_t s = 0; s < n_sats; ++s) sat_ptrs.push_back(&props[s]);
      std::vector<GridObserver> observers;
      for (std::size_t o = 0; o < n_obs; ++o)
        observers.push_back(
            GridObserver{sites[o % sites.size()].location, 5.0});
      expect_modes_agree(sat_ptrs, observers, jd0, jd1, opts,
                         "sats " + std::to_string(n_sats) + " obs " +
                             std::to_string(n_obs));
    }
  }
}

// A very low perigee activates SGP4's `simple` drag truncation; mixing
// such a satellite into a lane group with normal satellites exercises
// the lane-masked branch of the batch propagator inside a real scan.
TEST(FastModeParity, MixedSimpleAndNormalBranchesInOneScan) {
  std::mt19937_64 rng(123);
  std::vector<Tle> tles;
  std::vector<Sgp4> props;
  for (int i = 0; i < 3; ++i) {
    tles.push_back(random_tle(rng, i * 29 + 2));
    props.emplace_back(tles.back());
  }
  orbit::KeplerianElements low;  // perigee < 220 km -> simple branch
  low.altitude_km = 200.0;
  low.eccentricity = 0.0005;
  low.inclination_deg = 53.0;
  low.bstar = 1e-5;
  tles.push_back(
      orbit::make_tle("SIMPLE", 90044, low, core::campaign_epoch_jd()));
  props.emplace_back(tles.back());
  ASSERT_TRUE(props.back().coefficients().simple);
  ASSERT_FALSE(props.front().coefficients().simple);

  std::vector<const Sgp4*> sat_ptrs;
  for (const Sgp4& p : props) sat_ptrs.push_back(&p);
  const std::vector<GridObserver> observers{
      GridObserver{Geodetic{22.3, 114.2, 0.05}},
      GridObserver{Geodetic{51.5, -0.13, 0.035}, 10.0}};
  PassPredictionOptions opts;
  opts.coarse_step_s = 30.0;
  const JulianDate jd0 = core::campaign_epoch_jd();
  expect_modes_agree(sat_ptrs, observers, jd0, jd0 + 0.3, opts, "mixed");
}

// Chunked fast scans must agree with unchunked ones (block skip state
// crosses chunk boundaries), and sample conservation must hold lane by
// lane: every pair visits-or-culls every grid sample exactly once.
TEST(FastModeParity, ChunkingAndSampleConservation) {
  std::mt19937_64 rng(55);
  std::vector<Tle> tles;
  std::vector<Sgp4> props;
  for (int i = 0; i < 5; ++i) {
    tles.push_back(random_tle(rng, i * 17 + 4));
    props.emplace_back(tles.back());
  }
  std::vector<const Sgp4*> sat_ptrs;
  for (const Sgp4& p : props) sat_ptrs.push_back(&p);
  const std::vector<GridObserver> observers{
      GridObserver{Geodetic{22.3, 114.2, 0.05}},
      GridObserver{Geodetic{-33.87, 151.2, 0.02}, 10.0},
      GridObserver{Geodetic{60.17, 24.94, 0.0}, 5.0}};
  std::vector<orbit::PairTask> pairs;
  for (std::size_t s = 0; s < props.size(); ++s)
    for (std::size_t o = 0; o < observers.size(); ++o)
      pairs.push_back(orbit::PairTask{s, o});
  const JulianDate jd0 = core::campaign_epoch_jd();
  const JulianDate jd1 = jd0 + 1.0;
  PassPredictionOptions opts;
  opts.coarse_step_s = 30.0;

  orbit::EphemerisScanOptions fast_small;
  fast_small.mode = orbit::PropagationMode::kFast;
  fast_small.chunk_samples = 64;
  obs::MetricsRegistry metrics;
  const auto chunked =
      orbit::scan_pass_pairs(sat_ptrs, observers, pairs, jd0, jd1, opts,
                             fast_small, /*threads=*/1, &metrics);

  const orbit::ScanGrid grid(jd0, jd1, opts.coarse_step_s);
  const auto snap = metrics.snapshot();
  EXPECT_EQ(snap.counters.at("orbit.ephemeris.samples_visited") +
                snap.counters.at("orbit.ephemeris.samples_culled"),
            pairs.size() * grid.size());

  orbit::EphemerisScanOptions fast_default;
  fast_default.mode = orbit::PropagationMode::kFast;
  const auto unchunked = orbit::scan_pass_pairs(
      sat_ptrs, observers, pairs, jd0, jd1, opts, fast_default,
      /*threads=*/1);
  ASSERT_EQ(chunked.size(), unchunked.size());
  for (std::size_t p = 0; p < pairs.size(); ++p)
    expect_bit_identical(chunked[p], unchunked[p],
                         "chunked pair " + std::to_string(p));

  // Multi-threaded fast scan: blocks are disjoint over pairs, so the
  // pooled scan is bit-identical to the serial fast scan.
  const auto pooled = orbit::scan_pass_pairs(sat_ptrs, observers, pairs,
                                             jd0, jd1, opts, fast_default,
                                             /*threads=*/4);
  for (std::size_t p = 0; p < pairs.size(); ++p)
    expect_bit_identical(pooled[p], unchunked[p],
                         "pooled pair " + std::to_string(p));
}

TEST(FastModeParity, SimdCountersAndModeGauge) {
  std::mt19937_64 rng(61);
  std::vector<Tle> tles;
  std::vector<Sgp4> props;
  for (int i = 0; i < 6; ++i) {
    tles.push_back(random_tle(rng, i * 3));
    props.emplace_back(tles.back());
  }
  std::vector<const Sgp4*> sat_ptrs;
  for (const Sgp4& p : props) sat_ptrs.push_back(&p);
  const std::vector<GridObserver> observers{
      GridObserver{Geodetic{22.3, 114.2, 0.05}}};
  std::vector<orbit::PairTask> pairs;
  for (std::size_t s = 0; s < props.size(); ++s)
    pairs.push_back(orbit::PairTask{s, 0});
  const JulianDate jd0 = core::campaign_epoch_jd();
  const JulianDate jd1 = jd0 + 0.3;
  PassPredictionOptions opts;
  opts.coarse_step_s = 60.0;

  orbit::EphemerisScanOptions fast_opts;
  fast_opts.mode = orbit::PropagationMode::kFast;
  obs::MetricsRegistry fast_metrics;
  (void)orbit::scan_pass_pairs(sat_ptrs, observers, pairs, jd0, jd1, opts,
                               fast_opts, /*threads=*/1, &fast_metrics);
  const auto fast_snap = fast_metrics.snapshot();
  EXPECT_EQ(fast_snap.gauges.at("orbit.simd.mode").value, 1.0);
  EXPECT_GT(fast_snap.counters.at("orbit.simd.lanes_filled"),
            static_cast<std::uint64_t>(0));
  // Healthy TLEs never fall back to the scalar propagator.
  EXPECT_EQ(fast_snap.counters.at("orbit.simd.scalar_fallbacks"),
            static_cast<std::uint64_t>(0));

  // Pin the mode instead of passing {}: the default tracks the global,
  // and this suite must pass under SINET_PROPAGATION_MODE=fast too.
  orbit::EphemerisScanOptions ref_opts;
  ref_opts.mode = orbit::PropagationMode::kReference;
  obs::MetricsRegistry ref_metrics;
  (void)orbit::scan_pass_pairs(sat_ptrs, observers, pairs, jd0, jd1, opts,
                               ref_opts, /*threads=*/1, &ref_metrics);
  const auto ref_snap = ref_metrics.snapshot();
  EXPECT_EQ(ref_snap.gauges.at("orbit.simd.mode").value, 0.0);
  EXPECT_EQ(ref_snap.counters.count("orbit.simd.lanes_filled"), 0u);
}

TEST(PropagationMode, ParseSetAndDefaultPlumbing) {
  using orbit::PropagationMode;
  EXPECT_EQ(orbit::parse_propagation_mode("reference"),
            PropagationMode::kReference);
  EXPECT_EQ(orbit::parse_propagation_mode("scalar"),
            PropagationMode::kReference);
  EXPECT_EQ(orbit::parse_propagation_mode("fast"), PropagationMode::kFast);
  EXPECT_EQ(orbit::parse_propagation_mode("simd"), PropagationMode::kFast);
  EXPECT_THROW((void)orbit::parse_propagation_mode("turbo"),
               std::invalid_argument);

  EXPECT_STREQ(orbit::propagation_mode_name(PropagationMode::kReference),
               "reference");
  EXPECT_STREQ(orbit::propagation_mode_name(PropagationMode::kFast), "fast");

  // The global default threads into freshly constructed scan options.
  const PropagationMode before = orbit::propagation_mode();
  orbit::set_propagation_mode(PropagationMode::kFast);
  EXPECT_EQ(orbit::propagation_mode(), PropagationMode::kFast);
  EXPECT_EQ(orbit::EphemerisScanOptions{}.mode, PropagationMode::kFast);
  orbit::set_propagation_mode(PropagationMode::kReference);
  EXPECT_EQ(orbit::EphemerisScanOptions{}.mode,
            PropagationMode::kReference);
  orbit::set_propagation_mode(before);
}

// ---------------------------------------------------------------------
// RollingEphemeris — the resident service's incrementally advanced
// horizon (docs/SERVICE.md). Contract: scanning the retained horizon is
// bit-identical to a fresh full-span scan over the same
// [start_time, end_time], no matter how the horizon got there (chunked
// leading-edge appends + trailing-edge retirements). The grid times are
// one float accumulation continued across chunks, so a fresh ScanGrid
// anchored at any retained sample reproduces the rest exactly.
// ---------------------------------------------------------------------

TEST(RollingEphemeris, IncrementalAdvanceIsBitIdenticalToFreshScan) {
  std::mt19937_64 rng(41);
  std::vector<Tle> tles;
  std::vector<Sgp4> props;
  for (int i = 0; i < 5; ++i) {
    tles.push_back(random_tle(rng, i * 19 + 6));
    props.emplace_back(tles.back());
  }
  std::vector<const Sgp4*> sat_ptrs;
  for (const Sgp4& p : props) sat_ptrs.push_back(&p);

  const JulianDate anchor = core::campaign_epoch_jd();
  orbit::RollingEphemeris::Options ropts;
  ropts.coarse_step_s = 30.0;
  ropts.chunk_samples = 128;  // small chunks: many boundary crossings
  orbit::RollingEphemeris rolling(sat_ptrs, anchor, ropts);
  EXPECT_TRUE(rolling.empty());

  const std::vector<GridObserver> observers{
      GridObserver{Geodetic{22.3, 114.2, 0.05}},
      GridObserver{Geodetic{51.5, -0.13, 0.035}, 10.0},
      GridObserver{Geodetic{60.17, 24.94, 0.0}, 5.0}};
  PassPredictionOptions popts;
  popts.coarse_step_s = ropts.coarse_step_s;
  popts.min_elevation_deg = 5.0;  // NaN-mask observers fall back to this

  // Advance the leading edge in uneven slices, retiring history as the
  // service's maintenance thread would, and check parity at each stage.
  double retire = anchor;
  for (const double cover_days : {0.11, 0.35, 0.62, 1.0}) {
    (void)rolling.advance(retire, anchor + cover_days);
    retire = anchor + cover_days * 0.4;
    ASSERT_FALSE(rolling.empty());
    EXPECT_GE(rolling.end_time(), anchor + cover_days);

    for (std::size_t s = 0; s < sat_ptrs.size(); ++s) {
      for (std::size_t o = 0; o < observers.size(); ++o) {
        const GridObserver& site = observers[o];
        PassPredictionOptions lopts = popts;
        if (!std::isnan(site.min_elevation_deg))
          lopts.min_elevation_deg = site.min_elevation_deg;
        const auto got = rolling.scan_satellite(s, site, popts);
        const auto want =
            orbit::predict_passes(props[s], site.location,
                                  rolling.start_time(), rolling.end_time(),
                                  lopts);
        expect_bit_identical(got, want,
                             "cover " + std::to_string(cover_days) +
                                 " sat " + std::to_string(s) + " site " +
                                 std::to_string(o));
      }
    }
  }
  EXPECT_GT(rolling.chunk_count(), 1u);
  EXPECT_GT(rolling.base_index(), 0u);  // retirement actually happened
  EXPECT_GT(rolling.propagations(), 0u);

  // scan_observer is the per-site fan-out of scan_satellite.
  const auto per_sat = rolling.scan_observer(observers[0], popts);
  ASSERT_EQ(per_sat.size(), sat_ptrs.size());
  for (std::size_t s = 0; s < sat_ptrs.size(); ++s)
    expect_bit_identical(per_sat[s],
                         rolling.scan_satellite(s, observers[0], popts),
                         "scan_observer sat " + std::to_string(s));
}

TEST(RollingEphemeris, CullOffAndCullOnAreBitIdentical) {
  std::mt19937_64 rng(43);
  std::vector<Tle> tles;
  std::vector<Sgp4> props;
  for (int i = 0; i < 3; ++i) {
    tles.push_back(random_tle(rng, i * 23 + 9));
    props.emplace_back(tles.back());
  }
  std::vector<const Sgp4*> sat_ptrs;
  for (const Sgp4& p : props) sat_ptrs.push_back(&p);
  const JulianDate anchor = core::campaign_epoch_jd();

  orbit::RollingEphemeris::Options culled;
  culled.chunk_samples = 256;
  orbit::RollingEphemeris::Options exact = culled;
  exact.cull = false;
  orbit::RollingEphemeris r1(sat_ptrs, anchor, culled);
  orbit::RollingEphemeris r2(sat_ptrs, anchor, exact);
  (void)r1.advance(anchor, anchor + 0.5);
  (void)r2.advance(anchor, anchor + 0.5);

  const GridObserver site{Geodetic{-33.87, 151.2, 0.02}, 10.0};
  PassPredictionOptions popts;
  for (std::size_t s = 0; s < sat_ptrs.size(); ++s)
    expect_bit_identical(r1.scan_satellite(s, site, popts),
                         r2.scan_satellite(s, site, popts),
                         "cull arm sat " + std::to_string(s));
}

TEST(RollingEphemeris, RetirementBoundsResidencyAndKeepsCoverage) {
  std::mt19937_64 rng(47);
  const Tle tle = random_tle(rng, 12);
  const Sgp4 prop(tle);
  const JulianDate anchor = core::campaign_epoch_jd();
  orbit::RollingEphemeris::Options ropts;
  ropts.chunk_samples = 64;
  orbit::RollingEphemeris rolling({&prop}, anchor, ropts);

  auto stats = rolling.advance(anchor, anchor + 0.4);
  EXPECT_GT(stats.chunks_appended, 0u);
  EXPECT_EQ(stats.chunks_retired, 0u);
  EXPECT_GT(stats.propagations, 0u);
  const std::size_t full_bytes = rolling.resident_bytes();
  const std::size_t full_chunks = rolling.chunk_count();

  // Covered already: a second advance is a no-op.
  stats = rolling.advance(anchor, anchor + 0.4);
  EXPECT_EQ(stats.chunks_appended, 0u);
  EXPECT_EQ(stats.propagations, 0u);

  // Retire most of the history: residency shrinks, but the chunk holding
  // `retire_before` itself is kept, so the retained span still covers it.
  const JulianDate retire = anchor + 0.3;
  stats = rolling.advance(retire, anchor + 0.4);
  EXPECT_GT(stats.chunks_retired, 0u);
  EXPECT_LT(rolling.chunk_count(), full_chunks);
  EXPECT_LT(rolling.resident_bytes(), full_bytes);
  EXPECT_LE(rolling.start_time(), retire);
  EXPECT_GE(rolling.end_time(), anchor + 0.4);

  // Absolute sample indices survive retirement: sample_time(base_index)
  // is the first retained time and nearest_index clamps into range.
  EXPECT_EQ(rolling.sample_time(rolling.base_index()), rolling.start_time());
  EXPECT_EQ(rolling.nearest_index(anchor - 1.0), rolling.base_index());
  EXPECT_EQ(rolling.nearest_index(anchor + 9.0), rolling.end_index() - 1);
  EXPECT_THROW((void)rolling.sample_time(rolling.base_index() - 1),
               std::out_of_range);
  EXPECT_THROW((void)rolling.sample_time(rolling.end_index()),
               std::out_of_range);
}

TEST(RollingEphemeris, RejectsBadArguments) {
  std::mt19937_64 rng(53);
  const Tle tle = random_tle(rng, 30);
  const Sgp4 prop(tle);
  const JulianDate anchor = core::campaign_epoch_jd();

  orbit::RollingEphemeris::Options zero_step;
  zero_step.coarse_step_s = 0.0;
  EXPECT_THROW(orbit::RollingEphemeris({&prop}, anchor, zero_step),
               std::invalid_argument);
  orbit::RollingEphemeris::Options zero_chunk;
  zero_chunk.chunk_samples = 0;
  EXPECT_THROW(orbit::RollingEphemeris({&prop}, anchor, zero_chunk),
               std::invalid_argument);

  orbit::RollingEphemeris rolling({&prop}, anchor);
  const GridObserver site{Geodetic{22.3, 114.2, 0.05}};
  PassPredictionOptions popts;
  // Scanning an empty horizon, an out-of-range satellite, or with a
  // coarse step that disagrees with the resident grid must all throw
  // (the step mismatch would silently break the parity contract).
  EXPECT_THROW((void)rolling.scan_satellite(0, site, popts),
               std::logic_error);
  (void)rolling.advance(anchor, anchor + 0.05);
  EXPECT_THROW((void)rolling.scan_satellite(1, site, popts),
               std::out_of_range);
  PassPredictionOptions wrong_step;
  wrong_step.coarse_step_s = 60.0;
  EXPECT_THROW((void)rolling.scan_satellite(0, site, wrong_step),
               std::invalid_argument);
}

// Satellite task: the cache's byte budget. Entries charge payload
// capacity plus fixed overhead; exceeding max_bytes evicts LRU-first
// (but never the entry just inserted).
TEST(ContactWindowCache, ByteBudgetEvictsLruAndAccountsBytes) {
  std::mt19937_64 rng(37);
  const Geodetic site{22.3, 114.2, 0.05};
  const JulianDate jd0 = core::campaign_epoch_jd();
  const JulianDate jd1 = jd0 + 0.25;

  // Budget fits roughly two busy entries, far below the entry cap, so
  // every eviction in this test is byte-driven.
  orbit::ContactWindowCache cache(
      /*max_entries=*/1024,
      /*max_bytes=*/2 * (orbit::ContactWindowCache::kEntryOverheadBytes +
                         8 * sizeof(ContactWindow)));

  std::vector<Tle> tles;
  for (int i = 0; i < 4; ++i) tles.push_back(random_tle(rng, i * 11 + 7));
  for (const Tle& tle : tles) (void)cache.get_or_predict(tle, site, jd0, jd1);

  const auto st = cache.stats();
  EXPECT_EQ(st.misses, tles.size());
  EXPECT_LT(st.entries, tles.size());  // budget forced evictions
  EXPECT_GE(st.entries, 1u);           // never evicts below one entry
  EXPECT_GE(st.bytes,
            st.entries * orbit::ContactWindowCache::kEntryOverheadBytes);

  // The most recent key survived; the oldest was the victim.
  (void)cache.get_or_predict(tles.back(), site, jd0, jd1);
  EXPECT_EQ(cache.stats().hits, 1u);
  (void)cache.get_or_predict(tles.front(), site, jd0, jd1);
  EXPECT_EQ(cache.stats().hits, 1u);  // recomputed, not a hit

  // An unbounded cache (max_bytes = 0) still accounts bytes.
  orbit::ContactWindowCache unbounded;
  (void)unbounded.get_or_predict(tles[0], site, jd0, jd1);
  EXPECT_GE(unbounded.stats().bytes,
            orbit::ContactWindowCache::kEntryOverheadBytes);
}

TEST(ContactWindowCache, PropagatesComputationErrors) {
  std::mt19937_64 rng(31);
  const Tle tle = random_tle(rng, 4);
  const Geodetic site{22.3, 114.2, 0.05};
  const JulianDate jd0 = core::campaign_epoch_jd();

  orbit::ContactWindowCache cache;
  // predict_passes rejects the inverted span; the owner's exception must
  // surface and the in-flight slot must be cleaned up so the key works
  // again afterwards.
  EXPECT_THROW((void)cache.get_or_predict(tle, site, jd0, jd0 - 1.0),
               std::invalid_argument);
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_FALSE(cache.get_or_predict(tle, site, jd0, jd0 + 1.0).empty());
}

}  // namespace
}  // namespace sinet
