// DtS optimization features the paper's conclusion calls for:
// scheduled MAC (CosMAC-style), Doppler pre-compensation, adaptive SF,
// and satellite buffer drop policies.
#include <gtest/gtest.h>

#include "core/scenario.h"
#include "net/dts_network.h"
#include "net/mac.h"
#include "net/satellite.h"
#include "phy/lora.h"

namespace {

using namespace sinet;
using namespace sinet::net;

DtsNetworkConfig base_config(double days = 1.5) {
  DtsNetworkConfig cfg = tianqi_agriculture_config(
      sinet::core::campaign_epoch_jd(), days);
  return cfg;
}

TEST(Subslots, NonOverlappingWithinPeriod) {
  const auto offsets = assign_subslots(3, 0.4, 30.0, 0.2, 0.3);
  ASSERT_EQ(offsets.size(), 3u);
  for (std::size_t i = 1; i < offsets.size(); ++i)
    EXPECT_GE(offsets[i] - offsets[i - 1], 0.4 + 0.2 - 1e-9);
  for (const double o : offsets) {
    EXPECT_GE(o, 0.3);
    EXPECT_LE(o + 0.4, 30.0);
  }
}

TEST(Subslots, OversubscriptionCycles) {
  // A 2-second period fits three 0.4 s slots (0.2, 0.7, 1.2 — the next
  // would end at 2.1 > 2.0); extra responders reuse them cyclically.
  const auto offsets = assign_subslots(10, 0.4, 2.0, 0.1, 0.2);
  ASSERT_EQ(offsets.size(), 10u);
  EXPECT_DOUBLE_EQ(offsets[0], offsets[3]);  // slots_per_period == 3
  for (const double o : offsets) EXPECT_LE(o + 0.4, 2.0 + 1e-9);
}

TEST(Subslots, InvalidArgumentsThrow) {
  EXPECT_THROW(assign_subslots(3, 0.0, 30.0), std::invalid_argument);
  EXPECT_THROW(assign_subslots(3, 0.4, 0.0), std::invalid_argument);
  EXPECT_THROW(assign_subslots(3, 0.4, 30.0, -1.0), std::invalid_argument);
}

TEST(ScheduledMac, EliminatesIntraFootprintCollisions) {
  DtsNetworkConfig aloha = base_config();
  DtsNetworkConfig sched = base_config();
  sched.uplink_access = UplinkAccess::kScheduled;
  const auto a = run_dts_network(aloha);
  const auto s = run_dts_network(sched);
  // Scheduled access cannot produce self-collisions among the three
  // nodes, and the coordinated footprint suppresses background losses.
  EXPECT_LT(s.counters.uplinks_collided, a.counters.uplinks_collided + 1);
  EXPECT_LE(s.counters.background_losses, a.counters.background_losses);
}

TEST(ScheduledMac, DoesNotHurtReliability) {
  DtsNetworkConfig aloha = base_config();
  DtsNetworkConfig sched = base_config();
  sched.uplink_access = UplinkAccess::kScheduled;
  const double rel_aloha = run_dts_network(aloha).delivered_fraction();
  const double rel_sched = run_dts_network(sched).delivered_fraction();
  EXPECT_GE(rel_sched, rel_aloha - 0.05);
}

TEST(DopplerPrecompensation, ReducesResidualShift) {
  DtsNetworkConfig cfg = base_config();
  cfg.doppler_precompensation = true;
  cfg.precompensation_residual = 0.05;
  // Behavioral check: run completes and uplink success does not degrade.
  DtsNetworkConfig plain = base_config();
  const auto comp = run_dts_network(cfg);
  const auto base = run_dts_network(plain);
  const double succ_comp =
      static_cast<double>(comp.counters.uplinks_received) /
      static_cast<double>(comp.counters.uplink_attempts);
  const double succ_base =
      static_cast<double>(base.counters.uplinks_received) /
      static_cast<double>(base.counters.uplink_attempts);
  EXPECT_GE(succ_comp, succ_base - 0.03);
}

TEST(AdaptiveSf, ChooserPicksFastestSafeSf) {
  using phy::SpreadingFactor;
  // Plenty of SNR: fastest SF.
  EXPECT_EQ(phy::choose_spreading_factor(10.0), SpreadingFactor::kSf7);
  // -7.5 threshold + 3 safety: SF7 needs -4.5.
  EXPECT_EQ(phy::choose_spreading_factor(-4.5), SpreadingFactor::kSf7);
  EXPECT_EQ(phy::choose_spreading_factor(-5.0), SpreadingFactor::kSf8);
  EXPECT_EQ(phy::choose_spreading_factor(-12.0), SpreadingFactor::kSf10);
  // Hopeless link: most robust SF.
  EXPECT_EQ(phy::choose_spreading_factor(-30.0), SpreadingFactor::kSf12);
}

TEST(AdaptiveSf, CutsAirtimeWithoutLosingPackets) {
  DtsNetworkConfig fixed = base_config();
  DtsNetworkConfig adr = base_config();
  adr.adaptive_sf = true;
  const auto f = run_dts_network(fixed);
  const auto a = run_dts_network(adr);
  // Total node airtime should drop (faster SFs on good links).
  double tx_fixed = 0.0, tx_adr = 0.0;
  for (const auto& r : f.node_residency)
    tx_fixed += r.seconds_in(energy::Mode::kTx);
  for (const auto& r : a.node_residency)
    tx_adr += r.seconds_in(energy::Mode::kTx);
  EXPECT_LT(tx_adr, tx_fixed);
  EXPECT_GE(a.delivered_fraction(), f.delivered_fraction() - 0.08);
}

TEST(DropPolicy, OldestEvictionAdmitsFreshPackets) {
  StoreAndForwardBuffer buf(2, DropPolicy::kDropOldest);
  for (std::uint64_t i = 0; i < 4; ++i) {
    StoredPacket p;
    p.packet.sequence = i;
    EXPECT_TRUE(buf.store(std::move(p)));
  }
  EXPECT_EQ(buf.drop_count(), 2u);
  const auto out = buf.flush();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].packet.sequence, 2u);  // oldest two were evicted
  EXPECT_EQ(out[1].packet.sequence, 3u);
}

TEST(DropPolicy, ConfigurableOnSatellites) {
  DtsNetworkConfig cfg = base_config();
  cfg.satellite_drop_policy = DropPolicy::kDropOldest;
  cfg.satellite_buffer_capacity = 4;  // force pressure
  const auto res = run_dts_network(cfg);
  // Run completes; drops may occur but the sim stays consistent.
  EXPECT_GT(res.uplinks.size(), 0u);
}

TEST(DownlinkCapacity, RateLimitDelaysDelivery) {
  DtsNetworkConfig unlimited = base_config();
  DtsNetworkConfig limited = base_config();
  limited.downlink_packets_per_contact = 1;  // drip-feed downlink
  const auto u = run_dts_network(unlimited);
  const auto l = run_dts_network(limited);
  // Packets still (mostly) arrive, but the drained backlog takes more
  // ground-station contacts: mean delivery segment grows.
  const auto bu = u.mean_latency_breakdown();
  const auto bl = l.mean_latency_breakdown();
  EXPECT_GT(bl.delivery_s, bu.delivery_s);
}

TEST(AllOptimizationsTogether, ImproveOrMatchBaseline) {
  DtsNetworkConfig best = base_config();
  best.uplink_access = UplinkAccess::kScheduled;
  best.doppler_precompensation = true;
  best.adaptive_sf = true;
  const auto optimized = run_dts_network(best);
  const auto baseline = run_dts_network(base_config());
  EXPECT_GE(optimized.delivered_fraction(),
            baseline.delivered_fraction() - 0.05);
}

}  // namespace
