#!/bin/sh
# Regression test for --metrics flushing on signals (examples/sinet_cli.cpp).
#
# Long-running subcommands used to lose the run report when interrupted:
# main() only wrote it on a clean rc == 0 exit, and the default SIGINT /
# SIGTERM disposition killed the process before that line ran. The CLI
# now routes both signals through a sigwait() watcher, so:
#   - batch subcommands (dts, sweep, ...) flush the report with an
#     `interrupted` info key and exit 128+signo;
#   - `serve` turns the first signal into a graceful drain and exits 0
#     through the normal report-writing path.
#
# Usage: signal_flush_test.sh <sinet-binary> <scratch-dir>
set -e
SINET="$1"
DIR="$2"
[ -x "$SINET" ] || { echo "no sinet binary at '$SINET'"; exit 1; }
mkdir -p "$DIR"

# ---- batch subcommand: SIGTERM must flush, then exit 128+15 ----------
METRICS="$DIR/signal_flush_dts.json"
rm -f "$METRICS"
# Sized to run for minutes on one core, so the signal always lands
# mid-run; the watcher kills it ~2 s in.
"$SINET" dts --nodes 200000 --sats 30 --days 5 --metrics "$METRICS" \
  > "$DIR/signal_flush_dts.log" 2>&1 &
PID=$!
sleep 2
kill -TERM "$PID" 2>/dev/null || { echo "dts finished too early"; exit 1; }
rc=0
wait "$PID" || rc=$?
[ "$rc" -eq 143 ] || { echo "dts: expected exit 143, got $rc"; exit 1; }
python3 - "$METRICS" <<'EOF'
import json, sys
report = json.load(open(sys.argv[1]))
info = report.get("info", {})
assert info.get("interrupted") == "SIGTERM", info
assert info.get("command") == "dts", info
assert info.get("tool") == "sinet_cli", info
EOF
echo "dts: interrupted report flushed, exit 143"

# ---- serve: SIGINT must drain gracefully and exit 0 ------------------
METRICS="$DIR/signal_flush_serve.json"
OUT="$DIR/signal_flush_serve.log"
rm -f "$METRICS" "$OUT"
"$SINET" serve --constellation FOSSA --horizon-hours 2 \
  --metrics "$METRICS" > "$OUT" 2>&1 &
PID=$!
# Wait until the server reports its bound port (fully started).
i=0
until grep -q "serve.port=" "$OUT" 2>/dev/null; do
  i=$((i + 1))
  [ "$i" -le 60 ] || { echo "serve never started"; cat "$OUT"; exit 1; }
  sleep 1
done
kill -INT "$PID"
rc=0
wait "$PID" || rc=$?
[ "$rc" -eq 0 ] || { echo "serve: expected exit 0, got $rc"; cat "$OUT"; exit 1; }
grep -q "serve.requests=" "$OUT" || { echo "serve: no final stats"; exit 1; }
python3 - "$METRICS" <<'EOF'
import json, sys
report = json.load(open(sys.argv[1]))
info = report.get("info", {})
assert "interrupted" not in info, info   # graceful path, not the flush path
assert info.get("command") == "serve", info
EOF
echo "serve: graceful drain, exit 0, report written"
echo "signal flush ok"
