// Monte-Carlo sweep engine: spec round-trip, deterministic expansion,
// thread-count parity, and the kill-and-resume bit-identity guarantee.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "exp/sweep_runner.h"
#include "exp/sweep_spec.h"
#include "obs/metrics.h"
#include "sim/rng.h"

namespace {

using namespace sinet;
using namespace sinet::exp;

SweepSpec small_spec() {
  SweepSpec spec;
  spec.name = "unit";
  spec.runner = "synthetic";
  spec.root_seed = 42;
  spec.replicates = 3;
  spec.axes = {{"alpha", {0.5, 1.5}}, {"beta", {10.0, 20.0}}};
  return spec;
}

/// Cheap deterministic runner: metrics are pure functions of the point's
/// seed and params, with a few RNG draws so replicates actually differ.
PointMetrics synthetic_runner(const RunPoint& p) {
  sim::Rng rng(p.seed);
  const double alpha = p.param_or("alpha", 0.0);
  const double beta = p.param_or("beta", 0.0);
  return {{"score", alpha * beta + rng.normal()},
          {"noise", rng.uniform()}};
}

std::string temp_path(const std::string& stem) {
  return testing::TempDir() + stem;
}

TEST(SweepSpec, CountsAndCellDecoding) {
  const SweepSpec spec = small_spec();
  EXPECT_EQ(spec.cell_count(), 4u);
  EXPECT_EQ(spec.point_count(), 12u);
  // Axis 0 varies fastest.
  const PointParams p0 = spec.cell_params(0);
  const PointParams p1 = spec.cell_params(1);
  const PointParams p2 = spec.cell_params(2);
  EXPECT_EQ(p0[0].second, 0.5);
  EXPECT_EQ(p0[1].second, 10.0);
  EXPECT_EQ(p1[0].second, 1.5);
  EXPECT_EQ(p1[1].second, 10.0);
  EXPECT_EQ(p2[0].second, 0.5);
  EXPECT_EQ(p2[1].second, 20.0);
  EXPECT_THROW((void)spec.cell_params(4), std::invalid_argument);
}

TEST(SweepSpec, ValidateRejectsBadSpecs) {
  SweepSpec spec = small_spec();
  spec.replicates = 0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = small_spec();
  spec.runner.clear();
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = small_spec();
  spec.axes.push_back({"alpha", {1.0}});  // duplicate param
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = small_spec();
  spec.axes.push_back({"gamma", {}});  // empty axis
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST(SweepSpec, JsonRoundTripIsExact) {
  const SweepSpec spec = small_spec();
  EXPECT_EQ(parse_spec_json(to_json(spec)), spec);
  // And a spec with no axes (single cell) survives too.
  SweepSpec flat;
  flat.name = "flat";
  flat.runner = "active";
  flat.replicates = 1;
  EXPECT_EQ(parse_spec_json(to_json(flat)), flat);
}

TEST(SweepSpec, ParseRejectsGarbage) {
  EXPECT_THROW((void)parse_spec_json("not json"), std::runtime_error);
  EXPECT_THROW((void)parse_spec_json("{}"), std::runtime_error);
  EXPECT_THROW(
      (void)parse_spec_json(
          "{\"schema\": \"sinet.sweep_spec.v2\", \"runner\": \"x\"}"),
      std::runtime_error);
}

TEST(SweepSpec, ExpansionSeedsFollowTheDerivationScheme) {
  const SweepSpec spec = small_spec();
  const auto points = expand(spec);
  ASSERT_EQ(points.size(), 12u);
  for (const RunPoint& p : points) {
    EXPECT_EQ(p.seed,
              sim::derive_seed(spec.root_seed,
                               "point/" + std::to_string(p.grid_index) +
                                   "/rep/" + std::to_string(p.replicate)));
    EXPECT_EQ(p.params, spec.cell_params(p.grid_index));
  }
  // Ordered by (grid_index, replicate).
  EXPECT_EQ(points[0].grid_index, 0u);
  EXPECT_EQ(points[0].replicate, 0u);
  EXPECT_EQ(points[2].replicate, 2u);
  EXPECT_EQ(points[3].grid_index, 1u);
}

TEST(SweepSpec, AddingReplicatesKeepsExistingSeeds) {
  SweepSpec spec = small_spec();
  const auto before = expand(spec);
  spec.replicates += 5;
  const auto after = expand(spec);
  for (const RunPoint& p : before) {
    const std::size_t i = p.grid_index * spec.replicates + p.replicate;
    EXPECT_EQ(after[i].seed, p.seed);
  }
}

TEST(SweepSpec, AppendingAnAxisKeepsExistingCellIndices) {
  SweepSpec spec = small_spec();
  const auto before = expand(spec);
  // Appending an axis: existing cells become the new axis's first value
  // and keep their flat indices (axis 0 varies fastest), so their seeds
  // and draws are unperturbed.
  spec.axes.push_back({"gamma", {1.0, 2.0}});
  const auto after = expand(spec);
  for (std::size_t g = 0; g < 4; ++g)
    for (std::size_t r = 0; r < spec.replicates; ++r) {
      const std::size_t i = g * spec.replicates + r;
      EXPECT_EQ(after[i].grid_index, g);
      EXPECT_EQ(after[i].seed, before[i].seed);
      EXPECT_EQ(after[i].param_or("gamma", -1.0), 1.0);
    }
}

TEST(SweepRunner, BuiltInRunnersResolve) {
  EXPECT_NO_THROW((void)built_in_runner("active"));
  EXPECT_NO_THROW((void)built_in_runner("passive"));
  EXPECT_NO_THROW((void)built_in_runner("availability"));
  EXPECT_THROW((void)built_in_runner("nope"), std::invalid_argument);
}

TEST(SweepAccumulator, AggregateIsInsertionOrderIndependent) {
  const SweepSpec spec = small_spec();
  const auto points = expand(spec);
  SweepAccumulator fwd, rev;
  for (const RunPoint& p : points) fwd.add(p, synthetic_runner(p));
  for (auto it = points.rbegin(); it != points.rend(); ++it)
    rev.add(*it, synthetic_runner(*it));
  EXPECT_EQ(fwd.aggregate(spec.root_seed), rev.aggregate(spec.root_seed));
}

TEST(SweepAccumulator, MeanAndStddevAreCorrect) {
  SweepAccumulator acc;
  RunPoint p;
  for (std::size_t r = 0; r < 3; ++r) {
    p.replicate = r;
    acc.add(p, {{"m", static_cast<double>(r + 1)}});  // 1, 2, 3
  }
  const auto cells = acc.aggregate(7);
  ASSERT_EQ(cells.size(), 1u);
  const MetricAggregate& m = cells[0].metrics.at("m");
  EXPECT_EQ(m.n, 3u);
  EXPECT_DOUBLE_EQ(m.mean, 2.0);
  EXPECT_DOUBLE_EQ(m.stddev, 1.0);
  EXPECT_LE(m.ci_low, m.mean);
  EXPECT_GE(m.ci_high, m.mean);
}

TEST(SweepRunner, ThreadCountsProduceIdenticalResults) {
  const SweepSpec spec = small_spec();
  SweepOptions serial;
  serial.threads = 1;
  SweepOptions pooled;
  pooled.threads = 4;
  const SweepResult a = run_sweep(spec, synthetic_runner, serial);
  const SweepResult b = run_sweep(spec, synthetic_runner, pooled);
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_EQ(a.points[i].first, b.points[i].first);
    EXPECT_EQ(a.points[i].second, b.points[i].second);
  }
  EXPECT_EQ(a.cells, b.cells);
  EXPECT_EQ(report_json(a), report_json(b));
}

TEST(SweepRunner, InterruptedThenResumedIsBitIdentical) {
  const SweepSpec spec = small_spec();
  const std::string manifest = temp_path("sweep_resume.manifest");

  SweepOptions uninterrupted;
  uninterrupted.threads = 2;
  const SweepResult full = run_sweep(spec, synthetic_runner, uninterrupted);
  ASSERT_TRUE(full.complete);

  SweepOptions part;
  part.threads = 2;
  part.manifest_path = manifest;
  part.fresh = true;
  part.max_points = 5;  // "killed" after 5 of 12 points
  const SweepResult interrupted = run_sweep(spec, synthetic_runner, part);
  EXPECT_FALSE(interrupted.complete);
  EXPECT_EQ(interrupted.executed_points, 5u);

  SweepOptions resume;
  resume.threads = 2;
  resume.manifest_path = manifest;
  const SweepResult resumed = run_sweep(spec, synthetic_runner, resume);
  EXPECT_TRUE(resumed.complete);
  EXPECT_EQ(resumed.resumed_points, 5u);
  EXPECT_EQ(resumed.executed_points, 7u);

  EXPECT_EQ(resumed.points, full.points);
  EXPECT_EQ(resumed.cells, full.cells);
  // The acceptance criterion: byte-identical aggregate documents.
  EXPECT_EQ(report_json(resumed), report_json(full));
  std::remove(manifest.c_str());
}

TEST(SweepRunner, ManifestFromDifferentSpecIsRejected) {
  const SweepSpec spec = small_spec();
  const std::string manifest = temp_path("sweep_mismatch.manifest");
  SweepOptions opts;
  opts.threads = 1;
  opts.manifest_path = manifest;
  opts.fresh = true;
  (void)run_sweep(spec, synthetic_runner, opts);

  SweepSpec changed = spec;
  changed.root_seed = 43;
  SweepOptions resume;
  resume.threads = 1;
  resume.manifest_path = manifest;
  EXPECT_THROW((void)run_sweep(changed, synthetic_runner, resume),
               std::runtime_error);
  // --fresh overrides the stale manifest.
  resume.fresh = true;
  EXPECT_NO_THROW((void)run_sweep(changed, synthetic_runner, resume));
  std::remove(manifest.c_str());
}

TEST(SweepRunner, TornFinalManifestLineIsDropped) {
  const SweepSpec spec = small_spec();
  const std::string manifest = temp_path("sweep_torn.manifest");
  SweepOptions opts;
  opts.threads = 1;
  opts.manifest_path = manifest;
  opts.fresh = true;
  opts.max_points = 4;
  (void)run_sweep(spec, synthetic_runner, opts);

  // Simulate a kill mid-append: truncate the last line in half.
  std::ifstream in(manifest);
  std::ostringstream buf;
  buf << in.rdbuf();
  in.close();
  std::string contents = buf.str();
  contents.resize(contents.size() - 20);
  std::ofstream(manifest, std::ios::trunc) << contents;

  SweepOptions resume;
  resume.threads = 1;
  resume.manifest_path = manifest;
  const SweepResult resumed = run_sweep(spec, synthetic_runner, resume);
  EXPECT_TRUE(resumed.complete);
  EXPECT_EQ(resumed.resumed_points, 3u);  // the torn 4th point re-ran

  SweepOptions serial;
  serial.threads = 1;
  const SweepResult full = run_sweep(spec, synthetic_runner, serial);
  EXPECT_EQ(report_json(resumed), report_json(full));
  std::remove(manifest.c_str());
}

TEST(SweepRunner, ActiveBuiltInRunsAndRecordsMetrics) {
  SweepSpec spec;
  spec.name = "active-smoke";
  spec.runner = "active";
  spec.root_seed = 7;
  spec.replicates = 2;
  spec.axes = {{"duration_days", {0.5}}, {"max_retransmissions", {0.0}}};
  obs::MetricsRegistry registry;
  SweepOptions opts;
  opts.threads = 1;
  opts.metrics = &registry;
  const SweepResult res = run_sweep(spec, opts);
  ASSERT_TRUE(res.complete);
  ASSERT_EQ(res.cells.size(), 1u);
  const auto& metrics = res.cells[0].metrics;
  ASSERT_TRUE(metrics.contains("reliability"));
  EXPECT_GT(metrics.at("reliability").mean, 0.0);
  EXPECT_LE(metrics.at("reliability").mean, 1.0);
  EXPECT_EQ(metrics.at("reliability").n, 2u);
  // Replicates differ (different seeds), so the CI has width.
  EXPECT_LT(metrics.at("mean_latency_min").ci_low,
            metrics.at("mean_latency_min").ci_high);

  const auto snap = registry.snapshot();
  EXPECT_EQ(snap.counters.at("net.sweep.points_total"), 2u);
  EXPECT_EQ(snap.counters.at("net.sweep.points_executed"), 2u);
  EXPECT_EQ(snap.counters.at("net.sweep.cells"), 1u);
  EXPECT_TRUE(snap.gauges.contains("net.sweep.phase.execute_s"));
}

TEST(SweepRunner, ReportJsonCarriesSchemaAndCells) {
  const SweepSpec spec = small_spec();
  SweepOptions serial;
  serial.threads = 1;
  const SweepResult res = run_sweep(spec, synthetic_runner, serial);
  const std::string json = report_json(res);
  EXPECT_NE(json.find("\"schema\": \"sinet.sweep_report.v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"complete\": true"), std::string::npos);
  EXPECT_NE(json.find("\"grid_index\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"score\""), std::string::npos);
}

}  // namespace
