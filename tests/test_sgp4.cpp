// SGP4 propagator tests: physical invariants, consistency, error paths.
//
// We validate against physics rather than a stored ephemeris: orbit radius
// matches the elements, speed matches vis-viva, angular momentum is
// conserved to the J2-perturbation level, and the ground track repeats
// with the orbital period.
#include <gtest/gtest.h>

#include <cmath>

#include "orbit/sgp4.h"
#include "orbit/time.h"
#include "orbit/tle.h"

namespace {

using namespace sinet::orbit;

constexpr const char* kIssLine1 =
    "1 25544U 98067A   08264.51782528 -.00002182  00000-0 -11606-4 0  2927";
constexpr const char* kIssLine2 =
    "2 25544  51.6416 247.4627 0006703 130.5360 325.0288 15.72125391563537";

Tle circular_tle(double altitude_km, double inclination_deg,
                 double ecc = 0.0005) {
  KeplerianElements kep;
  kep.altitude_km = altitude_km;
  kep.eccentricity = ecc;
  kep.inclination_deg = inclination_deg;
  kep.raan_deg = 40.0;
  kep.arg_perigee_deg = 10.0;
  kep.mean_anomaly_deg = 20.0;
  return make_tle("TEST", 90000, kep, julian_from_civil(2025, 3, 1));
}

TEST(Sgp4, IssStateAtEpochIsPhysical) {
  const Sgp4 prop(parse_tle(kIssLine1, kIssLine2));
  const TemeState st = prop.at(0.0);
  const double r = st.position_km.norm();
  const double v = st.velocity_km_s.norm();
  // ISS: ~6720 km radius, ~7.66 km/s.
  EXPECT_NEAR(r, 6724.0, 15.0);
  EXPECT_NEAR(v, 7.70, 0.05);
}

TEST(Sgp4, SpacetrackReport3TestCase) {
  // The canonical near-earth SGP4 verification satellite (88888) from
  // Spacetrack Report #3. Reference TEME states (WGS-72):
  //   t=0:   r = ( 2328.970, -5995.221,  1719.971) km
  //          v = ( 2.91207, -0.98342, -7.09082) km/s
  //   t=360: r = ( 2456.107, -6071.939,  1222.897) km
  // Checksums are computed here so the 68-column bodies stay readable.
  const std::string body1 =
      "1 88888U          80275.98708465  .00073094  13844-3  66816-4 0    8";
  const std::string body2 =
      "2 88888  72.8435 115.9689 0086731  52.6988 110.5714 16.05824518  105";
  const std::string line1 =
      body1 + static_cast<char>('0' + tle_checksum(body1));
  const std::string line2 =
      body2 + static_cast<char>('0' + tle_checksum(body2));
  const Sgp4 prop(parse_tle(line1, line2));

  const TemeState st0 = prop.at(0.0);
  EXPECT_NEAR(st0.position_km.x, 2328.970, 2.0);
  EXPECT_NEAR(st0.position_km.y, -5995.221, 2.0);
  EXPECT_NEAR(st0.position_km.z, 1719.971, 2.0);
  EXPECT_NEAR(st0.velocity_km_s.x, 2.91207, 0.01);
  EXPECT_NEAR(st0.velocity_km_s.y, -0.98342, 0.01);
  EXPECT_NEAR(st0.velocity_km_s.z, -7.09082, 0.01);

  const TemeState st360 = prop.at(360.0);
  EXPECT_NEAR(st360.position_km.x, 2456.107, 5.0);
  EXPECT_NEAR(st360.position_km.y, -6071.939, 5.0);
  EXPECT_NEAR(st360.position_km.z, 1222.897, 5.0);
}

TEST(Sgp4, RadiusStaysWithinApsides) {
  const Tle tle = circular_tle(550.0, 97.6, 0.002);
  const Sgp4 prop(tle);
  const double a = tle.semi_major_axis_km();
  for (double t = 0.0; t < 1440.0; t += 7.0) {
    const double r = prop.at(t).position_km.norm();
    EXPECT_GT(r, a * (1.0 - 0.004));  // margin over e for J2 oscillation
    EXPECT_LT(r, a * (1.0 + 0.004));
  }
}

TEST(Sgp4, VisVivaHolds) {
  const Tle tle = circular_tle(860.0, 49.97);
  const Sgp4 prop(tle);
  const double a = tle.semi_major_axis_km();
  for (double t = 0.0; t < 200.0; t += 11.0) {
    const TemeState st = prop.at(t);
    const double r = st.position_km.norm();
    const double v = st.velocity_km_s.norm();
    const double vis_viva =
        std::sqrt(kMuEarthKm3PerS2 * (2.0 / r - 1.0 / a));
    EXPECT_NEAR(v, vis_viva, 0.02);
  }
}

TEST(Sgp4, PeriodMatchesMeanMotion) {
  const Tle tle = circular_tle(550.0, 97.6, 0.0001);
  const Sgp4 prop(tle);
  const double period_min = tle.period_minutes();
  const TemeState s0 = prop.at(0.0);
  const TemeState s1 = prop.at(period_min);
  // After one nodal period the position repeats to within tens of km
  // (J2 precession moves the node slightly).
  EXPECT_NEAR((s1.position_km - s0.position_km).norm(), 0.0, 80.0);
}

TEST(Sgp4, InclinationIsRespected) {
  // Orbital plane inclination = max |latitude| of the trajectory; check
  // via the z-component of the specific angular momentum.
  for (const double inc : {35.0, 49.97, 97.6}) {
    const Tle tle = circular_tle(700.0, inc);
    const Sgp4 prop(tle);
    const TemeState st = prop.at(17.0);
    const auto h = st.position_km.cross(st.velocity_km_s);
    const double inc_measured =
        std::acos(h.z / h.norm()) * kRadToDeg;
    EXPECT_NEAR(inc_measured, inc, 0.1);
  }
}

TEST(Sgp4, AngularMomentumDirectionStable) {
  const Tle tle = circular_tle(550.0, 97.6);
  const Sgp4 prop(tle);
  const auto h0 =
      prop.at(0.0).position_km.cross(prop.at(0.0).velocity_km_s)
          .normalized();
  const auto h1 =
      prop.at(300.0).position_km.cross(prop.at(300.0).velocity_km_s)
          .normalized();
  // J2 precesses the node ~ a few degrees/day; over 5 hours the plane
  // normal moves < 1.5 degrees.
  EXPECT_GT(h0.dot(h1), std::cos(1.5 * kDegToRad));
}

TEST(Sgp4, BackwardPropagationWorks) {
  const Sgp4 prop(parse_tle(kIssLine1, kIssLine2));
  const TemeState st = prop.at(-60.0);
  EXPECT_NEAR(st.position_km.norm(), 6724.0, 20.0);
}

TEST(Sgp4, AtJdMatchesTsince) {
  const Tle tle = circular_tle(860.0, 49.97);
  const Sgp4 prop(tle);
  const TemeState a = prop.at(30.0);
  const TemeState b = prop.at_jd(tle.epoch_jd + 30.0 / kMinutesPerDay);
  // jd arithmetic carries ~1e-10-day rounding (~1e-5 min), i.e. sub-metre.
  EXPECT_NEAR((a.position_km - b.position_km).norm(), 0.0, 1e-3);
}

TEST(Sgp4, RejectsDeepSpaceElements) {
  KeplerianElements kep;
  kep.altitude_km = 35786.0;
  const Tle geo = make_tle("GEO", 3, kep, kJdJ2000);
  EXPECT_THROW(Sgp4{geo}, std::invalid_argument);
}

TEST(Sgp4, RejectsDecayedOrbit) {
  // Perigee below 90 km.
  KeplerianElements kep;
  kep.altitude_km = 130.0;
  kep.eccentricity = 0.01;
  const Tle low = make_tle("DECAY", 4, kep, kJdJ2000);
  EXPECT_THROW(Sgp4{low}, sinet::orbit::PropagationError);
}

TEST(Sgp4, DragShrinksOrbitOverTime) {
  KeplerianElements kep;
  kep.altitude_km = 400.0;
  kep.eccentricity = 0.0005;
  kep.inclination_deg = 51.6;
  kep.bstar = 5e-4;  // heavy drag
  const Tle tle = make_tle("DRAG", 5, kep, julian_from_civil(2025, 3, 1));
  const Sgp4 prop(tle);
  const double r0 = prop.at(0.0).position_km.norm();
  const double r30 = prop.at(30.0 * 1440.0).position_km.norm();  // 30 days
  EXPECT_LT(r30, r0);
}

TEST(Sgp4, LowPerigeeUsesSimplifiedModelWithoutCrashing) {
  KeplerianElements kep;
  kep.altitude_km = 400.0;
  kep.eccentricity = 0.03;  // perigee ~ 197 km -> simple branch
  kep.inclination_deg = 51.6;
  const Tle tle = make_tle("LOWP", 6, kep, julian_from_civil(2025, 3, 1));
  const Sgp4 prop(tle);
  for (double t = 0.0; t <= 1440.0; t += 60.0) {
    const TemeState st = prop.at(t);
    EXPECT_GT(st.position_km.norm(), 6378.0);
  }
}

TEST(Sgp4, GroundSpeedOfLeoIsAbout7point6KmPerS) {
  // The paper's Appendix C cites 7.6 km/s at 500 km.
  const Tle tle = circular_tle(500.0, 97.4);
  const Sgp4 prop(tle);
  EXPECT_NEAR(prop.at(5.0).velocity_km_s.norm(), 7.61, 0.05);
}

}  // namespace
