// Unit tests for TLE parsing, formatting, and synthesis.
#include <gtest/gtest.h>

#include <random>

#include "orbit/tle.h"
#include "orbit/time.h"

namespace {

using namespace sinet::orbit;

// The canonical ISS (ZARYA) TLE used across SGP4 test suites.
constexpr const char* kIssLine1 =
    "1 25544U 98067A   08264.51782528 -.00002182  00000-0 -11606-4 0  2927";
constexpr const char* kIssLine2 =
    "2 25544  51.6416 247.4627 0006703 130.5360 325.0288 15.72125391563537";

TEST(TleParse, IssFields) {
  const Tle t = parse_tle("ISS (ZARYA)", kIssLine1, kIssLine2);
  EXPECT_EQ(t.name, "ISS (ZARYA)");
  EXPECT_EQ(t.catalog_number, 25544);
  EXPECT_EQ(t.classification, 'U');
  EXPECT_EQ(t.intl_designator, "98067A");
  EXPECT_NEAR(t.inclination_deg, 51.6416, 1e-9);
  EXPECT_NEAR(t.raan_deg, 247.4627, 1e-9);
  EXPECT_NEAR(t.eccentricity, 0.0006703, 1e-10);
  EXPECT_NEAR(t.arg_perigee_deg, 130.5360, 1e-9);
  EXPECT_NEAR(t.mean_anomaly_deg, 325.0288, 1e-9);
  EXPECT_NEAR(t.mean_motion_rev_day, 15.72125391, 1e-7);
  EXPECT_EQ(t.revolution_number, 56353);
  EXPECT_NEAR(t.bstar, -0.11606e-4, 1e-10);
  EXPECT_NEAR(t.mean_motion_dot, -0.00002182, 1e-10);
}

TEST(TleParse, EpochDecodesToSeptember2008) {
  const Tle t = parse_tle(kIssLine1, kIssLine2);
  const CivilTime ct = civil_from_julian(t.epoch_jd);
  EXPECT_EQ(ct.year, 2008);
  EXPECT_EQ(ct.month, 9);  // day-of-year 264 of 2008 = Sep 20
  EXPECT_EQ(ct.day, 20);
}

TEST(TleParse, DerivedQuantities) {
  const Tle t = parse_tle(kIssLine1, kIssLine2);
  EXPECT_NEAR(t.period_minutes(), 91.59, 0.05);
  EXPECT_NEAR(t.semi_major_axis_km(), 6724.0, 10.0);
  EXPECT_NEAR(t.mean_altitude_km(), 346.0, 10.0);
  EXPECT_FALSE(t.is_deep_space());
}

TEST(TleParse, ChecksumValidation) {
  std::string bad1 = kIssLine1;
  bad1.back() = '0';  // corrupt line-1 checksum (real value is 7)
  EXPECT_THROW(parse_tle(bad1, kIssLine2), std::invalid_argument);

  std::string bad2 = kIssLine2;
  bad2[20] = '9';  // corrupt a digit without fixing the checksum
  EXPECT_THROW(parse_tle(kIssLine1, bad2), std::invalid_argument);
}

TEST(TleParse, StructuralErrors) {
  EXPECT_THROW(parse_tle("1 too short", kIssLine2), std::invalid_argument);
  EXPECT_THROW(parse_tle(kIssLine2, kIssLine1), std::invalid_argument);
  // Mismatched catalog numbers across lines.
  std::string other2 =
      "2 25545  51.6416 247.4627 0006703 130.5360 325.0288 15.72125391563537";
  other2.back() = static_cast<char>('0' + tle_checksum(
      std::string_view(other2).substr(0, 68)));
  EXPECT_THROW(parse_tle(kIssLine1, other2), std::invalid_argument);
}

// Overwrite `line[col_1based-1 .. +len)` with `text` and recompute the
// checksum so the corruption reaches the field parsers instead of being
// caught by the checksum gate.
std::string corrupt_field(std::string_view line, std::size_t col_1based,
                          std::string_view text) {
  std::string out(line);
  out.replace(col_1based - 1, text.size(), text);
  out[68] =
      static_cast<char>('0' + tle_checksum(std::string_view(out).substr(0, 68)));
  return out;
}

TEST(TleParse, CorruptedEccentricityFieldIsRejected) {
  // Pre-fix, strtod(..., nullptr) on "0." + field truncated at the first
  // bad char: "00A6703" parsed as 0.00 and the orbit silently circularized.
  const std::string bad2 = corrupt_field(kIssLine2, 27, "00A6703");
  EXPECT_THROW(parse_tle(kIssLine1, bad2), std::invalid_argument);
  // Fully blank eccentricity is corruption too, not zero.
  const std::string blank2 = corrupt_field(kIssLine2, 27, "       ");
  EXPECT_THROW(parse_tle(kIssLine1, blank2), std::invalid_argument);
}

TEST(TleParse, CorruptedImpliedDecimalFieldsAreRejected) {
  // bstar field (line 1, cols 54-61): letters used to parse as 0.0.
  EXPECT_THROW(parse_tle(corrupt_field(kIssLine1, 54, "ABCDE-44"), kIssLine2),
               std::invalid_argument);
  // Sign with no digits is not a blank field.
  EXPECT_THROW(parse_tle(corrupt_field(kIssLine1, 54, "-       "), kIssLine2),
               std::invalid_argument);
  // Trailing garbage after a valid mantissa/exponent.
  EXPECT_THROW(parse_tle(corrupt_field(kIssLine1, 45, " 1234-4X"), kIssLine2),
               std::invalid_argument);
  // A genuinely blank nddot field still means zero.
  const Tle t = parse_tle(corrupt_field(kIssLine1, 45, "        "), kIssLine2);
  EXPECT_EQ(t.mean_motion_ddot, 0.0);
}

TEST(TleParse, TrailingGarbageInNumericColumnsIsRejected) {
  // Inclination "51.6416" -> "51.64X6": strtod used to stop at the 'X'
  // and return 51.64, a plausible but wrong inclination.
  EXPECT_THROW(parse_tle(kIssLine1, corrupt_field(kIssLine2, 9, " 51.64X6")),
               std::invalid_argument);
  // Mean motion with an embedded letter.
  EXPECT_THROW(parse_tle(kIssLine1, corrupt_field(kIssLine2, 53, "15.72O25391")),
               std::invalid_argument);
}

TEST(TleChecksum, MinusCountsAsOne) {
  EXPECT_EQ(tle_checksum("----------"), 0);  // 10 * 1 = 10 -> 0
  EXPECT_EQ(tle_checksum("1"), 1);
  EXPECT_EQ(tle_checksum("19"), 0);
  EXPECT_EQ(tle_checksum("abc xyz"), 0);  // letters/spaces ignored
}

TEST(TleFormat, RoundTripPreservesElements) {
  const Tle orig = parse_tle("ISS", kIssLine1, kIssLine2);
  const TleLines lines = format_tle(orig);
  ASSERT_EQ(lines.line1.size(), 69u);
  ASSERT_EQ(lines.line2.size(), 69u);
  const Tle back = parse_tle(lines.line1, lines.line2);
  EXPECT_EQ(back.catalog_number, orig.catalog_number);
  EXPECT_NEAR(back.epoch_jd, orig.epoch_jd, 1e-7);
  EXPECT_NEAR(back.inclination_deg, orig.inclination_deg, 1e-4);
  EXPECT_NEAR(back.raan_deg, orig.raan_deg, 1e-4);
  EXPECT_NEAR(back.eccentricity, orig.eccentricity, 1e-7);
  EXPECT_NEAR(back.arg_perigee_deg, orig.arg_perigee_deg, 1e-4);
  EXPECT_NEAR(back.mean_anomaly_deg, orig.mean_anomaly_deg, 1e-4);
  EXPECT_NEAR(back.mean_motion_rev_day, orig.mean_motion_rev_day, 1e-7);
  EXPECT_NEAR(back.bstar, orig.bstar, 1e-9);
}

TEST(TleFormat, ChecksumsAreValid) {
  const Tle t = parse_tle(kIssLine1, kIssLine2);
  const TleLines lines = format_tle(t);
  EXPECT_EQ(lines.line1.back() - '0',
            tle_checksum(std::string_view(lines.line1).substr(0, 68)));
  EXPECT_EQ(lines.line2.back() - '0',
            tle_checksum(std::string_view(lines.line2).substr(0, 68)));
}

TEST(MakeTle, AltitudeMapsToMeanMotion) {
  KeplerianElements kep;
  kep.altitude_km = 550.0;
  kep.eccentricity = 0.0;
  const Tle t = make_tle("TEST", 99001,
                         kep, julian_from_civil(2025, 3, 1));
  // Circular 550 km orbit: period ~95.6 min.
  EXPECT_NEAR(t.period_minutes(), 95.6, 0.5);
  EXPECT_NEAR(t.mean_altitude_km(), 550.0, 1.0);
  EXPECT_FALSE(t.is_deep_space());
}

TEST(MakeTle, RoundTripsThroughFormatter) {
  KeplerianElements kep;
  kep.altitude_km = 860.0;
  kep.inclination_deg = 49.97;
  kep.raan_deg = 123.4;
  kep.mean_anomaly_deg = 271.5;
  const Tle t = make_tle("TQ-01", 51001, kep, julian_from_civil(2025, 3, 1));
  const TleLines lines = format_tle(t);
  const Tle back = parse_tle(lines.line1, lines.line2);
  EXPECT_NEAR(back.inclination_deg, 49.97, 1e-4);
  EXPECT_NEAR(back.raan_deg, 123.4, 1e-4);
  EXPECT_NEAR(back.mean_anomaly_deg, 271.5, 1e-4);
  EXPECT_NEAR(back.mean_altitude_km(), 860.0, 1.0);
}

TEST(MakeTle, RejectsInvalidElements) {
  KeplerianElements kep;
  kep.altitude_km = 50.0;  // below any orbit
  EXPECT_THROW(make_tle("X", 1, kep, kJdJ2000), std::invalid_argument);
  kep.altitude_km = 500.0;
  kep.eccentricity = 1.5;
  EXPECT_THROW(make_tle("X", 1, kep, kJdJ2000), std::invalid_argument);
  kep.eccentricity = 0.0;
  kep.inclination_deg = 200.0;
  EXPECT_THROW(make_tle("X", 1, kep, kJdJ2000), std::invalid_argument);
}

TEST(TleParse, MutationFuzzNeverCrashes) {
  // Single-character mutations of a valid TLE must either parse (if the
  // checksum happens to still hold) or throw invalid_argument — never
  // crash or corrupt.
  std::mt19937 gen(1234);
  const std::string chars = "0123456789 .-+ABCX";
  int parsed = 0, rejected = 0;
  for (int trial = 0; trial < 3000; ++trial) {
    std::string l1 = kIssLine1, l2 = kIssLine2;
    std::string& target = (trial % 2 == 0) ? l1 : l2;
    const std::size_t pos = gen() % target.size();
    target[pos] = chars[gen() % chars.size()];
    try {
      (void)parse_tle(l1, l2);
      ++parsed;
    } catch (const std::invalid_argument&) {
      ++rejected;
    }
  }
  EXPECT_EQ(parsed + rejected, 3000);
  // The checksum catches the overwhelming majority of mutations.
  EXPECT_GT(rejected, 2400);
}

TEST(MakeTle, GeoAltitudeIsDeepSpace) {
  KeplerianElements kep;
  kep.altitude_km = 35786.0;
  const Tle t = make_tle("GEO", 2, kep, kJdJ2000);
  EXPECT_TRUE(t.is_deep_space());
}

}  // namespace
