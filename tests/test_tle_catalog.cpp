// TLE catalog file I/O tests.
#include <gtest/gtest.h>

#include <sstream>

#include "orbit/constellation.h"
#include "orbit/tle_catalog.h"
#include "orbit/time.h"

namespace {

using namespace sinet::orbit;

TEST(TleCatalog, RoundTripSyntheticCatalog) {
  const auto spec = paper_constellation("Tianqi");
  const auto original = generate_tles(spec, julian_from_civil(2025, 3, 1));
  std::ostringstream os;
  write_tle_catalog(os, original);
  std::istringstream is(os.str());
  const auto back = read_tle_catalog(is);
  ASSERT_EQ(back.size(), original.size());
  for (std::size_t i = 0; i < back.size(); ++i) {
    EXPECT_EQ(back[i].name, original[i].name);
    EXPECT_EQ(back[i].catalog_number, original[i].catalog_number);
    EXPECT_NEAR(back[i].inclination_deg, original[i].inclination_deg, 1e-4);
    EXPECT_NEAR(back[i].mean_motion_rev_day,
                original[i].mean_motion_rev_day, 1e-7);
  }
}

TEST(TleCatalog, ReadsBareTwoLineEntries) {
  const std::string iss1 =
      "1 25544U 98067A   08264.51782528 -.00002182  00000-0 -11606-4 0  2927";
  const std::string iss2 =
      "2 25544  51.6416 247.4627 0006703 130.5360 325.0288 15.72125391563537";
  std::istringstream is(iss1 + "\n" + iss2 + "\n");
  const auto cat = read_tle_catalog(is);
  ASSERT_EQ(cat.size(), 1u);
  EXPECT_TRUE(cat[0].name.empty());
  EXPECT_EQ(cat[0].catalog_number, 25544);
}

TEST(TleCatalog, HandlesBlankLinesAndCrLf) {
  const std::string iss1 =
      "1 25544U 98067A   08264.51782528 -.00002182  00000-0 -11606-4 0  2927";
  const std::string iss2 =
      "2 25544  51.6416 247.4627 0006703 130.5360 325.0288 15.72125391563537";
  std::istringstream is("\nISS (ZARYA)\r\n" + iss1 + "\r\n" + iss2 +
                        "\r\n\n");
  const auto cat = read_tle_catalog(is);
  ASSERT_EQ(cat.size(), 1u);
  EXPECT_EQ(cat[0].name, "ISS (ZARYA)");
}

TEST(TleCatalog, EmptyStreamGivesEmptyCatalog) {
  std::istringstream is("");
  EXPECT_TRUE(read_tle_catalog(is).empty());
  std::istringstream blank("\n\n\n");
  EXPECT_TRUE(read_tle_catalog(blank).empty());
}

TEST(TleCatalog, MalformedStructuresThrow) {
  const std::string iss1 =
      "1 25544U 98067A   08264.51782528 -.00002182  00000-0 -11606-4 0  2927";
  const std::string iss2 =
      "2 25544  51.6416 247.4627 0006703 130.5360 325.0288 15.72125391563537";
  // Dangling line 1.
  std::istringstream dangling(iss1 + "\n");
  EXPECT_THROW(read_tle_catalog(dangling), std::invalid_argument);
  // Line 2 without line 1.
  std::istringstream orphan(iss2 + "\n");
  EXPECT_THROW(read_tle_catalog(orphan), std::invalid_argument);
  // Two line 1s in a row.
  std::istringstream doubled(iss1 + "\n" + iss1 + "\n" + iss2 + "\n");
  EXPECT_THROW(read_tle_catalog(doubled), std::invalid_argument);
  // Name line sandwiched between element lines.
  std::istringstream sandwich(iss1 + "\nOOPS\n" + iss2 + "\n");
  EXPECT_THROW(read_tle_catalog(sandwich), std::invalid_argument);
  // Corrupted checksum propagates with a line number.
  std::string bad2 = iss2;
  bad2.back() = '0';
  std::istringstream corrupt(iss1 + "\n" + bad2 + "\n");
  try {
    (void)read_tle_catalog(corrupt);
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(TleCatalog, MultipleEntriesMixedFormat) {
  const auto spec = paper_constellation("FOSSA");
  auto tles = generate_tles(spec, julian_from_civil(2025, 3, 1));
  tles[1].name.clear();  // middle entry becomes a bare 2-line TLE
  std::ostringstream os;
  write_tle_catalog(os, tles);
  std::istringstream is(os.str());
  const auto back = read_tle_catalog(is);
  ASSERT_EQ(back.size(), 3u);
  EXPECT_EQ(back[0].name, "FOSSA-01");
  EXPECT_TRUE(back[1].name.empty());
  EXPECT_EQ(back[2].name, "FOSSA-03");
}

}  // namespace
