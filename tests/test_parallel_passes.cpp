// Parallel pass-prediction engine: thread pool semantics, serial-vs-
// parallel bit parity of predict_passes_batch over a mixed constellation,
// and ContactWindowCache hit behavior.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "core/scenario.h"
#include "orbit/constellation.h"
#include "orbit/passes.h"
#include "sim/thread_pool.h"

namespace {

using namespace sinet;
using namespace sinet::orbit;

// --- ThreadPool ----------------------------------------------------------

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  sim::ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(hits.size(),
                    [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ZeroThreadCountMeansHardware) {
  sim::ThreadPool pool(0);
  EXPECT_EQ(pool.size(), sim::ThreadPool::hardware_threads());
  EXPECT_GE(sim::ThreadPool::hardware_threads(), 1u);
}

TEST(ThreadPool, EmptyAndSingleIterationsWork) {
  sim::ThreadPool pool(2);
  int calls = 0;
  pool.parallel_for(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.parallel_for(1, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, RethrowsLowestIndexException) {
  sim::ThreadPool pool(3);
  try {
    pool.parallel_for(16, [](std::size_t i) {
      if (i == 11) throw std::runtime_error("task 11");
      if (i == 5) throw std::runtime_error("task 5");
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task 5");
  }
}

TEST(ThreadPool, SharedPoolIsUsable) {
  std::atomic<int> sum{0};
  sim::ThreadPool::shared().parallel_for(
      10, [&](std::size_t i) { sum.fetch_add(static_cast<int>(i)); });
  EXPECT_EQ(sum.load(), 45);
}

// --- Batch parity --------------------------------------------------------

/// The full 39-satellite mixed constellation of the paper's campaign.
std::vector<Tle> mixed_constellation(JulianDate epoch) {
  std::vector<Tle> tles;
  for (const ConstellationSpec& spec : paper_constellations()) {
    const auto batch = generate_tles(spec, epoch);
    tles.insert(tles.end(), batch.begin(), batch.end());
  }
  return tles;
}

void expect_identical(const std::vector<std::vector<ContactWindow>>& a,
                      const std::vector<std::vector<ContactWindow>>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].size(), b[i].size()) << "satellite " << i;
    for (std::size_t w = 0; w < a[i].size(); ++w) {
      // EXPECT_EQ on doubles: bit-for-bit identity, not approximation.
      EXPECT_EQ(a[i][w].aos_jd, b[i][w].aos_jd);
      EXPECT_EQ(a[i][w].los_jd, b[i][w].los_jd);
      EXPECT_EQ(a[i][w].tca_jd, b[i][w].tca_jd);
      EXPECT_EQ(a[i][w].max_elevation_deg, b[i][w].max_elevation_deg);
    }
  }
}

TEST(PredictPassesBatch, ParallelIsBitIdenticalToSerial) {
  const JulianDate epoch = core::campaign_epoch_jd();
  const auto tles = mixed_constellation(epoch);
  ASSERT_EQ(tles.size(), 39u);
  const Geodetic site = core::paper_site("HK").location;

  std::vector<Sgp4> props;
  props.reserve(tles.size());
  for (const Tle& tle : tles) props.emplace_back(tle);
  std::vector<PassBatchRequest> requests(tles.size());
  for (std::size_t i = 0; i < tles.size(); ++i)
    requests[i] = {&props[i], site};

  PassPredictionOptions opts;
  opts.coarse_step_s = 60.0;

  // Reference: the plain serial predict_passes loop.
  std::vector<std::vector<ContactWindow>> serial(tles.size());
  for (std::size_t i = 0; i < tles.size(); ++i)
    serial[i] = predict_passes(props[i], site, epoch, epoch + 1.0, opts);

  const auto one =
      predict_passes_batch(requests, epoch, epoch + 1.0, opts, 1);
  const auto four =
      predict_passes_batch(requests, epoch, epoch + 1.0, opts, 4);
  const auto hw = predict_passes_batch(requests, epoch, epoch + 1.0, opts, 0);

  expect_identical(serial, one);
  expect_identical(one, four);
  expect_identical(one, hw);

  // Sanity: the campaign span actually contains contacts.
  std::size_t total = 0;
  for (const auto& ws : one) total += ws.size();
  EXPECT_GT(total, 10u);
}

TEST(PredictPassesBatch, ValidatesBeforeSpawning) {
  const JulianDate epoch = core::campaign_epoch_jd();
  const auto tles = generate_tles(paper_constellation("FOSSA"), epoch);
  std::vector<Sgp4> props;
  for (const Tle& tle : tles) props.emplace_back(tle);
  std::vector<PassBatchRequest> requests;
  for (const Sgp4& p : props)
    requests.push_back({&p, core::paper_site("HK").location});

  EXPECT_THROW(predict_passes_batch(requests, epoch, epoch - 1.0),
               std::invalid_argument);
  PassPredictionOptions bad;
  bad.coarse_step_s = 0.0;
  EXPECT_THROW(predict_passes_batch(requests, epoch, epoch + 1.0, bad),
               std::invalid_argument);
  requests[1].propagator = nullptr;
  EXPECT_THROW(predict_passes_batch(requests, epoch, epoch + 1.0),
               std::invalid_argument);
}

TEST(ElevationSampler, MatchesNaiveFramePath) {
  // The sampler shares one GMST rotation between position and velocity;
  // this must be bit-identical to the two-call frame conversion it
  // replaced (sample_geometry now routes through the sampler).
  const JulianDate epoch = core::campaign_epoch_jd();
  const auto tles = generate_tles(paper_constellation("PICO"), epoch);
  const Sgp4 prop(tles.front());
  const Geodetic site = core::paper_site("SYD").location;
  const ElevationSampler sampler(prop, site);
  for (int i = 0; i < 200; ++i) {
    const JulianDate jd = epoch + i * (1.0 / 288.0);
    const PassSample s = sampler.sample(jd);
    const PassSample naive = sample_geometry(prop, site, jd);
    EXPECT_EQ(s.look.elevation_deg, naive.look.elevation_deg);
    EXPECT_EQ(s.look.azimuth_deg, naive.look.azimuth_deg);
    EXPECT_EQ(s.look.range_km, naive.look.range_km);
    EXPECT_EQ(s.look.range_rate_km_s, naive.look.range_rate_km_s);
    EXPECT_EQ(sampler.elevation_deg(jd), s.look.elevation_deg);
  }
}

// --- ContactWindowCache --------------------------------------------------

TEST(ContactWindowCache, HitReturnsIdenticalWindows) {
  const JulianDate epoch = core::campaign_epoch_jd();
  const auto tles = generate_tles(paper_constellation("CSTP"), epoch);
  const Geodetic site = core::paper_site("LDN").location;

  ContactWindowCache cache;
  const auto first = cache.get_or_predict(tles[0], site, epoch, epoch + 1.0);
  auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);

  const auto second = cache.get_or_predict(tles[0], site, epoch, epoch + 1.0);
  stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);

  ASSERT_EQ(first.size(), second.size());
  for (std::size_t w = 0; w < first.size(); ++w) {
    EXPECT_EQ(first[w].aos_jd, second[w].aos_jd);
    EXPECT_EQ(first[w].los_jd, second[w].los_jd);
    EXPECT_EQ(first[w].tca_jd, second[w].tca_jd);
    EXPECT_EQ(first[w].max_elevation_deg, second[w].max_elevation_deg);
  }

  // A different span / site / option set is a distinct key.
  (void)cache.get_or_predict(tles[0], site, epoch, epoch + 2.0);
  PassPredictionOptions masked;
  masked.min_elevation_deg = 10.0;
  (void)cache.get_or_predict(tles[0], site, epoch, epoch + 1.0, masked);
  stats = cache.stats();
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.entries, 3u);
}

TEST(ContactWindowCache, BatchCachedHitsOnSecondCall) {
  const JulianDate epoch = core::campaign_epoch_jd();
  const auto tles = generate_tles(paper_constellation("PICO"), epoch);
  const Geodetic site = core::paper_site("PGH").location;

  ContactWindowCache cache;
  const auto first = predict_passes_batch_cached(tles, site, epoch,
                                                 epoch + 1.0, {}, 0, &cache);
  auto stats = cache.stats();
  EXPECT_EQ(stats.misses, tles.size());
  EXPECT_EQ(stats.hits, 0u);

  const auto second = predict_passes_batch_cached(tles, site, epoch,
                                                  epoch + 1.0, {}, 0, &cache);
  stats = cache.stats();
  EXPECT_EQ(stats.hits, tles.size());
  EXPECT_EQ(stats.misses, tles.size());
  expect_identical(first, second);

  // Bypassing the cache computes the same thing from scratch.
  const auto uncached = predict_passes_batch_cached(
      tles, site, epoch, epoch + 1.0, {}, 0, nullptr);
  expect_identical(first, uncached);
  EXPECT_EQ(cache.stats().hits, tles.size());  // untouched
}

TEST(ContactWindowCache, ClearAndEviction) {
  const JulianDate epoch = core::campaign_epoch_jd();
  const auto tles = generate_tles(paper_constellation("FOSSA"), epoch);
  const Geodetic site = core::paper_site("HK").location;

  ContactWindowCache tiny(2);  // max two entries -> FIFO eviction
  for (const Tle& tle : tles)
    (void)tiny.get_or_predict(tle, site, epoch, epoch + 0.5);
  EXPECT_EQ(tiny.stats().entries, 2u);
  // The oldest entry (tles[0]) was evicted: re-requesting it misses.
  (void)tiny.get_or_predict(tles[0], site, epoch, epoch + 0.5);
  EXPECT_EQ(tiny.stats().misses, tles.size() + 1);

  tiny.clear();
  const auto stats = tiny.stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
}

}  // namespace
