// Unit tests for the run-metrics observability layer (src/obs) and its
// wiring into the sim core: metric types, registry, timers, the
// RunReport JSON/CSV exporter round-trip, and the EventQueue/ThreadPool
// instrumentation hooks.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/run_report.h"
#include "obs/scoped_timer.h"
#include "sim/simulation.h"
#include "sim/thread_pool.h"

namespace {

using namespace sinet::obs;

TEST(Counter, AddsAndReads) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, SetTracksMax) {
  Gauge g;
  g.set(3.0);
  g.set(7.0);
  g.set(5.0);
  EXPECT_DOUBLE_EQ(g.value(), 5.0);
  EXPECT_DOUBLE_EQ(g.max(), 7.0);
}

TEST(Gauge, MaxOfUntouchedGaugeIsValue) {
  Gauge g;
  EXPECT_DOUBLE_EQ(g.max(), 0.0);
}

TEST(Gauge, AddAccumulates) {
  Gauge g;
  g.add(1.5);
  g.add(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 4.0);
  EXPECT_DOUBLE_EQ(g.max(), 4.0);
}

TEST(ObsHistogram, BinsAndEdgeBuckets) {
  Histogram h(0.0, 10.0, 5);
  h.record(-1.0);   // underflow
  h.record(0.0);    // bin 0
  h.record(9.999);  // bin 4
  h.record(10.0);   // overflow (hi is exclusive)
  h.record(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.nan_count(), 1u);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_DOUBLE_EQ(h.min(), -1.0);
  EXPECT_DOUBLE_EQ(h.max(), 10.0);
}

TEST(ObsHistogram, InvalidConstructionThrows) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(ObsHistogram, ConcurrentRecordsLoseNothing) {
  Histogram h(0.0, 1.0, 8);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i)
        h.record(static_cast<double>(i % 100) / 100.0);
    });
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(h.total(), static_cast<std::uint64_t>(kThreads * kPerThread));
  std::uint64_t binned = h.underflow() + h.overflow() + h.nan_count();
  for (std::size_t i = 0; i < h.bin_count(); ++i) binned += h.count(i);
  EXPECT_EQ(binned, h.total());
}

TEST(SnapshotQuantile, InterpolatesWithinBins) {
  // 10 equal-width bins over [0, 100), one sample per bin at its left
  // edge: the empirical quantiles are exactly recoverable by the
  // uniform-within-bin assumption.
  MetricsRegistry reg;  // snapshot via the registry, like svc gates do
  Histogram& rh = reg.histogram("q", 0.0, 100.0, 10);
  for (int i = 0; i < 10; ++i) rh.record(static_cast<double>(i) * 10.0);
  const HistogramSnapshot s = reg.snapshot().histograms.at("q");

  // rank(q) = q * 9; each bin holds one sample, so quantile q lands in
  // bin floor(rank) at fraction frac(rank).
  EXPECT_DOUBLE_EQ(snapshot_quantile(s, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(snapshot_quantile(s, 0.5), 45.0);
  EXPECT_DOUBLE_EQ(snapshot_quantile(s, 1.0), 90.0);
  // Out-of-range q clamps rather than extrapolating.
  EXPECT_DOUBLE_EQ(snapshot_quantile(s, -0.5), snapshot_quantile(s, 0.0));
  EXPECT_DOUBLE_EQ(snapshot_quantile(s, 1.5), snapshot_quantile(s, 1.0));
}

TEST(SnapshotQuantile, EdgeBucketsClampToHistogramRange) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("edges", 10.0, 20.0, 4);
  h.record(-5.0);  // underflow
  h.record(12.0);
  h.record(99.0);  // overflow
  const HistogramSnapshot s = reg.snapshot().histograms.at("edges");
  // Underflow samples report lo; tail quantiles landing in the overflow
  // bucket report hi. A gate whose histogram tops out below its SLO
  // threshold therefore FAILS (reports hi) instead of silently passing.
  EXPECT_DOUBLE_EQ(snapshot_quantile(s, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(snapshot_quantile(s, 1.0), 20.0);
}

TEST(SnapshotQuantile, EmptyAndNanOnlyHistogramsReturnNaN) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("empty", 0.0, 1.0, 2);
  EXPECT_TRUE(std::isnan(snapshot_quantile(
      reg.snapshot().histograms.at("empty"), 0.5)));
  h.record(std::numeric_limits<double>::quiet_NaN());
  const HistogramSnapshot s = reg.snapshot().histograms.at("empty");
  EXPECT_EQ(s.nan_count, 1u);
  EXPECT_TRUE(std::isnan(snapshot_quantile(s, 0.5)));  // NaNs excluded
}

TEST(MetricsRegistry, FindOrCreateReturnsStableRefs) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x");
  a.add(3);
  Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.value(), 3u);
  Histogram& h1 = reg.histogram("h", 0.0, 1.0, 4);
  Histogram& h2 = reg.histogram("h", 5.0, 9.0, 99);  // params ignored
  EXPECT_EQ(&h1, &h2);
  EXPECT_DOUBLE_EQ(h2.hi(), 1.0);
}

TEST(MetricsRegistry, SnapshotCapturesEverything) {
  MetricsRegistry reg;
  reg.set_info("run", "unit-test");
  reg.counter("events").add(7);
  reg.gauge("depth").set(4.0);
  reg.histogram("lat", 0.0, 10.0, 2).record(3.0);
  const Snapshot s = reg.snapshot();
  EXPECT_EQ(s.info.at("run"), "unit-test");
  EXPECT_EQ(s.counters.at("events"), 7u);
  EXPECT_DOUBLE_EQ(s.gauges.at("depth").value, 4.0);
  EXPECT_EQ(s.histograms.at("lat").bins.size(), 2u);
  EXPECT_EQ(s.histograms.at("lat").bins[0], 1u);
}

TEST(ScopedTimer, NullTargetIsDisarmed) {
  // Must not crash or record anything.
  ScopedTimer t1(static_cast<Gauge*>(nullptr));
  ScopedTimer t2(static_cast<Histogram*>(nullptr));
  ScopedTimer t3(nullptr, "ignored");
}

TEST(ScopedTimer, AccumulatesSecondsIntoGauge) {
  Gauge g;
  {
    ScopedTimer t(&g);
  }
  {
    ScopedTimer t(&g);
  }
  EXPECT_GE(g.value(), 0.0);
  // Two scopes both landed (value is the running sum, max saw both).
  EXPECT_GE(g.max(), g.value() * 0.5 - 1e-12);
}

TEST(ScopedTimer, SamplesMillisecondsIntoHistogram) {
  Histogram h(0.0, 1000.0, 10);
  {
    ScopedTimer t(&h);
  }
  EXPECT_EQ(h.total(), 1u);
}

TEST(PhaseProfiler, AccumulatesPerPhaseGauges) {
  MetricsRegistry reg;
  {
    PhaseProfiler p(&reg, "driver");
    p.phase("setup");
    p.phase("run");
    p.phase("setup");  // revisits accumulate into the same gauge
  }
  const Snapshot s = reg.snapshot();
  EXPECT_TRUE(s.gauges.count("driver.phase.setup_s"));
  EXPECT_TRUE(s.gauges.count("driver.phase.run_s"));
  EXPECT_GE(s.gauges.at("driver.phase.setup_s").value, 0.0);
}

TEST(PhaseProfiler, NullRegistryIsNoop) {
  PhaseProfiler p(nullptr, "driver");
  p.phase("a");
  p.stop();
}

Snapshot awkward_snapshot() {
  // Values chosen to stress the exporter: non-terminating binary
  // fractions, tiny and huge magnitudes, negatives, escaped strings.
  Snapshot s;
  s.info["run id"] = "a \"quoted\"\nname\twith\\escapes";
  s.info["empty"] = "";
  s.counters["events"] = 18446744073709551615ull;  // max u64
  s.counters["zero"] = 0;
  GaugeSnapshot g;
  g.value = 1.0 / 3.0;
  g.max = 1e300;
  s.gauges["third"] = g;
  GaugeSnapshot neg;
  neg.value = -2.5e-17;
  neg.max = 0.1;
  s.gauges["tiny"] = neg;
  HistogramSnapshot h;
  h.lo = -1.5;
  h.hi = 2.5;
  h.bins = {0, 3, 17, 0};
  h.underflow = 2;
  h.overflow = 1;
  h.nan_count = 4;
  h.total = 27;
  h.sum = 0.30000000000000004;  // classic non-representable decimal
  h.min = -1.4;
  h.max = 2.499999999999999;
  s.histograms["latency"] = h;
  return s;
}

TEST(RunReport, JsonRoundTripIsExact) {
  const Snapshot original = awkward_snapshot();
  const Snapshot reparsed = parse_json(to_json(original));
  EXPECT_EQ(original, reparsed);
}

TEST(RunReport, EmptySnapshotRoundTrips) {
  const Snapshot empty;
  EXPECT_EQ(empty, parse_json(to_json(empty)));
}

TEST(RunReport, NonFiniteGaugesRoundTrip) {
  // stats::summarize propagates NaN (undefined stddev for n < 2) and
  // +/-inf (empty min/max), so values that reach a gauge must survive
  // the JSON export unchanged instead of being flattened or rejected.
  Snapshot s;
  s.gauges["nan"] = {std::numeric_limits<double>::quiet_NaN(),
                     std::numeric_limits<double>::quiet_NaN()};
  s.gauges["pinf"] = {std::numeric_limits<double>::infinity(),
                      std::numeric_limits<double>::infinity()};
  s.gauges["ninf"] = {-std::numeric_limits<double>::infinity(),
                      -std::numeric_limits<double>::infinity()};
  const Snapshot reparsed = parse_json(to_json(s));
  EXPECT_TRUE(std::isnan(reparsed.gauges.at("nan").value));
  EXPECT_EQ(reparsed.gauges.at("pinf").value,
            std::numeric_limits<double>::infinity());
  EXPECT_EQ(reparsed.gauges.at("ninf").value,
            -std::numeric_limits<double>::infinity());
}

TEST(RunReport, JsonCarriesSchemaTag) {
  const std::string json = to_json(Snapshot{});
  EXPECT_NE(json.find(kRunReportSchema), std::string::npos);
}

TEST(RunReport, ParseRejectsGarbageAndWrongSchema) {
  EXPECT_THROW(parse_json("not json"), std::runtime_error);
  EXPECT_THROW(parse_json("{}"), std::runtime_error);  // schema missing
  EXPECT_THROW(parse_json("{\"schema\": \"other.v9\"}"),
               std::runtime_error);
}

TEST(RunReport, CsvHasOneRowPerField) {
  const std::string csv = to_csv(awkward_snapshot());
  std::istringstream lines(csv);
  std::string line;
  std::getline(lines, line);
  EXPECT_EQ(line, "kind,name,field,value");
  std::size_t counter_rows = 0;
  std::size_t bin_rows = 0;
  while (std::getline(lines, line)) {
    if (line.rfind("counter,", 0) == 0) ++counter_rows;
    if (line.rfind("histogram,latency,bin", 0) == 0) ++bin_rows;
  }
  EXPECT_EQ(counter_rows, 2u);
  EXPECT_EQ(bin_rows, 4u);
}

TEST(RunReport, WriteJsonFileRoundTrips) {
  const Snapshot original = awkward_snapshot();
  const std::string path = ::testing::TempDir() + "sinet_obs_report.json";
  ASSERT_TRUE(write_json_file(path, original));
  std::ifstream in(path);
  ASSERT_TRUE(in);
  std::ostringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(original, parse_json(buf.str()));
  std::remove(path.c_str());
}

TEST(EventQueueMetrics, AlwaysOnCountersTrack) {
  sinet::sim::Simulation sim(1);
  int fired = 0;
  sim.at(1.0, [&] { ++fired; });
  sim.at(2.0, [&] { ++fired; });
  sim.at(3.0, [&] { ++fired; });
  sim.run_all();
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(sim.events().executed(), 3u);
  EXPECT_EQ(sim.events().max_pending(), 3u);
}

TEST(EventQueueMetrics, PublishIsIncremental) {
  MetricsRegistry reg;
  sinet::sim::Simulation sim(1);
  sim.attach_metrics(&reg);
  sim.at(1.0, [] {});
  sim.at(2.0, [] {});
  sim.run_until(1.5);
  sim.publish_metrics();
  EXPECT_EQ(reg.counter("sim.event_queue.events_executed").value(), 1u);
  sim.run_all();
  sim.publish_metrics();
  EXPECT_EQ(reg.counter("sim.event_queue.events_executed").value(), 2u);
  EXPECT_DOUBLE_EQ(reg.gauge("sim.event_queue.max_pending").value(), 2.0);
  EXPECT_DOUBLE_EQ(reg.gauge("sim.event_queue.pending").value(), 0.0);
  // Handler wall time was sampled for each executed event.
  const Snapshot s = reg.snapshot();
  EXPECT_EQ(s.histograms.at("sim.event_queue.handler_ms").total, 2u);
}

TEST(EventQueueMetrics, DetachedQueueTouchesNoRegistry) {
  sinet::sim::Simulation sim(1);
  sim.at(1.0, [] {});
  sim.run_all();
  sim.publish_metrics();  // no registry attached: must be a no-op
  EXPECT_EQ(sim.events().executed(), 1u);
}

TEST(ThreadPoolMetrics, ScopePublishesTaskCounters) {
  MetricsRegistry reg;
  sinet::sim::ThreadPool pool(2);
  {
    sinet::sim::ThreadPool::MetricsScope scope(pool, &reg);
    std::atomic<int> done{0};
    pool.parallel_for(16, [&](std::size_t) { ++done; });
    EXPECT_EQ(done.load(), 16);
  }
  EXPECT_GE(reg.counter("sim.thread_pool.tasks_run").value(), 16u);
  EXPECT_DOUBLE_EQ(reg.gauge("sim.thread_pool.workers").value(), 2.0);
  const Snapshot s = reg.snapshot();
  EXPECT_TRUE(s.gauges.count("sim.thread_pool.worker0.busy_s"));
  EXPECT_TRUE(s.gauges.count("sim.thread_pool.worker1.utilization"));
  EXPECT_TRUE(s.gauges.count("sim.thread_pool.max_queue_depth"));
}

TEST(ThreadPoolMetrics, NullScopeIsFree) {
  sinet::sim::ThreadPool pool(1);
  const std::uint64_t before = pool.tasks_run();
  {
    sinet::sim::ThreadPool::MetricsScope scope(pool, nullptr);
    pool.parallel_for(4, [](std::size_t) {});
  }
  EXPECT_EQ(pool.tasks_run(), before + 4);
}

}  // namespace
