// Parameterized property tests: invariants swept across parameter spaces
// (TEST_P / INSTANTIATE_TEST_SUITE_P).
#include <gtest/gtest.h>

#include <cmath>

#include "channel/path_loss.h"
#include "orbit/constellation.h"
#include "orbit/geodetic.h"
#include "orbit/sgp4.h"
#include "orbit/time.h"
#include "phy/error_model.h"
#include "phy/lora.h"
#include "sim/rng.h"

namespace {

using namespace sinet;

// ---------------------------------------------------------------------
// SGP4 invariants across the whole (altitude, inclination) envelope of
// the paper's constellations.
struct OrbitCase {
  double altitude_km;
  double inclination_deg;
};

class Sgp4Property : public ::testing::TestWithParam<OrbitCase> {};

TEST_P(Sgp4Property, RadiusAndSpeedPhysical) {
  const auto [alt, inc] = GetParam();
  orbit::KeplerianElements kep;
  kep.altitude_km = alt;
  kep.inclination_deg = inc;
  kep.eccentricity = 0.001;
  const orbit::Tle tle = orbit::make_tle(
      "P", 95000, kep, orbit::julian_from_civil(2025, 3, 1));
  const orbit::Sgp4 prop(tle);
  for (double t = 0.0; t <= 720.0; t += 47.0) {
    const auto st = prop.at(t);
    const double r = st.position_km.norm();
    EXPECT_NEAR(r, 6378.0 + alt, 25.0) << "alt=" << alt << " t=" << t;
    const double v = st.velocity_km_s.norm();
    const double v_circ = std::sqrt(orbit::kMuEarthKm3PerS2 / r);
    EXPECT_NEAR(v, v_circ, 0.05);
  }
}

TEST_P(Sgp4Property, LatitudeBoundedByInclination) {
  const auto [alt, inc] = GetParam();
  orbit::KeplerianElements kep;
  kep.altitude_km = alt;
  kep.inclination_deg = inc;
  const orbit::Tle tle = orbit::make_tle(
      "P", 95001, kep, orbit::julian_from_civil(2025, 3, 1));
  const orbit::Sgp4 prop(tle);
  const double max_lat = inc <= 90.0 ? inc : 180.0 - inc;
  for (double t = 0.0; t <= 200.0; t += 3.0) {
    const auto st = prop.at(t);
    const double lat =
        std::asin(st.position_km.z / st.position_km.norm()) *
        orbit::kRadToDeg;
    EXPECT_LE(std::abs(lat), max_lat + 0.5);
  }
}

INSTANTIATE_TEST_SUITE_P(
    PaperOrbitEnvelope, Sgp4Property,
    ::testing::Values(OrbitCase{441.9, 97.61}, OrbitCase{493.0, 97.61},
                      OrbitCase{508.7, 97.36}, OrbitCase{522.1, 97.72},
                      OrbitCase{544.0, 35.0}, OrbitCase{556.9, 35.0},
                      OrbitCase{815.7, 49.97}, OrbitCase{897.5, 49.97},
                      OrbitCase{700.0, 0.5}, OrbitCase{700.0, 179.0}));

// ---------------------------------------------------------------------
// PER monotonicity in SNR for every spreading factor / payload size.
struct PerCase {
  phy::SpreadingFactor sf;
  int payload;
};

class PerProperty : public ::testing::TestWithParam<PerCase> {};

TEST_P(PerProperty, MonotoneNonIncreasingInSnr) {
  const auto [sf, payload] = GetParam();
  const phy::ErrorModel model;
  phy::LoraParams p;
  p.sf = sf;
  double prev = 1.0 + 1e-12;
  for (double snr = -35.0; snr <= 15.0; snr += 0.25) {
    const double per = model.packet_error_probability(snr, p, payload);
    EXPECT_LE(per, prev + 1e-12);
    EXPECT_GE(per, 0.0);
    EXPECT_LE(per, 1.0);
    prev = per;
  }
}

TEST_P(PerProperty, ThresholdSeparatesRegimes) {
  const auto [sf, payload] = GetParam();
  const phy::ErrorModel model;
  phy::LoraParams p;
  p.sf = sf;
  const double thr = phy::demod_snr_threshold_db(sf);
  EXPECT_GT(model.packet_error_probability(thr - 8.0, p, payload), 0.9);
  EXPECT_LT(model.packet_error_probability(thr + 8.0, p, payload), 0.05);
}

INSTANTIATE_TEST_SUITE_P(
    AllSfPayloads, PerProperty,
    ::testing::Values(PerCase{phy::SpreadingFactor::kSf7, 10},
                      PerCase{phy::SpreadingFactor::kSf7, 120},
                      PerCase{phy::SpreadingFactor::kSf8, 20},
                      PerCase{phy::SpreadingFactor::kSf9, 60},
                      PerCase{phy::SpreadingFactor::kSf10, 20},
                      PerCase{phy::SpreadingFactor::kSf10, 120},
                      PerCase{phy::SpreadingFactor::kSf11, 60},
                      PerCase{phy::SpreadingFactor::kSf12, 10},
                      PerCase{phy::SpreadingFactor::kSf12, 120}));

// ---------------------------------------------------------------------
// Time-on-air grows with payload for every SF (sweep).
class ToaProperty
    : public ::testing::TestWithParam<phy::SpreadingFactor> {};

TEST_P(ToaProperty, NonDecreasingInPayload) {
  phy::LoraParams p;
  p.sf = GetParam();
  double prev = 0.0;
  for (int bytes = 0; bytes <= 255; ++bytes) {
    const double t = phy::time_on_air_s(p, bytes);
    EXPECT_GE(t, prev);
    prev = t;
  }
}

TEST_P(ToaProperty, StrongerCodingIsSlower) {
  phy::LoraParams p5, p8;
  p5.sf = p8.sf = GetParam();
  p5.cr = phy::CodingRate::k4_5;
  p8.cr = phy::CodingRate::k4_8;
  EXPECT_LT(phy::time_on_air_s(p5, 100), phy::time_on_air_s(p8, 100));
}

INSTANTIATE_TEST_SUITE_P(
    AllSfs, ToaProperty,
    ::testing::Values(phy::SpreadingFactor::kSf7, phy::SpreadingFactor::kSf8,
                      phy::SpreadingFactor::kSf9,
                      phy::SpreadingFactor::kSf10,
                      phy::SpreadingFactor::kSf11,
                      phy::SpreadingFactor::kSf12));

// ---------------------------------------------------------------------
// Geodetic round trip across a lat/lon grid.
struct GeoCase {
  double lat;
  double lon;
  double alt;
};

class GeodeticProperty : public ::testing::TestWithParam<GeoCase> {};

TEST_P(GeodeticProperty, RoundTripExact) {
  const auto [lat, lon, alt] = GetParam();
  const orbit::Geodetic g{lat, lon, alt};
  const auto back = orbit::ecef_to_geodetic(orbit::geodetic_to_ecef(g));
  EXPECT_NEAR(back.latitude_deg, lat, 1e-6);
  EXPECT_NEAR(back.longitude_deg, lon, 1e-6);
  EXPECT_NEAR(back.altitude_km, alt, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, GeodeticProperty,
    ::testing::Values(GeoCase{-75.0, -170.0, 0.0}, GeoCase{-45.0, -90.0, 2.0},
                      GeoCase{-15.0, -10.0, 0.5}, GeoCase{0.0, 0.0, 0.0},
                      GeoCase{15.0, 60.0, 1.0}, GeoCase{45.0, 120.0, 0.2},
                      GeoCase{75.0, 179.0, 3.0}, GeoCase{33.0, -118.0, 0.1}));

// ---------------------------------------------------------------------
// Path loss monotone in distance and frequency across sweeps.
class PathLossProperty : public ::testing::TestWithParam<double> {};

TEST_P(PathLossProperty, MonotoneInDistance) {
  const double freq = GetParam();
  double prev = 0.0;
  for (double d = 100.0; d <= 4000.0; d += 100.0) {
    const double pl = channel::free_space_path_loss_db(d, freq);
    EXPECT_GT(pl, prev);
    prev = pl;
  }
}

INSTANTIATE_TEST_SUITE_P(UhfBand, PathLossProperty,
                         ::testing::Values(137e6, 400.45e6, 401.7e6,
                                           436.26e6, 437.985e6, 868e6));

// ---------------------------------------------------------------------
// Footprint and slant-range consistency across elevations: a node at the
// edge of the footprint sees the satellite at exactly the mask elevation.
class FootprintProperty : public ::testing::TestWithParam<double> {};

TEST_P(FootprintProperty, CapRadiusConsistentWithSlantRange) {
  const double alt = GetParam();
  for (double mask = 0.0; mask <= 30.0; mask += 10.0) {
    const double area = orbit::footprint_area_km2(alt, mask);
    // Invert the cap area to its angular radius, then check the chord
    // geometry reproduces the slant range within 1%.
    const double re = orbit::kEarthMeanRadiusKm;
    const double cos_lambda = 1.0 - area / (2.0 * M_PI * re * re);
    const double lambda = std::acos(cos_lambda);
    const double rs = re + alt;
    const double chord = std::sqrt(re * re + rs * rs -
                                   2.0 * re * rs * std::cos(lambda));
    EXPECT_NEAR(chord, orbit::slant_range_km(alt, mask), chord * 0.01);
  }
}

INSTANTIATE_TEST_SUITE_P(PaperAltitudes, FootprintProperty,
                         ::testing::Values(441.9, 496.0, 510.0, 550.0,
                                           815.7, 897.5));

}  // namespace
