// Extended SGP4 sweeps: drag levels, eccentricities, epochs, and
// conservation properties in the drag-free limit.
#include <gtest/gtest.h>

#include <cmath>

#include "orbit/sgp4.h"
#include "orbit/time.h"
#include "orbit/tle.h"

namespace {

using namespace sinet::orbit;

Tle build(double alt, double ecc, double incl, double bstar,
          JulianDate epoch = 0.0) {
  KeplerianElements kep;
  kep.altitude_km = alt;
  kep.eccentricity = ecc;
  kep.inclination_deg = incl;
  kep.raan_deg = 123.0;
  kep.arg_perigee_deg = 45.0;
  kep.mean_anomaly_deg = 200.0;
  kep.bstar = bstar;
  return make_tle("SWEEP", 96000, kep,
                  epoch > 0.0 ? epoch : julian_from_civil(2025, 3, 1));
}

// --- Specific orbital energy is conserved without drag -----------------
class EnergyConservation
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(EnergyConservation, DragFreeEnergyIsConstant) {
  const auto [alt, ecc] = GetParam();
  const Tle tle = build(alt, ecc, 63.4, 0.0);
  const Sgp4 prop(tle);
  double e0 = 0.0;
  bool first = true;
  for (double t = 0.0; t <= 1440.0; t += 60.0) {
    const TemeState st = prop.at(t);
    const double r = st.position_km.norm();
    const double v = st.velocity_km_s.norm();
    const double energy = 0.5 * v * v - kMuEarthKm3PerS2 / r;
    if (first) {
      e0 = energy;
      first = false;
    } else {
      // J2 short-period terms wiggle the osculating energy slightly; the
      // secular trend must vanish with bstar = 0.
      EXPECT_NEAR(energy, e0, std::abs(e0) * 0.002);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AltEccGrid, EnergyConservation,
    ::testing::Values(std::make_tuple(450.0, 0.0005),
                      std::make_tuple(550.0, 0.002),
                      std::make_tuple(700.0, 0.01),
                      std::make_tuple(900.0, 0.0005),
                      std::make_tuple(1200.0, 0.02)));

// --- Drag always decays; stronger drag decays faster -------------------
TEST(Sgp4Sweep, DragOrderingAfterAMonth) {
  const double days = 30.0 * 1440.0;
  double prev_radius = 0.0;
  bool first = true;
  for (const double bstar : {0.0, 1e-5, 1e-4, 5e-4}) {
    const Tle tle = build(420.0, 0.0005, 51.6, bstar);
    const Sgp4 prop(tle);
    const double r = prop.at(days).position_km.norm();
    if (!first) EXPECT_LE(r, prev_radius + 0.5) << "bstar " << bstar;
    prev_radius = r;
    first = false;
  }
}

// --- Epoch invariance: dynamics depend on elements, not absolute date --
TEST(Sgp4Sweep, SameElementsDifferentEpochsSameRelativeMotion) {
  const Tle a = build(550.0, 0.001, 97.6, 1e-4,
                      julian_from_civil(2024, 6, 1));
  const Tle b = build(550.0, 0.001, 97.6, 1e-4,
                      julian_from_civil(2025, 3, 1));
  const Sgp4 pa(a), pb(b);
  for (double t = 0.0; t <= 720.0; t += 97.0) {
    // TEME states relative to epoch are identical: same elements.
    const TemeState sa = pa.at(t);
    const TemeState sb = pb.at(t);
    EXPECT_NEAR((sa.position_km - sb.position_km).norm(), 0.0, 1e-6);
  }
}

// --- Retrograde orbits are handled -------------------------------------
TEST(Sgp4Sweep, RetrogradeOrbitPropagates) {
  const Tle tle = build(600.0, 0.001, 144.0, 1e-4);
  const Sgp4 prop(tle);
  const TemeState st = prop.at(50.0);
  EXPECT_NEAR(st.position_km.norm(), 6978.0, 25.0);
  // Angular momentum z-component negative for retrograde.
  EXPECT_LT(st.position_km.cross(st.velocity_km_s).z, 0.0);
}

// --- Equatorial orbit edge case -----------------------------------------
TEST(Sgp4Sweep, NearEquatorialOrbitPropagates) {
  const Tle tle = build(550.0, 0.001, 0.01, 1e-4);
  const Sgp4 prop(tle);
  for (double t = 0.0; t <= 200.0; t += 13.0) {
    const TemeState st = prop.at(t);
    EXPECT_NEAR(st.position_km.norm(), 6928.0, 20.0);
    EXPECT_NEAR(st.position_km.z, 0.0, 5.0);  // stays in the equator plane
  }
}

// --- Nodal regression sign flips across 90 deg inclination -------------
TEST(Sgp4Sweep, J2NodalRegressionSign) {
  // Prograde: RAAN regresses (westward); retrograde: advances.
  const auto node_rate = [](double incl) {
    const Tle tle = build(700.0, 0.001, incl, 0.0);
    const Sgp4 prop(tle);
    const auto h0 = prop.at(0.0).position_km.cross(
        prop.at(0.0).velocity_km_s);
    const auto h1 = prop.at(1440.0).position_km.cross(
        prop.at(1440.0).velocity_km_s);
    // Node direction = z x h.
    const Vec3 z{0.0, 0.0, 1.0};
    const Vec3 n0 = z.cross(h0).normalized();
    const Vec3 n1 = z.cross(h1).normalized();
    // Signed angle from n0 to n1 about z.
    return std::atan2(n0.cross(n1).z, n0.dot(n1));
  };
  EXPECT_LT(node_rate(50.0), 0.0);   // prograde regresses
  EXPECT_GT(node_rate(130.0), 0.0);  // retrograde advances
  EXPECT_NEAR(node_rate(90.0), 0.0, 2e-3);  // polar: no J2 precession
}

// --- Sun-synchronous precession rate ------------------------------------
TEST(Sgp4Sweep, SunSynchronousPrecessionNearOneDegPerDay) {
  // 700 km / 98.19 deg is the textbook sun-synchronous combination:
  // RAAN advances ~0.9856 deg/day (matching the mean sun).
  const Tle tle = build(700.0, 0.001, 98.19, 0.0);
  const Sgp4 prop(tle);
  const auto raan_of = [&](double t_min) {
    const auto st = prop.at(t_min);
    const auto h = st.position_km.cross(st.velocity_km_s);
    const Vec3 z{0.0, 0.0, 1.0};
    const Vec3 n = z.cross(h);
    return std::atan2(n.y, n.x);
  };
  double drift = raan_of(10.0 * 1440.0) - raan_of(0.0);
  drift = wrap_pi(drift) * kRadToDeg / 10.0;  // deg per day
  EXPECT_NEAR(drift, 0.9856, 0.08);
}

}  // namespace
