// Unit tests for the discrete-event engine and RNG streams.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "sim/event_queue.h"
#include "sim/rng.h"
#include "sim/shard.h"
#include "sim/simulation.h"

namespace {

using sinet::sim::EventQueue;
using sinet::sim::Rng;
using sinet::sim::RngFactory;
using sinet::sim::Simulation;

TEST(EventQueue, ExecutesInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(3.0, [&] { order.push_back(3); });
  q.schedule_at(1.0, [&] { order.push_back(1); });
  q.schedule_at(2.0, [&] { order.push_back(2); });
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueue, EqualTimesFireInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    q.schedule_at(5.0, [&order, i] { order.push_back(i); });
  q.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, ScheduleInPastThrows) {
  EventQueue q;
  q.schedule_at(10.0, [] {});
  q.step();
  EXPECT_THROW(q.schedule_at(5.0, [] {}), std::invalid_argument);
  EXPECT_THROW(q.schedule_in(-1.0, [] {}), std::invalid_argument);
}

TEST(EventQueue, NullCallbackThrows) {
  EventQueue q;
  EXPECT_THROW(q.schedule_at(1.0, nullptr), std::invalid_argument);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  int fired = 0;
  const auto h = q.schedule_at(1.0, [&] { ++fired; });
  q.schedule_at(2.0, [&] { ++fired; });
  EXPECT_TRUE(q.cancel(h));
  EXPECT_FALSE(q.cancel(h));  // double-cancel is a no-op
  q.run_all();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, CancelUnknownHandle) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(sinet::sim::kInvalidEvent));
  EXPECT_FALSE(q.cancel(12345));
}

TEST(EventQueue, RunUntilStopsAtBoundary) {
  EventQueue q;
  std::vector<double> times;
  for (double t = 1.0; t <= 5.0; t += 1.0)
    q.schedule_at(t, [&times, &q] { times.push_back(q.now()); });
  const std::size_t executed = q.run_until(3.0);
  EXPECT_EQ(executed, 3u);
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
  EXPECT_EQ(q.pending(), 2u);
}

TEST(EventQueue, RunUntilAdvancesClockWhenIdle) {
  EventQueue q;
  q.run_until(42.0);
  EXPECT_DOUBLE_EQ(q.now(), 42.0);
}

TEST(EventQueue, EventsCanScheduleEvents) {
  EventQueue q;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) q.schedule_in(1.0, chain);
  };
  q.schedule_at(0.0, chain);
  q.run_all();
  EXPECT_EQ(count, 5);
  EXPECT_DOUBLE_EQ(q.now(), 4.0);
}

TEST(EventQueue, PeekTimeSkipsCancelled) {
  EventQueue q;
  const auto h = q.schedule_at(1.0, [] {});
  q.schedule_at(2.0, [] {});
  q.cancel(h);
  EXPECT_DOUBLE_EQ(q.peek_time(), 2.0);
}

TEST(EventQueue, PeekTimeEmptyThrows) {
  EventQueue q;
  EXPECT_THROW((void)q.peek_time(), std::logic_error);
}

TEST(Rng, UniformInRange) {
  Rng rng(123);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  for (int i = 0; i < 100; ++i) {
    const double u = rng.uniform(-5.0, 5.0);
    EXPECT_GE(u, -5.0);
    EXPECT_LT(u, 5.0);
  }
  EXPECT_THROW((void)rng.uniform(1.0, 0.0), std::invalid_argument);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(99), b(99);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, NormalMomentsRoughlyCorrect) {
  Rng rng(7);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, ExponentialMeanAndErrors) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.1);
  EXPECT_THROW((void)rng.exponential(0.0), std::invalid_argument);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
  // Out-of-range p is clamped, not thrown.
  EXPECT_TRUE(rng.chance(2.0));
  EXPECT_FALSE(rng.chance(-1.0));
}

TEST(Rng, RicianMeanPowerIsUnity) {
  Rng rng(13);
  double power = 0.0;
  const int n = 30000;
  for (int i = 0; i < n; ++i) {
    const double a = rng.rician_amplitude(10.0);
    power += a * a;
  }
  EXPECT_NEAR(power / n, 1.0, 0.03);
}

TEST(Rng, UniformIntBounds) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
  EXPECT_THROW((void)rng.uniform_int(2, 1), std::invalid_argument);
}

// Golden values pin the exact draw sequences: every distribution is an
// explicit algorithm over the fully-specified mt19937_64 output, so these
// must hold on every platform and standard library. A failure here means
// the reproducibility contract broke — sweep manifests written elsewhere
// would no longer resume bit-identically.
TEST(Rng, GoldenUniform) {
  Rng rng(2024);
  EXPECT_DOUBLE_EQ(rng.uniform(), 0.612684545263525);
  EXPECT_DOUBLE_EQ(rng.uniform(), 0.79471606632696579);
  EXPECT_DOUBLE_EQ(rng.uniform(), 0.26565714033653043);
  EXPECT_DOUBLE_EQ(rng.uniform(), 0.33429718095848859);
}

TEST(Rng, GoldenNormal) {
  Rng rng(2024);
  EXPECT_DOUBLE_EQ(rng.normal(), 0.28632278359838387);
  EXPECT_DOUBLE_EQ(rng.normal(), 0.8228947168325057);
  EXPECT_DOUBLE_EQ(rng.normal(), -0.62600100723135632);
  EXPECT_DOUBLE_EQ(rng.normal(), -0.42807796070852955);
}

TEST(Rng, GoldenUniformInt) {
  Rng rng(2024);
  EXPECT_EQ(rng.uniform_int(-5, 1000000), 206429);
  EXPECT_EQ(rng.uniform_int(-5, 1000000), 157266);
  EXPECT_EQ(rng.uniform_int(-5, 1000000), 262604);
  EXPECT_EQ(rng.uniform_int(-5, 1000000), 560161);
}

TEST(Rng, GoldenExponential) {
  Rng rng(2024);
  EXPECT_DOUBLE_EQ(rng.exponential(2.5), 2.3712894736778987);
  EXPECT_DOUBLE_EQ(rng.exponential(2.5), 3.9584030395564973);
  EXPECT_DOUBLE_EQ(rng.exponential(2.5), 0.77194812042997674);
  EXPECT_DOUBLE_EQ(rng.exponential(2.5), 1.0172798142046489);
}

TEST(Rng, NormalInverseTransformIsMonotoneInUniform) {
  // Two streams at the same seed: the normal draw must be the inverse
  // CDF of the uniform draw (one uniform per normal, same raw stream).
  Rng u(321), n(321);
  for (int i = 0; i < 200; ++i) {
    const double p = u.uniform();
    const double z = n.normal();
    // Inverse CDF maps p<0.5 below zero and p>0.5 above.
    if (p < 0.5) {
      EXPECT_LT(z, 0.0) << "p=" << p;
    }
    if (p > 0.5) {
      EXPECT_GT(z, 0.0) << "p=" << p;
    }
  }
}

TEST(Rng, UniformIntIsUnbiasedOverSmallSpan) {
  // A span that does not divide 2^64 exercises the rejection path;
  // each residue should appear with roughly equal frequency.
  Rng rng(99);
  int counts[7] = {0};
  const int n = 70000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_int(0, 6)];
  for (const int c : counts) EXPECT_NEAR(c, n / 7.0, 5.0 * std::sqrt(n / 7.0));
}

TEST(DeriveSeed, SiblingStreamsAreDistinct) {
  const auto s00 = sinet::sim::derive_seed(42, "point/0/rep/0");
  const auto s01 = sinet::sim::derive_seed(42, "point/0/rep/1");
  const auto s10 = sinet::sim::derive_seed(42, "point/1/rep/0");
  EXPECT_NE(s00, s01);
  EXPECT_NE(s00, s10);
  EXPECT_NE(s01, s10);
  // Golden: the sweep-seed scheme is stable across versions.
  EXPECT_EQ(s00, 7528871755621292291ull);
  EXPECT_EQ(s01, 7672027735136331127ull);
}

TEST(DeriveSeed, PrefixAmbiguousNamesAreDistinct) {
  // derive_seed hashes the whole name byte-wise (the separator is part
  // of the string), so "a/bc" vs "ab/c" cannot collide the way a
  // separator-free concatenation of ("a","bc") / ("ab","c") would.
  EXPECT_NE(sinet::sim::derive_seed(7, "a/bc"),
            sinet::sim::derive_seed(7, "ab/c"));
  // Chained derivation is also unambiguous: splitting the same bytes at
  // a different boundary changes where the mixing happens.
  const auto chained1 =
      sinet::sim::derive_seed(sinet::sim::derive_seed(7, "a"), "bc");
  const auto chained2 =
      sinet::sim::derive_seed(sinet::sim::derive_seed(7, "ab"), "c");
  EXPECT_NE(chained1, chained2);
}

TEST(DeriveSeed, SiblingStreamsAreUncorrelated) {
  // Pearson correlation of paired uniforms from adjacent replicate
  // streams; |r| for independent samples is ~1/sqrt(n).
  Rng a(sinet::sim::derive_seed(42, "point/0/rep/0"));
  Rng b(sinet::sim::derive_seed(42, "point/0/rep/1"));
  const int n = 4096;
  double sa = 0, sb = 0, saa = 0, sbb = 0, sab = 0;
  for (int i = 0; i < n; ++i) {
    const double x = a.uniform(), y = b.uniform();
    sa += x; sb += y; saa += x * x; sbb += y * y; sab += x * y;
  }
  const double cov = sab / n - (sa / n) * (sb / n);
  const double va = saa / n - (sa / n) * (sa / n);
  const double vb = sbb / n - (sb / n) * (sb / n);
  EXPECT_LT(std::abs(cov / std::sqrt(va * vb)), 0.05);
}

TEST(RngFactory, StreamsAreIndependentAndStable) {
  RngFactory f(42);
  Rng a1 = f.make("channel");
  Rng a2 = f.make("channel");
  Rng b = f.make("backhaul");
  EXPECT_DOUBLE_EQ(a1.uniform(), a2.uniform());
  // Different component names produce different streams.
  Rng a3 = f.make("channel");
  EXPECT_NE(a3.uniform(), b.uniform());
}

TEST(RngFactory, DifferentRootSeedsDiffer) {
  RngFactory f1(1), f2(2);
  Rng a = f1.make("x");
  Rng b = f2.make("x");
  EXPECT_NE(a.uniform(), b.uniform());
}

TEST(Simulation, NamedStreamsPersist) {
  Simulation sim(42);
  const double first = sim.rng("weather").uniform();
  const double second = sim.rng("weather").uniform();
  EXPECT_NE(first, second);  // same stream advances

  Simulation sim2(42);
  EXPECT_DOUBLE_EQ(sim2.rng("weather").uniform(), first);
}

TEST(Simulation, UnixNowTracksEpoch) {
  Simulation sim(1, 1'000'000.0);
  sim.in(100.0, [] {});
  sim.run_all();
  EXPECT_DOUBLE_EQ(sim.unix_now(), 1'000'100.0);
}

TEST(Rng, DeriveStreamGolden) {
  // Counter-based streams seed the parallel DtS engine's per-event RNGs;
  // the values are part of the reproducibility contract, so they are
  // pinned like the other RNG goldens.
  EXPECT_EQ(sinet::sim::derive_stream(42, 0), 13679457532755275413ull);
  EXPECT_EQ(sinet::sim::derive_stream(42, 1), 2949826092126892291ull);
  EXPECT_EQ(sinet::sim::derive_stream(42, 2), 5139283748462763858ull);
  EXPECT_EQ(sinet::sim::derive_stream(0, 0), 16294208416658607535ull);
  EXPECT_EQ(sinet::sim::derive_stream(1, 0), 10451216379200822465ull);
}

TEST(Rng, DeriveStreamDistinctAcrossBaseAndCounter) {
  // Neighbouring (base, counter) pairs must not collide — each pair
  // seeds an independent event stream.
  std::vector<std::uint64_t> seen;
  for (std::uint64_t base = 0; base < 8; ++base)
    for (std::uint64_t counter = 0; counter < 64; ++counter)
      seen.push_back(sinet::sim::derive_stream(base, counter));
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::adjacent_find(seen.begin(), seen.end()), seen.end());
}

TEST(ConflictScheduler, DisjointResourcesStaySeparateShards) {
  sinet::sim::ConflictScheduler sched(3);
  sched.touch(0, 0, 100);
  sched.touch(0, 1, 200);
  sched.touch(0, 2, 300);
  const auto slices = sched.build();
  ASSERT_EQ(slices.size(), 1u);
  ASSERT_EQ(slices[0].shards.size(), 3u);
  EXPECT_EQ(slices[0].shards[0], (std::vector<std::uint32_t>{0}));
  EXPECT_EQ(slices[0].shards[1], (std::vector<std::uint32_t>{1}));
  EXPECT_EQ(slices[0].shards[2], (std::vector<std::uint32_t>{2}));
}

TEST(ConflictScheduler, SharedResourceMergesTransitively) {
  // 0-1 share resource A, 1-2 share resource B → one shard {0,1,2}.
  sinet::sim::ConflictScheduler sched(4);
  sched.touch(0, 0, 7);
  sched.touch(0, 1, 7);
  sched.touch(0, 1, 8);
  sched.touch(0, 2, 8);
  sched.touch(0, 3, 9);
  const auto slices = sched.build();
  ASSERT_EQ(slices.size(), 1u);
  ASSERT_EQ(slices[0].shards.size(), 2u);
  EXPECT_EQ(slices[0].shards[0], (std::vector<std::uint32_t>{0, 1, 2}));
  EXPECT_EQ(slices[0].shards[1], (std::vector<std::uint32_t>{3}));
}

TEST(ConflictScheduler, SlicesAreIndependent) {
  // The same two members conflict in slice 0 but not in slice 1.
  sinet::sim::ConflictScheduler sched(2);
  sched.touch(0, 0, 5);
  sched.touch(0, 1, 5);
  sched.touch(1, 0, 5);
  sched.touch(1, 1, 6);
  const auto slices = sched.build();
  ASSERT_EQ(slices.size(), 2u);
  ASSERT_EQ(slices[0].shards.size(), 1u);
  EXPECT_EQ(slices[0].shards[0], (std::vector<std::uint32_t>{0, 1}));
  ASSERT_EQ(slices[1].shards.size(), 2u);
}

TEST(ConflictScheduler, ActivateKeepsMemberWithoutResources) {
  // A member with timeline entries but no footprint touches still shows
  // up as a singleton shard (flush-only slices must run).
  sinet::sim::ConflictScheduler sched(2);
  sched.activate(0, 1);
  const auto slices = sched.build();
  ASSERT_EQ(slices.size(), 1u);
  ASSERT_EQ(slices[0].shards.size(), 1u);
  EXPECT_EQ(slices[0].shards[0], (std::vector<std::uint32_t>{1}));
}

TEST(ConflictScheduler, DeterministicShardOrder) {
  // Shards are ordered by their smallest member and members ascend —
  // the fixed merge order the parallel engine's determinism relies on.
  sinet::sim::ConflictScheduler sched(5);
  sched.touch(0, 4, 1);
  sched.touch(0, 2, 1);
  sched.touch(0, 3, 2);
  sched.touch(0, 0, 3);
  const auto slices = sched.build();
  ASSERT_EQ(slices[0].shards.size(), 3u);
  EXPECT_EQ(slices[0].shards[0], (std::vector<std::uint32_t>{0}));
  EXPECT_EQ(slices[0].shards[1], (std::vector<std::uint32_t>{2, 4}));
  EXPECT_EQ(slices[0].shards[2], (std::vector<std::uint32_t>{3}));
}

TEST(ConflictScheduler, OutOfRangeMemberThrows) {
  sinet::sim::ConflictScheduler sched(2);
  EXPECT_THROW(sched.touch(0, 2, 0), std::out_of_range);
  EXPECT_THROW(sched.activate(0, 2), std::out_of_range);
}

}  // namespace
