// Unit tests for the discrete-event engine and RNG streams.
#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.h"
#include "sim/rng.h"
#include "sim/simulation.h"

namespace {

using sinet::sim::EventQueue;
using sinet::sim::Rng;
using sinet::sim::RngFactory;
using sinet::sim::Simulation;

TEST(EventQueue, ExecutesInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(3.0, [&] { order.push_back(3); });
  q.schedule_at(1.0, [&] { order.push_back(1); });
  q.schedule_at(2.0, [&] { order.push_back(2); });
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueue, EqualTimesFireInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    q.schedule_at(5.0, [&order, i] { order.push_back(i); });
  q.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, ScheduleInPastThrows) {
  EventQueue q;
  q.schedule_at(10.0, [] {});
  q.step();
  EXPECT_THROW(q.schedule_at(5.0, [] {}), std::invalid_argument);
  EXPECT_THROW(q.schedule_in(-1.0, [] {}), std::invalid_argument);
}

TEST(EventQueue, NullCallbackThrows) {
  EventQueue q;
  EXPECT_THROW(q.schedule_at(1.0, nullptr), std::invalid_argument);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  int fired = 0;
  const auto h = q.schedule_at(1.0, [&] { ++fired; });
  q.schedule_at(2.0, [&] { ++fired; });
  EXPECT_TRUE(q.cancel(h));
  EXPECT_FALSE(q.cancel(h));  // double-cancel is a no-op
  q.run_all();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, CancelUnknownHandle) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(sinet::sim::kInvalidEvent));
  EXPECT_FALSE(q.cancel(12345));
}

TEST(EventQueue, RunUntilStopsAtBoundary) {
  EventQueue q;
  std::vector<double> times;
  for (double t = 1.0; t <= 5.0; t += 1.0)
    q.schedule_at(t, [&times, &q] { times.push_back(q.now()); });
  const std::size_t executed = q.run_until(3.0);
  EXPECT_EQ(executed, 3u);
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
  EXPECT_EQ(q.pending(), 2u);
}

TEST(EventQueue, RunUntilAdvancesClockWhenIdle) {
  EventQueue q;
  q.run_until(42.0);
  EXPECT_DOUBLE_EQ(q.now(), 42.0);
}

TEST(EventQueue, EventsCanScheduleEvents) {
  EventQueue q;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) q.schedule_in(1.0, chain);
  };
  q.schedule_at(0.0, chain);
  q.run_all();
  EXPECT_EQ(count, 5);
  EXPECT_DOUBLE_EQ(q.now(), 4.0);
}

TEST(EventQueue, PeekTimeSkipsCancelled) {
  EventQueue q;
  const auto h = q.schedule_at(1.0, [] {});
  q.schedule_at(2.0, [] {});
  q.cancel(h);
  EXPECT_DOUBLE_EQ(q.peek_time(), 2.0);
}

TEST(EventQueue, PeekTimeEmptyThrows) {
  EventQueue q;
  EXPECT_THROW((void)q.peek_time(), std::logic_error);
}

TEST(Rng, UniformInRange) {
  Rng rng(123);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  for (int i = 0; i < 100; ++i) {
    const double u = rng.uniform(-5.0, 5.0);
    EXPECT_GE(u, -5.0);
    EXPECT_LT(u, 5.0);
  }
  EXPECT_THROW((void)rng.uniform(1.0, 0.0), std::invalid_argument);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(99), b(99);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, NormalMomentsRoughlyCorrect) {
  Rng rng(7);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, ExponentialMeanAndErrors) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.1);
  EXPECT_THROW((void)rng.exponential(0.0), std::invalid_argument);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
  // Out-of-range p is clamped, not thrown.
  EXPECT_TRUE(rng.chance(2.0));
  EXPECT_FALSE(rng.chance(-1.0));
}

TEST(Rng, RicianMeanPowerIsUnity) {
  Rng rng(13);
  double power = 0.0;
  const int n = 30000;
  for (int i = 0; i < n; ++i) {
    const double a = rng.rician_amplitude(10.0);
    power += a * a;
  }
  EXPECT_NEAR(power / n, 1.0, 0.03);
}

TEST(Rng, UniformIntBounds) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
  EXPECT_THROW((void)rng.uniform_int(2, 1), std::invalid_argument);
}

TEST(RngFactory, StreamsAreIndependentAndStable) {
  RngFactory f(42);
  Rng a1 = f.make("channel");
  Rng a2 = f.make("channel");
  Rng b = f.make("backhaul");
  EXPECT_DOUBLE_EQ(a1.uniform(), a2.uniform());
  // Different component names produce different streams.
  Rng a3 = f.make("channel");
  EXPECT_NE(a3.uniform(), b.uniform());
}

TEST(RngFactory, DifferentRootSeedsDiffer) {
  RngFactory f1(1), f2(2);
  Rng a = f1.make("x");
  Rng b = f2.make("x");
  EXPECT_NE(a.uniform(), b.uniform());
}

TEST(Simulation, NamedStreamsPersist) {
  Simulation sim(42);
  const double first = sim.rng("weather").uniform();
  const double second = sim.rng("weather").uniform();
  EXPECT_NE(first, second);  // same stream advances

  Simulation sim2(42);
  EXPECT_DOUBLE_EQ(sim2.rng("weather").uniform(), first);
}

TEST(Simulation, UnixNowTracksEpoch) {
  Simulation sim(1, 1'000'000.0);
  sim.in(100.0, [] {});
  sim.run_all();
  EXPECT_DOUBLE_EQ(sim.unix_now(), 1'000'100.0);
}

}  // namespace
