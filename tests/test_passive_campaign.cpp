// Passive measurement campaign integration tests.
#include <gtest/gtest.h>

#include <set>

#include "core/passive_campaign.h"

namespace {

using namespace sinet::core;

PassiveCampaignConfig tiny_campaign() {
  PassiveCampaignConfig cfg = default_campaign(1.0);
  // One site, two constellations: keeps the test fast.
  cfg.sites = {paper_site("HK")};
  cfg.constellations = {sinet::orbit::paper_constellation("FOSSA"),
                        sinet::orbit::paper_constellation("Tianqi")};
  return cfg;
}

const PassiveCampaignResult& shared_campaign() {
  static const PassiveCampaignResult result =
      run_passive_campaign(tiny_campaign());
  return result;
}

TEST(PassiveCampaign, ProducesTraces) {
  const auto& res = shared_campaign();
  EXPECT_GT(res.traces.size(), 100u);
  EXPECT_GT(res.beacons_transmitted, res.beacons_received);
  EXPECT_EQ(res.traces.size(), res.beacons_received);
}

TEST(PassiveCampaign, TraceFieldsPlausible) {
  const auto& res = shared_campaign();
  for (const auto& r : res.traces.records()) {
    EXPECT_TRUE(r.constellation == "FOSSA" || r.constellation == "Tianqi");
    EXPECT_EQ(r.station.rfind("HK-", 0), 0u);
    // Paper Fig 3b: RSSI of received beacons between about -140 and -105.
    EXPECT_GT(r.rssi_dbm, -145.0);
    EXPECT_LT(r.rssi_dbm, -95.0);
    EXPECT_GE(r.elevation_deg, 0.0);
    EXPECT_LE(r.elevation_deg, 90.0);
    EXPECT_GT(r.range_km, 400.0);
    EXPECT_LT(r.range_km, 3600.0);
    EXPECT_LT(std::abs(r.doppler_hz), 12000.0);  // < ~30 ppm at 400 MHz
    EXPECT_TRUE(r.weather == "sunny" || r.weather == "rainy");
  }
}

TEST(PassiveCampaign, TheoreticalWindowsPopulated) {
  const auto& res = shared_campaign();
  const auto fossa = res.cell_windows({"HK", "FOSSA"});
  const auto tianqi = res.cell_windows({"HK", "Tianqi"});
  EXPECT_GT(fossa.size(), 3u);   // 3 sats, several passes each per day
  EXPECT_GT(tianqi.size(), 30u); // 22 sats
  EXPECT_TRUE(res.cell_windows({"HK", "Nonexistent"}).empty());
}

TEST(PassiveCampaign, TianqiSeesFartherThanFossa) {
  // Tianqi orbits ~860 km: its receptions span longer slant ranges
  // (paper Fig 8: 1,100-3,500 km vs 600-2,000 km).
  const auto& res = shared_campaign();
  double tianqi_max = 0.0, fossa_max = 0.0;
  for (const auto& r : res.traces.records()) {
    if (r.constellation == "Tianqi")
      tianqi_max = std::max(tianqi_max, r.range_km);
    else
      fossa_max = std::max(fossa_max, r.range_km);
  }
  EXPECT_GT(tianqi_max, fossa_max);
}

TEST(PassiveCampaign, StationAssignmentRoundRobins) {
  PassiveCampaignConfig cfg = tiny_campaign();
  const auto res = run_passive_campaign(cfg);
  std::set<std::string> stations;
  for (const auto& r : res.traces.records()) stations.insert(r.station);
  // HK has 6 stations; round-robin should touch most of them.
  EXPECT_GE(stations.size(), 4u);
}

TEST(PassiveCampaign, DeterministicForSeed) {
  const auto a = run_passive_campaign(tiny_campaign());
  const auto b = run_passive_campaign(tiny_campaign());
  EXPECT_EQ(a.traces.size(), b.traces.size());
  EXPECT_EQ(a.beacons_transmitted, b.beacons_transmitted);
}

TEST(PassiveCampaign, ConfigValidation) {
  PassiveCampaignConfig cfg = tiny_campaign();
  cfg.sites.clear();
  EXPECT_THROW(run_passive_campaign(cfg), std::invalid_argument);
  PassiveCampaignConfig cfg2 = tiny_campaign();
  cfg2.constellations.clear();
  EXPECT_THROW(run_passive_campaign(cfg2), std::invalid_argument);
  PassiveCampaignConfig cfg3 = tiny_campaign();
  cfg3.duration_days = -1.0;
  EXPECT_THROW(run_passive_campaign(cfg3), std::invalid_argument);
}

TEST(PassiveCampaign, QuieterSiteLogsMoreTraces) {
  // YC (rural highland, low man-made noise) should out-collect a dense
  // city with the same constellation — the Table 1 pattern.
  PassiveCampaignConfig cfg = default_campaign(1.0);
  MeasurementSite quiet = paper_site("YC");
  MeasurementSite noisy = paper_site("LDN");
  // Equalize geometry factors other than noise by co-locating them.
  noisy.location = quiet.location;
  quiet.code = "QQ";
  noisy.code = "NN";
  cfg.sites = {quiet, noisy};
  cfg.constellations = {sinet::orbit::paper_constellation("Tianqi")};
  const auto res = run_passive_campaign(cfg);
  std::size_t quiet_n = 0, noisy_n = 0;
  for (const auto& r : res.traces.records()) {
    if (r.station.rfind("QQ-", 0) == 0) ++quiet_n;
    if (r.station.rfind("NN-", 0) == 0) ++noisy_n;
  }
  EXPECT_GT(quiet_n, noisy_n);
}

TEST(Scenario, EightSitesTwentySevenStations) {
  const auto sites = paper_measurement_sites();
  ASSERT_EQ(sites.size(), 8u);  // Table 1
  int stations = 0;
  for (const auto& s : sites) stations += s.station_count;
  EXPECT_EQ(stations, 27);  // paper: 27 ground stations
  EXPECT_THROW(paper_site("XYZ"), std::invalid_argument);
  EXPECT_EQ(paper_site("HK").station_count, 6);
  EXPECT_EQ(availability_sites().size(), 4u);
}

}  // namespace
