// Terrestrial LoRaWAN baseline tests (paper Sec 3.2 comparison arm).
#include <gtest/gtest.h>

#include "net/lorawan.h"

namespace {

using namespace sinet::net;

TEST(Lorawan, UplinkPerIsTiny) {
  // A gateway 2 km away leaves tens of dB of margin: PER ~ residual.
  const LorawanConfig cfg;
  const double per = terrestrial_uplink_per(cfg);
  EXPECT_GT(per, 0.0);
  EXPECT_LT(per, 0.01);
}

TEST(Lorawan, ReliabilityNearlyPerfect) {
  LorawanConfig cfg;
  cfg.duration_days = 10.0;
  const LorawanResult res = run_lorawan(cfg);
  // Paper Fig 5a: terrestrial LoRaWAN achieves ~100%.
  EXPECT_GT(res.delivered_fraction(), 0.99);
}

TEST(Lorawan, GeneratesExpectedReportCount) {
  LorawanConfig cfg;
  cfg.node_count = 3;
  cfg.duration_days = 2.0;
  cfg.report_interval_s = 1800.0;
  const LorawanResult res = run_lorawan(cfg);
  // 3 nodes x 96 reports (staggered phases may shave one per node).
  EXPECT_GE(res.uplinks.size(), 3u * 95u);
  EXPECT_LE(res.uplinks.size(), 3u * 97u);
}

TEST(Lorawan, LatencyIsSubMinute) {
  LorawanConfig cfg;
  cfg.duration_days = 5.0;
  const LorawanResult res = run_lorawan(cfg);
  // Paper Fig 5c: terrestrial latency ~0.2 min on average.
  EXPECT_LT(res.mean_latency_s(), 60.0);
  EXPECT_GT(res.mean_latency_s(), 0.0);
}

TEST(Lorawan, RetransmissionsImproveReliability) {
  LorawanConfig no_arq, arq;
  no_arq.duration_days = arq.duration_days = 10.0;
  no_arq.gateway_distance_km = arq.gateway_distance_km = 9.0;  // weak link
  no_arq.max_retransmissions = 0;
  arq.max_retransmissions = 5;
  const double r0 = run_lorawan(no_arq).delivered_fraction();
  const double r5 = run_lorawan(arq).delivered_fraction();
  EXPECT_GE(r5, r0);
}

TEST(Lorawan, EnergyResidencyDominatedBySleep) {
  LorawanConfig cfg;
  cfg.duration_days = 3.0;
  const LorawanResult res = run_lorawan(cfg);
  ASSERT_EQ(res.node_residency.size(), 3u);
  for (const auto& r : res.node_residency) {
    EXPECT_GT(r.time_fraction(sinet::energy::Mode::kSleep), 0.9);
    EXPECT_GT(r.seconds_in(sinet::energy::Mode::kTx), 0.0);
  }
}

TEST(Lorawan, DeterministicForSeed) {
  LorawanConfig cfg;
  cfg.duration_days = 2.0;
  const LorawanResult a = run_lorawan(cfg);
  const LorawanResult b = run_lorawan(cfg);
  ASSERT_EQ(a.uplinks.size(), b.uplinks.size());
  for (std::size_t i = 0; i < a.uplinks.size(); ++i) {
    EXPECT_EQ(a.uplinks[i].delivered, b.uplinks[i].delivered);
    EXPECT_DOUBLE_EQ(a.uplinks[i].server_rx_unix_s,
                     b.uplinks[i].server_rx_unix_s);
  }
}

TEST(Lorawan, InvalidConfigThrows) {
  LorawanConfig bad;
  bad.node_count = 0;
  EXPECT_THROW(run_lorawan(bad), std::invalid_argument);
  LorawanConfig bad2;
  bad2.duration_days = 0.0;
  EXPECT_THROW(run_lorawan(bad2), std::invalid_argument);
  LorawanConfig bad3;
  bad3.report_interval_s = -1.0;
  EXPECT_THROW(run_lorawan(bad3), std::invalid_argument);
}

TEST(Lorawan, FartherGatewayRaisesPer) {
  LorawanConfig near_cfg, far_cfg;
  near_cfg.gateway_distance_km = 1.0;
  far_cfg.gateway_distance_km = 12.0;
  EXPECT_LT(terrestrial_uplink_per(near_cfg),
            terrestrial_uplink_per(far_cfg));
}

}  // namespace
