// Channel models: path loss, weather, fading, noise, antennas.
#include <gtest/gtest.h>

#include <cmath>

#include "channel/antenna.h"
#include "channel/fading.h"
#include "channel/noise.h"
#include "channel/path_loss.h"
#include "channel/weather.h"
#include "sim/rng.h"

namespace {

using namespace sinet::channel;

TEST(PathLoss, KnownFreeSpaceValues) {
  // 1 km @ 1 MHz is the formula's reference point: 32.45 dB.
  EXPECT_NEAR(free_space_path_loss_db(1.0, 1e6), 32.45, 0.01);
  // 1000 km @ 433 MHz: 32.45 + 60 + 52.73 = 145.2 dB.
  EXPECT_NEAR(free_space_path_loss_db(1000.0, 433e6), 145.2, 0.1);
  // Doubling distance adds 6.02 dB.
  const double d1 = free_space_path_loss_db(700.0, 400e6);
  const double d2 = free_space_path_loss_db(1400.0, 400e6);
  EXPECT_NEAR(d2 - d1, 6.02, 0.01);
}

TEST(PathLoss, InvalidInputsThrow) {
  EXPECT_THROW(free_space_path_loss_db(0.0, 433e6), std::invalid_argument);
  EXPECT_THROW(free_space_path_loss_db(100.0, 0.0), std::invalid_argument);
  EXPECT_THROW(free_space_path_loss_db(-5.0, 433e6), std::invalid_argument);
}

TEST(PathLoss, ElevationExcessLossShape) {
  // Zenith: just the zenith loss. Horizon: clamped to max.
  EXPECT_NEAR(elevation_excess_loss_db(90.0), 0.1, 1e-6);
  EXPECT_DOUBLE_EQ(elevation_excess_loss_db(0.0), 10.0);
  EXPECT_DOUBLE_EQ(elevation_excess_loss_db(-5.0), 10.0);
  // Monotone non-increasing in elevation.
  double prev = elevation_excess_loss_db(0.5);
  for (double el = 1.0; el <= 90.0; el += 1.0) {
    const double v = elevation_excess_loss_db(el);
    EXPECT_LE(v, prev + 1e-12);
    prev = v;
  }
  EXPECT_THROW(elevation_excess_loss_db(10.0, -1.0), std::invalid_argument);
}

TEST(Weather, LossesOrderedByCondition) {
  EXPECT_DOUBLE_EQ(weather_excess_loss_db(Weather::kSunny), 0.0);
  EXPECT_GT(weather_excess_loss_db(Weather::kCloudy), 0.0);
  EXPECT_GT(weather_excess_loss_db(Weather::kRainy),
            weather_excess_loss_db(Weather::kCloudy));
  EXPECT_GT(weather_extra_shadowing_db(Weather::kRainy),
            weather_extra_shadowing_db(Weather::kSunny));
}

TEST(Weather, StringRoundTrip) {
  for (const Weather w :
       {Weather::kSunny, Weather::kCloudy, Weather::kRainy})
    EXPECT_EQ(weather_from_string(to_string(w)), w);
  EXPECT_THROW(weather_from_string("hail"), std::invalid_argument);
}

TEST(Noise, ThermalAndFloor) {
  // kTB at 125 kHz: -174 + 51 = -123 dBm.
  EXPECT_NEAR(thermal_noise_dbm(125e3), -123.03, 0.05);
  // Floor adds NF and external noise.
  EXPECT_NEAR(noise_floor_dbm(125e3, 6.0, 2.0), -115.03, 0.05);
  EXPECT_THROW(thermal_noise_dbm(0.0), std::invalid_argument);
  EXPECT_THROW(noise_floor_dbm(125e3, -1.0), std::invalid_argument);
}

TEST(Fading, KFactorInterpolatesWithElevation) {
  const FadingModel model;
  const auto& cfg = model.config();
  EXPECT_DOUBLE_EQ(model.k_factor_db(90.0), cfg.rician_k_db);
  EXPECT_DOUBLE_EQ(model.k_factor_db(cfg.k_rolloff_elevation_deg),
                   cfg.rician_k_db);
  EXPECT_DOUBLE_EQ(model.k_factor_db(0.0), cfg.low_elevation_k_db);
  const double mid = model.k_factor_db(cfg.k_rolloff_elevation_deg / 2.0);
  EXPECT_GT(mid, cfg.low_elevation_k_db);
  EXPECT_LT(mid, cfg.rician_k_db);
}

TEST(Fading, DrawStatisticsAreSane) {
  const FadingModel model;
  sinet::sim::Rng rng(3);
  double sum = 0.0, count = 0.0, deep_fades = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double f = model.draw_db(rng, 60.0, Weather::kSunny);
    sum += f;
    count += 1.0;
    if (f < -10.0) deep_fades += 1.0;
  }
  // Mean near zero (shadowing symmetric, Rician mean power 1).
  EXPECT_NEAR(sum / count, 0.0, 0.5);
  // Deep fades exist but are rare at high elevation / high K.
  EXPECT_GT(deep_fades, 0.0);
  EXPECT_LT(deep_fades / count, 0.02);
}

TEST(Fading, RainIncreasesSpread) {
  const FadingModel model;
  sinet::sim::Rng rng_a(5), rng_b(5);
  double var_sunny = 0.0, var_rainy = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double s = model.draw_db(rng_a, 45.0, Weather::kSunny);
    var_sunny += s * s;
    const double r = model.draw_db(rng_b, 45.0, Weather::kRainy);
    var_rainy += r * r;
  }
  EXPECT_GT(var_rainy / n, var_sunny / n);
}

TEST(Fading, InvalidConfigThrows) {
  FadingConfig bad;
  bad.shadowing_sigma_db = -1.0;
  EXPECT_THROW(FadingModel{bad}, std::invalid_argument);
  FadingConfig bad2;
  bad2.k_rolloff_elevation_deg = 0.0;
  EXPECT_THROW(FadingModel{bad2}, std::invalid_argument);
}

TEST(Antenna, PeakGainsOrdered) {
  EXPECT_DOUBLE_EQ(antenna_peak_gain_dbi(AntennaType::kIsotropic), 0.0);
  EXPECT_GT(antenna_peak_gain_dbi(AntennaType::kFiveEighthsWaveMonopole),
            antenna_peak_gain_dbi(AntennaType::kQuarterWaveMonopole));
}

TEST(Antenna, IsotropicIsFlat) {
  for (double el = 0.0; el <= 90.0; el += 10.0)
    EXPECT_DOUBLE_EQ(antenna_gain_dbi(AntennaType::kIsotropic, el), 0.0);
}

TEST(Antenna, MonopoleHasZenithNull) {
  for (const AntennaType t : {AntennaType::kQuarterWaveMonopole,
                              AntennaType::kFiveEighthsWaveMonopole}) {
    const double at_peak = antenna_peak_gain_dbi(t);
    const double at_zenith = antenna_gain_dbi(t, 90.0);
    EXPECT_LT(at_zenith, at_peak - 8.0) << to_string(t);
  }
}

TEST(Antenna, FiveEighthsBeatsQuarterAtLowElevation) {
  // The reason the paper's 5/8-wave whip needs fewer retransmissions
  // (Fig 5b): more gain toward the low-elevation satellite.
  for (double el = 5.0; el <= 30.0; el += 5.0) {
    EXPECT_GT(
        antenna_gain_dbi(AntennaType::kFiveEighthsWaveMonopole, el),
        antenna_gain_dbi(AntennaType::kQuarterWaveMonopole, el) - 0.5);
  }
  EXPECT_GT(antenna_gain_dbi(AntennaType::kFiveEighthsWaveMonopole, 16.0),
            antenna_gain_dbi(AntennaType::kQuarterWaveMonopole, 16.0));
}

TEST(Antenna, DipolePatternSymmetricAndBounded) {
  for (double el = -90.0; el <= 90.0; el += 5.0) {
    const double g = antenna_gain_dbi(AntennaType::kDipole, el);
    EXPECT_LE(g, 2.16);
    EXPECT_GE(g, -45.0);
  }
  EXPECT_NEAR(antenna_gain_dbi(AntennaType::kDipole, 0.0), 2.15, 0.01);
}

TEST(Antenna, NamesAreDistinct) {
  EXPECT_NE(to_string(AntennaType::kQuarterWaveMonopole),
            to_string(AntennaType::kFiveEighthsWaveMonopole));
  EXPECT_NE(to_string(AntennaType::kDipole),
            to_string(AntennaType::kIsotropic));
}

}  // namespace
