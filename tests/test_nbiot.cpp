// NB-IoT (NTN) DtS model tests.
#include <gtest/gtest.h>

#include "phy/nbiot.h"

namespace {

using namespace sinet::phy;

TEST(NbIot, TransmissionTimeScalesWithRepetitions) {
  NbIotParams p;
  p.repetitions = 1;
  const double t1 = nbiot_transmission_time_s(p, 20);
  p.repetitions = 8;
  const double t8 = nbiot_transmission_time_s(p, 20);
  // Signalling overhead is constant; the data part scales 8x.
  const double data1 = t1 - p.signalling_overhead_s;
  const double data8 = t8 - p.signalling_overhead_s;
  EXPECT_NEAR(data8 / data1, 8.0, 1e-9);
}

TEST(NbIot, TwentyByteAirtimeIsSubSecondAtOneRep) {
  NbIotParams p;
  // (20+9)*8 bits at 20 kbps = 11.6 ms + 0.6 s signalling.
  EXPECT_NEAR(nbiot_transmission_time_s(p, 20), 0.6116, 1e-3);
}

TEST(NbIot, InvalidInputsThrow) {
  NbIotParams p;
  EXPECT_THROW(nbiot_transmission_time_s(p, 0), std::invalid_argument);
  EXPECT_THROW(nbiot_transmission_time_s(p, 2000), std::invalid_argument);
  p.repetitions = 0;
  EXPECT_THROW(nbiot_transmission_time_s(p, 20), std::invalid_argument);
  p.repetitions = 256;
  EXPECT_THROW(nbiot_transmission_time_s(p, 20), std::invalid_argument);
  EXPECT_THROW(nbiot_required_snr_db(0), std::invalid_argument);
}

TEST(NbIot, RequiredSnrDropsWithRepetitions) {
  EXPECT_DOUBLE_EQ(nbiot_required_snr_db(1), 5.0);
  EXPECT_DOUBLE_EQ(nbiot_required_snr_db(2), 2.5);
  EXPECT_DOUBLE_EQ(nbiot_required_snr_db(128), 5.0 - 2.5 * 7.0);
  double prev = 10.0;
  for (int r = 1; r <= 128; r *= 2) {
    const double snr = nbiot_required_snr_db(r);
    EXPECT_LT(snr, prev);
    prev = snr;
  }
}

TEST(NbIot, MaxCouplingLossNearDesignTarget) {
  // NB-IoT's design target is 164 dB MCL at max repetitions. Our model:
  // 23 dBm - (-174 + 10log10(15k) + 3) + 12.5 = ~164.7 dB.
  NbIotParams p;
  p.repetitions = 128;
  EXPECT_NEAR(nbiot_max_coupling_loss_db(p), 164.0, 2.0);
  // One repetition: 17.5 dB less.
  p.repetitions = 1;
  EXPECT_NEAR(nbiot_max_coupling_loss_db(p), 164.0 - 17.5, 2.5);
}

TEST(NbIot, ChooseRepetitionsMatchesThresholds) {
  EXPECT_EQ(nbiot_choose_repetitions(6.0), 1);
  EXPECT_EQ(nbiot_choose_repetitions(5.0), 1);
  EXPECT_EQ(nbiot_choose_repetitions(4.9), 2);
  EXPECT_EQ(nbiot_choose_repetitions(0.0), 4);
  EXPECT_EQ(nbiot_choose_repetitions(-12.5), 128);
  EXPECT_EQ(nbiot_choose_repetitions(-13.0), 0);  // cannot close
}

TEST(NbIot, TxEnergyScalesWithAirtime) {
  NbIotParams p;
  p.repetitions = 4;
  const double e = nbiot_tx_energy_mj(p, 20);
  EXPECT_NEAR(e, 716.0 * nbiot_transmission_time_s(p, 20), 1e-9);
  EXPECT_THROW(nbiot_tx_energy_mj(p, 20, 0.0), std::invalid_argument);
}

}  // namespace
