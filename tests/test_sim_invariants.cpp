// Model-checked invariants for the DES core.
//
// The EventQueue is checked against a naive sorted-vector reference over
// >=10k randomized schedule/cancel/step/run_until sequences: every paper
// figure integrates over this schedule, so order, liveness accounting,
// and cancel semantics are load-bearing. The ThreadPool is stressed under
// nesting (a worker calling parallel_for on its own pool must help drain
// the queue, not deadlock — the threads=1 legacy mode is the worst case),
// exception propagation, and shared-pool reuse; EmpiricalCdf is queried
// concurrently from pool workers. The concurrency tests are the TSan
// targets wired through tools/run_sanitizers.sh.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <limits>
#include <span>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "sim/event_queue.h"
#include "sim/rng.h"
#include "sim/thread_pool.h"
#include "stats/cdf.h"

namespace {

using sinet::sim::EventHandle;
using sinet::sim::EventQueue;
using sinet::sim::Rng;
using sinet::sim::ThreadPool;
using sinet::stats::EmpiricalCdf;

// ---------------------------------------------------------------------------
// EventQueue vs. reference model
// ---------------------------------------------------------------------------

/// Naive reference: a flat vector scanned for the earliest live entry.
/// Mirrors the documented EventQueue contract exactly; any divergence in
/// the model check is a bug in one of the two.
class RefQueue {
 public:
  EventHandle schedule(double t, int id) {
    entries_.push_back({t, next_handle_, id, State::kPending});
    return next_handle_++;
  }

  /// True iff the handle exists and is still pending (not fired, not
  /// already cancelled) — the strict semantics EventQueue must match.
  bool cancel(EventHandle h) {
    for (Entry& e : entries_)
      if (e.handle == h) {
        if (e.state != State::kPending) return false;
        e.state = State::kCancelled;
        return true;
      }
    return false;
  }

  /// Fires the earliest (time, handle) pending entry; returns its id or
  /// -1 when empty.
  int step() {
    Entry* best = nullptr;
    for (Entry& e : entries_)
      if (e.state == State::kPending &&
          (best == nullptr || e.time < best->time ||
           (e.time == best->time && e.handle < best->handle)))
        best = &e;
    if (best == nullptr) return -1;
    best->state = State::kFired;
    now_ = best->time;
    return best->id;
  }

  [[nodiscard]] std::size_t pending() const {
    std::size_t n = 0;
    for (const Entry& e : entries_)
      if (e.state == State::kPending) ++n;
    return n;
  }

  [[nodiscard]] double peek_time() const {
    double best = std::numeric_limits<double>::infinity();
    EventHandle best_h = 0;
    bool found = false;
    for (const Entry& e : entries_)
      if (e.state == State::kPending &&
          (!found || e.time < best || (e.time == best && e.handle < best_h))) {
        best = e.time;
        best_h = e.handle;
        found = true;
      }
    return best;
  }

  [[nodiscard]] double now() const { return now_; }

  /// Some handle that has already fired, or kInvalidEvent if none have.
  [[nodiscard]] EventHandle any_fired_handle(Rng& rng) const {
    std::vector<EventHandle> fired;
    for (const Entry& e : entries_)
      if (e.state == State::kFired) fired.push_back(e.handle);
    if (fired.empty()) return sinet::sim::kInvalidEvent;
    return fired[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(fired.size()) - 1))];
  }

  [[nodiscard]] EventHandle any_handle(Rng& rng) const {
    if (entries_.empty()) return sinet::sim::kInvalidEvent;
    return entries_[static_cast<std::size_t>(rng.uniform_int(
                        0, static_cast<std::int64_t>(entries_.size()) - 1))]
        .handle;
  }

 private:
  enum class State { kPending, kFired, kCancelled };
  struct Entry {
    double time;
    EventHandle handle;
    int id;
    State state;
  };
  std::vector<Entry> entries_;
  EventHandle next_handle_ = 1;  // mirrors EventQueue's first handle
  double now_ = 0.0;
};

TEST(EventQueueModelCheck, TenThousandRandomOpsMatchReference) {
  // 4 seeds x 3000 ops = 12000 randomized operations checked against the
  // reference after every single op.
  for (const std::uint64_t seed : {2u, 11u, 77u, 20260805u}) {
    Rng rng(seed);
    EventQueue q;
    RefQueue ref;
    std::vector<int> fired_ids;
    int next_id = 0;

    for (int op = 0; op < 3000; ++op) {
      const double roll = rng.uniform();
      if (roll < 0.45) {
        // Schedule on a quantized grid so time collisions exercise the
        // (time, seq) tiebreak.
        const double t =
            q.now() + static_cast<double>(rng.uniform_int(0, 40)) * 0.25;
        const int id = next_id++;
        const EventHandle h =
            q.schedule_at(t, [&fired_ids, id] { fired_ids.push_back(id); });
        const EventHandle rh = ref.schedule(t, id);
        ASSERT_EQ(h, rh) << "seed " << seed << " op " << op;
      } else if (roll < 0.70) {
        // Cancel: mix of live, already-fired, already-cancelled, and
        // unknown handles — all four must agree with the reference.
        EventHandle victim;
        const double which = rng.uniform();
        if (which < 0.55) {
          victim = ref.any_handle(rng);
        } else if (which < 0.80) {
          victim = ref.any_fired_handle(rng);
        } else {
          victim = 1000000 + static_cast<EventHandle>(op);  // unknown
        }
        ASSERT_EQ(q.cancel(victim), ref.cancel(victim))
            << "seed " << seed << " op " << op << " victim " << victim;
      } else if (roll < 0.90) {
        const std::size_t before = fired_ids.size();
        const bool stepped = q.step();
        const int expect_id = ref.step();
        ASSERT_EQ(stepped, expect_id >= 0) << "seed " << seed << " op " << op;
        if (stepped) {
          ASSERT_EQ(fired_ids.size(), before + 1);
          ASSERT_EQ(fired_ids.back(), expect_id)
              << "seed " << seed << " op " << op;
          ASSERT_DOUBLE_EQ(q.now(), ref.now());
        }
      } else {
        // run_until a short horizon: the reference fires everything with
        // time <= until in its own order.
        const double until = q.now() + rng.uniform(0.0, 3.0);
        const std::size_t before = fired_ids.size();
        const std::size_t n = q.run_until(until);
        std::size_t ref_n = 0;
        while (ref.pending() > 0 && ref.peek_time() <= until) {
          const int id = ref.step();
          ASSERT_GE(id, 0);
          ++ref_n;
          ASSERT_EQ(fired_ids[before + ref_n - 1], id)
              << "seed " << seed << " op " << op;
        }
        ASSERT_EQ(n, ref_n) << "seed " << seed << " op " << op;
      }

      // Global invariants after every operation.
      ASSERT_EQ(q.pending(), ref.pending())
          << "seed " << seed << " op " << op;
      ASSERT_EQ(q.empty(), ref.pending() == 0);
      if (!q.empty()) {
        ASSERT_DOUBLE_EQ(q.peek_time(), ref.peek_time())
            << "seed " << seed << " op " << op;
      } else {
        EXPECT_THROW((void)q.peek_time(), std::logic_error);
      }
    }

    // Drain and make sure the tails agree too.
    while (true) {
      const bool stepped = q.step();
      const int expect_id = ref.step();
      ASSERT_EQ(stepped, expect_id >= 0);
      if (!stepped) break;
      ASSERT_EQ(fired_ids.back(), expect_id);
    }
    ASSERT_TRUE(q.empty());
    ASSERT_EQ(q.pending(), 0u);
  }
}

// Regression for the fired-handle cancel bug: cancel() used to return
// true for an already-executed handle and decrement the live counter, so
// empty() reported true while real events were still queued and
// run_until() silently dropped them.
TEST(EventQueueRegression, CancelOfFiredHandleIsRejectedAndDropsNothing) {
  EventQueue q;
  int fired = 0;
  const EventHandle first = q.schedule_at(1.0, [&fired] { ++fired; });
  q.schedule_at(2.0, [&fired] { ++fired; });

  ASSERT_TRUE(q.step());  // fires `first`
  EXPECT_EQ(fired, 1);

  EXPECT_FALSE(q.cancel(first)) << "cancel of a fired handle must be a no-op";
  EXPECT_FALSE(q.empty()) << "one real event is still pending";
  EXPECT_EQ(q.pending(), 1u);

  EXPECT_EQ(q.run_until(10.0), 1u) << "pending event must not be dropped";
  EXPECT_EQ(fired, 2);
  EXPECT_TRUE(q.empty());

  // Double-cancel of a genuinely pending handle: first wins, second no-op.
  const EventHandle h = q.schedule_at(20.0, [&fired] { ++fired; });
  EXPECT_TRUE(q.cancel(h));
  EXPECT_FALSE(q.cancel(h));
  EXPECT_EQ(q.run_all(), 0u);
  EXPECT_EQ(fired, 2);
}

TEST(EventQueueInvariants, PeekTimeIsConstAndSkipsCancelledRuns) {
  EventQueue q;
  std::vector<EventHandle> hs;
  for (int i = 0; i < 64; ++i)
    hs.push_back(q.schedule_at(static_cast<double>(i), [] {}));
  // Cancel a long prefix; peek through a const ref must see past it.
  for (int i = 0; i < 50; ++i) EXPECT_TRUE(q.cancel(hs[i]));
  const EventQueue& cq = q;
  EXPECT_DOUBLE_EQ(cq.peek_time(), 50.0);
  EXPECT_EQ(cq.pending(), 14u);
  EXPECT_EQ(q.run_all(), 14u);
}

// ---------------------------------------------------------------------------
// ThreadPool: nesting, exceptions, shared reuse
// ---------------------------------------------------------------------------

// Regression for the nested parallel_for deadlock: a worker that called
// parallel_for blocked on the completion latch while the nested tasks sat
// behind it in the queue — guaranteed deadlock on a 1-thread pool (the
// threads=1 exact-legacy mode). The worker must help drain the queue.
TEST(ThreadPoolRegression, NestedParallelForOnOneThreadPool) {
  ThreadPool pool(1);
  std::atomic<int> inner_runs{0};
  std::atomic<int> outer_runs{0};
  pool.parallel_for(4, [&](std::size_t) {
    outer_runs.fetch_add(1, std::memory_order_relaxed);
    pool.parallel_for(3, [&](std::size_t) {
      inner_runs.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(outer_runs.load(), 4);
  EXPECT_EQ(inner_runs.load(), 12);
}

TEST(ThreadPoolStress, TripleNestingOnSmallPools) {
  for (const unsigned threads : {1u, 2u, 4u}) {
    ThreadPool pool(threads);
    std::atomic<int> leaf{0};
    pool.parallel_for(3, [&](std::size_t) {
      pool.parallel_for(3, [&](std::size_t) {
        pool.parallel_for(3, [&](std::size_t) {
          leaf.fetch_add(1, std::memory_order_relaxed);
        });
      });
    });
    EXPECT_EQ(leaf.load(), 27) << "threads=" << threads;
  }
}

TEST(ThreadPoolStress, ExceptionPropagatesFromNestedBody) {
  ThreadPool pool(2);
  // The lowest throwing index wins, independent of scheduling order.
  try {
    pool.parallel_for(6, [&](std::size_t i) {
      if (i == 1) throw std::runtime_error("boom-1");
      if (i == 4) throw std::runtime_error("boom-4");
    });
    FAIL() << "expected exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom-1");
  }

  // An exception in an inner nested loop surfaces through the outer one,
  // and the pool stays usable afterwards.
  std::atomic<int> survivors{0};
  EXPECT_THROW(pool.parallel_for(2,
                                 [&](std::size_t) {
                                   pool.parallel_for(2, [](std::size_t j) {
                                     if (j == 1)
                                       throw std::logic_error("inner");
                                   });
                                 }),
               std::logic_error);
  pool.parallel_for(8, [&](std::size_t) {
    survivors.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(survivors.load(), 8);
}

TEST(ThreadPoolStress, SharedPoolReusedFromManyThreads) {
  // Several external threads fan out on the shared pool concurrently —
  // the TSan target for queue/latch handoff.
  std::atomic<int> total{0};
  std::vector<std::thread> callers;
  callers.reserve(4);
  for (int c = 0; c < 4; ++c) {
    callers.emplace_back([&total] {
      for (int round = 0; round < 5; ++round) {
        ThreadPool::shared().parallel_for(16, [&total](std::size_t) {
          total.fetch_add(1, std::memory_order_relaxed);
        });
      }
    });
  }
  for (std::thread& t : callers) t.join();
  EXPECT_EQ(total.load(), 4 * 5 * 16);
}

TEST(ThreadPoolStress, WorkerThreadDetection) {
  ThreadPool pool(2);
  EXPECT_FALSE(pool.on_worker_thread());
  std::atomic<int> on_worker{0};
  pool.parallel_for(4, [&](std::size_t) {
    if (pool.on_worker_thread())
      on_worker.fetch_add(1, std::memory_order_relaxed);
    // A different pool's worker is not ours.
    EXPECT_FALSE(ThreadPool::shared().on_worker_thread());
  });
  EXPECT_EQ(on_worker.load(), 4);
}

TEST(ThreadPoolStress, DeterministicResultsUnderNesting) {
  // Nested fan-out writing into index-owned slots must be bit-identical
  // to the serial computation.
  const std::size_t kOuter = 8, kInner = 16;
  std::vector<double> parallel_out(kOuter * kInner, 0.0);
  ThreadPool pool(3);
  pool.parallel_for(kOuter, [&](std::size_t i) {
    pool.parallel_for(kInner, [&, i](std::size_t j) {
      parallel_out[i * kInner + j] =
          static_cast<double>(i * 31 + j) * 0.5 + 1.0 / (1.0 + double(j));
    });
  });
  for (std::size_t i = 0; i < kOuter; ++i)
    for (std::size_t j = 0; j < kInner; ++j)
      EXPECT_EQ(parallel_out[i * kInner + j],
                static_cast<double>(i * 31 + j) * 0.5 + 1.0 / (1.0 + double(j)));
}

// ---------------------------------------------------------------------------
// EmpiricalCdf: concurrent const queries (TSan target)
// ---------------------------------------------------------------------------

TEST(EmpiricalCdfConcurrency, ParallelQuantilesMatchSerial) {
  // Pre-fix, the lazy sort inside the const accessors mutated samples_
  // from every worker at once — a textbook data race. Now the first
  // query sorts under a mutex and the rest read the published result.
  Rng rng(4242);
  std::vector<double> xs(20000);
  for (double& x : xs) x = rng.normal(250.0, 90.0);

  EmpiricalCdf serial{std::span<const double>(xs)};
  std::vector<double> expected(33);
  for (std::size_t i = 0; i < expected.size(); ++i)
    expected[i] = serial.quantile(static_cast<double>(i) /
                                  static_cast<double>(expected.size() - 1));

  // A local 4-worker pool: real OS-thread concurrency even when the
  // shared pool is sized for a 1-CPU host.
  ThreadPool pool(4);
  for (int round = 0; round < 8; ++round) {
    EmpiricalCdf cdf{std::span<const double>(xs)};  // unsorted every round
    std::vector<double> got(expected.size(), 0.0);
    pool.parallel_for(got.size(), [&](std::size_t i) {
      const double p =
          static_cast<double>(i) / static_cast<double>(got.size() - 1);
      got[i] = cdf.quantile(p);
      // Mixed concurrent const accessors sharing the same lazy sort.
      (void)cdf.fraction_at_or_below(got[i]);
      (void)cdf.fraction_between(0.0, got[i]);
      (void)cdf.sorted_samples();
    });
    for (std::size_t i = 0; i < got.size(); ++i)
      EXPECT_EQ(got[i], expected[i]) << "round " << round << " i " << i;
  }
}

TEST(EmpiricalCdfConcurrency, CopiesAreIndependent) {
  EmpiricalCdf a{5.0, 1.0, 3.0};
  EmpiricalCdf b = a;           // copy sorts the source first
  a.add(100.0);                 // mutating the original
  EXPECT_EQ(b.size(), 3u);
  EXPECT_DOUBLE_EQ(b.quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(a.quantile(1.0), 100.0);

  EmpiricalCdf c = std::move(a);
  EXPECT_DOUBLE_EQ(c.quantile(1.0), 100.0);

  b = c;
  EXPECT_DOUBLE_EQ(b.quantile(1.0), 100.0);
}

}  // namespace
