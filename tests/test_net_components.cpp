// Store-and-forward buffer, ground-station catalog, backhaul model.
#include <gtest/gtest.h>

#include "net/backhaul.h"
#include "net/ground_station.h"
#include "net/satellite.h"
#include "orbit/tle.h"
#include "sim/rng.h"

namespace {

using namespace sinet::net;

StoredPacket pkt(std::uint64_t seq) {
  StoredPacket p;
  p.packet.sequence = seq;
  p.packet.node_index = 0;
  return p;
}

TEST(SfBuffer, FifoStoreAndFlush) {
  StoreAndForwardBuffer buf(8);
  EXPECT_TRUE(buf.store(pkt(1)));
  EXPECT_TRUE(buf.store(pkt(2)));
  EXPECT_EQ(buf.size(), 2u);
  const auto out = buf.flush();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].packet.sequence, 1u);
  EXPECT_EQ(out[1].packet.sequence, 2u);
  EXPECT_EQ(buf.size(), 0u);
}

TEST(SfBuffer, OverflowDropsAndCounts) {
  StoreAndForwardBuffer buf(2);
  EXPECT_TRUE(buf.store(pkt(1)));
  EXPECT_TRUE(buf.store(pkt(2)));
  EXPECT_TRUE(buf.full());
  EXPECT_FALSE(buf.store(pkt(3)));
  EXPECT_EQ(buf.drop_count(), 1u);
  EXPECT_EQ(buf.size(), 2u);
}

TEST(SfBuffer, FlushUpToDrainsFifoPrefix) {
  StoreAndForwardBuffer buf(8);
  for (std::uint64_t i = 0; i < 5; ++i) buf.store(pkt(i));
  const auto first = buf.flush_up_to(2);
  ASSERT_EQ(first.size(), 2u);
  EXPECT_EQ(first[0].packet.sequence, 0u);
  EXPECT_EQ(first[1].packet.sequence, 1u);
  EXPECT_EQ(buf.size(), 3u);
  // Asking for more than available drains what's there.
  const auto rest = buf.flush_up_to(99);
  ASSERT_EQ(rest.size(), 3u);
  EXPECT_EQ(rest[0].packet.sequence, 2u);
  EXPECT_TRUE(buf.flush_up_to(4).empty());
}

TEST(SfBuffer, PeakOccupancyTracksHighWater) {
  StoreAndForwardBuffer buf(10);
  buf.store(pkt(1));
  buf.store(pkt(2));
  buf.store(pkt(3));
  (void)buf.flush();
  buf.store(pkt(4));
  EXPECT_EQ(buf.peak_occupancy(), 3u);
}

TEST(SfBuffer, ZeroCapacityRejected) {
  EXPECT_THROW(StoreAndForwardBuffer{0}, std::invalid_argument);
}

TEST(Satellite, ConstructsFromTle) {
  sinet::orbit::KeplerianElements kep;
  kep.altitude_km = 860.0;
  kep.inclination_deg = 49.97;
  const auto tle = sinet::orbit::make_tle(
      "TQ-01", 51001, kep, sinet::orbit::julian_from_civil(2025, 3, 1));
  Satellite sat("TQ-01", "Tianqi", tle, 64);
  EXPECT_EQ(sat.name, "TQ-01");
  EXPECT_EQ(sat.constellation, "Tianqi");
  EXPECT_EQ(sat.buffer.capacity(), 64u);
  EXPECT_GT(sat.propagator.at(10.0).position_km.norm(), 6378.0);
}

TEST(GroundStations, TwelveStationsAllInChina) {
  const auto stations = tianqi_ground_stations();
  ASSERT_EQ(stations.size(), 12u);  // paper Sec 2.3
  for (const auto& gs : stations) {
    EXPECT_GE(gs.location.latitude_deg, 17.0) << gs.name;
    EXPECT_LE(gs.location.latitude_deg, 54.0) << gs.name;
    EXPECT_GE(gs.location.longitude_deg, 73.0) << gs.name;
    EXPECT_LE(gs.location.longitude_deg, 135.0) << gs.name;
    EXPECT_GT(gs.min_elevation_deg, 0.0);
  }
}

TEST(Backhaul, DelaysArePositiveWithMedianNearBase) {
  const BackhaulModel model(lte_backhaul());
  sinet::sim::Rng rng(9);
  std::vector<double> delays;
  for (int i = 0; i < 4000; ++i) {
    const double d = model.draw_delay_s(rng);
    EXPECT_GT(d, 0.0);
    delays.push_back(d);
  }
  std::sort(delays.begin(), delays.end());
  // Median = processing floor + the log-normal's median (= base delay).
  EXPECT_NEAR(delays[delays.size() / 2],
              lte_backhaul().processing_delay_s +
                  lte_backhaul().base_delay_s,
              0.1);
}

TEST(Backhaul, TianqiDeliveryHasProcessingFloor) {
  const BackhaulConfig cfg = tianqi_delivery_backhaul();
  const BackhaulModel model(cfg);
  sinet::sim::Rng rng(10);
  for (int i = 0; i < 100; ++i)
    EXPECT_GE(model.draw_delay_s(rng), cfg.processing_delay_s);
}

TEST(Backhaul, ConfigValidation) {
  BackhaulConfig bad;
  bad.base_delay_s = 0.0;
  EXPECT_THROW(BackhaulModel{bad}, std::invalid_argument);
  BackhaulConfig bad2;
  bad2.jitter_sigma_ln = -0.1;
  EXPECT_THROW(BackhaulModel{bad2}, std::invalid_argument);
  BackhaulConfig bad3;
  bad3.processing_delay_s = -1.0;
  EXPECT_THROW(BackhaulModel{bad3}, std::invalid_argument);
}

}  // namespace
