// Energy model: power profiles, residency accounting, battery, duty
// cycles (paper Figs 6, 10, 11).
#include <gtest/gtest.h>

#include "energy/battery.h"
#include "energy/duty_cycle.h"
#include "energy/power_model.h"

namespace {

using namespace sinet::energy;

TEST(PowerProfile, TerrestrialMatchesPaperFig10) {
  const PowerProfile p = terrestrial_node_profile();
  EXPECT_DOUBLE_EQ(p.power_mw(Mode::kTx), 1630.0);
  EXPECT_DOUBLE_EQ(p.power_mw(Mode::kRx), 265.0);
  EXPECT_DOUBLE_EQ(p.power_mw(Mode::kStandby), 146.0);
  EXPECT_DOUBLE_EQ(p.power_mw(Mode::kSleep), 19.1);
  EXPECT_TRUE(p.has_standby);
}

TEST(PowerProfile, SatelliteTxIs2point2xTerrestrial) {
  const PowerProfile sat = satellite_node_profile();
  const PowerProfile terr = terrestrial_node_profile();
  EXPECT_NEAR(sat.power_mw(Mode::kTx) / terr.power_mw(Mode::kTx), 2.2,
              1e-9);
  EXPECT_FALSE(sat.has_standby);
  EXPECT_THROW((void)sat.power_mw(Mode::kStandby), std::logic_error);
  // MCU stays on in sleep: higher floor than the terrestrial node.
  EXPECT_GT(sat.power_mw(Mode::kSleep), terr.power_mw(Mode::kSleep));
}

TEST(Residency, AccumulatesAndFractions) {
  ResidencyTracker t;
  t.record(Mode::kSleep, 900.0);
  t.record(Mode::kRx, 90.0);
  t.record(Mode::kTx, 10.0);
  t.record(Mode::kSleep, 0.0);
  EXPECT_DOUBLE_EQ(t.total_seconds(), 1000.0);
  EXPECT_DOUBLE_EQ(t.time_fraction(Mode::kSleep), 0.9);
  EXPECT_DOUBLE_EQ(t.time_fraction(Mode::kTx), 0.01);
  EXPECT_THROW(t.record(Mode::kRx, -1.0), std::invalid_argument);
}

TEST(Residency, EnergyComputation) {
  const PowerProfile p = terrestrial_node_profile();
  ResidencyTracker t;
  t.record(Mode::kTx, 3600.0);  // one hour of Tx
  EXPECT_DOUBLE_EQ(t.energy_mwh(Mode::kTx, p), 1630.0);
  EXPECT_DOUBLE_EQ(t.total_energy_mwh(p), 1630.0);
  EXPECT_DOUBLE_EQ(t.energy_fraction(Mode::kTx, p), 1.0);
  EXPECT_DOUBLE_EQ(t.average_power_mw(p), 1630.0);
}

TEST(Residency, EmptyTrackerIsZero) {
  const ResidencyTracker t;
  const PowerProfile p = terrestrial_node_profile();
  EXPECT_DOUBLE_EQ(t.total_seconds(), 0.0);
  EXPECT_DOUBLE_EQ(t.time_fraction(Mode::kRx), 0.0);
  EXPECT_DOUBLE_EQ(t.average_power_mw(p), 0.0);
}

TEST(Residency, StandbyOnStandbylessProfileThrows) {
  ResidencyTracker t;
  t.record(Mode::kStandby, 10.0);
  const PowerProfile sat = satellite_node_profile();
  EXPECT_THROW((void)t.energy_mwh(Mode::kStandby, sat), std::logic_error);
}

TEST(Battery, EnergyAndLifetime) {
  const Battery b{5000.0, 3.7};
  EXPECT_DOUBLE_EQ(b.energy_mwh(), 18500.0);
  // At 18.5 mW the battery lasts 1000 h = 41.67 days.
  EXPECT_NEAR(lifetime_days(b, 18.5), 1000.0 / 24.0, 1e-9);
  EXPECT_THROW(lifetime_days(b, 0.0), std::invalid_argument);
}

TEST(Battery, RemainingFraction) {
  const Battery b{5000.0, 3.7};
  EXPECT_DOUBLE_EQ(remaining_fraction(b, 18.5, 0.0), 1.0);
  EXPECT_NEAR(remaining_fraction(b, 18.5, 1000.0 / 24.0 / 2.0), 0.5, 1e-9);
  EXPECT_DOUBLE_EQ(remaining_fraction(b, 18.5, 1e6), 0.0);  // clamped
  EXPECT_THROW(remaining_fraction(b, -1.0, 1.0), std::invalid_argument);
}

TEST(Battery, SelfDischargeShortensLifetime) {
  const Battery b{5000.0, 3.7};
  const double plain = lifetime_days(b, 2.0);  // ~385 days at 2 mW
  const double with_sd = lifetime_days_with_self_discharge(b, 2.0, 0.02);
  EXPECT_LT(with_sd, plain);
  // Zero self-discharge reduces to the plain model.
  EXPECT_DOUBLE_EQ(lifetime_days_with_self_discharge(b, 2.0, 0.0), plain);
  // Self-discharge matters more for low-power (long-lived) loads.
  const double heavy_plain = lifetime_days(b, 400.0);
  const double heavy_sd =
      lifetime_days_with_self_discharge(b, 400.0, 0.02);
  EXPECT_GT(with_sd / plain, 0.5);
  EXPECT_GT(heavy_sd / heavy_plain, with_sd / plain);
}

TEST(Battery, SelfDischargeValidation) {
  const Battery b;
  EXPECT_THROW(lifetime_days_with_self_discharge(b, 0.0, 0.01),
               std::invalid_argument);
  EXPECT_THROW(lifetime_days_with_self_discharge(b, 1.0, -0.1),
               std::invalid_argument);
  EXPECT_THROW(lifetime_days_with_self_discharge(b, 1.0, 1.0),
               std::invalid_argument);
}

TEST(DutyCycle, TerrestrialSpendsMostTimeAsleep) {
  const ResidencyTracker t = terrestrial_daily_duty();
  EXPECT_NEAR(t.total_seconds(), 86400.0, 1e-6);
  // Paper Fig 11: ~95% of time in sleep+standby.
  const double low_power =
      t.time_fraction(Mode::kSleep) + t.time_fraction(Mode::kStandby);
  EXPECT_GT(low_power, 0.95);
}

TEST(DutyCycle, WorkloadDerivedTerrestrialIsSleepDominated) {
  // With the actual 48-reports/day workload, sleep energy dominates —
  // the honest model (see paper_fig11_terrestrial_duty for the figure).
  const ResidencyTracker t = terrestrial_daily_duty();
  const PowerProfile p = terrestrial_node_profile();
  const double radio = t.energy_fraction(Mode::kTx, p) +
                       t.energy_fraction(Mode::kRx, p);
  EXPECT_LT(radio, 0.2);
  EXPECT_GT(t.energy_fraction(Mode::kSleep, p), 0.5);
}

TEST(DutyCycle, PaperFig11ProfileReproducesBreakdown) {
  const ResidencyTracker t = paper_fig11_terrestrial_duty();
  const PowerProfile p = terrestrial_node_profile();
  // Fig 11: ~95% of time in sleep+standby, >70% of energy in Tx+Rx.
  const double low_power_time =
      t.time_fraction(Mode::kSleep) + t.time_fraction(Mode::kStandby);
  EXPECT_GT(low_power_time, 0.93);
  const double radio_energy = t.energy_fraction(Mode::kTx, p) +
                              t.energy_fraction(Mode::kRx, p);
  EXPECT_GT(radio_energy, 0.68);
}

TEST(DutyCycle, SatelliteRxDominatesTime) {
  const ResidencyTracker t = satellite_daily_duty();
  EXPECT_NEAR(t.total_seconds(), 86400.0, 1e-6);
  // Paper: the Rx radio idles through the constellation's theoretical
  // presence (~18.5 h / day for Tianqi).
  EXPECT_GT(t.time_fraction(Mode::kRx), 0.5);
  EXPECT_DOUBLE_EQ(t.seconds_in(Mode::kStandby), 0.0);
}

TEST(DutyCycle, LifetimeRatioIsPaperScale) {
  // Fig 6d: terrestrial ~15x the satellite node's lifetime.
  const Battery b;
  const double terr_power =
      terrestrial_daily_duty().average_power_mw(terrestrial_node_profile());
  const double sat_power =
      satellite_daily_duty().average_power_mw(satellite_node_profile());
  const double ratio =
      lifetime_days(b, terr_power) / lifetime_days(b, sat_power);
  EXPECT_GT(ratio, 8.0);
  EXPECT_LT(ratio, 25.0);
}

TEST(DutyCycle, InvalidParamsThrow) {
  TerrestrialDutyParams tp;
  tp.report_interval_s = 0.0;
  EXPECT_THROW(terrestrial_daily_duty(tp), std::invalid_argument);
  SatelliteDutyParams sp;
  sp.rx_listen_fraction = 1.5;
  EXPECT_THROW(satellite_daily_duty(sp), std::invalid_argument);
  SatelliteDutyParams sp2;
  sp2.rx_listen_fraction = 1.0;
  sp2.mean_tx_attempts = 10.0;  // tx + rx exceeds the day
  EXPECT_THROW(satellite_daily_duty(sp2), std::invalid_argument);
}

TEST(ModeNames, Distinct) {
  EXPECT_EQ(to_string(Mode::kSleep), "sleep");
  EXPECT_EQ(to_string(Mode::kStandby), "standby");
  EXPECT_EQ(to_string(Mode::kRx), "rx");
  EXPECT_EQ(to_string(Mode::kTx), "tx");
}

}  // namespace
