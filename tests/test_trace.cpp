// Trace records and CSV serialization.
#include <gtest/gtest.h>

#include <sstream>

#include "trace/csv.h"
#include "trace/packet_trace.h"

namespace {

using namespace sinet::trace;

BeaconRecord make_beacon(const std::string& station,
                         const std::string& constellation, double t) {
  BeaconRecord r;
  r.time_unix_s = t;
  r.station = station;
  r.constellation = constellation;
  r.satellite = constellation + "-01";
  r.rssi_dbm = -120.0;
  r.snr_db = -5.0;
  return r;
}

TEST(BeaconTraceSet, AddAndFilter) {
  BeaconTraceSet set;
  set.add(make_beacon("HK-1", "Tianqi", 1.0));
  set.add(make_beacon("HK-2", "FOSSA", 2.0));
  set.add(make_beacon("SYD-1", "Tianqi", 3.0));
  EXPECT_EQ(set.size(), 3u);
  EXPECT_EQ(set.filter("HK-1", "").size(), 1u);
  EXPECT_EQ(set.filter("", "Tianqi").size(), 2u);
  EXPECT_EQ(set.filter("HK-2", "FOSSA").size(), 1u);
  EXPECT_EQ(set.filter("HK-2", "Tianqi").size(), 0u);
  EXPECT_EQ(set.filter("", "").size(), 3u);
  set.clear();
  EXPECT_TRUE(set.empty());
}

TEST(UplinkRecord, TimingDecomposition) {
  UplinkRecord r;
  r.generated_unix_s = 100.0;
  r.first_tx_unix_s = 160.0;
  r.satellite_rx_unix_s = 170.0;
  r.server_rx_unix_s = 400.0;
  r.delivered = true;
  EXPECT_DOUBLE_EQ(r.wait_for_pass_s(), 60.0);
  EXPECT_DOUBLE_EQ(r.dts_transfer_s(), 10.0);
  EXPECT_DOUBLE_EQ(r.delivery_s(), 230.0);
  EXPECT_DOUBLE_EQ(r.end_to_end_s(), 300.0);
  // Decomposition sums to end-to-end.
  EXPECT_DOUBLE_EQ(
      r.wait_for_pass_s() + r.dts_transfer_s() + r.delivery_s(),
      r.end_to_end_s());
}

TEST(UplinkRecord, MissingStagesReportNegative) {
  UplinkRecord r;
  r.generated_unix_s = 100.0;
  EXPECT_LT(r.wait_for_pass_s(), 0.0);
  EXPECT_LT(r.dts_transfer_s(), 0.0);
  EXPECT_LT(r.delivery_s(), 0.0);
  EXPECT_LT(r.end_to_end_s(), 0.0);
}

TEST(CsvEscape, QuotesOnlyWhenNeeded) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("with,comma"), "\"with,comma\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
  EXPECT_EQ(csv_escape(""), "");
}

TEST(CsvWriter, BeaconHeaderAndRows) {
  std::ostringstream os;
  write_beacon_csv(os, {make_beacon("HK-1", "Tianqi", 1.5)});
  const std::string out = os.str();
  EXPECT_NE(out.find("time_unix_s,station,constellation"),
            std::string::npos);
  EXPECT_NE(out.find("HK-1,Tianqi,Tianqi-01"), std::string::npos);
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 2);
}

TEST(CsvWriter, UplinkRowContents) {
  UplinkRecord r;
  r.sequence = 7;
  r.node = "TQ-node-1";
  r.payload_bytes = 20;
  r.generated_unix_s = 1.0;
  r.dts_attempts = 3;
  r.delivered = true;
  r.via_satellite = "Tianqi-05";
  std::ostringstream os;
  write_uplink_csv(os, {r});
  const std::string out = os.str();
  EXPECT_NE(out.find("7,TQ-node-1,20,"), std::string::npos);
  EXPECT_NE(out.find("Tianqi-05"), std::string::npos);
  EXPECT_NE(out.find(",1,"), std::string::npos);  // delivered flag
}

TEST(CsvSplit, HandlesQuotedFields) {
  const auto f = csv_split("a,\"b,c\",\"say \"\"hi\"\"\",d");
  ASSERT_EQ(f.size(), 4u);
  EXPECT_EQ(f[0], "a");
  EXPECT_EQ(f[1], "b,c");
  EXPECT_EQ(f[2], "say \"hi\"");
  EXPECT_EQ(f[3], "d");
  EXPECT_EQ(csv_split("").size(), 1u);
  EXPECT_EQ(csv_split(",").size(), 2u);
}

TEST(CsvReader, BeaconRoundTrip) {
  std::vector<BeaconRecord> in;
  in.push_back(make_beacon("HK-1", "Tianqi", 1.5));
  in.push_back(make_beacon("YC, rural-2", "FOSSA", 99.25));  // comma field
  std::ostringstream os;
  write_beacon_csv(os, in);
  std::istringstream is(os.str());
  const auto out = read_beacon_csv(is);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].station, "HK-1");
  EXPECT_EQ(out[1].station, "YC, rural-2");
  EXPECT_NEAR(out[1].time_unix_s, 99.25, 1e-3);
  EXPECT_NEAR(out[0].rssi_dbm, -120.0, 0.1);
  EXPECT_EQ(out[0].satellite, "Tianqi-01");
}

TEST(CsvReader, UplinkRoundTrip) {
  UplinkRecord r;
  r.sequence = 42;
  r.node = "TQ-node-2";
  r.payload_bytes = 60;
  r.generated_unix_s = 1000.0;
  r.first_tx_unix_s = 1100.0;
  r.satellite_rx_unix_s = 1101.0;
  r.server_rx_unix_s = 4000.5;
  r.dts_attempts = 3;
  r.delivered = true;
  r.via_satellite = "Tianqi-09";
  std::ostringstream os;
  write_uplink_csv(os, {r});
  std::istringstream is(os.str());
  const auto out = read_uplink_csv(is);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].sequence, 42u);
  EXPECT_EQ(out[0].payload_bytes, 60);
  EXPECT_TRUE(out[0].delivered);
  EXPECT_NEAR(out[0].end_to_end_s(), r.end_to_end_s(), 1e-2);
  EXPECT_EQ(out[0].via_satellite, "Tianqi-09");
}

TEST(CsvReader, RejectsMalformedInput) {
  std::istringstream empty("");
  EXPECT_THROW(read_beacon_csv(empty), std::invalid_argument);
  std::istringstream wrong_header("not,a,beacon,header\n");
  EXPECT_THROW(read_beacon_csv(wrong_header), std::invalid_argument);
  std::istringstream short_row(
      "time_unix_s,station,constellation,satellite,rssi_dbm,snr_db,"
      "elevation_deg,azimuth_deg,range_km,doppler_hz,sat_altitude_km,"
      "weather\n1.0,HK-1,Tianqi\n");
  EXPECT_THROW(read_beacon_csv(short_row), std::invalid_argument);
  std::istringstream bad_number(
      "sequence,node,payload_bytes,generated_unix_s,first_tx_unix_s,"
      "satellite_rx_unix_s,server_rx_unix_s,dts_attempts,delivered,"
      "via_satellite\nabc,n,20,1,1,1,1,1,1,sat\n");
  EXPECT_THROW(read_uplink_csv(bad_number), std::invalid_argument);
}

// Regression: the writers used to snprintf whole rows into char[256], so
// long station/satellite names silently truncated the row (the reader then
// failed or, worse, parsed shifted columns). Rows of any length must
// round-trip exactly, including quoted fields inside the long names.
TEST(CsvWriter, RowsLongerThan256BytesRoundTrip) {
  const std::string long_station =
      "station-\"east,ridge\"-" + std::string(300, 'S');
  const std::string long_sat = "sat," + std::string(280, 'Z') + ",tail";

  BeaconRecord b;
  b.time_unix_s = 1234.5;
  b.station = long_station;
  b.constellation = "Tianqi";
  b.satellite = long_sat;
  b.rssi_dbm = -121.5;
  b.snr_db = -7.25;
  b.elevation_deg = 42.5;
  b.azimuth_deg = 181.25;
  b.range_km = 950.5;
  b.doppler_hz = -18000.5;
  b.sat_altitude_km = 870.5;
  b.weather = "light rain, gusty";
  std::ostringstream bos;
  write_beacon_csv(bos, {b});
  std::istringstream bis(bos.str());
  const auto beacons = read_beacon_csv(bis);
  ASSERT_EQ(beacons.size(), 1u);
  EXPECT_EQ(beacons[0].station, long_station);
  EXPECT_EQ(beacons[0].satellite, long_sat);
  EXPECT_EQ(beacons[0].weather, "light rain, gusty");
  EXPECT_NEAR(beacons[0].time_unix_s, 1234.5, 1e-3);
  EXPECT_NEAR(beacons[0].doppler_hz, -18000.5, 0.1);

  UplinkRecord u;
  u.sequence = 900719925474099;
  u.node = "node-" + std::string(400, 'N') + ",with,commas";
  u.payload_bytes = 50;
  u.generated_unix_s = 1700000000.125;
  u.first_tx_unix_s = 1700000060.25;
  u.satellite_rx_unix_s = 1700000061.5;
  u.server_rx_unix_s = 1700000500.75;
  u.dts_attempts = 2;
  u.delivered = true;
  u.via_satellite = "Tianqi-\"05\"";
  std::ostringstream uos;
  write_uplink_csv(uos, {u});
  std::istringstream uis(uos.str());
  const auto uplinks = read_uplink_csv(uis);
  ASSERT_EQ(uplinks.size(), 1u);
  EXPECT_EQ(uplinks[0].node, u.node);
  EXPECT_EQ(uplinks[0].via_satellite, "Tianqi-\"05\"");
  EXPECT_EQ(uplinks[0].sequence, u.sequence);
  EXPECT_NEAR(uplinks[0].server_rx_unix_s, 1700000500.75, 1e-2);
  EXPECT_TRUE(uplinks[0].delivered);
}

TEST(CsvWriter, EmptyVectorsProduceHeaderOnly) {
  std::ostringstream os1, os2;
  write_beacon_csv(os1, {});
  write_uplink_csv(os2, {});
  const std::string s1 = os1.str();
  const std::string s2 = os2.str();
  EXPECT_EQ(std::count(s1.begin(), s1.end(), '\n'), 1);
  EXPECT_EQ(std::count(s2.begin(), s2.end(), '\n'), 1);
}

}  // namespace
