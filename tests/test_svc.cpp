// Robustness and behavior tests for the resident pass-prediction
// service (src/svc): wire-protocol parsing, PassService query handling
// on a warm rolling horizon, and the TCP server's framing, admission
// control and graceful drain. The protocol contract under test: every
// malformed, hostile or oversized input produces a TYPED error response
// — never a crash, never a hang, never a silently dropped request on a
// live connection. This suite runs under the same sanitizer config as
// the rest of tier-1, so the concurrency paths are exercised checked.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cmath>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/scenario.h"
#include "obs/metrics.h"
#include "orbit/time.h"
#include "svc/loadgen.h"
#include "svc/protocol.h"
#include "svc/server.h"
#include "svc/service.h"

namespace sinet {
namespace {

using svc::ErrorCode;
using svc::PassService;
using svc::ProtocolError;
using svc::Request;
using svc::RequestType;
using svc::ServerOptions;
using svc::ServiceOptions;

double test_epoch_unix_s() {
  return orbit::julian_to_unix(core::campaign_epoch_jd());
}

/// Small deterministic service: 3 FOSSA satellites, fixed virtual epoch.
ServiceOptions small_service_options() {
  ServiceOptions o;
  o.constellation = "FOSSA";
  o.horizon_hours = 6.0;
  o.retention_hours = 0.1;
  o.chunk_samples = 256;
  o.epoch_unix_s = test_epoch_unix_s();
  return o;
}

void expect_error(const std::string& response, const char* code,
                  const std::string& label) {
  EXPECT_NE(response.find("\"ok\":false"), std::string::npos) << label;
  EXPECT_NE(response.find(std::string("\"error\":\"") + code + "\""),
            std::string::npos)
      << label << ": " << response;
}

// ---- raw-socket helpers (deliberately independent of svc/loadgen) ----

int connect_to_port(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  timeval tv{};
  tv.tv_sec = 30;  // a hang is a bug; fail the recv instead
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  return fd;
}

bool send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n <= 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// Read one newline-terminated line; empty string on timeout / EOF.
std::string recv_line(int fd, std::string& buffer) {
  for (;;) {
    const std::size_t nl = buffer.find('\n');
    if (nl != std::string::npos) {
      const std::string line = buffer.substr(0, nl);
      buffer.erase(0, nl + 1);
      return line;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return std::string();
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
}

// ------------------------- protocol parsing --------------------------

TEST(SvcProtocol, ParsesFullRequestAndSkipsUnknownKeys) {
  const Request r = svc::parse_request(
      "{\"type\":\"next_pass\",\"id\":7,\"lat_deg\":22.3,"
      "\"lon_deg\":114.2,\"alt_km\":0.05,\"min_elevation_deg\":15,"
      "\"after_unix_s\":123.5,"
      "\"future_key\":{\"nested\":[1,\"two\",{\"deep\":true}]}}");
  EXPECT_EQ(r.type, RequestType::kNextPass);
  ASSERT_TRUE(r.has_id);
  EXPECT_EQ(r.id, 7u);
  EXPECT_DOUBLE_EQ(r.observer.latitude_deg, 22.3);
  EXPECT_DOUBLE_EQ(r.observer.longitude_deg, 114.2);
  EXPECT_DOUBLE_EQ(r.observer.altitude_km, 0.05);
  EXPECT_DOUBLE_EQ(r.min_elevation_deg, 15.0);
  EXPECT_DOUBLE_EQ(r.after_unix_s, 123.5);

  // Optional fields parse to NaN = "use the server default".
  const Request d = svc::parse_request(
      "{\"type\":\"visibility_now\",\"lat_deg\":0,\"lon_deg\":0}");
  EXPECT_TRUE(std::isnan(d.min_elevation_deg));
  EXPECT_FALSE(d.has_id);

  const Request s = svc::parse_request("{\"type\":\"stats\"}");
  EXPECT_EQ(s.type, RequestType::kStats);
}

void expect_protocol_error(const std::string& line, ErrorCode code,
                           const std::string& label) {
  try {
    (void)svc::parse_request(line);
    FAIL() << label << ": no exception";
  } catch (const ProtocolError& e) {
    EXPECT_EQ(e.code(), code) << label << ": " << e.what();
  }
}

TEST(SvcProtocol, EveryFailureIsTyped) {
  using EC = ErrorCode;
  expect_protocol_error("not json at all", EC::kParse, "garbage");
  expect_protocol_error("", EC::kParse, "empty");
  expect_protocol_error("{\"type\":\"next_pass\",\"lat_deg\":\"north\","
                        "\"lon_deg\":0}",
                        EC::kParse, "wrong value type");
  expect_protocol_error("{\"type\":\"next_pass\",\"lat_deg\":1",
                        EC::kParse, "truncated object");
  expect_protocol_error("{\"type\":\"hyperdrive\"}", EC::kUnknownType,
                        "unknown type");
  expect_protocol_error("{\"lat_deg\":1,\"lon_deg\":2}", EC::kBadRequest,
                        "missing type");
  expect_protocol_error("{\"type\":\"next_pass\",\"lon_deg\":2}",
                        EC::kBadRequest, "missing lat");
  expect_protocol_error(
      "{\"type\":\"next_pass\",\"lat_deg\":91,\"lon_deg\":0}",
      EC::kBadRequest, "lat out of range");
  expect_protocol_error(
      "{\"type\":\"next_pass\",\"lat_deg\":0,\"lon_deg\":0,"
      "\"min_elevation_deg\":120}",
      EC::kBadRequest, "mask out of range");
  expect_protocol_error(
      "{\"type\":\"passes_in_range\",\"lat_deg\":0,\"lon_deg\":0}",
      EC::kBadRequest, "missing range");
  expect_protocol_error(
      "{\"type\":\"passes_in_range\",\"lat_deg\":0,\"lon_deg\":0,"
      "\"start_unix_s\":100,\"end_unix_s\":50}",
      EC::kBadRequest, "inverted range");
}

TEST(SvcProtocol, ErrorResponsesCarryCodeRetryAndId) {
  Request req;
  req.has_id = true;
  req.id = 42;
  const std::string shed = svc::error_response(
      ErrorCode::kOverloaded, "queue full", &req, /*retry_after_ms=*/75);
  expect_error(shed, "overloaded", "shed");
  EXPECT_NE(shed.find("\"retry_after_ms\":75"), std::string::npos);
  EXPECT_NE(shed.find("\"id\":42"), std::string::npos);

  // retry_after_ms is overload-specific; other codes never carry it.
  const std::string parse =
      svc::error_response(ErrorCode::kParse, "bad", nullptr, 75);
  expect_error(parse, "parse", "parse");
  EXPECT_EQ(parse.find("retry_after_ms"), std::string::npos);
}

// ------------------------ PassService queries ------------------------

TEST(SvcService, AnswersQueriesOnWarmHorizonAndEchoesIds) {
  obs::MetricsRegistry metrics;
  PassService service(small_service_options(), &metrics);
  EXPECT_EQ(service.satellite_count(), 3u);

  // FOSSA flies polar sun-synchronous orbits: a high-latitude site is
  // guaranteed several passes inside a 6 h horizon.
  const std::string next = service.handle_line(
      "{\"type\":\"next_pass\",\"id\":9,\"lat_deg\":60.17,"
      "\"lon_deg\":24.94}");
  EXPECT_NE(next.find("\"ok\":true"), std::string::npos) << next;
  EXPECT_NE(next.find("\"found\":true"), std::string::npos) << next;
  EXPECT_NE(next.find("\"id\":9"), std::string::npos) << next;
  EXPECT_NE(next.find("\"horizon_end_unix_s\""), std::string::npos);

  // The whole-horizon range query sees at least that same pass, sorted.
  const std::string range = service.handle_line(
      "{\"type\":\"passes_in_range\",\"lat_deg\":60.17,\"lon_deg\":24.94,"
      "\"start_unix_s\":0,\"end_unix_s\":253402300800}");
  EXPECT_NE(range.find("\"ok\":true"), std::string::npos) << range;
  EXPECT_EQ(range.find("\"count\":0,"), std::string::npos) << range;

  const std::string vis = service.handle_line(
      "{\"type\":\"visibility_now\",\"lat_deg\":60.17,\"lon_deg\":24.94,"
      "\"min_elevation_deg\":-90}");
  EXPECT_NE(vis.find("\"ok\":true"), std::string::npos) << vis;
  EXPECT_NE(vis.find("\"visible\":["), std::string::npos) << vis;

  const std::string stats = service.handle_line("{\"type\":\"stats\"}");
  EXPECT_NE(stats.find("\"ok\":true"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"satellites\":3"), std::string::npos) << stats;

  // A repeated query must be served from the ContactWindowCache.
  (void)service.handle_line(
      "{\"type\":\"next_pass\",\"lat_deg\":60.17,\"lon_deg\":24.94}");
  const auto payload = service.stats_payload();
  EXPECT_GT(payload.cache_hits, 0u);
  EXPECT_GT(payload.cache_misses, 0u);
  EXPECT_GT(payload.cache_bytes, 0u);
  EXPECT_EQ(payload.requests, 5u);

  // svc.* metrics recorded per request, with a usable latency histogram.
  const auto snap = metrics.snapshot();
  EXPECT_EQ(snap.counters.at("svc.requests"), 5u);
  EXPECT_EQ(snap.counters.at("svc.requests.next_pass"), 2u);
  const auto& hist = snap.histograms.at("svc.request_latency_ms");
  EXPECT_EQ(hist.total, 5u);
  EXPECT_FALSE(std::isnan(obs::snapshot_quantile(hist, 0.99)));
}

TEST(SvcService, HandleLineNeverThrowsAndCountsErrors) {
  obs::MetricsRegistry metrics;
  PassService service(small_service_options(), &metrics);
  expect_error(service.handle_line("][;'#"), "parse", "garbage");
  expect_error(service.handle_line("{\"type\":\"warp\"}"), "unknown_type",
               "unknown");
  expect_error(service.handle_line("{\"type\":\"next_pass\"}"),
               "bad_request", "missing observer");
  // Errors echo the id too, when it parsed before the failure.
  const std::string bad = service.handle_line(
      "{\"id\":3,\"type\":\"next_pass\",\"lat_deg\":99,\"lon_deg\":0}");
  expect_error(bad, "bad_request", "bad lat");
  EXPECT_NE(bad.find("\"id\":3"), std::string::npos) << bad;

  EXPECT_EQ(service.stats_payload().errors, 4u);
  const auto snap = metrics.snapshot();
  EXPECT_EQ(snap.counters.at("svc.errors.parse"), 1u);
  EXPECT_EQ(snap.counters.at("svc.errors.unknown_type"), 1u);
  EXPECT_EQ(snap.counters.at("svc.errors.bad_request"), 2u);
}

TEST(SvcService, VirtualClockAdvancesAndRetiresHorizon) {
  ServiceOptions opts = small_service_options();
  opts.horizon_hours = 2.0;
  opts.retention_hours = 0.25;
  opts.time_scale = 1e5;  // 1 real second = ~28 virtual hours
  PassService service(opts);

  const auto before = service.stats_payload();
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  (void)service.advance_horizon();
  const auto after = service.stats_payload();
  EXPECT_GT(after.now_unix_s, before.now_unix_s + 1000.0);
  EXPECT_GT(after.horizon_advances, before.horizon_advances);
  // The leading edge extended and the trailing edge retired.
  EXPECT_GT(after.horizon_end_unix_s, before.horizon_end_unix_s);
  EXPECT_GT(after.horizon_start_unix_s, before.horizon_start_unix_s);
  // Queries still answer on the advanced horizon.
  EXPECT_NE(service
                .handle_line("{\"type\":\"next_pass\",\"lat_deg\":60.17,"
                             "\"lon_deg\":24.94}")
                .find("\"ok\":true"),
            std::string::npos);
}

// --------------------------- TCP server ------------------------------

TEST(SvcServer, HostileFramesGetTypedErrorsOnALiveConnection) {
  PassService service(small_service_options());
  ServerOptions sopts;
  sopts.workers = 1;
  sopts.max_request_bytes = 256;
  svc::Server server(service, sopts);

  const int fd = connect_to_port(server.port());
  ASSERT_GE(fd, 0);
  std::string buffer;

  ASSERT_TRUE(send_all(fd, "this is not json\n"));
  expect_error(recv_line(fd, buffer), "parse", "garbage line");

  ASSERT_TRUE(send_all(fd, "{\"type\":\"hyperdrive\"}\n"));
  expect_error(recv_line(fd, buffer), "unknown_type", "unknown type");

  // A terminated oversized frame is answered and the connection lives.
  const std::string big(300, 'x');
  ASSERT_TRUE(send_all(fd, big + "\n"));
  expect_error(recv_line(fd, buffer), "oversized", "oversized frame");

  // Blank lines are keepalive no-ops; the real request still answers.
  ASSERT_TRUE(send_all(fd, "\r\n\n{\"type\":\"stats\"}\n"));
  const std::string stats = recv_line(fd, buffer);
  EXPECT_NE(stats.find("\"ok\":true"), std::string::npos) << stats;
  ::close(fd);

  // An UNTERMINATED flood past the frame limit is answered once and the
  // connection is closed (the peer is not speaking the protocol).
  const int flood = connect_to_port(server.port());
  ASSERT_GE(flood, 0);
  std::string flood_buffer;
  ASSERT_TRUE(send_all(flood, std::string(1000, 'y')));
  expect_error(recv_line(flood, flood_buffer), "oversized", "flood");
  EXPECT_EQ(recv_line(flood, flood_buffer), "");  // EOF follows
  ::close(flood);

  // A truncated frame abandoned by a dying client must not wedge the
  // server: the next connection is served normally.
  const int dead = connect_to_port(server.port());
  ASSERT_GE(dead, 0);
  ASSERT_TRUE(send_all(dead, "{\"type\":\"sta"));  // no newline, then gone
  ::close(dead);
  const int alive = connect_to_port(server.port());
  ASSERT_GE(alive, 0);
  std::string alive_buffer;
  ASSERT_TRUE(send_all(alive, "{\"type\":\"stats\"}\n"));
  EXPECT_NE(recv_line(alive, alive_buffer).find("\"ok\":true"),
            std::string::npos);
  ::close(alive);
}

TEST(SvcServer, ConcurrentClientsAllGetAnswers) {
  obs::MetricsRegistry metrics;
  PassService service(small_service_options(), &metrics);
  ServerOptions sopts;
  sopts.workers = 2;
  svc::Server server(service, sopts, &metrics);

  svc::LoadgenOptions lopts;
  lopts.port = server.port();
  lopts.connections = 4;
  lopts.requests = 200;
  lopts.observers = 100;
  const svc::LoadgenResult res = svc::run_loadgen(lopts, &metrics);
  EXPECT_EQ(res.sent, 200u);
  EXPECT_EQ(res.ok + res.shed, res.sent);
  EXPECT_EQ(res.errors, 0u);
  EXPECT_GT(res.p99_ms, 0.0);
  EXPECT_GE(res.p99_ms, res.p50_ms);

  const auto snap = metrics.snapshot();
  EXPECT_GE(snap.counters.at("svc.requests"), res.ok);
  EXPECT_GE(snap.counters.at("svc.connections_accepted"), 4u);
}

TEST(SvcServer, AdmissionControlShedsWithRetryHint) {
  obs::MetricsRegistry metrics;
  PassService service(small_service_options(), &metrics);
  ServerOptions sopts;
  sopts.workers = 1;
  sopts.queue_capacity = 2;
  sopts.retry_after_ms = 75;
  sopts.debug_handler_delay_ms = 50;  // hold the worker so the queue fills
  svc::Server server(service, sopts, &metrics);

  const int fd = connect_to_port(server.port());
  ASSERT_GE(fd, 0);
  constexpr int kBurst = 20;
  std::string burst;
  for (int i = 0; i < kBurst; ++i) burst += "{\"type\":\"stats\"}\n";
  ASSERT_TRUE(send_all(fd, burst));  // pipelined: no reads in between

  std::string buffer;
  int ok = 0, shed = 0;
  for (int i = 0; i < kBurst; ++i) {
    const std::string line = recv_line(fd, buffer);
    ASSERT_FALSE(line.empty()) << "response " << i << " missing";
    if (line.find("\"ok\":true") != std::string::npos) {
      ++ok;
    } else {
      expect_error(line, "overloaded", "burst");
      EXPECT_NE(line.find("\"retry_after_ms\":75"), std::string::npos);
      ++shed;
    }
  }
  ::close(fd);
  EXPECT_EQ(ok + shed, kBurst);  // every request answered, none dropped
  EXPECT_GT(ok, 0);
  EXPECT_GT(shed, 0);  // capacity 2 + slow worker cannot absorb 20
  EXPECT_EQ(service.stats_payload().shed, static_cast<std::uint64_t>(shed));
  EXPECT_EQ(metrics.snapshot().counters.at("svc.shed"),
            static_cast<std::uint64_t>(shed));
}

TEST(SvcServer, GracefulDrainAnswersInFlightThenExits) {
  PassService service(small_service_options());
  ServerOptions sopts;
  sopts.workers = 1;
  sopts.debug_handler_delay_ms = 100;
  svc::Server server(service, sopts);

  const int fd = connect_to_port(server.port());
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(send_all(fd, "{\"type\":\"stats\",\"id\":1}\n"));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  server.request_stop();  // drain begins while the request is in flight
  std::string buffer;
  const std::string line = recv_line(fd, buffer);
  EXPECT_NE(line.find("\"ok\":true"), std::string::npos) << line;
  EXPECT_NE(line.find("\"id\":1"), std::string::npos) << line;
  EXPECT_EQ(recv_line(fd, buffer), "");  // then the server closes
  ::close(fd);
  server.wait();  // joins without hanging — the test's real assertion
}

}  // namespace
}  // namespace sinet
