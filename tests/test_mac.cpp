// MAC collision / capture model tests (paper Fig 12b substrate).
#include <gtest/gtest.h>

#include <stdexcept>

#include "net/mac.h"

namespace {

using namespace sinet::net;

Transmission tx(std::uint64_t id, double start, double end, double rssi) {
  return Transmission{id, start, end, rssi};
}

TEST(Overlap, BoundaryCases) {
  const Transmission a = tx(1, 0.0, 1.0, -100.0);
  EXPECT_TRUE(a.overlaps(tx(2, 0.5, 1.5, -100.0)));
  EXPECT_TRUE(a.overlaps(tx(2, -0.5, 0.1, -100.0)));
  EXPECT_TRUE(a.overlaps(tx(2, 0.2, 0.8, -100.0)));  // contained
  // Touching endpoints do not overlap (half-open semantics).
  EXPECT_FALSE(a.overlaps(tx(2, 1.0, 2.0, -100.0)));
  EXPECT_FALSE(a.overlaps(tx(2, -1.0, 0.0, -100.0)));
}

TEST(Collisions, NonOverlappingAllSurvive) {
  const std::vector<Transmission> txs = {
      tx(1, 0.0, 1.0, -120.0), tx(2, 1.5, 2.5, -120.0),
      tx(3, 3.0, 4.0, -120.0)};
  EXPECT_EQ(resolve_collisions(txs).size(), 3u);
}

TEST(Collisions, EqualPowerOverlapKillsBoth) {
  const std::vector<Transmission> txs = {tx(1, 0.0, 1.0, -120.0),
                                         tx(2, 0.5, 1.5, -120.0)};
  EXPECT_TRUE(resolve_collisions(txs).empty());
}

TEST(Collisions, CaptureStrongerSurvives) {
  const std::vector<Transmission> txs = {tx(1, 0.0, 1.0, -110.0),
                                         tx(2, 0.5, 1.5, -120.0)};
  const auto winners = resolve_collisions(txs);
  ASSERT_EQ(winners.size(), 1u);
  EXPECT_EQ(winners[0], 1u);
}

TEST(Collisions, CaptureThresholdIsStrict) {
  MacConfig cfg;
  cfg.capture_threshold_db = 6.0;
  // 5.9 dB gap: below threshold, both lost.
  const std::vector<Transmission> close = {tx(1, 0.0, 1.0, -110.0),
                                           tx(2, 0.5, 1.5, -115.9)};
  EXPECT_TRUE(resolve_collisions(close, cfg).empty());
  // 6.1 dB gap: stronger captures.
  const std::vector<Transmission> apart = {tx(1, 0.0, 1.0, -110.0),
                                           tx(2, 0.5, 1.5, -116.1)};
  EXPECT_EQ(resolve_collisions(apart, cfg).size(), 1u);
}

TEST(Collisions, ThreeWayPileUp) {
  // Strongest is 6+ dB above both others: only it survives.
  const std::vector<Transmission> txs = {tx(1, 0.0, 1.0, -105.0),
                                         tx(2, 0.2, 1.2, -112.0),
                                         tx(3, 0.4, 1.4, -113.0)};
  const auto winners = resolve_collisions(txs);
  ASSERT_EQ(winners.size(), 1u);
  EXPECT_EQ(winners[0], 1u);
}

TEST(Collisions, ChainOverlapIsPairwise) {
  // A overlaps B, B overlaps C, but A and C are disjoint; B is the
  // weakest. A and C must both survive if they clear B by the threshold.
  const std::vector<Transmission> txs = {tx(1, 0.0, 1.0, -105.0),
                                         tx(2, 0.9, 1.9, -120.0),
                                         tx(3, 1.8, 2.8, -105.0)};
  const auto winners = resolve_collisions(txs);
  ASSERT_EQ(winners.size(), 2u);
  EXPECT_EQ(winners[0], 1u);
  EXPECT_EQ(winners[1], 3u);
}

TEST(Collisions, SurvivesIgnoresSelf) {
  const Transmission me = tx(7, 0.0, 1.0, -120.0);
  EXPECT_TRUE(survives_collisions(me, {me}));
  EXPECT_TRUE(survives_collisions(me, {}));
}

TEST(Collisions, EmptyInput) {
  EXPECT_TRUE(resolve_collisions({}).empty());
}

TEST(Collisions, CustomThresholdZeroMeansTieGoesToStronger) {
  MacConfig cfg;
  cfg.capture_threshold_db = 0.0;
  const std::vector<Transmission> txs = {tx(1, 0.0, 1.0, -119.9),
                                         tx(2, 0.5, 1.5, -120.0)};
  const auto winners = resolve_collisions(txs, cfg);
  // tx1 is stronger by 0.1 dB >= 0 dB threshold: survives; tx2 does not.
  ASSERT_EQ(winners.size(), 1u);
  EXPECT_EQ(winners[0], 1u);
}

// Regression: the slot count used to be computed from
// max(period - lead_in - toa, pitch), which (a) silently accepted
// geometry where even one transmission cannot fit and (b) could emit a
// final slot whose transmission ends past the beacon period, colliding
// with the next beacon's lead-in.
TEST(Subslots, InfeasibleGeometryThrows) {
  // lead_in (0.3) + toa (2.0) > period (2.2): the old code returned
  // offset 0.3 with the transmission ending at 2.5 > 2.2.
  EXPECT_THROW(assign_subslots(1, 2.0, 2.2, 0.2, 0.3),
               std::invalid_argument);
  EXPECT_THROW(assign_subslots(4, 1.0, 0.9), std::invalid_argument);
}

TEST(Subslots, NoTransmissionOverrunsPeriod) {
  // Sweep feasible geometries: every assigned offset must respect
  // lead_in <= offset and offset + toa <= period.
  for (const double period : {1.0, 2.0, 7.5, 30.0}) {
    for (const double toa : {0.1, 0.37, 0.9}) {
      for (const double guard : {0.0, 0.2}) {
        for (const double lead_in : {0.0, 0.3}) {
          if (lead_in + toa > period) continue;
          const auto offsets =
              assign_subslots(25, toa, period, guard, lead_in);
          ASSERT_EQ(offsets.size(), 25u);
          for (const double o : offsets) {
            EXPECT_GE(o, lead_in);
            EXPECT_LE(o + toa, period + 1e-9)
                << "toa=" << toa << " period=" << period
                << " guard=" << guard << " lead_in=" << lead_in;
          }
        }
      }
    }
  }
}

TEST(Subslots, TightFitUsesTheWholePeriod) {
  // Exactly two slots fit: 0.5 + 0*1.2 + 1.0 = 1.5 and
  // 0.5 + 1*1.2 + 1.0 = 2.7 <= period 2.7; a third would end at 3.9.
  const auto offsets = assign_subslots(4, 1.0, 2.7, 0.2, 0.5);
  EXPECT_DOUBLE_EQ(offsets[0], 0.5);
  EXPECT_DOUBLE_EQ(offsets[1], 1.7);
  EXPECT_DOUBLE_EQ(offsets[2], 0.5);  // cycles with slots_per_period == 2
}

}  // namespace
