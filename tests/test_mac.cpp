// MAC collision / capture model tests (paper Fig 12b substrate).
#include <gtest/gtest.h>

#include "net/mac.h"

namespace {

using namespace sinet::net;

Transmission tx(std::uint64_t id, double start, double end, double rssi) {
  return Transmission{id, start, end, rssi};
}

TEST(Overlap, BoundaryCases) {
  const Transmission a = tx(1, 0.0, 1.0, -100.0);
  EXPECT_TRUE(a.overlaps(tx(2, 0.5, 1.5, -100.0)));
  EXPECT_TRUE(a.overlaps(tx(2, -0.5, 0.1, -100.0)));
  EXPECT_TRUE(a.overlaps(tx(2, 0.2, 0.8, -100.0)));  // contained
  // Touching endpoints do not overlap (half-open semantics).
  EXPECT_FALSE(a.overlaps(tx(2, 1.0, 2.0, -100.0)));
  EXPECT_FALSE(a.overlaps(tx(2, -1.0, 0.0, -100.0)));
}

TEST(Collisions, NonOverlappingAllSurvive) {
  const std::vector<Transmission> txs = {
      tx(1, 0.0, 1.0, -120.0), tx(2, 1.5, 2.5, -120.0),
      tx(3, 3.0, 4.0, -120.0)};
  EXPECT_EQ(resolve_collisions(txs).size(), 3u);
}

TEST(Collisions, EqualPowerOverlapKillsBoth) {
  const std::vector<Transmission> txs = {tx(1, 0.0, 1.0, -120.0),
                                         tx(2, 0.5, 1.5, -120.0)};
  EXPECT_TRUE(resolve_collisions(txs).empty());
}

TEST(Collisions, CaptureStrongerSurvives) {
  const std::vector<Transmission> txs = {tx(1, 0.0, 1.0, -110.0),
                                         tx(2, 0.5, 1.5, -120.0)};
  const auto winners = resolve_collisions(txs);
  ASSERT_EQ(winners.size(), 1u);
  EXPECT_EQ(winners[0], 1u);
}

TEST(Collisions, CaptureThresholdIsStrict) {
  MacConfig cfg;
  cfg.capture_threshold_db = 6.0;
  // 5.9 dB gap: below threshold, both lost.
  const std::vector<Transmission> close = {tx(1, 0.0, 1.0, -110.0),
                                           tx(2, 0.5, 1.5, -115.9)};
  EXPECT_TRUE(resolve_collisions(close, cfg).empty());
  // 6.1 dB gap: stronger captures.
  const std::vector<Transmission> apart = {tx(1, 0.0, 1.0, -110.0),
                                           tx(2, 0.5, 1.5, -116.1)};
  EXPECT_EQ(resolve_collisions(apart, cfg).size(), 1u);
}

TEST(Collisions, ThreeWayPileUp) {
  // Strongest is 6+ dB above both others: only it survives.
  const std::vector<Transmission> txs = {tx(1, 0.0, 1.0, -105.0),
                                         tx(2, 0.2, 1.2, -112.0),
                                         tx(3, 0.4, 1.4, -113.0)};
  const auto winners = resolve_collisions(txs);
  ASSERT_EQ(winners.size(), 1u);
  EXPECT_EQ(winners[0], 1u);
}

TEST(Collisions, ChainOverlapIsPairwise) {
  // A overlaps B, B overlaps C, but A and C are disjoint; B is the
  // weakest. A and C must both survive if they clear B by the threshold.
  const std::vector<Transmission> txs = {tx(1, 0.0, 1.0, -105.0),
                                         tx(2, 0.9, 1.9, -120.0),
                                         tx(3, 1.8, 2.8, -105.0)};
  const auto winners = resolve_collisions(txs);
  ASSERT_EQ(winners.size(), 2u);
  EXPECT_EQ(winners[0], 1u);
  EXPECT_EQ(winners[1], 3u);
}

TEST(Collisions, SurvivesIgnoresSelf) {
  const Transmission me = tx(7, 0.0, 1.0, -120.0);
  EXPECT_TRUE(survives_collisions(me, {me}));
  EXPECT_TRUE(survives_collisions(me, {}));
}

TEST(Collisions, EmptyInput) {
  EXPECT_TRUE(resolve_collisions({}).empty());
}

TEST(Collisions, CustomThresholdZeroMeansTieGoesToStronger) {
  MacConfig cfg;
  cfg.capture_threshold_db = 0.0;
  const std::vector<Transmission> txs = {tx(1, 0.0, 1.0, -119.9),
                                         tx(2, 0.5, 1.5, -120.0)};
  const auto winners = resolve_collisions(txs, cfg);
  // tx1 is stronger by 0.1 dB >= 0 dB threshold: survives; tx2 does not.
  ASSERT_EQ(winners.size(), 1u);
  EXPECT_EQ(winners[0], 1u);
}

}  // namespace
