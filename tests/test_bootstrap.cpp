// Bootstrap confidence-interval tests.
#include <gtest/gtest.h>

#include <vector>

#include "sim/rng.h"
#include "stats/bootstrap.h"

namespace {

using namespace sinet::stats;
using sinet::sim::Rng;

TEST(Bootstrap, MeanCiCoversTrueMean) {
  Rng data_rng(1);
  std::vector<double> samples;
  for (int i = 0; i < 400; ++i) samples.push_back(data_rng.normal(5.0, 2.0));
  Rng boot_rng(2);
  const ConfidenceInterval ci = bootstrap_mean_ci(samples, boot_rng, 2000);
  EXPECT_NEAR(ci.point, 5.0, 0.3);
  EXPECT_LT(ci.low, ci.point);
  EXPECT_GT(ci.high, ci.point);
  EXPECT_TRUE(ci.contains(5.0));
  // 95% CI of a N(5,2) mean with n=400: half width ~ 1.96*2/20 = 0.196.
  EXPECT_NEAR(ci.half_width(), 0.196, 0.06);
}

TEST(Bootstrap, WiderConfidenceWiderInterval) {
  Rng data_rng(3);
  std::vector<double> samples;
  for (int i = 0; i < 200; ++i) samples.push_back(data_rng.uniform());
  Rng r1(4), r2(4);
  const auto ci90 = bootstrap_mean_ci(samples, r1, 1500, 0.90);
  const auto ci99 = bootstrap_mean_ci(samples, r2, 1500, 0.99);
  EXPECT_LT(ci90.half_width(), ci99.half_width());
}

TEST(Bootstrap, QuantileCi) {
  Rng data_rng(5);
  std::vector<double> samples;
  for (int i = 0; i < 500; ++i) samples.push_back(data_rng.exponential(10.0));
  Rng boot_rng(6);
  const auto median_ci =
      bootstrap_quantile_ci(samples, 0.5, boot_rng, 1500);
  // Median of Exp(10) is 10*ln2 = 6.93.
  EXPECT_TRUE(median_ci.contains(6.93));
  EXPECT_THROW(bootstrap_quantile_ci(samples, 1.5, boot_rng),
               std::invalid_argument);
}

TEST(Bootstrap, DegenerateSample) {
  const std::vector<double> constant(50, 7.0);
  Rng rng(7);
  const auto ci = bootstrap_mean_ci(constant, rng, 500);
  EXPECT_DOUBLE_EQ(ci.point, 7.0);
  EXPECT_DOUBLE_EQ(ci.low, 7.0);
  EXPECT_DOUBLE_EQ(ci.high, 7.0);
}

TEST(Bootstrap, InvalidInputsThrow) {
  Rng rng(8);
  EXPECT_THROW(bootstrap_mean_ci({}, rng), std::invalid_argument);
  const std::vector<double> one{1.0};
  EXPECT_THROW(bootstrap_mean_ci(one, rng, 0), std::invalid_argument);
  EXPECT_THROW(bootstrap_mean_ci(one, rng, 100, 0.0),
               std::invalid_argument);
  EXPECT_THROW(bootstrap_mean_ci(one, rng, 100, 1.0),
               std::invalid_argument);
}

TEST(Bootstrap, DeterministicGivenRngState) {
  Rng data_rng(9);
  std::vector<double> samples;
  for (int i = 0; i < 100; ++i) samples.push_back(data_rng.normal());
  Rng a(10), b(10);
  const auto ca = bootstrap_mean_ci(samples, a, 500);
  const auto cb = bootstrap_mean_ci(samples, b, 500);
  EXPECT_DOUBLE_EQ(ca.low, cb.low);
  EXPECT_DOUBLE_EQ(ca.high, cb.high);
}

}  // namespace
