// Contact-window analytics, exercised both on synthetic hand-built data
// and on a real (small) campaign output.
#include <gtest/gtest.h>

#include "core/contact_analysis.h"
#include "core/passive_campaign.h"

namespace {

using namespace sinet::core;
using sinet::orbit::ContactWindow;

/// Hand-built campaign: one satellite, two windows; beacons received only
/// in the middle of the first window.
PassiveCampaignResult synthetic_campaign() {
  PassiveCampaignResult res;
  SatelliteWindows sw;
  sw.satellite = "SAT-1";
  const double day = sinet::orbit::kSecondsPerDay;
  ContactWindow w1;
  w1.aos_jd = 100.0;
  w1.los_jd = 100.0 + 600.0 / day;  // 600 s window
  w1.tca_jd = 100.0 + 300.0 / day;
  w1.max_elevation_deg = 40.0;
  ContactWindow w2;
  w2.aos_jd = 100.0 + 3600.0 / day;  // one hour later
  w2.los_jd = w2.aos_jd + 500.0 / day;
  w2.tca_jd = w2.aos_jd + 250.0 / day;
  w2.max_elevation_deg = 30.0;
  sw.windows = {w1, w2};
  res.theoretical.emplace(CellKey{"HK", "Test"},
                          std::vector<SatelliteWindows>{sw});

  // Beacons at 250-350 s into window 1 (mid-window only), none in w2.
  const double aos_unix = sinet::orbit::julian_to_unix(w1.aos_jd);
  for (double t = 250.0; t <= 350.0; t += 10.0) {
    sinet::trace::BeaconRecord r;
    r.time_unix_s = aos_unix + t;
    r.station = "HK-1";
    r.constellation = "Test";
    r.satellite = "SAT-1";
    r.weather = "sunny";
    res.traces.add(r);
  }
  return res;
}

TEST(ContactAnalysis, MatchesTracesToWindows) {
  const auto res = synthetic_campaign();
  const auto outcomes = analyze_contacts(res, {"HK", "Test"}, 10.0);
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_EQ(outcomes[0].beacons_received, 11u);
  EXPECT_TRUE(outcomes[0].effective());
  EXPECT_EQ(outcomes[1].beacons_received, 0u);
  EXPECT_FALSE(outcomes[1].effective());
}

TEST(ContactAnalysis, EffectiveDurationIsFirstToLast) {
  const auto res = synthetic_campaign();
  const auto outcomes = analyze_contacts(res, {"HK", "Test"}, 10.0);
  EXPECT_NEAR(outcomes[0].theoretical_duration_s(), 600.0, 0.1);
  EXPECT_NEAR(outcomes[0].effective_duration_s(), 100.0, 0.1);
  EXPECT_DOUBLE_EQ(outcomes[1].effective_duration_s(), 0.0);
}

TEST(ContactAnalysis, SummaryShrinkAndIntervals) {
  const auto res = synthetic_campaign();
  const auto outcomes = analyze_contacts(res, {"HK", "Test"}, 10.0);
  const ContactStats stats = summarize_contacts(outcomes);
  EXPECT_EQ(stats.contact_count, 2u);
  EXPECT_EQ(stats.effective_contact_count, 1u);
  EXPECT_NEAR(stats.mean_theoretical_duration_s, 550.0, 0.5);
  EXPECT_NEAR(stats.mean_effective_duration_s, 100.0, 0.5);
  // Shrink = 1 - 100/550 ~ 0.818 — the paper's 73.7-89.2% regime.
  EXPECT_NEAR(stats.duration_shrink_fraction, 1.0 - 100.0 / 550.0, 1e-3);
  // Theoretical gap: 3600 - 600 = 3000 s. No second effective contact
  // -> no effective interval.
  EXPECT_NEAR(stats.mean_theoretical_interval_s, 3000.0, 1.0);
  EXPECT_DOUBLE_EQ(stats.mean_effective_interval_s, 0.0);
}

TEST(ContactAnalysis, ReceptionRatio) {
  const auto res = synthetic_campaign();
  const auto outcomes = analyze_contacts(res, {"HK", "Test"}, 10.0);
  // 11 received of the expected slot grid (60 or 61 depending on fp
  // rounding of the 600 s duration).
  EXPECT_NEAR(outcomes[0].reception_ratio(),
              11.0 / static_cast<double>(outcomes[0].beacons_expected),
              1e-9);
  EXPECT_GE(outcomes[0].beacons_expected, 60u);
  EXPECT_LE(outcomes[0].beacons_expected, 61u);
}

TEST(ContactAnalysis, BeaconPositionsNormalized) {
  const auto res = synthetic_campaign();
  const auto pos = beacon_positions_in_window(res, {"HK", "Test"});
  ASSERT_EQ(pos.size(), 11u);
  for (const double p : pos) {
    EXPECT_GE(p, 250.0 / 600.0 - 1e-6);
    EXPECT_LE(p, 350.0 / 600.0 + 1e-6);
  }
  // All receptions are mid-window here.
  EXPECT_DOUBLE_EQ(mid_window_fraction(pos), 1.0);
  EXPECT_DOUBLE_EQ(mid_window_fraction({}), 0.0);
}

TEST(ContactAnalysis, WeatherSplit) {
  const auto res = synthetic_campaign();
  const auto split = reception_by_weather(res, {"HK", "Test"}, 10.0);
  EXPECT_EQ(split.sunny.size(), 1u);
  EXPECT_EQ(split.rainy.size(), 0u);
}

TEST(ContactAnalysis, UnknownCellThrows) {
  const auto res = synthetic_campaign();
  EXPECT_THROW(analyze_contacts(res, {"HK", "Nope"}, 10.0),
               std::invalid_argument);
  EXPECT_THROW(analyze_contacts(res, {"HK", "Test"}, 0.0),
               std::invalid_argument);
  EXPECT_THROW(beacon_positions_in_window(res, {"ZZ", "Test"}),
               std::invalid_argument);
}

TEST(ContactAnalysis, EndToEndOnRealCampaign) {
  PassiveCampaignConfig cfg = default_campaign(1.0);
  cfg.sites = {paper_site("HK")};
  cfg.constellations = {sinet::orbit::paper_constellation("FOSSA")};
  const auto res = run_passive_campaign(cfg);
  const auto outcomes = analyze_contacts(res, {"HK", "FOSSA"}, 10.0);
  ASSERT_FALSE(outcomes.empty());
  const ContactStats stats = summarize_contacts(outcomes);
  // The reproduction's central claim: effective windows are much shorter
  // than theoretical ones.
  EXPECT_GT(stats.duration_shrink_fraction, 0.3);
  EXPECT_LT(stats.duration_shrink_fraction, 1.0);
  // And receptions cluster mid-window (paper Fig 9: 70.4% in 30-70%).
  const auto pos = beacon_positions_in_window(res, {"HK", "FOSSA"});
  if (pos.size() > 50)
    EXPECT_GT(mid_window_fraction(pos), 0.4);
}

TEST(ContactAnalysis, SummaryOfEmptyIsZeroed) {
  const ContactStats stats = summarize_contacts({});
  EXPECT_EQ(stats.contact_count, 0u);
  EXPECT_DOUBLE_EQ(stats.mean_effective_duration_s, 0.0);
}

}  // namespace
