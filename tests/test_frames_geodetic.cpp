// Frame rotations, geodetic conversions and look angles.
#include <gtest/gtest.h>

#include <cmath>

#include "orbit/frames.h"
#include "orbit/geodetic.h"
#include "orbit/look_angles.h"
#include "orbit/time.h"

namespace {

using namespace sinet::orbit;

TEST(Geodetic, EcefRoundTrip) {
  const Geodetic sites[] = {
      {22.32, 114.17, 0.05},    // Hong Kong
      {-33.87, 151.21, 0.02},   // Sydney
      {51.51, -0.13, 0.02},     // London
      {89.9, 45.0, 0.1},        // near north pole
      {-89.9, -120.0, 0.0},     // near south pole
      {0.0, 0.0, 0.0},          // gulf of guinea
  };
  for (const Geodetic& g : sites) {
    const Vec3 ecef = geodetic_to_ecef(g);
    const Geodetic back = ecef_to_geodetic(ecef);
    EXPECT_NEAR(back.latitude_deg, g.latitude_deg, 1e-6);
    EXPECT_NEAR(back.longitude_deg, g.longitude_deg, 1e-6);
    EXPECT_NEAR(back.altitude_km, g.altitude_km, 1e-6);
  }
}

TEST(Geodetic, EquatorAndPoleRadii) {
  const Vec3 equator = geodetic_to_ecef({0.0, 0.0, 0.0});
  EXPECT_NEAR(equator.norm(), kWgs84SemiMajorKm, 1e-6);
  const Vec3 pole = geodetic_to_ecef({90.0, 0.0, 0.0});
  const double polar_radius = kWgs84SemiMajorKm * (1.0 - kWgs84Flattening);
  EXPECT_NEAR(pole.norm(), polar_radius, 1e-6);
  EXPECT_NEAR(pole.x, 0.0, 1e-9);
  EXPECT_NEAR(pole.y, 0.0, 1e-9);
}

TEST(Geodetic, InvalidLatitudeThrows) {
  EXPECT_THROW(geodetic_to_ecef({91.0, 0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(geodetic_to_ecef({-91.0, 0.0, 0.0}), std::invalid_argument);
}

TEST(Geodetic, GreatCircleKnownDistances) {
  const Geodetic hk{22.32, 114.17, 0.0};
  const Geodetic syd{-33.87, 151.21, 0.0};
  // Hong Kong - Sydney is about 7,370 km.
  EXPECT_NEAR(great_circle_km(hk, syd), 7370.0, 80.0);
  EXPECT_NEAR(great_circle_km(hk, hk), 0.0, 1e-9);
  // One degree of latitude ~ 111 km.
  EXPECT_NEAR(great_circle_km({0, 0, 0}, {1, 0, 0}), 111.2, 1.0);
}

TEST(Frames, TemeEcefRoundTrip) {
  const JulianDate jd = julian_from_civil(2025, 3, 1, 6, 0, 0.0);
  const Vec3 r{6800.0, 1234.0, -2345.0};
  const Vec3 ecef = teme_to_ecef_position(r, jd);
  const Vec3 back = ecef_to_teme_position(ecef, jd);
  EXPECT_NEAR((back - r).norm(), 0.0, 1e-9);
  EXPECT_NEAR(ecef.norm(), r.norm(), 1e-9);  // rotation preserves length
}

TEST(Frames, ZAxisInvariant) {
  const JulianDate jd = julian_from_civil(2025, 3, 1);
  const Vec3 r{0.0, 0.0, 7000.0};
  const Vec3 ecef = teme_to_ecef_position(r, jd);
  EXPECT_NEAR(ecef.x, 0.0, 1e-9);
  EXPECT_NEAR(ecef.y, 0.0, 1e-9);
  EXPECT_NEAR(ecef.z, 7000.0, 1e-9);
}

TEST(Frames, VelocityTransportTerm) {
  // A satellite stationary in TEME appears to move westward in ECEF at
  // omega x r.
  const JulianDate jd = julian_from_civil(2025, 3, 1);
  const Vec3 r{42164.0, 0.0, 0.0};
  const Vec3 v{0.0, 0.0, 0.0};
  const Vec3 v_ecef = teme_to_ecef_velocity(r, v, jd);
  EXPECT_NEAR(v_ecef.norm(), kEarthRotationRadPerSec * 42164.0, 1e-6);
}

TEST(LookAngles, SatelliteDirectlyOverhead) {
  const Geodetic obs{0.0, 0.0, 0.0};
  // A point 500 km above the observer along the ECEF x-axis.
  const Vec3 obs_ecef = geodetic_to_ecef(obs);
  const Vec3 sat = obs_ecef * ((obs_ecef.norm() + 500.0) / obs_ecef.norm());
  const LookAngles la = look_angles(obs, sat, {0.0, 0.0, 0.0});
  EXPECT_NEAR(la.elevation_deg, 90.0, 0.2);
  EXPECT_NEAR(la.range_km, 500.0, 1.0);
}

TEST(LookAngles, CardinalAzimuths) {
  const Geodetic obs{0.0, 0.0, 0.0};
  const Vec3 obs_ecef = geodetic_to_ecef(obs);
  // Slightly north of the observer at the same radius + altitude.
  const Vec3 north = geodetic_to_ecef({5.0, 0.0, 500.0});
  const LookAngles la_n = look_angles(obs, north, {});
  EXPECT_NEAR(la_n.azimuth_deg, 0.0, 1.0);
  const Vec3 east = geodetic_to_ecef({0.0, 5.0, 500.0});
  const LookAngles la_e = look_angles(obs, east, {});
  EXPECT_NEAR(la_e.azimuth_deg, 90.0, 1.0);
  const Vec3 south = geodetic_to_ecef({-5.0, 0.0, 500.0});
  const LookAngles la_s = look_angles(obs, south, {});
  EXPECT_NEAR(la_s.azimuth_deg, 180.0, 1.0);
  const Vec3 west = geodetic_to_ecef({0.0, -5.0, 500.0});
  const LookAngles la_w = look_angles(obs, west, {});
  EXPECT_NEAR(la_w.azimuth_deg, 270.0, 1.0);
  (void)obs_ecef;
}

TEST(LookAngles, NegativeElevationBelowHorizon) {
  const Geodetic obs{0.0, 0.0, 0.0};
  // Antipodal satellite is far below the horizon.
  const Vec3 sat = geodetic_to_ecef({0.0, 180.0, 500.0});
  const LookAngles la = look_angles(obs, sat, {});
  EXPECT_LT(la.elevation_deg, -45.0);
}

TEST(LookAngles, RangeRateSign) {
  const Geodetic obs{0.0, 0.0, 0.0};
  const Vec3 obs_ecef = geodetic_to_ecef(obs);
  const Vec3 sat = obs_ecef * ((obs_ecef.norm() + 500.0) / obs_ecef.norm());
  // Moving straight up: receding.
  const Vec3 up = obs_ecef.normalized();
  const LookAngles receding = look_angles(obs, sat, up * 7.0);
  EXPECT_GT(receding.range_rate_km_s, 0.0);
  const LookAngles approaching = look_angles(obs, sat, up * -7.0);
  EXPECT_LT(approaching.range_rate_km_s, 0.0);
}

TEST(Doppler, ShiftSignAndMagnitude) {
  // Approaching at 7.5 km/s on 433 MHz: +10.8 kHz.
  const double shift = doppler_shift_hz(-7.5, 433e6);
  EXPECT_NEAR(shift, 7.5 / 299792.458 * 433e6, 1.0);
  EXPECT_GT(shift, 0.0);
  EXPECT_LT(doppler_shift_hz(7.5, 433e6), 0.0);
  EXPECT_NEAR(doppler_shift_hz(0.0, 433e6), 0.0, 1e-12);
}

}  // namespace
