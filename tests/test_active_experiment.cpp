// Active-experiment analytics (reliability, retx, latency, energy).
#include <gtest/gtest.h>

#include "core/active_experiment.h"
#include "energy/duty_cycle.h"

namespace {

using namespace sinet::core;
using sinet::trace::UplinkRecord;

UplinkRecord rec(double gen, bool delivered, int attempts,
                 int concurrency = 1) {
  UplinkRecord r;
  r.generated_unix_s = gen;
  r.delivered = delivered;
  r.dts_attempts = attempts;
  r.max_concurrent_tx = concurrency;
  if (delivered) {
    r.first_tx_unix_s = gen + 100.0;
    r.satellite_rx_unix_s = gen + 150.0;
    r.server_rx_unix_s = gen + 1000.0;
  }
  return r;
}

TEST(Reliability, TailExclusion) {
  std::vector<UplinkRecord> ups;
  ups.push_back(rec(0.0, true, 1));
  ups.push_back(rec(10.0, false, 1));
  ups.push_back(rec(95'000.0, false, 1));  // inside the excluded tail
  const auto s = summarize_reliability(ups, 100'000.0, 10'000.0);
  EXPECT_EQ(s.generated, 3u);
  EXPECT_EQ(s.eligible, 2u);
  EXPECT_EQ(s.delivered, 1u);
  EXPECT_DOUBLE_EQ(s.reliability, 0.5);
}

TEST(Reliability, EmptyInput) {
  const auto s = summarize_reliability({}, 100.0);
  EXPECT_EQ(s.eligible, 0u);
  EXPECT_DOUBLE_EQ(s.reliability, 0.0);
}

TEST(Retx, CountsRetransmissionsOfDeliveredOnly) {
  std::vector<UplinkRecord> ups;
  ups.push_back(rec(0.0, true, 1));   // 0 retx
  ups.push_back(rec(0.0, true, 3));   // 2 retx
  ups.push_back(rec(0.0, false, 6));  // not delivered: excluded
  const auto s = summarize_retx(ups);
  EXPECT_EQ(s.retransmissions.size(), 2u);
  EXPECT_DOUBLE_EQ(s.zero_retx_fraction, 0.5);
  EXPECT_DOUBLE_EQ(s.mean_attempts, 2.0);
}

TEST(Latency, SummaryFromRecords) {
  std::vector<UplinkRecord> ups;
  ups.push_back(rec(0.0, true, 1));  // e2e 1000 s
  ups.push_back(rec(0.0, false, 1));
  const auto s = summarize_latency(ups);
  EXPECT_NEAR(s.mean_min, 1000.0 / 60.0, 1e-9);
  EXPECT_NEAR(s.median_min, 1000.0 / 60.0, 1e-9);
  EXPECT_NEAR(s.mean_breakdown.wait_for_pass_s, 100.0, 1e-9);
  EXPECT_NEAR(s.mean_breakdown.dts_transfer_s, 50.0, 1e-9);
  EXPECT_NEAR(s.mean_breakdown.delivery_s, 850.0, 1e-9);
}

TEST(Concurrency, GroupsByPeakConcurrency) {
  std::vector<UplinkRecord> ups;
  ups.push_back(rec(0.0, true, 1, 1));
  ups.push_back(rec(0.0, true, 1, 2));
  ups.push_back(rec(0.0, false, 1, 2));
  ups.push_back(rec(0.0, false, 2, 3));
  UplinkRecord never_sent = rec(0.0, false, 0);
  never_sent.dts_attempts = 0;
  ups.push_back(never_sent);  // excluded: never on the air
  const auto groups = reliability_by_concurrency(ups, 1e9, 0.0);
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_DOUBLE_EQ(groups.at(1).reliability, 1.0);
  EXPECT_DOUBLE_EQ(groups.at(2).reliability, 0.5);
  EXPECT_DOUBLE_EQ(groups.at(3).reliability, 0.0);
}

TEST(Energy, ComparisonUsesPaperProfiles) {
  const auto terr = sinet::energy::terrestrial_daily_duty();
  const auto sat = sinet::energy::satellite_daily_duty();
  const auto cmp = compare_energy(terr, sat);
  EXPECT_GT(cmp.satellite_avg_power_mw, cmp.terrestrial_avg_power_mw);
  EXPECT_GT(cmp.terrestrial_lifetime_days, cmp.satellite_lifetime_days);
  EXPECT_GT(cmp.lifetime_ratio, 5.0);
  EXPECT_THROW(
      compare_energy(sinet::energy::ResidencyTracker{}, sat),
      std::invalid_argument);
}

TEST(Knobs, MakeActiveConfigAppliesOverrides) {
  ActiveExperimentKnobs knobs;
  knobs.duration_days = 3.0;
  knobs.max_retransmissions = 2;
  knobs.antenna = sinet::channel::AntennaType::kFiveEighthsWaveMonopole;
  knobs.payload_bytes = 60;
  const auto cfg = make_active_config(knobs);
  EXPECT_DOUBLE_EQ(cfg.duration_days, 3.0);
  ASSERT_EQ(cfg.nodes.size(), 3u);
  for (const auto& n : cfg.nodes) {
    EXPECT_EQ(n.max_retransmissions, 2);
    EXPECT_EQ(n.antenna,
              sinet::channel::AntennaType::kFiveEighthsWaveMonopole);
    EXPECT_EQ(n.report_payload_bytes, 60);
  }
}

TEST(Integration, RunActiveComparisonEndToEnd) {
  ActiveExperimentKnobs knobs;
  knobs.duration_days = 1.0;
  const auto cmp = run_active_comparison(knobs);
  EXPECT_FALSE(cmp.satellite.uplinks.empty());
  EXPECT_FALSE(cmp.terrestrial.uplinks.empty());
  // The paper's central comparison: satellite latency is orders of
  // magnitude above the terrestrial baseline.
  const auto sat_lat = summarize_latency(cmp.satellite);
  EXPECT_GT(sat_lat.mean_min * 60.0,
            cmp.terrestrial.mean_latency_s() * 10.0);
  // And terrestrial reliability is higher.
  const auto sat_rel =
      summarize_reliability(cmp.satellite.uplinks, cmp.run_end_unix_s,
                            4.0 * 3600.0);
  EXPECT_GE(cmp.terrestrial.delivered_fraction(), sat_rel.reliability);
}

}  // namespace
