// Unit tests for sinet::stats (descriptive, CDF, histogram).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "stats/cdf.h"
#include "stats/descriptive.h"
#include "stats/histogram.h"

namespace {

using sinet::stats::EmpiricalCdf;
using sinet::stats::Histogram;
using sinet::stats::StreamingStats;

TEST(StreamingStats, EmptyStateIsWellDefined) {
  StreamingStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_TRUE(std::isnan(s.mean()));
  EXPECT_TRUE(std::isnan(s.variance()));
  EXPECT_EQ(s.sum(), 0.0);
}

TEST(StreamingStats, SingleSample) {
  StreamingStats s;
  s.add(42.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_TRUE(std::isnan(s.variance()));
  EXPECT_DOUBLE_EQ(s.min(), 42.0);
  EXPECT_DOUBLE_EQ(s.max(), 42.0);
}

TEST(StreamingStats, MeanVarianceMatchTextbook) {
  StreamingStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Population variance is 4; sample variance = 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(StreamingStats, MergeEqualsSequential) {
  StreamingStats a, b, all;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i * 0.37) * 10.0 + i * 0.01;
    (i % 2 == 0 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(StreamingStats, MergeWithEmptyIsNoop) {
  StreamingStats a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);

  StreamingStats c;
  c.merge(a);
  EXPECT_EQ(c.count(), 2u);
  EXPECT_DOUBLE_EQ(c.mean(), 2.0);
}

TEST(StreamingStats, SummarizeMirrorsAccessorsForDegenerateInputs) {
  // Summary fields must match the accessors exactly: an empty series has
  // no mean and a single sample has no spread, and masking those NaNs as
  // 0.0 (the old behavior) faked a perfectly repeated measurement.
  const auto empty = sinet::stats::summarize(StreamingStats{});
  EXPECT_EQ(empty.count, 0u);
  EXPECT_TRUE(std::isnan(empty.mean));
  EXPECT_TRUE(std::isnan(empty.stddev));
  EXPECT_TRUE(std::isinf(empty.min));
  EXPECT_TRUE(std::isinf(empty.max));

  StreamingStats one;
  one.add(3.25);
  const auto s1 = sinet::stats::summarize(one);
  EXPECT_EQ(s1.count, 1u);
  EXPECT_EQ(s1.mean, 3.25);
  EXPECT_TRUE(std::isnan(s1.stddev)) << "stddev undefined for n < 2";
  EXPECT_TRUE(std::isnan(one.stddev()));
}

TEST(StreamingStats, ToStringContainsFields) {
  StreamingStats s;
  s.add(1.0);
  s.add(2.0);
  const std::string str = sinet::stats::to_string(sinet::stats::summarize(s));
  EXPECT_NE(str.find("n=2"), std::string::npos);
  EXPECT_NE(str.find("mean=1.5"), std::string::npos);
}

TEST(EmpiricalCdf, QuantilesOfKnownSamples) {
  EmpiricalCdf cdf{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(cdf.median(), 3.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.25), 2.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.125), 1.5);  // interpolated
}

TEST(EmpiricalCdf, QuantileErrors) {
  EmpiricalCdf empty;
  EXPECT_THROW((void)empty.quantile(0.5), std::out_of_range);
  EmpiricalCdf one{1.0};
  EXPECT_THROW((void)one.quantile(-0.1), std::out_of_range);
  EXPECT_THROW((void)one.quantile(1.1), std::out_of_range);
  EXPECT_DOUBLE_EQ(one.quantile(0.7), 1.0);
}

TEST(EmpiricalCdf, FractionAtOrBelow) {
  EmpiricalCdf cdf{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(5.0), 0.0);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(10.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(25.0), 0.5);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(100.0), 1.0);
  EXPECT_DOUBLE_EQ(EmpiricalCdf{}.fraction_at_or_below(0.0), 0.0);
}

TEST(EmpiricalCdf, FractionBetween) {
  EmpiricalCdf cdf{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(cdf.fraction_between(2.0, 4.0), 0.6);
  EXPECT_DOUBLE_EQ(cdf.fraction_between(4.0, 2.0), 0.0);
  EXPECT_DOUBLE_EQ(cdf.fraction_between(-1.0, 10.0), 1.0);
}

TEST(EmpiricalCdf, AddAfterQueryResorts) {
  EmpiricalCdf cdf{5.0, 1.0};
  EXPECT_DOUBLE_EQ(cdf.median(), 3.0);
  cdf.add(0.0);
  EXPECT_DOUBLE_EQ(cdf.median(), 1.0);
}

TEST(EmpiricalCdf, CurveIsMonotonic) {
  EmpiricalCdf cdf;
  for (int i = 0; i < 50; ++i) cdf.add(std::cos(i * 1.7) * 100.0);
  const auto curve = cdf.curve(21);
  ASSERT_EQ(curve.size(), 21u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i - 1].first, curve[i].first);
    EXPECT_LT(curve[i - 1].second, curve[i].second);
  }
}

TEST(EmpiricalCdf, CurveEmptyOrDegenerate) {
  EXPECT_TRUE(EmpiricalCdf{}.curve().empty());
  EmpiricalCdf one{3.0};
  EXPECT_TRUE(one.curve(1).empty());
}

TEST(EmpiricalCdf, DescribeMentionsCount) {
  EmpiricalCdf cdf{1.0, 2.0};
  EXPECT_NE(cdf.describe().find("n=2"), std::string::npos);
  EXPECT_EQ(EmpiricalCdf{}.describe(), "empty");
}

TEST(Histogram, BinPlacement) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.0);
  h.add(0.999);
  h.add(5.0);
  h.add(9.999);
  EXPECT_DOUBLE_EQ(h.count(0), 2.0);
  EXPECT_DOUBLE_EQ(h.count(5), 1.0);
  EXPECT_DOUBLE_EQ(h.count(9), 1.0);
  EXPECT_DOUBLE_EQ(h.total(), 4.0);
}

TEST(Histogram, UnderOverflow) {
  Histogram h(0.0, 1.0, 4);
  h.add(-0.5);
  h.add(1.0);  // hi edge is exclusive
  h.add(2.0);
  EXPECT_DOUBLE_EQ(h.underflow(), 1.0);
  EXPECT_DOUBLE_EQ(h.overflow(), 2.0);
  EXPECT_DOUBLE_EQ(h.total(), 3.0);
}

TEST(Histogram, WeightsAndFractions) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5, 3.0);
  h.add(1.5, 1.0);
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.75);
  EXPECT_DOUBLE_EQ(h.fraction(1), 0.25);
  EXPECT_EQ(h.mode_bin(), 0u);
}

TEST(Histogram, EdgesAndCenters) {
  Histogram h(-1.0, 1.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_width(), 0.5);
  EXPECT_DOUBLE_EQ(h.bin_lower_edge(0), -1.0);
  EXPECT_DOUBLE_EQ(h.bin_center(3), 0.75);
}

TEST(Histogram, InvalidConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, NanSamplesGetTheirOwnBucket) {
  // Regression: NaN fails both the x < lo and x >= hi guards, so it used
  // to reach the float-to-index cast — undefined behaviour (UBSan traps)
  // that in practice corrupted bin 0. NaN mass now lands in nan().
  Histogram h(0.0, 1.0, 4);
  h.add(std::numeric_limits<double>::quiet_NaN());
  h.add(std::nan(""), 2.0);
  h.add(0.5);  // one honest sample for contrast
  EXPECT_DOUBLE_EQ(h.nan(), 3.0);
  EXPECT_DOUBLE_EQ(h.total(), 4.0);
  EXPECT_DOUBLE_EQ(h.underflow(), 0.0);
  EXPECT_DOUBLE_EQ(h.overflow(), 0.0);
  EXPECT_DOUBLE_EQ(h.count(0), 0.0);
  EXPECT_DOUBLE_EQ(h.count(2), 1.0);
}

TEST(Histogram, RenderProducesOneLinePerBin) {
  Histogram h(0.0, 3.0, 3);
  h.add(0.5);
  h.add(1.5);
  const std::string r = h.render(10);
  EXPECT_EQ(std::count(r.begin(), r.end(), '\n'), 3);
}

TEST(HistogramMerge, CompatibleMergeEqualsSequentialFill) {
  // Golden for the parallel DtS engine's shard reduction: merging
  // shard-local histograms must equal filling one histogram with the
  // concatenated samples — exactly, bin for bin.
  Histogram a(0.0, 10.0, 5);
  Histogram b(0.0, 10.0, 5);
  Histogram both(0.0, 10.0, 5);
  const std::vector<double> xa = {0.5, 2.5, 9.9, -1.0, 11.0};
  const std::vector<double> xb = {0.5, 4.5, 4.6, std::nan(""), 12.0};
  for (const double x : xa) {
    a.add(x);
    both.add(x);
  }
  for (const double x : xb) {
    b.add(x);
    both.add(x);
  }
  a.merge(b);
  for (std::size_t i = 0; i < both.bin_count(); ++i)
    EXPECT_EQ(a.count(i), both.count(i)) << "bin " << i;
  EXPECT_EQ(a.underflow(), both.underflow());
  EXPECT_EQ(a.overflow(), both.overflow());
  EXPECT_EQ(a.nan(), both.nan());
  EXPECT_EQ(a.total(), both.total());
  // Golden spot-checks so a binning change cannot slip through silently.
  EXPECT_EQ(a.count(0), 2.0);
  EXPECT_EQ(a.count(1), 1.0);
  EXPECT_EQ(a.count(2), 2.0);
  EXPECT_EQ(a.count(4), 1.0);
  EXPECT_EQ(a.underflow(), 1.0);
  EXPECT_EQ(a.overflow(), 2.0);
  EXPECT_EQ(a.nan(), 1.0);
  EXPECT_EQ(a.total(), 10.0);
}

TEST(HistogramMerge, MergeWithEmptyIsNoop) {
  Histogram a(0.0, 1.0, 4);
  a.add(0.3);
  const Histogram empty(0.0, 1.0, 4);
  a.merge(empty);
  EXPECT_EQ(a.total(), 1.0);
  EXPECT_EQ(a.count(1), 1.0);
}

TEST(HistogramMerge, IncompatibleBinningThrows) {
  Histogram a(0.0, 10.0, 5);
  EXPECT_THROW(a.merge(Histogram(0.0, 10.0, 6)), std::invalid_argument);
  EXPECT_THROW(a.merge(Histogram(0.0, 9.0, 5)), std::invalid_argument);
  EXPECT_THROW(a.merge(Histogram(1.0, 10.0, 5)), std::invalid_argument);
}

TEST(EmpiricalCdfMerge, MergeEqualsConcatenatedSamples) {
  EmpiricalCdf a({5.0, 1.0, 3.0});
  const EmpiricalCdf b({2.0, 4.0});
  a.merge(b);
  const EmpiricalCdf both({5.0, 1.0, 3.0, 2.0, 4.0});
  ASSERT_EQ(a.size(), 5u);
  EXPECT_EQ(a.median(), both.median());
  EXPECT_EQ(a.quantile(0.0), 1.0);
  EXPECT_EQ(a.quantile(1.0), 5.0);
  EXPECT_EQ(a.fraction_at_or_below(2.5), both.fraction_at_or_below(2.5));
}

TEST(EmpiricalCdfMerge, MergeAfterQueryKeepsQueriesConsistent) {
  // A query sorts lazily; a merge afterwards must re-mark dirty so later
  // quantiles see the union, not the stale sorted view.
  EmpiricalCdf a({3.0, 1.0});
  EXPECT_EQ(a.median(), 2.0);
  a.merge(EmpiricalCdf({100.0}));
  EXPECT_EQ(a.quantile(1.0), 100.0);
}

TEST(EmpiricalCdfMerge, SelfMergeDoublesSamples) {
  EmpiricalCdf a({1.0, 2.0});
  a.merge(a);
  ASSERT_EQ(a.size(), 4u);
  EXPECT_EQ(a.quantile(1.0), 2.0);
  EXPECT_EQ(a.quantile(0.0), 1.0);
}

TEST(EmpiricalCdfMerge, MergeEmptyIsNoop) {
  EmpiricalCdf a({1.0});
  a.merge(EmpiricalCdf{});
  EXPECT_EQ(a.size(), 1u);
  EmpiricalCdf empty;
  empty.merge(a);
  EXPECT_EQ(empty.size(), 1u);
}

}  // namespace
