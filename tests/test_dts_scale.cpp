// Population-scale DtS engine tests.
//
// The centerpiece is the randomized parity suite: below the trace
// threshold the batched engine must reproduce the legacy per-node-event
// engine's DtsNetworkResult bit for bit — same uplink records, same
// counters, same residency — across a wide sweep of seeded
// configurations. The rest are the scale-bug sweep regressions: 64-bit
// index widths, the busy_until sentinel, record growth under
// drop/ARQ interleaving, and aggregate-mode determinism with bounded
// memory gauges.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "core/scenario.h"
#include "energy/power_model.h"
#include "net/dts_batch.h"
#include "net/dts_network.h"
#include "obs/metrics.h"
#include "sim/rng.h"
#include "trace/csv.h"

namespace {

using namespace sinet;
using namespace sinet::net;

// --- parity suite ----------------------------------------------------

/// One randomized small-N configuration, derived deterministically from
/// the case index. Varies every knob that changes the draw sequence:
/// access scheme, ARQ budget, congestion, ADR, Doppler precompensation,
/// drop policy, buffer sizes, report cadence, sites and seed.
DtsNetworkConfig parity_case(std::size_t nodes, std::uint64_t case_id) {
  sim::Rng knobs(sim::derive_seed(case_id, "dts-parity-case"));
  const double duration_days = 0.15 + 0.05 * static_cast<double>(case_id % 4);
  DtsNetworkConfig cfg =
      tianqi_agriculture_config(core::campaign_epoch_jd(), duration_days);
  cfg.seed = 1000 + case_id;
  cfg.pass_scan_step_s = 60.0;

  const orbit::Geodetic farm{22.78, 100.98, 1.3};
  const orbit::Geodetic ridge{23.41, 101.52, 1.9};
  cfg.nodes.clear();
  for (std::size_t n = 0; n < nodes; ++n) {
    IotNodeConfig nc;
    nc.name = "P-node-" + std::to_string(n);
    nc.location = (case_id % 2 == 1 && n % 3 == 2) ? ridge : farm;
    nc.report_payload_bytes = 12 + static_cast<int>(knobs.uniform_int(0, 3)) * 8;
    nc.report_interval_s = 600.0 * static_cast<double>(knobs.uniform_int(1, 4));
    nc.max_retransmissions = static_cast<int>(knobs.uniform_int(0, 5));
    nc.buffer_capacity = static_cast<std::size_t>(knobs.uniform_int(1, 16));
    cfg.nodes.push_back(nc);
  }

  cfg.uplink_access = knobs.chance(0.5) ? UplinkAccess::kScheduled
                                        : UplinkAccess::kSlottedAloha;
  cfg.congestion.enabled = knobs.chance(0.8);
  cfg.adaptive_sf = knobs.chance(0.3);
  cfg.doppler_precompensation = knobs.chance(0.3);
  cfg.satellite_drop_policy =
      knobs.chance(0.5) ? DropPolicy::kDropNewest : DropPolicy::kDropOldest;
  cfg.satellite_buffer_capacity =
      static_cast<std::size_t>(knobs.uniform_int(4, 64));
  cfg.downlink_packets_per_contact =
      knobs.chance(0.3) ? static_cast<std::size_t>(knobs.uniform_int(1, 8))
                        : 0;
  return cfg;
}

void expect_records_equal(const trace::UplinkRecord& a,
                          const trace::UplinkRecord& b, std::size_t i) {
  EXPECT_EQ(a.sequence, b.sequence) << "uplink " << i;
  EXPECT_EQ(a.node, b.node) << "uplink " << i;
  EXPECT_EQ(a.payload_bytes, b.payload_bytes) << "uplink " << i;
  EXPECT_EQ(a.generated_unix_s, b.generated_unix_s) << "uplink " << i;
  EXPECT_EQ(a.first_tx_unix_s, b.first_tx_unix_s) << "uplink " << i;
  EXPECT_EQ(a.satellite_rx_unix_s, b.satellite_rx_unix_s) << "uplink " << i;
  EXPECT_EQ(a.server_rx_unix_s, b.server_rx_unix_s) << "uplink " << i;
  EXPECT_EQ(a.dts_attempts, b.dts_attempts) << "uplink " << i;
  EXPECT_EQ(a.max_concurrent_tx, b.max_concurrent_tx) << "uplink " << i;
  EXPECT_EQ(a.delivered, b.delivered) << "uplink " << i;
  EXPECT_EQ(a.via_satellite, b.via_satellite) << "uplink " << i;
}

void expect_results_equal(const DtsNetworkResult& legacy,
                          const DtsNetworkResult& batched,
                          std::uint64_t case_id) {
  SCOPED_TRACE("parity case " + std::to_string(case_id));
  ASSERT_EQ(legacy.uplinks.size(), batched.uplinks.size());
  for (std::size_t i = 0; i < legacy.uplinks.size(); ++i) {
    expect_records_equal(legacy.uplinks[i], batched.uplinks[i], i);
    if (testing::Test::HasFailure()) break;  // one divergence is enough
  }

  EXPECT_EQ(legacy.counters.beacons_sent, batched.counters.beacons_sent);
  EXPECT_EQ(legacy.counters.beacons_heard, batched.counters.beacons_heard);
  EXPECT_EQ(legacy.counters.uplink_attempts,
            batched.counters.uplink_attempts);
  EXPECT_EQ(legacy.counters.uplinks_received,
            batched.counters.uplinks_received);
  EXPECT_EQ(legacy.counters.uplinks_collided,
            batched.counters.uplinks_collided);
  EXPECT_EQ(legacy.counters.acks_sent, batched.counters.acks_sent);
  EXPECT_EQ(legacy.counters.acks_received, batched.counters.acks_received);
  EXPECT_EQ(legacy.counters.duplicate_uplinks,
            batched.counters.duplicate_uplinks);
  EXPECT_EQ(legacy.counters.satellite_buffer_drops,
            batched.counters.satellite_buffer_drops);
  EXPECT_EQ(legacy.counters.background_losses,
            batched.counters.background_losses);

  ASSERT_EQ(legacy.node_residency.size(), batched.node_residency.size());
  for (std::size_t n = 0; n < legacy.node_residency.size(); ++n)
    for (int m = 0; m < energy::kModeCount; ++m)
      EXPECT_EQ(legacy.node_residency[n].seconds_in(
                    static_cast<energy::Mode>(m)),
                batched.node_residency[n].seconds_in(
                    static_cast<energy::Mode>(m)))
          << "node " << n << " mode " << m;

  EXPECT_EQ(legacy.agg.reports_generated, batched.agg.reports_generated);
  EXPECT_EQ(legacy.agg.reports_delivered, batched.agg.reports_delivered);
  EXPECT_EQ(legacy.agg.eligible_generated, batched.agg.eligible_generated);
  EXPECT_EQ(legacy.agg.eligible_delivered, batched.agg.eligible_delivered);
  EXPECT_EQ(legacy.agg.local_buffer_drops, batched.agg.local_buffer_drops);
  EXPECT_EQ(legacy.agg.packets_abandoned, batched.agg.packets_abandoned);
  EXPECT_EQ(legacy.agg.sum_end_to_end_s, batched.agg.sum_end_to_end_s);
  EXPECT_EQ(legacy.agg.sum_wait_s, batched.agg.sum_wait_s);
  EXPECT_EQ(legacy.agg.wait_samples, batched.agg.wait_samples);
}

void run_parity_cases(std::size_t nodes, std::uint64_t first_case,
                      std::uint64_t count) {
  for (std::uint64_t c = first_case; c < first_case + count; ++c) {
    DtsNetworkConfig cfg = parity_case(nodes, c);
    cfg.engine = DtsEngine::kLegacy;
    const DtsNetworkResult legacy = run_dts_network(cfg);
    cfg.engine = DtsEngine::kBatched;
    const DtsNetworkResult batched = run_dts_network(cfg);
    expect_results_equal(legacy, batched, c);
    if (testing::Test::HasFailure()) return;
  }
}

// 56 seeded configurations across four population sizes (the suite is
// split so no single test monopolizes the timeout budget).
TEST(DtsEngineParity, SingleNodeConfigs) { run_parity_cases(1, 0, 14); }
TEST(DtsEngineParity, ThreeNodeConfigs) { run_parity_cases(3, 100, 14); }
TEST(DtsEngineParity, TwelveNodeConfigs) { run_parity_cases(12, 200, 14); }
TEST(DtsEngineParity, SixtyFourNodeConfigs) { run_parity_cases(64, 300, 14); }

TEST(DtsEngineParity, FleetConfigMatchesExplicitNodeList) {
  // A fleet prototype must behave exactly like the equivalent explicit
  // node list, on both engines.
  DtsNetworkConfig base =
      tianqi_agriculture_config(core::campaign_epoch_jd(), 0.2);
  base.nodes.clear();
  base.fleet.count = 10;
  base.fleet.sites = {orbit::Geodetic{22.78, 100.98, 1.3},
                      orbit::Geodetic{23.41, 101.52, 1.9}};
  base.fleet.prototype.name = "fleet";
  base.fleet.prototype.report_interval_s = 900.0;
  base.fleet.prototype.max_retransmissions = 3;

  DtsNetworkConfig listed = base;
  listed.fleet = NodeFleet{};
  for (std::size_t n = 0; n < 10; ++n)
    listed.nodes.push_back(detail::dts_node_config(base, n));

  base.engine = DtsEngine::kBatched;
  listed.engine = DtsEngine::kLegacy;
  expect_results_equal(run_dts_network(listed), run_dts_network(base), 9999);
}

// --- scale-bug sweep regressions -------------------------------------

TEST(DtsScaleBugs, PacketIndexFieldsAreSixtyFourBit) {
  // A mega-fleet node index overflows int; these fields must hold the
  // full range without truncation or sign flips.
  AppPacket pkt;
  pkt.node_index = 5'000'000'000LL;
  EXPECT_EQ(pkt.node_index, 5'000'000'000LL);
  StoredPacket sp;
  sp.satellite_index = 4'000'000'000LL;
  EXPECT_EQ(sp.satellite_index, 4'000'000'000LL);
  static_assert(sizeof(pkt.node_index) == 8,
                "node_index must be 64-bit for population-scale fleets");
  static_assert(sizeof(sp.satellite_index) == 8,
                "satellite_index must be 64-bit");
}

TEST(DtsScaleBugs, CsvSequenceSurvivesBeyondDoublePrecision) {
  // Sequences above 2^53 collide when parsed through a double; the CSV
  // reader must round-trip them exactly (fails with the old
  // to_double-based parse, which lands on the nearest even integer).
  const std::uint64_t seq = (1ull << 53) + 3;
  trace::UplinkRecord rec;
  rec.sequence = seq;
  rec.node = "n";
  rec.via_satellite = "s";
  std::stringstream ss;
  trace::write_uplink_csv(ss, {rec});
  const auto back = trace::read_uplink_csv(ss);
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0].sequence, seq);
}

TEST(DtsScaleBugs, FreshNodeIsNotBusyAtTimeZero) {
  // The busy test is strict (now < busy_until): a node that has never
  // transmitted must be free to answer a beacon at sim time 0. The old
  // -1.0 magic sentinel satisfied this too; the replacement 0.0 pins the
  // same behavior without implying negative times are meaningful.
  IotNodeState node{IotNodeConfig{}};
  EXPECT_EQ(node.busy_until, 0.0);
  EXPECT_FALSE(0.0 < node.busy_until) << "node busy at t=0 without ever "
                                         "transmitting";
}

TEST(DtsScaleBugs, TinyBufferArqInterleavingStaysConsistent) {
  // buffer_capacity=1 with a fast report cadence forces constant local
  // drops interleaved with ARQ retransmissions — the pattern that opens
  // gaps in the per-node sequence runs. Both engines must agree exactly
  // and account every report as delivered, abandoned, dropped or
  // still pending.
  DtsNetworkConfig cfg =
      tianqi_agriculture_config(core::campaign_epoch_jd(), 0.3);
  cfg.seed = 77;
  for (auto& nc : cfg.nodes) {
    nc.buffer_capacity = 1;
    nc.report_interval_s = 300.0;
    nc.max_retransmissions = 3;
  }
  cfg.engine = DtsEngine::kLegacy;
  const DtsNetworkResult legacy = run_dts_network(cfg);
  cfg.engine = DtsEngine::kBatched;
  const DtsNetworkResult batched = run_dts_network(cfg);
  expect_results_equal(legacy, batched, 7777);
  EXPECT_GT(batched.agg.local_buffer_drops, 0u)
      << "case too mild to exercise buffer-overflow gaps";
  EXPECT_GT(batched.agg.reports_generated, 0u);
}

// --- aggregate (population) mode -------------------------------------

DtsNetworkConfig aggregate_config() {
  DtsNetworkConfig cfg = scale_fleet_config(
      2000, 22, 16, core::campaign_epoch_jd(), /*duration_days=*/0.1);
  // Paper constellation instead of the synthetic shell: its windows are
  // already in the global cache from the other tests, keeping this fast.
  cfg.constellation = orbit::paper_constellation("Tianqi");
  cfg.downlink.carrier_hz = cfg.constellation.dts_frequency_hz;
  cfg.uplink.carrier_hz = cfg.constellation.dts_frequency_hz;
  cfg.trace_node_threshold = 64;  // force aggregate mode
  // Off the report grid (multiples of 60 s), so no report lands exactly
  // on the eligibility boundary where ulp-level rounding differences
  // between the engines' time representations could flip the count.
  cfg.aggregate_tail_exclusion_s = 3601.5;
  return cfg;
}

TEST(DtsAggregateMode, DeterministicAcrossRuns) {
  const DtsNetworkConfig cfg = aggregate_config();
  const DtsNetworkResult a = run_dts_network(cfg);
  const DtsNetworkResult b = run_dts_network(cfg);
  EXPECT_TRUE(a.uplinks.empty()) << "aggregate mode must not keep traces";
  EXPECT_TRUE(a.node_residency.empty());
  EXPECT_GT(a.agg.reports_generated, 0u);
  EXPECT_EQ(a.agg.reports_generated, b.agg.reports_generated);
  EXPECT_EQ(a.agg.reports_delivered, b.agg.reports_delivered);
  EXPECT_EQ(a.agg.eligible_generated, b.agg.eligible_generated);
  EXPECT_EQ(a.agg.eligible_delivered, b.agg.eligible_delivered);
  EXPECT_EQ(a.agg.local_buffer_drops, b.agg.local_buffer_drops);
  EXPECT_EQ(a.agg.packets_abandoned, b.agg.packets_abandoned);
  EXPECT_EQ(a.agg.sum_end_to_end_s, b.agg.sum_end_to_end_s);
  EXPECT_EQ(a.agg.sum_wait_s, b.agg.sum_wait_s);
  EXPECT_EQ(a.counters.beacons_sent, b.counters.beacons_sent);
  EXPECT_EQ(a.counters.uplink_attempts, b.counters.uplink_attempts);
}

TEST(DtsAggregateMode, PublishesBoundedMemoryGauges) {
  DtsNetworkConfig cfg = aggregate_config();
  obs::MetricsRegistry metrics;
  cfg.metrics = &metrics;
  const DtsNetworkResult res = run_dts_network(cfg);
  const auto s = metrics.snapshot();
  ASSERT_TRUE(s.gauges.count("net.dts.scale.nodes"));
  EXPECT_EQ(s.gauges.at("net.dts.scale.nodes").value, 2000.0);
  ASSERT_TRUE(s.gauges.count("net.dts.scale.node_store_bytes"));
  // SoA store: tens of bytes per node, never the kilobytes a deque +
  // string + tracker per node would cost.
  EXPECT_GT(s.gauges.at("net.dts.scale.node_store_bytes").value, 0.0);
  EXPECT_LT(s.gauges.at("net.dts.scale.node_store_bytes").value,
            2000.0 * 256.0);
  ASSERT_TRUE(s.gauges.count("net.dts.scale.records_bytes"));
  EXPECT_EQ(s.gauges.at("net.dts.scale.records_bytes").value, 0.0)
      << "aggregate mode must not allocate per-packet records";
  // The sharded engine has no event queue at all — timelines are plain
  // arrays walked by the conflict schedule.
  EXPECT_FALSE(s.gauges.count("sim.event_queue.max_pending"));
  ASSERT_TRUE(s.gauges.count("net.dts.parallel.threads"));
  EXPECT_GE(s.gauges.at("net.dts.parallel.threads").value, 1.0);
  ASSERT_TRUE(s.gauges.count("net.dts.parallel.slices"));
  EXPECT_GT(s.gauges.at("net.dts.parallel.slices").value, 0.0);
  ASSERT_TRUE(s.gauges.count("net.dts.parallel.shards"));
  EXPECT_GT(s.gauges.at("net.dts.parallel.shards").value, 0.0);
  EXPECT_GT(res.agg.reports_generated, 0u);
}

TEST(DtsAggregateMode, MatchesExactEngineOnAggregateStatistics) {
  // Aggregate mode draws a different (smaller) RNG stream, so it cannot
  // be bit-identical — but on an identical scenario its aggregate rates
  // must land close to the exact engine's.
  DtsNetworkConfig cfg = aggregate_config();
  cfg.fleet.count = 200;  // small enough to afford the exact run
  DtsNetworkConfig exact_cfg = cfg;
  exact_cfg.trace_node_threshold = 4096;  // exact mode
  const DtsNetworkResult agg_run = run_dts_network(cfg);
  const DtsNetworkResult exact_run = run_dts_network(exact_cfg);
  ASSERT_GT(exact_run.agg.reports_generated, 0u);
  EXPECT_EQ(agg_run.agg.reports_generated,
            exact_run.agg.reports_generated);
  EXPECT_EQ(agg_run.agg.eligible_generated,
            exact_run.agg.eligible_generated);
  if (exact_run.agg.reports_delivered > 0) {
    EXPECT_NEAR(agg_run.agg.delivered_fraction(),
                exact_run.agg.delivered_fraction(), 0.15);
  }
}

}  // namespace
