// LoRa PHY: time-on-air, thresholds, sensitivity, error model, Doppler,
// link budget.
#include <gtest/gtest.h>

#include <cmath>

#include "phy/doppler.h"
#include "phy/error_model.h"
#include "phy/link_budget.h"
#include "orbit/constellation.h"
#include "phy/lora.h"
#include "sim/rng.h"

namespace {

using namespace sinet::phy;

TEST(Lora, SymbolTimeAndBins) {
  LoraParams p;
  p.sf = SpreadingFactor::kSf10;
  p.bandwidth_hz = 125e3;
  EXPECT_NEAR(p.symbol_time_s(), 1024.0 / 125000.0, 1e-12);
  EXPECT_NEAR(p.bin_width_hz(), 125000.0 / 1024.0, 1e-9);
  EXPECT_FALSE(p.low_data_rate_optimize());  // 8.2 ms < 16 ms
  p.sf = SpreadingFactor::kSf12;
  EXPECT_TRUE(p.low_data_rate_optimize());  // 32.8 ms > 16 ms
}

TEST(Lora, TimeOnAirKnownValues) {
  // Cross-checked against the Semtech SX126x calculator.
  LoraParams p;
  p.sf = SpreadingFactor::kSf7;
  p.bandwidth_hz = 125e3;
  p.cr = CodingRate::k4_5;
  // SF7/125k, 20-byte payload, 8-symbol preamble, explicit header + CRC:
  // preamble 12.25 sym, payload 8 + ceil(176/28)*5 = 43 sym -> 56.6 ms
  // (Semtech SX126x calculator).
  EXPECT_NEAR(time_on_air_s(p, 20), 0.0566, 0.001);

  p.sf = SpreadingFactor::kSf10;
  // SF10: payload symbols 8 + ceil(164/40)*5 = 33; total 45.25 sym
  // of 8.192 ms = 370.7 ms.
  EXPECT_NEAR(time_on_air_s(p, 20), 0.3707, 0.002);

  p.sf = SpreadingFactor::kSf12;
  // SF12 with LDRO: 8 + ceil(132/40)*5 = 28; total 40.25 sym x 32.768 ms
  // = 1.319 s — the "hundreds to thousands of ms" of paper Sec 1.
  EXPECT_NEAR(time_on_air_s(p, 20), 1.319, 0.01);
}

TEST(Lora, ToaMonotonicInPayloadAndSf) {
  LoraParams p;
  for (const auto sf : {SpreadingFactor::kSf7, SpreadingFactor::kSf9,
                        SpreadingFactor::kSf11}) {
    p.sf = sf;
    double prev = 0.0;
    for (int bytes = 0; bytes <= 240; bytes += 20) {
      const double t = time_on_air_s(p, bytes);
      EXPECT_GE(t, prev);
      prev = t;
    }
  }
  LoraParams a, b;
  a.sf = SpreadingFactor::kSf8;
  b.sf = SpreadingFactor::kSf9;
  EXPECT_LT(time_on_air_s(a, 50), time_on_air_s(b, 50));
}

TEST(Lora, PayloadBoundsChecked) {
  LoraParams p;
  EXPECT_THROW(time_on_air_s(p, -1), std::invalid_argument);
  EXPECT_THROW(time_on_air_s(p, 256), std::invalid_argument);
  EXPECT_NO_THROW(time_on_air_s(p, 0));
  EXPECT_NO_THROW(time_on_air_s(p, 255));
}

TEST(Lora, DemodThresholdsMatchDatasheet) {
  EXPECT_DOUBLE_EQ(demod_snr_threshold_db(SpreadingFactor::kSf7), -7.5);
  EXPECT_DOUBLE_EQ(demod_snr_threshold_db(SpreadingFactor::kSf10), -15.0);
  EXPECT_DOUBLE_EQ(demod_snr_threshold_db(SpreadingFactor::kSf12), -20.0);
}

TEST(Lora, SensitivityMatchesDatasheetBallpark) {
  LoraParams p;
  p.sf = SpreadingFactor::kSf12;
  p.bandwidth_hz = 125e3;
  // SX1262 datasheet: about -137 dBm at SF12/125 kHz.
  EXPECT_NEAR(sensitivity_dbm(p, 6.0), -137.0, 1.5);
  p.sf = SpreadingFactor::kSf7;
  EXPECT_NEAR(sensitivity_dbm(p, 6.0), -124.5, 1.5);
}

TEST(Lora, DefaultDtsProfile) {
  const LoraParams p = default_dts_params();
  EXPECT_EQ(p.sf, SpreadingFactor::kSf10);
  EXPECT_DOUBLE_EQ(p.bandwidth_hz, 125e3);
  EXPECT_EQ(to_string(p.sf), "SF10");
}

TEST(ErrorModel, WaterfallAroundThreshold) {
  const ErrorModel model;
  LoraParams p = default_dts_params();
  const double thr = demod_snr_threshold_db(p.sf);
  // Far above threshold: near residual floor. Far below: certain loss.
  EXPECT_LT(model.packet_error_probability(thr + 10.0, p, 20), 0.01);
  EXPECT_GT(model.packet_error_probability(thr - 6.0, p, 20), 0.99);
  // At threshold: in a "lossy but usable" band.
  const double at = model.packet_error_probability(thr, p, 20);
  EXPECT_GT(at, 0.005);
  EXPECT_LT(at, 0.5);
}

TEST(ErrorModel, MonotonicInSnr) {
  const ErrorModel model;
  const LoraParams p = default_dts_params();
  double prev = 1.1;
  for (double snr = -30.0; snr <= 10.0; snr += 0.5) {
    const double per = model.packet_error_probability(snr, p, 20);
    EXPECT_LE(per, prev + 1e-12);
    prev = per;
  }
}

TEST(ErrorModel, LongerPacketsLoseMore) {
  const ErrorModel model;
  const LoraParams p = default_dts_params();
  const double snr = demod_snr_threshold_db(p.sf) + 1.0;
  EXPECT_LT(model.packet_error_probability(snr, p, 10),
            model.packet_error_probability(snr, p, 120));
}

TEST(ErrorModel, StrongerFecHelps) {
  const ErrorModel model;
  LoraParams weak = default_dts_params();
  weak.cr = CodingRate::k4_5;
  LoraParams strong = default_dts_params();
  strong.cr = CodingRate::k4_8;
  const double snr = demod_snr_threshold_db(weak.sf);
  EXPECT_GT(model.packet_error_probability(snr, weak, 60),
            model.packet_error_probability(snr, strong, 60));
}

TEST(ErrorModel, ConfigValidation) {
  ErrorModelConfig bad;
  bad.ser_at_threshold = 0.0;
  EXPECT_THROW(ErrorModel{bad}, std::invalid_argument);
  ErrorModelConfig bad2;
  bad2.slope_per_db = -1.0;
  EXPECT_THROW(ErrorModel{bad2}, std::invalid_argument);
  ErrorModelConfig bad3;
  bad3.residual_per = 1.0;
  EXPECT_THROW(ErrorModel{bad3}, std::invalid_argument);
}

TEST(ErrorModel, ReceiveMatchesProbability) {
  const ErrorModel model;
  const LoraParams p = default_dts_params();
  LinkState link;
  link.snr_db = demod_snr_threshold_db(p.sf) + 0.5;
  link.doppler = {};
  sinet::sim::Rng rng(11);
  int received = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    if (model.receive(link, p, 20, rng)) ++received;
  const double expected =
      1.0 - model.packet_error_probability(link.snr_db, p, 20);
  EXPECT_NEAR(static_cast<double>(received) / n, expected, 0.02);
}

TEST(Doppler, PenaltySmallWithinCapture) {
  const LoraParams p = default_dts_params();
  DopplerProfile prof;
  prof.shift_hz = 10e3;  // ~ max LEO shift at 433 MHz, within 31 kHz
  prof.rate_hz_per_s = 0.0;
  const double pen = doppler_snr_penalty_db(prof, p, 0.37);
  EXPECT_GT(pen, 0.0);
  EXPECT_LT(pen, 3.0);
}

TEST(Doppler, OffsetBeyondCaptureKillsPacket) {
  const LoraParams p = default_dts_params();
  DopplerProfile prof;
  prof.shift_hz = 0.26 * p.bandwidth_hz;
  EXPECT_GE(doppler_snr_penalty_db(prof, p, 0.37), 50.0);
}

TEST(Doppler, DriftPenaltyGrowsWithPacketDuration) {
  LoraParams p = default_dts_params();
  p.sf = SpreadingFactor::kSf12;  // narrow bins, long packets
  DopplerProfile prof;
  prof.shift_hz = 0.0;
  prof.rate_hz_per_s = 150.0;  // culmination-level drift
  const double short_pen = doppler_snr_penalty_db(prof, p, 0.1);
  const double long_pen = doppler_snr_penalty_db(prof, p, 1.3);
  EXPECT_GT(long_pen, short_pen);
  EXPECT_THROW(doppler_snr_penalty_db(prof, p, -1.0), std::invalid_argument);
}

TEST(Doppler, MaxRateFormula) {
  // 7.6 km/s at 600 km closest range on 433 MHz: ~139 Hz/s.
  const double rate = max_doppler_rate_hz_s(7.6, 600.0, 433e6);
  EXPECT_NEAR(rate, 7.6 * 7.6 / 600.0 * 433e6 / 299792.458, 1e-6);
  EXPECT_GT(rate, 100.0);
  EXPECT_LT(rate, 200.0);
  EXPECT_THROW(max_doppler_rate_hz_s(7.6, 0.0, 433e6),
               std::invalid_argument);
}

TEST(LinkBudget, MeanStateMatchesHandComputation) {
  LinkConfig cfg;
  cfg.tx_power_dbm = 22.0;
  cfg.tx_antenna = sinet::channel::AntennaType::kIsotropic;
  cfg.rx_antenna = sinet::channel::AntennaType::kIsotropic;
  cfg.carrier_hz = 400e6;
  cfg.implementation_loss_db = 1.0;
  sinet::orbit::LookAngles look;
  look.elevation_deg = 90.0;
  look.range_km = 1000.0;
  look.range_rate_km_s = 0.0;
  const LinkState st =
      mean_link_state(cfg, look, sinet::channel::Weather::kSunny);
  // FSPL(1000 km, 400 MHz) = 144.5; + zenith 0.1 + pol 3 + impl 1.
  EXPECT_NEAR(st.path_loss_db, 148.6, 0.2);
  EXPECT_NEAR(st.rssi_dbm, 22.0 - 148.6, 0.2);
  // Noise floor (125 kHz, NF 6, ext 2) = -115 dBm.
  EXPECT_NEAR(st.snr_db, st.rssi_dbm + 115.0, 0.2);
  EXPECT_NEAR(st.doppler.shift_hz, 0.0, 1e-9);
}

TEST(LinkBudget, RssiInPaperRangeForTypicalGeometry) {
  // Paper Fig 3b: received beacons land between about -140 and -110 dBm.
  LinkConfig cfg;
  cfg.tx_power_dbm = 23.0;
  cfg.carrier_hz = 400.45e6;
  for (double el : {10.0, 30.0, 60.0}) {
    sinet::orbit::LookAngles look;
    look.elevation_deg = el;
    look.range_km = sinet::orbit::slant_range_km(860.0, el);
    const LinkState st =
        mean_link_state(cfg, look, sinet::channel::Weather::kSunny);
    EXPECT_GT(st.rssi_dbm, -145.0) << "el=" << el;
    EXPECT_LT(st.rssi_dbm, -105.0) << "el=" << el;
  }
  // Directly overhead, both the whip's and the dipole's nulls align:
  // the link is *worse* at zenith than at 60 degrees despite the
  // shorter range.
  sinet::orbit::LookAngles zenith;
  zenith.elevation_deg = 90.0;
  zenith.range_km = sinet::orbit::slant_range_km(860.0, 90.0);
  sinet::orbit::LookAngles mid;
  mid.elevation_deg = 60.0;
  mid.range_km = sinet::orbit::slant_range_km(860.0, 60.0);
  EXPECT_LT(
      mean_link_state(cfg, zenith, sinet::channel::Weather::kSunny).rssi_dbm,
      mean_link_state(cfg, mid, sinet::channel::Weather::kSunny).rssi_dbm);
}

TEST(LinkBudget, DrawAddsFadingAndDopplerRate) {
  LinkConfig cfg;
  sinet::orbit::LookAngles look;
  look.elevation_deg = 45.0;
  look.range_km = 900.0;
  look.range_rate_km_s = -5.0;
  sinet::sim::Rng rng(21);
  const LinkState mean =
      mean_link_state(cfg, look, sinet::channel::Weather::kSunny);
  double diff = 0.0;
  for (int i = 0; i < 100; ++i) {
    const LinkState st = draw_link_state(
        cfg, look, sinet::channel::Weather::kSunny, 120.0, rng);
    diff += std::abs(st.rssi_dbm - mean.rssi_dbm);
    EXPECT_DOUBLE_EQ(st.doppler.rate_hz_per_s, 120.0);
    EXPECT_GT(st.doppler.shift_hz, 0.0);  // approaching
  }
  EXPECT_GT(diff / 100.0, 0.3);  // fading actually perturbs the draw
}

}  // namespace
