// Cost model tests: regenerates paper Table 2 and Sec 3.2 numbers.
#include <gtest/gtest.h>

#include <cmath>

#include "cost/cost_model.h"

namespace {

using namespace sinet::cost;

TEST(Workload, ReportsPerDay) {
  Workload w;  // 20 B every 30 min
  EXPECT_DOUBLE_EQ(w.reports_per_day(), 48.0);
  w.report_interval_s = 0.0;
  EXPECT_THROW((void)w.reports_per_day(), std::invalid_argument);
}

TEST(SatellitePackets, SmallReportsAreOnePacket) {
  const Workload w;  // 20 bytes fits one 120-byte packet
  const SatellitePricing p;
  EXPECT_DOUBLE_EQ(satellite_packets_per_day(w, p), 48.0);
}

TEST(SatellitePackets, LargeReportsSplit) {
  Workload w;
  w.report_bytes = 250;  // needs 3 packets of 120 bytes
  const SatellitePricing p;
  EXPECT_DOUBLE_EQ(satellite_packets_per_day(w, p), 3.0 * 48.0);
  w.report_bytes = 0;
  EXPECT_THROW(satellite_packets_per_day(w, p), std::invalid_argument);
}

TEST(MonthlyCost, SatelliteMatchesPaper) {
  // Paper Sec 3.2: 48 packets/day -> 23.76 USD per sensor per month.
  const Workload w;
  const SatellitePricing p;
  EXPECT_NEAR(satellite_monthly_usd(w, p), 23.76, 1e-9);
}

TEST(MonthlyCost, TerrestrialMatchesPaper) {
  const TerrestrialPricing p;
  EXPECT_NEAR(terrestrial_monthly_usd(1, p), 4.9, 1e-9);
  EXPECT_NEAR(terrestrial_monthly_usd(3, p), 14.7, 1e-9);
  EXPECT_THROW(terrestrial_monthly_usd(-1, p), std::invalid_argument);
}

TEST(Construction, MatchesTable2) {
  Workload w;
  w.sensor_count = 3;
  const TerrestrialPricing tp;
  const SatellitePricing sp;
  // 3 nodes x $35 + 3 gateways x $219.
  EXPECT_NEAR(terrestrial_construction_usd(w, 3, tp), 3 * 35.0 + 3 * 219.0,
              1e-9);
  // 3 Tianqi nodes x $220, no infrastructure.
  EXPECT_NEAR(satellite_construction_usd(w, sp), 660.0, 1e-9);
}

TEST(Tco, GrowsLinearlyWithMonths) {
  Workload w;
  const TerrestrialPricing tp;
  const SatellitePricing sp;
  const double t0 = satellite_tco_usd(w, 0.0, sp);
  const double t12 = satellite_tco_usd(w, 12.0, sp);
  EXPECT_NEAR(t12 - t0, 12.0 * satellite_monthly_usd(w, sp), 1e-9);
  EXPECT_THROW(satellite_tco_usd(w, -1.0, sp), std::invalid_argument);
  EXPECT_THROW(terrestrial_tco_usd(w, 1, -1.0, tp), std::invalid_argument);
}

TEST(Breakeven, SingleSensorWithGateway) {
  // One sensor: terrestrial CAPEX $35+$219 = $254 vs satellite $220;
  // OPEX gap 23.76 - 4.9 = 18.86/month -> breakeven ~1.8 months.
  Workload w;
  const TerrestrialPricing tp;
  const SatellitePricing sp;
  const double months = breakeven_months(w, 1, tp, sp);
  EXPECT_NEAR(months, (254.0 - 220.0) / (23.76 - 4.9), 1e-6);
}

TEST(Breakeven, SatelliteAlwaysCheaperWhenOpexLower) {
  Workload w;
  w.report_interval_s = 86400.0 * 30.0;  // one packet a month: ~0.02 USD
  const TerrestrialPricing tp;
  const SatellitePricing sp;
  EXPECT_TRUE(std::isinf(breakeven_months(w, 1, tp, sp)));
}

TEST(Breakeven, ZeroWhenSatelliteCapexAlreadyHigher) {
  Workload w;
  const TerrestrialPricing tp;
  const SatellitePricing sp;
  // No gateway: terrestrial CAPEX $35 < satellite $220, satellite OPEX
  // higher -> satellite is more expensive from day one.
  EXPECT_DOUBLE_EQ(breakeven_months(w, 0, tp, sp), 0.0);
}

TEST(Tco, ManySensorsFavorTerrestrialSooner) {
  Workload w1, w10;
  w1.sensor_count = 1;
  w10.sensor_count = 10;
  const TerrestrialPricing tp;
  const SatellitePricing sp;
  // Ten sensors share the same gateways, but satellite OPEX scales with
  // sensor count: breakeven comes sooner.
  const double b1 = breakeven_months(w1, 3, tp, sp);
  const double b10 = breakeven_months(w10, 3, tp, sp);
  EXPECT_LT(b10, b1);
}

}  // namespace
