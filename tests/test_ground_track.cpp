// Ground-track computation and latitude-coverage analytics.
#include <gtest/gtest.h>

#include <cmath>

#include "core/availability.h"
#include "orbit/ground_track.h"
#include "orbit/passes.h"
#include "orbit/tle.h"

namespace {

using namespace sinet::orbit;

Tle tle_for(double alt, double incl) {
  KeplerianElements kep;
  kep.altitude_km = alt;
  kep.inclination_deg = incl;
  kep.eccentricity = 0.0005;
  return make_tle("GT", 93000, kep, julian_from_civil(2025, 3, 1));
}

TEST(GroundTrack, SamplesAtRequestedCadence) {
  const Tle tle = tle_for(550.0, 97.6);
  const Sgp4 prop(tle);
  const auto track =
      ground_track(prop, tle.epoch_jd, tle.epoch_jd + 0.1, 60.0);
  // 0.1 day = 8640 s -> 145 samples at 60 s.
  EXPECT_GE(track.size(), 144u);
  EXPECT_LE(track.size(), 146u);
  for (const auto& p : track) {
    EXPECT_GE(p.subsatellite.latitude_deg, -90.0);
    EXPECT_LE(p.subsatellite.latitude_deg, 90.0);
    // Geodetic altitude varies with latitude on a near-circular orbit:
    // Earth's flattening alone contributes ~21 km pole-to-equator.
    EXPECT_NEAR(p.subsatellite.altitude_km, 550.0, 35.0);
    EXPECT_NEAR(p.speed_km_s, 7.58, 0.1);
  }
}

TEST(GroundTrack, InvalidArgumentsThrow) {
  const Tle tle = tle_for(550.0, 97.6);
  const Sgp4 prop(tle);
  EXPECT_THROW(ground_track(prop, tle.epoch_jd, tle.epoch_jd + 1.0, 0.0),
               std::invalid_argument);
  EXPECT_THROW(ground_track(prop, tle.epoch_jd, tle.epoch_jd - 1.0, 30.0),
               std::invalid_argument);
}

TEST(GroundTrack, MaxLatitudeTracksInclination) {
  for (const double incl : {35.0, 49.97, 97.61}) {
    const Tle tle = tle_for(700.0, incl);
    const Sgp4 prop(tle);
    const auto track =
        ground_track(prop, tle.epoch_jd, tle.epoch_jd + 0.3, 30.0);
    const double expect = incl <= 90.0 ? incl : 180.0 - incl;
    EXPECT_NEAR(max_track_latitude_deg(track), expect, 1.0) << incl;
  }
}

TEST(GroundTrack, NodalDriftIsWestward) {
  // Earth rotates under the orbit: successive ascending nodes shift
  // westward by roughly 360 * T_orbit / T_day (~24 deg for a 96-min LEO).
  const Tle tle = tle_for(550.0, 97.6);
  const Sgp4 prop(tle);
  const auto track =
      ground_track(prop, tle.epoch_jd, tle.epoch_jd + 0.5, 30.0);
  const double drift = nodal_drift_deg_per_orbit(track);
  EXPECT_LT(drift, -20.0);
  EXPECT_GT(drift, -28.0);
}

TEST(GroundTrack, NoDriftWithoutCrossings) {
  const Tle tle = tle_for(550.0, 97.6);
  const Sgp4 prop(tle);
  // A 5-minute slice has at most one crossing.
  const auto track = ground_track(prop, tle.epoch_jd,
                                  tle.epoch_jd + 5.0 / 1440.0, 30.0);
  EXPECT_DOUBLE_EQ(nodal_drift_deg_per_orbit(track), 0.0);
}

TEST(GroundTrack, ObserverAtSubsatellitePointSeesZenith) {
  // Cross-module consistency: put an observer exactly at the nadir point
  // and the look angles must report the satellite (nearly) overhead at a
  // range equal to its altitude.
  const Tle tle = tle_for(700.0, 49.97);
  const Sgp4 prop(tle);
  const auto track =
      ground_track(prop, tle.epoch_jd, tle.epoch_jd + 0.05, 120.0);
  for (const auto& p : track) {
    Geodetic observer = p.subsatellite;
    observer.altitude_km = 0.0;
    const auto sample = sample_geometry(prop, observer, p.jd);
    EXPECT_GT(sample.look.elevation_deg, 89.0);
    EXPECT_NEAR(sample.look.range_km, p.subsatellite.altitude_km, 2.0);
  }
}

TEST(PresenceByLatitude, InclinationLimitsCoverage) {
  // Tianqi's main shell is inclined 49.97 deg: coverage must collapse
  // toward the poles but hold at low/mid latitudes.
  const auto spec = sinet::orbit::paper_constellation("Tianqi");
  sinet::core::AvailabilityOptions opts;
  opts.duration_days = 1.0;
  const auto hours = sinet::core::presence_by_latitude(
      spec, {0.0, 25.0, 45.0, 75.0}, julian_from_civil(2025, 3, 1), opts);
  ASSERT_EQ(hours.size(), 4u);
  EXPECT_GT(hours[1], 2.0);   // mid latitudes well served
  EXPECT_GT(hours[2], hours[3]);  // polar coverage collapses
  // Only the 2 SSO satellites serve 75N: sparse.
  EXPECT_LT(hours[3], hours[1]);
}

}  // namespace
