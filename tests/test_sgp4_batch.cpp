// Accuracy and lane-handling tests for the SoA batch propagator
// (orbit/sgp4_batch.h): batch positions vs. the scalar Sgp4 reference,
// remainder groups, mixed simple_/normal element sets in one lane group,
// and per-lane error reporting where the scalar propagator throws.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/scenario.h"
#include "orbit/frames.h"
#include "orbit/sgp4.h"
#include "orbit/sgp4_batch.h"
#include "orbit/tle.h"

namespace sinet {
namespace {

using orbit::JulianDate;
using orbit::LaneStatus;
using orbit::Sgp4;
using orbit::Sgp4Batch;
using orbit::Tle;
using orbit::Vec3;

// Max |batch - scalar| position component tolerated, km. The batch path
// swaps libm trig for the polynomial kernels and atan2 for a
// normalization; observed deviation is ~1e-9 km over 30 days (sub-mm).
constexpr double kPosTolKm = 1e-6;

Tle band_tle(std::mt19937_64& rng, int index) {
  static constexpr double kAltBandsKm[] = {450.0, 500.0,  550.0, 600.0,
                                           650.0, 700.0, 800.0, 1200.0};
  static constexpr double kIncBandsDeg[] = {30.0, 45.0, 53.0, 63.4,
                                            85.0, 97.5, 98.6};
  std::uniform_real_distribution<double> jitter(-20.0, 20.0);
  std::uniform_real_distribution<double> ecc(0.0, 0.02);
  std::uniform_real_distribution<double> angle(0.0, 360.0);

  orbit::KeplerianElements kep;
  kep.altitude_km = kAltBandsKm[index % 8] + jitter(rng);
  kep.inclination_deg = kIncBandsDeg[(index / 8) % 7];
  kep.eccentricity = ecc(rng);
  kep.raan_deg = angle(rng);
  kep.arg_perigee_deg = angle(rng);
  kep.mean_anomaly_deg = angle(rng);
  return orbit::make_tle("BATCH-" + std::to_string(index), 91000 + index,
                         kep, core::campaign_epoch_jd());
}

// A perigee in [156, 220) km activates the `simple_` drag truncation
// without tripping the low-perigee s4 re-derivation or early decay.
Tle simple_branch_tle(int index) {
  orbit::KeplerianElements kep;
  kep.altitude_km = 200.0;
  kep.eccentricity = 0.0005;
  kep.inclination_deg = 53.0;
  kep.mean_anomaly_deg = 40.0 * index;
  kep.bstar = 1e-5;
  return orbit::make_tle("SIMPLE-" + std::to_string(index), 92000 + index,
                         kep, core::campaign_epoch_jd());
}

void expect_batch_matches_scalar(const std::vector<const Sgp4*>& sats,
                                 JulianDate jd, const std::string& label) {
  const Sgp4Batch batch(sats);
  ASSERT_EQ(batch.size(), sats.size()) << label;
  const double gmst = orbit::gmst_rad(jd);
  double x[Sgp4Batch::kLaneWidth], y[Sgp4Batch::kLaneWidth];
  double z[Sgp4Batch::kLaneWidth], d[Sgp4Batch::kLaneWidth];
  LaneStatus status[Sgp4Batch::kLaneWidth];
  std::size_t seen = 0;
  for (std::size_t g = 0; g < batch.groups(); ++g) {
    const std::size_t members = batch.group_members(g);
    EXPECT_TRUE(batch.propagate_group_ecef(g, jd, gmst, x, y, z, d, status))
        << label << " group " << g;
    for (std::size_t l = 0; l < members; ++l) {
      const std::size_t s = g * Sgp4Batch::kLaneWidth + l;
      ASSERT_EQ(status[l], LaneStatus::kOk)
          << label << " sat " << s << " at jd " << jd;
      const Vec3 want = orbit::teme_to_ecef_position_gmst(
          sats[s]->at_jd(jd).position_km, gmst);
      EXPECT_NEAR(x[l], want.x, kPosTolKm) << label << " sat " << s;
      EXPECT_NEAR(y[l], want.y, kPosTolKm) << label << " sat " << s;
      EXPECT_NEAR(z[l], want.z, kPosTolKm) << label << " sat " << s;
      EXPECT_NEAR(d[l], want.norm(), kPosTolKm) << label << " sat " << s;
      ++seen;
    }
  }
  EXPECT_EQ(seen, sats.size()) << label;
}

TEST(Sgp4Batch, MatchesScalarAcrossBandsAndSpan) {
  std::mt19937_64 rng(20260808u);
  std::vector<Tle> tles;
  std::vector<Sgp4> props;
  for (int i = 0; i < 32; ++i) {
    tles.push_back(band_tle(rng, i));
    props.emplace_back(tles.back());
  }
  std::vector<const Sgp4*> sats;
  for (const Sgp4& p : props) sats.push_back(&p);

  // Epoch, mid-campaign, and the far end of a 30-day span.
  const JulianDate jd0 = core::campaign_epoch_jd();
  for (const double offset_days : {0.0, 0.37, 3.14159, 15.5, 29.999}) {
    expect_batch_matches_scalar(sats, jd0 + offset_days,
                                "offset " + std::to_string(offset_days));
  }
}

TEST(Sgp4Batch, RemainderGroupsCoverEveryCount) {
  std::mt19937_64 rng(99);
  std::vector<Tle> tles;
  std::vector<Sgp4> props;
  for (int i = 0; i < 7; ++i) {
    tles.push_back(band_tle(rng, i * 3));
    props.emplace_back(tles.back());
  }

  const JulianDate jd = core::campaign_epoch_jd() + 1.25;
  for (const std::size_t n : {1u, 2u, 3u, 5u, 7u}) {
    std::vector<const Sgp4*> sats;
    for (std::size_t i = 0; i < n; ++i) sats.push_back(&props[i]);
    const Sgp4Batch batch(sats);
    EXPECT_EQ(batch.groups(), (n + Sgp4Batch::kLaneWidth - 1) /
                                  Sgp4Batch::kLaneWidth);
    const std::size_t last = batch.groups() - 1;
    EXPECT_EQ(batch.group_members(last),
              n - last * Sgp4Batch::kLaneWidth);
    expect_batch_matches_scalar(sats, jd, "n=" + std::to_string(n));
  }
}

TEST(Sgp4Batch, MixedSimpleAndNormalBranchesInOneGroup) {
  // Lanes 0/2 run the full drag model, lanes 1/3 the simple_ truncation;
  // the lane mask must keep them independent within one vector group.
  std::mt19937_64 rng(7);
  const Tle normal_a = band_tle(rng, 2);
  const Tle simple_a = simple_branch_tle(0);
  const Tle normal_b = band_tle(rng, 11);
  const Tle simple_b = simple_branch_tle(1);
  const Sgp4 pa(normal_a), pb(simple_a), pc(normal_b), pd(simple_b);
  ASSERT_FALSE(pa.coefficients().simple);
  ASSERT_TRUE(pb.coefficients().simple);
  ASSERT_FALSE(pc.coefficients().simple);
  ASSERT_TRUE(pd.coefficients().simple);

  const std::vector<const Sgp4*> sats{&pa, &pb, &pc, &pd};
  const JulianDate jd0 = core::campaign_epoch_jd();
  for (const double offset_days : {0.01, 0.9, 4.6})
    expect_batch_matches_scalar(sats, jd0 + offset_days,
                                "mixed offset " + std::to_string(offset_days));
}

TEST(Sgp4Batch, ErrorLanesAreFlaggedWithoutPoisoningNeighbors) {
  // A heavily dragged low orbit whose eccentricity leaves [−0.001, 1)
  // partway into the span: the scalar propagator throws, the batch lane
  // must go kError while healthy lanes in the same group stay exact.
  orbit::KeplerianElements decay;
  decay.altitude_km = 200.0;
  decay.eccentricity = 0.0005;
  decay.bstar = 0.1;
  const Tle doomed =
      orbit::make_tle("DOOMED", 93000, decay, core::campaign_epoch_jd());
  const Sgp4 sick(doomed);

  std::mt19937_64 rng(13);
  const Tle t_a = band_tle(rng, 1);
  const Tle t_b = band_tle(rng, 9);
  const Tle t_c = band_tle(rng, 17);
  const Sgp4 pa(t_a), pb(t_b), pc(t_c);
  const std::vector<const Sgp4*> sats{&pa, &sick, &pb, &pc};
  const Sgp4Batch batch(sats);

  // Find a date where the scalar propagator rejects the doomed orbit.
  const JulianDate jd0 = core::campaign_epoch_jd();
  JulianDate bad_jd = 0.0;
  for (double off = 0.5; off <= 30.0; off += 0.5) {
    try {
      (void)sick.at_jd(jd0 + off);
    } catch (const orbit::PropagationError&) {
      bad_jd = jd0 + off;
      break;
    }
  }
  ASSERT_GT(bad_jd, 0.0) << "decay TLE never failed — test needs retuning";

  const double gmst = orbit::gmst_rad(bad_jd);
  double x[4], y[4], z[4], d[4];
  LaneStatus status[4];
  EXPECT_FALSE(batch.propagate_group_ecef(0, bad_jd, gmst, x, y, z, d, status));
  EXPECT_EQ(status[1], LaneStatus::kError);
  EXPECT_EQ(status[0], LaneStatus::kOk);
  EXPECT_EQ(status[2], LaneStatus::kOk);
  EXPECT_EQ(status[3], LaneStatus::kOk);
  const std::vector<const Sgp4*> healthy{&pa, &pb, &pc};
  const std::size_t healthy_lane[] = {0, 2, 3};
  for (int i = 0; i < 3; ++i) {
    const Vec3 want = orbit::teme_to_ecef_position_gmst(
        healthy[i]->at_jd(bad_jd).position_km, gmst);
    EXPECT_NEAR(x[healthy_lane[i]], want.x, kPosTolKm);
    EXPECT_NEAR(y[healthy_lane[i]], want.y, kPosTolKm);
    EXPECT_NEAR(z[healthy_lane[i]], want.z, kPosTolKm);
  }
}

TEST(Sgp4Batch, RejectsEmptyAndNullInputs) {
  EXPECT_THROW(Sgp4Batch(std::vector<const Sgp4*>{}), std::invalid_argument);
  EXPECT_THROW(Sgp4Batch(std::vector<const Sgp4*>{nullptr}),
               std::invalid_argument);
}

}  // namespace
}  // namespace sinet
