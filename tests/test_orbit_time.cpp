// Unit tests for astronomical time utilities.
#include <gtest/gtest.h>

#include <cmath>

#include "orbit/time.h"

namespace {

using namespace sinet::orbit;

TEST(JulianDate, KnownEpochs) {
  // J2000: 2000-01-01 12:00 UTC.
  EXPECT_NEAR(julian_from_civil(2000, 1, 1, 12, 0, 0.0), kJdJ2000, 1e-9);
  // Unix epoch: 1970-01-01 00:00 UTC.
  EXPECT_NEAR(julian_from_civil(1970, 1, 1, 0, 0, 0.0), kJdUnixEpoch, 1e-9);
  // Vallado example: 1996-10-26 14:20:00 -> JD 2450383.09722222.
  EXPECT_NEAR(julian_from_civil(1996, 10, 26, 14, 20, 0.0),
              2450383.09722222, 1e-7);
}

TEST(JulianDate, UnixRoundTrip) {
  const double unix_s = 1'740'787'200.0;  // 2025-03-01T00:00Z
  const JulianDate jd = unix_to_julian(unix_s);
  EXPECT_NEAR(julian_to_unix(jd), unix_s, 1e-5);
  EXPECT_NEAR(jd, julian_from_civil(2025, 3, 1), 1e-9);
}

TEST(JulianDate, CivilRoundTrip) {
  const JulianDate jd = julian_from_civil(2025, 7, 6, 13, 45, 30.25);
  const CivilTime ct = civil_from_julian(jd);
  EXPECT_EQ(ct.year, 2025);
  EXPECT_EQ(ct.month, 7);
  EXPECT_EQ(ct.day, 6);
  EXPECT_EQ(ct.hour, 13);
  EXPECT_EQ(ct.minute, 45);
  EXPECT_NEAR(ct.second, 30.25, 1e-4);
}

TEST(JulianDate, CivilRoundTripSweepsMonths) {
  for (int month = 1; month <= 12; ++month) {
    const JulianDate jd = julian_from_civil(2024, month, 15, 6, 30, 0.0);
    const CivilTime ct = civil_from_julian(jd);
    EXPECT_EQ(ct.month, month);
    EXPECT_EQ(ct.day, 15);
  }
}

TEST(JulianDate, LeapYearFebruary) {
  // 2024 is a leap year: Feb 29 exists and March 1 is day 61.
  const JulianDate feb29 = julian_from_civil(2024, 2, 29);
  const JulianDate mar1 = julian_from_civil(2024, 3, 1);
  EXPECT_NEAR(mar1 - feb29, 1.0, 1e-9);
  const CivilTime ct = civil_from_julian(feb29);
  EXPECT_EQ(ct.month, 2);
  EXPECT_EQ(ct.day, 29);
}

TEST(JulianDate, InvalidInputsThrow) {
  EXPECT_THROW(julian_from_civil(1800, 1, 1), std::invalid_argument);
  EXPECT_THROW(julian_from_civil(2200, 1, 1), std::invalid_argument);
  EXPECT_THROW(julian_from_civil(2025, 0, 1), std::invalid_argument);
  EXPECT_THROW(julian_from_civil(2025, 13, 1), std::invalid_argument);
  EXPECT_THROW(julian_from_civil(2025, 1, 0), std::invalid_argument);
  EXPECT_THROW(julian_from_civil(2025, 1, 32), std::invalid_argument);
  EXPECT_THROW(julian_from_civil(2025, 1, 1, 24, 0, 0.0),
               std::invalid_argument);
  EXPECT_THROW(julian_from_civil(2025, 1, 1, 0, 60, 0.0),
               std::invalid_argument);
  EXPECT_THROW(julian_from_civil(2025, 1, 1, 0, 0, -1.0),
               std::invalid_argument);
}

TEST(Gmst, KnownValue) {
  // Vallado, Example 3-5: 1992-08-20 12:14:00 UT1
  // GMST = 152.578787886 deg.
  const JulianDate jd = julian_from_civil(1992, 8, 20, 12, 14, 0.0);
  EXPECT_NEAR(gmst_rad(jd) * kRadToDeg, 152.578787886, 1e-5);
}

TEST(Gmst, AdvancesAboutFourMinutesPerDay) {
  const JulianDate jd = julian_from_civil(2025, 3, 1);
  const double g0 = gmst_rad(jd);
  const double g1 = gmst_rad(jd + 1.0);
  // Sidereal day is ~3m56s shorter than solar: GMST advances ~0.9856 deg.
  double delta = (g1 - g0) * kRadToDeg;
  if (delta < 0.0) delta += 360.0;
  EXPECT_NEAR(delta, 0.9856, 1e-3);
}

TEST(Gmst, AlwaysInRange) {
  for (int d = 0; d < 400; d += 7) {
    const double g = gmst_rad(kJdJ2000 + d + 0.3);
    EXPECT_GE(g, 0.0);
    EXPECT_LT(g, kTwoPi);
  }
}

TEST(TleEpoch, CenturyRule) {
  // Year 57 -> 1957 (Sputnik era); year 25 -> 2025.
  const JulianDate sputnik = julian_from_tle_epoch(57, 300.0);
  const CivilTime ct1 = civil_from_julian(sputnik);
  EXPECT_EQ(ct1.year, 1957);
  const JulianDate modern = julian_from_tle_epoch(25, 60.5);
  const CivilTime ct2 = civil_from_julian(modern);
  EXPECT_EQ(ct2.year, 2025);
  EXPECT_EQ(ct2.month, 3);  // day 60.5 of 2025 = Mar 1, 12:00
  EXPECT_EQ(ct2.day, 1);
  EXPECT_EQ(ct2.hour, 12);
}

TEST(TleEpoch, DayOneIsJanuaryFirst) {
  const CivilTime ct = civil_from_julian(julian_from_tle_epoch(25, 1.0));
  EXPECT_EQ(ct.month, 1);
  EXPECT_EQ(ct.day, 1);
  EXPECT_EQ(ct.hour, 0);
}

TEST(TleEpoch, InvalidThrows) {
  EXPECT_THROW(julian_from_tle_epoch(-1, 10.0), std::invalid_argument);
  EXPECT_THROW(julian_from_tle_epoch(100, 10.0), std::invalid_argument);
  EXPECT_THROW(julian_from_tle_epoch(25, 0.5), std::invalid_argument);
  EXPECT_THROW(julian_from_tle_epoch(25, 367.0), std::invalid_argument);
}

TEST(AngleWrap, TwoPi) {
  EXPECT_NEAR(wrap_two_pi(kTwoPi + 0.5), 0.5, 1e-12);
  EXPECT_NEAR(wrap_two_pi(-0.5), kTwoPi - 0.5, 1e-12);
  EXPECT_NEAR(wrap_two_pi(7.0 * kTwoPi), 0.0, 1e-9);
}

TEST(AngleWrap, Pi) {
  EXPECT_NEAR(wrap_pi(kPi + 0.1), -kPi + 0.1, 1e-12);
  EXPECT_NEAR(wrap_pi(-kPi + 0.1), -kPi + 0.1, 1e-12);
  EXPECT_NEAR(wrap_pi(kPi), kPi, 1e-12);
}

}  // namespace
