// Integration tests of the end-to-end DtS network simulator.
//
// Runs are kept short (a few days, reduced constellation where possible)
// so the suite stays fast; the benches run the full-scale configurations.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "core/scenario.h"
#include "net/dts_network.h"
#include "obs/metrics.h"

namespace {

using namespace sinet::net;

DtsNetworkConfig small_config(double days = 2.0) {
  DtsNetworkConfig cfg = tianqi_agriculture_config(
      sinet::core::campaign_epoch_jd(), days);
  cfg.pass_scan_step_s = 60.0;
  return cfg;
}

const DtsNetworkResult& shared_run() {
  static const DtsNetworkResult result = run_dts_network(small_config());
  return result;
}

TEST(DtsNetwork, GeneratesAllReports) {
  const auto& res = shared_run();
  // 3 nodes x 96 reports over 2 days (plus/minus phase effects).
  EXPECT_GE(res.uplinks.size(), 280u);
  EXPECT_LE(res.uplinks.size(), 290u);
}

TEST(DtsNetwork, DeliversMostPackets) {
  const auto& res = shared_run();
  // With 5 retransmissions the paper reaches ~96%; the exact value
  // depends on the channel, but the bulk must get through.
  EXPECT_GT(res.delivered_fraction(), 0.6);
}

TEST(DtsNetwork, RecordInvariants) {
  const auto& res = shared_run();
  for (const auto& u : res.uplinks) {
    if (u.first_tx_unix_s >= 0.0)
      EXPECT_GE(u.first_tx_unix_s, u.generated_unix_s);
    if (u.satellite_rx_unix_s >= 0.0) {
      EXPECT_GE(u.satellite_rx_unix_s, u.first_tx_unix_s);
      EXPECT_FALSE(u.via_satellite.empty());
    }
    if (u.delivered) {
      EXPECT_GE(u.server_rx_unix_s, u.satellite_rx_unix_s);
      EXPECT_GT(u.dts_attempts, 0);
      // ARQ budget: first attempt + <= 5 retransmissions.
      EXPECT_LE(u.dts_attempts, 6);
    }
  }
}

TEST(DtsNetwork, CountersAreConsistent) {
  const auto& res = shared_run();
  const auto& c = res.counters;
  EXPECT_GT(c.beacons_sent, 0u);
  EXPECT_GT(c.beacons_heard, 0u);
  EXPECT_LE(c.beacons_heard, c.beacons_sent * 3);  // <= nodes x sent
  EXPECT_LE(c.uplinks_received, c.uplink_attempts);
  EXPECT_LE(c.acks_received, c.acks_sent);
  EXPECT_LE(c.acks_sent, c.uplinks_received);
}

TEST(DtsNetwork, BeaconLossIsSubstantial) {
  // The headline passive finding: a large share of beacons never decode.
  const auto& res = shared_run();
  const double heard_per_node =
      static_cast<double>(res.counters.beacons_heard) /
      (3.0 * static_cast<double>(res.counters.beacons_sent));
  EXPECT_LT(heard_per_node, 0.8);
  EXPECT_GT(heard_per_node, 0.01);
}

TEST(DtsNetwork, LatencyIsHourScale) {
  const auto& res = shared_run();
  // Paper Fig 5c: mean 135 minutes. Anything from tens of minutes to a
  // few hours is the right shape; sub-minute would mean the orbital wait
  // is not being modeled.
  const double mean_min = res.mean_end_to_end_s() / 60.0;
  EXPECT_GT(mean_min, 10.0);
  EXPECT_LT(mean_min, 600.0);
}

TEST(DtsNetwork, LatencyBreakdownSumsToTotal) {
  const auto& res = shared_run();
  const auto b = res.mean_latency_breakdown();
  EXPECT_GT(b.wait_for_pass_s, 0.0);
  EXPECT_GT(b.dts_transfer_s, 0.0);
  EXPECT_GT(b.delivery_s, 0.0);
  // Decomposition applies to packets with full timing; compare against
  // the mean over the same subset, loosely.
  const double total = b.wait_for_pass_s + b.dts_transfer_s + b.delivery_s;
  EXPECT_NEAR(total, res.mean_end_to_end_s(), res.mean_end_to_end_s() * 0.2);
}

TEST(DtsNetwork, EnergyResidencyShape) {
  const auto& res = shared_run();
  ASSERT_EQ(res.node_residency.size(), 3u);
  for (const auto& r : res.node_residency) {
    // Rx (waiting through theoretical windows) dwarfs Tx airtime.
    EXPECT_GT(r.seconds_in(sinet::energy::Mode::kRx),
              r.seconds_in(sinet::energy::Mode::kTx) * 50.0);
    EXPECT_GT(r.seconds_in(sinet::energy::Mode::kSleep), 0.0);
  }
}

TEST(DtsNetwork, DeterministicForSameSeed) {
  DtsNetworkConfig cfg = small_config(1.0);
  const auto a = run_dts_network(cfg);
  const auto b = run_dts_network(cfg);
  ASSERT_EQ(a.uplinks.size(), b.uplinks.size());
  EXPECT_EQ(a.counters.uplink_attempts, b.counters.uplink_attempts);
  for (std::size_t i = 0; i < a.uplinks.size(); ++i)
    EXPECT_EQ(a.uplinks[i].delivered, b.uplinks[i].delivered);
}

TEST(DtsNetwork, SeedChangesOutcomes) {
  DtsNetworkConfig cfg = small_config(1.0);
  const auto a = run_dts_network(cfg);
  cfg.seed = 777;
  const auto b = run_dts_network(cfg);
  EXPECT_NE(a.counters.uplinks_received, b.counters.uplinks_received);
}

TEST(DtsNetwork, NoRetxLowersAttemptCount) {
  DtsNetworkConfig cfg = small_config(1.0);
  for (auto& n : cfg.nodes) n.max_retransmissions = 0;
  const auto res = run_dts_network(cfg);
  for (const auto& u : res.uplinks) EXPECT_LE(u.dts_attempts, 1);
}

TEST(DtsNetwork, ConfigValidation) {
  DtsNetworkConfig cfg = small_config();
  cfg.nodes.clear();
  EXPECT_THROW(run_dts_network(cfg), std::invalid_argument);

  DtsNetworkConfig cfg2 = small_config();
  cfg2.duration_days = 0.0;
  EXPECT_THROW(run_dts_network(cfg2), std::invalid_argument);

  DtsNetworkConfig cfg3 = small_config();
  cfg3.ground_stations.clear();
  EXPECT_THROW(run_dts_network(cfg3), std::invalid_argument);

  DtsNetworkConfig cfg4 = small_config();
  cfg4.beacon.period_s = 0.1;
  EXPECT_THROW(run_dts_network(cfg4), std::invalid_argument);
}

TEST(DtsNetwork, CongestionCausesBackgroundLosses) {
  const auto& res = shared_run();
  // The footprint-load model should account for some uplink losses.
  EXPECT_GT(res.counters.background_losses, 0u);
  EXPECT_LE(res.counters.background_losses,
            res.counters.uplinks_collided);
}

TEST(DtsNetwork, DisablingCongestionImprovesUplink) {
  DtsNetworkConfig with = small_config(1.5);
  DtsNetworkConfig without = small_config(1.5);
  without.congestion.enabled = false;
  const auto a = run_dts_network(with);
  const auto b = run_dts_network(without);
  EXPECT_EQ(b.counters.background_losses, 0u);
  const double loss_a =
      1.0 - static_cast<double>(a.counters.uplinks_received) /
                static_cast<double>(a.counters.uplink_attempts);
  const double loss_b =
      1.0 - static_cast<double>(b.counters.uplinks_received) /
                static_cast<double>(b.counters.uplink_attempts);
  EXPECT_GT(loss_a, loss_b);
}

TEST(DtsNetwork, DeliveryLossIsUnrecoverable) {
  // With heavy operator-side loss, even infinite-patience ARQ cannot
  // deliver what the operator drops after the ACK.
  DtsNetworkConfig cfg = small_config(1.5);
  cfg.delivery_loss_probability = 0.5;
  const auto lossy = run_dts_network(cfg);
  cfg.delivery_loss_probability = 0.0;
  const auto clean = run_dts_network(cfg);
  EXPECT_LT(lossy.delivered_fraction(), clean.delivered_fraction());
}

TEST(DtsNetwork, ConcurrencyIsBoundedByNodeCount) {
  const auto& res = shared_run();
  for (const auto& u : res.uplinks) {
    EXPECT_LE(u.max_concurrent_tx, 3);
    EXPECT_GE(u.max_concurrent_tx, 0);
  }
}

// Regression: GS drain times used to be computed as aos+20 / los-5
// without clamping, so short contacts got flush events outside their own
// window (los-5 before aos, or aos+20 after los).
TEST(GsFlushTimes, NominalContactDrainsTwice) {
  const auto times = gs_flush_times(100.0, 500.0);
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 120.0);
  EXPECT_DOUBLE_EQ(times[1], 495.0);
}

TEST(GsFlushTimes, ShortContactCollapsesToMidpointFlush) {
  // 10 s window: the old schedule put flushes at aos+20 (after LOS) and
  // los-5 (before AOS+20 — crossed); now it is one midpoint flush.
  const auto times = gs_flush_times(100.0, 110.0);
  ASSERT_EQ(times.size(), 1u);
  EXPECT_DOUBLE_EQ(times[0], 105.0);
}

TEST(GsFlushTimes, AllFlushesStayInsideTheWindow) {
  for (const double dur : {0.0, 1.0, 24.9, 25.0, 26.0, 300.0, 900.0}) {
    const double aos = 1000.0;
    for (const double t : gs_flush_times(aos, aos + dur)) {
      EXPECT_GE(t, aos);
      EXPECT_LE(t, aos + dur);
    }
  }
}

TEST(GsFlushTimes, InvertedWindowYieldsNothing) {
  EXPECT_TRUE(gs_flush_times(10.0, 5.0).empty());
}

// Regression: the per-node report phase used to be a raw 60 s * index,
// so with many nodes a late node's first report slid a whole interval
// and it generated fewer reports over the run than its peers. Wrapped
// modulo the interval, every node now reports equally often.
TEST(DtsNetwork, ManyNodesGenerateEqualReportCounts) {
  DtsNetworkConfig cfg = small_config(0.25);
  const IotNodeConfig proto = cfg.nodes.front();
  cfg.nodes.clear();
  for (int i = 0; i < 12; ++i) {
    IotNodeConfig nc = proto;
    nc.name = "node-" + std::to_string(i);
    nc.report_interval_s = 600.0;  // 60 s * 11 > 600: old phase overflowed
    cfg.nodes.push_back(nc);
  }
  const auto res = run_dts_network(cfg);
  std::map<std::string, std::size_t> per_node;
  for (const auto& u : res.uplinks) ++per_node[u.node];
  ASSERT_EQ(per_node.size(), 12u);
  const std::size_t expected = per_node.begin()->second;
  EXPECT_EQ(expected, 36u);  // 0.25 days / 600 s
  for (const auto& [name, count] : per_node)
    EXPECT_EQ(count, expected) << name;
}

// Observability wiring: a run with a registry attached must report the
// same counters the result carries, and attaching metrics must not
// perturb the simulation itself.
TEST(DtsNetwork, MetricsMatchResultCounters) {
  sinet::obs::MetricsRegistry reg;
  DtsNetworkConfig cfg = small_config(1.0);
  cfg.metrics = &reg;
  const auto res = run_dts_network(cfg);
  const sinet::obs::Snapshot s = reg.snapshot();
  EXPECT_EQ(s.counters.at("net.dts.beacons_sent"), res.counters.beacons_sent);
  EXPECT_EQ(s.counters.at("net.dts.uplink_attempts"),
            res.counters.uplink_attempts);
  EXPECT_EQ(s.counters.at("net.dts.uplinks_received"),
            res.counters.uplinks_received);
  EXPECT_EQ(s.counters.at("net.dts.reports_generated"), res.uplinks.size());
  EXPECT_DOUBLE_EQ(s.gauges.at("net.dts.delivered_fraction").value,
                   res.delivered_fraction());
  // The sim core layers reported too: event queue, thread pool, and the
  // contact-window cache all fed the same registry.
  EXPECT_GT(s.counters.at("sim.event_queue.events_executed"), 0u);
  EXPECT_TRUE(s.counters.count("sim.thread_pool.tasks_run"));
  EXPECT_TRUE(s.counters.count("orbit.pass_cache.hits") ||
              s.counters.count("orbit.pass_cache.misses"));
  EXPECT_TRUE(s.gauges.count("net.dts.phase.setup_s"));
  EXPECT_TRUE(s.gauges.count("net.dts.phase.simulate_s"));
}

TEST(DtsNetwork, MetricsDoNotPerturbTheRun) {
  DtsNetworkConfig cfg = small_config(1.0);
  const auto plain = run_dts_network(cfg);
  sinet::obs::MetricsRegistry reg;
  cfg.metrics = &reg;
  const auto instrumented = run_dts_network(cfg);
  ASSERT_EQ(plain.uplinks.size(), instrumented.uplinks.size());
  EXPECT_EQ(plain.counters.uplink_attempts,
            instrumented.counters.uplink_attempts);
  EXPECT_EQ(plain.counters.uplinks_received,
            instrumented.counters.uplinks_received);
  for (std::size_t i = 0; i < plain.uplinks.size(); ++i)
    EXPECT_EQ(plain.uplinks[i].delivered, instrumented.uplinks[i].delivered);
}

}  // namespace
