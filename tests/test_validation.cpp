// Tests for the cross-simulator validation harness (src/val) and the
// divergence metrics it gates on (stats/divergence.h): golden-value K-S
// and Wasserstein distances, bit-exact sinet.validation.v1 round-trips,
// analytic-baseline sanity against hand-derived geometry, the gate
// semantics, and an end-to-end "quick" scenario run checked against the
// committed baseline thresholds.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "orbit/ephemeris.h"
#include "orbit/time.h"
#include "stats/cdf.h"
#include "stats/divergence.h"
#include "val/baseline.h"
#include "val/schema.h"
#include "val/validate.h"

namespace {

using namespace sinet;
using sinet::stats::EmpiricalCdf;

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

// ---------------------------------------------------------------------
// Divergence metrics

TEST(Divergence, KsGoldenValues) {
  // F_a and F_b differ by exactly 1/3 on [1,2) and [3,4).
  EXPECT_DOUBLE_EQ(stats::ks_distance({1, 2, 3}, {2, 3, 4}), 1.0 / 3.0);
  // Half the mass moved from 0 to 1: sup gap is 3/4 - 1/4 at x = 0.
  EXPECT_DOUBLE_EQ(stats::ks_distance({0, 0, 0, 1}, {0, 1, 1, 1}), 0.5);
  // Disjoint supports saturate at 1.
  EXPECT_DOUBLE_EQ(stats::ks_distance({0}, {10}), 1.0);
  // Different sample counts, same distribution.
  EXPECT_DOUBLE_EQ(stats::ks_distance({5, 5, 5}, {5}), 0.0);
}

TEST(Divergence, WassersteinGoldenValues) {
  // Shift by 1: W1 equals the shift.
  EXPECT_DOUBLE_EQ(stats::wasserstein_distance({1, 2, 3}, {2, 3, 4}), 1.0);
  // Half the mass moves distance 1: W1 = 0.5.
  EXPECT_DOUBLE_EQ(stats::wasserstein_distance({0, 0, 0, 1}, {0, 1, 1, 1}),
                   0.5);
  // Point masses 10 apart.
  EXPECT_DOUBLE_EQ(stats::wasserstein_distance({0}, {10}), 10.0);
}

TEST(Divergence, IdenticalSamplesGiveExactZero) {
  const EmpiricalCdf a{3.25, 901.0, 17.5, 42.0};
  EXPECT_EQ(stats::ks_distance(a, a), 0.0);
  EXPECT_EQ(stats::wasserstein_distance(a, a), 0.0);
}

TEST(Divergence, SymmetricInArguments) {
  const EmpiricalCdf a{1, 2, 2, 8};
  const EmpiricalCdf b{0.5, 2, 9, 9, 12};
  EXPECT_DOUBLE_EQ(stats::ks_distance(a, b), stats::ks_distance(b, a));
  EXPECT_DOUBLE_EQ(stats::wasserstein_distance(a, b),
                   stats::wasserstein_distance(b, a));
}

TEST(Divergence, EmptyInputThrows) {
  const EmpiricalCdf empty;
  const EmpiricalCdf one{1.0};
  EXPECT_THROW(stats::ks_distance(empty, one), std::invalid_argument);
  EXPECT_THROW(stats::ks_distance(one, empty), std::invalid_argument);
  EXPECT_THROW(stats::wasserstein_distance(empty, one),
               std::invalid_argument);
}

// ---------------------------------------------------------------------
// Schema round-trip

TEST(ValidationSchema, RoundTripIsBitExact) {
  val::ValidationReport r;
  r.scenario = "unit \"quoted\" \\ scenario";
  r.propagation_mode = "fast";
  r.start_jd = 2460735.5000000005;
  r.duration_days = 0.30000000000000004;
  r.windows.push_back(
      {"TQ-7", "HK", 2460735.512345678901, 2460735.5192837465,
       2460735.5150000001, 89.99999999999999});
  r.link_records.push_back({"TQ-node-1", 1740787200.5, -1.0, -1.0, 0, false});
  r.link_records.push_back(
      {"TQ-node-2", 1740787260.25, 1740790000.125, 1740790321.0625, 3, true});
  r.distributions.push_back({"contact_duration_s.legacy",
                             {0.1, 602.5000000000001, 1e-300, 1.5e9}});
  r.distributions.push_back({"empty", {}});
  r.scores.push_back({"windows.fast_vs_legacy.ks", 1.0 / 3.0});
  r.scalars.push_back({"availability.daily_hours.measured", 20.401951923966408});

  const std::string json = val::to_json(r);
  const val::ValidationReport back = val::parse_json(json);
  // Bit-exact: re-serialization reproduces the same bytes.
  EXPECT_EQ(json, val::to_json(back));
  ASSERT_EQ(back.windows.size(), 1u);
  EXPECT_EQ(back.windows[0].aos_jd, r.windows[0].aos_jd);
  EXPECT_EQ(back.windows[0].max_elevation_deg,
            r.windows[0].max_elevation_deg);
  ASSERT_EQ(back.link_records.size(), 2u);
  EXPECT_FALSE(back.link_records[0].delivered);
  EXPECT_EQ(back.link_records[1].attempts, 3u);
  ASSERT_EQ(back.distributions.size(), 2u);
  EXPECT_EQ(back.distributions[0].samples, r.distributions[0].samples);
  EXPECT_EQ(back.scenario, r.scenario);
}

TEST(ValidationSchema, NanScalarsRoundTrip) {
  val::ValidationReport r;
  r.scenario = "s";
  r.scalars.push_back({"undefined", kNaN});
  const val::ValidationReport back = val::parse_json(val::to_json(r));
  EXPECT_TRUE(std::isnan(back.scalar_or_nan("undefined")));
  EXPECT_EQ(val::to_json(r), val::to_json(back));
}

TEST(ValidationSchema, RejectsWrongSchemaAndUnknownKeys) {
  EXPECT_THROW(val::parse_json("{\"schema\": \"sinet.other.v1\"}"),
               std::exception);
  EXPECT_THROW(val::parse_json("{\"bogus\": 1}"), std::exception);
  EXPECT_THROW(val::parse_json("not json"), std::exception);
}

TEST(ValidationSchema, FileRoundTrip) {
  val::ValidationReport r;
  r.scenario = "file";
  r.scores.push_back({"a", 0.5});
  const std::string path = ::testing::TempDir() + "val_report_rt.json";
  ASSERT_TRUE(val::write_json_file(path, r));
  const val::ValidationReport back = val::read_json_file(path);
  EXPECT_EQ(val::to_json(r), val::to_json(back));
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Analytic baselines

TEST(Baseline, VisibilityHalfAngleMatchesHandComputation) {
  // h = 600 km, eps = 0: theta = acos(Re / (Re + h)).
  const double theta = val::visibility_half_angle_rad(600.0, 0.0);
  EXPECT_NEAR(theta, std::acos(6378.137 / 6978.137), 1e-6);
  // A mask shrinks the cone.
  EXPECT_LT(val::visibility_half_angle_rad(600.0, 25.0), theta);
  EXPECT_THROW(val::visibility_half_angle_rad(-1.0, 0.0),
               std::invalid_argument);
  EXPECT_THROW(val::visibility_half_angle_rad(600.0, 90.0),
               std::invalid_argument);
}

TEST(Baseline, AvailabilityMonotoneInFleetSize) {
  const double one = val::constellation_availability({{1, 600.0, 97.5}}, 0.0);
  const double ten = val::constellation_availability({{10, 600.0, 97.5}}, 0.0);
  EXPECT_GT(one, 0.0);
  EXPECT_LT(one, ten);
  EXPECT_LT(ten, 1.0);
  // Single-satellite case reduces to the cap fraction.
  EXPECT_NEAR(one, val::single_satellite_visibility_fraction(600.0, 0.0),
              1e-12);
  EXPECT_NEAR(val::expected_daily_presence_hours({{10, 600.0, 97.5}}, 0.0),
              24.0 * ten, 1e-9);
}

TEST(Baseline, MaxPassDurationIsPhysicallyPlausible) {
  // A 600 km zero-mask overhead pass lasts roughly 10-20 minutes.
  const double t = val::max_pass_duration_s(600.0, 0.0, 97.5);
  EXPECT_GT(t, 500.0);
  EXPECT_LT(t, 1500.0);
  // Higher orbits give longer passes.
  EXPECT_GT(val::max_pass_duration_s(1200.0, 0.0, 97.5), t);
}

TEST(Baseline, PassDurationCdfIsARandomChordLaw) {
  const double t_max = 600.0;
  EXPECT_EQ(val::pass_duration_cdf(-5.0, t_max), 0.0);
  EXPECT_EQ(val::pass_duration_cdf(0.0, t_max), 0.0);
  EXPECT_EQ(val::pass_duration_cdf(t_max, t_max), 1.0);
  // F(T/2) = 1 - sqrt(3)/2.
  EXPECT_NEAR(val::pass_duration_cdf(300.0, t_max),
              1.0 - std::sqrt(3.0) / 2.0, 1e-12);

  // The materialized CDF has mean (pi/4) T_max per shell.
  const auto cdf =
      val::analytic_pass_duration_cdf({{8, 600.0, 97.5}}, 0.0, 4096);
  ASSERT_EQ(cdf.size(), 4096u);
  double sum = 0.0;
  for (const double x : cdf.sorted_samples()) sum += x;
  const double t_shell = val::max_pass_duration_s(600.0, 0.0, 97.5);
  EXPECT_NEAR(sum / 4096.0, (3.14159265358979 / 4.0) * t_shell,
              0.002 * t_shell);
}

TEST(Baseline, DeliveryRateMatchesHandComputation) {
  val::UplinkDeliveryModel m;
  m.nominal_loss = 0.5;
  m.congested_probability = 0.0;
  m.congested_loss = 1.0;
  m.max_retransmissions = 1;
  m.delivery_loss = 0.0;
  // Two attempts at 50% loss: fail 0.25 -> deliver 0.75.
  EXPECT_NEAR(val::expected_delivery_rate(m), 0.75, 1e-12);
  m.delivery_loss = 0.1;
  EXPECT_NEAR(val::expected_delivery_rate(m), 0.675, 1e-12);
  m.congested_probability = 1.0;  // always congested, loss 1 -> never
  EXPECT_NEAR(val::expected_delivery_rate(m), 0.0, 1e-12);
  m.congested_loss = 1.5;
  EXPECT_THROW(val::expected_delivery_rate(m), std::invalid_argument);
}

TEST(Baseline, RenewalWaitMatchesHandComputation) {
  // One gap of 100 s in a 200 s span: E[wait] = 100^2 / (2 * 200) = 25.
  EXPECT_NEAR(val::expected_wait_s({{100.0, 200.0}}, 0.0, 200.0), 25.0,
              1e-12);
  // Full coverage: zero wait.
  EXPECT_EQ(val::expected_wait_s({{0.0, 50.0}}, 0.0, 50.0), 0.0);
  // No windows at all: the whole span is one censored gap, E = T/2.
  EXPECT_NEAR(val::expected_wait_s({}, 0.0, 100.0), 50.0, 1e-12);
  EXPECT_EQ(val::expected_wait_s({}, 5.0, 5.0), 0.0);
}

// ---------------------------------------------------------------------
// Gate semantics

val::ValidationReport report_with(const std::string& scenario,
                                  const std::string& score, double value) {
  val::ValidationReport r;
  r.scenario = scenario;
  r.scores.push_back({score, value});
  return r;
}

val::BaselineSet one_threshold(const std::string& scenario,
                               const std::string& score, double max) {
  val::BaselineSet b;
  b.scenarios.push_back({scenario, {{score, max}}});
  return b;
}

TEST(Gate, PassesUnderThresholdFailsOver) {
  const auto b = one_threshold("quick", "x.ks", 0.1);
  EXPECT_TRUE(val::gate(report_with("quick", "x.ks", 0.05), b).passed);
  EXPECT_TRUE(val::gate(report_with("quick", "x.ks", 0.1), b).passed);
  const auto fail = val::gate(report_with("quick", "x.ks", 0.2), b);
  EXPECT_FALSE(fail.passed);
  ASSERT_EQ(fail.checks.size(), 1u);
  EXPECT_FALSE(fail.checks[0].ok);
  EXPECT_EQ(fail.checks[0].score, "x.ks");
}

TEST(Gate, MissingScoreAndNanFail) {
  const auto b = one_threshold("quick", "x.ks", 0.1);
  EXPECT_FALSE(val::gate(report_with("quick", "other", 0.0), b).passed);
  EXPECT_FALSE(val::gate(report_with("quick", "x.ks", kNaN), b).passed);
}

TEST(Gate, UnknownScenarioFails) {
  const auto b = one_threshold("quick", "x.ks", 0.1);
  EXPECT_FALSE(val::gate(report_with("reference", "x.ks", 0.0), b).passed);
}

TEST(Gate, BaselineJsonRoundTripsAndRejectsGarbage) {
  val::BaselineSet b;
  b.scenarios.push_back({"quick", {{"a.ks", 0.25}, {"b.w", 10.0}}});
  b.scenarios.push_back({"reference", {}});
  const val::BaselineSet back = val::parse_baselines_json(val::to_json(b));
  EXPECT_EQ(val::to_json(b), val::to_json(back));
  ASSERT_NE(back.find_scenario("quick"), nullptr);
  EXPECT_EQ(back.find_scenario("quick")->thresholds.size(), 2u);
  EXPECT_EQ(back.find_scenario("missing"), nullptr);
  EXPECT_THROW(val::parse_baselines_json("{\"schema\": \"wrong\"}"),
               std::exception);
  EXPECT_THROW(val::parse_baselines_json("{}"), std::exception);
}

// ---------------------------------------------------------------------
// End-to-end scenario run

TEST(RunValidation, UnknownScenarioThrows) {
  EXPECT_THROW(val::validation_scenario("nope"), std::invalid_argument);
}

TEST(RunValidation, QuickScenarioPassesCommittedGate) {
  const val::ValidationScenario sc = val::validation_scenario("quick");
  const val::ValidationReport report = val::run_validation(sc);

  // Shared-ephemeris and culled scans are bit-identical to the legacy
  // per-pair scan, so their divergence must be *exactly* zero.
  EXPECT_EQ(report.score_or_nan("windows.shared_vs_legacy.ks"), 0.0);
  EXPECT_EQ(report.score_or_nan("windows.shared_vs_legacy.wasserstein_s"),
            0.0);
  EXPECT_EQ(report.score_or_nan("windows.culled_vs_legacy.ks"), 0.0);
  EXPECT_EQ(report.score_or_nan("windows.culled_vs_legacy.count_rel_err"),
            0.0);

  // The SIMD fast arm is tolerance-bounded, not bit-exact by contract.
  EXPECT_LE(report.score_or_nan("windows.fast_vs_legacy.ks"), 0.02);

  // Analytic agreement is coarse but bounded.
  EXPECT_LT(report.score_or_nan("contact_duration.legacy_vs_analytic.ks"),
            0.15);
  EXPECT_LT(report.score_or_nan("availability.daily_hours.rel_err"), 0.35);
  // Geometric renewal lower-bounds the DES wait.
  EXPECT_LE(report.score_or_nan("dts.wait.renewal_bound_ratio"), 1.0);

  // Report carries the data the scores were computed from.
  EXPECT_FALSE(report.windows.empty());
  EXPECT_FALSE(report.link_records.empty());
  ASSERT_NE(report.find_distribution("contact_duration_s.legacy"), nullptr);
  ASSERT_NE(report.find_distribution("dts.wait_s"), nullptr);

  // Round-trips bit-exactly through the schema.
  EXPECT_EQ(val::to_json(report),
            val::to_json(val::parse_json(val::to_json(report))));

  // And the committed baseline thresholds gate it green.
  const val::BaselineSet baselines = val::read_baselines_file(
      std::string(SINET_TEST_DATA_DIR) + "/validation_baselines.json");
  const val::GateResult gated = val::gate(report, baselines);
  for (const val::GateCheck& c : gated.checks)
    EXPECT_TRUE(c.ok) << c.score << " = " << c.value << " > " << c.max;
  EXPECT_TRUE(gated.passed);
  EXPECT_GE(gated.checks.size(), 10u);
}

TEST(RunValidation, ScaleScenarioCatalogEntry) {
  const val::ValidationScenario sc = val::validation_scenario("scale");
  EXPECT_EQ(sc.dts_nodes, 1'000'000u);
  EXPECT_EQ(sc.dts_sats, 1'000u);
  EXPECT_EQ(sc.dts_sites, 256u);
  EXPECT_EQ(sc.dts_days, 1.0);
  // Paper scenarios must keep the legacy full-report path.
  EXPECT_EQ(val::validation_scenario("quick").dts_nodes, 0u);
  EXPECT_EQ(val::validation_scenario("reference").dts_nodes, 0u);
}

TEST(RunValidation, MiniScaleScenarioScoresAggregates) {
  // Unit-test-sized instance of the "scale" path: enough nodes to force
  // aggregate mode (above the 4096 trace threshold), small fleet and
  // horizon so the run stays in test budget. The committed "scale"
  // baselines gate the full 1M-node instance in CI.
  val::ValidationScenario sc = val::validation_scenario("scale");
  sc.name = "scale-mini";
  sc.dts_nodes = 6000;
  sc.dts_sats = 22;
  sc.dts_sites = 16;
  sc.dts_days = 0.5;
  sc.renewal_site_stride = 4;
  const val::ValidationReport report = val::run_validation(sc);

  // Aggregate mode: no per-packet exports, streaming scalars instead.
  EXPECT_TRUE(report.windows.empty());
  EXPECT_TRUE(report.link_records.empty());
  EXPECT_GT(report.scalar_or_nan("dts.reports.generated"), 0.0);
  EXPECT_GE(report.scalar_or_nan("dts.reports.eligible"), 1.0);
  EXPECT_GT(report.scalar_or_nan("dts.reliability.measured"), 0.0);

  const double abs_err = report.score_or_nan("dts.delivery.abs_err");
  EXPECT_TRUE(std::isfinite(abs_err));
  EXPECT_LT(abs_err, 0.3);
  // Geometric renewal lower-bounds the DES wait in the scale path too.
  EXPECT_LE(report.score_or_nan("dts.wait.renewal_bound_ratio"), 1.0);

  // The gate machinery reads the new scores like any other scenario's.
  val::BaselineSet b;
  b.scenarios.push_back(
      {"scale-mini",
       {{"dts.delivery.abs_err", 0.5},
        {"dts.wait.renewal_bound_ratio", 1.0}}});
  EXPECT_TRUE(val::gate(report, b).passed);
}

TEST(RunValidation, FastModeQuickScenarioPassesSameGate) {
  // Acceptance criterion: the SIMD fast path passes the same gate as the
  // reference mode. The DtS arm follows the ambient mode; the four scan
  // arms pin their own modes, so the cross-arm scores stay comparable.
  const orbit::PropagationMode prev = orbit::propagation_mode();
  orbit::set_propagation_mode(orbit::PropagationMode::kFast);
  val::ValidationReport report;
  try {
    report = val::run_validation(val::validation_scenario("quick"));
  } catch (...) {
    orbit::set_propagation_mode(prev);
    throw;
  }
  orbit::set_propagation_mode(prev);

  EXPECT_EQ(report.propagation_mode, "fast");
  const val::BaselineSet baselines = val::read_baselines_file(
      std::string(SINET_TEST_DATA_DIR) + "/validation_baselines.json");
  const val::GateResult gated = val::gate(report, baselines);
  for (const val::GateCheck& c : gated.checks)
    EXPECT_TRUE(c.ok) << c.score << " = " << c.value << " > " << c.max;
  EXPECT_TRUE(gated.passed);
}

}  // namespace
