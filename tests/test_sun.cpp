// Solar ephemeris and eclipse geometry.
#include <gtest/gtest.h>

#include <cmath>

#include "core/passive_campaign.h"
#include "orbit/sun.h"
#include "orbit/sgp4.h"
#include "orbit/time.h"
#include "orbit/tle.h"

namespace {

using namespace sinet::orbit;

TEST(Sun, DirectionIsUnitVector) {
  for (int d = 0; d < 366; d += 30) {
    const Vec3 s = sun_direction_teme(kJdJ2000 + d);
    EXPECT_NEAR(s.norm(), 1.0, 1e-9);
  }
}

TEST(Sun, SeasonsHaveCorrectDeclination) {
  // Summer solstice: sun ~+23.4 deg declination; winter: ~-23.4;
  // equinoxes: ~0.
  const Vec3 summer =
      sun_direction_teme(julian_from_civil(2025, 6, 21, 12, 0, 0.0));
  EXPECT_NEAR(std::asin(summer.z) * kRadToDeg, 23.4, 0.5);
  const Vec3 winter =
      sun_direction_teme(julian_from_civil(2025, 12, 21, 12, 0, 0.0));
  EXPECT_NEAR(std::asin(winter.z) * kRadToDeg, -23.4, 0.5);
  const Vec3 spring =
      sun_direction_teme(julian_from_civil(2025, 3, 20, 12, 0, 0.0));
  EXPECT_NEAR(std::asin(spring.z) * kRadToDeg, 0.0, 0.7);
}

TEST(Sun, ShadowRequiresAntiSolarSide) {
  const JulianDate jd = julian_from_civil(2025, 3, 20, 12, 0, 0.0);
  const Vec3 s = sun_direction_teme(jd);
  // Directly behind Earth at LEO altitude: in shadow.
  EXPECT_TRUE(in_earth_shadow(s * -6900.0, jd));
  // Toward the sun: sunlit.
  EXPECT_FALSE(in_earth_shadow(s * 6900.0, jd));
  // Anti-solar direction but far off-axis: sunlit.
  Vec3 perp{-s.y, s.x, 0.0};
  perp = perp.normalized() * 7000.0;
  EXPECT_FALSE(in_earth_shadow(perp - s * 2000.0, jd));
}

TEST(Sun, LeoEclipseFractionIsPhysical) {
  // A 550 km, 49.97-deg orbit near equinox spends roughly a third of
  // each revolution in shadow.
  KeplerianElements kep;
  kep.altitude_km = 550.0;
  kep.inclination_deg = 49.97;
  const Tle tle = make_tle("ECL", 94000, kep, julian_from_civil(2025, 3, 20));
  const Sgp4 prop(tle);
  const double frac =
      eclipse_fraction(prop, tle.epoch_jd, tle.epoch_jd + 0.5, 30.0);
  EXPECT_GT(frac, 0.25);
  EXPECT_LT(frac, 0.45);
}

TEST(Sun, EclipseGatingReducesBeaconsInCampaign) {
  sinet::core::PassiveCampaignConfig cfg =
      sinet::core::default_campaign(1.0);
  cfg.sites = {sinet::core::paper_site("HK")};
  cfg.constellations = {sinet::orbit::paper_constellation("FOSSA")};
  const auto open = sinet::core::run_passive_campaign(cfg);
  cfg.eclipse_gates_beacons = true;
  const auto gated = sinet::core::run_passive_campaign(cfg);
  EXPECT_LT(gated.beacons_transmitted, open.beacons_transmitted);
  EXPECT_GT(gated.beacons_transmitted, 0u);
}

TEST(Sun, EclipseFractionValidation) {
  KeplerianElements kep;
  const Tle tle = make_tle("E", 94001, kep, julian_from_civil(2025, 3, 20));
  const Sgp4 prop(tle);
  EXPECT_THROW(eclipse_fraction(prop, tle.epoch_jd, tle.epoch_jd, 30.0),
               std::invalid_argument);
  EXPECT_THROW(
      eclipse_fraction(prop, tle.epoch_jd, tle.epoch_jd + 1.0, 0.0),
      std::invalid_argument);
}

}  // namespace
