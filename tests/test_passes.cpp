// Pass prediction: window detection, refinement, merging, gap statistics.
#include <gtest/gtest.h>

#include <cmath>

#include "orbit/passes.h"
#include "orbit/time.h"
#include "orbit/tle.h"

namespace {

using namespace sinet::orbit;

Tle polar_tle(double altitude_km = 550.0) {
  KeplerianElements kep;
  kep.altitude_km = altitude_km;
  kep.eccentricity = 0.0005;
  kep.inclination_deg = 97.6;  // sun-synchronous-like: covers all latitudes
  return make_tle("POLAR", 91000, kep, julian_from_civil(2025, 3, 1));
}

const Geodetic kHongKong{22.32, 114.17, 0.05};

TEST(Passes, FindsPassesWithinADay) {
  const Tle tle = polar_tle();
  const Sgp4 prop(tle);
  const JulianDate start = tle.epoch_jd;
  const auto windows = predict_passes(prop, kHongKong, start, start + 1.0);
  // A 550 km polar orbit yields roughly 2-6 visible passes per day at
  // mid latitude.
  EXPECT_GE(windows.size(), 2u);
  EXPECT_LE(windows.size(), 8u);
}

TEST(Passes, WindowsAreOrderedAndDisjoint) {
  const Tle tle = polar_tle();
  const Sgp4 prop(tle);
  const JulianDate start = tle.epoch_jd;
  const auto windows = predict_passes(prop, kHongKong, start, start + 2.0);
  for (std::size_t i = 0; i < windows.size(); ++i) {
    EXPECT_LT(windows[i].aos_jd, windows[i].los_jd);
    EXPECT_GE(windows[i].tca_jd, windows[i].aos_jd);
    EXPECT_LE(windows[i].tca_jd, windows[i].los_jd);
    if (i > 0) {
      EXPECT_GT(windows[i].aos_jd, windows[i - 1].los_jd);
    }
  }
}

TEST(Passes, DurationsArePhysical) {
  const Tle tle = polar_tle();
  const Sgp4 prop(tle);
  const auto windows =
      predict_passes(prop, kHongKong, tle.epoch_jd, tle.epoch_jd + 2.0);
  ASSERT_FALSE(windows.empty());
  for (const ContactWindow& w : windows) {
    // LEO passes above the horizon last between ~1 and ~13 minutes.
    EXPECT_GT(w.duration_s(), 30.0);
    EXPECT_LT(w.duration_s(), 16.0 * 60.0);
    EXPECT_GT(w.max_elevation_deg, 0.0);
    EXPECT_LE(w.max_elevation_deg, 90.0);
  }
}

TEST(Passes, ElevationAboveMaskInsideWindow) {
  const Tle tle = polar_tle();
  const Sgp4 prop(tle);
  PassPredictionOptions opts;
  opts.min_elevation_deg = 10.0;
  const auto windows = predict_passes(prop, kHongKong, tle.epoch_jd,
                                      tle.epoch_jd + 2.0, opts);
  for (const ContactWindow& w : windows) {
    const auto samples = sample_pass(prop, kHongKong, w, 10.0);
    for (std::size_t i = 1; i + 1 < samples.size(); ++i)
      EXPECT_GE(samples[i].look.elevation_deg, 10.0 - 0.5);
  }
}

TEST(Passes, HigherMaskGivesFewerShorterWindows) {
  const Tle tle = polar_tle();
  const Sgp4 prop(tle);
  PassPredictionOptions lo, hi;
  lo.min_elevation_deg = 0.0;
  hi.min_elevation_deg = 20.0;
  const auto w0 = predict_passes(prop, kHongKong, tle.epoch_jd,
                                 tle.epoch_jd + 3.0, lo);
  const auto w20 = predict_passes(prop, kHongKong, tle.epoch_jd,
                                  tle.epoch_jd + 3.0, hi);
  EXPECT_GE(w0.size(), w20.size());
  double d0 = 0.0, d20 = 0.0;
  for (const auto& w : w0) d0 += w.duration_s();
  for (const auto& w : w20) d20 += w.duration_s();
  EXPECT_GT(d0, d20);
}

TEST(Passes, RefinementIsTight) {
  const Tle tle = polar_tle();
  const Sgp4 prop(tle);
  PassPredictionOptions opts;
  opts.refine_tolerance_s = 0.5;
  const auto windows = predict_passes(prop, kHongKong, tle.epoch_jd,
                                      tle.epoch_jd + 1.0, opts);
  ASSERT_FALSE(windows.empty());
  // Elevation at AOS/LOS should be within a small band around the mask.
  for (const ContactWindow& w : windows) {
    const auto at_aos = sample_geometry(prop, kHongKong, w.aos_jd);
    const auto at_los = sample_geometry(prop, kHongKong, w.los_jd);
    EXPECT_NEAR(at_aos.look.elevation_deg, 0.0, 0.2);
    EXPECT_NEAR(at_los.look.elevation_deg, 0.0, 0.2);
  }
}

TEST(Passes, InvalidArguments) {
  const Tle tle = polar_tle();
  const Sgp4 prop(tle);
  EXPECT_THROW(
      predict_passes(prop, kHongKong, tle.epoch_jd, tle.epoch_jd - 1.0),
      std::invalid_argument);
  PassPredictionOptions opts;
  opts.coarse_step_s = 0.0;
  EXPECT_THROW(predict_passes(prop, kHongKong, tle.epoch_jd,
                              tle.epoch_jd + 1.0, opts),
               std::invalid_argument);
}

TEST(Passes, SamplePassCoversWindow) {
  const Tle tle = polar_tle();
  const Sgp4 prop(tle);
  const auto windows =
      predict_passes(prop, kHongKong, tle.epoch_jd, tle.epoch_jd + 1.0);
  ASSERT_FALSE(windows.empty());
  const auto samples = sample_pass(prop, kHongKong, windows[0], 5.0);
  EXPECT_GE(samples.size(),
            static_cast<std::size_t>(windows[0].duration_s() / 5.0));
  EXPECT_NEAR(samples.front().jd, windows[0].aos_jd, 1e-9);
  EXPECT_NEAR(samples.back().jd, windows[0].los_jd, 1e-9);
  EXPECT_THROW(sample_pass(prop, kHongKong, windows[0], 0.0),
               std::invalid_argument);
}

TEST(Passes, SamplePassExactMultipleHasNoDuplicateTerminal) {
  const Tle tle = polar_tle();
  const Sgp4 prop(tle);
  const auto windows =
      predict_passes(prop, kHongKong, tle.epoch_jd, tle.epoch_jd + 1.0);
  ASSERT_FALSE(windows.empty());

  // Force a window whose duration is an exact multiple of the step: the
  // grid's last point coincides with LOS and must not be emitted twice.
  const double step_s = 5.0;
  ContactWindow w = windows[0];
  w.los_jd = w.aos_jd + (100.0 * step_s) / kSecondsPerDay;
  const auto samples = sample_pass(prop, kHongKong, w, step_s);
  EXPECT_EQ(samples.size(), 101u);
  EXPECT_NEAR(samples.front().jd, w.aos_jd, 1e-12);
  EXPECT_NEAR(samples.back().jd, w.los_jd, 1e-12);
  for (std::size_t i = 1; i < samples.size(); ++i) {
    const double dt_s = (samples[i].jd - samples[i - 1].jd) * kSecondsPerDay;
    EXPECT_GT(dt_s, 0.5 * step_s) << "near-duplicate sample at i=" << i;
  }
}

TEST(MergeWindows, OverlapsMerge) {
  std::vector<ContactWindow> ws(3);
  ws[0] = {100.0, 100.01, 100.005, 30.0};
  ws[1] = {100.008, 100.02, 100.015, 50.0};  // overlaps ws[0]
  ws[2] = {100.05, 100.06, 100.055, 20.0};
  const auto merged = merge_windows(ws);
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_DOUBLE_EQ(merged[0].aos_jd, 100.0);
  EXPECT_DOUBLE_EQ(merged[0].los_jd, 100.02);
  EXPECT_DOUBLE_EQ(merged[0].max_elevation_deg, 50.0);
}

TEST(MergeWindows, UnsortedInputHandled) {
  std::vector<ContactWindow> ws(2);
  ws[0] = {200.5, 200.6, 200.55, 10.0};
  ws[1] = {200.1, 200.2, 200.15, 20.0};
  const auto merged = merge_windows(ws);
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_LT(merged[0].aos_jd, merged[1].aos_jd);
}

TEST(DailyVisibility, CountsMergedTime) {
  std::vector<ContactWindow> ws(2);
  // Two 0.01-day windows inside a 1-day span = 0.02 days visible.
  ws[0] = {300.1, 300.11, 300.105, 45.0};
  ws[1] = {300.5, 300.51, 300.505, 45.0};
  const double per_day = daily_visible_seconds(ws, 300.0, 301.0);
  EXPECT_NEAR(per_day, 0.02 * kSecondsPerDay, 1.0);
  EXPECT_THROW(daily_visible_seconds(ws, 301.0, 300.0),
               std::invalid_argument);
}

TEST(DailyVisibility, TruncatesAtSpanEdges) {
  std::vector<ContactWindow> ws(1);
  ws[0] = {299.95, 300.05, 300.0, 45.0};  // straddles span start
  const double per_day = daily_visible_seconds(ws, 300.0, 301.0);
  EXPECT_NEAR(per_day, 0.05 * kSecondsPerDay, 1.0);
}

TEST(ContactGaps, ComputedBetweenMergedWindows) {
  std::vector<ContactWindow> ws(3);
  ws[0] = {400.0, 400.01, 400.005, 10.0};
  ws[1] = {400.02, 400.03, 400.025, 10.0};
  ws[2] = {400.06, 400.07, 400.065, 10.0};
  const auto gaps = contact_gaps_s(ws);
  ASSERT_EQ(gaps.size(), 2u);
  EXPECT_NEAR(gaps[0], 0.01 * kSecondsPerDay, 0.5);
  EXPECT_NEAR(gaps[1], 0.03 * kSecondsPerDay, 0.5);
  EXPECT_TRUE(contact_gaps_s({}).empty());
}

}  // namespace
