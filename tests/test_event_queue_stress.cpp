// Randomized stress tests for the event queue: behavior is checked
// against a simple reference model (sorted vector), and determinism is
// verified across runs.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "sim/event_queue.h"
#include "sim/rng.h"

namespace {

using sinet::sim::EventQueue;
using sinet::sim::Rng;

/// Reference model: (time, id) pairs executed in (time, insertion) order.
struct RefModel {
  struct Entry {
    double time;
    int id;
    bool cancelled = false;
  };
  std::vector<Entry> entries;

  void schedule(double t, int id) { entries.push_back({t, id}); }
  bool cancel(int id) {
    for (Entry& e : entries)
      if (e.id == id && !e.cancelled) {
        e.cancelled = true;
        return true;
      }
    return false;
  }
  std::vector<int> execution_order() const {
    std::vector<std::size_t> idx;
    for (std::size_t i = 0; i < entries.size(); ++i)
      if (!entries[i].cancelled) idx.push_back(i);
    std::stable_sort(idx.begin(), idx.end(),
                     [&](std::size_t a, std::size_t b) {
                       return entries[a].time < entries[b].time;
                     });
    std::vector<int> order;
    for (const std::size_t i : idx) order.push_back(entries[i].id);
    return order;
  }
};

TEST(EventQueueStress, MatchesReferenceModelUnderRandomLoad) {
  for (const std::uint64_t seed : {1u, 7u, 42u, 1234u}) {
    Rng rng(seed);
    EventQueue q;
    RefModel ref;
    std::vector<int> executed;
    std::vector<sinet::sim::EventHandle> handles;

    for (int i = 0; i < 400; ++i) {
      // Random times, deliberately with collisions (quantized grid).
      const double t = static_cast<double>(rng.uniform_int(0, 50));
      handles.push_back(
          q.schedule_at(t, [&executed, i] { executed.push_back(i); }));
      ref.schedule(t, i);
    }
    // Cancel a random third of them.
    for (int i = 0; i < 130; ++i) {
      const auto victim = static_cast<int>(rng.uniform_int(0, 399));
      const bool q_ok = q.cancel(handles[victim]);
      const bool ref_ok = ref.cancel(victim);
      EXPECT_EQ(q_ok, ref_ok) << "victim " << victim;
    }
    q.run_all();
    EXPECT_EQ(executed, ref.execution_order()) << "seed " << seed;
  }
}

TEST(EventQueueStress, ClockIsMonotonicThroughChainedSchedules) {
  EventQueue q;
  Rng rng(99);
  std::vector<double> observed;
  // Events that schedule more events at random future offsets.
  std::function<void(int)> spawn = [&](int depth) {
    observed.push_back(q.now());
    if (depth <= 0) return;
    const int fanout = static_cast<int>(rng.uniform_int(1, 2));
    for (int i = 0; i < fanout; ++i) {
      const double delay = rng.uniform(0.0, 5.0);
      q.schedule_in(delay, [&spawn, depth] { spawn(depth - 1); });
    }
  };
  q.schedule_at(0.0, [&spawn] { spawn(12); });
  q.run_all();
  for (std::size_t i = 1; i < observed.size(); ++i)
    EXPECT_GE(observed[i], observed[i - 1]);
  EXPECT_GT(observed.size(), 5u);
}

TEST(EventQueueStress, RunUntilInChunksEqualsRunAll) {
  auto build = [](EventQueue& q, std::vector<int>& order) {
    Rng rng(5);
    for (int i = 0; i < 200; ++i) {
      const double t = rng.uniform(0.0, 100.0);
      q.schedule_at(t, [&order, i] { order.push_back(i); });
    }
  };
  EventQueue q1, q2;
  std::vector<int> all_at_once, chunked;
  build(q1, all_at_once);
  build(q2, chunked);
  q1.run_all();
  for (double t = 10.0; t <= 110.0; t += 10.0) q2.run_until(t);
  EXPECT_EQ(all_at_once, chunked);
}

TEST(EventQueueStress, CancelDuringExecution) {
  EventQueue q;
  int fired = 0;
  sinet::sim::EventHandle later = 0;
  q.schedule_at(1.0, [&] {
    ++fired;
    q.cancel(later);  // cancel a not-yet-fired event from inside another
  });
  later = q.schedule_at(2.0, [&] { fired += 100; });
  q.schedule_at(3.0, [&] { ++fired; });
  q.run_all();
  EXPECT_EQ(fired, 2);
}

TEST(EventQueueStress, ManyEventsDrainCompletely) {
  EventQueue q;
  std::size_t count = 0;
  for (int i = 0; i < 20000; ++i)
    q.schedule_at(static_cast<double>(i % 777), [&count] { ++count; });
  EXPECT_EQ(q.pending(), 20000u);
  q.run_all();
  EXPECT_EQ(count, 20000u);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueueStress, MillionPendingEventsStayBoundedAndTruthful) {
  // Population-scale backstop: a million pending events, half of them
  // cancelled mid-flight. The memory gauge must track the bookkeeping
  // (entries + handle sets, no hidden per-event blowup) and empty() must
  // stay truthful through lazy tombstone purging.
  constexpr int kEvents = 1'000'000;
  EventQueue q;
  std::size_t fired = 0;
  std::vector<sinet::sim::EventHandle> handles;
  handles.reserve(kEvents);
  for (int i = 0; i < kEvents; ++i)
    handles.push_back(q.schedule_at(static_cast<double>(i % 9973),
                                    [&fired] { ++fired; }));
  EXPECT_EQ(q.pending(), static_cast<std::size_t>(kEvents));
  EXPECT_EQ(q.max_pending(), static_cast<std::size_t>(kEvents));
  const std::size_t full_bytes = q.approx_memory_bytes();
  EXPECT_GT(full_bytes, static_cast<std::size_t>(kEvents) * 8);
  // Bookkeeping only: well under 1 KiB per pending event.
  EXPECT_LT(full_bytes, static_cast<std::size_t>(kEvents) * 1024);

  for (int i = 0; i < kEvents; i += 2) EXPECT_TRUE(q.cancel(handles[i]));
  EXPECT_EQ(q.pending(), static_cast<std::size_t>(kEvents) / 2);
  EXPECT_FALSE(q.empty());

  q.run_all();
  EXPECT_EQ(fired, static_cast<std::size_t>(kEvents) / 2);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.pending(), 0u);
  // Tombstones and heap entries are gone after the drain.
  EXPECT_LT(q.approx_memory_bytes(), full_bytes / 4);
}

TEST(EventQueueStress, ChainKeepsOnePendingEntryForMillionTicks) {
  // The batching primitive behind the per-satellite timelines: a chain
  // of a million ticks holds ONE pending heap entry, not a million.
  constexpr std::size_t kTicks = 1'000'000;
  EventQueue q;
  std::vector<double> times;
  times.reserve(kTicks);
  for (std::size_t i = 0; i < kTicks; ++i)
    times.push_back(static_cast<double>(i) * 0.25);
  std::size_t visited = 0;
  bool in_order = true;
  q.schedule_chain(times, [&](std::size_t i) {
    in_order = in_order && (i == visited);
    ++visited;
  });
  EXPECT_EQ(q.pending(), 1u);
  EXPECT_EQ(q.max_pending(), 1u);
  q.run_all();
  EXPECT_EQ(visited, kTicks);
  EXPECT_TRUE(in_order);
  EXPECT_EQ(q.max_pending(), 1u) << "a chain must never fan out";
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueStress, ChainRejectsUnsortedTimes) {
  EventQueue q;
  EXPECT_THROW(q.schedule_chain({2.0, 1.0}, [](std::size_t) {}),
               std::invalid_argument);
  EXPECT_EQ(q.schedule_chain({}, [](std::size_t) {}),
            sinet::sim::kInvalidEvent);
}

}  // namespace
