// OLS regression and path-loss-exponent fitting.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "channel/path_loss.h"
#include "sim/rng.h"
#include "stats/regression.h"

namespace {

using namespace sinet::stats;

TEST(FitLine, RecoversExactLine) {
  std::vector<double> x, y;
  for (int i = 0; i < 20; ++i) {
    x.push_back(i);
    y.push_back(3.0 - 2.5 * i);
  }
  const LinearFit fit = fit_line(x, y);
  EXPECT_NEAR(fit.slope, -2.5, 1e-12);
  EXPECT_NEAR(fit.intercept, 3.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
  EXPECT_NEAR(fit.predict(10.0), 3.0 - 25.0, 1e-12);
  EXPECT_EQ(fit.n, 20u);
}

TEST(FitLine, NoisyDataStillCloseWithLowerR2) {
  sinet::sim::Rng rng(1);
  std::vector<double> x, y;
  for (int i = 0; i < 500; ++i) {
    x.push_back(i * 0.1);
    y.push_back(1.0 + 0.7 * i * 0.1 + rng.normal(0.0, 1.0));
  }
  const LinearFit fit = fit_line(x, y);
  EXPECT_NEAR(fit.slope, 0.7, 0.05);
  EXPECT_NEAR(fit.intercept, 1.0, 0.6);
  EXPECT_GT(fit.r_squared, 0.8);
  EXPECT_LT(fit.r_squared, 1.0);
}

TEST(FitLine, InvalidInputsThrow) {
  const std::vector<double> one{1.0};
  const std::vector<double> two{1.0, 2.0};
  const std::vector<double> same{3.0, 3.0};
  EXPECT_THROW(fit_line(one, one), std::invalid_argument);
  EXPECT_THROW(fit_line(one, two), std::invalid_argument);
  EXPECT_THROW(fit_line(same, two), std::invalid_argument);
}

TEST(PathLossExponent, FreeSpaceGivesTwo) {
  // Synthesize pure free-space RSSI samples: exponent must come out 2.
  std::vector<double> d, rssi;
  for (double km = 400.0; km <= 3000.0; km += 100.0) {
    d.push_back(km);
    rssi.push_back(20.0 - sinet::channel::free_space_path_loss_db(km, 433e6));
  }
  EXPECT_NEAR(fit_path_loss_exponent(d, rssi), 2.0, 1e-9);
}

TEST(PathLossExponent, RobustToShadowingNoise) {
  sinet::sim::Rng rng(2);
  std::vector<double> d, rssi;
  for (int i = 0; i < 2000; ++i) {
    const double km = rng.uniform(500.0, 3000.0);
    d.push_back(km);
    rssi.push_back(20.0 -
                   sinet::channel::free_space_path_loss_db(km, 433e6) +
                   rng.normal(0.0, 3.0));
  }
  EXPECT_NEAR(fit_path_loss_exponent(d, rssi), 2.0, 0.15);
}

TEST(PathLossExponent, InvalidDistanceThrows) {
  const std::vector<double> d{1.0, 0.0};
  const std::vector<double> r{-100.0, -101.0};
  EXPECT_THROW(fit_path_loss_exponent(d, r), std::invalid_argument);
  const std::vector<double> d2{1.0};
  EXPECT_THROW(fit_path_loss_exponent(d2, r), std::invalid_argument);
}

}  // namespace
