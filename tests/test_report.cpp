// Report/table rendering tests.
#include <gtest/gtest.h>

#include "core/report.h"

namespace {

using namespace sinet::core;

TEST(Table, RendersAlignedColumns) {
  Table t({"Name", "Value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22.5"});
  const std::string out = t.render();
  // Header, separator, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  EXPECT_NE(out.find("Name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  // Columns align: "1" and "22.5" start at the same offset.
  const auto lines_start = out.find("alpha");
  (void)lines_start;
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"A", "B"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(t.add_row({"1", "2", "3"}), std::invalid_argument);
  EXPECT_EQ(t.rows(), 0u);
}

TEST(Table, EmptyHeadersThrow) {
  EXPECT_THROW(Table{std::vector<std::string>{}}, std::invalid_argument);
}

TEST(Table, MarkdownRendering) {
  Table t({"Name", "Val"});
  t.add_row({"pipe|cell", "1"});
  const std::string md = t.render_markdown();
  EXPECT_NE(md.find("| Name | Val |"), std::string::npos);
  EXPECT_NE(md.find("|---|---|"), std::string::npos);
  EXPECT_NE(md.find("pipe\\|cell"), std::string::npos);
  EXPECT_EQ(std::count(md.begin(), md.end(), '\n'), 3);
}

TEST(Fmt, NumbersAndPercent) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(10.0, 0), "10");
  EXPECT_EQ(fmt_pct(0.914, 1), "91.4%");
  EXPECT_EQ(fmt_pct(1.0, 0), "100%");
}

TEST(PaperVsMeasured, ContainsBothValues) {
  const std::string s =
      paper_vs_measured("reliability", "91%", "89.7%");
  EXPECT_NE(s.find("paper=91%"), std::string::npos);
  EXPECT_NE(s.find("measured=89.7%"), std::string::npos);
  EXPECT_NE(s.find("reliability"), std::string::npos);
}

TEST(Banner, ContainsIdAndTitle) {
  const std::string b = experiment_banner("Fig 4a", "Contact durations");
  EXPECT_NE(b.find("Fig 4a"), std::string::npos);
  EXPECT_NE(b.find("Contact durations"), std::string::npos);
  EXPECT_NE(b.find("===="), std::string::npos);
}

}  // namespace
