file(REMOVE_RECURSE
  "CMakeFiles/test_sgp4_sweep.dir/test_sgp4_sweep.cpp.o"
  "CMakeFiles/test_sgp4_sweep.dir/test_sgp4_sweep.cpp.o.d"
  "test_sgp4_sweep"
  "test_sgp4_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sgp4_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
