# Empty compiler generated dependencies file for test_sgp4_sweep.
# This may be replaced when dependencies are built.
