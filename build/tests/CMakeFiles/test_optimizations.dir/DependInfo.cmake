
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_optimizations.cpp" "tests/CMakeFiles/test_optimizations.dir/test_optimizations.cpp.o" "gcc" "tests/CMakeFiles/test_optimizations.dir/test_optimizations.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sinet_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sinet_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sinet_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sinet_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sinet_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sinet_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sinet_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sinet_orbit.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sinet_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sinet_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
