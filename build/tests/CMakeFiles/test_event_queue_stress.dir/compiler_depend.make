# Empty compiler generated dependencies file for test_event_queue_stress.
# This may be replaced when dependencies are built.
