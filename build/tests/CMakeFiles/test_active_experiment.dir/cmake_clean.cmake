file(REMOVE_RECURSE
  "CMakeFiles/test_active_experiment.dir/test_active_experiment.cpp.o"
  "CMakeFiles/test_active_experiment.dir/test_active_experiment.cpp.o.d"
  "test_active_experiment"
  "test_active_experiment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_active_experiment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
