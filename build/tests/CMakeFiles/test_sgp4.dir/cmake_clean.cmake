file(REMOVE_RECURSE
  "CMakeFiles/test_sgp4.dir/test_sgp4.cpp.o"
  "CMakeFiles/test_sgp4.dir/test_sgp4.cpp.o.d"
  "test_sgp4"
  "test_sgp4.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sgp4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
