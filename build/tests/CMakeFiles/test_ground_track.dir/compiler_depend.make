# Empty compiler generated dependencies file for test_ground_track.
# This may be replaced when dependencies are built.
