file(REMOVE_RECURSE
  "CMakeFiles/test_ground_track.dir/test_ground_track.cpp.o"
  "CMakeFiles/test_ground_track.dir/test_ground_track.cpp.o.d"
  "test_ground_track"
  "test_ground_track.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ground_track.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
