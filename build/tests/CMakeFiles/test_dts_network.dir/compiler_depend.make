# Empty compiler generated dependencies file for test_dts_network.
# This may be replaced when dependencies are built.
