file(REMOVE_RECURSE
  "CMakeFiles/test_dts_network.dir/test_dts_network.cpp.o"
  "CMakeFiles/test_dts_network.dir/test_dts_network.cpp.o.d"
  "test_dts_network"
  "test_dts_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dts_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
