# Empty dependencies file for test_tle_catalog.
# This may be replaced when dependencies are built.
