file(REMOVE_RECURSE
  "CMakeFiles/test_tle_catalog.dir/test_tle_catalog.cpp.o"
  "CMakeFiles/test_tle_catalog.dir/test_tle_catalog.cpp.o.d"
  "test_tle_catalog"
  "test_tle_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tle_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
