file(REMOVE_RECURSE
  "CMakeFiles/test_lorawan.dir/test_lorawan.cpp.o"
  "CMakeFiles/test_lorawan.dir/test_lorawan.cpp.o.d"
  "test_lorawan"
  "test_lorawan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lorawan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
