# Empty compiler generated dependencies file for test_lorawan.
# This may be replaced when dependencies are built.
