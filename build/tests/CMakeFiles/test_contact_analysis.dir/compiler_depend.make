# Empty compiler generated dependencies file for test_contact_analysis.
# This may be replaced when dependencies are built.
