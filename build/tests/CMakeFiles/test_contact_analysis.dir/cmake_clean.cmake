file(REMOVE_RECURSE
  "CMakeFiles/test_contact_analysis.dir/test_contact_analysis.cpp.o"
  "CMakeFiles/test_contact_analysis.dir/test_contact_analysis.cpp.o.d"
  "test_contact_analysis"
  "test_contact_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_contact_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
