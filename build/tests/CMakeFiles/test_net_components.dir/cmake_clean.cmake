file(REMOVE_RECURSE
  "CMakeFiles/test_net_components.dir/test_net_components.cpp.o"
  "CMakeFiles/test_net_components.dir/test_net_components.cpp.o.d"
  "test_net_components"
  "test_net_components.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
