# Empty dependencies file for test_net_components.
# This may be replaced when dependencies are built.
