file(REMOVE_RECURSE
  "CMakeFiles/test_frames_geodetic.dir/test_frames_geodetic.cpp.o"
  "CMakeFiles/test_frames_geodetic.dir/test_frames_geodetic.cpp.o.d"
  "test_frames_geodetic"
  "test_frames_geodetic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_frames_geodetic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
