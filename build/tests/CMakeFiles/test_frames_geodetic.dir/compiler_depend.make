# Empty compiler generated dependencies file for test_frames_geodetic.
# This may be replaced when dependencies are built.
