file(REMOVE_RECURSE
  "CMakeFiles/test_orbit_time.dir/test_orbit_time.cpp.o"
  "CMakeFiles/test_orbit_time.dir/test_orbit_time.cpp.o.d"
  "test_orbit_time"
  "test_orbit_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_orbit_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
