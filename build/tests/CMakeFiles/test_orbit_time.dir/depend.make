# Empty dependencies file for test_orbit_time.
# This may be replaced when dependencies are built.
