file(REMOVE_RECURSE
  "CMakeFiles/test_nbiot.dir/test_nbiot.cpp.o"
  "CMakeFiles/test_nbiot.dir/test_nbiot.cpp.o.d"
  "test_nbiot"
  "test_nbiot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nbiot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
