file(REMOVE_RECURSE
  "CMakeFiles/test_passive_campaign.dir/test_passive_campaign.cpp.o"
  "CMakeFiles/test_passive_campaign.dir/test_passive_campaign.cpp.o.d"
  "test_passive_campaign"
  "test_passive_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_passive_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
