# Empty compiler generated dependencies file for test_passive_campaign.
# This may be replaced when dependencies are built.
