file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12a_payload.dir/bench_fig12a_payload.cpp.o"
  "CMakeFiles/bench_fig12a_payload.dir/bench_fig12a_payload.cpp.o.d"
  "bench_fig12a_payload"
  "bench_fig12a_payload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12a_payload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
