# Empty compiler generated dependencies file for bench_fig3c_rssi_distance.
# This may be replaced when dependencies are built.
