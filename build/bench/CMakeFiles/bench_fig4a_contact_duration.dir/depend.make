# Empty dependencies file for bench_fig4a_contact_duration.
# This may be replaced when dependencies are built.
