# Empty dependencies file for bench_table3_constellations.
# This may be replaced when dependencies are built.
