file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_constellations.dir/bench_table3_constellations.cpp.o"
  "CMakeFiles/bench_table3_constellations.dir/bench_table3_constellations.cpp.o.d"
  "bench_table3_constellations"
  "bench_table3_constellations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_constellations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
