# Empty dependencies file for bench_fig4b_contact_interval.
# This may be replaced when dependencies are built.
