file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4b_contact_interval.dir/bench_fig4b_contact_interval.cpp.o"
  "CMakeFiles/bench_fig4b_contact_interval.dir/bench_fig4b_contact_interval.cpp.o.d"
  "bench_fig4b_contact_interval"
  "bench_fig4b_contact_interval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4b_contact_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
