# Empty compiler generated dependencies file for bench_fig5d_latency_breakdown.
# This may be replaced when dependencies are built.
