# Empty compiler generated dependencies file for bench_fig3d_beacon_loss.
# This may be replaced when dependencies are built.
