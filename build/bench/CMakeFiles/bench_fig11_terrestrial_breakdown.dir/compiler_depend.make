# Empty compiler generated dependencies file for bench_fig11_terrestrial_breakdown.
# This may be replaced when dependencies are built.
