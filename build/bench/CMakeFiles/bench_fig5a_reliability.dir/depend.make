# Empty dependencies file for bench_fig5a_reliability.
# This may be replaced when dependencies are built.
