file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5b_retx.dir/bench_fig5b_retx.cpp.o"
  "CMakeFiles/bench_fig5b_retx.dir/bench_fig5b_retx.cpp.o.d"
  "bench_fig5b_retx"
  "bench_fig5b_retx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5b_retx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
