# Empty dependencies file for bench_fig5b_retx.
# This may be replaced when dependencies are built.
