file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3a_presence.dir/bench_fig3a_presence.cpp.o"
  "CMakeFiles/bench_fig3a_presence.dir/bench_fig3a_presence.cpp.o.d"
  "bench_fig3a_presence"
  "bench_fig3a_presence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3a_presence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
