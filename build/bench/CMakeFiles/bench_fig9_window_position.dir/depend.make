# Empty dependencies file for bench_fig9_window_position.
# This may be replaced when dependencies are built.
