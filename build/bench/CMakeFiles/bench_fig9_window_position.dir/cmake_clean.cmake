file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_window_position.dir/bench_fig9_window_position.cpp.o"
  "CMakeFiles/bench_fig9_window_position.dir/bench_fig9_window_position.cpp.o.d"
  "bench_fig9_window_position"
  "bench_fig9_window_position.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_window_position.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
