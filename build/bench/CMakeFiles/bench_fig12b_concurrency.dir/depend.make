# Empty dependencies file for bench_fig12b_concurrency.
# This may be replaced when dependencies are built.
