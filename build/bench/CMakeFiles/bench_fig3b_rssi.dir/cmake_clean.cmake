file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3b_rssi.dir/bench_fig3b_rssi.cpp.o"
  "CMakeFiles/bench_fig3b_rssi.dir/bench_fig3b_rssi.cpp.o.d"
  "bench_fig3b_rssi"
  "bench_fig3b_rssi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3b_rssi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
