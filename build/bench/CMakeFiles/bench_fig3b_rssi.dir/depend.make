# Empty dependencies file for bench_fig3b_rssi.
# This may be replaced when dependencies are built.
