file(REMOVE_RECURSE
  "CMakeFiles/constellation_planner.dir/constellation_planner.cpp.o"
  "CMakeFiles/constellation_planner.dir/constellation_planner.cpp.o.d"
  "constellation_planner"
  "constellation_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/constellation_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
