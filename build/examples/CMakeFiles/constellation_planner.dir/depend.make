# Empty dependencies file for constellation_planner.
# This may be replaced when dependencies are built.
