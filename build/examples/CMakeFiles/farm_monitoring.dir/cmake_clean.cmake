file(REMOVE_RECURSE
  "CMakeFiles/farm_monitoring.dir/farm_monitoring.cpp.o"
  "CMakeFiles/farm_monitoring.dir/farm_monitoring.cpp.o.d"
  "farm_monitoring"
  "farm_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/farm_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
