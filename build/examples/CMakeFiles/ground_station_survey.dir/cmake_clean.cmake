file(REMOVE_RECURSE
  "CMakeFiles/ground_station_survey.dir/ground_station_survey.cpp.o"
  "CMakeFiles/ground_station_survey.dir/ground_station_survey.cpp.o.d"
  "ground_station_survey"
  "ground_station_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ground_station_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
