# Empty dependencies file for ground_station_survey.
# This may be replaced when dependencies are built.
