# Empty compiler generated dependencies file for technology_comparison.
# This may be replaced when dependencies are built.
