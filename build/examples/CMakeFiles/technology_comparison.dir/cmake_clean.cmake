file(REMOVE_RECURSE
  "CMakeFiles/technology_comparison.dir/technology_comparison.cpp.o"
  "CMakeFiles/technology_comparison.dir/technology_comparison.cpp.o.d"
  "technology_comparison"
  "technology_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/technology_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
