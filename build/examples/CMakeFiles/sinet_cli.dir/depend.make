# Empty dependencies file for sinet_cli.
# This may be replaced when dependencies are built.
