file(REMOVE_RECURSE
  "CMakeFiles/sinet_cli.dir/sinet_cli.cpp.o"
  "CMakeFiles/sinet_cli.dir/sinet_cli.cpp.o.d"
  "sinet"
  "sinet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sinet_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
