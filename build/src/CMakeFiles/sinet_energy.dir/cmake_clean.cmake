file(REMOVE_RECURSE
  "CMakeFiles/sinet_energy.dir/energy/battery.cpp.o"
  "CMakeFiles/sinet_energy.dir/energy/battery.cpp.o.d"
  "CMakeFiles/sinet_energy.dir/energy/duty_cycle.cpp.o"
  "CMakeFiles/sinet_energy.dir/energy/duty_cycle.cpp.o.d"
  "CMakeFiles/sinet_energy.dir/energy/power_model.cpp.o"
  "CMakeFiles/sinet_energy.dir/energy/power_model.cpp.o.d"
  "libsinet_energy.a"
  "libsinet_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sinet_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
