file(REMOVE_RECURSE
  "libsinet_energy.a"
)
