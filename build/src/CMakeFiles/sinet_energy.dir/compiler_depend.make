# Empty compiler generated dependencies file for sinet_energy.
# This may be replaced when dependencies are built.
