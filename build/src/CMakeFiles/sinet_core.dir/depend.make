# Empty dependencies file for sinet_core.
# This may be replaced when dependencies are built.
