file(REMOVE_RECURSE
  "libsinet_core.a"
)
