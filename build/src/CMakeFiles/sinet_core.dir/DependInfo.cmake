
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/active_experiment.cpp" "src/CMakeFiles/sinet_core.dir/core/active_experiment.cpp.o" "gcc" "src/CMakeFiles/sinet_core.dir/core/active_experiment.cpp.o.d"
  "/root/repo/src/core/availability.cpp" "src/CMakeFiles/sinet_core.dir/core/availability.cpp.o" "gcc" "src/CMakeFiles/sinet_core.dir/core/availability.cpp.o.d"
  "/root/repo/src/core/contact_analysis.cpp" "src/CMakeFiles/sinet_core.dir/core/contact_analysis.cpp.o" "gcc" "src/CMakeFiles/sinet_core.dir/core/contact_analysis.cpp.o.d"
  "/root/repo/src/core/passive_campaign.cpp" "src/CMakeFiles/sinet_core.dir/core/passive_campaign.cpp.o" "gcc" "src/CMakeFiles/sinet_core.dir/core/passive_campaign.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/CMakeFiles/sinet_core.dir/core/report.cpp.o" "gcc" "src/CMakeFiles/sinet_core.dir/core/report.cpp.o.d"
  "/root/repo/src/core/scenario.cpp" "src/CMakeFiles/sinet_core.dir/core/scenario.cpp.o" "gcc" "src/CMakeFiles/sinet_core.dir/core/scenario.cpp.o.d"
  "/root/repo/src/core/scheduler.cpp" "src/CMakeFiles/sinet_core.dir/core/scheduler.cpp.o" "gcc" "src/CMakeFiles/sinet_core.dir/core/scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sinet_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sinet_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sinet_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sinet_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sinet_orbit.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sinet_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sinet_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sinet_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sinet_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
