file(REMOVE_RECURSE
  "CMakeFiles/sinet_core.dir/core/active_experiment.cpp.o"
  "CMakeFiles/sinet_core.dir/core/active_experiment.cpp.o.d"
  "CMakeFiles/sinet_core.dir/core/availability.cpp.o"
  "CMakeFiles/sinet_core.dir/core/availability.cpp.o.d"
  "CMakeFiles/sinet_core.dir/core/contact_analysis.cpp.o"
  "CMakeFiles/sinet_core.dir/core/contact_analysis.cpp.o.d"
  "CMakeFiles/sinet_core.dir/core/passive_campaign.cpp.o"
  "CMakeFiles/sinet_core.dir/core/passive_campaign.cpp.o.d"
  "CMakeFiles/sinet_core.dir/core/report.cpp.o"
  "CMakeFiles/sinet_core.dir/core/report.cpp.o.d"
  "CMakeFiles/sinet_core.dir/core/scenario.cpp.o"
  "CMakeFiles/sinet_core.dir/core/scenario.cpp.o.d"
  "CMakeFiles/sinet_core.dir/core/scheduler.cpp.o"
  "CMakeFiles/sinet_core.dir/core/scheduler.cpp.o.d"
  "libsinet_core.a"
  "libsinet_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sinet_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
