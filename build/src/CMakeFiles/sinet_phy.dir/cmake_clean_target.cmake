file(REMOVE_RECURSE
  "libsinet_phy.a"
)
