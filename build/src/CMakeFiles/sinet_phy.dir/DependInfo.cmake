
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/phy/doppler.cpp" "src/CMakeFiles/sinet_phy.dir/phy/doppler.cpp.o" "gcc" "src/CMakeFiles/sinet_phy.dir/phy/doppler.cpp.o.d"
  "/root/repo/src/phy/error_model.cpp" "src/CMakeFiles/sinet_phy.dir/phy/error_model.cpp.o" "gcc" "src/CMakeFiles/sinet_phy.dir/phy/error_model.cpp.o.d"
  "/root/repo/src/phy/link_budget.cpp" "src/CMakeFiles/sinet_phy.dir/phy/link_budget.cpp.o" "gcc" "src/CMakeFiles/sinet_phy.dir/phy/link_budget.cpp.o.d"
  "/root/repo/src/phy/lora.cpp" "src/CMakeFiles/sinet_phy.dir/phy/lora.cpp.o" "gcc" "src/CMakeFiles/sinet_phy.dir/phy/lora.cpp.o.d"
  "/root/repo/src/phy/nbiot.cpp" "src/CMakeFiles/sinet_phy.dir/phy/nbiot.cpp.o" "gcc" "src/CMakeFiles/sinet_phy.dir/phy/nbiot.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sinet_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sinet_orbit.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sinet_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
