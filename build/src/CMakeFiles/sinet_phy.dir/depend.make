# Empty dependencies file for sinet_phy.
# This may be replaced when dependencies are built.
