file(REMOVE_RECURSE
  "CMakeFiles/sinet_phy.dir/phy/doppler.cpp.o"
  "CMakeFiles/sinet_phy.dir/phy/doppler.cpp.o.d"
  "CMakeFiles/sinet_phy.dir/phy/error_model.cpp.o"
  "CMakeFiles/sinet_phy.dir/phy/error_model.cpp.o.d"
  "CMakeFiles/sinet_phy.dir/phy/link_budget.cpp.o"
  "CMakeFiles/sinet_phy.dir/phy/link_budget.cpp.o.d"
  "CMakeFiles/sinet_phy.dir/phy/lora.cpp.o"
  "CMakeFiles/sinet_phy.dir/phy/lora.cpp.o.d"
  "CMakeFiles/sinet_phy.dir/phy/nbiot.cpp.o"
  "CMakeFiles/sinet_phy.dir/phy/nbiot.cpp.o.d"
  "libsinet_phy.a"
  "libsinet_phy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sinet_phy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
