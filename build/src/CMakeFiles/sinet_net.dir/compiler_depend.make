# Empty compiler generated dependencies file for sinet_net.
# This may be replaced when dependencies are built.
