file(REMOVE_RECURSE
  "libsinet_net.a"
)
