file(REMOVE_RECURSE
  "CMakeFiles/sinet_net.dir/net/backhaul.cpp.o"
  "CMakeFiles/sinet_net.dir/net/backhaul.cpp.o.d"
  "CMakeFiles/sinet_net.dir/net/dts_network.cpp.o"
  "CMakeFiles/sinet_net.dir/net/dts_network.cpp.o.d"
  "CMakeFiles/sinet_net.dir/net/ground_station.cpp.o"
  "CMakeFiles/sinet_net.dir/net/ground_station.cpp.o.d"
  "CMakeFiles/sinet_net.dir/net/lorawan.cpp.o"
  "CMakeFiles/sinet_net.dir/net/lorawan.cpp.o.d"
  "CMakeFiles/sinet_net.dir/net/mac.cpp.o"
  "CMakeFiles/sinet_net.dir/net/mac.cpp.o.d"
  "CMakeFiles/sinet_net.dir/net/satellite.cpp.o"
  "CMakeFiles/sinet_net.dir/net/satellite.cpp.o.d"
  "libsinet_net.a"
  "libsinet_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sinet_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
