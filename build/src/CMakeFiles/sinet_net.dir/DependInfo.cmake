
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/backhaul.cpp" "src/CMakeFiles/sinet_net.dir/net/backhaul.cpp.o" "gcc" "src/CMakeFiles/sinet_net.dir/net/backhaul.cpp.o.d"
  "/root/repo/src/net/dts_network.cpp" "src/CMakeFiles/sinet_net.dir/net/dts_network.cpp.o" "gcc" "src/CMakeFiles/sinet_net.dir/net/dts_network.cpp.o.d"
  "/root/repo/src/net/ground_station.cpp" "src/CMakeFiles/sinet_net.dir/net/ground_station.cpp.o" "gcc" "src/CMakeFiles/sinet_net.dir/net/ground_station.cpp.o.d"
  "/root/repo/src/net/lorawan.cpp" "src/CMakeFiles/sinet_net.dir/net/lorawan.cpp.o" "gcc" "src/CMakeFiles/sinet_net.dir/net/lorawan.cpp.o.d"
  "/root/repo/src/net/mac.cpp" "src/CMakeFiles/sinet_net.dir/net/mac.cpp.o" "gcc" "src/CMakeFiles/sinet_net.dir/net/mac.cpp.o.d"
  "/root/repo/src/net/satellite.cpp" "src/CMakeFiles/sinet_net.dir/net/satellite.cpp.o" "gcc" "src/CMakeFiles/sinet_net.dir/net/satellite.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sinet_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sinet_orbit.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sinet_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sinet_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sinet_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sinet_energy.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
