# Empty compiler generated dependencies file for sinet_sim.
# This may be replaced when dependencies are built.
