file(REMOVE_RECURSE
  "libsinet_sim.a"
)
