file(REMOVE_RECURSE
  "CMakeFiles/sinet_sim.dir/sim/event_queue.cpp.o"
  "CMakeFiles/sinet_sim.dir/sim/event_queue.cpp.o.d"
  "CMakeFiles/sinet_sim.dir/sim/rng.cpp.o"
  "CMakeFiles/sinet_sim.dir/sim/rng.cpp.o.d"
  "CMakeFiles/sinet_sim.dir/sim/simulation.cpp.o"
  "CMakeFiles/sinet_sim.dir/sim/simulation.cpp.o.d"
  "libsinet_sim.a"
  "libsinet_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sinet_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
