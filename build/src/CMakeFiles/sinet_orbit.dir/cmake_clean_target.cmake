file(REMOVE_RECURSE
  "libsinet_orbit.a"
)
