file(REMOVE_RECURSE
  "CMakeFiles/sinet_orbit.dir/orbit/constellation.cpp.o"
  "CMakeFiles/sinet_orbit.dir/orbit/constellation.cpp.o.d"
  "CMakeFiles/sinet_orbit.dir/orbit/frames.cpp.o"
  "CMakeFiles/sinet_orbit.dir/orbit/frames.cpp.o.d"
  "CMakeFiles/sinet_orbit.dir/orbit/geodetic.cpp.o"
  "CMakeFiles/sinet_orbit.dir/orbit/geodetic.cpp.o.d"
  "CMakeFiles/sinet_orbit.dir/orbit/ground_track.cpp.o"
  "CMakeFiles/sinet_orbit.dir/orbit/ground_track.cpp.o.d"
  "CMakeFiles/sinet_orbit.dir/orbit/look_angles.cpp.o"
  "CMakeFiles/sinet_orbit.dir/orbit/look_angles.cpp.o.d"
  "CMakeFiles/sinet_orbit.dir/orbit/passes.cpp.o"
  "CMakeFiles/sinet_orbit.dir/orbit/passes.cpp.o.d"
  "CMakeFiles/sinet_orbit.dir/orbit/sgp4.cpp.o"
  "CMakeFiles/sinet_orbit.dir/orbit/sgp4.cpp.o.d"
  "CMakeFiles/sinet_orbit.dir/orbit/sun.cpp.o"
  "CMakeFiles/sinet_orbit.dir/orbit/sun.cpp.o.d"
  "CMakeFiles/sinet_orbit.dir/orbit/time.cpp.o"
  "CMakeFiles/sinet_orbit.dir/orbit/time.cpp.o.d"
  "CMakeFiles/sinet_orbit.dir/orbit/tle.cpp.o"
  "CMakeFiles/sinet_orbit.dir/orbit/tle.cpp.o.d"
  "CMakeFiles/sinet_orbit.dir/orbit/tle_catalog.cpp.o"
  "CMakeFiles/sinet_orbit.dir/orbit/tle_catalog.cpp.o.d"
  "libsinet_orbit.a"
  "libsinet_orbit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sinet_orbit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
