# Empty dependencies file for sinet_orbit.
# This may be replaced when dependencies are built.
