
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/orbit/constellation.cpp" "src/CMakeFiles/sinet_orbit.dir/orbit/constellation.cpp.o" "gcc" "src/CMakeFiles/sinet_orbit.dir/orbit/constellation.cpp.o.d"
  "/root/repo/src/orbit/frames.cpp" "src/CMakeFiles/sinet_orbit.dir/orbit/frames.cpp.o" "gcc" "src/CMakeFiles/sinet_orbit.dir/orbit/frames.cpp.o.d"
  "/root/repo/src/orbit/geodetic.cpp" "src/CMakeFiles/sinet_orbit.dir/orbit/geodetic.cpp.o" "gcc" "src/CMakeFiles/sinet_orbit.dir/orbit/geodetic.cpp.o.d"
  "/root/repo/src/orbit/ground_track.cpp" "src/CMakeFiles/sinet_orbit.dir/orbit/ground_track.cpp.o" "gcc" "src/CMakeFiles/sinet_orbit.dir/orbit/ground_track.cpp.o.d"
  "/root/repo/src/orbit/look_angles.cpp" "src/CMakeFiles/sinet_orbit.dir/orbit/look_angles.cpp.o" "gcc" "src/CMakeFiles/sinet_orbit.dir/orbit/look_angles.cpp.o.d"
  "/root/repo/src/orbit/passes.cpp" "src/CMakeFiles/sinet_orbit.dir/orbit/passes.cpp.o" "gcc" "src/CMakeFiles/sinet_orbit.dir/orbit/passes.cpp.o.d"
  "/root/repo/src/orbit/sgp4.cpp" "src/CMakeFiles/sinet_orbit.dir/orbit/sgp4.cpp.o" "gcc" "src/CMakeFiles/sinet_orbit.dir/orbit/sgp4.cpp.o.d"
  "/root/repo/src/orbit/sun.cpp" "src/CMakeFiles/sinet_orbit.dir/orbit/sun.cpp.o" "gcc" "src/CMakeFiles/sinet_orbit.dir/orbit/sun.cpp.o.d"
  "/root/repo/src/orbit/time.cpp" "src/CMakeFiles/sinet_orbit.dir/orbit/time.cpp.o" "gcc" "src/CMakeFiles/sinet_orbit.dir/orbit/time.cpp.o.d"
  "/root/repo/src/orbit/tle.cpp" "src/CMakeFiles/sinet_orbit.dir/orbit/tle.cpp.o" "gcc" "src/CMakeFiles/sinet_orbit.dir/orbit/tle.cpp.o.d"
  "/root/repo/src/orbit/tle_catalog.cpp" "src/CMakeFiles/sinet_orbit.dir/orbit/tle_catalog.cpp.o" "gcc" "src/CMakeFiles/sinet_orbit.dir/orbit/tle_catalog.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
