file(REMOVE_RECURSE
  "libsinet_trace.a"
)
