# Empty dependencies file for sinet_trace.
# This may be replaced when dependencies are built.
