file(REMOVE_RECURSE
  "CMakeFiles/sinet_trace.dir/trace/csv.cpp.o"
  "CMakeFiles/sinet_trace.dir/trace/csv.cpp.o.d"
  "CMakeFiles/sinet_trace.dir/trace/packet_trace.cpp.o"
  "CMakeFiles/sinet_trace.dir/trace/packet_trace.cpp.o.d"
  "libsinet_trace.a"
  "libsinet_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sinet_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
