file(REMOVE_RECURSE
  "libsinet_cost.a"
)
