# Empty dependencies file for sinet_cost.
# This may be replaced when dependencies are built.
