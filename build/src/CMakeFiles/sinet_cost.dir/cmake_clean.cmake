file(REMOVE_RECURSE
  "CMakeFiles/sinet_cost.dir/cost/cost_model.cpp.o"
  "CMakeFiles/sinet_cost.dir/cost/cost_model.cpp.o.d"
  "libsinet_cost.a"
  "libsinet_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sinet_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
