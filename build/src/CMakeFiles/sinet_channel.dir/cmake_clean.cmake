file(REMOVE_RECURSE
  "CMakeFiles/sinet_channel.dir/channel/antenna.cpp.o"
  "CMakeFiles/sinet_channel.dir/channel/antenna.cpp.o.d"
  "CMakeFiles/sinet_channel.dir/channel/fading.cpp.o"
  "CMakeFiles/sinet_channel.dir/channel/fading.cpp.o.d"
  "CMakeFiles/sinet_channel.dir/channel/noise.cpp.o"
  "CMakeFiles/sinet_channel.dir/channel/noise.cpp.o.d"
  "CMakeFiles/sinet_channel.dir/channel/path_loss.cpp.o"
  "CMakeFiles/sinet_channel.dir/channel/path_loss.cpp.o.d"
  "CMakeFiles/sinet_channel.dir/channel/weather.cpp.o"
  "CMakeFiles/sinet_channel.dir/channel/weather.cpp.o.d"
  "libsinet_channel.a"
  "libsinet_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sinet_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
