
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/channel/antenna.cpp" "src/CMakeFiles/sinet_channel.dir/channel/antenna.cpp.o" "gcc" "src/CMakeFiles/sinet_channel.dir/channel/antenna.cpp.o.d"
  "/root/repo/src/channel/fading.cpp" "src/CMakeFiles/sinet_channel.dir/channel/fading.cpp.o" "gcc" "src/CMakeFiles/sinet_channel.dir/channel/fading.cpp.o.d"
  "/root/repo/src/channel/noise.cpp" "src/CMakeFiles/sinet_channel.dir/channel/noise.cpp.o" "gcc" "src/CMakeFiles/sinet_channel.dir/channel/noise.cpp.o.d"
  "/root/repo/src/channel/path_loss.cpp" "src/CMakeFiles/sinet_channel.dir/channel/path_loss.cpp.o" "gcc" "src/CMakeFiles/sinet_channel.dir/channel/path_loss.cpp.o.d"
  "/root/repo/src/channel/weather.cpp" "src/CMakeFiles/sinet_channel.dir/channel/weather.cpp.o" "gcc" "src/CMakeFiles/sinet_channel.dir/channel/weather.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sinet_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
