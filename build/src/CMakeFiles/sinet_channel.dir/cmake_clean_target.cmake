file(REMOVE_RECURSE
  "libsinet_channel.a"
)
