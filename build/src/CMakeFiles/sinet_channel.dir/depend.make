# Empty dependencies file for sinet_channel.
# This may be replaced when dependencies are built.
