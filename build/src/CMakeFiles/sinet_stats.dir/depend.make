# Empty dependencies file for sinet_stats.
# This may be replaced when dependencies are built.
