file(REMOVE_RECURSE
  "libsinet_stats.a"
)
