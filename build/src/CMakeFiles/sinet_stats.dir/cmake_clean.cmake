file(REMOVE_RECURSE
  "CMakeFiles/sinet_stats.dir/stats/bootstrap.cpp.o"
  "CMakeFiles/sinet_stats.dir/stats/bootstrap.cpp.o.d"
  "CMakeFiles/sinet_stats.dir/stats/cdf.cpp.o"
  "CMakeFiles/sinet_stats.dir/stats/cdf.cpp.o.d"
  "CMakeFiles/sinet_stats.dir/stats/descriptive.cpp.o"
  "CMakeFiles/sinet_stats.dir/stats/descriptive.cpp.o.d"
  "CMakeFiles/sinet_stats.dir/stats/histogram.cpp.o"
  "CMakeFiles/sinet_stats.dir/stats/histogram.cpp.o.d"
  "CMakeFiles/sinet_stats.dir/stats/regression.cpp.o"
  "CMakeFiles/sinet_stats.dir/stats/regression.cpp.o.d"
  "libsinet_stats.a"
  "libsinet_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sinet_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
