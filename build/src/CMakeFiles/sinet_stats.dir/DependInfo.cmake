
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/bootstrap.cpp" "src/CMakeFiles/sinet_stats.dir/stats/bootstrap.cpp.o" "gcc" "src/CMakeFiles/sinet_stats.dir/stats/bootstrap.cpp.o.d"
  "/root/repo/src/stats/cdf.cpp" "src/CMakeFiles/sinet_stats.dir/stats/cdf.cpp.o" "gcc" "src/CMakeFiles/sinet_stats.dir/stats/cdf.cpp.o.d"
  "/root/repo/src/stats/descriptive.cpp" "src/CMakeFiles/sinet_stats.dir/stats/descriptive.cpp.o" "gcc" "src/CMakeFiles/sinet_stats.dir/stats/descriptive.cpp.o.d"
  "/root/repo/src/stats/histogram.cpp" "src/CMakeFiles/sinet_stats.dir/stats/histogram.cpp.o" "gcc" "src/CMakeFiles/sinet_stats.dir/stats/histogram.cpp.o.d"
  "/root/repo/src/stats/regression.cpp" "src/CMakeFiles/sinet_stats.dir/stats/regression.cpp.o" "gcc" "src/CMakeFiles/sinet_stats.dir/stats/regression.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sinet_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
