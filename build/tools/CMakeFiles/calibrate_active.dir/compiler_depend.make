# Empty compiler generated dependencies file for calibrate_active.
# This may be replaced when dependencies are built.
