file(REMOVE_RECURSE
  "CMakeFiles/calibrate_active.dir/calibrate_active.cpp.o"
  "CMakeFiles/calibrate_active.dir/calibrate_active.cpp.o.d"
  "calibrate_active"
  "calibrate_active.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calibrate_active.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
