# Empty compiler generated dependencies file for calibrate_channel.
# This may be replaced when dependencies are built.
