file(REMOVE_RECURSE
  "CMakeFiles/calibrate_channel.dir/calibrate_channel.cpp.o"
  "CMakeFiles/calibrate_channel.dir/calibrate_channel.cpp.o.d"
  "calibrate_channel"
  "calibrate_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calibrate_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
