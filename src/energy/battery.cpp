#include "energy/battery.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sinet::energy {

double lifetime_days(const Battery& battery, double average_power_mw) {
  if (average_power_mw <= 0.0)
    throw std::invalid_argument("lifetime_days: nonpositive power");
  const double hours = battery.energy_mwh() / average_power_mw;
  return hours / 24.0;
}

double remaining_fraction(const Battery& battery, double average_power_mw,
                          double days) {
  if (average_power_mw < 0.0 || days < 0.0)
    throw std::invalid_argument("remaining_fraction: negative input");
  const double used_mwh = average_power_mw * days * 24.0;
  const double frac = 1.0 - used_mwh / battery.energy_mwh();
  return std::clamp(frac, 0.0, 1.0);
}

double lifetime_days_with_self_discharge(
    const Battery& battery, double average_power_mw,
    double self_discharge_fraction_per_month) {
  if (average_power_mw <= 0.0)
    throw std::invalid_argument(
        "lifetime_days_with_self_discharge: nonpositive power");
  if (self_discharge_fraction_per_month < 0.0 ||
      self_discharge_fraction_per_month >= 1.0)
    throw std::invalid_argument(
        "lifetime_days_with_self_discharge: rate out of [0,1)");
  if (self_discharge_fraction_per_month == 0.0)
    return lifetime_days(battery, average_power_mw);
  // dQ/dt = -P - kQ with Q(0)=Q0 empties at t = ln(1 + k Q0 / P) / k.
  const double k_per_day =
      -std::log(1.0 - self_discharge_fraction_per_month) / 30.0;
  const double q0_mwh = battery.energy_mwh();
  const double p_mwh_per_day = average_power_mw * 24.0;
  return std::log(1.0 + k_per_day * q0_mwh / p_mwh_per_day) / k_per_day;
}

}  // namespace sinet::energy
