#include "energy/duty_cycle.h"

#include <stdexcept>

namespace sinet::energy {

namespace {
constexpr double kDayS = 86400.0;
}

ResidencyTracker terrestrial_daily_duty(const TerrestrialDutyParams& p) {
  if (p.report_interval_s <= 0.0)
    throw std::invalid_argument("terrestrial_daily_duty: bad interval");
  const double reports = kDayS / p.report_interval_s;
  ResidencyTracker t;
  const double tx = reports * p.tx_time_per_report_s;
  const double rx = reports * p.rx_time_per_report_s;
  const double standby = reports * p.standby_time_per_report_s;
  const double active = tx + rx + standby;
  if (active >= kDayS)
    throw std::invalid_argument(
        "terrestrial_daily_duty: active time exceeds a day");
  t.record(Mode::kTx, tx);
  t.record(Mode::kRx, rx);
  t.record(Mode::kStandby, standby);
  t.record(Mode::kSleep, kDayS - active);
  return t;
}

ResidencyTracker satellite_daily_duty(const SatelliteDutyParams& p) {
  if (p.report_interval_s <= 0.0 || p.mean_tx_attempts < 0.0)
    throw std::invalid_argument("satellite_daily_duty: bad params");
  if (p.rx_listen_fraction < 0.0 || p.rx_listen_fraction > 1.0)
    throw std::invalid_argument(
        "satellite_daily_duty: rx_listen_fraction out of [0,1]");
  const double reports = kDayS / p.report_interval_s;
  ResidencyTracker t;
  const double tx =
      reports * p.mean_tx_attempts * p.tx_time_per_attempt_s;
  const double rx = p.rx_listen_fraction * kDayS;
  if (tx + rx >= kDayS)
    throw std::invalid_argument(
        "satellite_daily_duty: active time exceeds a day");
  t.record(Mode::kTx, tx);
  t.record(Mode::kRx, rx);
  t.record(Mode::kSleep, kDayS - tx - rx);
  return t;
}

ResidencyTracker paper_fig11_terrestrial_duty() {
  // Calibrated to paper Fig 11: ~95% of wall time in sleep+standby while
  // Tx+Rx carry ~70% of the energy at the Fig 10 mode powers.
  ResidencyTracker t;
  t.record(Mode::kTx, 2300.0);
  t.record(Mode::kRx, 2200.0);
  t.record(Mode::kStandby, 1500.0);
  t.record(Mode::kSleep, kDayS - 2300.0 - 2200.0 - 1500.0);
  return t;
}

}  // namespace sinet::energy
