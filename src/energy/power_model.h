// Radio/MCU power-state model.
//
// Mode power draws are taken from the paper's own measurements: Fig 10
// for the terrestrial LoRaWAN node (Tx 1630 mW, Rx 265 mW, Standby 146 mW,
// Sleep 19.1 mW) and Sec 3.2/Fig 6 for the Tianqi satellite node (Tx
// 2.2x the terrestrial Tx; Rx kept on while waiting for passes; only
// sleep / MCU+Rx / MCU+Tx modes exist).
#pragma once

#include <array>
#include <string>

namespace sinet::energy {

enum class Mode : int { kSleep = 0, kStandby = 1, kRx = 2, kTx = 3 };
inline constexpr int kModeCount = 4;

[[nodiscard]] std::string to_string(Mode m);

/// Per-mode power draw in milliwatts.
struct PowerProfile {
  double sleep_mw = 0.0;
  double standby_mw = 0.0;
  double rx_mw = 0.0;
  double tx_mw = 0.0;
  bool has_standby = true;  ///< Tianqi nodes have no standby mode

  [[nodiscard]] double power_mw(Mode m) const;
};

/// Terrestrial LoRaWAN node profile (paper Fig 10).
[[nodiscard]] PowerProfile terrestrial_node_profile();

/// Tianqi satellite IoT node profile (paper Fig 6a: Tx = 2.2x terrestrial,
/// MCU stays powered in sleep, no standby mode).
[[nodiscard]] PowerProfile satellite_node_profile();

/// Accumulates time spent per mode and converts to energy.
class ResidencyTracker {
 public:
  /// Record `duration_s` seconds spent in `m`. Negative durations throw.
  void record(Mode m, double duration_s);

  [[nodiscard]] double seconds_in(Mode m) const;
  [[nodiscard]] double total_seconds() const noexcept;
  /// Fraction of total time in mode `m`; 0 when nothing recorded.
  [[nodiscard]] double time_fraction(Mode m) const;

  /// Energy consumed in mode `m` under `profile`, in milliwatt-hours.
  [[nodiscard]] double energy_mwh(Mode m, const PowerProfile& profile) const;
  [[nodiscard]] double total_energy_mwh(const PowerProfile& profile) const;
  /// Fraction of total energy attributable to mode `m`.
  [[nodiscard]] double energy_fraction(Mode m,
                                       const PowerProfile& profile) const;
  /// Time-averaged power draw (mW); 0 when nothing recorded.
  [[nodiscard]] double average_power_mw(const PowerProfile& profile) const;

  void reset() noexcept { seconds_.fill(0.0); }

 private:
  std::array<double, kModeCount> seconds_{};
};

}  // namespace sinet::energy
