// Battery capacity and lifetime estimation (paper Fig 6d).
#pragma once

namespace sinet::energy {

struct Battery {
  double capacity_mah = 5000.0;  ///< paper's "5,000" battery
  double nominal_voltage_v = 3.7;

  [[nodiscard]] double energy_mwh() const noexcept {
    return capacity_mah * nominal_voltage_v;
  }
};

/// Days a battery lasts at the given average power draw.
/// Throws std::invalid_argument for nonpositive power.
[[nodiscard]] double lifetime_days(const Battery& battery,
                                   double average_power_mw);

/// Remaining charge fraction after `days` at `average_power_mw` (clamped
/// to [0, 1]).
[[nodiscard]] double remaining_fraction(const Battery& battery,
                                        double average_power_mw, double days);

/// Lifetime including chemistry self-discharge: the cell loses
/// `self_discharge_fraction_per_month` of its *remaining* charge per
/// 30-day month on top of the load. Solved analytically from
/// dQ/dt = -P - k Q. For LiSOCl2 cells (typical IoT) k ~ 1-2%/month.
[[nodiscard]] double lifetime_days_with_self_discharge(
    const Battery& battery, double average_power_mw,
    double self_discharge_fraction_per_month = 0.01);

}  // namespace sinet::energy
