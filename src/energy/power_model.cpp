#include "energy/power_model.h"

#include <stdexcept>

namespace sinet::energy {

std::string to_string(Mode m) {
  switch (m) {
    case Mode::kSleep:
      return "sleep";
    case Mode::kStandby:
      return "standby";
    case Mode::kRx:
      return "rx";
    case Mode::kTx:
      return "tx";
  }
  return "unknown";
}

double PowerProfile::power_mw(Mode m) const {
  switch (m) {
    case Mode::kSleep:
      return sleep_mw;
    case Mode::kStandby:
      if (!has_standby)
        throw std::logic_error("PowerProfile: this node has no standby mode");
      return standby_mw;
    case Mode::kRx:
      return rx_mw;
    case Mode::kTx:
      return tx_mw;
  }
  throw std::invalid_argument("PowerProfile: unknown mode");
}

PowerProfile terrestrial_node_profile() {
  PowerProfile p;
  p.sleep_mw = 19.1;
  p.standby_mw = 146.0;
  p.rx_mw = 265.0;
  p.tx_mw = 1630.0;
  p.has_standby = true;
  return p;
}

PowerProfile satellite_node_profile() {
  PowerProfile p;
  // MCU remains powered in sleep (paper Sec 3.2), hence the higher floor.
  p.sleep_mw = 28.0;
  p.standby_mw = 0.0;
  p.has_standby = false;
  // MCU+Rx: the DtS receiver is a wideband 400 MHz front end that stays on
  // while monitoring for beacons.
  p.rx_mw = 340.0;
  // MCU+Tx: 2.2x the terrestrial Tx draw (paper Sec 3.2).
  p.tx_mw = 2.2 * 1630.0;
  return p;
}

void ResidencyTracker::record(Mode m, double duration_s) {
  if (duration_s < 0.0)
    throw std::invalid_argument("ResidencyTracker: negative duration");
  seconds_[static_cast<int>(m)] += duration_s;
}

double ResidencyTracker::seconds_in(Mode m) const {
  return seconds_[static_cast<int>(m)];
}

double ResidencyTracker::total_seconds() const noexcept {
  double total = 0.0;
  for (const double s : seconds_) total += s;
  return total;
}

double ResidencyTracker::time_fraction(Mode m) const {
  const double total = total_seconds();
  return total > 0.0 ? seconds_in(m) / total : 0.0;
}

double ResidencyTracker::energy_mwh(Mode m,
                                    const PowerProfile& profile) const {
  if (m == Mode::kStandby && !profile.has_standby) {
    return seconds_in(m) > 0.0
               ? throw std::logic_error(
                     "ResidencyTracker: standby time recorded for a node "
                     "without a standby mode")
               : 0.0;
  }
  return profile.power_mw(m) * seconds_in(m) / 3600.0;
}

double ResidencyTracker::total_energy_mwh(const PowerProfile& profile) const {
  double total = 0.0;
  for (int i = 0; i < kModeCount; ++i)
    total += energy_mwh(static_cast<Mode>(i), profile);
  return total;
}

double ResidencyTracker::energy_fraction(Mode m,
                                         const PowerProfile& profile) const {
  const double total = total_energy_mwh(profile);
  return total > 0.0 ? energy_mwh(m, profile) / total : 0.0;
}

double ResidencyTracker::average_power_mw(const PowerProfile& profile) const {
  const double total_s = total_seconds();
  return total_s > 0.0 ? total_energy_mwh(profile) * 3600.0 / total_s : 0.0;
}

}  // namespace sinet::energy
