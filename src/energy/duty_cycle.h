// Analytic duty-cycle builders for the energy comparison experiments.
//
// The protocol simulator (net/) tracks residencies exactly; these builders
// provide the closed-form daily duty profiles used by the Fig 6 / Fig 10 /
// Fig 11 benches, derived from the application workload (20-byte report
// every 30 minutes) and each system's operating discipline.
#pragma once

#include "energy/power_model.h"

namespace sinet::energy {

struct TerrestrialDutyParams {
  double report_interval_s = 1800.0;  ///< 20-byte report every 30 min
  double tx_time_per_report_s = 0.33; ///< SF10 ToA for ~20 B
  /// LoRaWAN class-A: two short Rx windows after each uplink.
  double rx_time_per_report_s = 0.4;
  /// Wake/measure/encode overhead spent in standby around each report.
  double standby_time_per_report_s = 2.0;
};

struct SatelliteDutyParams {
  double report_interval_s = 1800.0;
  /// Mean DtS attempts per report (ARQ; paper Fig 5b: ~1.7 on average).
  double mean_tx_attempts = 1.7;
  double tx_time_per_attempt_s = 0.37;  ///< SF10 ToA for 20 B + headers
  /// Fraction of the day the node holds MCU+Rx waiting for beacons. The
  /// paper attributes the battery gap mostly to this hang-on time: a node
  /// cannot predict effective windows, so the Rx radio idles through the
  /// (much longer) theoretical presence of the constellation.
  double rx_listen_fraction = 0.78;  ///< Tianqi theoretical ~18.5 h/day
};

/// Residency of one day (86,400 s) of terrestrial LoRaWAN operation.
[[nodiscard]] ResidencyTracker terrestrial_daily_duty(
    const TerrestrialDutyParams& p = {});

/// Residency of one day of Tianqi-node operation.
[[nodiscard]] ResidencyTracker satellite_daily_duty(
    const SatelliteDutyParams& p = {});

/// Residency reproducing the *measured* terrestrial breakdown of paper
/// Fig 11 (95% of time in sleep+standby, yet >70% of energy in Tx+Rx).
/// Note: that energy split implies far more radio airtime than the
/// 48-reports/day application alone generates — the deployed RAK nodes
/// evidently carried additional radio activity (join traffic, MAC
/// commands, sensing). This profile is calibrated to the figure, while
/// terrestrial_daily_duty() stays workload-derived; EXPERIMENTS.md
/// discusses the difference.
[[nodiscard]] ResidencyTracker paper_fig11_terrestrial_duty();

}  // namespace sinet::energy
