#include "net/mac.h"

#include <cmath>
#include <stdexcept>

namespace sinet::net {

std::vector<double> assign_subslots(std::size_t responders, double toa_s,
                                    double period_s, double guard_s,
                                    double lead_in_s) {
  if (toa_s <= 0.0 || period_s <= 0.0)
    throw std::invalid_argument("assign_subslots: nonpositive duration");
  if (guard_s < 0.0 || lead_in_s < 0.0)
    throw std::invalid_argument("assign_subslots: negative guard/lead-in");
  // Even a single transmission must fit: a slot starting at lead_in_s
  // ends at lead_in_s + toa_s, which may not spill past the period.
  if (lead_in_s + toa_s > period_s)
    throw std::invalid_argument(
        "assign_subslots: lead_in_s + toa_s exceeds period_s");
  const double pitch = toa_s + guard_s;
  // Largest k with lead_in_s + k*pitch + toa_s <= period_s; slot count is
  // k+1, so the last slot's transmission ends inside the period instead
  // of overrunning into the next beacon's lead-in.
  const double span = period_s - lead_in_s - toa_s;
  const auto slots_per_period =
      static_cast<std::size_t>(std::floor(span / pitch)) + 1;
  std::vector<double> offsets;
  offsets.reserve(responders);
  for (std::size_t i = 0; i < responders; ++i)
    offsets.push_back(lead_in_s +
                      static_cast<double>(i % slots_per_period) * pitch);
  return offsets;
}

bool survives_collisions(const Transmission& tx,
                         const std::vector<Transmission>& others,
                         const MacConfig& cfg) {
  for (const Transmission& o : others) {
    if (o.id == tx.id) continue;
    if (!tx.overlaps(o)) continue;
    if (tx.rssi_dbm - o.rssi_dbm < cfg.capture_threshold_db) return false;
  }
  return true;
}

std::vector<std::uint64_t> resolve_collisions(
    const std::vector<Transmission>& txs, const MacConfig& cfg) {
  std::vector<std::uint64_t> winners;
  for (const Transmission& tx : txs)
    if (survives_collisions(tx, txs, cfg)) winners.push_back(tx.id);
  return winners;
}

}  // namespace sinet::net
