// Beacon broadcasting configuration.
//
// Like terrestrial LoRa gateways, IoT satellites periodically broadcast
// beacons (paper Sec 2.2); nodes transmit uplink data only after decoding
// a beacon, which gates transmissions to usable link conditions (paper
// Appendix F, "High Beacon loss vs low application data loss").
#pragma once

namespace sinet::net {

struct BeaconConfig {
  double period_s = 10.0;    ///< beacon broadcast interval
  int payload_bytes = 24;    ///< beacon frame payload (id, ephemeris hints)
};

}  // namespace sinet::net
