// Population-scale batched DtS engine (internal to src/net).
//
// run_dts_network() dispatches here for DtsEngine::kBatched / kAuto. The
// engine restructures the legacy per-node-event simulator for fleets of
// millions of nodes under thousands of satellites:
//
//   * node state lives in struct-of-arrays storage (NodeStore): plain
//     parallel vectors of doubles/integers plus a compact run-list
//     packet buffer — no per-node std::deque, no per-node name string;
//   * reports are never scheduled as events: an activation min-heap of
//     (next_report_time, node) materializes every due report lazily at
//     the handler that could observe it, preserving the legacy
//     "reports before beacons at equal times" ordering;
//   * each satellite owns ONE chained timeline event (beacon ticks and
//     ground-station flushes merged in time order) via
//     sim::EventQueue::schedule_chain, so pending events stay O(sats)
//     instead of O(reports + ticks);
//   * at or below cfg.trace_node_threshold nodes the engine replays the
//     legacy RNG draw sequence exactly and emits a bit-identical
//     DtsNetworkResult (randomized parity suite: test_dts_scale.cpp);
//     above the threshold only nodes with queued reports are resolved
//     per beacon and all per-packet output streams into DtsAggregates.
#pragma once

#include <cstddef>

#include "net/dts_network.h"

namespace sinet::net {

/// Batched-engine entry point; same contract as run_dts_network().
[[nodiscard]] DtsNetworkResult run_dts_network_batched(
    const DtsNetworkConfig& cfg);

namespace detail {

/// Node population size across both config styles (nodes / fleet).
[[nodiscard]] std::size_t dts_node_count(const DtsNetworkConfig& cfg);

/// Materialize the config of node `i` (fleet prototype + site for fleet
/// configs). Only used on small-N paths — never called per node at scale.
[[nodiscard]] IotNodeConfig dts_node_config(const DtsNetworkConfig& cfg,
                                            std::size_t i);

/// Shared config validation (throws std::invalid_argument).
void validate_dts_config(const DtsNetworkConfig& cfg);

/// Tail exclusion actually applied to eligible-packet accounting:
/// cfg.aggregate_tail_exclusion_s clamped to half the run duration, so a
/// short probe run still reports a nonzero eligible population. Shared by
/// every engine (legacy, exact batched, sharded aggregate).
[[nodiscard]] double effective_tail_exclusion_s(const DtsNetworkConfig& cfg);

/// Derive the streaming aggregates from a full per-packet trace, so
/// trace-mode results (legacy engine included) expose the same
/// DtsAggregates surface as aggregate-mode runs. Does not touch
/// fleet_residency.
void aggregate_from_uplinks(const std::vector<trace::UplinkRecord>& uplinks,
                            double run_end_unix_s, double tail_exclusion_s,
                            DtsAggregates& agg);

}  // namespace detail

}  // namespace sinet::net
