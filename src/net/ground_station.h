// Ground-station site catalogs.
//
// Two kinds of ground stations appear in the study:
//  - the operator's downlink stations (Tianqi runs 12, all in China),
//    which receive the satellites' store-and-forward dumps; and
//  - the low-cost passive TinyGS measurement stations that this study
//    deployed at 8 cities (those live in core/scenario.h).
#pragma once

#include <string>
#include <vector>

#include "orbit/geodetic.h"

namespace sinet::net {

struct GroundStationSite {
  std::string name;
  orbit::Geodetic location;
  double min_elevation_deg = 5.0;  ///< downlink contact mask
};

/// The 12 Tianqi operator ground stations (paper Sec 2.3). Exact
/// coordinates are not published; we place stations at the operator's
/// publicly known teleport cities spread across China, which preserves
/// the delivery-delay geometry (all downlink capacity is in China).
[[nodiscard]] std::vector<GroundStationSite> tianqi_ground_stations();

}  // namespace sinet::net
