#include "net/satellite.h"

#include <stdexcept>

namespace sinet::net {

StoreAndForwardBuffer::StoreAndForwardBuffer(std::size_t capacity_packets,
                                             DropPolicy policy)
    : capacity_(capacity_packets), policy_(policy) {
  if (capacity_packets == 0)
    throw std::invalid_argument("StoreAndForwardBuffer: zero capacity");
}

bool StoreAndForwardBuffer::store(StoredPacket p) {
  if (full()) {
    ++drops_;
    if (policy_ == DropPolicy::kDropNewest) return false;
    buffer_.pop_front();  // kDropOldest: evict stalest, admit fresh
  }
  buffer_.push_back(std::move(p));
  if (buffer_.size() > peak_) peak_ = buffer_.size();
  return true;
}

std::vector<StoredPacket> StoreAndForwardBuffer::flush() {
  std::vector<StoredPacket> out(buffer_.begin(), buffer_.end());
  buffer_.clear();
  return out;
}

std::vector<StoredPacket> StoreAndForwardBuffer::flush_up_to(
    std::size_t max_packets) {
  const std::size_t n = std::min(max_packets, buffer_.size());
  std::vector<StoredPacket> out(buffer_.begin(), buffer_.begin() + n);
  buffer_.erase(buffer_.begin(), buffer_.begin() + n);
  return out;
}

}  // namespace sinet::net
