#include "net/lorawan.h"

#include <cmath>
#include <stdexcept>

#include "channel/noise.h"
#include "channel/path_loss.h"
#include "sim/rng.h"

namespace sinet::net {

double LorawanResult::delivered_fraction() const {
  if (uplinks.empty()) return 0.0;
  std::size_t ok = 0;
  for (const auto& u : uplinks) ok += u.delivered ? 1 : 0;
  return static_cast<double>(ok) / static_cast<double>(uplinks.size());
}

double LorawanResult::mean_latency_s() const {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& u : uplinks) {
    if (!u.delivered) continue;
    sum += u.end_to_end_s();
    ++n;
  }
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

double terrestrial_uplink_per(const LorawanConfig& cfg) {
  // Ground link budget: suburban path loss is FSPL plus a clutter margin.
  constexpr double kClutterLossDb = 20.0;
  const double fspl = channel::free_space_path_loss_db(
      cfg.gateway_distance_km, 868e6);
  const double rssi = cfg.node_tx_power_dbm + 2.0 /*antennas*/ - fspl -
                      kClutterLossDb;
  const double snr =
      rssi - channel::noise_floor_dbm(cfg.lora.bandwidth_hz, 6.0, 2.0);
  const phy::ErrorModel model(cfg.error_model);
  return model.packet_error_probability(snr, cfg.lora,
                                        cfg.report_payload_bytes);
}

LorawanResult run_lorawan(const LorawanConfig& cfg) {
  if (cfg.node_count <= 0 || cfg.duration_days <= 0.0)
    throw std::invalid_argument("run_lorawan: bad node count or duration");
  if (cfg.report_interval_s <= 0.0)
    throw std::invalid_argument("run_lorawan: bad report interval");

  LorawanResult result;
  result.uplink_per = terrestrial_uplink_per(cfg);
  const BackhaulModel backhaul(cfg.backhaul);
  const double toa = phy::time_on_air_s(cfg.lora, cfg.report_payload_bytes);
  const double duration_s = cfg.duration_days * 86400.0;

  sim::RngFactory rngs(cfg.seed);

  for (int node = 0; node < cfg.node_count; ++node) {
    sim::Rng rng = rngs.make("lorawan-node-" + std::to_string(node));
    energy::ResidencyTracker residency;
    std::uint64_t seq = 0;

    // Nodes stagger their reporting phase to avoid synchronized airtime.
    const double phase =
        cfg.report_interval_s * static_cast<double>(node) /
        static_cast<double>(cfg.node_count);

    for (double t = phase; t < duration_s; t += cfg.report_interval_s) {
      trace::UplinkRecord rec;
      rec.sequence = seq++;
      rec.node = "LoRaWAN-node-" + std::to_string(node + 1);
      rec.payload_bytes = cfg.report_payload_bytes;
      rec.generated_unix_s = t;
      rec.first_tx_unix_s = t;  // gateway always reachable: send at once

      double now = t;
      for (int attempt = 0; attempt <= cfg.max_retransmissions; ++attempt) {
        ++rec.dts_attempts;  // field reused: attempts over the air
        residency.record(energy::Mode::kTx, toa);
        // Class-A receive windows after each uplink.
        residency.record(energy::Mode::kRx, 0.4);
        residency.record(energy::Mode::kStandby, 0.7);
        now += toa;
        if (!rng.chance(result.uplink_per)) {
          rec.satellite_rx_unix_s = now;  // field reused: gateway rx time
          rec.server_rx_unix_s = now + backhaul.draw_delay_s(rng);
          rec.delivered = true;
          rec.via_satellite = "gateway";
          break;
        }
        now += 1.0 + rng.uniform() * 2.0;  // ARQ backoff before retry
      }
      const double active = now - t + 1.1;  // plus wake/measure overhead
      const double sleep = std::max(cfg.report_interval_s - active, 0.0);
      residency.record(energy::Mode::kSleep, sleep);
      result.uplinks.push_back(rec);
    }
    result.node_residency.push_back(residency);
  }
  return result;
}

}  // namespace sinet::net
