#include "net/dts_batch.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <queue>
#include <stdexcept>
#include <string>
#include <tuple>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/scoped_timer.h"
#include "orbit/frames.h"
#include "sim/rng.h"
#include "sim/shard.h"
#include "sim/simulation.h"
#include "sim/thread_pool.h"

namespace sinet::net {

namespace detail {

std::size_t dts_node_count(const DtsNetworkConfig& cfg) {
  return cfg.fleet.count > 0 ? cfg.fleet.count : cfg.nodes.size();
}

IotNodeConfig dts_node_config(const DtsNetworkConfig& cfg, std::size_t i) {
  if (cfg.fleet.count == 0) return cfg.nodes.at(i);
  IotNodeConfig nc = cfg.fleet.prototype;
  nc.name = cfg.fleet.prototype.name + "-" + std::to_string(i);
  nc.location = cfg.fleet.sites[i % cfg.fleet.sites.size()];
  return nc;
}

void validate_dts_config(const DtsNetworkConfig& cfg) {
  const bool fleet = cfg.fleet.count > 0;
  if (fleet && !cfg.nodes.empty())
    throw std::invalid_argument(
        "DtsNetwork: both nodes and fleet configured; pick one");
  if (fleet && cfg.fleet.sites.empty())
    throw std::invalid_argument("DtsNetwork: fleet without sites");
  if (!fleet && cfg.nodes.empty())
    throw std::invalid_argument("DtsNetwork: no IoT nodes configured");
  if (cfg.duration_days <= 0.0)
    throw std::invalid_argument("DtsNetwork: nonpositive duration");
  if (cfg.beacon.period_s <= 0.5)
    throw std::invalid_argument("DtsNetwork: beacon period too small");
  if (cfg.constellation.total_satellites() <= 0)
    throw std::invalid_argument("DtsNetwork: empty constellation");
  if (cfg.ground_stations.empty())
    throw std::invalid_argument("DtsNetwork: no ground stations");
  if (fleet) {
    if (cfg.fleet.prototype.report_interval_s <= 0.0)
      throw std::invalid_argument("DtsNetwork: bad report interval");
  } else {
    for (const IotNodeConfig& nc : cfg.nodes)
      if (nc.report_interval_s <= 0.0)
        throw std::invalid_argument("DtsNetwork: bad report interval");
  }
}

double effective_tail_exclusion_s(const DtsNetworkConfig& cfg) {
  // A probe run shorter than twice the configured exclusion would
  // otherwise classify every report as ineligible (eligible_generated
  // stuck at 0 — the scale_ablation 100k bug): cap the exclusion at half
  // the run so short runs keep a nonzero eligible population. Every
  // engine (legacy, exact batched, sharded) applies this same helper, so
  // cross-engine parity is preserved.
  return std::min(cfg.aggregate_tail_exclusion_s,
                  0.5 * cfg.duration_days * 86400.0);
}

void aggregate_from_uplinks(const std::vector<trace::UplinkRecord>& uplinks,
                            double run_end_unix_s, double tail_exclusion_s,
                            DtsAggregates& agg) {
  const double eligible_before = run_end_unix_s - tail_exclusion_s;
  for (const trace::UplinkRecord& u : uplinks) {
    ++agg.reports_generated;
    const bool eligible = u.generated_unix_s <= eligible_before;
    if (eligible) ++agg.eligible_generated;
    if (u.first_tx_unix_s >= 0.0) {
      const double w = u.first_tx_unix_s - u.generated_unix_s;
      agg.sum_wait_s += w;
      ++agg.wait_samples;
      agg.wait_s.add(w);
    }
    if (u.dts_attempts > 0)
      agg.attempts.add(static_cast<double>(u.dts_attempts));
    if (!u.delivered) continue;
    ++agg.reports_delivered;
    if (eligible) ++agg.eligible_delivered;
    const double e2e = u.end_to_end_s();
    agg.sum_end_to_end_s += e2e;
    agg.latency_s.add(e2e);
    if (u.first_tx_unix_s >= 0.0 && u.satellite_rx_unix_s >= 0.0) {
      agg.sum_dts_transfer_s += u.dts_transfer_s();
      agg.sum_delivery_s += u.delivery_s();
      ++agg.breakdown_samples;
    }
  }
}

}  // namespace detail

namespace {

using orbit::ContactWindow;
using orbit::JulianDate;

/// Key for grouping nodes that share a deployment location (identical to
/// the legacy engine's, so both engines produce the same location set in
/// the same order).
struct LocationKey {
  double lat, lon, alt;
  bool operator<(const LocationKey& o) const {
    return std::tie(lat, lon, alt) < std::tie(o.lat, o.lon, o.alt);
  }
};

LocationKey key_of(const orbit::Geodetic& g) {
  return {g.latitude_deg, g.longitude_deg, g.altitude_km};
}

constexpr std::uint32_t kNoActive = std::numeric_limits<std::uint32_t>::max();

/// Compact per-node report buffer. Sequences are admitted in strictly
/// increasing order and drained FIFO, so occupancy is almost always one
/// contiguous run [b0, e0); local drops open gaps, for which a second
/// inline run and a rare per-node overflow list (in NodeStore) cover the
/// general case. 32 bytes per node instead of a std::deque<AppPacket>.
struct BufferRuns {
  std::uint64_t b0 = 0, e0 = 0;  ///< oldest run, [b0, e0)
  std::uint64_t b1 = 0, e1 = 0;  ///< next run, valid when e1 > b1
};

/// Struct-of-arrays node state: parallel plain vectors indexed by node.
/// No per-node strings, deques or trackers — the only per-node heap
/// allocation at scale is the shared vectors themselves.
struct NodeStore {
  std::size_t count = 0;

  // Static per-node configuration.
  std::vector<std::uint32_t> loc;  ///< index into locations_
  std::vector<double> interval_s;
  std::vector<double> phase_s;
  std::vector<int> payload_bytes;
  std::vector<int> max_retx;
  std::vector<std::uint32_t> capacity;
  std::vector<channel::AntennaType> antenna;

  // Dynamic state.
  std::vector<double> next_report_s;  ///< accumulated, mirrors legacy loop
  std::vector<std::uint64_t> next_seq;
  std::vector<std::uint32_t> buf_size;
  std::vector<BufferRuns> runs;
  /// Extra (newer) runs for the rare node holding >2 disjoint runs.
  /// Shared across nodes, so the sharded engine guards it with
  /// overflow_mutex (see push_seq); single-threaded exact mode takes the
  /// same (uncontended) lock on the same rare path.
  std::unordered_map<std::uint64_t,
                     std::vector<std::pair<std::uint64_t, std::uint64_t>>>
      overflow;
  std::mutex overflow_mutex;
  std::vector<int> head_attempts;
  std::vector<std::uint8_t> head_stored;
  std::vector<double> head_first_tx_s;  ///< sim time; < 0 before any attempt
  std::vector<double> busy_until;
  std::vector<double> tx_seconds;

  void init(const DtsNetworkConfig& cfg,
            const std::vector<std::uint32_t>& node_loc) {
    count = detail::dts_node_count(cfg);
    loc = node_loc;
    interval_s.resize(count);
    phase_s.resize(count);
    payload_bytes.resize(count);
    max_retx.resize(count);
    capacity.resize(count);
    antenna.resize(count);
    const bool fleet = cfg.fleet.count > 0;
    const IotNodeConfig& proto = cfg.fleet.prototype;
    for (std::size_t n = 0; n < count; ++n) {
      const IotNodeConfig& nc = fleet ? proto : cfg.nodes[n];
      interval_s[n] = nc.report_interval_s;
      // Same de-synchronization phase as the legacy scheduler.
      phase_s[n] = std::fmod(60.0 * static_cast<double>(n),
                             nc.report_interval_s);
      payload_bytes[n] = nc.report_payload_bytes;
      max_retx[n] = nc.max_retransmissions;
      capacity[n] = static_cast<std::uint32_t>(std::min<std::size_t>(
          nc.buffer_capacity, std::numeric_limits<std::uint32_t>::max()));
      antenna[n] = nc.antenna;
    }
    next_report_s = phase_s;
    next_seq.assign(count, 0);
    buf_size.assign(count, 0);
    runs.assign(count, BufferRuns{});
    head_attempts.assign(count, 0);
    head_stored.assign(count, 0);
    head_first_tx_s.assign(count, -1.0);
    busy_until.assign(count, 0.0);
    tx_seconds.assign(count, 0.0);
  }

  [[nodiscard]] bool empty(std::size_t n) const { return buf_size[n] == 0; }
  [[nodiscard]] std::uint64_t front(std::size_t n) const {
    return runs[n].b0;
  }

  /// Admit `seq` (== next_seq[n] - 1) at the newest end. Returns false —
  /// a local drop — when the buffer is full.
  ///
  /// Concurrency: the sharded engine calls this from pool workers for
  /// DISJOINT node sets, so every per-node vector write is race-free.
  /// The one shared structure is the overflow map; by the run-ordering
  /// invariant (overflow[n] nonempty implies run1 is valid) it is only
  /// ever reachable behind the `r.e1 > r.b1` branch, so the map mutex is
  /// taken only on the rare >2-disjoint-runs path, never per push.
  bool push_seq(std::size_t n, std::uint64_t seq) {
    if (buf_size[n] >= capacity[n]) return false;
    BufferRuns& r = runs[n];
    if (r.e1 > r.b1) {
      std::lock_guard<std::mutex> lock(overflow_mutex);
      auto it = overflow.find(n);
      if (it != overflow.end() && !it->second.empty()) {
        auto& last = it->second.back();
        if (seq == last.second)
          ++last.second;
        else
          it->second.emplace_back(seq, seq + 1);
      } else if (seq == r.e1) {
        ++r.e1;
      } else {
        overflow[n].emplace_back(seq, seq + 1);
      }
    } else if (r.e0 > r.b0) {
      if (seq == r.e0) {
        ++r.e0;
      } else {
        r.b1 = seq;
        r.e1 = seq + 1;
      }
    } else {
      r.b0 = seq;
      r.e0 = seq + 1;
    }
    ++buf_size[n];
    return true;
  }

  void pop_front(std::size_t n) {
    BufferRuns& r = runs[n];
    ++r.b0;
    --buf_size[n];
    if (r.b0 < r.e0) return;
    // Oldest run drained: shift run1 down, pull from overflow if present.
    r.b0 = r.b1;
    r.e0 = r.e1;
    r.b1 = r.e1 = 0;
    if (r.e0 == r.b0) return;  // no run1 existed -> overflow empty
    std::lock_guard<std::mutex> lock(overflow_mutex);
    auto it = overflow.find(n);
    if (it != overflow.end() && !it->second.empty()) {
      r.b1 = it->second.front().first;
      r.e1 = it->second.front().second;
      it->second.erase(it->second.begin());
      if (it->second.empty()) overflow.erase(it);
    }
  }

  [[nodiscard]] std::size_t approx_bytes() const {
    std::size_t b = 0;
    b += loc.capacity() * sizeof(std::uint32_t);
    b += interval_s.capacity() * sizeof(double);
    b += phase_s.capacity() * sizeof(double);
    b += payload_bytes.capacity() * sizeof(int);
    b += max_retx.capacity() * sizeof(int);
    b += capacity.capacity() * sizeof(std::uint32_t);
    b += antenna.capacity() * sizeof(channel::AntennaType);
    b += next_report_s.capacity() * sizeof(double);
    b += next_seq.capacity() * sizeof(std::uint64_t);
    b += buf_size.capacity() * sizeof(std::uint32_t);
    b += runs.capacity() * sizeof(BufferRuns);
    b += head_attempts.capacity() * sizeof(int);
    b += head_stored.capacity() * sizeof(std::uint8_t);
    b += head_first_tx_s.capacity() * sizeof(double);
    b += busy_until.capacity() * sizeof(double);
    b += tx_seconds.capacity() * sizeof(double);
    return b;
  }
};

/// Exact-mode (trace) engine: at or below cfg.trace_node_threshold nodes
/// it replays the legacy RNG draw order bit-for-bit and emits a full
/// per-packet DtsNetworkResult. Population runs above the threshold go
/// to ShardSimulator below instead.
class BatchSimulator {
 public:
  explicit BatchSimulator(const DtsNetworkConfig& cfg)
      : cfg_(cfg),
        sim_(cfg.seed, orbit::julian_to_unix(cfg.start_jd)),
        error_model_(cfg.error_model),
        backhaul_(cfg.delivery_backhaul) {
    detail::validate_dts_config(cfg);
    sim_.attach_metrics(cfg_.metrics);
    build_satellites();
    build_nodes();
    predict_windows();
  }

  DtsNetworkResult run() {
    build_timelines();
    sim_.run_until(duration_s());
    materialize_reports(duration_s(), /*inclusive=*/false);
    return assemble_result();
  }

 private:
  [[nodiscard]] double duration_s() const {
    return cfg_.duration_days * 86400.0;
  }
  [[nodiscard]] JulianDate jd_at(sim::SimTime t) const {
    return cfg_.start_jd + t / orbit::kSecondsPerDay;
  }
  [[nodiscard]] channel::Weather weather_at(sim::SimTime t) const {
    if (cfg_.daily_weather.empty()) return channel::Weather::kSunny;
    const auto day = static_cast<std::size_t>(t / 86400.0);
    return cfg_.daily_weather[day % cfg_.daily_weather.size()];
  }
  /// Closed-form generation time of (node, seq). Only used where bit
  /// parity with the legacy engine is not observable (StoredPacket
  /// payloads and aggregate-mode eligibility/latency); trace records use
  /// the accumulated next_report_s, which matches the legacy scheduler's
  /// repeated-addition loop bit for bit.
  [[nodiscard]] double gen_time_s(std::size_t n, std::uint64_t seq) const {
    return nodes_.phase_s[n] +
           static_cast<double>(seq) * nodes_.interval_s[n];
  }

  void build_satellites() {
    tles_ = orbit::generate_tles(cfg_.constellation, cfg_.start_jd);
    satellites_.reserve(tles_.size());
    for (const orbit::Tle& tle : tles_) {
      satellites_.emplace_back(tle.name, cfg_.constellation.name, tle,
                               cfg_.satellite_buffer_capacity);
      satellites_.back().buffer = StoreAndForwardBuffer(
          cfg_.satellite_buffer_capacity, cfg_.satellite_drop_policy);
    }
  }

  void build_nodes() {
    const std::size_t count = detail::dts_node_count(cfg_);
    // Unique node locations, in first-appearance order (legacy order).
    std::map<LocationKey, std::size_t> loc_index;
    std::vector<std::uint32_t> node_loc;
    node_loc.reserve(count);
    if (cfg_.fleet.count > 0) {
      for (const orbit::Geodetic& site : cfg_.fleet.sites) {
        const LocationKey k = key_of(site);
        if (loc_index.emplace(k, locations_.size()).second)
          locations_.push_back(site);
      }
      const std::size_t sites = cfg_.fleet.sites.size();
      for (std::size_t n = 0; n < count; ++n)
        node_loc.push_back(static_cast<std::uint32_t>(
            loc_index.at(key_of(cfg_.fleet.sites[n % sites]))));
    } else {
      for (const IotNodeConfig& nc : cfg_.nodes) {
        const LocationKey k = key_of(nc.location);
        if (loc_index.emplace(k, locations_.size()).second)
          locations_.push_back(nc.location);
      }
      for (const IotNodeConfig& nc : cfg_.nodes)
        node_loc.push_back(static_cast<std::uint32_t>(
            loc_index.at(key_of(nc.location))));
    }
    nodes_.init(cfg_, node_loc);

    // Seed the activation heap with every node's first report time.
    for (std::size_t n = 0; n < count; ++n)
      if (nodes_.next_report_s[n] < duration_s())
        report_heap_.emplace(nodes_.next_report_s[n], n);

    records_.resize(count);
    node_names_.reserve(count);
    for (std::size_t n = 0; n < count; ++n)
      node_names_.push_back(detail::dts_node_config(cfg_, n).name);
  }

  void predict_windows() {
    orbit::PassPredictionOptions opts;
    opts.min_elevation_deg = cfg_.visibility_mask_deg;
    opts.coarse_step_s = cfg_.pass_scan_step_s;
    const JulianDate end_jd = cfg_.start_jd + cfg_.duration_days;

    node_windows_.assign(
        satellites_.size(),
        std::vector<std::vector<ContactWindow>>(locations_.size()));
    gs_windows_.assign(
        satellites_.size(),
        std::vector<std::vector<ContactWindow>>(cfg_.ground_stations.size()));

    std::vector<orbit::GridObserver> observers;
    observers.reserve(locations_.size() + cfg_.ground_stations.size());
    for (const orbit::Geodetic& loc : locations_)
      observers.push_back(orbit::GridObserver{loc});
    for (const GroundStationSite& gs : cfg_.ground_stations)
      observers.push_back(
          orbit::GridObserver{gs.location, gs.min_elevation_deg});

    auto windows = orbit::predict_passes_grid_cached(
        tles_, observers, cfg_.start_jd, end_jd, opts, cfg_.pass_threads,
        &orbit::ContactWindowCache::global(), cfg_.metrics);
    for (std::size_t s = 0; s < satellites_.size(); ++s) {
      for (std::size_t l = 0; l < locations_.size(); ++l)
        node_windows_[s][l] = std::move(windows[s][l]);
      for (std::size_t g = 0; g < cfg_.ground_stations.size(); ++g)
        gs_windows_[s][g] = std::move(windows[s][locations_.size() + g]);
    }

    window_cursor_.assign(satellites_.size(),
                          std::vector<std::uint32_t>(locations_.size(), 0));
    loc_geo_.assign(locations_.size(), LocGeo{});
    background_cache_.assign(
        satellites_.size(),
        {std::numeric_limits<std::uint64_t>::max(), 0.0});
  }

  /// One merged, time-sorted timeline per satellite: beacon ticks (built
  /// exactly like the legacy scheduler, deduped) and ground-station
  /// flush opportunities (kept in legacy insertion order at ties via
  /// stable_sort). The whole timeline is ONE chained queue event, so the
  /// pending set stays O(satellites) for the entire run.
  void build_timelines() {
    timeline_time_.resize(satellites_.size());
    timeline_is_flush_.resize(satellites_.size());
    for (std::size_t s = 0; s < satellites_.size(); ++s) {
      const double phase =
          cfg_.beacon.period_s * static_cast<double>(s * 29 % 97) / 97.0;
      std::vector<double> ticks;
      for (const auto& windows : node_windows_[s]) {
        for (const ContactWindow& w : windows) {
          const double a =
              (w.aos_jd - cfg_.start_jd) * orbit::kSecondsPerDay;
          const double b =
              (w.los_jd - cfg_.start_jd) * orbit::kSecondsPerDay;
          const double first =
              phase +
              std::ceil((a - phase) / cfg_.beacon.period_s) *
                  cfg_.beacon.period_s;
          for (double t = first; t <= b; t += cfg_.beacon.period_s)
            if (t >= 0.0 && t < duration_s()) ticks.push_back(t);
        }
      }
      std::sort(ticks.begin(), ticks.end());
      ticks.erase(std::unique(ticks.begin(), ticks.end()), ticks.end());

      std::vector<double> flushes;
      for (std::size_t g = 0; g < gs_windows_[s].size(); ++g) {
        for (const ContactWindow& w : gs_windows_[s][g]) {
          const double aos =
              (w.aos_jd - cfg_.start_jd) * orbit::kSecondsPerDay;
          const double los =
              (w.los_jd - cfg_.start_jd) * orbit::kSecondsPerDay;
          for (const double t : gs_flush_times(aos, los))
            if (t >= 0.0 && t < duration_s()) flushes.push_back(t);
        }
      }

      std::vector<double>& times = timeline_time_[s];
      std::vector<std::uint8_t>& kinds = timeline_is_flush_[s];
      times.reserve(ticks.size() + flushes.size());
      kinds.reserve(ticks.size() + flushes.size());
      for (const double t : ticks) {
        times.push_back(t);
        kinds.push_back(0);
      }
      for (const double t : flushes) {
        times.push_back(t);
        kinds.push_back(1);
      }
      // Beacon-before-flush at equal times, flushes keeping their
      // (gs, window) insertion order — both legacy-tie behaviors.
      std::vector<std::size_t> order(times.size());
      for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t a, std::size_t b) {
                         if (times[a] != times[b]) return times[a] < times[b];
                         return kinds[a] < kinds[b];
                       });
      std::vector<double> st(times.size());
      std::vector<std::uint8_t> sk(times.size());
      for (std::size_t i = 0; i < order.size(); ++i) {
        st[i] = times[order[i]];
        sk[i] = kinds[order[i]];
      }
      times = std::move(st);
      kinds = std::move(sk);

      if (!times.empty())
        sim_.events().schedule_chain(
            times, [this, s](std::size_t i) { on_timeline_entry(s, i); });
    }
  }

  void on_timeline_entry(std::size_t s, std::size_t i) {
    // Reports scheduled before beacons/flushes fire first at equal times
    // in the legacy engine; materializing due reports (inclusive) at
    // handler entry reproduces that phase order.
    materialize_reports(sim_.now(), /*inclusive=*/true);
    if (timeline_is_flush_[s][i])
      flush_satellite(s);
    else
      beacon_slot(s);
  }

  // --- report materialization ----------------------------------------

  void materialize_reports(double limit, bool inclusive) {
    while (!report_heap_.empty()) {
      const auto [t, n] = report_heap_.top();
      if (inclusive ? t > limit : t >= limit) break;
      report_heap_.pop();
      generate_report(n, t);
      nodes_.next_report_s[n] += nodes_.interval_s[n];
      if (nodes_.next_report_s[n] < duration_s())
        report_heap_.emplace(nodes_.next_report_s[n], n);
    }
  }

  void generate_report(std::size_t n, double t) {
    const std::uint64_t seq = nodes_.next_seq[n]++;
    trace::UplinkRecord rec;
    rec.sequence = seq;
    rec.node = node_names_[n];
    rec.payload_bytes = nodes_.payload_bytes[n];
    rec.generated_unix_s = sim_.epoch_unix_s() + t;
    records_[n].push_back(std::move(rec));
    if (!nodes_.push_seq(n, seq)) {
      ++local_drops_;
      return;  // record stays undelivered
    }
  }

  // --- beacon slot ----------------------------------------------------

  /// Per-(beacon tick) cached footprint geometry for one location.
  struct LocGeo {
    std::uint64_t stamp = 0;
    bool in_footprint = false;
    bool masked = false;
    orbit::PassSample geo;
    double doppler_rate = 0.0;
  };

  /// Lazily computed, per-tick cached visibility + geometry of `loc`
  /// from satellite `s`. Same-location nodes share one SGP4 propagation
  /// per tick instead of one per node; the per-(sat, loc) window cursor
  /// replaces the legacy linear in_window() scan (timeline times are
  /// non-decreasing per satellite, windows are chronological and
  /// disjoint, and the jd >= aos && jd <= los predicate is unchanged).
  const LocGeo& loc_geometry(std::size_t s, std::size_t loc, JulianDate jd) {
    LocGeo& g = loc_geo_[loc];
    if (g.stamp == tick_stamp_) return g;
    g.stamp = tick_stamp_;
    const std::vector<ContactWindow>& ws = node_windows_[s][loc];
    std::uint32_t& cur = window_cursor_[s][loc];
    while (cur < ws.size() && jd > ws[cur].los_jd) ++cur;
    g.in_footprint =
        cur < ws.size() && jd >= ws[cur].aos_jd && jd <= ws[cur].los_jd;
    if (!g.in_footprint) return g;
    g.geo = orbit::sample_geometry(satellites_[s].propagator,
                                   locations_[loc], jd);
    g.masked = g.geo.look.elevation_deg < cfg_.visibility_mask_deg;
    if (g.masked) return g;
    // Doppler rate via one-second finite difference (legacy computes the
    // second sample only for unmasked geometry; keep that order).
    const orbit::PassSample geo1 = orbit::sample_geometry(
        satellites_[s].propagator, locations_[loc],
        jd + 1.0 / orbit::kSecondsPerDay);
    const double f0 = orbit::doppler_shift_hz(g.geo.look.range_rate_km_s,
                                              cfg_.downlink.carrier_hz);
    const double f1 = orbit::doppler_shift_hz(geo1.look.range_rate_km_s,
                                              cfg_.downlink.carrier_hz);
    g.doppler_rate = f1 - f0;
    return g;
  }

  struct SlotResponder {
    std::size_t node;
    Transmission tx;
    phy::LoraParams uplink_params;
    phy::LinkState uplink_state;
    orbit::LookAngles look;
    double doppler_rate;
  };

  /// One node's response decision for the current beacon. Replicates the
  /// legacy per-node draw order exactly: beacon link state, beacon
  /// decode, then (only for a node with a queued report and a free
  /// radio) the uplink link state.
  void consider_node(std::size_t s, std::size_t n, sim::SimTime now,
                     JulianDate jd, channel::Weather wx, sim::Rng& rng,
                     std::vector<SlotResponder>& responders) {
    const std::size_t loc = nodes_.loc[n];
    const LocGeo& g = loc_geometry(s, loc, jd);
    if (!g.in_footprint || g.masked) return;

    phy::LinkConfig beacon_cfg = cfg_.downlink;
    beacon_cfg.rx_antenna = nodes_.antenna[n];
    const phy::LinkState beacon_state = phy::draw_link_state(
        beacon_cfg, g.geo.look, wx, g.doppler_rate, rng);
    if (!error_model_.receive(beacon_state, beacon_cfg.lora,
                              cfg_.beacon.payload_bytes, rng))
      return;
    ++counters_.beacons_heard;
    if (nodes_.empty(n)) return;
    if (now < nodes_.busy_until[n]) return;  // half-duplex: radio busy

    phy::LinkConfig up_cfg = cfg_.uplink;
    up_cfg.tx_antenna = nodes_.antenna[n];
    if (cfg_.adaptive_sf) {
      up_cfg.lora.sf = phy::choose_spreading_factor(
          beacon_state.snr_db + cfg_.adr_uplink_advantage_db, 6.0);
    }
    phy::LinkState up_state =
        phy::draw_link_state(up_cfg, g.geo.look, wx, g.doppler_rate, rng);
    if (cfg_.doppler_precompensation) {
      up_state.doppler.shift_hz *= cfg_.precompensation_residual;
      up_state.doppler.rate_hz_per_s *= cfg_.precompensation_residual;
    }

    SlotResponder r;
    r.node = n;
    r.uplink_params = up_cfg.lora;
    r.uplink_state = up_state;
    r.look = g.geo.look;
    r.doppler_rate = g.doppler_rate;
    responders.push_back(r);
  }

  void beacon_slot(std::size_t s) {
    ++counters_.beacons_sent;
    ++tick_stamp_;
    const sim::SimTime now = sim_.now();
    const JulianDate jd = jd_at(now);
    const channel::Weather wx = weather_at(now);
    sim::Rng& rng = sim_.rng("dts-channel");

    std::vector<SlotResponder> responders;
    // Bit-parity mode: every node is considered in index order, so the
    // RNG stream advances exactly as in the legacy engine (including
    // the beacon draw for nodes with nothing to send).
    for (std::size_t n = 0; n < nodes_.count; ++n)
      consider_node(s, n, now, jd, wx, rng, responders);
    if (responders.empty()) return;

    double max_toa = 0.0;
    for (const SlotResponder& r : responders) {
      const double toa = phy::time_on_air_s(r.uplink_params,
                                            nodes_.payload_bytes[r.node]);
      max_toa = std::max(max_toa, toa);
    }
    std::vector<double> offsets;
    if (cfg_.uplink_access == UplinkAccess::kScheduled) {
      offsets = assign_subslots(responders.size(), max_toa,
                                cfg_.beacon.period_s);
    } else {
      offsets.reserve(responders.size());
      for (std::size_t i = 0; i < responders.size(); ++i)
        offsets.push_back(
            rng.uniform(0.3, std::max(0.4, cfg_.beacon.period_s * 0.6)));
    }
    for (std::size_t i = 0; i < responders.size(); ++i) {
      SlotResponder& r = responders[i];
      const double toa = phy::time_on_air_s(r.uplink_params,
                                            nodes_.payload_bytes[r.node]);
      r.tx = Transmission{static_cast<std::uint64_t>(r.node),
                          now + offsets[i], now + offsets[i] + toa,
                          r.uplink_state.rssi_dbm};
      nodes_.busy_until[r.node] = r.tx.end;
    }

    std::vector<Transmission> txs;
    txs.reserve(responders.size());
    for (const SlotResponder& r : responders) txs.push_back(r.tx);

    for (const SlotResponder& r : responders)
      process_uplink(s, r, txs, responders.size(), wx, rng);
  }

  void process_uplink(std::size_t s, const SlotResponder& r,
                      const std::vector<Transmission>& all_txs,
                      std::size_t concurrency, channel::Weather wx,
                      sim::Rng& rng) {
    const std::size_t n = r.node;
    if (nodes_.empty(n)) return;  // popped by an earlier event
    const std::uint64_t seq = nodes_.front(n);
    const int conc = static_cast<int>(std::min<std::size_t>(
        concurrency, static_cast<std::size_t>(std::numeric_limits<int>::max())));

    ++counters_.uplink_attempts;
    nodes_.tx_seconds[n] += r.tx.end - r.tx.start;
    ++nodes_.head_attempts[n];
    trace::UplinkRecord* rec = &record_at(n, seq);
    ++rec->dts_attempts;
    rec->max_concurrent_tx = std::max(rec->max_concurrent_tx, conc);
    const double tx_start_unix = sim_.epoch_unix_s() + r.tx.start;
    if (rec->first_tx_unix_s < 0.0 || tx_start_unix < rec->first_tx_unix_s)
      rec->first_tx_unix_s = tx_start_unix;
    if (nodes_.head_first_tx_s[n] < 0.0)
      nodes_.head_first_tx_s[n] = r.tx.start;

    bool survived = survives_collisions(r.tx, all_txs, cfg_.mac);
    if (!survived) ++counters_.uplinks_collided;

    if (survived && cfg_.congestion.enabled) {
      double loss = background_loss_probability(s, r.tx.start);
      if (cfg_.uplink_access == UplinkAccess::kScheduled)
        loss *= cfg_.scheduled_background_factor;
      if (rng.chance(loss)) {
        survived = false;
        ++counters_.background_losses;
        ++counters_.uplinks_collided;
      }
    }

    const bool decoded =
        survived && error_model_.receive(r.uplink_state, r.uplink_params,
                                         nodes_.payload_bytes[n], rng);

    bool acked = false;
    if (decoded) {
      ++counters_.uplinks_received;
      const bool already_stored = nodes_.head_stored[n] != 0;
      bool stored = already_stored;
      if (!already_stored) {
        StoredPacket sp;
        sp.packet.sequence = seq;
        sp.packet.node_index = static_cast<std::int64_t>(n);
        sp.packet.payload_bytes = nodes_.payload_bytes[n];
        sp.packet.generated_at = gen_time_s(n, seq);
        sp.satellite_rx_at = r.tx.end;
        sp.satellite_index = static_cast<std::int64_t>(s);
        sp.first_tx_at = nodes_.head_first_tx_s[n];
        stored = satellites_[s].buffer.store(sp);
        if (stored) {
          nodes_.head_stored[n] = 1;
          if (rec) {
            rec->satellite_rx_unix_s = sim_.epoch_unix_s() + r.tx.end;
            rec->via_satellite = satellites_[s].name;
          }
        } else {
          ++counters_.satellite_buffer_drops;
        }
      } else {
        ++counters_.duplicate_uplinks;
      }
      if (stored) {
        ++counters_.acks_sent;
        phy::LinkConfig ack_cfg = cfg_.downlink;
        ack_cfg.tx_power_dbm += cfg_.ack_power_boost_db;
        ack_cfg.rx_antenna = nodes_.antenna[n];
        const phy::LinkState ack_state = phy::draw_link_state(
            ack_cfg, r.look, wx, r.doppler_rate, rng);
        acked = error_model_.receive(ack_state, ack_cfg.lora,
                                     cfg_.ack_payload_bytes, rng);
      }
    }

    if (acked) {
      ++counters_.acks_received;
      pop_head(n);
      return;
    }
    if (nodes_.head_attempts[n] > nodes_.max_retx[n]) {
      ++packets_abandoned_;
      pop_head(n);
    }
  }

  void pop_head(std::size_t n) {
    nodes_.pop_front(n);
    nodes_.head_attempts[n] = 0;
    nodes_.head_stored[n] = 0;
    nodes_.head_first_tx_s[n] = -1.0;
  }

  /// Deterministic per-(satellite, time-block) background loss, cached
  /// per satellite: the legacy engine reseeds a fresh Rng from
  /// derive_seed per query; one cache entry per satellite serves the
  /// whole block with identical values (same seed string, same draws).
  [[nodiscard]] double background_loss_probability(std::size_t sat,
                                                   sim::SimTime t) {
    const auto& cg = cfg_.congestion;
    const auto block = static_cast<std::uint64_t>(t / cg.block_duration_s);
    auto& [cached_block, cached_loss] = background_cache_[sat];
    if (cached_block == block) return cached_loss;
    sim::Rng field(sim::derive_seed(
        cfg_.seed, "congestion-" + std::to_string(sat) + "-" +
                       std::to_string(block)));
    cached_block = block;
    if (field.chance(cg.congested_probability))
      cached_loss = cg.congested_loss;
    else
      cached_loss = std::min(field.exponential(cg.nominal_load_mean), 1.0);
    return cached_loss;
  }

  // --- ground-station flush -------------------------------------------

  void flush_satellite(std::size_t s) {
    // Legacy order contract: the empty-buffer early-out happens before
    // the backhaul stream is touched.
    if (satellites_[s].buffer.size() == 0) return;
    sim::Rng& rng = sim_.rng("dts-backhaul");
    const std::vector<StoredPacket> drained =
        cfg_.downlink_packets_per_contact == 0
            ? satellites_[s].buffer.flush()
            : satellites_[s].buffer.flush_up_to(
                  cfg_.downlink_packets_per_contact);
    for (const StoredPacket& sp : drained) {
      if (rng.chance(cfg_.delivery_loss_probability)) continue;
      const double arrival = sim_.now() + backhaul_.draw_delay_s(rng);
      trace::UplinkRecord& rec = record_at(
          static_cast<std::size_t>(sp.packet.node_index),
          sp.packet.sequence);
      const double arrival_unix = sim_.epoch_unix_s() + arrival;
      if (!rec.delivered || arrival_unix < rec.server_rx_unix_s) {
        rec.server_rx_unix_s = arrival_unix;
        rec.delivered = true;
      }
    }
  }

  /// Record for (node, seq). Sequence numbering guarantees index == seq
  /// today; if a future change breaks that invariant, grow with
  /// placeholder records instead of indexing out of bounds.
  trace::UplinkRecord& record_at(std::size_t n, std::uint64_t seq) {
    std::vector<trace::UplinkRecord>& recs = records_[n];
    if (seq >= recs.size()) {
      trace::UplinkRecord filler;
      filler.node = node_names_[n];
      while (recs.size() <= seq) {
        filler.sequence = recs.size();
        recs.push_back(filler);
      }
    }
    return recs[seq];
  }

  // --- assembly -------------------------------------------------------

  DtsNetworkResult assemble_result() {
    DtsNetworkResult result;
    result.counters = counters_;
    for (std::size_t n = 0; n < nodes_.count; ++n)
      for (trace::UplinkRecord& rec : records_[n])
        result.uplinks.push_back(std::move(rec));
    for (std::size_t n = 0; n < nodes_.count; ++n)
      result.node_residency.push_back(node_residency(n));
    detail::aggregate_from_uplinks(
        result.uplinks, sim_.epoch_unix_s() + duration_s(),
        detail::effective_tail_exclusion_s(cfg_), result.agg);
    for (const energy::ResidencyTracker& t : result.node_residency)
      for (int m = 0; m < energy::kModeCount; ++m)
        result.agg.fleet_residency.record(
            static_cast<energy::Mode>(m),
            t.seconds_in(static_cast<energy::Mode>(m)));
    result.agg.local_buffer_drops = local_drops_;
    result.agg.packets_abandoned = packets_abandoned_;
    publish_metrics(result);
    return result;
  }

  /// Per-location theoretical visibility seconds over the run (the node
  /// keeps its receiver on through every predicted pass — same model as
  /// the legacy per-node accounting, computed once per location).
  [[nodiscard]] double location_rx_seconds(std::size_t loc) const {
    std::vector<ContactWindow> all;
    for (std::size_t s = 0; s < satellites_.size(); ++s)
      for (const ContactWindow& w : node_windows_[s][loc])
        all.push_back(w);
    return orbit::daily_visible_seconds(all, cfg_.start_jd,
                                        cfg_.start_jd + cfg_.duration_days) *
           cfg_.duration_days;
  }

  energy::ResidencyTracker node_residency(std::size_t n) {
    const std::size_t loc = nodes_.loc[n];
    auto it = loc_rx_seconds_.find(loc);
    if (it == loc_rx_seconds_.end())
      it = loc_rx_seconds_.emplace(loc, location_rx_seconds(loc)).first;
    const double rx_s = it->second;
    const double tx_s = nodes_.tx_seconds[n];
    energy::ResidencyTracker t;
    t.record(energy::Mode::kTx, tx_s);
    t.record(energy::Mode::kRx, std::max(rx_s - tx_s, 0.0));
    t.record(energy::Mode::kSleep,
             std::max(duration_s() - std::max(rx_s, tx_s), 0.0));
    return t;
  }

  [[nodiscard]] std::size_t timeline_bytes() const {
    std::size_t b = 0;
    for (std::size_t s = 0; s < timeline_time_.size(); ++s)
      b += timeline_time_[s].capacity() * sizeof(double) +
           timeline_is_flush_[s].capacity();
    return b;
  }

  [[nodiscard]] std::size_t records_bytes() const {
    std::size_t b = 0;
    for (const auto& recs : records_)
      b += recs.capacity() * sizeof(trace::UplinkRecord);
    return b;
  }

  void publish_metrics(const DtsNetworkResult& result) {
    if (cfg_.metrics == nullptr) return;
    obs::MetricsRegistry& m = *cfg_.metrics;
    m.counter("net.dts.beacons_sent").add(counters_.beacons_sent);
    m.counter("net.dts.beacons_heard").add(counters_.beacons_heard);
    m.counter("net.dts.uplink_attempts").add(counters_.uplink_attempts);
    m.counter("net.dts.uplinks_received").add(counters_.uplinks_received);
    m.counter("net.dts.uplinks_collided").add(counters_.uplinks_collided);
    m.counter("net.dts.acks_sent").add(counters_.acks_sent);
    m.counter("net.dts.acks_received").add(counters_.acks_received);
    m.counter("net.dts.duplicate_uplinks").add(counters_.duplicate_uplinks);
    m.counter("net.dts.satellite_buffer_drops")
        .add(counters_.satellite_buffer_drops);
    m.counter("net.dts.background_losses").add(counters_.background_losses);
    m.counter("net.dts.reports_generated").add(result.uplinks.size());
    m.gauge("net.dts.delivered_fraction").set(result.delivered_fraction());
    m.gauge("net.dts.mean_end_to_end_s").set(result.mean_end_to_end_s());

    // Population-scale memory/throughput gauges: the evidence that a
    // mega-fleet run stays bounded (CI's scale-smoke job asserts these).
    m.gauge("net.dts.scale.nodes").set(static_cast<double>(nodes_.count));
    m.gauge("net.dts.scale.node_store_bytes")
        .set(static_cast<double>(nodes_.approx_bytes()));
    m.gauge("net.dts.scale.timeline_bytes")
        .set(static_cast<double>(timeline_bytes()));
    m.gauge("net.dts.scale.records_bytes")
        .set(static_cast<double>(records_bytes()));
    std::size_t peak = 0;
    for (const Satellite& s : satellites_)
      peak = std::max(peak, s.buffer.peak_occupancy());
    m.gauge("net.dts.scale.sat_buffer_peak_packets")
        .set(static_cast<double>(peak));
    m.gauge("net.dts.scale.peak_rss_bytes")
        .set(static_cast<double>(obs::process_peak_rss_bytes()));
    sim_.publish_metrics();
  }

  DtsNetworkConfig cfg_;
  sim::Simulation sim_;
  phy::ErrorModel error_model_;
  BackhaulModel backhaul_;

  std::vector<orbit::Tle> tles_;
  std::vector<Satellite> satellites_;
  NodeStore nodes_;
  std::vector<orbit::Geodetic> locations_;
  // node_windows_[sat][location], gs_windows_[sat][gs]
  std::vector<std::vector<std::vector<ContactWindow>>> node_windows_;
  std::vector<std::vector<std::vector<ContactWindow>>> gs_windows_;
  std::vector<std::vector<std::uint32_t>> window_cursor_;

  // Per-satellite merged timelines (parallel vectors; one chain each).
  std::vector<std::vector<double>> timeline_time_;
  std::vector<std::vector<std::uint8_t>> timeline_is_flush_;

  // Activation heap: (next report time, node); node order at equal
  // times matches the legacy scheduler's insertion order.
  std::priority_queue<std::pair<double, std::uint64_t>,
                      std::vector<std::pair<double, std::uint64_t>>,
                      std::greater<>>
      report_heap_;

  // Per-tick geometry cache, keyed by a stamp bumped each beacon tick.
  std::uint64_t tick_stamp_ = 0;
  std::vector<LocGeo> loc_geo_;
  /// Per-satellite (block, loss) cache for the congestion field.
  std::vector<std::pair<std::uint64_t, double>> background_cache_;

  std::vector<std::vector<trace::UplinkRecord>> records_;
  std::vector<std::string> node_names_;
  std::unordered_map<std::size_t, double> loc_rx_seconds_;

  DtsCounters counters_;
  std::uint64_t local_drops_ = 0;
  std::uint64_t packets_abandoned_ = 0;
};

// =====================================================================
// Sharded population-scale engine.
// =====================================================================
//
// Above cfg.trace_node_threshold nodes the run is executed as a
// deterministic parallel shard schedule instead of a serial event loop:
//
//   * the run is cut into fixed kSliceSeconds time slices; inside each
//     slice, satellites whose footprints overlap a common ground
//     location (transitively) form one shard (sim::ConflictScheduler).
//     Shards of a slice share no mutable state — node SoA rows, active
//     lists, per-location report heaps, window cursors and satellite
//     buffers are all owned by exactly one shard — so they run
//     concurrently on sim::ThreadPool with a barrier between slices;
//   * inside a shard, the member satellites' timeline entries are k-way
//     merged by (time, satellite index), so the per-location event
//     order is a pure function of the config;
//   * every random draw comes from a counter-based stream keyed by the
//     globally unique timeline-entry id: a beacon slot seeds one Rng
//     from derive_stream(slot_root, entry_id) shared by every draw the
//     slot makes (in schedule-fixed iteration order), and a flush entry
//     seeds from derive_stream(flush_root, entry_id). Draw values
//     therefore never depend on which thread ran what when;
//   * results accumulate into per-satellite DtsCounters/DtsAggregates
//     partials merged in satellite-index order after the run, and
//     end-of-run per-node accounting (remaining report generation,
//     attempt-histogram closeout, fleet energy residency) runs over
//     fixed-size node blocks merged in block order.
//
// Consequence: DtsAggregates is bit-identical for every sim_threads
// value (tests/test_dts_parallel.cpp asserts every histogram bin,
// counter and residency mode for threads in {1, 2, 4, hw}).
class ShardSimulator {
 public:
  explicit ShardSimulator(const DtsNetworkConfig& cfg)
      : cfg_(cfg),
        error_model_(cfg.error_model),
        backhaul_(cfg.delivery_backhaul),
        duration_s_(cfg.duration_days * 86400.0),
        eligible_before_(duration_s_ -
                         detail::effective_tail_exclusion_s(cfg)),
        slot_root_(sim::derive_seed(cfg.seed, "dts-slot")),
        flush_root_(sim::derive_seed(cfg.seed, "dts-flush")) {
    detail::validate_dts_config(cfg);
    build_satellites();
    build_nodes();
    predict_windows();
  }

  DtsNetworkResult run() {
    resolve_pool();
    build_timelines();
    build_schedule();
    execute();
    return assemble_result();
  }

 private:
  /// Conflict-schedule granularity. Shorter slices split footprints
  /// more finely (more parallelism) at the cost of more barriers; 600 s
  /// is about one LEO footprint dwell, so a satellite rarely spans more
  /// locations per slice than it actually covers per pass.
  static constexpr double kSliceSeconds = 600.0;
  /// End-of-run reductions run over fixed node blocks (never
  /// thread-count-derived ranges) so double sums merge identically for
  /// any worker count.
  static constexpr std::size_t kNodeBlock = 8192;

  [[nodiscard]] JulianDate jd_at(double t) const {
    return cfg_.start_jd + t / orbit::kSecondsPerDay;
  }
  [[nodiscard]] channel::Weather weather_at(double t) const {
    if (cfg_.daily_weather.empty()) return channel::Weather::kSunny;
    const auto day = static_cast<std::size_t>(t / 86400.0);
    return cfg_.daily_weather[day % cfg_.daily_weather.size()];
  }
  [[nodiscard]] double gen_time_s(std::size_t n, std::uint64_t seq) const {
    return nodes_.phase_s[n] +
           static_cast<double>(seq) * nodes_.interval_s[n];
  }

  void resolve_pool() {
    threads_ = cfg_.sim_threads == 0 ? sim::ThreadPool::hardware_threads()
                                     : cfg_.sim_threads;
    if (threads_ <= 1) return;  // inline execution, no pool
    if (cfg_.sim_threads == 0) {
      pool_ = &sim::ThreadPool::shared();
    } else {
      owned_pool_ = std::make_unique<sim::ThreadPool>(threads_);
      pool_ = owned_pool_.get();
    }
  }

  void build_satellites() {
    tles_ = orbit::generate_tles(cfg_.constellation, cfg_.start_jd);
    satellites_.reserve(tles_.size());
    for (const orbit::Tle& tle : tles_) {
      satellites_.emplace_back(tle.name, cfg_.constellation.name, tle,
                               cfg_.satellite_buffer_capacity);
      satellites_.back().buffer = StoreAndForwardBuffer(
          cfg_.satellite_buffer_capacity, cfg_.satellite_drop_policy);
    }
  }

  void build_nodes() {
    const std::size_t count = detail::dts_node_count(cfg_);
    std::map<LocationKey, std::size_t> loc_index;
    std::vector<std::uint32_t> node_loc;
    node_loc.reserve(count);
    if (cfg_.fleet.count > 0) {
      for (const orbit::Geodetic& site : cfg_.fleet.sites) {
        const LocationKey k = key_of(site);
        if (loc_index.emplace(k, locations_.size()).second)
          locations_.push_back(site);
      }
      const std::size_t sites = cfg_.fleet.sites.size();
      for (std::size_t n = 0; n < count; ++n)
        node_loc.push_back(static_cast<std::uint32_t>(
            loc_index.at(key_of(cfg_.fleet.sites[n % sites]))));
    } else {
      for (const IotNodeConfig& nc : cfg_.nodes) {
        const LocationKey k = key_of(nc.location);
        if (loc_index.emplace(k, locations_.size()).second)
          locations_.push_back(nc.location);
      }
      for (const IotNodeConfig& nc : cfg_.nodes)
        node_loc.push_back(static_cast<std::uint32_t>(
            loc_index.at(key_of(nc.location))));
    }
    nodes_.init(cfg_, node_loc);
    active_.resize(locations_.size());
    active_pos_.assign(count, kNoActive);

    // Per-location report heaps (the sharded split of the old global
    // activation heap: a location is owned by one shard per slice, so
    // its heap needs no lock).
    loc_heap_.resize(locations_.size());
    for (std::size_t n = 0; n < count; ++n)
      if (nodes_.next_report_s[n] < duration_s_)
        loc_heap_[nodes_.loc[n]].emplace(nodes_.next_report_s[n], n);
  }

  void predict_windows() {
    orbit::PassPredictionOptions opts;
    opts.min_elevation_deg = cfg_.visibility_mask_deg;
    opts.coarse_step_s = cfg_.pass_scan_step_s;
    const JulianDate end_jd = cfg_.start_jd + cfg_.duration_days;

    node_windows_.assign(
        satellites_.size(),
        std::vector<std::vector<ContactWindow>>(locations_.size()));
    gs_windows_.assign(
        satellites_.size(),
        std::vector<std::vector<ContactWindow>>(cfg_.ground_stations.size()));

    std::vector<orbit::GridObserver> observers;
    observers.reserve(locations_.size() + cfg_.ground_stations.size());
    for (const orbit::Geodetic& loc : locations_)
      observers.push_back(orbit::GridObserver{loc});
    for (const GroundStationSite& gs : cfg_.ground_stations)
      observers.push_back(
          orbit::GridObserver{gs.location, gs.min_elevation_deg});

    auto windows = orbit::predict_passes_grid_cached(
        tles_, observers, cfg_.start_jd, end_jd, opts, cfg_.pass_threads,
        &orbit::ContactWindowCache::global(), cfg_.metrics);
    for (std::size_t s = 0; s < satellites_.size(); ++s) {
      for (std::size_t l = 0; l < locations_.size(); ++l)
        node_windows_[s][l] = std::move(windows[s][l]);
      for (std::size_t g = 0; g < cfg_.ground_stations.size(); ++g)
        gs_windows_[s][g] = std::move(windows[s][locations_.size() + g]);
    }

    window_cursor_.assign(satellites_.size(),
                          std::vector<std::uint32_t>(locations_.size(), 0));
    loc_geo_.assign(locations_.size(), LocGeo{});
    background_cache_.assign(
        satellites_.size(),
        {std::numeric_limits<std::uint64_t>::max(), 0.0});
  }

  /// Same merged per-satellite timeline as the exact engine (beacon
  /// ticks deduped, flushes stable-sorted behind beacons at ties), but
  /// consumed as plain arrays by the shard schedule instead of event
  /// chains.
  void build_timelines() {
    timeline_time_.resize(satellites_.size());
    timeline_is_flush_.resize(satellites_.size());
    for (std::size_t s = 0; s < satellites_.size(); ++s) {
      const double phase =
          cfg_.beacon.period_s * static_cast<double>(s * 29 % 97) / 97.0;
      std::vector<double> ticks;
      for (const auto& windows : node_windows_[s]) {
        for (const ContactWindow& w : windows) {
          const double a =
              (w.aos_jd - cfg_.start_jd) * orbit::kSecondsPerDay;
          const double b =
              (w.los_jd - cfg_.start_jd) * orbit::kSecondsPerDay;
          const double first =
              phase +
              std::ceil((a - phase) / cfg_.beacon.period_s) *
                  cfg_.beacon.period_s;
          for (double t = first; t <= b; t += cfg_.beacon.period_s)
            if (t >= 0.0 && t < duration_s_) ticks.push_back(t);
        }
      }
      std::sort(ticks.begin(), ticks.end());
      ticks.erase(std::unique(ticks.begin(), ticks.end()), ticks.end());

      std::vector<double> flushes;
      for (std::size_t g = 0; g < gs_windows_[s].size(); ++g) {
        for (const ContactWindow& w : gs_windows_[s][g]) {
          const double aos =
              (w.aos_jd - cfg_.start_jd) * orbit::kSecondsPerDay;
          const double los =
              (w.los_jd - cfg_.start_jd) * orbit::kSecondsPerDay;
          for (const double t : gs_flush_times(aos, los))
            if (t >= 0.0 && t < duration_s_) flushes.push_back(t);
        }
      }

      std::vector<double>& times = timeline_time_[s];
      std::vector<std::uint8_t>& kinds = timeline_is_flush_[s];
      times.reserve(ticks.size() + flushes.size());
      kinds.reserve(ticks.size() + flushes.size());
      for (const double t : ticks) {
        times.push_back(t);
        kinds.push_back(0);
      }
      for (const double t : flushes) {
        times.push_back(t);
        kinds.push_back(1);
      }
      std::vector<std::size_t> order(times.size());
      for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t x, std::size_t y) {
                         if (times[x] != times[y]) return times[x] < times[y];
                         return kinds[x] < kinds[y];
                       });
      std::vector<double> st(times.size());
      std::vector<std::uint8_t> sk(times.size());
      for (std::size_t i = 0; i < order.size(); ++i) {
        st[i] = times[order[i]];
        sk[i] = kinds[order[i]];
      }
      times = std::move(st);
      kinds = std::move(sk);
    }

    entry_base_.assign(satellites_.size() + 1, 0);
    for (std::size_t s = 0; s < satellites_.size(); ++s)
      entry_base_[s + 1] = entry_base_[s] + timeline_time_[s].size();
  }

  [[nodiscard]] std::uint32_t slice_of(double t) const {
    return static_cast<std::uint32_t>(t / kSliceSeconds);
  }

  void build_schedule() {
    slice_count_ = slice_of(std::nextafter(duration_s_, 0.0)) + 1;
    sim::ConflictScheduler sched(
        static_cast<std::uint32_t>(satellites_.size()));

    // Footprint touches: every (satellite, location) contact window
    // claims its location for each slice the window overlaps; the same
    // tuples feed the per-(slice, satellite) footprint location lists
    // the slot loop iterates.
    std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>>
        slice_pairs(slice_count_);
    for (std::size_t s = 0; s < satellites_.size(); ++s) {
      for (std::size_t l = 0; l < locations_.size(); ++l) {
        for (const ContactWindow& w : node_windows_[s][l]) {
          const double a = std::max(
              (w.aos_jd - cfg_.start_jd) * orbit::kSecondsPerDay, 0.0);
          const double b = std::min(
              (w.los_jd - cfg_.start_jd) * orbit::kSecondsPerDay,
              std::nextafter(duration_s_, 0.0));
          if (b < a) continue;
          const std::uint32_t k1 =
              std::min(slice_of(b), slice_count_ - 1);
          for (std::uint32_t k = slice_of(a); k <= k1; ++k) {
            sched.touch(k, static_cast<std::uint32_t>(s),
                        static_cast<std::uint64_t>(l));
            slice_pairs[k].emplace_back(
                static_cast<std::uint32_t>(s),
                static_cast<std::uint32_t>(l));
          }
        }
      }
    }
    // Every timeline entry keeps its satellite in the slice even when no
    // footprint touch links it (flush-only slices).
    for (std::size_t s = 0; s < satellites_.size(); ++s)
      for (const double t : timeline_time_[s])
        sched.activate(slice_of(t), static_cast<std::uint32_t>(s));
    schedule_ = sched.build();
    if (schedule_.size() < slice_count_) schedule_.resize(slice_count_);

    // Per-(slice, satellite) sorted footprint location lists.
    slice_footprints_.assign(slice_count_, {});
    for (std::uint32_t k = 0; k < slice_count_; ++k) {
      auto& pairs = slice_pairs[k];
      std::sort(pairs.begin(), pairs.end());
      pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
      auto& fps = slice_footprints_[k];
      for (const auto& [s, l] : pairs) {
        if (fps.empty() || fps.back().sat != s)
          fps.push_back(SatFootprint{s, {}});
        fps.back().locs.push_back(l);
      }
    }

    // Per-satellite slice boundaries into the (time-sorted) timeline.
    slice_begin_.assign(satellites_.size(), {});
    for (std::size_t s = 0; s < satellites_.size(); ++s) {
      std::vector<std::uint32_t>& bounds = slice_begin_[s];
      bounds.assign(slice_count_ + 1,
                    static_cast<std::uint32_t>(timeline_time_[s].size()));
      std::uint32_t i = 0;
      for (std::uint32_t k = 0; k < slice_count_; ++k) {
        while (i < timeline_time_[s].size() &&
               slice_of(timeline_time_[s][i]) < k)
          ++i;
        bounds[k] = i;
      }
    }
  }

  void execute() {
    sat_counters_.assign(satellites_.size(), DtsCounters{});
    sat_agg_.assign(satellites_.size(), DtsAggregates{});
    for (std::uint32_t k = 0; k < slice_count_; ++k) {
      const auto& shards = schedule_[k].shards;
      if (shards.empty()) continue;
      total_shards_ += shards.size();
      for (const auto& members : shards)
        max_shard_members_ = std::max(max_shard_members_, members.size());
      if (pool_ != nullptr && shards.size() > 1) {
        pool_->parallel_for(shards.size(), [&](std::size_t si) {
          run_shard(k, shards[si]);
        });
      } else {
        for (const auto& members : shards) run_shard(k, members);
      }
    }
  }

  [[nodiscard]] const std::vector<std::uint32_t>* footprint_locs(
      std::uint32_t k, std::uint32_t s) const {
    const auto& fps = slice_footprints_[k];
    auto it = std::lower_bound(
        fps.begin(), fps.end(), s,
        [](const SatFootprint& f, std::uint32_t sat) { return f.sat < sat; });
    if (it == fps.end() || it->sat != s) return nullptr;
    return &it->locs;
  }

  /// K-way merge of the shard's member timelines over slice k, by
  /// (time, satellite index) — the same total order a serial elaboration
  /// of the whole slice would use.
  void run_shard(std::uint32_t k, const std::vector<std::uint32_t>& members) {
    struct Cursor {
      std::uint32_t s, i, end;
      const std::vector<std::uint32_t>* locs;
    };
    std::vector<Cursor> cursors;
    cursors.reserve(members.size());
    for (const std::uint32_t s : members) {
      const std::uint32_t b = slice_begin_[s][k];
      const std::uint32_t e = slice_begin_[s][k + 1];
      if (b < e) cursors.push_back(Cursor{s, b, e, footprint_locs(k, s)});
    }
    while (!cursors.empty()) {
      std::size_t best = 0;
      for (std::size_t c = 1; c < cursors.size(); ++c) {
        const double tb = timeline_time_[cursors[best].s][cursors[best].i];
        const double tc = timeline_time_[cursors[c].s][cursors[c].i];
        if (tc < tb || (tc == tb && cursors[c].s < cursors[best].s))
          best = c;
      }
      Cursor& cur = cursors[best];
      const double t = timeline_time_[cur.s][cur.i];
      const std::uint64_t gid = entry_base_[cur.s] + cur.i;
      if (timeline_is_flush_[cur.s][cur.i])
        flush_satellite(cur.s, gid, t);
      else
        beacon_slot(cur.s, gid, t, cur.locs);
      if (++cur.i == cur.end) {
        cursors[best] = cursors.back();
        cursors.pop_back();
      }
    }
  }

  // --- report materialization (per location, lazily at its slots) -----

  void activate(std::size_t n) {
    std::vector<std::uint32_t>& list = active_[nodes_.loc[n]];
    active_pos_[n] = static_cast<std::uint32_t>(list.size());
    list.push_back(static_cast<std::uint32_t>(n));
  }

  void deactivate(std::size_t n) {
    std::vector<std::uint32_t>& list = active_[nodes_.loc[n]];
    const std::uint32_t pos = active_pos_[n];
    const std::uint32_t last = list.back();
    list[pos] = last;
    active_pos_[last] = pos;
    list.pop_back();
    active_pos_[n] = kNoActive;
  }

  void generate_report(std::size_t n, DtsAggregates& agg) {
    const std::uint64_t seq = nodes_.next_seq[n]++;
    ++agg.reports_generated;
    if (gen_time_s(n, seq) <= eligible_before_) ++agg.eligible_generated;
    if (!nodes_.push_seq(n, seq)) {
      ++agg.local_buffer_drops;
      return;
    }
    if (nodes_.buf_size[n] == 1) activate(n);
  }

  void materialize_loc(std::size_t loc, double t, DtsAggregates& agg) {
    LocHeap& heap = loc_heap_[loc];
    while (!heap.empty() && heap.top().first <= t) {
      const std::uint64_t n = heap.top().second;
      heap.pop();
      generate_report(static_cast<std::size_t>(n), agg);
      nodes_.next_report_s[n] += nodes_.interval_s[n];
      if (nodes_.next_report_s[n] < duration_s_)
        heap.emplace(nodes_.next_report_s[n], n);
    }
  }

  // --- beacon slot ----------------------------------------------------

  /// Per-(slot entry) cached footprint geometry, stamped with the global
  /// entry id so same-location nodes share one SGP4 propagation. A
  /// location is only ever touched by its owning shard within a slice,
  /// so the cache row is race-free.
  struct LocGeo {
    std::uint64_t stamp = 0;
    bool in_footprint = false;
    bool masked = false;
    orbit::PassSample geo;
    double doppler_rate = 0.0;
  };

  const LocGeo& loc_geometry(std::size_t s, std::size_t loc, JulianDate jd,
                             std::uint64_t stamp) {
    LocGeo& g = loc_geo_[loc];
    if (g.stamp == stamp) return g;
    g.stamp = stamp;
    const std::vector<ContactWindow>& ws = node_windows_[s][loc];
    std::uint32_t& cur = window_cursor_[s][loc];
    while (cur < ws.size() && jd > ws[cur].los_jd) ++cur;
    g.in_footprint =
        cur < ws.size() && jd >= ws[cur].aos_jd && jd <= ws[cur].los_jd;
    if (!g.in_footprint) return g;
    g.geo = orbit::sample_geometry(satellites_[s].propagator,
                                   locations_[loc], jd);
    g.masked = g.geo.look.elevation_deg < cfg_.visibility_mask_deg;
    if (g.masked) return g;
    const orbit::PassSample geo1 = orbit::sample_geometry(
        satellites_[s].propagator, locations_[loc],
        jd + 1.0 / orbit::kSecondsPerDay);
    const double f0 = orbit::doppler_shift_hz(g.geo.look.range_rate_km_s,
                                              cfg_.downlink.carrier_hz);
    const double f1 = orbit::doppler_shift_hz(geo1.look.range_rate_km_s,
                                              cfg_.downlink.carrier_hz);
    g.doppler_rate = f1 - f0;
    return g;
  }

  struct SlotResponder {
    std::size_t node;
    Transmission tx;
    phy::LoraParams uplink_params;
    phy::LinkState uplink_state;
    orbit::LookAngles look;
    double doppler_rate;
  };

  void consider_node(std::size_t n, double now, channel::Weather wx,
                     const LocGeo& g, sim::Rng& rng, DtsCounters& ctr,
                     std::vector<SlotResponder>& responders) {
    phy::LinkConfig beacon_cfg = cfg_.downlink;
    beacon_cfg.rx_antenna = nodes_.antenna[n];
    const phy::LinkState beacon_state = phy::draw_link_state(
        beacon_cfg, g.geo.look, wx, g.doppler_rate, rng);
    if (!error_model_.receive(beacon_state, beacon_cfg.lora,
                              cfg_.beacon.payload_bytes, rng))
      return;
    ++ctr.beacons_heard;
    if (nodes_.empty(n)) return;
    if (now < nodes_.busy_until[n]) return;  // half-duplex: radio busy

    phy::LinkConfig up_cfg = cfg_.uplink;
    up_cfg.tx_antenna = nodes_.antenna[n];
    if (cfg_.adaptive_sf) {
      up_cfg.lora.sf = phy::choose_spreading_factor(
          beacon_state.snr_db + cfg_.adr_uplink_advantage_db, 6.0);
    }
    phy::LinkState up_state =
        phy::draw_link_state(up_cfg, g.geo.look, wx, g.doppler_rate, rng);
    if (cfg_.doppler_precompensation) {
      up_state.doppler.shift_hz *= cfg_.precompensation_residual;
      up_state.doppler.rate_hz_per_s *= cfg_.precompensation_residual;
    }
    responders.push_back(SlotResponder{n, Transmission{}, up_cfg.lora,
                                       up_state, g.geo.look, g.doppler_rate});
  }

  void beacon_slot(std::uint32_t s, std::uint64_t gid, double t,
                   const std::vector<std::uint32_t>* locs) {
    DtsCounters& ctr = sat_counters_[s];
    DtsAggregates& agg = sat_agg_[s];
    ++ctr.beacons_sent;
    if (locs == nullptr) return;  // no footprint this slice
    const JulianDate jd = jd_at(t);
    const channel::Weather wx = weather_at(t);

    // One counter-based stream per slot entry, shared by every draw the
    // slot makes (beacon decodes, offsets, uplink resolution). The slot
    // runs entirely inside its owning shard and iterates locations and
    // active lists in schedule-fixed order, so the draw sequence is a
    // pure function of the config — and the mt19937_64 init cost is
    // amortized over the whole footprint instead of paid per node.
    sim::Rng rng(sim::derive_stream(slot_root_, gid));

    std::vector<SlotResponder> responders;
    for (const std::uint32_t loc : *locs) {
      materialize_loc(loc, t, agg);
      if (active_[loc].empty()) continue;
      const LocGeo& g = loc_geometry(s, loc, jd, gid + 1);
      if (!g.in_footprint || g.masked) continue;
      // Snapshot: consider_node never mutates active lists.
      for (const std::uint32_t n : active_[loc])
        consider_node(n, t, wx, g, rng, ctr, responders);
    }
    if (responders.empty()) return;

    double max_toa = 0.0;
    for (const SlotResponder& r : responders) {
      const double toa = phy::time_on_air_s(r.uplink_params,
                                            nodes_.payload_bytes[r.node]);
      max_toa = std::max(max_toa, toa);
    }
    std::vector<double> offsets;
    if (cfg_.uplink_access == UplinkAccess::kScheduled) {
      offsets = assign_subslots(responders.size(), max_toa,
                                cfg_.beacon.period_s);
    } else {
      offsets.reserve(responders.size());
      for (std::size_t i = 0; i < responders.size(); ++i)
        offsets.push_back(
            rng.uniform(0.3, std::max(0.4, cfg_.beacon.period_s * 0.6)));
    }
    for (std::size_t i = 0; i < responders.size(); ++i) {
      SlotResponder& r = responders[i];
      const double toa = phy::time_on_air_s(r.uplink_params,
                                            nodes_.payload_bytes[r.node]);
      r.tx = Transmission{static_cast<std::uint64_t>(r.node),
                          t + offsets[i], t + offsets[i] + toa,
                          r.uplink_state.rssi_dbm};
      nodes_.busy_until[r.node] = r.tx.end;
    }

    std::vector<Transmission> txs;
    txs.reserve(responders.size());
    for (const SlotResponder& r : responders) txs.push_back(r.tx);

    for (SlotResponder& r : responders)
      process_uplink(s, r, txs, wx, rng, ctr, agg);
  }

  void process_uplink(std::uint32_t s, SlotResponder& r,
                      const std::vector<Transmission>& all_txs,
                      channel::Weather wx, sim::Rng& rng, DtsCounters& ctr,
                      DtsAggregates& agg) {
    const std::size_t n = r.node;
    if (nodes_.empty(n)) return;  // popped by an earlier event
    const std::uint64_t seq = nodes_.front(n);

    ++ctr.uplink_attempts;
    nodes_.tx_seconds[n] += r.tx.end - r.tx.start;
    ++nodes_.head_attempts[n];
    if (nodes_.head_first_tx_s[n] < 0.0) {
      nodes_.head_first_tx_s[n] = r.tx.start;
      const double w = r.tx.start - gen_time_s(n, seq);
      agg.sum_wait_s += w;
      ++agg.wait_samples;
      agg.wait_s.add(w);
    }

    bool survived = survives_collisions(r.tx, all_txs, cfg_.mac);
    if (!survived) ++ctr.uplinks_collided;

    if (survived && cfg_.congestion.enabled) {
      double loss = background_loss_probability(s, r.tx.start);
      if (cfg_.uplink_access == UplinkAccess::kScheduled)
        loss *= cfg_.scheduled_background_factor;
      if (rng.chance(loss)) {
        survived = false;
        ++ctr.background_losses;
        ++ctr.uplinks_collided;
      }
    }

    const bool decoded =
        survived && error_model_.receive(r.uplink_state, r.uplink_params,
                                         nodes_.payload_bytes[n], rng);

    bool acked = false;
    if (decoded) {
      ++ctr.uplinks_received;
      const bool already_stored = nodes_.head_stored[n] != 0;
      bool stored = already_stored;
      if (!already_stored) {
        StoredPacket sp;
        sp.packet.sequence = seq;
        sp.packet.node_index = static_cast<std::int64_t>(n);
        sp.packet.payload_bytes = nodes_.payload_bytes[n];
        sp.packet.generated_at = gen_time_s(n, seq);
        sp.satellite_rx_at = r.tx.end;
        sp.satellite_index = static_cast<std::int64_t>(s);
        sp.first_tx_at = nodes_.head_first_tx_s[n];
        stored = satellites_[s].buffer.store(sp);
        if (stored)
          nodes_.head_stored[n] = 1;
        else
          ++ctr.satellite_buffer_drops;
      } else {
        ++ctr.duplicate_uplinks;
      }
      if (stored) {
        ++ctr.acks_sent;
        phy::LinkConfig ack_cfg = cfg_.downlink;
        ack_cfg.tx_power_dbm += cfg_.ack_power_boost_db;
        ack_cfg.rx_antenna = nodes_.antenna[n];
        const phy::LinkState ack_state = phy::draw_link_state(
            ack_cfg, r.look, wx, r.doppler_rate, rng);
        acked = error_model_.receive(ack_state, ack_cfg.lora,
                                     cfg_.ack_payload_bytes, rng);
      }
    }

    if (acked) {
      ++ctr.acks_received;
      pop_head(n, agg);
      return;
    }
    if (nodes_.head_attempts[n] > nodes_.max_retx[n]) {
      ++agg.packets_abandoned;
      pop_head(n, agg);
    }
  }

  void pop_head(std::size_t n, DtsAggregates& agg) {
    agg.attempts.add(nodes_.head_attempts[n]);
    nodes_.pop_front(n);
    nodes_.head_attempts[n] = 0;
    nodes_.head_stored[n] = 0;
    nodes_.head_first_tx_s[n] = -1.0;
    if (nodes_.empty(n)) deactivate(n);
  }

  [[nodiscard]] double background_loss_probability(std::size_t sat,
                                                   double t) {
    const auto& cg = cfg_.congestion;
    const auto block = static_cast<std::uint64_t>(t / cg.block_duration_s);
    auto& [cached_block, cached_loss] = background_cache_[sat];
    if (cached_block == block) return cached_loss;
    sim::Rng field(sim::derive_seed(
        cfg_.seed, "congestion-" + std::to_string(sat) + "-" +
                       std::to_string(block)));
    cached_block = block;
    if (field.chance(cg.congested_probability))
      cached_loss = cg.congested_loss;
    else
      cached_loss = std::min(field.exponential(cg.nominal_load_mean), 1.0);
    return cached_loss;
  }

  // --- ground-station flush -------------------------------------------

  void flush_satellite(std::uint32_t s, std::uint64_t gid, double t) {
    if (satellites_[s].buffer.size() == 0) return;
    DtsAggregates& agg = sat_agg_[s];
    // One deterministic stream per flush entry: the global entry id is
    // unique across satellites, so draw values are independent of shard
    // scheduling and of every other satellite's flush activity.
    sim::Rng rng(sim::derive_stream(flush_root_, gid));
    const std::vector<StoredPacket> drained =
        cfg_.downlink_packets_per_contact == 0
            ? satellites_[s].buffer.flush()
            : satellites_[s].buffer.flush_up_to(
                  cfg_.downlink_packets_per_contact);
    for (const StoredPacket& sp : drained) {
      if (rng.chance(cfg_.delivery_loss_probability)) continue;
      const double arrival = t + backhaul_.draw_delay_s(rng);
      // Every stored packet is drained exactly once (head_stored
      // guarantees a single store per packet), so this is its one
      // delivery opportunity — stream it straight into the aggregates.
      ++agg.reports_delivered;
      if (sp.packet.generated_at <= eligible_before_)
        ++agg.eligible_delivered;
      const double e2e = arrival - sp.packet.generated_at;
      agg.sum_end_to_end_s += e2e;
      agg.latency_s.add(e2e);
      if (sp.first_tx_at >= 0.0) {
        agg.sum_dts_transfer_s += sp.satellite_rx_at - sp.first_tx_at;
        agg.sum_delivery_s += arrival - sp.satellite_rx_at;
        ++agg.breakdown_samples;
      }
    }
  }

  // --- assembly -------------------------------------------------------

  [[nodiscard]] double location_rx_seconds(std::size_t loc) const {
    std::vector<ContactWindow> all;
    for (std::size_t s = 0; s < satellites_.size(); ++s)
      for (const ContactWindow& w : node_windows_[s][loc])
        all.push_back(w);
    return orbit::daily_visible_seconds(all, cfg_.start_jd,
                                        cfg_.start_jd + cfg_.duration_days) *
           cfg_.duration_days;
  }

  DtsNetworkResult assemble_result() {
    DtsNetworkResult result;
    // Satellite partials, merged in satellite-index order — the fixed
    // merge order that keeps double sums identical for any thread count.
    for (std::size_t s = 0; s < satellites_.size(); ++s) {
      merge_counters(result.counters, sat_counters_[s]);
      result.agg.merge_from(sat_agg_[s]);
    }

    // End-of-run node accounting over fixed-size blocks: reports still
    // due before the run end (never observed by any slot), the attempt
    // histogram closeout for pending heads, and fleet energy residency.
    std::vector<double> rx_by_loc(locations_.size());
    for (std::size_t l = 0; l < locations_.size(); ++l)
      rx_by_loc[l] = location_rx_seconds(l);

    struct BlockAccum {
      std::uint64_t generated = 0, eligible = 0, drops = 0;
      stats::Histogram attempts{0.5, 32.5, 32};
      double tx = 0.0, rx = 0.0, sleep = 0.0;
    };
    const std::size_t blocks =
        (nodes_.count + kNodeBlock - 1) / kNodeBlock;
    std::vector<BlockAccum> partials(blocks);
    const auto run_block = [&](std::size_t b) {
      BlockAccum& acc = partials[b];
      const std::size_t lo = b * kNodeBlock;
      const std::size_t hi = std::min(lo + kNodeBlock, nodes_.count);
      for (std::size_t n = lo; n < hi; ++n) {
        for (double t = nodes_.next_report_s[n]; t < duration_s_;
             t += nodes_.interval_s[n]) {
          const std::uint64_t seq = nodes_.next_seq[n]++;
          ++acc.generated;
          if (gen_time_s(n, seq) <= eligible_before_) ++acc.eligible;
          if (!nodes_.push_seq(n, seq)) ++acc.drops;
        }
        if (nodes_.head_attempts[n] > 0)
          acc.attempts.add(nodes_.head_attempts[n]);
        const double tx_s = nodes_.tx_seconds[n];
        const double rx_s = rx_by_loc[nodes_.loc[n]];
        acc.tx += tx_s;
        acc.rx += std::max(rx_s - tx_s, 0.0);
        acc.sleep += std::max(duration_s_ - std::max(rx_s, tx_s), 0.0);
      }
    };
    if (pool_ != nullptr && blocks > 1)
      pool_->parallel_for(blocks, run_block);
    else
      for (std::size_t b = 0; b < blocks; ++b) run_block(b);
    for (const BlockAccum& acc : partials) {
      result.agg.reports_generated += acc.generated;
      result.agg.eligible_generated += acc.eligible;
      result.agg.local_buffer_drops += acc.drops;
      result.agg.attempts.merge(acc.attempts);
      result.agg.fleet_residency.record(energy::Mode::kTx, acc.tx);
      result.agg.fleet_residency.record(energy::Mode::kRx, acc.rx);
      result.agg.fleet_residency.record(energy::Mode::kSleep, acc.sleep);
    }
    publish_metrics(result);
    return result;
  }

  static void merge_counters(DtsCounters& into, const DtsCounters& from) {
    into.beacons_sent += from.beacons_sent;
    into.beacons_heard += from.beacons_heard;
    into.uplink_attempts += from.uplink_attempts;
    into.uplinks_received += from.uplinks_received;
    into.uplinks_collided += from.uplinks_collided;
    into.acks_sent += from.acks_sent;
    into.acks_received += from.acks_received;
    into.duplicate_uplinks += from.duplicate_uplinks;
    into.satellite_buffer_drops += from.satellite_buffer_drops;
    into.background_losses += from.background_losses;
  }

  [[nodiscard]] std::size_t timeline_bytes() const {
    std::size_t b = 0;
    for (std::size_t s = 0; s < timeline_time_.size(); ++s)
      b += timeline_time_[s].capacity() * sizeof(double) +
           timeline_is_flush_[s].capacity();
    return b;
  }

  void publish_metrics(const DtsNetworkResult& result) {
    if (cfg_.metrics == nullptr) return;
    obs::MetricsRegistry& m = *cfg_.metrics;
    const DtsCounters& c = result.counters;
    m.counter("net.dts.beacons_sent").add(c.beacons_sent);
    m.counter("net.dts.beacons_heard").add(c.beacons_heard);
    m.counter("net.dts.uplink_attempts").add(c.uplink_attempts);
    m.counter("net.dts.uplinks_received").add(c.uplinks_received);
    m.counter("net.dts.uplinks_collided").add(c.uplinks_collided);
    m.counter("net.dts.acks_sent").add(c.acks_sent);
    m.counter("net.dts.acks_received").add(c.acks_received);
    m.counter("net.dts.duplicate_uplinks").add(c.duplicate_uplinks);
    m.counter("net.dts.satellite_buffer_drops")
        .add(c.satellite_buffer_drops);
    m.counter("net.dts.background_losses").add(c.background_losses);
    m.counter("net.dts.reports_generated")
        .add(result.agg.reports_generated);
    m.gauge("net.dts.delivered_fraction").set(result.delivered_fraction());
    m.gauge("net.dts.mean_end_to_end_s").set(result.mean_end_to_end_s());

    m.gauge("net.dts.scale.nodes").set(static_cast<double>(nodes_.count));
    m.gauge("net.dts.scale.node_store_bytes")
        .set(static_cast<double>(nodes_.approx_bytes()));
    m.gauge("net.dts.scale.timeline_bytes")
        .set(static_cast<double>(timeline_bytes()));
    m.gauge("net.dts.scale.records_bytes").set(0.0);
    std::size_t peak = 0;
    for (const Satellite& s : satellites_)
      peak = std::max(peak, s.buffer.peak_occupancy());
    m.gauge("net.dts.scale.sat_buffer_peak_packets")
        .set(static_cast<double>(peak));
    m.gauge("net.dts.scale.peak_rss_bytes")
        .set(static_cast<double>(obs::process_peak_rss_bytes()));

    // Shard-schedule shape: how much concurrency the conflict schedule
    // actually exposed on this config.
    m.gauge("net.dts.parallel.threads").set(static_cast<double>(threads_));
    m.gauge("net.dts.parallel.slices")
        .set(static_cast<double>(slice_count_));
    m.gauge("net.dts.parallel.shards")
        .set(static_cast<double>(total_shards_));
    m.gauge("net.dts.parallel.max_shard_members")
        .set(static_cast<double>(max_shard_members_));
  }

  DtsNetworkConfig cfg_;
  phy::ErrorModel error_model_;
  BackhaulModel backhaul_;
  double duration_s_;
  double eligible_before_;
  std::uint64_t slot_root_;
  std::uint64_t flush_root_;

  unsigned threads_ = 1;
  sim::ThreadPool* pool_ = nullptr;
  std::unique_ptr<sim::ThreadPool> owned_pool_;

  std::vector<orbit::Tle> tles_;
  std::vector<Satellite> satellites_;
  NodeStore nodes_;
  std::vector<orbit::Geodetic> locations_;
  std::vector<std::vector<std::vector<ContactWindow>>> node_windows_;
  std::vector<std::vector<std::vector<ContactWindow>>> gs_windows_;
  std::vector<std::vector<std::uint32_t>> window_cursor_;
  std::vector<LocGeo> loc_geo_;
  std::vector<std::pair<std::uint64_t, double>> background_cache_;

  std::vector<std::vector<double>> timeline_time_;
  std::vector<std::vector<std::uint8_t>> timeline_is_flush_;
  /// Prefix sums of timeline sizes: entry_base_[s] + i is the globally
  /// unique id of entry i of satellite s.
  std::vector<std::uint64_t> entry_base_;

  // Conflict schedule.
  std::uint32_t slice_count_ = 0;
  std::vector<sim::SliceShards> schedule_;
  struct SatFootprint {
    std::uint32_t sat;
    std::vector<std::uint32_t> locs;
  };
  std::vector<std::vector<SatFootprint>> slice_footprints_;
  std::vector<std::vector<std::uint32_t>> slice_begin_;
  std::size_t total_shards_ = 0;
  std::size_t max_shard_members_ = 0;

  // Per-location state (owned by one shard per slice).
  std::vector<std::vector<std::uint32_t>> active_;
  std::vector<std::uint32_t> active_pos_;
  using LocHeap =
      std::priority_queue<std::pair<double, std::uint64_t>,
                          std::vector<std::pair<double, std::uint64_t>>,
                          std::greater<>>;
  std::vector<LocHeap> loc_heap_;

  // Shard-local accumulators, merged in satellite order after the run.
  std::vector<DtsCounters> sat_counters_;
  std::vector<DtsAggregates> sat_agg_;
};

}  // namespace

DtsNetworkResult run_dts_network_batched(const DtsNetworkConfig& cfg) {
  obs::PhaseProfiler phases(cfg.metrics, "net.dts");
  phases.phase("setup");
  if (detail::dts_node_count(cfg) <= cfg.trace_node_threshold) {
    BatchSimulator sim(cfg);
    phases.phase("simulate");
    DtsNetworkResult result = sim.run();
    phases.stop();
    return result;
  }
  ShardSimulator sim(cfg);
  phases.phase("simulate");
  DtsNetworkResult result = sim.run();
  phases.stop();
  return result;
}

}  // namespace sinet::net
