// Satellite-side model: identity, propagator, and the store-and-forward
// buffer that holds uplinked packets until a ground-station contact.
#pragma once

#include <cstddef>
#include <deque>
#include <string>
#include <vector>

#include "net/packet.h"
#include "orbit/sgp4.h"
#include "orbit/tle.h"

namespace sinet::net {

/// What a full store-and-forward buffer sacrifices.
enum class DropPolicy {
  kDropNewest,  ///< reject the incoming packet (classic tail drop)
  kDropOldest,  ///< evict the stalest packet to admit fresh data
};

/// Bounded FIFO store-and-forward buffer (paper Sec 3.1: buffer sizing
/// must follow the contact duration/interval statistics; overflow drops).
class StoreAndForwardBuffer {
 public:
  explicit StoreAndForwardBuffer(std::size_t capacity_packets = 4096,
                                 DropPolicy policy = DropPolicy::kDropNewest);

  /// Store a packet. Returns false (and counts a drop) when the incoming
  /// packet was rejected; under kDropOldest the incoming packet is always
  /// admitted but the eviction still counts as a drop.
  bool store(StoredPacket p);

  /// Remove and return everything currently buffered.
  [[nodiscard]] std::vector<StoredPacket> flush();

  /// Remove and return at most `max_packets` (FIFO order) — models a
  /// rate-limited downlink contact that cannot drain the whole backlog.
  [[nodiscard]] std::vector<StoredPacket> flush_up_to(
      std::size_t max_packets);

  [[nodiscard]] std::size_t size() const noexcept { return buffer_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] bool full() const noexcept {
    return buffer_.size() >= capacity_;
  }
  [[nodiscard]] std::size_t drop_count() const noexcept { return drops_; }
  [[nodiscard]] std::size_t peak_occupancy() const noexcept { return peak_; }
  [[nodiscard]] DropPolicy policy() const noexcept { return policy_; }

 private:
  std::size_t capacity_;
  DropPolicy policy_;
  std::deque<StoredPacket> buffer_;
  std::size_t drops_ = 0;
  std::size_t peak_ = 0;
};

/// One satellite of a constellation in the simulator.
struct Satellite {
  std::string name;
  std::string constellation;
  orbit::Sgp4 propagator;
  StoreAndForwardBuffer buffer;

  Satellite(std::string sat_name, std::string constellation_name,
            const orbit::Tle& tle, std::size_t buffer_capacity = 4096)
      : name(std::move(sat_name)),
        constellation(std::move(constellation_name)),
        propagator(tle),
        buffer(buffer_capacity) {}
};

}  // namespace sinet::net
