// Terrestrial LoRaWAN baseline (paper Sec 3.2).
//
// Three RAKwireless gateways with LTE backhaul serve the same sensors the
// Tianqi nodes serve. Gateways are always-on and a few km away at most,
// so the uplink margin is tens of dB: reliability is near-perfect and
// end-to-end latency is on-air time plus LTE forwarding.
#pragma once

#include <cstdint>
#include <vector>

#include "energy/power_model.h"
#include "net/backhaul.h"
#include "phy/error_model.h"
#include "phy/lora.h"
#include "trace/packet_trace.h"

namespace sinet::net {

struct LorawanConfig {
  int node_count = 3;
  int gateway_count = 3;
  int report_payload_bytes = 20;
  double report_interval_s = 1800.0;
  double duration_days = 30.0;
  int max_retransmissions = 0;
  double gateway_distance_km = 2.0;   ///< node -> nearest gateway
  double node_tx_power_dbm = 14.0;    ///< terrestrial LoRaWAN EIRP class
  phy::LoraParams lora;               ///< defaults: SF10 / 125 kHz
  phy::ErrorModelConfig error_model;
  BackhaulConfig backhaul = lte_backhaul();
  std::uint64_t seed = 7;
};

struct LorawanResult {
  std::vector<trace::UplinkRecord> uplinks;
  std::vector<energy::ResidencyTracker> node_residency;  ///< one per node
  double uplink_per = 0.0;  ///< single-attempt packet error rate used

  [[nodiscard]] double delivered_fraction() const;
  [[nodiscard]] double mean_latency_s() const;
};

/// Single-attempt packet error rate of the terrestrial uplink, from the
/// ground-range link budget (FSPL at gateway_distance_km + noise floor).
[[nodiscard]] double terrestrial_uplink_per(const LorawanConfig& cfg);

/// Run the baseline: generates every report, draws per-attempt outcomes
/// and LTE delivery delays, and accounts node energy residency.
[[nodiscard]] LorawanResult run_lorawan(const LorawanConfig& cfg);

}  // namespace sinet::net
