#include "net/backhaul.h"

#include <cmath>
#include <stdexcept>

namespace sinet::net {

BackhaulModel::BackhaulModel(const BackhaulConfig& cfg) : cfg_(cfg) {
  if (cfg.base_delay_s <= 0.0)
    throw std::invalid_argument("BackhaulModel: nonpositive base delay");
  if (cfg.jitter_sigma_ln < 0.0)
    throw std::invalid_argument("BackhaulModel: negative jitter");
  if (cfg.processing_delay_s < 0.0)
    throw std::invalid_argument("BackhaulModel: negative processing delay");
}

double BackhaulModel::draw_delay_s(sim::Rng& rng) const {
  // Log-normal around the base delay: median = base_delay_s.
  const double jitter = std::exp(cfg_.jitter_sigma_ln * rng.normal());
  return cfg_.processing_delay_s + cfg_.base_delay_s * jitter;
}

BackhaulConfig lte_backhaul() {
  // The paper's terrestrial end-to-end latency averages 0.2 min (12 s):
  // LTE forwarding itself is ~100 ms, the rest is gateway uplink batching
  // and network-server processing (RAK gateways forward on a short poll
  // cycle).
  BackhaulConfig c;
  c.base_delay_s = 1.5;
  c.jitter_sigma_ln = 0.5;
  c.processing_delay_s = 8.0;
  return c;
}

BackhaulConfig tianqi_delivery_backhaul() {
  // The farm sits inside the footprint of the operator's own ground
  // stations, so the orbital part of delivery is minutes; the paper's
  // 56.9-minute mean delivery segment (Fig 5d) is dominated by downlink
  // scheduling and data-center batch processing, modeled here as a fixed
  // processing floor plus log-normal forwarding jitter.
  BackhaulConfig c;
  c.base_delay_s = 300.0;
  c.jitter_sigma_ln = 0.8;
  c.processing_delay_s = 2700.0;
  return c;
}

}  // namespace sinet::net
