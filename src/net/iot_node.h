// Satellite IoT end-node (Tianqi-node analogue) configuration and
// runtime state used by the DtS network simulator.
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "channel/antenna.h"
#include "energy/power_model.h"
#include "net/packet.h"
#include "orbit/geodetic.h"

namespace sinet::net {

struct IotNodeConfig {
  std::string name = "node";
  orbit::Geodetic location;
  channel::AntennaType antenna =
      channel::AntennaType::kQuarterWaveMonopole;
  int report_payload_bytes = 20;    ///< paper: 20-byte agriculture reading
  double report_interval_s = 1800.0;  ///< every 30 minutes
  /// Maximum DtS retransmissions after the first attempt (0 disables ARQ;
  /// the paper evaluates 0 and 5).
  int max_retransmissions = 0;
  std::size_t buffer_capacity = 512;  ///< local store-and-forward buffer
};

/// Mutable per-node state owned by the simulator.
struct IotNodeState {
  IotNodeConfig config;
  std::uint64_t next_sequence = 0;
  std::deque<AppPacket> buffer;     ///< reports waiting for a satellite
  int head_attempts = 0;            ///< attempts spent on buffer front
  int head_max_concurrency = 0;     ///< peak concurrency on buffer front
  /// Radio busy with an uplink until this sim time: a node answers at
  /// most one beacon at a time (half-duplex single radio). The busy test
  /// is strict (`now < busy_until`), so 0.0 — "never transmitted" — can
  /// not mark a node busy at sim time 0: a beacon arriving exactly at
  /// t = 0 (or exactly at a resumed shard boundary) is answered. The
  /// previous -1.0 magic sentinel behaved identically for every now >= 0
  /// but read as if negative times were meaningful; the regression test
  /// in test_dts_scale.cpp pins the t = 0 behavior either way.
  sim::SimTime busy_until = 0.0;
  std::size_t local_drops = 0;      ///< reports lost to buffer overflow

  // Counters for the measurement reports.
  std::uint64_t beacons_heard = 0;
  std::uint64_t tx_attempts = 0;
  std::uint64_t acks_received = 0;
  std::uint64_t packets_abandoned = 0;  ///< ARQ budget exhausted
  double tx_seconds = 0.0;

  explicit IotNodeState(IotNodeConfig cfg) : config(std::move(cfg)) {}
};

}  // namespace sinet::net
