#include "net/ground_station.h"

namespace sinet::net {

std::vector<GroundStationSite> tianqi_ground_stations() {
  // Spread across China's main regions (paper: "12 large ground stations,
  // all located in China").
  return {
      {"GS-Beijing", {39.90, 116.41, 0.05}, 5.0},
      {"GS-Shanghai", {31.23, 121.47, 0.01}, 5.0},
      {"GS-Guangzhou", {23.13, 113.26, 0.02}, 5.0},
      {"GS-Chengdu", {30.57, 104.07, 0.5}, 5.0},
      {"GS-Xian", {34.34, 108.94, 0.4}, 5.0},
      {"GS-Harbin", {45.80, 126.53, 0.15}, 5.0},
      {"GS-Urumqi", {43.83, 87.62, 0.9}, 5.0},
      {"GS-Lhasa", {29.65, 91.14, 3.65}, 5.0},
      {"GS-Kunming", {24.88, 102.83, 1.9}, 5.0},
      {"GS-Wuhan", {30.59, 114.31, 0.03}, 5.0},
      {"GS-Sanya", {18.25, 109.51, 0.01}, 5.0},
      {"GS-Kashgar", {39.47, 75.99, 1.3}, 5.0},
  };
}

}  // namespace sinet::net
