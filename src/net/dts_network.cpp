#include "net/dts_network.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <stdexcept>
#include <utility>

#include "net/dts_batch.h"
#include "obs/metrics.h"
#include "obs/scoped_timer.h"
#include "orbit/frames.h"
#include "sim/simulation.h"
#include "sim/thread_pool.h"

namespace sinet::net {

namespace {

using orbit::ContactWindow;
using orbit::JulianDate;

bool in_window(const std::vector<ContactWindow>& windows, JulianDate jd) {
  for (const ContactWindow& w : windows)
    if (jd >= w.aos_jd && jd <= w.los_jd) return true;
  return false;
}

/// Key for grouping nodes that share a deployment location.
struct LocationKey {
  double lat, lon, alt;
  bool operator<(const LocationKey& o) const {
    return std::tie(lat, lon, alt) < std::tie(o.lat, o.lon, o.alt);
  }
};

LocationKey key_of(const orbit::Geodetic& g) {
  return {g.latitude_deg, g.longitude_deg, g.altitude_km};
}

class Simulator {
 public:
  explicit Simulator(const DtsNetworkConfig& cfg)
      : cfg_(cfg),
        sim_(cfg.seed, orbit::julian_to_unix(cfg.start_jd)),
        error_model_(cfg.error_model),
        backhaul_(cfg.delivery_backhaul) {
    validate();
    sim_.attach_metrics(cfg_.metrics);
    build_satellites();
    build_nodes();
    predict_windows();
  }

  DtsNetworkResult run() {
    schedule_reports();
    schedule_beacons();
    schedule_gs_flushes();
    sim_.run_until(duration_s());
    return assemble_result();
  }

 private:
  void validate() const { detail::validate_dts_config(cfg_); }

  [[nodiscard]] double duration_s() const {
    return cfg_.duration_days * 86400.0;
  }
  [[nodiscard]] JulianDate jd_at(sim::SimTime t) const {
    return cfg_.start_jd + t / orbit::kSecondsPerDay;
  }
  [[nodiscard]] channel::Weather weather_at(sim::SimTime t) const {
    if (cfg_.daily_weather.empty()) return channel::Weather::kSunny;
    const auto day = static_cast<std::size_t>(t / 86400.0);
    return cfg_.daily_weather[day % cfg_.daily_weather.size()];
  }

  void build_satellites() {
    tles_ = orbit::generate_tles(cfg_.constellation, cfg_.start_jd);
    const std::vector<orbit::Tle>& tles = tles_;
    satellites_.reserve(tles.size());
    for (const orbit::Tle& tle : tles) {
      satellites_.emplace_back(tle.name, cfg_.constellation.name, tle,
                               cfg_.satellite_buffer_capacity);
      satellites_.back().buffer = StoreAndForwardBuffer(
          cfg_.satellite_buffer_capacity, cfg_.satellite_drop_policy);
    }
  }

  void build_nodes() {
    const std::size_t count = detail::dts_node_count(cfg_);
    nodes_.reserve(count);
    records_.resize(count);
    // Fleet configs materialize one IotNodeConfig per node here — fine
    // for the small populations this engine is meant for; the batched
    // engine reads the prototype straight into its SoA store instead.
    for (std::size_t n = 0; n < count; ++n)
      nodes_.emplace_back(detail::dts_node_config(cfg_, n));
  }

  void predict_windows() {
    orbit::PassPredictionOptions opts;
    opts.min_elevation_deg = cfg_.visibility_mask_deg;
    opts.coarse_step_s = cfg_.pass_scan_step_s;
    const JulianDate end_jd =
        cfg_.start_jd + cfg_.duration_days;

    // Unique node locations.
    std::map<LocationKey, std::size_t> loc_index;
    for (const IotNodeState& n : nodes_) {
      const LocationKey k = key_of(n.config.location);
      if (loc_index.emplace(k, locations_.size()).second)
        locations_.push_back(n.config.location);
    }
    node_location_.reserve(nodes_.size());
    for (const IotNodeState& n : nodes_)
      node_location_.push_back(loc_index.at(key_of(n.config.location)));

    node_windows_.assign(
        satellites_.size(),
        std::vector<std::vector<ContactWindow>>(locations_.size()));
    gs_windows_.assign(
        satellites_.size(),
        std::vector<std::vector<ContactWindow>>(cfg_.ground_stations.size()));

    // ONE cached grid call covering every node location (at the
    // visibility mask) and every ground station (at its own elevation
    // mask): the shared-ephemeris engine propagates each satellite once
    // per coarse step for all observers instead of once per observer.
    // The contact-window cache still serves repeats (keys carry each
    // observer's effective mask, so entries interoperate with the old
    // per-observer batches); windows per pair are bit-identical to the
    // per-location loops this replaces.
    std::vector<orbit::GridObserver> observers;
    observers.reserve(locations_.size() + cfg_.ground_stations.size());
    for (const orbit::Geodetic& loc : locations_)
      observers.push_back(orbit::GridObserver{loc});
    for (const GroundStationSite& gs : cfg_.ground_stations)
      observers.push_back(
          orbit::GridObserver{gs.location, gs.min_elevation_deg});

    auto windows = orbit::predict_passes_grid_cached(
        tles_, observers, cfg_.start_jd, end_jd, opts, cfg_.pass_threads,
        &orbit::ContactWindowCache::global(), cfg_.metrics);
    for (std::size_t s = 0; s < satellites_.size(); ++s) {
      for (std::size_t l = 0; l < locations_.size(); ++l)
        node_windows_[s][l] = std::move(windows[s][l]);
      for (std::size_t g = 0; g < cfg_.ground_stations.size(); ++g)
        gs_windows_[s][g] = std::move(windows[s][locations_.size() + g]);
    }
  }

  void schedule_reports() {
    for (std::size_t n = 0; n < nodes_.size(); ++n) {
      const double interval = nodes_[n].config.report_interval_s;
      if (interval <= 0.0)
        throw std::invalid_argument("DtsNetwork: bad report interval");
      // Small per-node phase so reports are not artificially synchronized.
      // Wrapped modulo the interval so a large node index never pushes
      // the first report late enough to lose a whole report relative to
      // the other nodes (every node gets the same report count).
      const double phase =
          std::fmod(60.0 * static_cast<double>(n), interval);
      for (double t = phase; t < duration_s(); t += interval)
        sim_.at(t, [this, n] { generate_report(n); });
    }
  }

  void generate_report(std::size_t n) {
    IotNodeState& node = nodes_[n];
    AppPacket pkt;
    pkt.sequence = node.next_sequence++;
    pkt.node_index = static_cast<std::int64_t>(n);
    pkt.payload_bytes = node.config.report_payload_bytes;
    pkt.generated_at = sim_.now();

    trace::UplinkRecord rec;
    rec.sequence = pkt.sequence;
    rec.node = node.config.name;
    rec.payload_bytes = pkt.payload_bytes;
    rec.generated_unix_s = sim_.unix_now();
    records_[n].push_back(rec);

    if (node.buffer.size() >= node.config.buffer_capacity) {
      ++node.local_drops;
      return;  // record stays undelivered
    }
    node.buffer.push_back(pkt);
  }

  void schedule_beacons() {
    for (std::size_t s = 0; s < satellites_.size(); ++s) {
      // Per-satellite beacon grid: phase derived from the index so that
      // satellites are not beacon-synchronized.
      const double phase =
          cfg_.beacon.period_s * static_cast<double>(s * 29 % 97) / 97.0;
      std::vector<double> ticks;
      for (const auto& windows : node_windows_[s]) {
        for (const ContactWindow& w : windows) {
          const double a =
              (w.aos_jd - cfg_.start_jd) * orbit::kSecondsPerDay;
          const double b =
              (w.los_jd - cfg_.start_jd) * orbit::kSecondsPerDay;
          const double first =
              phase +
              std::ceil((a - phase) / cfg_.beacon.period_s) *
                  cfg_.beacon.period_s;
          for (double t = first; t <= b; t += cfg_.beacon.period_s)
            if (t >= 0.0 && t < duration_s()) ticks.push_back(t);
        }
      }
      std::sort(ticks.begin(), ticks.end());
      ticks.erase(std::unique(ticks.begin(), ticks.end()), ticks.end());
      for (const double t : ticks)
        sim_.at(t, [this, s] { beacon_slot(s); });
    }
  }

  void schedule_gs_flushes() {
    for (std::size_t s = 0; s < satellites_.size(); ++s) {
      for (std::size_t g = 0; g < gs_windows_[s].size(); ++g) {
        for (const ContactWindow& w : gs_windows_[s][g]) {
          const double aos =
              (w.aos_jd - cfg_.start_jd) * orbit::kSecondsPerDay;
          const double los =
              (w.los_jd - cfg_.start_jd) * orbit::kSecondsPerDay;
          for (const double t : gs_flush_times(aos, los))
            if (t >= 0.0 && t < duration_s())
              sim_.at(t, [this, s] { flush_satellite(s); });
        }
      }
    }
  }

  struct SlotResponder {
    std::size_t node;
    Transmission tx;
    phy::LoraParams uplink_params;
    phy::LinkState uplink_state;
    orbit::LookAngles look;
    double doppler_rate;
  };

  void beacon_slot(std::size_t s) {
    ++counters_.beacons_sent;
    const sim::SimTime now = sim_.now();
    const JulianDate jd = jd_at(now);
    const channel::Weather wx = weather_at(now);
    sim::Rng& rng = sim_.rng("dts-channel");

    std::vector<SlotResponder> responders;
    for (std::size_t n = 0; n < nodes_.size(); ++n) {
      IotNodeState& node = nodes_[n];
      const std::size_t loc = node_location_[n];
      if (!in_window(node_windows_[s][loc], jd)) continue;

      const orbit::PassSample geo = orbit::sample_geometry(
          satellites_[s].propagator, locations_[loc], jd);
      if (geo.look.elevation_deg < cfg_.visibility_mask_deg) continue;

      // Doppler rate via one-second finite difference.
      const orbit::PassSample geo1 = orbit::sample_geometry(
          satellites_[s].propagator, locations_[loc],
          jd + 1.0 / orbit::kSecondsPerDay);
      const double f0 = orbit::doppler_shift_hz(geo.look.range_rate_km_s,
                                                cfg_.downlink.carrier_hz);
      const double f1 = orbit::doppler_shift_hz(geo1.look.range_rate_km_s,
                                                cfg_.downlink.carrier_hz);
      const double doppler_rate = f1 - f0;

      // Beacon reception at the node (satellite -> node link).
      phy::LinkConfig beacon_cfg = cfg_.downlink;
      beacon_cfg.rx_antenna = node.config.antenna;
      const phy::LinkState beacon_state = phy::draw_link_state(
          beacon_cfg, geo.look, wx, doppler_rate, rng);
      if (!error_model_.receive(beacon_state, beacon_cfg.lora,
                                cfg_.beacon.payload_bytes, rng))
        continue;
      ++node.beacons_heard;
      ++counters_.beacons_heard;
      if (node.buffer.empty()) continue;
      if (now < node.busy_until) continue;  // half-duplex: radio busy

      phy::LinkConfig up_cfg = cfg_.uplink;
      up_cfg.tx_antenna = node.config.antenna;
      if (cfg_.adaptive_sf) {
        // ADR: estimate the uplink SNR from the decoded beacon and pick
        // the fastest safe spreading factor. The beacon SNR includes the
        // fade that let it through, so a generous 6 dB safety margin
        // keeps the estimator honest about fading variance.
        up_cfg.lora.sf = phy::choose_spreading_factor(
            beacon_state.snr_db + cfg_.adr_uplink_advantage_db, 6.0);
      }
      phy::LinkState up_state =
          phy::draw_link_state(up_cfg, geo.look, wx, doppler_rate, rng);
      if (cfg_.doppler_precompensation) {
        up_state.doppler.shift_hz *= cfg_.precompensation_residual;
        up_state.doppler.rate_hz_per_s *= cfg_.precompensation_residual;
      }

      SlotResponder r;
      r.node = n;
      r.uplink_params = up_cfg.lora;
      r.uplink_state = up_state;
      r.look = geo.look;
      r.doppler_rate = doppler_rate;
      responders.push_back(r);
    }
    if (responders.empty()) return;

    // Medium access: place each responder's transmission in the period.
    double max_toa = 0.0;
    for (const SlotResponder& r : responders) {
      const double toa = phy::time_on_air_s(
          r.uplink_params, nodes_[r.node].buffer.front().payload_bytes);
      max_toa = std::max(max_toa, toa);
    }
    std::vector<double> offsets;
    if (cfg_.uplink_access == UplinkAccess::kScheduled) {
      offsets = assign_subslots(responders.size(), max_toa,
                                cfg_.beacon.period_s);
    } else {
      for (std::size_t i = 0; i < responders.size(); ++i)
        offsets.push_back(
            rng.uniform(0.3, std::max(0.4, cfg_.beacon.period_s * 0.6)));
    }
    for (std::size_t i = 0; i < responders.size(); ++i) {
      SlotResponder& r = responders[i];
      const double toa = phy::time_on_air_s(
          r.uplink_params, nodes_[r.node].buffer.front().payload_bytes);
      r.tx = Transmission{static_cast<std::uint64_t>(r.node),
                          now + offsets[i], now + offsets[i] + toa,
                          r.uplink_state.rssi_dbm};
      nodes_[r.node].busy_until = r.tx.end;
    }

    std::vector<Transmission> txs;
    txs.reserve(responders.size());
    for (const SlotResponder& r : responders) txs.push_back(r.tx);

    // Clamped cast: a mega-footprint's responder count must not wrap a
    // narrow int into a negative concurrency.
    const int concurrency = static_cast<int>(std::min<std::size_t>(
        responders.size(),
        static_cast<std::size_t>(std::numeric_limits<int>::max())));
    for (const SlotResponder& r : responders)
      process_uplink(s, r, txs, concurrency, wx, rng);
  }

  void process_uplink(std::size_t s, const SlotResponder& r,
                      const std::vector<Transmission>& all_txs,
                      int concurrency, channel::Weather wx, sim::Rng& rng) {
    IotNodeState& node = nodes_[r.node];
    if (node.buffer.empty()) return;  // popped by an earlier event
    AppPacket& pkt = node.buffer.front();
    trace::UplinkRecord& rec = record_at(r.node, pkt.sequence);

    ++counters_.uplink_attempts;
    ++node.tx_attempts;
    node.tx_seconds += r.tx.end - r.tx.start;
    ++node.head_attempts;
    node.head_max_concurrency =
        std::max(node.head_max_concurrency, concurrency);
    ++rec.dts_attempts;
    rec.max_concurrent_tx =
        std::max(rec.max_concurrent_tx, concurrency);
    const double tx_start_unix = sim_.epoch_unix_s() + r.tx.start;
    if (rec.first_tx_unix_s < 0.0 || tx_start_unix < rec.first_tx_unix_s)
      rec.first_tx_unix_s = tx_start_unix;

    bool survived = survives_collisions(r.tx, all_txs, cfg_.mac);
    if (!survived) ++counters_.uplinks_collided;

    // Background load of the satellite's footprint during this block.
    if (survived && cfg_.congestion.enabled) {
      double loss = background_loss_probability(s, r.tx.start);
      if (cfg_.uplink_access == UplinkAccess::kScheduled)
        loss *= cfg_.scheduled_background_factor;
      if (rng.chance(loss)) {
        survived = false;
        ++counters_.background_losses;
        ++counters_.uplinks_collided;
      }
    }

    const bool decoded =
        survived && error_model_.receive(r.uplink_state, r.uplink_params,
                                         pkt.payload_bytes, rng);

    bool acked = false;
    if (decoded) {
      ++counters_.uplinks_received;
      const bool already_stored = rec.satellite_rx_unix_s >= 0.0;
      bool stored = already_stored;
      if (!already_stored) {
        StoredPacket sp;
        sp.packet = pkt;
        sp.satellite_rx_at = r.tx.end;
        sp.satellite_index = static_cast<std::int64_t>(s);
        sp.first_tx_at =
            rec.first_tx_unix_s < 0.0
                ? -1.0
                : rec.first_tx_unix_s - sim_.epoch_unix_s();
        stored = satellites_[s].buffer.store(sp);
        if (stored) {
          rec.satellite_rx_unix_s = sim_.epoch_unix_s() + r.tx.end;
          rec.via_satellite = satellites_[s].name;
        } else {
          ++counters_.satellite_buffer_drops;
        }
      } else {
        ++counters_.duplicate_uplinks;
      }
      if (stored) {
        // ACK on the downlink, subject to the same channel.
        ++counters_.acks_sent;
        phy::LinkConfig ack_cfg = cfg_.downlink;
        ack_cfg.tx_power_dbm += cfg_.ack_power_boost_db;
        ack_cfg.rx_antenna = node.config.antenna;
        const phy::LinkState ack_state = phy::draw_link_state(
            ack_cfg, r.look, wx, r.doppler_rate, rng);
        acked = error_model_.receive(ack_state, ack_cfg.lora,
                                     cfg_.ack_payload_bytes, rng);
      }
    }

    if (acked) {
      ++counters_.acks_received;
      ++node.acks_received;
      pop_head(node);
      return;
    }
    // No ACK: retransmit on a future beacon unless the budget is spent.
    if (node.head_attempts > node.config.max_retransmissions) {
      ++node.packets_abandoned;
      pop_head(node);
    }
  }

  /// Deterministic per-(satellite, time-block) background loss field:
  /// the same block always evaluates to the same load for a given seed,
  /// giving congested passes their temporal coherence.
  [[nodiscard]] double background_loss_probability(std::size_t sat,
                                                   sim::SimTime t) const {
    const auto& cg = cfg_.congestion;
    const auto block = static_cast<std::uint64_t>(t / cg.block_duration_s);
    sim::Rng field(sim::derive_seed(
        cfg_.seed, "congestion-" + std::to_string(sat) + "-" +
                       std::to_string(block)));
    if (field.chance(cg.congested_probability)) return cg.congested_loss;
    return std::min(field.exponential(cg.nominal_load_mean), 1.0);
  }

  static void pop_head(IotNodeState& node) {
    node.buffer.pop_front();
    node.head_attempts = 0;
    node.head_max_concurrency = 0;
  }

  /// Record for (node, seq). Sequence numbering guarantees index == seq
  /// today (generate_report appends a record before the drop check); if
  /// a future change breaks that invariant, grow with placeholder
  /// records instead of indexing out of bounds.
  trace::UplinkRecord& record_at(std::size_t n, std::uint64_t seq) {
    std::vector<trace::UplinkRecord>& recs = records_[n];
    if (seq >= recs.size()) {
      trace::UplinkRecord filler;
      filler.node = nodes_[n].config.name;
      while (recs.size() <= seq) {
        filler.sequence = recs.size();
        recs.push_back(filler);
      }
    }
    return recs[seq];
  }

  void flush_satellite(std::size_t s) {
    if (satellites_[s].buffer.size() == 0) return;
    sim::Rng& rng = sim_.rng("dts-backhaul");
    const std::vector<StoredPacket> drained =
        cfg_.downlink_packets_per_contact == 0
            ? satellites_[s].buffer.flush()
            : satellites_[s].buffer.flush_up_to(
                  cfg_.downlink_packets_per_contact);
    for (const StoredPacket& sp : drained) {
      if (rng.chance(cfg_.delivery_loss_probability)) continue;
      const double arrival = sim_.now() + backhaul_.draw_delay_s(rng);
      trace::UplinkRecord& rec = record_at(
          static_cast<std::size_t>(sp.packet.node_index),
          sp.packet.sequence);
      const double arrival_unix = sim_.epoch_unix_s() + arrival;
      if (!rec.delivered || arrival_unix < rec.server_rx_unix_s) {
        rec.server_rx_unix_s = arrival_unix;
        rec.delivered = true;
      }
    }
  }

  DtsNetworkResult assemble_result() {
    DtsNetworkResult result;
    result.counters = counters_;
    for (std::size_t n = 0; n < nodes_.size(); ++n) {
      for (trace::UplinkRecord& rec : records_[n])
        result.uplinks.push_back(rec);
      result.node_residency.push_back(node_residency(n));
    }
    detail::aggregate_from_uplinks(
        result.uplinks, sim_.epoch_unix_s() + duration_s(),
        detail::effective_tail_exclusion_s(cfg_), result.agg);
    for (const IotNodeState& node : nodes_) {
      result.agg.local_buffer_drops += node.local_drops;
      result.agg.packets_abandoned += node.packets_abandoned;
    }
    for (const energy::ResidencyTracker& t : result.node_residency)
      for (int m = 0; m < energy::kModeCount; ++m)
        result.agg.fleet_residency.record(
            static_cast<energy::Mode>(m),
            t.seconds_in(static_cast<energy::Mode>(m)));
    publish_metrics(result);
    return result;
  }

  void publish_metrics(const DtsNetworkResult& result) {
    if (cfg_.metrics == nullptr) return;
    obs::MetricsRegistry& m = *cfg_.metrics;
    m.counter("net.dts.beacons_sent").add(counters_.beacons_sent);
    m.counter("net.dts.beacons_heard").add(counters_.beacons_heard);
    m.counter("net.dts.uplink_attempts").add(counters_.uplink_attempts);
    m.counter("net.dts.uplinks_received").add(counters_.uplinks_received);
    m.counter("net.dts.uplinks_collided").add(counters_.uplinks_collided);
    m.counter("net.dts.acks_sent").add(counters_.acks_sent);
    m.counter("net.dts.acks_received").add(counters_.acks_received);
    m.counter("net.dts.duplicate_uplinks").add(counters_.duplicate_uplinks);
    m.counter("net.dts.satellite_buffer_drops")
        .add(counters_.satellite_buffer_drops);
    m.counter("net.dts.background_losses").add(counters_.background_losses);
    m.counter("net.dts.reports_generated").add(result.uplinks.size());
    m.gauge("net.dts.delivered_fraction").set(result.delivered_fraction());
    m.gauge("net.dts.mean_end_to_end_s").set(result.mean_end_to_end_s());
    sim_.publish_metrics();
  }

  /// Energy accounting: the node holds MCU+Rx through the *theoretical*
  /// visibility of the constellation (it tracks TLEs but cannot know the
  /// effective windows in advance — the very effect the paper blames for
  /// the battery gap), transmits for its accumulated airtime, and sleeps
  /// the rest.
  energy::ResidencyTracker node_residency(std::size_t n) const {
    const std::size_t loc = node_location_[n];
    std::vector<ContactWindow> all;
    for (std::size_t s = 0; s < satellites_.size(); ++s)
      for (const ContactWindow& w : node_windows_[s][loc])
        all.push_back(w);
    const double rx_s = orbit::daily_visible_seconds(
                            all, cfg_.start_jd,
                            cfg_.start_jd + cfg_.duration_days) *
                        cfg_.duration_days;
    const double tx_s = nodes_[n].tx_seconds;
    energy::ResidencyTracker t;
    t.record(energy::Mode::kTx, tx_s);
    t.record(energy::Mode::kRx, std::max(rx_s - tx_s, 0.0));
    t.record(energy::Mode::kSleep,
             std::max(duration_s() - std::max(rx_s, tx_s), 0.0));
    return t;
  }

  DtsNetworkConfig cfg_;
  sim::Simulation sim_;
  phy::ErrorModel error_model_;
  BackhaulModel backhaul_;

  std::vector<orbit::Tle> tles_;
  std::vector<Satellite> satellites_;
  std::vector<IotNodeState> nodes_;
  std::vector<orbit::Geodetic> locations_;
  std::vector<std::size_t> node_location_;
  // node_windows_[sat][location], gs_windows_[sat][gs]
  std::vector<std::vector<std::vector<ContactWindow>>> node_windows_;
  std::vector<std::vector<std::vector<ContactWindow>>> gs_windows_;
  std::vector<std::vector<trace::UplinkRecord>> records_;  // per node, by seq
  DtsCounters counters_;
};

}  // namespace

double DtsAggregates::delivered_fraction() const {
  if (reports_generated == 0) return 0.0;
  return static_cast<double>(reports_delivered) /
         static_cast<double>(reports_generated);
}

double DtsAggregates::eligible_delivered_fraction() const {
  if (eligible_generated == 0) return 0.0;
  return static_cast<double>(eligible_delivered) /
         static_cast<double>(eligible_generated);
}

double DtsAggregates::mean_end_to_end_s() const {
  if (reports_delivered == 0) return 0.0;
  return sum_end_to_end_s / static_cast<double>(reports_delivered);
}

double DtsAggregates::mean_wait_s() const {
  if (wait_samples == 0) return 0.0;
  return sum_wait_s / static_cast<double>(wait_samples);
}

void DtsAggregates::merge_from(const DtsAggregates& other) {
  reports_generated += other.reports_generated;
  reports_delivered += other.reports_delivered;
  eligible_generated += other.eligible_generated;
  eligible_delivered += other.eligible_delivered;
  local_buffer_drops += other.local_buffer_drops;
  packets_abandoned += other.packets_abandoned;
  sum_end_to_end_s += other.sum_end_to_end_s;
  sum_wait_s += other.sum_wait_s;
  wait_samples += other.wait_samples;
  sum_dts_transfer_s += other.sum_dts_transfer_s;
  sum_delivery_s += other.sum_delivery_s;
  breakdown_samples += other.breakdown_samples;
  latency_s.merge(other.latency_s);
  wait_s.merge(other.wait_s);
  attempts.merge(other.attempts);
  for (int m = 0; m < energy::kModeCount; ++m)
    fleet_residency.record(
        static_cast<energy::Mode>(m),
        other.fleet_residency.seconds_in(static_cast<energy::Mode>(m)));
}

double DtsNetworkResult::delivered_fraction() const {
  // Aggregate-mode runs carry no per-packet trace; fall back to the
  // streamed totals (identical by construction when both exist).
  if (uplinks.empty()) return agg.delivered_fraction();
  std::size_t ok = 0;
  for (const auto& u : uplinks) ok += u.delivered ? 1 : 0;
  return static_cast<double>(ok) / static_cast<double>(uplinks.size());
}

double DtsNetworkResult::mean_end_to_end_s() const {
  if (uplinks.empty()) return agg.mean_end_to_end_s();
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& u : uplinks) {
    if (!u.delivered) continue;
    sum += u.end_to_end_s();
    ++n;
  }
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

DtsNetworkResult::LatencyBreakdown DtsNetworkResult::mean_latency_breakdown()
    const {
  LatencyBreakdown b;
  if (uplinks.empty()) {
    if (agg.breakdown_samples > 0) {
      const double k = static_cast<double>(agg.breakdown_samples);
      b.dts_transfer_s = agg.sum_dts_transfer_s / k;
      b.delivery_s = agg.sum_delivery_s / k;
    }
    if (agg.wait_samples > 0) b.wait_for_pass_s = agg.mean_wait_s();
    return b;
  }
  std::size_t n = 0;
  for (const auto& u : uplinks) {
    if (!u.delivered || u.first_tx_unix_s < 0.0 ||
        u.satellite_rx_unix_s < 0.0)
      continue;
    b.wait_for_pass_s += u.wait_for_pass_s();
    b.dts_transfer_s += u.dts_transfer_s();
    b.delivery_s += u.delivery_s();
    ++n;
  }
  if (n > 0) {
    b.wait_for_pass_s /= static_cast<double>(n);
    b.dts_transfer_s /= static_cast<double>(n);
    b.delivery_s /= static_cast<double>(n);
  }
  return b;
}

DtsNetworkConfig tianqi_agriculture_config(orbit::JulianDate start_jd,
                                           double duration_days) {
  DtsNetworkConfig cfg;
  cfg.start_jd = start_jd;
  cfg.duration_days = duration_days;
  cfg.constellation = orbit::paper_constellation("Tianqi");

  // Tianqi's operational beacon cadence is slower than the TinyGS-visible
  // 10 s telemetry beacons; nodes get a transmit opportunity roughly
  // twice a minute.
  cfg.beacon.period_s = 30.0;
  cfg.beacon.payload_bytes = 24;

  // Satellite -> ground (beacons, ACKs). Same calibrated budget as the
  // passive campaign (see core/passive_campaign.cpp); the farm site is
  // rural, so man-made noise is a little lower than the city stations.
  cfg.downlink.tx_power_dbm = 18.5;
  cfg.downlink.external_noise_db = 4.0;  // rural farm: quieter than cities
  // 2 dB hardware loss + 2 dB coffee-canopy obstruction at the node.
  cfg.downlink.implementation_loss_db = 4.0;
  cfg.downlink.fading.shadowing_sigma_db = 3.0;
  cfg.downlink.tx_antenna = channel::AntennaType::kDipole;
  cfg.downlink.rx_antenna = channel::AntennaType::kQuarterWaveMonopole;
  cfg.downlink.carrier_hz = cfg.constellation.dts_frequency_hz;
  cfg.downlink.lora = phy::default_dts_params();

  // Node -> satellite (data uplink): the Tianqi node transmits at full
  // LoRa power and the space-facing satellite receiver sees little
  // man-made noise, so the uplink is stronger than the beacon downlink —
  // which is why data delivery succeeds once a beacon decodes (paper
  // Appendix F).
  cfg.uplink.tx_power_dbm = 22.0;
  cfg.uplink.external_noise_db = 2.0;   // space-facing receiver
  cfg.uplink.rx_noise_figure_db = 2.0;  // gateway LNA
  // Node antennas are mounted above the coffee shrubs: less obstruction
  // on the uplink than on the node's own reception.
  cfg.uplink.implementation_loss_db = 3.0;
  cfg.uplink.fading.shadowing_sigma_db = 3.0;
  cfg.uplink.tx_antenna = channel::AntennaType::kQuarterWaveMonopole;
  cfg.uplink.rx_antenna = channel::AntennaType::kSatelliteTurnstile;
  cfg.uplink.carrier_hz = cfg.constellation.dts_frequency_hz;
  cfg.uplink.lora = phy::default_dts_params();

  // Three nodes at a coffee plantation in Yunnan (paper Appendix B).
  const orbit::Geodetic farm{22.78, 100.98, 1.3};
  for (int i = 0; i < 3; ++i) {
    IotNodeConfig nc;
    nc.name = "TQ-node-" + std::to_string(i + 1);
    nc.location = farm;
    nc.report_payload_bytes = 20;
    nc.report_interval_s = 1800.0;
    nc.max_retransmissions = 5;
    cfg.nodes.push_back(nc);
  }

  cfg.ground_stations = tianqi_ground_stations();
  cfg.delivery_backhaul = tianqi_delivery_backhaul();
  return cfg;
}

std::vector<double> gs_flush_times(double aos_s, double los_s) {
  if (los_s < aos_s) return {};
  const double duration = los_s - aos_s;
  // A nominal contact drains twice: 20 s after rise (link acquisition
  // time) and 5 s before set. A window too short for both gets a single
  // midpoint flush; either way every flush lands inside [aos, los].
  if (duration < 25.0) return {aos_s + 0.5 * duration};
  return {aos_s + 20.0, los_s - 5.0};
}

DtsNetworkConfig scale_fleet_config(std::size_t node_count,
                                    std::size_t satellite_count,
                                    std::size_t site_count,
                                    orbit::JulianDate start_jd,
                                    double duration_days) {
  if (node_count == 0 || satellite_count == 0 || site_count == 0)
    throw std::invalid_argument(
        "scale_fleet_config: zero nodes/satellites/sites");
  // Start from the paper-calibrated link budgets and ground segment.
  DtsNetworkConfig cfg = tianqi_agriculture_config(start_jd, duration_days);
  cfg.nodes.clear();

  // Synthetic Tianqi-like shell scaled to the requested count.
  orbit::ConstellationSpec spec;
  spec.name = "Mega" + std::to_string(satellite_count);
  spec.region = "Global";
  spec.dts_frequency_hz = cfg.constellation.dts_frequency_hz;
  spec.beacon_sf = cfg.constellation.beacon_sf;
  spec.beacon_eirp_dbm = cfg.constellation.beacon_eirp_dbm;
  spec.groups = {{static_cast<int>(satellite_count), 540.0, 560.0, 53.0}};
  cfg.constellation = spec;
  cfg.downlink.carrier_hz = spec.dts_frequency_hz;
  cfg.uplink.carrier_hz = spec.dts_frequency_hz;

  // Equal-area spiral of sites between +-55 deg latitude (inside the
  // 53 deg shell's coverage), golden-angle longitudes so sites do not
  // cluster along a meridian.
  cfg.fleet.count = node_count;
  cfg.fleet.sites.reserve(site_count);
  constexpr double kGoldenAngleDeg = 137.50776405003785;
  constexpr double kPi = 3.14159265358979323846;
  const double sin_band = std::sin(55.0 * kPi / 180.0);
  for (std::size_t i = 0; i < site_count; ++i) {
    const double u =
        2.0 * (static_cast<double>(i) + 0.5) / static_cast<double>(site_count) -
        1.0;
    const double lat = std::asin(u * sin_band) * 180.0 / kPi;
    const double lon =
        std::fmod(static_cast<double>(i) * kGoldenAngleDeg, 360.0) - 180.0;
    cfg.fleet.sites.push_back(orbit::Geodetic{lat, lon, 0.3});
  }
  cfg.fleet.prototype.name = "scale";
  cfg.fleet.prototype.report_payload_bytes = 20;
  cfg.fleet.prototype.report_interval_s = 1800.0;
  cfg.fleet.prototype.max_retransmissions = 5;
  cfg.fleet.prototype.buffer_capacity = 512;

  // Footprint-wide coordination: mega-fleet ALOHA would collapse the MAC
  // (the very failure mode the paper's Sec 3.1 warns about), so the
  // scale scenario flies the CosMAC-style scheduled uplink.
  cfg.uplink_access = UplinkAccess::kScheduled;
  cfg.satellite_buffer_capacity = 65536;
  return cfg;
}

DtsNetworkResult run_dts_network(const DtsNetworkConfig& cfg) {
  // Wrap the shared pool so its task counters land in this run's
  // registry (the scope detaches on exit: the pool outlives cfg.metrics).
  sim::ThreadPool::MetricsScope pool_scope(sim::ThreadPool::shared(),
                                           cfg.metrics);
  if (cfg.engine != DtsEngine::kLegacy) return run_dts_network_batched(cfg);
  obs::PhaseProfiler phases(cfg.metrics, "net.dts");
  phases.phase("setup");
  Simulator sim(cfg);
  phases.phase("simulate");
  DtsNetworkResult result = sim.run();
  phases.stop();
  return result;
}

}  // namespace sinet::net
