// Uplink medium access: beacon-gated slotted ALOHA with capture.
//
// When a satellite's footprint (10^7 km^2, Table 3) holds many nodes, all
// of them answer the same beacons, so concurrent uplinks collide at the
// satellite (paper Sec 3.1 & Fig 12b). We model the standard capture
// effect: of two time-overlapping packets on one channel, the stronger
// survives if it exceeds the other by the capture threshold.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/event_queue.h"

namespace sinet::net {

struct Transmission {
  std::uint64_t id = 0;
  sim::SimTime start = 0.0;
  sim::SimTime end = 0.0;
  double rssi_dbm = 0.0;

  [[nodiscard]] bool overlaps(const Transmission& o) const noexcept {
    return start < o.end && o.start < end;
  }
};

struct MacConfig {
  double capture_threshold_db = 6.0;
};

/// Decide which of a set of (possibly overlapping) transmissions decode
/// successfully at a single receiver. A transmission survives if every
/// overlapping transmission is at least `capture_threshold_db` weaker.
/// Returns the ids of surviving transmissions, in input order.
[[nodiscard]] std::vector<std::uint64_t> resolve_collisions(
    const std::vector<Transmission>& txs, const MacConfig& cfg = {});

/// Convenience: true if `tx` survives against `others` under `cfg`.
[[nodiscard]] bool survives_collisions(const Transmission& tx,
                                       const std::vector<Transmission>& others,
                                       const MacConfig& cfg = {});

/// Medium-access discipline for beacon-gated uplinks.
enum class UplinkAccess {
  kSlottedAloha,  ///< random offset in the beacon period (baseline)
  /// Constellation-aware scheduling in the spirit of CosMAC (MobiCom'24,
  /// cited by the paper as the fix for footprint-wide collisions): the
  /// beacon carries a subslot map, so responders transmit in dedicated,
  /// non-overlapping subslots.
  kScheduled,
};

/// Non-overlapping subslot start offsets for `responders` transmissions
/// of duration `toa_s` within a beacon period of `period_s`, separated
/// by `guard_s`. Every offset satisfies
///   lead_in_s <= offset  and  offset + toa_s <= period_s,
/// so no scheduled transmission overruns the beacon period. Offsets cycle
/// if the period cannot hold all responders (late ones collide — the
/// schedule is oversubscribed). Throws std::invalid_argument for
/// nonpositive durations or when even a single transmission cannot fit
/// (lead_in_s + toa_s > period_s).
[[nodiscard]] std::vector<double> assign_subslots(std::size_t responders,
                                                  double toa_s,
                                                  double period_s,
                                                  double guard_s = 0.2,
                                                  double lead_in_s = 0.3);

}  // namespace sinet::net
