// End-to-end Direct-to-Satellite network simulator.
//
// Models the full Tianqi-style pipeline the paper measures actively
// (Sec 2.3 / 3.2):
//
//   sensor report -> node buffer -> [wait for satellite pass]
//     -> beacon decode -> DtS uplink (slotted ALOHA + capture, ARQ w/ ACK)
//     -> satellite store-and-forward buffer -> [wait for GS contact]
//     -> ground-station downlink -> operator backhaul -> subscriber server
//
// The simulation is event-driven on sinet::sim and reproducible from
// (config, seed). It produces per-packet UplinkRecords (Figs 5a-5d, 12a,
// 12b), per-node energy residency (Fig 6) and link/MAC counters.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "channel/weather.h"
#include "energy/power_model.h"
#include "net/backhaul.h"
#include "net/beacon.h"
#include "net/ground_station.h"
#include "net/iot_node.h"
#include "net/mac.h"
#include "net/satellite.h"
#include "orbit/constellation.h"
#include "orbit/passes.h"
#include "phy/error_model.h"
#include "phy/link_budget.h"
#include "stats/histogram.h"
#include "trace/packet_trace.h"

namespace sinet::obs {
class MetricsRegistry;
}  // namespace sinet::obs

namespace sinet::net {

/// Which DES engine runs the DtS pipeline.
///
/// kLegacy is the original per-node-event simulator (one queue event per
/// report, per-satellite beacon events iterating every node). kBatched is
/// the population-scale engine: struct-of-arrays node state, lazy report
/// materialization from an activation heap, and one chained timeline
/// event per satellite. Below DtsNetworkConfig::trace_node_threshold the
/// batched engine replays the legacy RNG draw order bit-for-bit and its
/// DtsNetworkResult is EXPECT_EQ-identical (enforced by the randomized
/// parity suite in test_dts_scale.cpp); above it, it switches to
/// active-node-only resolution with streaming aggregates. kAuto resolves
/// to kBatched.
enum class DtsEngine {
  kAuto = 0,
  kLegacy,
  kBatched,
};

/// Compact description of a uniform mega-fleet: `count` nodes cloned from
/// `prototype`, deployed round-robin across `sites` (node i lives at
/// sites[i % sites.size()] and is named "<prototype.name>-<i>" where a
/// name is needed). Avoids materializing one IotNodeConfig — with its
/// heap-allocated name — per node when count is in the millions; the
/// batched engine reads the prototype straight into its SoA arrays.
struct NodeFleet {
  std::size_t count = 0;  ///< 0 = use DtsNetworkConfig::nodes instead
  std::vector<orbit::Geodetic> sites;
  IotNodeConfig prototype;
};

struct DtsNetworkConfig {
  orbit::JulianDate start_jd = 0.0;  ///< simulation epoch (UTC)
  double duration_days = 30.0;

  /// Constellation to fly; TLEs are generated from the paper catalog.
  orbit::ConstellationSpec constellation;

  BeaconConfig beacon;
  MacConfig mac;
  /// Satellite -> ground beacon/ACK radio (satellite tx power & antenna).
  phy::LinkConfig downlink;
  /// Ground -> satellite data uplink (node tx power; rx antenna = dipole).
  phy::LinkConfig uplink;
  phy::ErrorModelConfig error_model;
  int ack_payload_bytes = 12;
  double ack_turnaround_s = 0.3;  ///< satellite rx-to-ack gap
  /// ACKs are short bursts the satellite can afford to send above its
  /// beacon power; even so, a large share is lost, which the paper
  /// identifies as the cause of unnecessary retransmissions (Fig 5b).
  double ack_power_boost_db = 6.0;

  /// Background traffic from the thousands of other devices inside a
  /// satellite's 10^7 km^2 footprint (paper Sec 3.1: bursty concurrent
  /// communications cause collisions / congestion / resource exhaustion).
  /// The footprint load is drawn per (satellite, time block) so that a
  /// congested pass stays congested — which is what defeats ARQ and
  /// produces the paper's residual 4% loss even with 5 retransmissions.
  struct Congestion {
    bool enabled = true;
    double block_duration_s = 600.0;      ///< load coherence time
    double congested_probability = 0.02;  ///< share of congested blocks
    double congested_loss = 0.9;   ///< per-attempt loss when congested
    double nominal_load_mean = 0.02;  ///< mean per-attempt background loss
  };
  Congestion congestion;

  /// Operator-side loss after a successful DtS uplink (downlink
  /// corruption, data-center drops). The node already holds an ACK, so
  /// ARQ cannot recover these — they are the residual loss that keeps
  /// the paper's with-ARQ reliability at 96% rather than ~100% (Fig 5a).
  double delivery_loss_probability = 0.03;

  // --- DtS optimizations the paper's conclusion calls for -------------
  /// Uplink medium access: baseline slotted ALOHA, or CosMAC-style
  /// scheduled subslots (removes intra-footprint collisions).
  UplinkAccess uplink_access = UplinkAccess::kSlottedAloha;
  /// When scheduled, footprint-wide coordination also suppresses the
  /// background collision load to this fraction of its ALOHA value.
  double scheduled_background_factor = 0.15;
  /// TLE-based Doppler pre-compensation at the node (Spectrumize-style):
  /// the node pre-shifts its carrier, leaving only ephemeris error.
  bool doppler_precompensation = false;
  double precompensation_residual = 0.05;
  /// Adaptive data rate: pick the uplink SF from the decoded beacon's
  /// SNR instead of the fixed SF10 profile.
  bool adaptive_sf = false;
  /// Assumed uplink-over-downlink SNR advantage used by the ADR
  /// estimator (node Tx power + gateway receiver, dB).
  double adr_uplink_advantage_db = 9.0;
  /// Store-and-forward overflow policy on the satellites.
  DropPolicy satellite_drop_policy = DropPolicy::kDropNewest;
  /// Packets one ground-station contact can drain from a satellite
  /// (L2D2-style rate-limited downlink). 0 = unlimited.
  std::size_t downlink_packets_per_contact = 0;

  std::vector<IotNodeConfig> nodes;
  /// Population-scale alternative to `nodes`: when fleet.count > 0 the
  /// node list must be empty and the fleet prototype/sites describe the
  /// population instead.
  NodeFleet fleet;
  std::vector<GroundStationSite> ground_stations;
  BackhaulConfig delivery_backhaul;
  std::size_t satellite_buffer_capacity = 4096;

  /// Engine selection (see DtsEngine). kAuto runs the batched engine.
  DtsEngine engine = DtsEngine::kAuto;
  /// Node-count boundary of the batched engine's two modes. At or below
  /// the threshold it keeps full per-packet UplinkRecords / per-node
  /// residency and reproduces the legacy engine bit-for-bit; above it,
  /// results carry only DtsAggregates (uplinks/node_residency stay
  /// empty) and memory stays O(nodes + pending), not O(reports).
  std::size_t trace_node_threshold = 4096;
  /// Tail exclusion (s) for the aggregate eligible-delivery ratio:
  /// reports generated within this long of the run end are not counted
  /// as eligible (mirrors core::summarize_reliability's default). The
  /// effective exclusion is clamped to half the run duration so a short
  /// probe run (duration < 2x this default) still reports a nonzero
  /// eligible population instead of excluding every report.
  double aggregate_tail_exclusion_s = 6.0 * 3600.0;

  /// Weather per simulated day at the node site; shorter vectors repeat
  /// cyclically, empty = always sunny.
  std::vector<channel::Weather> daily_weather;

  /// Elevation mask for "theoretical" visibility used for scheduling.
  double visibility_mask_deg = 0.0;
  /// Coarse pass-scan step (s). 60 s is safe for LEO (> 6-min passes).
  double pass_scan_step_s = 60.0;
  /// Pass-prediction fan-out (orbit::predict_passes_batch): 0 = all
  /// hardware threads, 1 = exact serial legacy path.
  unsigned pass_threads = 0;
  /// Worker threads for the sharded aggregate-mode DES itself (runs above
  /// trace_node_threshold nodes): 0 = all hardware threads, 1 = run the
  /// shard schedule inline on the calling thread. Results are
  /// thread-count-invariant BY CONSTRUCTION — every aggregate counter,
  /// histogram bin and residency mode is bit-identical for any value
  /// (enforced by tests/test_dts_parallel.cpp); the knob only changes
  /// wall-clock time. Exact (trace) mode is a serial bit-parity replay of
  /// the legacy engine and ignores this field.
  unsigned sim_threads = 0;

  std::uint64_t seed = 42;

  /// Optional run-metrics sink. When non-null the run records event-queue
  /// ("sim.event_queue.*"), thread-pool ("sim.thread_pool.*"), pass-cache
  /// ("orbit.pass_cache.*") and network ("net.dts.*") metrics into it;
  /// null (the default) disables all instrumentation. The registry must
  /// outlive run_dts_network().
  obs::MetricsRegistry* metrics = nullptr;
};

/// A sensible default configuration matching the paper's active setup:
/// Tianqi constellation, three nodes at a Yunnan coffee plantation,
/// 20-byte reports every 30 minutes, the 12 operator ground stations.
[[nodiscard]] DtsNetworkConfig tianqi_agriculture_config(
    orbit::JulianDate start_jd, double duration_days = 30.0);

struct DtsCounters {
  std::uint64_t beacons_sent = 0;
  std::uint64_t beacons_heard = 0;
  std::uint64_t uplink_attempts = 0;
  std::uint64_t uplinks_received = 0;
  std::uint64_t uplinks_collided = 0;
  std::uint64_t acks_sent = 0;
  std::uint64_t acks_received = 0;
  std::uint64_t duplicate_uplinks = 0;  ///< retx after lost ACK
  std::uint64_t satellite_buffer_drops = 0;
  std::uint64_t background_losses = 0;  ///< footprint congestion losses
};

/// Streaming aggregates of a DtS run. Always populated; above the trace
/// threshold they are the ONLY per-packet output (the engine folds each
/// delivery into these histograms at flush time instead of keeping an
/// UplinkRecord per report), which is what keeps a 1M-node / 24 h run's
/// memory bounded. Latency decompositions are over delivered packets
/// with complete timing, matching mean_latency_breakdown(); the wait
/// histogram is over every packet that reached a first transmission.
struct DtsAggregates {
  std::uint64_t reports_generated = 0;
  std::uint64_t reports_delivered = 0;
  /// Reports generated at least `aggregate_tail_exclusion_s` before the
  /// run end (they had a fair chance to deliver), and the delivered
  /// subset thereof — the scale PDR scored against the analytic model.
  std::uint64_t eligible_generated = 0;
  std::uint64_t eligible_delivered = 0;
  std::uint64_t local_buffer_drops = 0;
  std::uint64_t packets_abandoned = 0;  ///< ARQ budget exhausted

  double sum_end_to_end_s = 0.0;  ///< over delivered packets
  double sum_wait_s = 0.0;        ///< over first-transmitted packets
  std::uint64_t wait_samples = 0;
  double sum_dts_transfer_s = 0.0;  ///< over delivered w/ full timing
  double sum_delivery_s = 0.0;
  std::uint64_t breakdown_samples = 0;

  stats::Histogram latency_s{0.0, 6.0 * 3600.0, 144};
  stats::Histogram wait_s{0.0, 6.0 * 3600.0, 144};
  stats::Histogram attempts{0.5, 32.5, 32};  ///< per transmitted packet

  /// Fleet-summed energy residency (per-node trackers are only kept
  /// below the trace threshold).
  energy::ResidencyTracker fleet_residency;

  [[nodiscard]] double delivered_fraction() const;
  [[nodiscard]] double eligible_delivered_fraction() const;
  [[nodiscard]] double mean_end_to_end_s() const;
  [[nodiscard]] double mean_wait_s() const;

  /// Fold a shard-local partial into this aggregate: counter addition,
  /// double-sum addition, stats::Histogram::merge on each histogram and
  /// per-mode residency addition. The parallel engine calls this in a
  /// fixed shard order after its barrier, which is what keeps the merged
  /// double sums bit-identical across thread counts.
  void merge_from(const DtsAggregates& other);
};

struct DtsNetworkResult {
  std::vector<trace::UplinkRecord> uplinks;  ///< one per generated report
  std::vector<energy::ResidencyTracker> node_residency;
  DtsCounters counters;
  /// Streaming aggregates; above the trace threshold `uplinks` and
  /// `node_residency` stay empty and this is the per-packet output.
  DtsAggregates agg;

  [[nodiscard]] double delivered_fraction() const;
  [[nodiscard]] double mean_end_to_end_s() const;
  /// Mean latency decomposition over delivered packets (Fig 5d), seconds:
  /// {wait for pass, DtS transfer, delivery via GS+backhaul}.
  struct LatencyBreakdown {
    double wait_for_pass_s = 0.0;
    double dts_transfer_s = 0.0;
    double delivery_s = 0.0;
  };
  [[nodiscard]] LatencyBreakdown mean_latency_breakdown() const;
};

/// Ground-station drain opportunities inside one contact window, as sim
/// times. Nominally two flushes per contact — 20 s after AOS (link
/// acquisition) and 5 s before LOS — both clamped into [aos_s, los_s].
/// Windows shorter than 25 s get a single flush at the window midpoint;
/// an empty/inverted window (los_s < aos_s) yields no flushes.
[[nodiscard]] std::vector<double> gs_flush_times(double aos_s, double los_s);

/// Population-scale configuration: `node_count` nodes with the Tianqi
/// agriculture link budget spread round-robin over `site_count` sites on
/// an equal-area spiral between +-55 deg latitude, flying a synthetic
/// `satellite_count`-satellite constellation (Tianqi-like 550 km / 53 deg
/// shell). Uses scheduled (CosMAC-style) uplink access so the footprint
/// MAC stays stable at mega-fleet load, and sizes the satellite buffers
/// for the per-satellite arrival rate. Deterministic for a fixed seed.
[[nodiscard]] DtsNetworkConfig scale_fleet_config(
    std::size_t node_count, std::size_t satellite_count,
    std::size_t site_count, orbit::JulianDate start_jd,
    double duration_days = 1.0);

/// Run the full simulation with the engine selected by cfg.engine.
/// Throws std::invalid_argument on nonsensical configuration (no nodes,
/// nonpositive duration, ...).
[[nodiscard]] DtsNetworkResult run_dts_network(const DtsNetworkConfig& cfg);

}  // namespace sinet::net
