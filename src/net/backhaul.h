// Terrestrial backhaul latency models.
//
// Once data reaches an operator ground station (satellite side) or an LTE
// gateway (terrestrial side), it crosses the Internet to the subscriber
// server. These delays are seconds at most — the paper's hour-scale
// satellite latency comes from orbital waiting, which the simulator
// produces; the backhaul just adds realistic tail noise.
#pragma once

#include "sim/rng.h"

namespace sinet::net {

struct BackhaulConfig {
  double base_delay_s = 0.35;    ///< median one-way delivery time
  double jitter_sigma_ln = 0.6;  ///< log-normal jitter shape
  double processing_delay_s = 0.0;  ///< operator data-center processing
};

class BackhaulModel {
 public:
  explicit BackhaulModel(const BackhaulConfig& cfg = {});

  /// Draw one delivery delay (s), always > 0.
  [[nodiscard]] double draw_delay_s(sim::Rng& rng) const;

  [[nodiscard]] const BackhaulConfig& config() const noexcept { return cfg_; }

 private:
  BackhaulConfig cfg_;
};

/// LTE backhaul used by the terrestrial gateways (tens of ms).
[[nodiscard]] BackhaulConfig lte_backhaul();

/// Tianqi delivery path: satellite-to-GS demod + data-center processing +
/// Internet forwarding (paper Sec 2.3). The orbital wait dominates; the
/// fixed part models operator-side batching.
[[nodiscard]] BackhaulConfig tianqi_delivery_backhaul();

}  // namespace sinet::net
