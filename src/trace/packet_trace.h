// Packet trace records — the dataset schema of the measurement study.
//
// Each received beacon yields one record with timestamp, RSSI, SNR and
// sender-satellite metadata (altitude, elevation, Doppler), mirroring what
// the customized TinyGS platform extracts (paper Sec 2.2). Active
// (Tianqi-node) traces additionally carry end-to-end timing fields.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sinet::trace {

/// One passively received beacon.
struct BeaconRecord {
  double time_unix_s = 0.0;
  std::string station;        ///< ground-station id, e.g. "HK-3"
  std::string constellation;  ///< e.g. "Tianqi"
  std::string satellite;      ///< e.g. "Tianqi-07"
  double rssi_dbm = 0.0;
  double snr_db = 0.0;
  double elevation_deg = 0.0;
  double azimuth_deg = 0.0;
  double range_km = 0.0;
  double doppler_hz = 0.0;
  double sat_altitude_km = 0.0;
  std::string weather;  ///< condition at the station when received
};

/// One end-to-end application packet in the active experiment.
struct UplinkRecord {
  std::uint64_t sequence = 0;
  std::string node;  ///< e.g. "TQ-node-1"
  int payload_bytes = 0;
  double generated_unix_s = 0.0;  ///< sensor produced the reading
  double first_tx_unix_s = -1.0;  ///< first DtS attempt (-1: never sent)
  double satellite_rx_unix_s = -1.0;  ///< accepted by a satellite
  double server_rx_unix_s = -1.0;     ///< arrived at subscriber server
  int dts_attempts = 0;               ///< transmissions incl. first
  int max_concurrent_tx = 0;  ///< peak simultaneous uplinks seen (Fig 12b)
  bool delivered = false;
  std::string via_satellite;

  [[nodiscard]] double wait_for_pass_s() const {
    return first_tx_unix_s < 0.0 ? -1.0 : first_tx_unix_s - generated_unix_s;
  }
  [[nodiscard]] double dts_transfer_s() const {
    return (satellite_rx_unix_s < 0.0 || first_tx_unix_s < 0.0)
               ? -1.0
               : satellite_rx_unix_s - first_tx_unix_s;
  }
  [[nodiscard]] double delivery_s() const {
    return (server_rx_unix_s < 0.0 || satellite_rx_unix_s < 0.0)
               ? -1.0
               : server_rx_unix_s - satellite_rx_unix_s;
  }
  [[nodiscard]] double end_to_end_s() const {
    return server_rx_unix_s < 0.0 ? -1.0
                                  : server_rx_unix_s - generated_unix_s;
  }
};

/// Append-only container for a measurement campaign's beacon traces.
class BeaconTraceSet {
 public:
  void add(BeaconRecord r) { records_.push_back(std::move(r)); }
  [[nodiscard]] const std::vector<BeaconRecord>& records() const noexcept {
    return records_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }
  [[nodiscard]] bool empty() const noexcept { return records_.empty(); }

  /// Records matching a predicate-style filter (empty string = wildcard).
  [[nodiscard]] std::vector<BeaconRecord> filter(
      const std::string& station, const std::string& constellation) const;

  void clear() noexcept { records_.clear(); }

 private:
  std::vector<BeaconRecord> records_;
};

}  // namespace sinet::trace
