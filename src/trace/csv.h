// CSV serialization for trace records, for offline analysis / plotting.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "trace/packet_trace.h"

namespace sinet::trace {

/// Write beacon records as CSV (header + one row per record).
void write_beacon_csv(std::ostream& os, const std::vector<BeaconRecord>& rs);

/// Write uplink records as CSV (header + one row per record).
void write_uplink_csv(std::ostream& os, const std::vector<UplinkRecord>& rs);

/// Escape a CSV field (quotes fields containing comma/quote/newline).
[[nodiscard]] std::string csv_escape(const std::string& field);

/// Split one CSV line into fields, honoring RFC-4180 quoting.
[[nodiscard]] std::vector<std::string> csv_split(const std::string& line);

/// Parse a beacon-trace CSV produced by write_beacon_csv (header
/// required). Throws std::invalid_argument on malformed rows with the
/// 1-based line number in the message.
[[nodiscard]] std::vector<BeaconRecord> read_beacon_csv(std::istream& is);

/// Parse an uplink-record CSV produced by write_uplink_csv.
[[nodiscard]] std::vector<UplinkRecord> read_uplink_csv(std::istream& is);

}  // namespace sinet::trace
