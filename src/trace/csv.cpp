#include "trace/csv.h"

#include <cstdio>
#include <cstdlib>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>

namespace sinet::trace {

namespace {

[[noreturn]] void fail_row(std::size_t line_no, const char* what) {
  throw std::invalid_argument("CSV parse error at line " +
                              std::to_string(line_no) + ": " + what);
}

double to_double(const std::string& s, std::size_t line_no) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str()) fail_row(line_no, "expected a number");
  return v;
}

int to_int(const std::string& s, std::size_t line_no) {
  return static_cast<int>(to_double(s, line_no));
}

/// 64-bit counters (packet sequence numbers) must not round-trip through
/// a double: above 2^53 the cast silently lands on the nearest even
/// integer and two distinct sequences collide. Parse integral fields
/// with strtoull instead.
std::uint64_t to_u64(const std::string& s, std::size_t line_no) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (end == s.c_str()) fail_row(line_no, "expected an integer");
  return static_cast<std::uint64_t>(v);
}

/// Fixed-precision double for streaming. Keeps the printf-style rounding
/// the readers expect while letting string fields of any length stream
/// directly (a whole-row snprintf into char[256] silently truncated rows
/// with long station/satellite names).
struct Fixed {
  double v;
  int prec;
};

std::ostream& operator<<(std::ostream& os, Fixed f) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", f.prec, f.v);
  return os << buf;
}

}  // namespace

std::vector<std::string> csv_split(const std::string& line) {
  std::vector<std::string> fields;
  std::string cur;
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      fields.push_back(std::move(cur));
      cur.clear();
    } else if (c != '\r') {
      cur += c;
    }
  }
  fields.push_back(std::move(cur));
  return fields;
}

std::vector<BeaconRecord> read_beacon_csv(std::istream& is) {
  std::vector<BeaconRecord> out;
  std::string line;
  std::size_t line_no = 0;
  if (!std::getline(is, line))
    throw std::invalid_argument("CSV parse error: empty stream");
  ++line_no;
  if (line.rfind("time_unix_s,", 0) != 0)
    fail_row(line_no, "missing beacon CSV header");
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    const auto f = csv_split(line);
    if (f.size() != 12) fail_row(line_no, "expected 12 columns");
    BeaconRecord r;
    r.time_unix_s = to_double(f[0], line_no);
    r.station = f[1];
    r.constellation = f[2];
    r.satellite = f[3];
    r.rssi_dbm = to_double(f[4], line_no);
    r.snr_db = to_double(f[5], line_no);
    r.elevation_deg = to_double(f[6], line_no);
    r.azimuth_deg = to_double(f[7], line_no);
    r.range_km = to_double(f[8], line_no);
    r.doppler_hz = to_double(f[9], line_no);
    r.sat_altitude_km = to_double(f[10], line_no);
    r.weather = f[11];
    out.push_back(std::move(r));
  }
  return out;
}

std::vector<UplinkRecord> read_uplink_csv(std::istream& is) {
  std::vector<UplinkRecord> out;
  std::string line;
  std::size_t line_no = 0;
  if (!std::getline(is, line))
    throw std::invalid_argument("CSV parse error: empty stream");
  ++line_no;
  if (line.rfind("sequence,", 0) != 0)
    fail_row(line_no, "missing uplink CSV header");
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    const auto f = csv_split(line);
    if (f.size() != 10) fail_row(line_no, "expected 10 columns");
    UplinkRecord r;
    r.sequence = to_u64(f[0], line_no);
    r.node = f[1];
    r.payload_bytes = to_int(f[2], line_no);
    r.generated_unix_s = to_double(f[3], line_no);
    r.first_tx_unix_s = to_double(f[4], line_no);
    r.satellite_rx_unix_s = to_double(f[5], line_no);
    r.server_rx_unix_s = to_double(f[6], line_no);
    r.dts_attempts = to_int(f[7], line_no);
    r.delivered = to_int(f[8], line_no) != 0;
    r.via_satellite = f[9];
    out.push_back(std::move(r));
  }
  return out;
}

std::string csv_escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void write_beacon_csv(std::ostream& os, const std::vector<BeaconRecord>& rs) {
  os << "time_unix_s,station,constellation,satellite,rssi_dbm,snr_db,"
        "elevation_deg,azimuth_deg,range_km,doppler_hz,sat_altitude_km,"
        "weather\n";
  for (const BeaconRecord& r : rs) {
    os << Fixed{r.time_unix_s, 3} << ',' << csv_escape(r.station) << ','
       << csv_escape(r.constellation) << ',' << csv_escape(r.satellite)
       << ',' << Fixed{r.rssi_dbm, 1} << ',' << Fixed{r.snr_db, 1} << ','
       << Fixed{r.elevation_deg, 2} << ',' << Fixed{r.azimuth_deg, 2}
       << ',' << Fixed{r.range_km, 1} << ',' << Fixed{r.doppler_hz, 1}
       << ',' << Fixed{r.sat_altitude_km, 1} << ','
       << csv_escape(r.weather) << '\n';
  }
}

void write_uplink_csv(std::ostream& os, const std::vector<UplinkRecord>& rs) {
  os << "sequence,node,payload_bytes,generated_unix_s,first_tx_unix_s,"
        "satellite_rx_unix_s,server_rx_unix_s,dts_attempts,delivered,"
        "via_satellite\n";
  for (const UplinkRecord& r : rs) {
    os << r.sequence << ',' << csv_escape(r.node) << ',' << r.payload_bytes
       << ',' << Fixed{r.generated_unix_s, 3} << ','
       << Fixed{r.first_tx_unix_s, 3} << ','
       << Fixed{r.satellite_rx_unix_s, 3} << ','
       << Fixed{r.server_rx_unix_s, 3} << ',' << r.dts_attempts << ','
       << (r.delivered ? 1 : 0) << ',' << csv_escape(r.via_satellite)
       << '\n';
  }
}

}  // namespace sinet::trace
