#include "trace/packet_trace.h"

namespace sinet::trace {

std::vector<BeaconRecord> BeaconTraceSet::filter(
    const std::string& station, const std::string& constellation) const {
  std::vector<BeaconRecord> out;
  for (const BeaconRecord& r : records_) {
    if (!station.empty() && r.station != station) continue;
    if (!constellation.empty() && r.constellation != constellation) continue;
    out.push_back(r);
  }
  return out;
}

}  // namespace sinet::trace
