#include "exp/sweep_spec.h"

#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "obs/json.h"
#include "sim/rng.h"

namespace sinet::exp {

std::size_t SweepSpec::cell_count() const {
  std::size_t n = 1;
  for (const SweepAxis& axis : axes) n *= axis.values.size();
  return n;
}

std::size_t SweepSpec::point_count() const {
  return cell_count() * replicates;
}

PointParams SweepSpec::cell_params(std::size_t grid_index) const {
  if (grid_index >= cell_count())
    throw std::invalid_argument("SweepSpec::cell_params: index out of range");
  PointParams params;
  params.reserve(axes.size());
  // Axis 0 varies fastest: peel indices off the flat index in order.
  std::size_t rest = grid_index;
  for (const SweepAxis& axis : axes) {
    const std::size_t i = rest % axis.values.size();
    rest /= axis.values.size();
    params.emplace_back(axis.param, axis.values[i]);
  }
  return params;
}

void SweepSpec::validate() const {
  if (runner.empty())
    throw std::invalid_argument("SweepSpec: runner must be named");
  if (replicates == 0)
    throw std::invalid_argument("SweepSpec: replicates must be >= 1");
  std::set<std::string> seen;
  for (const SweepAxis& axis : axes) {
    if (axis.param.empty())
      throw std::invalid_argument("SweepSpec: axis with empty param name");
    if (axis.values.empty())
      throw std::invalid_argument("SweepSpec: axis '" + axis.param +
                                  "' has no values");
    if (!seen.insert(axis.param).second)
      throw std::invalid_argument("SweepSpec: duplicate axis '" +
                                  axis.param + "'");
  }
}

double RunPoint::param_or(const std::string& name, double fallback) const {
  for (const auto& [param, value] : params)
    if (param == name) return value;
  return fallback;
}

std::uint64_t point_seed(const SweepSpec& spec, std::size_t grid_index,
                         std::size_t replicate) {
  return sim::derive_seed(spec.root_seed,
                          "point/" + std::to_string(grid_index) + "/rep/" +
                              std::to_string(replicate));
}

std::vector<RunPoint> expand(const SweepSpec& spec) {
  spec.validate();
  std::vector<RunPoint> points;
  points.reserve(spec.point_count());
  for (std::size_t g = 0; g < spec.cell_count(); ++g) {
    const PointParams params = spec.cell_params(g);
    for (std::size_t r = 0; r < spec.replicates; ++r) {
      RunPoint p;
      p.grid_index = g;
      p.replicate = r;
      p.seed = point_seed(spec, g, r);
      p.params = params;
      points.push_back(std::move(p));
    }
  }
  return points;
}

std::string to_json(const SweepSpec& spec) {
  std::string out = "{\n  \"schema\": \"";
  out += kSweepSpecSchema;
  out += "\",\n  \"name\": \"" + obs::json_escape(spec.name) + "\",\n";
  out += "  \"runner\": \"" + obs::json_escape(spec.runner) + "\",\n";
  out += "  \"root_seed\": " + obs::json_u64(spec.root_seed) + ",\n";
  out += "  \"replicates\": " +
         obs::json_u64(static_cast<std::uint64_t>(spec.replicates)) + ",\n";
  out += "  \"axes\": [";
  for (std::size_t a = 0; a < spec.axes.size(); ++a) {
    out += a == 0 ? "\n" : ",\n";
    out += "    {\"param\": \"" + obs::json_escape(spec.axes[a].param) +
           "\", \"values\": [";
    for (std::size_t i = 0; i < spec.axes[a].values.size(); ++i) {
      if (i > 0) out += ", ";
      out += obs::json_double(spec.axes[a].values[i]);
    }
    out += "]}";
  }
  out += spec.axes.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

SweepSpec parse_spec_json(const std::string& json) {
  obs::JsonCursor cur(json);
  SweepSpec spec;
  spec.replicates = 0;  // must come from the document
  bool schema_ok = false;
  obs::parse_json_object(cur, [&](const std::string& key) {
    if (key == "schema") {
      if (cur.parse_string() != kSweepSpecSchema)
        cur.fail("unsupported schema");
      schema_ok = true;
    } else if (key == "name") {
      spec.name = cur.parse_string();
    } else if (key == "runner") {
      spec.runner = cur.parse_string();
    } else if (key == "root_seed") {
      spec.root_seed = cur.parse_u64();
    } else if (key == "replicates") {
      spec.replicates = static_cast<std::size_t>(cur.parse_u64());
    } else if (key == "axes") {
      obs::parse_json_array(cur, [&] {
        SweepAxis axis;
        obs::parse_json_object(cur, [&](const std::string& k) {
          if (k == "param") {
            axis.param = cur.parse_string();
          } else if (k == "values") {
            obs::parse_json_array(
                cur, [&] { axis.values.push_back(cur.parse_double()); });
          } else {
            cur.fail("unknown axis field '" + k + "'");
          }
        });
        spec.axes.push_back(std::move(axis));
      });
    } else {
      cur.fail("unknown top-level key '" + key + "'");
    }
  });
  if (!schema_ok)
    throw std::runtime_error("sweep spec parse error: missing schema tag");
  spec.validate();
  return spec;
}

SweepSpec read_spec_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open sweep spec " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_spec_json(buf.str());
}

}  // namespace sinet::exp
