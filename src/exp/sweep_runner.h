// Sharded, resumable execution of Monte-Carlo sweeps.
//
// run_sweep() takes an expanded SweepSpec and pushes every RunPoint
// through a PointRunner — a pure function (RunPoint -> named scalar
// metrics) — sharding points across the shared sim::ThreadPool. Because
// each point is a pure function of (params, seed), the per-point metrics
// are identical at threads=1 and threads=N; the aggregate step then
// sorts by (grid_index, replicate) so the report JSON is byte-identical
// regardless of scheduling order.
//
// Checkpointing: with SweepOptions::manifest_path set, every completed
// point is appended to a JSONL manifest (one line per point, flushed and
// fsync'd) headed by a fingerprint of the spec. An interrupted sweep
// re-run with the same spec skips completed points and reuses their
// recorded metrics — the resumed aggregate is byte-identical to an
// uninterrupted run (tests/test_sweep.cpp proves it).
//
// Instrumentation: with SweepOptions::metrics set, progress lands under
// "net.sweep.*" (points_total / points_resumed / points_executed /
// cells counters, phase gauges net.sweep.phase.{expand,resume,execute,
// aggregate}_s, and a per-point latency histogram).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "exp/sweep_spec.h"

namespace sinet::obs {
class MetricsRegistry;
}  // namespace sinet::obs

namespace sinet::exp {

/// Named scalar metrics one run point produces (ordered map so every
/// serialization of the same metrics is identical).
using PointMetrics = std::map<std::string, double>;

/// Executes one point. Must be thread-safe and a pure function of the
/// point (same point -> same metrics), or resume/parity guarantees die.
using PointRunner = std::function<PointMetrics(const RunPoint&)>;

/// Built-in runner for a spec's `runner` name:
///  - "active":       net::run_dts_network via the Tianqi active config.
///    Params: duration_days, max_retransmissions, payload_bytes.
///    Metrics: reliability, mean_latency_min, wait_min, delivery_min,
///    mean_attempts, delivered_fraction.
///  - "passive":      core::run_passive_campaign (all sites/fleets).
///    Params: duration_days. Metrics: traces, beacons_transmitted,
///    beacons_received, beacon_loss_fraction.
///  - "availability": core::daily_presence_hours per paper constellation.
///    Params: duration_days, latitude_deg, longitude_deg.
///    Metrics: presence_h.<constellation>.
/// Throws std::invalid_argument for an unknown name.
[[nodiscard]] PointRunner built_in_runner(const std::string& name);

/// Across-replicate summary of one metric in one grid cell.
struct MetricAggregate {
  std::size_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;  ///< sample stddev (0 when n < 2)
  double ci_low = 0.0;  ///< 95% percentile-bootstrap CI for the mean
  double ci_high = 0.0;
  friend bool operator==(const MetricAggregate&,
                         const MetricAggregate&) = default;
};

struct CellAggregate {
  std::size_t grid_index = 0;
  PointParams params;
  std::map<std::string, MetricAggregate> metrics;
  friend bool operator==(const CellAggregate&,
                         const CellAggregate&) = default;
};

/// Thread-safe collector of completed points. Workers add() concurrently;
/// aggregate() orders by (grid_index, replicate) before summarizing, so
/// the result is independent of completion order. Bootstrap CIs draw from
/// a stream derived per (cell, metric) off the sweep's root seed —
/// deterministic, and independent of every simulation stream.
class SweepAccumulator {
 public:
  void add(const RunPoint& point, PointMetrics metrics);
  [[nodiscard]] std::size_t size() const;
  /// Completed points sorted by (grid_index, replicate).
  [[nodiscard]] std::vector<std::pair<RunPoint, PointMetrics>>
  sorted_points() const;
  [[nodiscard]] std::vector<CellAggregate> aggregate(
      std::uint64_t root_seed, std::size_t bootstrap_resamples = 1000) const;

 private:
  mutable std::mutex mutex_;
  std::vector<std::pair<RunPoint, PointMetrics>> points_;
};

struct SweepOptions {
  /// Sharding fan-out: 0 = shared pool (all hardware threads), 1 = serial
  /// on the calling thread, N = a local N-worker pool.
  unsigned threads = 0;
  /// JSONL checkpoint manifest; empty disables checkpointing.
  std::string manifest_path;
  /// Ignore (and overwrite) an existing manifest instead of resuming.
  bool fresh = false;
  /// Stop after this many newly-executed points (0 = run everything).
  /// The deterministic stand-in for an interrupt: the manifest holds the
  /// completed prefix and the next run resumes it.
  std::size_t max_points = 0;
  std::size_t bootstrap_resamples = 1000;
  /// Optional run-metrics sink ("net.sweep.*"); must outlive run_sweep().
  obs::MetricsRegistry* metrics = nullptr;
};

struct SweepResult {
  SweepSpec spec;
  bool complete = false;  ///< every grid point has run (none truncated)
  std::size_t resumed_points = 0;   ///< replayed from the manifest
  std::size_t executed_points = 0;  ///< freshly run this invocation
  /// Completed points, sorted by (grid_index, replicate).
  std::vector<std::pair<RunPoint, PointMetrics>> points;
  std::vector<CellAggregate> cells;
};

/// Run (or resume) a sweep with an explicit runner.
/// Throws std::invalid_argument on a bad spec and std::runtime_error on
/// manifest problems (unwritable path, or an existing manifest whose
/// fingerprint does not match the spec).
[[nodiscard]] SweepResult run_sweep(const SweepSpec& spec,
                                    const PointRunner& runner,
                                    const SweepOptions& opts = {});

/// Convenience: run with built_in_runner(spec.runner).
[[nodiscard]] SweepResult run_sweep(const SweepSpec& spec,
                                    const SweepOptions& opts = {});

/// Schema tag of the aggregate report.
inline constexpr const char* kSweepReportSchema = "sinet.sweep_report.v1";
/// Schema tag of the checkpoint manifest header line.
inline constexpr const char* kSweepManifestSchema = "sinet.sweep_manifest.v1";

/// Aggregate report document. Equal results serialize byte-identically
/// (doubles at 17 significant digits), which is what the kill-and-resume
/// regression compares.
[[nodiscard]] std::string report_json(const SweepResult& result);

/// Write report_json() to `path`. Returns false on I/O failure.
bool write_report_file(const std::string& path, const SweepResult& result);

}  // namespace sinet::exp
