// Declarative Monte-Carlo sweep specifications.
//
// A SweepSpec is the unit a campaign is described in: a parameter grid
// (axes of named values), a replicate count and a root seed. It expands
// into a deterministic, ordered list of RunPoints — one per (grid cell,
// replicate) — each carrying its own seed derived as
//
//   sim::derive_seed(root_seed, "point/<grid-index>/rep/<replicate>")
//
// so the draws of a point depend only on its grid index and replicate
// number: adding replicates never perturbs existing ones, and because
// axis 0 varies fastest in the flat grid index, *appending* a new axis
// keeps the indices of all existing cells (they become the new axis's
// first value).
//
// Specs round-trip through a small JSON schema ("sinet.sweep_spec.v1",
// same conventions as obs::run_report):
//
//   {
//     "schema": "sinet.sweep_spec.v1",
//     "name": "fig5a-arq",
//     "runner": "active",
//     "root_seed": 42,
//     "replicates": 10,
//     "axes": [
//       {"param": "max_retransmissions", "values": [0, 5]},
//       {"param": "duration_days", "values": [3]}
//     ]
//   }
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace sinet::exp {

/// Schema tag stamped into every serialized spec.
inline constexpr const char* kSweepSpecSchema = "sinet.sweep_spec.v1";

/// One grid axis: a named parameter and the values it sweeps over.
struct SweepAxis {
  std::string param;
  std::vector<double> values;
  friend bool operator==(const SweepAxis&, const SweepAxis&) = default;
};

/// Ordered (param, value) assignment of one grid cell.
using PointParams = std::vector<std::pair<std::string, double>>;

struct SweepSpec {
  std::string name;
  /// Which runner executes each point: a built-in name ("active",
  /// "passive", "availability") for the CLI path, or any tag when the
  /// caller supplies its own PointRunner (exp/sweep_runner.h).
  std::string runner;
  std::uint64_t root_seed = 42;
  std::size_t replicates = 10;
  /// Axis 0 varies fastest in the flat grid index. No axes = one cell.
  std::vector<SweepAxis> axes;

  /// Number of grid cells (product of axis lengths; 1 when no axes).
  [[nodiscard]] std::size_t cell_count() const;
  /// cell_count() * replicates.
  [[nodiscard]] std::size_t point_count() const;
  /// Decode a flat grid index into its (param, value) assignment.
  [[nodiscard]] PointParams cell_params(std::size_t grid_index) const;

  /// Throws std::invalid_argument on an unusable spec (no replicates,
  /// empty axis, duplicate/empty param name, empty runner).
  void validate() const;

  friend bool operator==(const SweepSpec&, const SweepSpec&) = default;
};

/// One concrete run: a grid cell, a replicate number and the seed the
/// run must use.
struct RunPoint {
  std::size_t grid_index = 0;
  std::size_t replicate = 0;
  std::uint64_t seed = 0;
  PointParams params;

  /// Value of a parameter, or `fallback` when the grid doesn't carry it.
  [[nodiscard]] double param_or(const std::string& name,
                                double fallback) const;

  friend bool operator==(const RunPoint&, const RunPoint&) = default;
};

/// The seed of (grid_index, replicate) under `spec`'s root seed.
[[nodiscard]] std::uint64_t point_seed(const SweepSpec& spec,
                                       std::size_t grid_index,
                                       std::size_t replicate);

/// Expand the grid into points ordered by (grid_index, replicate).
/// Validates the spec first.
[[nodiscard]] std::vector<RunPoint> expand(const SweepSpec& spec);

/// Serialize a spec; parse_spec_json(to_json(s)) == s bit-exactly.
[[nodiscard]] std::string to_json(const SweepSpec& spec);

/// Parse a document produced by to_json() (or hand-written to the same
/// schema). Throws std::runtime_error on malformed input or a schema
/// mismatch; the result is validate()d.
[[nodiscard]] SweepSpec parse_spec_json(const std::string& json);

/// Read and parse a spec file. Throws std::runtime_error if unreadable.
[[nodiscard]] SweepSpec read_spec_file(const std::string& path);

}  // namespace sinet::exp
