#include "exp/sweep_runner.h"

#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <set>
#include <stdexcept>

#include "core/active_experiment.h"
#include "core/availability.h"
#include "core/passive_campaign.h"
#include "core/scenario.h"
#include "orbit/constellation.h"
#include "orbit/passes.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/scoped_timer.h"
#include "sim/rng.h"
#include "sim/thread_pool.h"
#include "stats/bootstrap.h"

namespace sinet::exp {

namespace {

PointMetrics run_active_point(const RunPoint& p) {
  core::ActiveExperimentKnobs knobs;
  knobs.duration_days = p.param_or("duration_days", 3.0);
  knobs.max_retransmissions =
      static_cast<int>(p.param_or("max_retransmissions", 5.0));
  knobs.payload_bytes = static_cast<int>(p.param_or("payload_bytes", 20.0));
  knobs.seed = p.seed;
  net::DtsNetworkConfig cfg = core::make_active_config(knobs);
  // The sweep already shards at point granularity; keep each point's
  // internal pass prediction serial so N points never oversubscribe.
  cfg.pass_threads = 1;
  const net::DtsNetworkResult res = net::run_dts_network(cfg);
  const double end_unix = orbit::julian_to_unix(cfg.start_jd) +
                          cfg.duration_days * 86400.0;
  const auto rel = core::summarize_reliability(res.uplinks, end_unix);
  const auto lat = core::summarize_latency(res);
  return {
      {"reliability", rel.reliability},
      {"delivered_fraction", res.delivered_fraction()},
      {"mean_latency_min", lat.mean_min},
      {"wait_min", lat.mean_breakdown.wait_for_pass_s / 60.0},
      {"delivery_min", lat.mean_breakdown.delivery_s / 60.0},
      {"mean_attempts", core::summarize_retx(res.uplinks).mean_attempts},
  };
}

PointMetrics run_passive_point(const RunPoint& p) {
  core::PassiveCampaignConfig cfg =
      core::default_campaign(p.param_or("duration_days", 2.0));
  cfg.seed = p.seed;
  cfg.threads = 1;
  const core::PassiveCampaignResult res = core::run_passive_campaign(cfg);
  const double tx = static_cast<double>(res.beacons_transmitted);
  const double rx = static_cast<double>(res.beacons_received);
  return {
      {"traces", static_cast<double>(res.traces.size())},
      {"beacons_transmitted", tx},
      {"beacons_received", rx},
      {"beacon_loss_fraction", tx > 0.0 ? 1.0 - rx / tx : 0.0},
  };
}

PointMetrics run_availability_point(const RunPoint& p) {
  core::MeasurementSite site;
  site.code = "SWP";
  site.city = "sweep";
  site.location = {p.param_or("latitude_deg", 22.3),
                   p.param_or("longitude_deg", 114.2), 0.0};
  core::AvailabilityOptions opts;
  opts.duration_days = p.param_or("duration_days", 2.0);
  opts.threads = 1;

  // One shared-ephemeris grid call across ALL paper constellations
  // instead of one cached batch per constellation: the engine shares the
  // coarse grid and GMST rotations across the combined TLE set. Per-TLE
  // windows (and therefore the merged presence values) are bit-identical
  // to per-constellation daily_presence_hours calls.
  const orbit::JulianDate start_jd = core::campaign_epoch_jd();
  const orbit::JulianDate end_jd = start_jd + opts.duration_days;
  orbit::PassPredictionOptions popts;
  popts.min_elevation_deg = opts.min_elevation_deg;
  popts.coarse_step_s = opts.pass_scan_step_s;

  const auto specs = orbit::paper_constellations();
  std::vector<orbit::Tle> tles;
  std::vector<std::pair<std::size_t, std::size_t>> spans;  // first, count
  for (const auto& spec : specs) {
    const auto spec_tles = orbit::generate_tles(spec, start_jd);
    spans.emplace_back(tles.size(), spec_tles.size());
    tles.insert(tles.end(), spec_tles.begin(), spec_tles.end());
  }
  const auto windows = orbit::predict_passes_grid_cached(
      tles, {orbit::GridObserver{site.location}}, start_jd, end_jd, popts,
      opts.threads,
      opts.use_window_cache ? &orbit::ContactWindowCache::global() : nullptr,
      opts.metrics);

  PointMetrics out;
  for (std::size_t c = 0; c < specs.size(); ++c) {
    std::vector<orbit::ContactWindow> all;
    for (std::size_t i = 0; i < spans[c].second; ++i) {
      const auto& ws = windows[spans[c].first + i][0];
      all.insert(all.end(), ws.begin(), ws.end());
    }
    out["presence_h." + specs[c].name] =
        orbit::daily_visible_seconds(orbit::merge_windows(std::move(all)),
                                     start_jd, end_jd) /
        3600.0;
  }
  return out;
}

std::uint64_t spec_fingerprint(const SweepSpec& spec) {
  // Any change to the spec (axes, values, replicates, seed, runner)
  // changes the serialized form and therefore the fingerprint, which is
  // what invalidates a stale manifest.
  return sim::derive_seed(spec.root_seed, to_json(spec));
}

std::string manifest_header_line(const SweepSpec& spec) {
  return "{\"schema\": \"" + std::string(kSweepManifestSchema) +
         "\", \"name\": \"" + obs::json_escape(spec.name) +
         "\", \"fingerprint\": " + obs::json_u64(spec_fingerprint(spec)) +
         "}";
}

std::string manifest_point_line(const RunPoint& p,
                                const PointMetrics& metrics) {
  std::string out = "{\"point\": " +
                    obs::json_u64(static_cast<std::uint64_t>(p.grid_index)) +
                    ", \"rep\": " +
                    obs::json_u64(static_cast<std::uint64_t>(p.replicate)) +
                    ", \"seed\": " + obs::json_u64(p.seed) +
                    ", \"metrics\": {";
  bool first = true;
  for (const auto& [k, v] : metrics) {
    if (!first) out += ", ";
    out += "\"" + obs::json_escape(k) + "\": " + obs::json_double(v);
    first = false;
  }
  return out + "}}";
}

struct ManifestEntry {
  std::size_t grid_index = 0;
  std::size_t replicate = 0;
  std::uint64_t seed = 0;
  PointMetrics metrics;
};

ManifestEntry parse_manifest_line(const std::string& line) {
  obs::JsonCursor cur(line);
  ManifestEntry e;
  obs::parse_json_object(cur, [&](const std::string& key) {
    if (key == "point") {
      e.grid_index = static_cast<std::size_t>(cur.parse_u64());
    } else if (key == "rep") {
      e.replicate = static_cast<std::size_t>(cur.parse_u64());
    } else if (key == "seed") {
      e.seed = cur.parse_u64();
    } else if (key == "metrics") {
      obs::parse_json_object(cur, [&](const std::string& k) {
        e.metrics[k] = cur.parse_double();
      });
    } else {
      cur.fail("unknown manifest field '" + key + "'");
    }
  });
  return e;
}

/// Load an existing manifest. Verifies the header fingerprint against
/// `spec`; a malformed FINAL point line is dropped (the torn write of a
/// killed run), a malformed line anywhere else is an error.
std::vector<ManifestEntry> load_manifest(const std::string& path,
                                         const SweepSpec& spec) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line))
    if (!line.empty()) lines.push_back(line);
  if (lines.empty()) return {};

  {
    obs::JsonCursor cur(lines.front());
    bool schema_ok = false;
    std::uint64_t fingerprint = 0;
    obs::parse_json_object(cur, [&](const std::string& key) {
      if (key == "schema") {
        if (cur.parse_string() != kSweepManifestSchema)
          cur.fail("unsupported manifest schema");
        schema_ok = true;
      } else if (key == "name") {
        (void)cur.parse_string();
      } else if (key == "fingerprint") {
        fingerprint = cur.parse_u64();
      } else {
        cur.fail("unknown manifest header field '" + key + "'");
      }
    });
    if (!schema_ok)
      throw std::runtime_error("sweep manifest " + path +
                               ": missing schema tag");
    if (fingerprint != spec_fingerprint(spec))
      throw std::runtime_error(
          "sweep manifest " + path +
          " was written for a different spec; rerun with --fresh or a "
          "matching spec");
  }

  std::vector<ManifestEntry> entries;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    try {
      entries.push_back(parse_manifest_line(lines[i]));
    } catch (const std::exception&) {
      if (i + 1 == lines.size()) break;  // torn final line: resume re-runs it
      throw;
    }
  }
  return entries;
}

/// Durable line-at-a-time appender: each append is flushed and fsync'd
/// so a completed point survives a kill at any later instant.
class ManifestAppender {
 public:
  ManifestAppender(const std::string& path, bool truncate) {
    file_ = std::fopen(path.c_str(), truncate ? "w" : "a");
    if (file_ == nullptr)
      throw std::runtime_error("cannot open sweep manifest " + path);
  }
  ~ManifestAppender() {
    if (file_ != nullptr) std::fclose(file_);
  }
  ManifestAppender(const ManifestAppender&) = delete;
  ManifestAppender& operator=(const ManifestAppender&) = delete;

  void append(const std::string& line) {
    std::lock_guard<std::mutex> lock(mutex_);
    std::fputs(line.c_str(), file_);
    std::fputc('\n', file_);
    std::fflush(file_);
    ::fsync(::fileno(file_));
  }

 private:
  std::mutex mutex_;
  std::FILE* file_ = nullptr;
};

}  // namespace

PointRunner built_in_runner(const std::string& name) {
  if (name == "active") return run_active_point;
  if (name == "passive") return run_passive_point;
  if (name == "availability") return run_availability_point;
  throw std::invalid_argument("unknown sweep runner '" + name + "'");
}

void SweepAccumulator::add(const RunPoint& point, PointMetrics metrics) {
  std::lock_guard<std::mutex> lock(mutex_);
  points_.emplace_back(point, std::move(metrics));
}

std::size_t SweepAccumulator::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return points_.size();
}

std::vector<std::pair<RunPoint, PointMetrics>>
SweepAccumulator::sorted_points() const {
  std::vector<std::pair<RunPoint, PointMetrics>> out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out = points_;
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.first.grid_index != b.first.grid_index
               ? a.first.grid_index < b.first.grid_index
               : a.first.replicate < b.first.replicate;
  });
  return out;
}

std::vector<CellAggregate> SweepAccumulator::aggregate(
    std::uint64_t root_seed, std::size_t bootstrap_resamples) const {
  const auto sorted = sorted_points();
  std::vector<CellAggregate> cells;
  for (std::size_t i = 0; i < sorted.size();) {
    CellAggregate cell;
    cell.grid_index = sorted[i].first.grid_index;
    cell.params = sorted[i].first.params;
    // Replicate-ordered samples per metric name across this cell.
    std::map<std::string, std::vector<double>> samples;
    for (; i < sorted.size() && sorted[i].first.grid_index == cell.grid_index;
         ++i)
      for (const auto& [name, value] : sorted[i].second)
        samples[name].push_back(value);
    for (const auto& [name, values] : samples) {
      MetricAggregate agg;
      agg.n = values.size();
      double sum = 0.0;
      for (const double v : values) sum += v;
      agg.mean = sum / static_cast<double>(values.size());
      if (values.size() >= 2) {
        double ss = 0.0;
        for (const double v : values) ss += (v - agg.mean) * (v - agg.mean);
        agg.stddev =
            std::sqrt(ss / static_cast<double>(values.size() - 1));
      }
      sim::Rng rng(sim::derive_seed(
          root_seed,
          "bootstrap/" + std::to_string(cell.grid_index) + "/" + name));
      const auto ci =
          stats::bootstrap_mean_ci(values, rng, bootstrap_resamples);
      agg.ci_low = ci.low;
      agg.ci_high = ci.high;
      cell.metrics.emplace(name, agg);
    }
    cells.push_back(std::move(cell));
  }
  return cells;
}

SweepResult run_sweep(const SweepSpec& spec, const PointRunner& runner,
                      const SweepOptions& opts) {
  obs::PhaseProfiler phases(opts.metrics, "net.sweep");
  phases.phase("expand");
  const std::vector<RunPoint> points = expand(spec);
  if (opts.metrics != nullptr) {
    opts.metrics->counter("net.sweep.points_total")
        .add(static_cast<std::uint64_t>(points.size()));
    opts.metrics->counter("net.sweep.cells")
        .add(static_cast<std::uint64_t>(spec.cell_count()));
  }

  phases.phase("resume");
  SweepAccumulator acc;
  std::set<std::pair<std::size_t, std::size_t>> done;
  if (!opts.manifest_path.empty() && !opts.fresh) {
    for (const ManifestEntry& e :
         load_manifest(opts.manifest_path, spec)) {
      const std::size_t index = e.grid_index * spec.replicates + e.replicate;
      if (e.grid_index >= spec.cell_count() || e.replicate >= spec.replicates)
        throw std::runtime_error("sweep manifest " + opts.manifest_path +
                                 ": point outside the spec grid");
      if (points[index].seed != e.seed)
        throw std::runtime_error("sweep manifest " + opts.manifest_path +
                                 ": seed mismatch (spec changed?)");
      if (done.insert({e.grid_index, e.replicate}).second)
        acc.add(points[index], e.metrics);
    }
  }

  std::vector<const RunPoint*> pending;
  for (const RunPoint& p : points)
    if (!done.contains({p.grid_index, p.replicate})) pending.push_back(&p);
  if (opts.max_points != 0 && pending.size() > opts.max_points)
    pending.resize(opts.max_points);

  phases.phase("execute");
  std::unique_ptr<ManifestAppender> manifest;
  if (!opts.manifest_path.empty()) {
    // A fresh (or first) run rewrites the file so it starts with the
    // header of exactly this spec.
    const bool truncate = opts.fresh || done.empty();
    manifest =
        std::make_unique<ManifestAppender>(opts.manifest_path, truncate);
    if (truncate) manifest->append(manifest_header_line(spec));
  }
  obs::Histogram* point_ms =
      opts.metrics != nullptr
          ? &opts.metrics->histogram("net.sweep.point_ms", 0.0, 60000.0, 60)
          : nullptr;
  const auto run_one = [&](std::size_t i) {
    const RunPoint& p = *pending[i];
    obs::ScopedTimer timer(point_ms);
    PointMetrics metrics = runner(p);
    if (manifest) manifest->append(manifest_point_line(p, metrics));
    acc.add(p, std::move(metrics));
  };
  if (opts.threads == 1 || pending.size() <= 1) {
    for (std::size_t i = 0; i < pending.size(); ++i) run_one(i);
  } else {
    sim::ThreadPool& shared = sim::ThreadPool::shared();
    if (opts.threads == 0 || opts.threads == shared.size()) {
      shared.parallel_for(pending.size(), run_one);
    } else {
      sim::ThreadPool local(opts.threads);
      local.parallel_for(pending.size(), run_one);
    }
  }

  phases.phase("aggregate");
  SweepResult result;
  result.spec = spec;
  result.resumed_points = done.size();
  result.executed_points = pending.size();
  result.points = acc.sorted_points();
  result.cells = acc.aggregate(spec.root_seed, opts.bootstrap_resamples);
  result.complete = result.points.size() == points.size();
  if (opts.metrics != nullptr) {
    opts.metrics->counter("net.sweep.points_resumed")
        .add(static_cast<std::uint64_t>(result.resumed_points));
    opts.metrics->counter("net.sweep.points_executed")
        .add(static_cast<std::uint64_t>(result.executed_points));
  }
  phases.stop();
  return result;
}

SweepResult run_sweep(const SweepSpec& spec, const SweepOptions& opts) {
  return run_sweep(spec, built_in_runner(spec.runner), opts);
}

std::string report_json(const SweepResult& result) {
  // Deliberately excludes resumed/executed bookkeeping: a resumed run
  // must serialize byte-identically to an uninterrupted one.
  std::string out = "{\n  \"schema\": \"";
  out += kSweepReportSchema;
  out += "\",\n  \"name\": \"" + obs::json_escape(result.spec.name) + "\",\n";
  out += "  \"runner\": \"" + obs::json_escape(result.spec.runner) + "\",\n";
  out += "  \"root_seed\": " + obs::json_u64(result.spec.root_seed) + ",\n";
  out += "  \"replicates\": " +
         obs::json_u64(static_cast<std::uint64_t>(result.spec.replicates)) +
         ",\n";
  out += "  \"points_total\": " +
         obs::json_u64(static_cast<std::uint64_t>(result.spec.point_count())) +
         ",\n";
  out += "  \"points_completed\": " +
         obs::json_u64(static_cast<std::uint64_t>(result.points.size())) +
         ",\n";
  out += std::string("  \"complete\": ") +
         (result.complete ? "true" : "false") + ",\n";
  out += "  \"cells\": [";
  for (std::size_t c = 0; c < result.cells.size(); ++c) {
    const CellAggregate& cell = result.cells[c];
    out += c == 0 ? "\n" : ",\n";
    out += "    {\"grid_index\": " +
           obs::json_u64(static_cast<std::uint64_t>(cell.grid_index)) +
           ", \"params\": {";
    for (std::size_t i = 0; i < cell.params.size(); ++i) {
      if (i > 0) out += ", ";
      out += "\"" + obs::json_escape(cell.params[i].first) +
             "\": " + obs::json_double(cell.params[i].second);
    }
    out += "}, \"metrics\": {";
    bool first = true;
    for (const auto& [name, agg] : cell.metrics) {
      if (!first) out += ", ";
      out += "\"" + obs::json_escape(name) + "\": {\"n\": " +
             obs::json_u64(static_cast<std::uint64_t>(agg.n)) +
             ", \"mean\": " + obs::json_double(agg.mean) +
             ", \"stddev\": " + obs::json_double(agg.stddev) +
             ", \"ci_low\": " + obs::json_double(agg.ci_low) +
             ", \"ci_high\": " + obs::json_double(agg.ci_high) + "}";
      first = false;
    }
    out += "}}";
  }
  out += result.cells.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

bool write_report_file(const std::string& path, const SweepResult& result) {
  std::ofstream out(path);
  if (!out) return false;
  out << report_json(result);
  return static_cast<bool>(out);
}

}  // namespace sinet::exp
