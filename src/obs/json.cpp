#include "obs/json.h"

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace sinet::obs {

std::string json_double(double x) {
  char buf[40];
  // 17 significant digits: enough for strtod to reproduce the exact bits.
  std::snprintf(buf, sizeof(buf), "%.17g", x);
  return buf;
}

std::string json_u64(std::uint64_t x) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, x);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonCursor::skip_ws() {
  while (pos_ < text_.size() &&
         std::isspace(static_cast<unsigned char>(text_[pos_])))
    ++pos_;
}

bool JsonCursor::peek_is(char c) {
  skip_ws();
  return pos_ < text_.size() && text_[pos_] == c;
}

void JsonCursor::expect(char c) {
  skip_ws();
  if (pos_ >= text_.size() || text_[pos_] != c)
    fail(std::string("expected '") + c + "'");
  ++pos_;
}

bool JsonCursor::consume_if(char c) {
  skip_ws();
  if (pos_ < text_.size() && text_[pos_] == c) {
    ++pos_;
    return true;
  }
  return false;
}

std::string JsonCursor::parse_string() {
  expect('"');
  std::string out;
  while (pos_ < text_.size() && text_[pos_] != '"') {
    char c = text_[pos_++];
    if (c == '\\') {
      if (pos_ >= text_.size()) fail("dangling escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': c = '"'; break;
        case '\\': c = '\\'; break;
        case '/': c = '/'; break;
        case 'n': c = '\n'; break;
        case 'r': c = '\r'; break;
        case 't': c = '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("short \\u escape");
          const unsigned long code =
              std::strtoul(text_.substr(pos_, 4).c_str(), nullptr, 16);
          pos_ += 4;
          // Our writers only escape ASCII control characters.
          c = static_cast<char>(code & 0x7f);
          break;
        }
        default: fail("unknown escape");
      }
    }
    out += c;
  }
  expect('"');
  return out;
}

double JsonCursor::parse_double() {
  skip_ws();
  const char* begin = text_.c_str() + pos_;
  char* end = nullptr;
  const double v = std::strtod(begin, &end);
  if (end == begin) fail("expected number");
  pos_ += static_cast<std::size_t>(end - begin);
  return v;
}

std::uint64_t JsonCursor::parse_u64() {
  skip_ws();
  const char* begin = text_.c_str() + pos_;
  char* end = nullptr;
  const std::uint64_t v = std::strtoull(begin, &end, 10);
  if (end == begin) fail("expected integer");
  pos_ += static_cast<std::size_t>(end - begin);
  return v;
}

bool JsonCursor::parse_bool() {
  skip_ws();
  if (text_.compare(pos_, 4, "true") == 0) {
    pos_ += 4;
    return true;
  }
  if (text_.compare(pos_, 5, "false") == 0) {
    pos_ += 5;
    return false;
  }
  fail("expected true/false");
}

void JsonCursor::fail(const std::string& what) const {
  throw std::runtime_error("json parse error at offset " +
                           std::to_string(pos_) + ": " + what);
}

}  // namespace sinet::obs
