// Run-metrics registry for the simulation core.
//
// The source paper is a measurement study; this is the reproduction's own
// instrumentation: named counters, gauges and fixed-bin histograms that
// the hot layers (event queue, thread pool, pass prediction, campaign
// drivers) write into while a run executes, and that a RunReport exporter
// (run_report.h) serializes afterwards.
//
// Design constraints, in order:
//  - Near-zero cost when disabled. Components hold a MetricsRegistry*
//    that defaults to nullptr; a null registry means no clock reads, no
//    atomic traffic, no allocation on the hot path.
//  - Usable from pool workers. Every metric type is individually
//    thread-safe (relaxed atomics; metrics never synchronize data), so
//    instrumented code needs no extra locking.
//  - Stable addresses. counter()/gauge()/histogram() hand out references
//    that stay valid for the registry's lifetime, so hot paths can
//    resolve a metric once and keep the pointer.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace sinet::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-value metric that also remembers its high-water mark.
class Gauge {
 public:
  /// Set the current value (folds it into the maximum).
  void set(double x) noexcept;
  /// Accumulate into the current value (e.g. busy seconds across scopes).
  void add(double delta) noexcept;
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  /// Highest value ever set/accumulated; value() if never updated.
  [[nodiscard]] double max() const noexcept;

 private:
  void fold_max(double x) noexcept;

  std::atomic<double> value_{0.0};
  std::atomic<bool> has_max_{false};
  std::atomic<double> max_{0.0};
};

/// Equal-width fixed-bin histogram over [lo, hi) with atomic buckets.
/// Samples below lo / at-or-above hi / NaN go to dedicated buckets, so
/// add() is total: every sample is accounted for somewhere.
class Histogram {
 public:
  /// Throws std::invalid_argument unless hi > lo and bins > 0.
  Histogram(double lo, double hi, std::size_t bins);

  void record(double x) noexcept;

  [[nodiscard]] double lo() const noexcept { return lo_; }
  [[nodiscard]] double hi() const noexcept { return hi_; }
  [[nodiscard]] std::size_t bin_count() const noexcept { return bins_.size(); }
  [[nodiscard]] std::uint64_t count(std::size_t i) const;
  [[nodiscard]] std::uint64_t underflow() const noexcept;
  [[nodiscard]] std::uint64_t overflow() const noexcept;
  [[nodiscard]] std::uint64_t nan_count() const noexcept;
  /// Total samples recorded, including under/overflow and NaN.
  [[nodiscard]] std::uint64_t total() const noexcept;
  /// Sum of all finite samples (NaN excluded).
  [[nodiscard]] double sum() const noexcept;
  /// Smallest/largest finite sample; 0 when no finite sample recorded.
  [[nodiscard]] double min() const noexcept;
  [[nodiscard]] double max() const noexcept;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::atomic<std::uint64_t>> bins_;
  std::atomic<std::uint64_t> underflow_{0};
  std::atomic<std::uint64_t> overflow_{0};
  std::atomic<std::uint64_t> nan_{0};
  std::atomic<std::uint64_t> finite_count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
};

/// Immutable copy of one gauge, suitable for export and comparison.
struct GaugeSnapshot {
  double value = 0.0;
  double max = 0.0;
  friend bool operator==(const GaugeSnapshot&, const GaugeSnapshot&) = default;
};

/// Immutable copy of one histogram.
struct HistogramSnapshot {
  double lo = 0.0;
  double hi = 0.0;
  std::vector<std::uint64_t> bins;
  std::uint64_t underflow = 0;
  std::uint64_t overflow = 0;
  std::uint64_t nan_count = 0;
  std::uint64_t total = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  friend bool operator==(const HistogramSnapshot&,
                         const HistogramSnapshot&) = default;
};

/// Point-in-time copy of a whole registry (plus free-form run metadata).
/// This is the unit the RunReport exporter serializes and parses back.
struct Snapshot {
  std::map<std::string, std::string> info;
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, GaugeSnapshot> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
  friend bool operator==(const Snapshot&, const Snapshot&) = default;
};

/// Thread-safe name -> metric registry.
///
/// Lookup takes a mutex; hot paths should resolve their metrics once and
/// hold the returned reference (stable for the registry's lifetime).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create by name. The reference stays valid until the
  /// registry is destroyed.
  [[nodiscard]] Counter& counter(const std::string& name);
  [[nodiscard]] Gauge& gauge(const std::string& name);
  /// Find-or-create; (lo, hi, bins) apply only on creation — a second
  /// call with the same name returns the existing histogram unchanged.
  [[nodiscard]] Histogram& histogram(const std::string& name, double lo,
                                     double hi, std::size_t bins);

  /// Free-form run metadata carried into the exported report.
  void set_info(const std::string& key, const std::string& value);

  [[nodiscard]] Snapshot snapshot() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::string> info_;
};

/// Quantile estimate from a fixed-bin histogram snapshot, for SLO
/// reporting (p50/p99 of svc.* latency histograms). Finite samples are
/// assumed uniform within their bin (linear interpolation); underflow
/// samples count at `lo` and overflow samples at `hi`, so a gate's
/// histogram must place `hi` at or above the SLO threshold — a tail
/// quantile landing in the overflow bucket then reports `hi` and fails
/// every gate at or below it instead of silently passing. NaN samples
/// are excluded. `q` is clamped to [0, 1]. Returns NaN when the
/// snapshot holds no non-NaN samples.
[[nodiscard]] double snapshot_quantile(const HistogramSnapshot& h, double q);

/// Peak resident-set size of this process in bytes (VmHWM on Linux),
/// 0 where the platform offers no cheap equivalent. Used by the
/// population-scale DtS gauges to prove a run's memory stayed bounded.
[[nodiscard]] std::size_t process_peak_rss_bytes();

}  // namespace sinet::obs
