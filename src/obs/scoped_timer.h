// Wall-time instrumentation primitives built on obs::MetricsRegistry.
//
// Both classes are null-tolerant: constructed against a null registry or
// metric they skip the clock reads entirely, so instrumented code paths
// cost nothing when metrics are disabled.
#pragma once

#include <chrono>
#include <string>
#include <utility>

#include "obs/metrics.h"

namespace sinet::obs {

/// Measures the lifetime of a scope and records it on destruction:
/// seconds accumulated into a Gauge, or milliseconds sampled into a
/// Histogram. A null target disarms the timer (no clock read at all).
class ScopedTimer {
 public:
  explicit ScopedTimer(Gauge* accumulate_seconds) noexcept
      : gauge_(accumulate_seconds) {
    if (gauge_) start_ = std::chrono::steady_clock::now();
  }
  explicit ScopedTimer(Histogram* sample_ms) noexcept : hist_(sample_ms) {
    if (hist_) start_ = std::chrono::steady_clock::now();
  }
  /// Convenience: resolve `gauge_name` in `registry` (null registry ->
  /// disarmed) and accumulate elapsed seconds into it.
  ScopedTimer(MetricsRegistry* registry, const std::string& gauge_name)
      : ScopedTimer(registry ? &registry->gauge(gauge_name) : nullptr) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    if (!gauge_ && !hist_) return;
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start_;
    if (gauge_) gauge_->add(elapsed.count());
    if (hist_) hist_->record(elapsed.count() * 1e3);
  }

 private:
  Gauge* gauge_ = nullptr;
  Histogram* hist_ = nullptr;
  std::chrono::steady_clock::time_point start_;
};

/// Phase profiler for multi-stage drivers: each phase's wall time is
/// accumulated into the gauge "<prefix>.phase.<name>_s". Null registry
/// makes every call a no-op.
class PhaseProfiler {
 public:
  PhaseProfiler(MetricsRegistry* registry, std::string prefix)
      : registry_(registry), prefix_(std::move(prefix)) {}

  PhaseProfiler(const PhaseProfiler&) = delete;
  PhaseProfiler& operator=(const PhaseProfiler&) = delete;

  /// Close the current phase (if any) and start timing `name`.
  void phase(const std::string& name) {
    if (!registry_) return;
    stop();
    current_ = &registry_->gauge(prefix_ + ".phase." + name + "_s");
    start_ = std::chrono::steady_clock::now();
  }

  /// Close the current phase without starting a new one.
  void stop() {
    if (!current_) return;
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start_;
    current_->add(elapsed.count());
    current_ = nullptr;
  }

  ~PhaseProfiler() { stop(); }

 private:
  MetricsRegistry* registry_;
  std::string prefix_;
  Gauge* current_ = nullptr;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace sinet::obs
