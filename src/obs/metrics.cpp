#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <stdexcept>

namespace sinet::obs {

namespace {

/// Relaxed CAS accumulate for atomic<double> (fetch_add on atomic
/// floating-point is C++20 but not universally lock-free; the CAS loop is
/// portable and the contention on metrics is negligible).
void atomic_add(std::atomic<double>& target, double delta) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + delta,
                                       std::memory_order_relaxed)) {
  }
}

void atomic_fold_min(std::atomic<double>& target, double x) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (x < cur && !target.compare_exchange_weak(
                        cur, x, std::memory_order_relaxed)) {
  }
}

void atomic_fold_max(std::atomic<double>& target, double x) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (x > cur && !target.compare_exchange_weak(
                        cur, x, std::memory_order_relaxed)) {
  }
}

}  // namespace

void Gauge::set(double x) noexcept {
  value_.store(x, std::memory_order_relaxed);
  fold_max(x);
}

void Gauge::add(double delta) noexcept {
  atomic_add(value_, delta);
  fold_max(value_.load(std::memory_order_relaxed));
}

double Gauge::max() const noexcept {
  if (!has_max_.load(std::memory_order_relaxed)) return value();
  return max_.load(std::memory_order_relaxed);
}

void Gauge::fold_max(double x) noexcept {
  if (!has_max_.exchange(true, std::memory_order_relaxed)) {
    max_.store(x, std::memory_order_relaxed);
    return;
  }
  atomic_fold_max(max_, x);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      bins_(bins) {
  if (!(hi > lo))
    throw std::invalid_argument("obs::Histogram: hi must be > lo");
  if (bins == 0)
    throw std::invalid_argument("obs::Histogram: bins must be > 0");
}

void Histogram::record(double x) noexcept {
  if (std::isnan(x)) {
    nan_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const std::uint64_t prior =
      finite_count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, x);
  if (prior == 0) {
    // First finite sample seeds min/max; racing seeders are folded below.
    min_.store(x, std::memory_order_relaxed);
    max_.store(x, std::memory_order_relaxed);
  } else {
    atomic_fold_min(min_, x);
    atomic_fold_max(max_, x);
  }
  if (x < lo_) {
    underflow_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (x >= hi_) {
    overflow_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  auto idx = static_cast<std::size_t>((x - lo_) / width_);
  if (idx >= bins_.size()) idx = bins_.size() - 1;  // fp edge at hi_
  bins_[idx].fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t Histogram::count(std::size_t i) const {
  return bins_.at(i).load(std::memory_order_relaxed);
}

std::uint64_t Histogram::underflow() const noexcept {
  return underflow_.load(std::memory_order_relaxed);
}

std::uint64_t Histogram::overflow() const noexcept {
  return overflow_.load(std::memory_order_relaxed);
}

std::uint64_t Histogram::nan_count() const noexcept {
  return nan_.load(std::memory_order_relaxed);
}

std::uint64_t Histogram::total() const noexcept {
  return finite_count_.load(std::memory_order_relaxed) + nan_count();
}

double Histogram::sum() const noexcept {
  return sum_.load(std::memory_order_relaxed);
}

double Histogram::min() const noexcept {
  if (finite_count_.load(std::memory_order_relaxed) == 0) return 0.0;
  return min_.load(std::memory_order_relaxed);
}

double Histogram::max() const noexcept {
  if (finite_count_.load(std::memory_order_relaxed) == 0) return 0.0;
  return max_.load(std::memory_order_relaxed);
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name, double lo,
                                      double hi, std::size_t bins) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(lo, hi, bins);
  return *slot;
}

void MetricsRegistry::set_info(const std::string& key,
                               const std::string& value) {
  std::lock_guard<std::mutex> lock(mutex_);
  info_[key] = value;
}

Snapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Snapshot s;
  s.info = info_;
  for (const auto& [name, c] : counters_) s.counters[name] = c->value();
  for (const auto& [name, g] : gauges_)
    s.gauges[name] = GaugeSnapshot{g->value(), g->max()};
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.lo = h->lo();
    hs.hi = h->hi();
    hs.bins.reserve(h->bin_count());
    for (std::size_t i = 0; i < h->bin_count(); ++i)
      hs.bins.push_back(h->count(i));
    hs.underflow = h->underflow();
    hs.overflow = h->overflow();
    hs.nan_count = h->nan_count();
    hs.total = h->total();
    hs.sum = h->sum();
    hs.min = h->min();
    hs.max = h->max();
    s.histograms[name] = std::move(hs);
  }
  return s;
}

double snapshot_quantile(const HistogramSnapshot& h, double q) {
  const std::uint64_t n = h.underflow + h.overflow +
                          [&] {
                            std::uint64_t in = 0;
                            for (const std::uint64_t b : h.bins) in += b;
                            return in;
                          }();
  if (n == 0) return std::numeric_limits<double>::quiet_NaN();
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target sample among the n non-NaN samples (nearest-rank
  // with interpolation inside the bin the rank lands in).
  const double rank = q * static_cast<double>(n - 1);
  double cumulative = static_cast<double>(h.underflow);
  // Inside the underflow bucket everything is only known to be < lo;
  // report lo (the bucket has no interior to interpolate over).
  if (rank < cumulative) return h.lo;
  const double width =
      (h.hi - h.lo) / static_cast<double>(h.bins.empty() ? 1 : h.bins.size());
  for (std::size_t i = 0; i < h.bins.size(); ++i) {
    const double count = static_cast<double>(h.bins[i]);
    if (count > 0.0 && rank < cumulative + count) {
      const double frac = (rank - cumulative) / count;
      return h.lo + width * (static_cast<double>(i) + frac);
    }
    cumulative += count;
  }
  return h.hi;  // overflow bucket: report the histogram's upper edge
}

std::size_t process_peak_rss_bytes() {
#ifdef __linux__
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::size_t peak_kib = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      unsigned long long kib = 0;
      if (std::sscanf(line + 6, "%llu", &kib) == 1)
        peak_kib = static_cast<std::size_t>(kib);
      break;
    }
  }
  std::fclose(f);
  return peak_kib * 1024;
#else
  return 0;
#endif
}

}  // namespace sinet::obs
