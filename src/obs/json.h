// Minimal JSON building blocks shared by the structured exporters.
//
// The run-report (obs/run_report.h) and sweep (exp/sweep_spec.h) schemas
// are deliberately tiny, so instead of a dependency we keep one
// cursor-based reader plus the exact-round-trip number formatters here:
// doubles print with 17 significant digits, so a write/parse cycle is
// bit-exact — the property both the run-report round-trip tests and the
// sweep resume guarantee ("resumed aggregates byte-identical") rely on.
#pragma once

#include <cstdint>
#include <string>

namespace sinet::obs {

/// Format a double with 17 significant digits (%.17g): enough for strtod
/// to reproduce the exact bits on parse.
[[nodiscard]] std::string json_double(double x);

/// Format an unsigned 64-bit integer in decimal.
[[nodiscard]] std::string json_u64(std::uint64_t x);

/// Escape a string for embedding between JSON quotes (quotes, backslash,
/// control characters).
[[nodiscard]] std::string json_escape(const std::string& s);

/// Cursor-based parser for the subset of JSON our exporters emit:
/// objects, arrays, strings with ASCII escapes, numbers. Throws
/// std::runtime_error (with the byte offset) on malformed input.
class JsonCursor {
 public:
  explicit JsonCursor(const std::string& text) : text_(text) {}

  void skip_ws();
  [[nodiscard]] bool peek_is(char c);
  void expect(char c);
  [[nodiscard]] bool consume_if(char c);
  [[nodiscard]] std::string parse_string();
  [[nodiscard]] double parse_double();
  [[nodiscard]] std::uint64_t parse_u64();
  /// Parse the literals true / false.
  [[nodiscard]] bool parse_bool();
  [[noreturn]] void fail(const std::string& what) const;

 private:
  const std::string& text_;
  std::size_t pos_ = 0;
};

/// Parse `{ "key": <value>, ... }` invoking `on_entry(key)` positioned at
/// each value. Handles the empty object.
template <typename Fn>
void parse_json_object(JsonCursor& cur, Fn&& on_entry) {
  cur.expect('{');
  if (cur.consume_if('}')) return;
  do {
    const std::string key = cur.parse_string();
    cur.expect(':');
    on_entry(key);
  } while (cur.consume_if(','));
  cur.expect('}');
}

/// Parse `[ <value>, ... ]` invoking `on_element()` positioned at each
/// element. Handles the empty array.
template <typename Fn>
void parse_json_array(JsonCursor& cur, Fn&& on_element) {
  cur.expect('[');
  if (cur.consume_if(']')) return;
  do {
    on_element();
  } while (cur.consume_if(','));
  cur.expect(']');
}

}  // namespace sinet::obs
