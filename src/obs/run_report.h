// Structured run-report export for obs::MetricsRegistry snapshots.
//
// One schema, two encodings:
//  - JSON: the machine-readable report a campaign run emits via
//    `--metrics <out.json>` (examples/sinet_cli.cpp) and that
//    tools/run_benchmarks.sh records alongside the bench timings.
//  - CSV: flat `kind,name,field,value` rows for spreadsheet-style diffing
//    across runs.
//
// parse_json() understands exactly what to_json() emits (numbers printed
// with 17 significant digits, so doubles survive a write/parse cycle
// bit-exactly); the unit tests round-trip Snapshot -> JSON -> Snapshot.
#pragma once

#include <string>

#include "obs/metrics.h"

namespace sinet::obs {

/// Schema tag stamped into every report ("schema" key).
inline constexpr const char* kRunReportSchema = "sinet.run_report.v1";

/// Serialize a snapshot as a self-describing JSON document.
[[nodiscard]] std::string to_json(const Snapshot& snapshot);

/// Serialize as flat CSV: header `kind,name,field,value`, one row per
/// scalar (counters: value; gauges: value/max; histograms: summary fields
/// plus one row per bin).
[[nodiscard]] std::string to_csv(const Snapshot& snapshot);

/// Parse a document produced by to_json(). Throws std::runtime_error on
/// malformed input or a schema mismatch.
[[nodiscard]] Snapshot parse_json(const std::string& json);

/// Write to_json(snapshot) to `path`. Returns false on I/O failure.
bool write_json_file(const std::string& path, const Snapshot& snapshot);

}  // namespace sinet::obs
