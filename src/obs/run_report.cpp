#include "obs/run_report.h"

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <stdexcept>

namespace sinet::obs {

namespace {

std::string fmt_double(double x) {
  char buf[40];
  // 17 significant digits: enough for strtod to reproduce the exact bits.
  std::snprintf(buf, sizeof(buf), "%.17g", x);
  return buf;
}

std::string fmt_u64(std::uint64_t x) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, x);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Minimal cursor-based parser for the subset of JSON to_json() emits.
class JsonCursor {
 public:
  explicit JsonCursor(const std::string& text) : text_(text) {}

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  [[nodiscard]] bool peek_is(char c) {
    skip_ws();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  void expect(char c) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != c)
      fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  [[nodiscard]] bool consume_if(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  [[nodiscard]] std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("dangling escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'n': c = '\n'; break;
          case 'r': c = '\r'; break;
          case 't': c = '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("short \\u escape");
            const unsigned long code =
                std::strtoul(text_.substr(pos_, 4).c_str(), nullptr, 16);
            pos_ += 4;
            // Reports only escape ASCII control characters.
            c = static_cast<char>(code & 0x7f);
            break;
          }
          default: fail("unknown escape");
        }
      }
      out += c;
    }
    expect('"');
    return out;
  }

  [[nodiscard]] double parse_double() {
    skip_ws();
    const char* begin = text_.c_str() + pos_;
    char* end = nullptr;
    const double v = std::strtod(begin, &end);
    if (end == begin) fail("expected number");
    pos_ += static_cast<std::size_t>(end - begin);
    return v;
  }

  [[nodiscard]] std::uint64_t parse_u64() {
    skip_ws();
    const char* begin = text_.c_str() + pos_;
    char* end = nullptr;
    const std::uint64_t v = std::strtoull(begin, &end, 10);
    if (end == begin) fail("expected integer");
    pos_ += static_cast<std::size_t>(end - begin);
    return v;
  }

  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("run report parse error at offset " +
                             std::to_string(pos_) + ": " + what);
  }

 private:
  const std::string& text_;
  std::size_t pos_ = 0;
};

/// Parse `{ "key": <value>, ... }` invoking `on_entry(key)` positioned at
/// each value. Handles the empty object.
template <typename Fn>
void parse_object(JsonCursor& cur, Fn&& on_entry) {
  cur.expect('{');
  if (cur.consume_if('}')) return;
  do {
    const std::string key = cur.parse_string();
    cur.expect(':');
    on_entry(key);
  } while (cur.consume_if(','));
  cur.expect('}');
}

GaugeSnapshot parse_gauge(JsonCursor& cur) {
  GaugeSnapshot g;
  parse_object(cur, [&](const std::string& key) {
    if (key == "value")
      g.value = cur.parse_double();
    else if (key == "max")
      g.max = cur.parse_double();
    else
      cur.fail("unknown gauge field '" + key + "'");
  });
  return g;
}

HistogramSnapshot parse_histogram(JsonCursor& cur) {
  HistogramSnapshot h;
  parse_object(cur, [&](const std::string& key) {
    if (key == "lo") h.lo = cur.parse_double();
    else if (key == "hi") h.hi = cur.parse_double();
    else if (key == "underflow") h.underflow = cur.parse_u64();
    else if (key == "overflow") h.overflow = cur.parse_u64();
    else if (key == "nan") h.nan_count = cur.parse_u64();
    else if (key == "total") h.total = cur.parse_u64();
    else if (key == "sum") h.sum = cur.parse_double();
    else if (key == "min") h.min = cur.parse_double();
    else if (key == "max") h.max = cur.parse_double();
    else if (key == "bins") {
      cur.expect('[');
      if (!cur.consume_if(']')) {
        do {
          h.bins.push_back(cur.parse_u64());
        } while (cur.consume_if(','));
        cur.expect(']');
      }
    } else {
      cur.fail("unknown histogram field '" + key + "'");
    }
  });
  return h;
}

}  // namespace

std::string to_json(const Snapshot& snapshot) {
  std::string out = "{\n  \"schema\": \"";
  out += kRunReportSchema;
  out += "\",\n  \"info\": {";
  bool first = true;
  for (const auto& [k, v] : snapshot.info) {
    out += first ? "\n" : ",\n";
    out += "    \"" + json_escape(k) + "\": \"" + json_escape(v) + "\"";
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"counters\": {";
  first = true;
  for (const auto& [k, v] : snapshot.counters) {
    out += first ? "\n" : ",\n";
    out += "    \"" + json_escape(k) + "\": " + fmt_u64(v);
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"gauges\": {";
  first = true;
  for (const auto& [k, g] : snapshot.gauges) {
    out += first ? "\n" : ",\n";
    out += "    \"" + json_escape(k) + "\": {\"value\": " +
           fmt_double(g.value) + ", \"max\": " + fmt_double(g.max) + "}";
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"histograms\": {";
  first = true;
  for (const auto& [k, h] : snapshot.histograms) {
    out += first ? "\n" : ",\n";
    out += "    \"" + json_escape(k) + "\": {\"lo\": " + fmt_double(h.lo) +
           ", \"hi\": " + fmt_double(h.hi) +
           ", \"underflow\": " + fmt_u64(h.underflow) +
           ", \"overflow\": " + fmt_u64(h.overflow) +
           ", \"nan\": " + fmt_u64(h.nan_count) +
           ", \"total\": " + fmt_u64(h.total) +
           ", \"sum\": " + fmt_double(h.sum) +
           ", \"min\": " + fmt_double(h.min) +
           ", \"max\": " + fmt_double(h.max) + ", \"bins\": [";
    for (std::size_t i = 0; i < h.bins.size(); ++i) {
      if (i > 0) out += ", ";
      out += fmt_u64(h.bins[i]);
    }
    out += "]}";
    first = false;
  }
  out += first ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

std::string to_csv(const Snapshot& snapshot) {
  std::string out = "kind,name,field,value\n";
  for (const auto& [k, v] : snapshot.info)
    out += "info," + k + ",value," + v + "\n";
  for (const auto& [k, v] : snapshot.counters)
    out += "counter," + k + ",value," + fmt_u64(v) + "\n";
  for (const auto& [k, g] : snapshot.gauges) {
    out += "gauge," + k + ",value," + fmt_double(g.value) + "\n";
    out += "gauge," + k + ",max," + fmt_double(g.max) + "\n";
  }
  for (const auto& [k, h] : snapshot.histograms) {
    out += "histogram," + k + ",lo," + fmt_double(h.lo) + "\n";
    out += "histogram," + k + ",hi," + fmt_double(h.hi) + "\n";
    out += "histogram," + k + ",underflow," + fmt_u64(h.underflow) + "\n";
    out += "histogram," + k + ",overflow," + fmt_u64(h.overflow) + "\n";
    out += "histogram," + k + ",nan," + fmt_u64(h.nan_count) + "\n";
    out += "histogram," + k + ",total," + fmt_u64(h.total) + "\n";
    out += "histogram," + k + ",sum," + fmt_double(h.sum) + "\n";
    out += "histogram," + k + ",min," + fmt_double(h.min) + "\n";
    out += "histogram," + k + ",max," + fmt_double(h.max) + "\n";
    for (std::size_t i = 0; i < h.bins.size(); ++i)
      out += "histogram," + k + ",bin" + std::to_string(i) + "," +
             fmt_u64(h.bins[i]) + "\n";
  }
  return out;
}

Snapshot parse_json(const std::string& json) {
  JsonCursor cur(json);
  Snapshot s;
  bool schema_ok = false;
  parse_object(cur, [&](const std::string& key) {
    if (key == "schema") {
      if (cur.parse_string() != kRunReportSchema)
        cur.fail("unsupported schema");
      schema_ok = true;
    } else if (key == "info") {
      parse_object(cur, [&](const std::string& k) {
        s.info[k] = cur.parse_string();
      });
    } else if (key == "counters") {
      parse_object(cur, [&](const std::string& k) {
        s.counters[k] = cur.parse_u64();
      });
    } else if (key == "gauges") {
      parse_object(cur, [&](const std::string& k) {
        s.gauges[k] = parse_gauge(cur);
      });
    } else if (key == "histograms") {
      parse_object(cur, [&](const std::string& k) {
        s.histograms[k] = parse_histogram(cur);
      });
    } else {
      cur.fail("unknown top-level key '" + key + "'");
    }
  });
  if (!schema_ok)
    throw std::runtime_error("run report parse error: missing schema tag");
  return s;
}

bool write_json_file(const std::string& path, const Snapshot& snapshot) {
  std::ofstream out(path);
  if (!out) return false;
  out << to_json(snapshot);
  return static_cast<bool>(out);
}

}  // namespace sinet::obs
