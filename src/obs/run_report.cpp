#include "obs/run_report.h"

#include <fstream>
#include <stdexcept>

#include "obs/json.h"

namespace sinet::obs {

namespace {

GaugeSnapshot parse_gauge(JsonCursor& cur) {
  GaugeSnapshot g;
  parse_json_object(cur, [&](const std::string& key) {
    if (key == "value")
      g.value = cur.parse_double();
    else if (key == "max")
      g.max = cur.parse_double();
    else
      cur.fail("unknown gauge field '" + key + "'");
  });
  return g;
}

HistogramSnapshot parse_histogram(JsonCursor& cur) {
  HistogramSnapshot h;
  parse_json_object(cur, [&](const std::string& key) {
    if (key == "lo") h.lo = cur.parse_double();
    else if (key == "hi") h.hi = cur.parse_double();
    else if (key == "underflow") h.underflow = cur.parse_u64();
    else if (key == "overflow") h.overflow = cur.parse_u64();
    else if (key == "nan") h.nan_count = cur.parse_u64();
    else if (key == "total") h.total = cur.parse_u64();
    else if (key == "sum") h.sum = cur.parse_double();
    else if (key == "min") h.min = cur.parse_double();
    else if (key == "max") h.max = cur.parse_double();
    else if (key == "bins") {
      parse_json_array(cur, [&] { h.bins.push_back(cur.parse_u64()); });
    } else {
      cur.fail("unknown histogram field '" + key + "'");
    }
  });
  return h;
}

}  // namespace

std::string to_json(const Snapshot& snapshot) {
  std::string out = "{\n  \"schema\": \"";
  out += kRunReportSchema;
  out += "\",\n  \"info\": {";
  bool first = true;
  for (const auto& [k, v] : snapshot.info) {
    out += first ? "\n" : ",\n";
    out += "    \"" + json_escape(k) + "\": \"" + json_escape(v) + "\"";
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"counters\": {";
  first = true;
  for (const auto& [k, v] : snapshot.counters) {
    out += first ? "\n" : ",\n";
    out += "    \"" + json_escape(k) + "\": " + json_u64(v);
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"gauges\": {";
  first = true;
  for (const auto& [k, g] : snapshot.gauges) {
    out += first ? "\n" : ",\n";
    out += "    \"" + json_escape(k) + "\": {\"value\": " +
           json_double(g.value) + ", \"max\": " + json_double(g.max) + "}";
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"histograms\": {";
  first = true;
  for (const auto& [k, h] : snapshot.histograms) {
    out += first ? "\n" : ",\n";
    out += "    \"" + json_escape(k) + "\": {\"lo\": " + json_double(h.lo) +
           ", \"hi\": " + json_double(h.hi) +
           ", \"underflow\": " + json_u64(h.underflow) +
           ", \"overflow\": " + json_u64(h.overflow) +
           ", \"nan\": " + json_u64(h.nan_count) +
           ", \"total\": " + json_u64(h.total) +
           ", \"sum\": " + json_double(h.sum) +
           ", \"min\": " + json_double(h.min) +
           ", \"max\": " + json_double(h.max) + ", \"bins\": [";
    for (std::size_t i = 0; i < h.bins.size(); ++i) {
      if (i > 0) out += ", ";
      out += json_u64(h.bins[i]);
    }
    out += "]}";
    first = false;
  }
  out += first ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

std::string to_csv(const Snapshot& snapshot) {
  std::string out = "kind,name,field,value\n";
  for (const auto& [k, v] : snapshot.info)
    out += "info," + k + ",value," + v + "\n";
  for (const auto& [k, v] : snapshot.counters)
    out += "counter," + k + ",value," + json_u64(v) + "\n";
  for (const auto& [k, g] : snapshot.gauges) {
    out += "gauge," + k + ",value," + json_double(g.value) + "\n";
    out += "gauge," + k + ",max," + json_double(g.max) + "\n";
  }
  for (const auto& [k, h] : snapshot.histograms) {
    out += "histogram," + k + ",lo," + json_double(h.lo) + "\n";
    out += "histogram," + k + ",hi," + json_double(h.hi) + "\n";
    out += "histogram," + k + ",underflow," + json_u64(h.underflow) + "\n";
    out += "histogram," + k + ",overflow," + json_u64(h.overflow) + "\n";
    out += "histogram," + k + ",nan," + json_u64(h.nan_count) + "\n";
    out += "histogram," + k + ",total," + json_u64(h.total) + "\n";
    out += "histogram," + k + ",sum," + json_double(h.sum) + "\n";
    out += "histogram," + k + ",min," + json_double(h.min) + "\n";
    out += "histogram," + k + ",max," + json_double(h.max) + "\n";
    for (std::size_t i = 0; i < h.bins.size(); ++i)
      out += "histogram," + k + ",bin" + std::to_string(i) + "," +
             json_u64(h.bins[i]) + "\n";
  }
  return out;
}

Snapshot parse_json(const std::string& json) {
  JsonCursor cur(json);
  Snapshot s;
  bool schema_ok = false;
  parse_json_object(cur, [&](const std::string& key) {
    if (key == "schema") {
      if (cur.parse_string() != kRunReportSchema)
        cur.fail("unsupported schema");
      schema_ok = true;
    } else if (key == "info") {
      parse_json_object(cur, [&](const std::string& k) {
        s.info[k] = cur.parse_string();
      });
    } else if (key == "counters") {
      parse_json_object(cur, [&](const std::string& k) {
        s.counters[k] = cur.parse_u64();
      });
    } else if (key == "gauges") {
      parse_json_object(cur, [&](const std::string& k) {
        s.gauges[k] = parse_gauge(cur);
      });
    } else if (key == "histograms") {
      parse_json_object(cur, [&](const std::string& k) {
        s.histograms[k] = parse_histogram(cur);
      });
    } else {
      cur.fail("unknown top-level key '" + key + "'");
    }
  });
  if (!schema_ok)
    throw std::runtime_error("run report parse error: missing schema tag");
  return s;
}

bool write_json_file(const std::string& path, const Snapshot& snapshot) {
  std::ofstream out(path);
  if (!out) return false;
  out << to_json(snapshot);
  return static_cast<bool>(out);
}

}  // namespace sinet::obs
