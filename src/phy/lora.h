// LoRa physical-layer parameters: spreading factors, time-on-air,
// demodulation thresholds and receiver sensitivity.
//
// Satellite IoT DtS links in the paper use plain terrestrial LoRa in the
// 400-450 MHz band; one transmission lasts hundreds to thousands of ms
// (paper Sec 1). These are the standard Semtech SX126x formulas.
#pragma once

#include <cstdint>
#include <string>

namespace sinet::phy {

enum class SpreadingFactor : int {
  kSf7 = 7,
  kSf8 = 8,
  kSf9 = 9,
  kSf10 = 10,
  kSf11 = 11,
  kSf12 = 12,
};

/// Coding rate 4/(4+cr), cr in 1..4.
enum class CodingRate : int { k4_5 = 1, k4_6 = 2, k4_7 = 3, k4_8 = 4 };

struct LoraParams {
  SpreadingFactor sf = SpreadingFactor::kSf10;
  double bandwidth_hz = 125e3;
  CodingRate cr = CodingRate::k4_5;
  int preamble_symbols = 8;
  bool explicit_header = true;
  bool crc_on = true;

  /// Low-data-rate optimization mandated when symbol time > 16 ms.
  [[nodiscard]] bool low_data_rate_optimize() const noexcept;
  /// Duration of one LoRa symbol, seconds: 2^SF / BW.
  [[nodiscard]] double symbol_time_s() const noexcept;
  /// Frequency width of one demodulator bin, Hz: BW / 2^SF.
  [[nodiscard]] double bin_width_hz() const noexcept;
};

/// Number of payload symbols for `payload_bytes` (Semtech SX126x formula).
[[nodiscard]] int payload_symbol_count(const LoraParams& p, int payload_bytes);

/// Total on-air time (s) of a packet with `payload_bytes` of payload.
/// Throws std::invalid_argument for payload outside [0, 255].
[[nodiscard]] double time_on_air_s(const LoraParams& p, int payload_bytes);

/// Minimum SNR (dB) at which the demodulator achieves its quasi-error-free
/// operating point (Semtech datasheet values: -7.5 dB @ SF7 ... -20 @ SF12).
[[nodiscard]] double demod_snr_threshold_db(SpreadingFactor sf);

/// Receiver sensitivity (dBm): noise floor + demod threshold.
[[nodiscard]] double sensitivity_dbm(const LoraParams& p,
                                     double noise_figure_db = 6.0);

[[nodiscard]] std::string to_string(SpreadingFactor sf);

/// Beacon/uplink radio profile used by the measured constellations:
/// SF10 / 125 kHz / CR 4/5 (typical TinyGS-compatible configuration).
[[nodiscard]] LoraParams default_dts_params();

/// Adaptive data-rate: smallest (fastest) spreading factor whose demod
/// threshold still leaves `safety_margin_db` of headroom at the
/// estimated SNR; falls back to SF12 when even it is marginal.
[[nodiscard]] SpreadingFactor choose_spreading_factor(
    double estimated_snr_db, double safety_margin_db = 3.0);

}  // namespace sinet::phy
