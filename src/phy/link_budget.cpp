#include "phy/link_budget.h"

#include "channel/noise.h"
#include "channel/path_loss.h"

namespace sinet::phy {

namespace {

LinkState base_state(const LinkConfig& cfg,
                     const sinet::orbit::LookAngles& look,
                     sinet::channel::Weather weather) {
  namespace ch = sinet::channel;
  LinkState st;
  st.elevation_deg = look.elevation_deg;
  st.range_km = look.range_km;

  const double fspl =
      ch::free_space_path_loss_db(look.range_km, cfg.carrier_hz);
  const double excess = ch::elevation_excess_loss_db(look.elevation_deg);
  const double weather_db = ch::weather_excess_loss_db(weather);
  st.path_loss_db = fspl + excess + weather_db + ch::polarization_loss_db() +
                    cfg.implementation_loss_db;

  const double gtx = ch::antenna_gain_dbi(cfg.tx_antenna, look.elevation_deg);
  const double grx = ch::antenna_gain_dbi(cfg.rx_antenna, look.elevation_deg);
  st.rssi_dbm = cfg.tx_power_dbm + gtx + grx - st.path_loss_db;

  const double noise = ch::noise_floor_dbm(
      cfg.lora.bandwidth_hz, cfg.rx_noise_figure_db, cfg.external_noise_db);
  st.snr_db = st.rssi_dbm - noise;

  st.doppler.shift_hz = sinet::orbit::doppler_shift_hz(
      look.range_rate_km_s, cfg.carrier_hz);
  st.doppler.rate_hz_per_s = 0.0;
  return st;
}

}  // namespace

LinkState mean_link_state(const LinkConfig& cfg,
                          const sinet::orbit::LookAngles& look,
                          sinet::channel::Weather weather) {
  return base_state(cfg, look, weather);
}

LinkState draw_link_state(const LinkConfig& cfg,
                          const sinet::orbit::LookAngles& look,
                          sinet::channel::Weather weather,
                          double doppler_rate_hz_s, sinet::sim::Rng& rng) {
  LinkState st = base_state(cfg, look, weather);
  const sinet::channel::FadingModel fading(cfg.fading);
  const double fade_db = fading.draw_db(rng, look.elevation_deg, weather);
  st.rssi_dbm += fade_db;
  st.snr_db += fade_db;
  st.doppler.rate_hz_per_s = doppler_rate_hz_s;
  return st;
}

}  // namespace sinet::phy
