#include "phy/nbiot.h"

#include <cmath>
#include <stdexcept>

#include "channel/noise.h"

namespace sinet::phy {

namespace {
void validate(const NbIotParams& p) {
  if (p.subcarrier_hz <= 0.0 || p.base_rate_bps <= 0.0)
    throw std::invalid_argument("NbIotParams: nonpositive rate/bandwidth");
  if (p.repetitions < 1 || p.repetitions > 128)
    throw std::invalid_argument("NbIotParams: repetitions out of 1..128");
}
}  // namespace

double nbiot_transmission_time_s(const NbIotParams& p, int payload_bytes) {
  validate(p);
  if (payload_bytes <= 0 || payload_bytes > 1600)
    throw std::invalid_argument("nbiot_transmission_time_s: bad payload");
  // Transport-block payload plus MAC/RLC/PDCP overhead (~9 bytes).
  const double bits = (payload_bytes + 9) * 8.0;
  const double data_time =
      bits / p.base_rate_bps * static_cast<double>(p.repetitions);
  return data_time + p.signalling_overhead_s;
}

double nbiot_required_snr_db(int repetitions) {
  if (repetitions < 1 || repetitions > 128)
    throw std::invalid_argument("nbiot_required_snr_db: bad repetitions");
  // +5 dB baseline for single-shot QPSK NPUSCH at the modeled rate,
  // 2.5 dB per doubling of repetitions (sub-coherent combining loss
  // relative to the ideal 3 dB). At 128 repetitions this reproduces the
  // 3GPP 164 dB MCL design point.
  return 5.0 - 2.5 * std::log2(static_cast<double>(repetitions));
}

double nbiot_max_coupling_loss_db(const NbIotParams& p,
                                  double rx_noise_figure_db) {
  validate(p);
  const double noise_floor = sinet::channel::noise_floor_dbm(
      p.subcarrier_hz, rx_noise_figure_db, 0.0);
  return p.tx_power_dbm - noise_floor +
         (-nbiot_required_snr_db(p.repetitions));
}

double nbiot_tx_energy_mj(const NbIotParams& p, int payload_bytes,
                          double tx_draw_mw) {
  if (tx_draw_mw <= 0.0)
    throw std::invalid_argument("nbiot_tx_energy_mj: nonpositive draw");
  return tx_draw_mw * nbiot_transmission_time_s(p, payload_bytes);
}

int nbiot_choose_repetitions(double snr_db) {
  for (int r = 1; r <= 128; r *= 2)
    if (snr_db >= nbiot_required_snr_db(r)) return r;
  return 0;
}

}  // namespace sinet::phy
