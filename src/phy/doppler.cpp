#include "phy/doppler.h"

#include <cmath>
#include <stdexcept>

namespace sinet::phy {

double doppler_snr_penalty_db(const DopplerProfile& prof,
                              const LoraParams& params,
                              double packet_duration_s) {
  if (packet_duration_s < 0.0)
    throw std::invalid_argument("doppler_snr_penalty_db: negative duration");

  const double offset = std::abs(prof.shift_hz);
  const double tolerance = 0.25 * params.bandwidth_hz;
  if (offset > tolerance) return 60.0;  // out of capture range: lost

  // Quadratic penalty up to 3 dB at the edge of the capture range.
  const double frac = offset / tolerance;
  double penalty = 3.0 * frac * frac;

  // Intra-packet drift in units of demodulator bins.
  const double drift_hz = std::abs(prof.rate_hz_per_s) * packet_duration_s;
  const double bins = drift_hz / params.bin_width_hz();
  if (bins > 0.5) penalty += 1.0 * (bins - 0.5);

  return penalty;
}

double max_doppler_rate_hz_s(double speed_km_s, double min_range_km,
                             double carrier_hz) {
  if (min_range_km <= 0.0)
    throw std::invalid_argument("max_doppler_rate_hz_s: range <= 0");
  constexpr double kC = 299792.458;  // km/s
  return speed_km_s * speed_km_s / min_range_km * carrier_hz / kC;
}

}  // namespace sinet::phy
