// NB-IoT (NTN) physical-layer model for Direct-to-Satellite links.
//
// The paper names NB-IoT as the other terrestrial IoT technology reaching
// LEO altitudes (Sec 1, citing 3GPP NTN work). This model captures the
// pieces that matter for a DtS comparison against LoRa: single-tone
// NPUSCH airtime with repetitions, the repetition-combining SNR gain,
// maximum coupling loss, and per-report transmit energy.
#pragma once

namespace sinet::phy {

struct NbIotParams {
  double subcarrier_hz = 15e3;  ///< single-tone NPUSCH (3.75 kHz optional)
  int repetitions = 1;          ///< 1..128, powers of two
  double tx_power_dbm = 23.0;   ///< UE power class 3
  /// Base spectral efficiency of single-tone NPUSCH before repetitions:
  /// ~20 kbps at 15 kHz (QPSK, typical MCS for NTN link budgets).
  double base_rate_bps = 20e3;
  /// Uplink control/signalling overhead per report (NPRACH + grants), s.
  double signalling_overhead_s = 0.6;
};

/// Transmit airtime (s) for `payload_bytes` of application data,
/// including repetitions and signalling. Throws std::invalid_argument
/// for invalid payload/repetitions.
[[nodiscard]] double nbiot_transmission_time_s(const NbIotParams& p,
                                               int payload_bytes);

/// Minimum working SNR (dB) at the given repetition level. The single
/// transmission reference is ~ +5 dB (QPSK NPUSCH at the modeled rate);
/// each doubling of repetitions buys ~2.5 dB of combining gain.
[[nodiscard]] double nbiot_required_snr_db(int repetitions);

/// Maximum coupling loss (dB) the uplink closes: EIRP - noise floor
/// (thermal + NF over the subcarrier bandwidth) + allowed negative SNR.
/// NB-IoT's design target is 164 dB MCL at maximum repetitions.
[[nodiscard]] double nbiot_max_coupling_loss_db(const NbIotParams& p,
                                                double rx_noise_figure_db = 3.0);

/// Transmit energy (mJ) for one report at `tx_power_mw` electronics draw
/// (PA + baseband) — used for the LoRa-vs-NB-IoT energy comparison.
[[nodiscard]] double nbiot_tx_energy_mj(const NbIotParams& p,
                                        int payload_bytes,
                                        double tx_draw_mw = 716.0);

/// Smallest repetition level (power of two, <= 128) that closes a link
/// with the given SNR; returns 0 if even 128 repetitions cannot.
[[nodiscard]] int nbiot_choose_repetitions(double snr_db);

}  // namespace sinet::phy
