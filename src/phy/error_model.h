// Packet error probability for LoRa receptions.
//
// Abstraction level: the paper observes packet-level outcomes (beacon
// received / lost), so we model the demodulator as an SNR-margin waterfall
// calibrated to the Semtech quasi-error-free thresholds: at threshold the
// PER is ~10%, each dB of margin divides the symbol error rate roughly by
// e^1.9, and longer packets (more symbols) are proportionally more likely
// to contain an uncorrectable error. Doppler contributes an SNR penalty
// computed by phy/doppler.h.
#pragma once

#include "phy/doppler.h"
#include "phy/link_budget.h"
#include "phy/lora.h"
#include "sim/rng.h"

namespace sinet::phy {

struct ErrorModelConfig {
  /// Symbol error rate at exactly the demod SNR threshold.
  double ser_at_threshold = 2e-3;
  /// Exponential slope of SER vs margin (per dB).
  double slope_per_db = 1.9;
  /// Floor on PER from non-SNR effects (interference bursts, sync loss).
  double residual_per = 2e-3;
  /// Coding-rate correction capability: fraction of symbol errors the FEC
  /// absorbs at CR 4/8 (scaled linearly down to 0 at CR 4/5-equivalent).
  double fec_strength = 0.5;
};

class ErrorModel {
 public:
  explicit ErrorModel(const ErrorModelConfig& cfg = {});

  /// Probability that a packet of `payload_bytes` is lost at the given
  /// post-Doppler SNR. Deterministic; in [residual_per, 1].
  [[nodiscard]] double packet_error_probability(double snr_db,
                                                const LoraParams& params,
                                                int payload_bytes) const;

  /// Full reception decision: applies Doppler penalty then draws a
  /// Bernoulli outcome. Returns true when the packet is received.
  [[nodiscard]] bool receive(const LinkState& link, const LoraParams& params,
                             int payload_bytes, sinet::sim::Rng& rng) const;

  [[nodiscard]] const ErrorModelConfig& config() const noexcept {
    return cfg_;
  }

 private:
  ErrorModelConfig cfg_;
};

}  // namespace sinet::phy
