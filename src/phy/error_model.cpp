#include "phy/error_model.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sinet::phy {

ErrorModel::ErrorModel(const ErrorModelConfig& cfg) : cfg_(cfg) {
  if (cfg.ser_at_threshold <= 0.0 || cfg.ser_at_threshold >= 1.0)
    throw std::invalid_argument("ErrorModel: ser_at_threshold out of (0,1)");
  if (cfg.slope_per_db <= 0.0)
    throw std::invalid_argument("ErrorModel: nonpositive slope");
  if (cfg.residual_per < 0.0 || cfg.residual_per >= 1.0)
    throw std::invalid_argument("ErrorModel: residual_per out of [0,1)");
}

double ErrorModel::packet_error_probability(double snr_db,
                                            const LoraParams& params,
                                            int payload_bytes) const {
  const double margin = snr_db - demod_snr_threshold_db(params.sf);
  // Symbol error rate decays exponentially with margin; saturates at 1.
  double ser =
      cfg_.ser_at_threshold * std::exp(-cfg_.slope_per_db * margin);
  ser = std::min(ser, 1.0);

  // FEC absorbs part of the symbol errors, proportional to redundancy.
  const double redundancy =
      static_cast<double>(static_cast<int>(params.cr)) / 4.0;  // 0.25..1
  const double absorbed = cfg_.fec_strength * redundancy;
  ser *= (1.0 - absorbed);

  const int n_sym =
      params.preamble_symbols + payload_symbol_count(params, payload_bytes);
  const double p_ok = std::pow(1.0 - std::min(ser, 1.0), n_sym);
  const double per = 1.0 - (1.0 - cfg_.residual_per) * p_ok;
  return std::clamp(per, cfg_.residual_per, 1.0);
}

bool ErrorModel::receive(const LinkState& link, const LoraParams& params,
                         int payload_bytes, sinet::sim::Rng& rng) const {
  const double toa = time_on_air_s(params, payload_bytes);
  const double penalty =
      doppler_snr_penalty_db(link.doppler, params, toa);
  const double per = packet_error_probability(link.snr_db - penalty, params,
                                              payload_bytes);
  return !rng.chance(per);
}

}  // namespace sinet::phy
