// Doppler impairment model for LoRa over LEO DtS links.
//
// A LEO satellite at ~500 km moves at ~7.6 km/s, inducing a carrier
// offset of up to ~|v|/c * fc (~11 kHz at 433 MHz) and, near closest
// approach, a Doppler *rate* of hundreds of Hz/s. LoRa tolerates a static
// offset of roughly +/-25% of its bandwidth, but intra-packet frequency
// drift smears energy across demodulator bins and degrades high spreading
// factors whose packets last seconds (paper Appendix C, cause 2).
#pragma once

#include "phy/lora.h"

namespace sinet::phy {

struct DopplerProfile {
  double shift_hz = 0.0;      ///< carrier offset at packet start
  double rate_hz_per_s = 0.0; ///< d(shift)/dt during the packet
};

/// Effective SNR penalty (dB) a packet suffers from Doppler.
///
/// - static offset within 25% of BW: graceful quadratic penalty (<= ~3 dB)
/// - static offset beyond 25% of BW: packet unreceivable (large penalty)
/// - drift across the packet measured in demodulator bins: ~1 dB per bin
///   drifted beyond the first half-bin.
[[nodiscard]] double doppler_snr_penalty_db(const DopplerProfile& prof,
                                            const LoraParams& params,
                                            double packet_duration_s);

/// Worst-case Doppler rate (Hz/s) for a pass with closest range
/// `min_range_km` and speed `speed_km_s` on carrier `carrier_hz`
/// (rate ~ v^2 / r_min * fc / c at culmination).
[[nodiscard]] double max_doppler_rate_hz_s(double speed_km_s,
                                           double min_range_km,
                                           double carrier_hz);

}  // namespace sinet::phy
