#include "phy/lora.h"

#include <cmath>
#include <stdexcept>

#include "channel/noise.h"

namespace sinet::phy {

bool LoraParams::low_data_rate_optimize() const noexcept {
  return symbol_time_s() > 16e-3;
}

double LoraParams::symbol_time_s() const noexcept {
  return std::pow(2.0, static_cast<double>(sf)) / bandwidth_hz;
}

double LoraParams::bin_width_hz() const noexcept {
  return bandwidth_hz / std::pow(2.0, static_cast<double>(sf));
}

int payload_symbol_count(const LoraParams& p, int payload_bytes) {
  if (payload_bytes < 0 || payload_bytes > 255)
    throw std::invalid_argument("payload_symbol_count: payload out of 0..255");
  const int sf = static_cast<int>(p.sf);
  const int de = p.low_data_rate_optimize() ? 1 : 0;
  const int ih = p.explicit_header ? 0 : 1;
  const int crc = p.crc_on ? 1 : 0;
  const int cr = static_cast<int>(p.cr);
  const double num = 8.0 * payload_bytes - 4.0 * sf + 28.0 + 16.0 * crc -
                     20.0 * ih;
  const double den = 4.0 * (sf - 2 * de);
  const double ceil_term = std::max(std::ceil(num / den), 0.0);
  return 8 + static_cast<int>(ceil_term * (cr + 4));
}

double time_on_air_s(const LoraParams& p, int payload_bytes) {
  if (p.bandwidth_hz <= 0.0)
    throw std::invalid_argument("time_on_air_s: bandwidth <= 0");
  if (p.preamble_symbols < 0)
    throw std::invalid_argument("time_on_air_s: negative preamble");
  const double t_sym = p.symbol_time_s();
  const double t_preamble = (p.preamble_symbols + 4.25) * t_sym;
  const double t_payload = payload_symbol_count(p, payload_bytes) * t_sym;
  return t_preamble + t_payload;
}

double demod_snr_threshold_db(SpreadingFactor sf) {
  switch (sf) {
    case SpreadingFactor::kSf7:
      return -7.5;
    case SpreadingFactor::kSf8:
      return -10.0;
    case SpreadingFactor::kSf9:
      return -12.5;
    case SpreadingFactor::kSf10:
      return -15.0;
    case SpreadingFactor::kSf11:
      return -17.5;
    case SpreadingFactor::kSf12:
      return -20.0;
  }
  throw std::invalid_argument("demod_snr_threshold_db: unknown SF");
}

double sensitivity_dbm(const LoraParams& p, double noise_figure_db) {
  return sinet::channel::noise_floor_dbm(p.bandwidth_hz, noise_figure_db,
                                         0.0) +
         demod_snr_threshold_db(p.sf);
}

std::string to_string(SpreadingFactor sf) {
  return "SF" + std::to_string(static_cast<int>(sf));
}

SpreadingFactor choose_spreading_factor(double estimated_snr_db,
                                        double safety_margin_db) {
  for (const SpreadingFactor sf :
       {SpreadingFactor::kSf7, SpreadingFactor::kSf8, SpreadingFactor::kSf9,
        SpreadingFactor::kSf10, SpreadingFactor::kSf11}) {
    if (estimated_snr_db - safety_margin_db >= demod_snr_threshold_db(sf))
      return sf;
  }
  return SpreadingFactor::kSf12;
}

LoraParams default_dts_params() {
  LoraParams p;
  p.sf = SpreadingFactor::kSf10;
  p.bandwidth_hz = 125e3;
  p.cr = CodingRate::k4_5;
  p.preamble_symbols = 8;
  return p;
}

}  // namespace sinet::phy
