// End-to-end link budget for a DtS LoRa link: transforms pass geometry
// into received power (RSSI), SNR and Doppler, combining path loss,
// weather, antenna patterns and stochastic fading.
#pragma once

#include "channel/antenna.h"
#include "channel/fading.h"
#include "channel/weather.h"
#include "orbit/look_angles.h"
#include "phy/doppler.h"
#include "phy/lora.h"
#include "sim/rng.h"

namespace sinet::phy {

/// Static radio configuration of one end-to-end link.
struct LinkConfig {
  double tx_power_dbm = 22.0;  ///< typical LoRa max in the 400 MHz band
  sinet::channel::AntennaType tx_antenna =
      sinet::channel::AntennaType::kDipole;
  sinet::channel::AntennaType rx_antenna =
      sinet::channel::AntennaType::kQuarterWaveMonopole;
  double carrier_hz = 400.45e6;
  double rx_noise_figure_db = 6.0;
  double external_noise_db = 2.0;
  double implementation_loss_db = 1.0;  ///< connectors, matching, aging
  LoraParams lora;
  sinet::channel::FadingConfig fading;
};

/// Instantaneous link-budget evaluation result.
struct LinkState {
  double rssi_dbm = 0.0;
  double snr_db = 0.0;
  double path_loss_db = 0.0;
  DopplerProfile doppler;
  double elevation_deg = 0.0;
  double range_km = 0.0;
};

/// Deterministic (mean) link budget at the given geometry: no fading draw.
/// `tx_elevation_deg` is the elevation of the ground terminal as seen in
/// the satellite antenna frame; for a nanosat dipole we evaluate the
/// pattern at the same elevation by symmetry.
[[nodiscard]] LinkState mean_link_state(const LinkConfig& cfg,
                                        const sinet::orbit::LookAngles& look,
                                        sinet::channel::Weather weather);

/// Stochastic link budget: mean state plus a fading realization drawn
/// from `rng`. The Doppler rate is estimated by the caller (pass slope)
/// and stored in `doppler_rate_hz_s`.
[[nodiscard]] LinkState draw_link_state(const LinkConfig& cfg,
                                        const sinet::orbit::LookAngles& look,
                                        sinet::channel::Weather weather,
                                        double doppler_rate_hz_s,
                                        sinet::sim::Rng& rng);

}  // namespace sinet::phy
