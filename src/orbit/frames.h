// Reference-frame rotations: TEME (SGP4 output) <-> ECEF.
//
// SGP4 emits position/velocity in the True Equator Mean Equinox (TEME)
// frame. Ground geometry wants Earth-fixed (ECEF) coordinates. We rotate
// by GMST about the z-axis; polar motion (< 15 m) is ignored, which is
// far below link-budget relevance.
#pragma once

#include "orbit/time.h"
#include "orbit/vec3.h"

namespace sinet::orbit {

/// Earth rotation rate (rad/s), IAU-82 value.
inline constexpr double kEarthRotationRadPerSec = 7.29211514670698e-5;

/// Rotate a TEME position (km) into ECEF at the given UTC Julian date.
[[nodiscard]] Vec3 teme_to_ecef_position(const Vec3& r_teme_km, JulianDate jd);

/// Rotate a TEME position (km) into ECEF given a precomputed GMST angle.
/// Bit-identical to the position teme_to_ecef_state(jd) produces when
/// `gmst` equals gmst_rad(jd); the shared-ephemeris table uses this to
/// evaluate GMST once per timestep across every satellite.
[[nodiscard]] Vec3 teme_to_ecef_position_gmst(const Vec3& r_teme_km,
                                              double gmst);

/// Rotate a TEME velocity (km/s) into ECEF, including the transport term
/// (-omega x r) due to the rotating frame.
[[nodiscard]] Vec3 teme_to_ecef_velocity(const Vec3& r_teme_km,
                                         const Vec3& v_teme_km_s,
                                         JulianDate jd);

/// Position + velocity in ECEF.
struct EcefState {
  Vec3 position_km;
  Vec3 velocity_km_s;
};

/// Rotate a full TEME state into ECEF, evaluating GMST and the position
/// rotation once and sharing them between position and velocity.
/// Bit-identical to calling teme_to_ecef_position and
/// teme_to_ecef_velocity separately (both would compute the same GMST and
/// the same rotated position); this is the hot-path form used by pass
/// prediction, which needs both vectors at every sample.
[[nodiscard]] EcefState teme_to_ecef_state(const Vec3& r_teme_km,
                                           const Vec3& v_teme_km_s,
                                           JulianDate jd);

/// Inverse rotation: ECEF position (km) -> TEME.
[[nodiscard]] Vec3 ecef_to_teme_position(const Vec3& r_ecef_km, JulianDate jd);

}  // namespace sinet::orbit
