// SGP4 orbital propagator (near-earth branch).
//
// Implementation of the near-earth SGP4 model from Spacetrack Report #3
// (Hoots & Roehrich 1980) with the conventions of the Vallado et al. 2006
// revision ("Revisiting Spacetrack Report #3", AIAA 2006-6753) — the exact
// model the paper uses to compute theoretical satellite presence from TLEs.
//
// Every satellite in the study is LEO (period < 105 min), far below the
// 225-minute deep-space threshold, so the SDP4 deep-space branch is out of
// scope; constructing a propagator from a deep-space TLE throws.
#pragma once

#include <stdexcept>

#include "orbit/tle.h"
#include "orbit/vec3.h"

namespace sinet::orbit {

/// Position/velocity in the TEME frame.
struct TemeState {
  Vec3 position_km;
  Vec3 velocity_km_s;
};

/// Thrown when propagation fails (decayed orbit, non-physical elements).
class PropagationError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Everything the init stage derives from a TLE, exported so the SoA
/// batch propagator (orbit/sgp4_batch.h) can transpose many satellites
/// into lane arrays without re-running init. Field names follow the
/// private members (Spacetrack Report #3 conventions).
struct Sgp4Coefficients {
  JulianDate epoch_jd;
  double e0, i0, raan0, argp0, m0, bstar;
  bool simple;
  double aodp, xnodp;
  double cosio, sinio, x3thm1, x1mth2, x7thm1, eta;
  double c1, c4, c5;
  double d2, d3, d4;
  double xmdot, omgdot, xnodot, xnodcf;
  double omgcof, xmcof, t2cof, t3cof, t4cof, t5cof;
  double xlcof, aycof, delmo, sinmo;
};

/// SGP4 propagator. Construct once per TLE (runs the init stage), then
/// call at()/at_jd() any number of times; const and thread-compatible.
class Sgp4 {
 public:
  /// Initialize from a TLE. Throws std::invalid_argument for deep-space
  /// elements or eccentricity outside [0, 0.999], PropagationError if the
  /// elements describe an already-decayed orbit.
  explicit Sgp4(const Tle& tle);

  /// Propagate to `tsince_min` minutes after the TLE epoch.
  [[nodiscard]] TemeState at(double tsince_min) const;

  /// Propagate to an absolute UTC Julian date.
  [[nodiscard]] TemeState at_jd(JulianDate jd) const {
    return at((jd - epoch_jd_) * kMinutesPerDay);
  }

  [[nodiscard]] JulianDate epoch_jd() const noexcept { return epoch_jd_; }
  /// Original (Brouwer) mean motion recovered at init, rad/min.
  [[nodiscard]] double mean_motion_rad_min() const noexcept { return xnodp_; }
  /// Semi-major axis recovered at init, earth radii.
  [[nodiscard]] double semi_major_axis_er() const noexcept { return aodp_; }
  /// Epoch eccentricity (used by the conservative pass-culling bounds).
  [[nodiscard]] double eccentricity() const noexcept { return e0_; }

  /// Snapshot of the init-stage constants for the batch propagator.
  [[nodiscard]] Sgp4Coefficients coefficients() const noexcept;

 private:
  // Epoch elements (radians / rad-per-min).
  JulianDate epoch_jd_;
  double e0_, i0_, raan0_, argp0_, m0_;
  double bstar_;

  // Init-stage derived constants (names follow Spacetrack Report #3).
  bool simple_ = false;
  double aodp_, xnodp_;
  double cosio_, sinio_, x3thm1_, x1mth2_, x7thm1_, eta_;
  double c1_, c3_, c4_, c5_;
  double d2_, d3_, d4_;
  double xmdot_, omgdot_, xnodot_, xnodcf_;
  double omgcof_, xmcof_, t2cof_, t3cof_, t4cof_, t5cof_;
  double xlcof_, aycof_, delmo_, sinmo_;
};

}  // namespace sinet::orbit
