#include "orbit/time.h"

#include <cmath>
#include <stdexcept>

namespace sinet::orbit {

JulianDate julian_from_civil(int year, int month, int day, int hour,
                             int minute, double second) {
  if (year < 1901 || year > 2099)
    throw std::invalid_argument("julian_from_civil: year out of 1901..2099");
  if (month < 1 || month > 12)
    throw std::invalid_argument("julian_from_civil: bad month");
  if (day < 1 || day > 31)
    throw std::invalid_argument("julian_from_civil: bad day");
  if (hour < 0 || hour > 23 || minute < 0 || minute > 59 || second < 0.0 ||
      second >= 61.0)
    throw std::invalid_argument("julian_from_civil: bad time of day");

  // Vallado's algorithm, valid 1901-2099 (no century-rule exceptions).
  const double jd =
      367.0 * year -
      std::floor(7.0 * (year + std::floor((month + 9.0) / 12.0)) * 0.25) +
      std::floor(275.0 * month / 9.0) + day + 1721013.5;
  const double day_frac =
      (static_cast<double>(hour) * 3600.0 + static_cast<double>(minute) * 60.0 +
       second) /
      kSecondsPerDay;
  return jd + day_frac;
}

CivilTime civil_from_julian(JulianDate jd) {
  // Inverse of the above, valid for the 1901-2099 span we support.
  const double jd_half = jd + 0.5;
  const double z = std::floor(jd_half);
  double f = jd_half - z;

  const double alpha = std::floor((z - 1867216.25) / 36524.25);
  const double a = z + 1.0 + alpha - std::floor(alpha / 4.0);
  const double b = a + 1524.0;
  const double c = std::floor((b - 122.1) / 365.25);
  const double d = std::floor(365.25 * c);
  const double e = std::floor((b - d) / 30.6001);

  const double day_with_frac = b - d - std::floor(30.6001 * e) + f;
  CivilTime out{};
  out.day = static_cast<int>(std::floor(day_with_frac));
  out.month = static_cast<int>(e < 14.0 ? e - 1.0 : e - 13.0);
  out.year = static_cast<int>(out.month > 2 ? c - 4716.0 : c - 4715.0);

  double day_frac = day_with_frac - out.day;
  double seconds = day_frac * kSecondsPerDay;
  // Clamp accumulated fp error away from 86400.
  if (seconds >= kSecondsPerDay) seconds = kSecondsPerDay - 1e-6;
  out.hour = static_cast<int>(seconds / 3600.0);
  seconds -= out.hour * 3600.0;
  out.minute = static_cast<int>(seconds / 60.0);
  out.second = seconds - out.minute * 60.0;
  return out;
}

double gmst_rad(JulianDate jd_ut1) {
  // IAU-82 (Vallado, "Fundamentals of Astrodynamics", Eq. 3-47).
  const double tut1 = (jd_ut1 - kJdJ2000) / 36525.0;
  double gmst_s = 67310.54841 +
                  (876600.0 * 3600.0 + 8640184.812866) * tut1 +
                  0.093104 * tut1 * tut1 - 6.2e-6 * tut1 * tut1 * tut1;
  gmst_s = std::fmod(gmst_s, kSecondsPerDay);
  if (gmst_s < 0.0) gmst_s += kSecondsPerDay;
  return gmst_s * kTwoPi / kSecondsPerDay;
}

JulianDate julian_from_tle_epoch(int epoch_year_2digit,
                                 double epoch_day_of_year) {
  if (epoch_year_2digit < 0 || epoch_year_2digit > 99)
    throw std::invalid_argument("TLE epoch year must be two digits");
  if (epoch_day_of_year < 1.0 || epoch_day_of_year >= 367.0)
    throw std::invalid_argument("TLE epoch day-of-year out of range");
  const int year =
      epoch_year_2digit >= 57 ? 1900 + epoch_year_2digit : 2000 + epoch_year_2digit;
  // JD of Jan 1, 00:00 of `year`, then add (doy - 1).
  const JulianDate jan1 = julian_from_civil(year, 1, 1, 0, 0, 0.0);
  return jan1 + (epoch_day_of_year - 1.0);
}

double wrap_two_pi(double angle_rad) noexcept {
  double a = std::fmod(angle_rad, kTwoPi);
  if (a < 0.0) a += kTwoPi;
  return a;
}

double wrap_pi(double angle_rad) noexcept {
  double a = wrap_two_pi(angle_rad);
  if (a > kPi) a -= kTwoPi;
  return a;
}

}  // namespace sinet::orbit
