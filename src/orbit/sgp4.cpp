#include "orbit/sgp4.h"

#include <cmath>

#include "orbit/sgp4_constants.h"
#include "orbit/time.h"

namespace sinet::orbit {

namespace {
// Constant-exponent powers spelled as multiplications: the hot path pays
// one pow() call ~20x the cost of a multiply, and every exponent below
// is a compile-time constant. The 200-TLE parity suite and the golden
// Spacetrack cases gate these forms against the pow() originals.
constexpr double cube(double x) noexcept { return x * x * x; }
constexpr double fourth(double x) noexcept { return (x * x) * (x * x); }

// WGS-72 gravitational constants (orbit/sgp4_constants.h, shared with
// the SoA batch propagator).
using sgp4c::kAe;
using sgp4c::kCk2;
using sgp4c::kCk4;
using sgp4c::kJ3;
using sgp4c::kQoms2t;
using sgp4c::kS;
using sgp4c::kXke;
using sgp4c::kXkmper;
}  // namespace

Sgp4::Sgp4(const Tle& tle) : epoch_jd_(tle.epoch_jd) {
  if (tle.is_deep_space())
    throw std::invalid_argument(
        "Sgp4: deep-space elements (period >= 225 min) are out of scope; "
        "all satellites in this framework are LEO");
  if (tle.eccentricity < 0.0 || tle.eccentricity > 0.999)
    throw std::invalid_argument("Sgp4: eccentricity out of [0, 0.999]");

  e0_ = tle.eccentricity;
  i0_ = tle.inclination_deg * kDegToRad;
  raan0_ = tle.raan_deg * kDegToRad;
  argp0_ = tle.arg_perigee_deg * kDegToRad;
  m0_ = tle.mean_anomaly_deg * kDegToRad;
  bstar_ = tle.bstar;
  const double no = tle.mean_motion_rev_day * kTwoPi / kMinutesPerDay;

  // --- Recover original mean motion and semi-major axis (Brouwer) ---
  cosio_ = std::cos(i0_);
  sinio_ = std::sin(i0_);
  const double theta2 = cosio_ * cosio_;
  x3thm1_ = 3.0 * theta2 - 1.0;
  const double eosq = e0_ * e0_;
  const double betao2 = 1.0 - eosq;
  const double betao = std::sqrt(betao2);

  const double a1 = std::pow(kXke / no, 2.0 / 3.0);
  const double del1 = 1.5 * kCk2 * x3thm1_ / (a1 * a1 * betao * betao2);
  const double ao =
      a1 * (1.0 - del1 * (1.0 / 3.0 + del1 * (1.0 + 134.0 / 81.0 * del1)));
  const double delo = 1.5 * kCk2 * x3thm1_ / (ao * ao * betao * betao2);
  xnodp_ = no / (1.0 + delo);
  aodp_ = ao / (1.0 - delo);

  const double perigee_km = (aodp_ * (1.0 - e0_) - kAe) * kXkmper;
  if (perigee_km < 90.0)
    throw PropagationError("Sgp4: perigee below 90 km — orbit decayed");

  // Use the "simple" model when perigee < 220 km.
  simple_ = perigee_km < 220.0;

  // --- Adjust s4/qoms24 for low perigees ---
  double s4 = kS;
  double qoms24 = kQoms2t;
  if (perigee_km < 156.0) {
    s4 = perigee_km - 78.0;
    if (perigee_km < 98.0) s4 = 20.0;
    qoms24 = fourth((120.0 - s4) * kAe / kXkmper);
    s4 = s4 / kXkmper + kAe;
  }

  const double pinvsq = 1.0 / (aodp_ * aodp_ * betao2 * betao2);
  const double tsi = 1.0 / (aodp_ - s4);
  eta_ = aodp_ * e0_ * tsi;
  const double etasq = eta_ * eta_;
  const double eeta = e0_ * eta_;
  const double psisq = std::abs(1.0 - etasq);
  const double coef = qoms24 * fourth(tsi);
  // psisq^3.5 = psisq^3 * sqrt(psisq); psisq = |1 - eta^2| >= 0.
  const double coef1 = coef / (cube(psisq) * std::sqrt(psisq));
  const double c2 =
      coef1 * xnodp_ *
      (aodp_ * (1.0 + 1.5 * etasq + eeta * (4.0 + etasq)) +
       0.75 * kCk2 * tsi / psisq * x3thm1_ *
           (8.0 + 3.0 * etasq * (8.0 + etasq)));
  c1_ = bstar_ * c2;

  const double a3ovk2 = -kJ3 / kCk2 * cube(kAe);
  c3_ = e0_ > 1e-4 ? coef * tsi * a3ovk2 * xnodp_ * kAe * sinio_ / e0_ : 0.0;

  x1mth2_ = 1.0 - theta2;
  c4_ = 2.0 * xnodp_ * coef1 * aodp_ * betao2 *
        (eta_ * (2.0 + 0.5 * etasq) + e0_ * (0.5 + 2.0 * etasq) -
         2.0 * kCk2 * tsi / (aodp_ * psisq) *
             (-3.0 * x3thm1_ *
                  (1.0 - 2.0 * eeta + etasq * (1.5 - 0.5 * eeta)) +
              0.75 * x1mth2_ * (2.0 * etasq - eeta * (1.0 + etasq)) *
                  std::cos(2.0 * argp0_)));
  c5_ = 2.0 * coef1 * aodp_ * betao2 *
        (1.0 + 2.75 * (etasq + eeta) + eeta * etasq);

  const double theta4 = theta2 * theta2;
  const double temp1 = 3.0 * kCk2 * pinvsq * xnodp_;
  const double temp2 = temp1 * kCk2 * pinvsq;
  const double temp3 = 1.25 * kCk4 * pinvsq * pinvsq * xnodp_;
  xmdot_ = xnodp_ + 0.5 * temp1 * betao * x3thm1_ +
           0.0625 * temp2 * betao * (13.0 - 78.0 * theta2 + 137.0 * theta4);
  const double x1m5th = 1.0 - 5.0 * theta2;
  omgdot_ = -0.5 * temp1 * x1m5th +
            0.0625 * temp2 * (7.0 - 114.0 * theta2 + 395.0 * theta4) +
            temp3 * (3.0 - 36.0 * theta2 + 49.0 * theta4);
  const double xhdot1 = -temp1 * cosio_;
  xnodot_ = xhdot1 + (0.5 * temp2 * (4.0 - 19.0 * theta2) +
                      2.0 * temp3 * (3.0 - 7.0 * theta2)) *
                         cosio_;
  omgcof_ = bstar_ * c3_ * std::cos(argp0_);
  xmcof_ = eeta > 1e-12
               ? -(2.0 / 3.0) * coef * bstar_ * kAe / eeta
               : 0.0;
  xnodcf_ = 3.5 * betao2 * xhdot1 * c1_;
  t2cof_ = 1.5 * c1_;
  // Avoid divide-by-zero for i ~ 180 deg in xlcof.
  const double onep_cosio =
      std::abs(1.0 + cosio_) > 1.5e-12 ? 1.0 + cosio_ : 1.5e-12;
  xlcof_ = 0.125 * a3ovk2 * sinio_ * (3.0 + 5.0 * cosio_) / onep_cosio;
  aycof_ = 0.25 * a3ovk2 * sinio_;
  delmo_ = cube(1.0 + eta_ * std::cos(m0_));
  sinmo_ = std::sin(m0_);
  x7thm1_ = 7.0 * theta2 - 1.0;

  d2_ = d3_ = d4_ = t3cof_ = t4cof_ = t5cof_ = 0.0;
  if (!simple_) {
    const double c1sq = c1_ * c1_;
    d2_ = 4.0 * aodp_ * tsi * c1sq;
    const double temp = d2_ * tsi * c1_ / 3.0;
    d3_ = (17.0 * aodp_ + s4) * temp;
    d4_ = 0.5 * temp * aodp_ * tsi * (221.0 * aodp_ + 31.0 * s4) * c1_;
    t3cof_ = d2_ + 2.0 * c1sq;
    t4cof_ = 0.25 * (3.0 * d3_ + c1_ * (12.0 * d2_ + 10.0 * c1sq));
    t5cof_ = 0.2 * (3.0 * d4_ + 12.0 * c1_ * d3_ + 6.0 * d2_ * d2_ +
                    15.0 * c1sq * (2.0 * d2_ + c1sq));
  }
}

Sgp4Coefficients Sgp4::coefficients() const noexcept {
  Sgp4Coefficients c;
  c.epoch_jd = epoch_jd_;
  c.e0 = e0_;
  c.i0 = i0_;
  c.raan0 = raan0_;
  c.argp0 = argp0_;
  c.m0 = m0_;
  c.bstar = bstar_;
  c.simple = simple_;
  c.aodp = aodp_;
  c.xnodp = xnodp_;
  c.cosio = cosio_;
  c.sinio = sinio_;
  c.x3thm1 = x3thm1_;
  c.x1mth2 = x1mth2_;
  c.x7thm1 = x7thm1_;
  c.eta = eta_;
  c.c1 = c1_;
  c.c4 = c4_;
  c.c5 = c5_;
  c.d2 = d2_;
  c.d3 = d3_;
  c.d4 = d4_;
  c.xmdot = xmdot_;
  c.omgdot = omgdot_;
  c.xnodot = xnodot_;
  c.xnodcf = xnodcf_;
  c.omgcof = omgcof_;
  c.xmcof = xmcof_;
  c.t2cof = t2cof_;
  c.t3cof = t3cof_;
  c.t4cof = t4cof_;
  c.t5cof = t5cof_;
  c.xlcof = xlcof_;
  c.aycof = aycof_;
  c.delmo = delmo_;
  c.sinmo = sinmo_;
  return c;
}

TemeState Sgp4::at(double tsince) const {
  // --- Secular gravity and atmospheric drag ---
  const double xmdf = m0_ + xmdot_ * tsince;
  const double omgadf = argp0_ + omgdot_ * tsince;
  const double xnoddf = raan0_ + xnodot_ * tsince;
  double omega = omgadf;
  double xmp = xmdf;
  const double tsq = tsince * tsince;
  const double xnode = xnoddf + xnodcf_ * tsq;
  double tempa = 1.0 - c1_ * tsince;
  double tempe = bstar_ * c4_ * tsince;
  double templ = t2cof_ * tsq;
  if (!simple_) {
    const double delomg = omgcof_ * tsince;
    const double delm =
        xmcof_ * (cube(1.0 + eta_ * std::cos(xmdf)) - delmo_);
    const double temp = delomg + delm;
    xmp = xmdf + temp;
    omega = omgadf - temp;
    const double tcube = tsq * tsince;
    const double tfour = tsince * tcube;
    tempa -= d2_ * tsq + d3_ * tcube + d4_ * tfour;
    tempe += bstar_ * c5_ * (std::sin(xmp) - sinmo_);
    templ += t3cof_ * tcube + t4cof_ * tfour + t5cof_ * tfour * tsince;
  }
  const double a = aodp_ * tempa * tempa;
  const double e = e0_ - tempe;
  if (e >= 1.0 || e < -0.001)
    throw PropagationError("Sgp4: eccentricity out of range after drag");
  const double e_clamped = std::max(e, 1e-6);
  const double xl = xmp + omega + xnode + xnodp_ * templ;
  const double xn = kXke / (a * std::sqrt(a));  // a^1.5, a > 0 here

  // --- Long period periodics ---
  const double axn = e_clamped * std::cos(omega);
  const double beta2 = 1.0 - e_clamped * e_clamped;
  const double temp_lp = 1.0 / (a * beta2);
  const double xll = temp_lp * xlcof_ * axn;
  const double aynl = temp_lp * aycof_;
  const double xlt = xl + xll;
  const double ayn = e_clamped * std::sin(omega) + aynl;

  // --- Solve Kepler's equation for (E + omega) ---
  const double capu = wrap_two_pi(xlt - xnode);
  double epw = capu;
  double sinepw = 0.0, cosepw = 0.0;
  double t3 = 0.0, t4 = 0.0, t5 = 0.0, t6 = 0.0;
  for (int i = 0; i < 10; ++i) {
    sinepw = std::sin(epw);
    cosepw = std::cos(epw);
    t3 = axn * sinepw;
    t4 = ayn * cosepw;
    t5 = axn * cosepw;
    t6 = ayn * sinepw;
    const double next =
        (capu - t4 + t3 - epw) / (1.0 - t5 - t6) + epw;
    if (std::abs(next - epw) <= 1e-12) {
      epw = next;
      // Recompute trig terms for the converged anomaly.
      sinepw = std::sin(epw);
      cosepw = std::cos(epw);
      t3 = axn * sinepw;
      t4 = ayn * cosepw;
      t5 = axn * cosepw;
      t6 = ayn * sinepw;
      break;
    }
    epw = next;
  }

  // --- Short period preliminary quantities ---
  const double ecose = t5 + t6;
  const double esine = t3 - t4;
  const double elsq = axn * axn + ayn * ayn;
  const double pl = a * (1.0 - elsq);
  if (pl < 0.0) throw PropagationError("Sgp4: semi-latus rectum negative");
  const double r = a * (1.0 - ecose);
  const double invr = 1.0 / r;
  const double rdot = kXke * std::sqrt(a) * esine * invr;
  const double rfdot = kXke * std::sqrt(pl) * invr;
  const double temp_sp = a * invr;
  const double betal = std::sqrt(1.0 - elsq);
  const double t3inv = 1.0 / (1.0 + betal);
  const double cosu = temp_sp * (cosepw - axn + ayn * esine * t3inv);
  const double sinu = temp_sp * (sinepw - ayn - axn * esine * t3inv);
  const double u = std::atan2(sinu, cosu);
  const double sin2u = 2.0 * sinu * cosu;
  const double cos2u = 2.0 * cosu * cosu - 1.0;
  const double invpl = 1.0 / pl;
  const double tk1 = kCk2 * invpl;
  const double tk2 = tk1 * invpl;

  // --- Short period periodics ---
  const double rk =
      r * (1.0 - 1.5 * tk2 * betal * x3thm1_) + 0.5 * tk1 * x1mth2_ * cos2u;
  if (rk < 1.0)
    throw PropagationError("Sgp4: satellite below earth surface (decayed)");
  const double uk = u - 0.25 * tk2 * x7thm1_ * sin2u;
  const double xnodek = xnode + 1.5 * tk2 * cosio_ * sin2u;
  const double xinck = i0_ + 1.5 * tk2 * cosio_ * sinio_ * cos2u;
  const double rdotk = rdot - xn * tk1 * x1mth2_ * sin2u;
  const double rfdotk = rfdot + xn * tk1 * (x1mth2_ * cos2u + 1.5 * x3thm1_);

  // --- Orientation vectors and final state ---
  const double sinuk = std::sin(uk);
  const double cosuk = std::cos(uk);
  const double sinik = std::sin(xinck);
  const double cosik = std::cos(xinck);
  const double sinnok = std::sin(xnodek);
  const double cosnok = std::cos(xnodek);
  const double xmx = -sinnok * cosik;
  const double xmy = cosnok * cosik;
  const Vec3 uvec{xmx * sinuk + cosnok * cosuk, xmy * sinuk + sinnok * cosuk,
                  sinik * sinuk};
  const Vec3 vvec{xmx * cosuk - cosnok * sinuk, xmy * cosuk - sinnok * sinuk,
                  sinik * cosuk};

  TemeState st;
  st.position_km = uvec * (rk * kXkmper);
  st.velocity_km_s = (uvec * rdotk + vvec * rfdotk) * (kXkmper / 60.0);
  return st;
}

}  // namespace sinet::orbit
