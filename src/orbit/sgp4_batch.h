// Struct-of-arrays SGP4: propagate 4 satellites per lane group with
// explicit-width SIMD (orbit/simd.h).
//
// The shared-ephemeris engine (orbit/ephemeris.h) spends almost all of
// its post-culling time in scalar Sgp4::at() — one call per satellite
// per coarse step. This propagator transposes the init-stage constants
// of many satellites into lane arrays once, then evaluates the full
// near-earth SGP4 model for a whole lane group per call, including the
// TEME->ECEF rotation from a caller-supplied (once-per-step) GMST.
//
// Numerics: this is the PropagationMode::kFast path. It follows the
// scalar code's operation order but
//   - uses the polynomial vsincos kernels instead of libm sin/cos,
//   - replaces atan2(sinu, cosu) + sin/cos(uk/xnodek/xinck) with a
//     normalization plus small-angle rotations (the short-period
//     corrections are < 1e-3 rad),
//   - runs the Kepler iteration to convergence of all lanes instead of
//     per-lane early exit.
// Positions agree with the scalar propagator to < 1e-6 km over 30-day
// spans (asserted by tests/test_sgp4_batch.cpp); see the fast-mode
// tolerance table in docs/PERFORMANCE.md.
//
// Branch handling: the `simple_` (perigee < 220 km) drag truncation is
// lane-masked — both element-set flavors coexist in one group. Lanes
// whose elements go non-physical mid-propagation (the conditions where
// scalar Sgp4::at() throws PropagationError) are reported per lane via
// LaneStatus; callers re-run failed lanes through the scalar propagator
// to surface the typed error.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "orbit/sgp4.h"
#include "orbit/time.h"

namespace sinet::orbit {

/// Per-lane outcome of a batched propagation.
enum class LaneStatus : std::uint8_t {
  kOk = 0,
  kError = 1,  ///< scalar Sgp4::at() would throw PropagationError here
};

class Sgp4Batch {
 public:
  /// Lanes per group; groups() = ceil(size / kLaneWidth). The last group
  /// is padded internally with copies of its first member, so remainder
  /// counts need no caller-side handling.
  static constexpr std::size_t kLaneWidth = 4;

  /// Transpose the propagators' init-stage constants into SoA lane
  /// arrays. The Sgp4 objects are only read during construction; they
  /// need not outlive the batch. Throws std::invalid_argument on an
  /// empty set or a null pointer.
  explicit Sgp4Batch(const std::vector<const Sgp4*>& satellites);

  [[nodiscard]] std::size_t size() const noexcept { return n_; }
  [[nodiscard]] std::size_t groups() const noexcept {
    return pad_n_ / kLaneWidth;
  }
  /// Number of real (non-pad) members of `group`.
  [[nodiscard]] std::size_t group_members(std::size_t group) const noexcept {
    const std::size_t begin = group * kLaneWidth;
    return n_ - begin < kLaneWidth ? n_ - begin : kLaneWidth;
  }

  /// Propagate lane group `group` to UTC Julian date `jd` and rotate the
  /// positions into ECEF with the caller-supplied GMST (evaluate
  /// gmst_rad(jd) once per step and share it across every group).
  /// Writes group_members(group) entries of ECEF x/y/z (km), geocentric
  /// distance (km), and per-lane status. Returns true when every real
  /// lane is kOk.
  bool propagate_group_ecef(std::size_t group, JulianDate jd, double gmst,
                            double* x_km, double* y_km, double* z_km,
                            double* dist_km, LaneStatus* status) const;

 private:
  std::size_t n_ = 0;      ///< real satellite count
  std::size_t pad_n_ = 0;  ///< n_ rounded up to a kLaneWidth multiple

  // One padded lane array per init-stage constant (see Sgp4Coefficients).
  std::vector<double> epoch_jd_, argp0_, m0_, raan0_, e0_, bstar_;
  std::vector<double> aodp_, xnodp_;
  std::vector<double> cosio_, sinio_, x3thm1_, x1mth2_, x7thm1_, eta_;
  std::vector<double> c1_, c4_, c5_, d2_, d3_, d4_;
  std::vector<double> xmdot_, omgdot_, xnodot_, xnodcf_;
  std::vector<double> omgcof_, xmcof_, t2cof_, t3cof_, t4cof_, t5cof_;
  std::vector<double> xlcof_, aycof_, delmo_, sinmo_;
  std::vector<double> nonsimple_;  ///< 1.0 for full drag model, 0.0 simple
};

}  // namespace sinet::orbit
