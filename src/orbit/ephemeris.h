// Shared-ephemeris pass-prediction engine with conservative geometric
// culling.
//
// The legacy coarse scan (orbit/passes.h, predict_passes) pays one SGP4
// propagation + GMST evaluation + TEME->ECEF rotation + look-angle solve
// per coarse step per (satellite, observer) pair, even though the
// satellite's ephemeris is observer-independent and almost every sample
// is far below the horizon. This engine:
//
//  1. propagates each satellite ONCE per coarse step into a shared
//     EphemerisTable (ECEF position + geocentric distance), with GMST
//     evaluated once per step across all satellites;
//  2. culls samples that are provably below the elevation mask from
//     geometry alone, and uses a worst-case angular-rate bound to skip
//     ahead over stretches that provably stay below it;
//  3. refines AOS/LOS/TCA with the exact same ElevationSampler
//     primitives as the legacy scan (refine_mask_crossing /
//     refine_max_elevation), on the exact same coarse grid times.
//
// The result: every emitted ContactWindow is bit-identical to
// predict_passes on the same (satellite, observer, span, options) — the
// culling decides only "provably not visible", never "visible", and any
// sample it cannot prove is evaluated exactly.
//
// Culling math (all angles geocentric, at the Earth's center):
// let gamma be the angle between the observer's geocentric direction and
// the satellite's, d the satellite's geocentric distance and R_o the
// observer's. The *geocentric* elevation satisfies
//     sin(el_geo) = (d cos(gamma) - R_o) / |sat - obs|,
// which is monotone decreasing in gamma and increasing in d. The true
// (geodetic-horizon) elevation differs from el_geo by at most the angle
// delta between the geodetic and geocentric verticals (<= ~0.2 deg on
// WGS-84). So with eps' = mask - delta - pad, every gamma above
//     gamma_vis = acos(clamp((R_o / d_max) cos(eps'), -1, 1)) - eps'
// is provably below the mask for ANY d <= d_max. The satellite's
// geocentric angular rate (inertial rate + Earth rotation) is bounded by
// omega_max, so from a sample with margin (gamma - gamma_vis) the pair
// stays invisible for at least (gamma - gamma_vis) / omega_max seconds —
// the scan jumps that many whole coarse steps ahead.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <string_view>
#include <vector>

#include "orbit/geodetic.h"
#include "orbit/passes.h"
#include "orbit/sgp4.h"
#include "orbit/sgp4_batch.h"
#include "orbit/time.h"
#include "orbit/vec3.h"

namespace sinet::obs {
class MetricsRegistry;
}  // namespace sinet::obs

namespace sinet::sim {
class ThreadPool;
}  // namespace sinet::sim

namespace sinet::orbit {

/// How the engine evaluates satellite ephemerides and per-sample
/// elevation classification.
enum class PropagationMode : int {
  /// Scalar SGP4 + exact per-pair elevation tests. Windows are
  /// bit-identical to legacy predict_passes — the seed contract.
  kReference = 0,
  /// SoA/SIMD batched SGP4 (orbit/sgp4_batch.h) + fused multi-observer
  /// visibility in the sine domain + cos-domain culling. AOS/LOS/TCA are
  /// still refined with the exact scalar primitives, so windows agree
  /// with kReference within the tolerance documented in
  /// docs/PERFORMANCE.md (equal counts; edges within one coarse step;
  /// in practice bit-identical unless a coarse sample sits within
  /// ~1e-9 deg of the mask).
  kFast = 1,
};

/// Process-wide default mode. Initialized once from the
/// SINET_PROPAGATION_MODE environment variable ("fast" or "reference";
/// unset/unknown = reference), then adjustable via set_propagation_mode
/// (e.g. from the CLI's --propagation-mode flag).
[[nodiscard]] PropagationMode propagation_mode() noexcept;
void set_propagation_mode(PropagationMode mode) noexcept;

/// Parse "reference" / "fast" (also accepts "scalar" / "simd").
/// Throws std::invalid_argument on anything else.
[[nodiscard]] PropagationMode parse_propagation_mode(std::string_view name);
[[nodiscard]] const char* propagation_mode_name(PropagationMode mode) noexcept;

/// Apogee/perigee slack (km) applied to the SGP4 epoch elements when
/// bounding the satellite's geocentric distance and speed; absorbs
/// periodic perturbations and drag-induced drift over campaign spans.
inline constexpr double kCullRadialMarginKm = 50.0;

/// Multiplier on the two-body perigee speed bound; covers perturbations
/// that momentarily exceed the osculating-element estimate.
inline constexpr double kCullRateSafety = 1.06;

/// Angular pad (rad) subtracted from the effective mask before building
/// the horizon cone. ~2 arcsec: orders of magnitude above double
/// round-off in the cone/margin arithmetic and the <= 2e-6 rad effect of
/// coarse-grid float accumulation drift on skip windows, and orders of
/// magnitude below any real visibility geometry.
inline constexpr double kCullAngularPadRad = 1e-5;

/// The coarse scan grid: jd_start, then the exact float accumulation
/// predict_passes steps through (jd += step_days, clamped to jd_end),
/// built once and shared by every pair. Sharing the *identical* sample
/// times (not k * step reconstructions) is what keeps refinement
/// brackets — and therefore emitted windows — bit-identical to the
/// legacy scan.
class ScanGrid {
 public:
  ScanGrid(JulianDate jd_start, JulianDate jd_end, double coarse_step_s);

  /// Wrap explicitly provided sample times. `times` must be the
  /// continuation of an existing `jd += step_days` accumulation:
  /// RollingEphemeris uses this to extend a rolling grid chunk-by-chunk
  /// without re-anchoring the float accumulation (which would break
  /// bit-parity with a fresh full-span grid). Throws on empty times or
  /// nonpositive step.
  ScanGrid(std::vector<JulianDate> times, double coarse_step_s);

  [[nodiscard]] std::size_t size() const noexcept { return times_.size(); }
  [[nodiscard]] JulianDate time(std::size_t k) const { return times_[k]; }
  [[nodiscard]] JulianDate start() const noexcept { return start_; }
  [[nodiscard]] JulianDate end() const noexcept { return end_; }
  [[nodiscard]] double step_s() const noexcept { return step_s_; }
  [[nodiscard]] double step_days() const noexcept { return step_days_; }

 private:
  std::vector<JulianDate> times_;
  JulianDate start_, end_;
  double step_s_, step_days_;
};

/// Per-satellite ECEF positions over one chunk of the scan grid, shared
/// across every observer. GMST is evaluated once per sample and reused
/// for all satellites; positions are bit-identical to what
/// teme_to_ecef_state produces inside ElevationSampler at the same jd.
/// Chunked so a 39-satellite x 30-day x 30-s campaign never materializes
/// the full table (~100+ MB) at once.
class EphemerisTable {
 public:
  /// `satellites` and `grid` must outlive the table. In kFast mode the
  /// table transposes the propagators into an Sgp4Batch and fills rows
  /// four satellites per lane group; lanes the batch flags as
  /// non-physical are re-run through the scalar propagator, which either
  /// surfaces the same typed PropagationError the reference path would
  /// have thrown or (near-threshold disagreement) supplies the scalar
  /// result and counts a fallback.
  EphemerisTable(const std::vector<const Sgp4*>& satellites,
                 const ScanGrid& grid,
                 PropagationMode mode = PropagationMode::kReference);

  /// (Re)fill the table for grid samples [first, first + count).
  /// `row_start`, when non-null, gives per-satellite first needed sample
  /// (absolute index, clamped to the chunk): rows are only propagated
  /// from there on, and satellites whose row_start is past the chunk are
  /// skipped entirely. `pool` non-null fans rows out across it.
  void build(std::size_t first, std::size_t count, sim::ThreadPool* pool,
             const std::vector<std::size_t>* row_start = nullptr);

  /// ECEF position of satellite `s` at absolute grid sample `k` (must be
  /// inside the built chunk, at or after the row's start).
  [[nodiscard]] const Vec3& position_ecef_km(std::size_t s,
                                             std::size_t k) const {
    return positions_[s * built_count_ + (k - built_first_)];
  }
  /// Geocentric distance |position| (km) at the same sample.
  [[nodiscard]] double distance_km(std::size_t s, std::size_t k) const {
    return distances_[s * built_count_ + (k - built_first_)];
  }

  /// Total SGP4 propagations performed across all build() calls.
  [[nodiscard]] std::uint64_t propagations() const noexcept {
    return propagations_;
  }

  [[nodiscard]] PropagationMode mode() const noexcept { return mode_; }
  /// Real (non-pad) satellite-samples produced by the SIMD batch kernel
  /// across all build() calls. Zero in kReference mode.
  [[nodiscard]] std::uint64_t simd_lanes_filled() const noexcept {
    return simd_lanes_filled_;
  }
  /// kFast lanes that were re-evaluated by the scalar propagator because
  /// the batch kernel flagged them non-physical.
  [[nodiscard]] std::uint64_t simd_scalar_fallbacks() const noexcept {
    return simd_scalar_fallbacks_.load(std::memory_order_relaxed);
  }

 private:
  const std::vector<const Sgp4*>* satellites_;
  const ScanGrid* grid_;
  PropagationMode mode_;
  std::unique_ptr<Sgp4Batch> batch_;  // kFast only
  std::vector<double> gmst_;        // per chunk sample
  std::vector<Vec3> positions_;     // [sat][chunk sample]
  std::vector<double> distances_;   // [sat][chunk sample]
  std::size_t built_first_ = 0;
  std::size_t built_count_ = 0;
  std::uint64_t propagations_ = 0;
  std::uint64_t simd_lanes_filled_ = 0;
  std::atomic<std::uint64_t> simd_scalar_fallbacks_{0};
};

/// Span-wide conservative bounds on one satellite's geometry, derived
/// from its SGP4 epoch elements. `valid == false` (hyperbolic/degenerate
/// elements) disables culling for that satellite — the scan falls back
/// to exact evaluation everywhere, which is always correct.
struct SatelliteCullBounds {
  bool valid = false;
  double max_distance_km = 0.0;       ///< apogee + kCullRadialMarginKm
  double max_angular_rate_rad_s = 0.0;  ///< geocentric, Earth-fixed frame
};
[[nodiscard]] SatelliteCullBounds satellite_cull_bounds(const Sgp4& prop);

/// Observer-fixed quantities of the culling test: geocentric direction,
/// geocentric radius, and the angle between the geodetic vertical (which
/// defines elevation) and the geocentric one (which the cone test uses).
struct ObserverCullGeometry {
  Vec3 unit_ecef;
  double radius_km = 0.0;
  double vertical_deflection_rad = 0.0;
};
[[nodiscard]] ObserverCullGeometry observer_cull_geometry(
    const Geodetic& observer);

/// Half-angle (rad) of the geocentric cone around the observer outside of
/// which a satellite no farther than `max_distance_km` is provably below
/// `mask_deg`. Returns pi when culling cannot help (degenerate inputs or
/// a mask so low that the cone covers the whole sphere) — gamma can never
/// exceed pi, so a pi cone simply never culls.
[[nodiscard]] double horizon_cone_half_angle_rad(
    const ObserverCullGeometry& observer, double max_distance_km,
    double mask_deg);

/// One (satellite, observer) pair to scan, as indices into the engine's
/// satellite and observer arrays.
struct PairTask {
  std::size_t satellite = 0;
  std::size_t observer = 0;
};

struct EphemerisScanOptions {
  bool cull = true;                  ///< false = share ephemeris only
  std::size_t chunk_samples = 4096;  ///< grid samples per table chunk
  /// Evaluation mode; the default member initializer reads the
  /// process-wide propagation_mode() at the moment the options object is
  /// constructed (so `{}` call sites follow the CLI/env selection).
  PropagationMode mode = propagation_mode();
};

/// Run the shared-ephemeris scan for every pair; windows come back in
/// pair order. In PropagationMode::kReference (the default) they are
/// bit-identical to predict_passes per pair; kFast trades that for speed
/// within the documented tolerance. Observers with a NaN mask use
/// opts.min_elevation_deg (see GridObserver). `threads` follows
/// predict_passes_batch semantics.
[[nodiscard]] std::vector<std::vector<ContactWindow>> scan_pass_pairs(
    const std::vector<const Sgp4*>& satellites,
    const std::vector<GridObserver>& observers,
    const std::vector<PairTask>& pairs, JulianDate jd_start,
    JulianDate jd_end, const PassPredictionOptions& opts = {},
    const EphemerisScanOptions& scan_opts = {}, unsigned threads = 0,
    obs::MetricsRegistry* metrics = nullptr);

/// Rolling-horizon shared-ephemeris store for the resident query service
/// (src/svc, `sinet serve`): per-satellite ECEF states over a window
/// [start_time(), end_time()] that advances incrementally. advance()
/// appends fixed-size grid chunks at the leading edge and retires wholly
/// expired chunks at the trailing edge — the retained span is never
/// rescanned. Appended chunks continue the exact `jd += step_days` float
/// accumulation from the last retained sample, so the retained grid
/// times are bitwise what a fresh ScanGrid over the same span would
/// produce, and scan_satellite windows are bit-identical to
/// scan_pass_pairs — and therefore predict_passes — over
/// [start_time(), end_time()] in kReference mode (parity test:
/// test_ephemeris.cpp). Not internally synchronized: the service layer
/// serializes advance() against queries (svc::PassService uses a
/// shared_mutex — many concurrent scans, exclusive advance).
class RollingEphemeris {
 public:
  struct Options {
    double coarse_step_s = 30.0;       ///< grid step; queries must match
    std::size_t chunk_samples = 2048;  ///< grid samples per appended chunk
    bool cull = true;                  ///< conservative geometric culling
    /// Evaluation mode (same contract as EphemerisScanOptions::mode).
    PropagationMode mode = propagation_mode();
  };
  struct AdvanceStats {
    std::size_t chunks_appended = 0;
    std::size_t chunks_retired = 0;
    std::uint64_t propagations = 0;
  };

  /// `satellites` are borrowed and must outlive the engine. The horizon
  /// starts empty at `anchor_jd`; call advance() to populate it. (Two
  /// overloads instead of `opts = {}` — a nested-class default argument
  /// cannot use Options' default member initializers before the
  /// enclosing class is complete.)
  RollingEphemeris(std::vector<const Sgp4*> satellites, JulianDate anchor_jd);
  RollingEphemeris(std::vector<const Sgp4*> satellites, JulianDate anchor_jd,
                   const Options& opts);
  ~RollingEphemeris();
  RollingEphemeris(const RollingEphemeris&) = delete;
  RollingEphemeris& operator=(const RollingEphemeris&) = delete;

  /// Extend the leading edge chunk-by-chunk until end_time() covers
  /// `cover_until`, then retire leading chunks no longer needed to cover
  /// `retire_before` (the chunk containing retire_before is always kept,
  /// so queries at "now" stay answerable). `pool` non-null fans the
  /// per-satellite fills out across it.
  AdvanceStats advance(JulianDate retire_before, JulianDate cover_until,
                       sim::ThreadPool* pool = nullptr);

  [[nodiscard]] bool empty() const noexcept { return chunks_.empty(); }
  [[nodiscard]] JulianDate anchor() const noexcept { return anchor_jd_; }
  /// First / last retained sample time. Throw when the horizon is empty.
  [[nodiscard]] JulianDate start_time() const;
  [[nodiscard]] JulianDate end_time() const;
  [[nodiscard]] std::size_t satellite_count() const noexcept {
    return satellites_.size();
  }
  [[nodiscard]] const Sgp4& satellite(std::size_t s) const {
    return *satellites_[s];
  }
  [[nodiscard]] std::size_t chunk_count() const noexcept {
    return chunks_.size();
  }
  /// Retained samples = end_index() - base_index().
  [[nodiscard]] std::size_t sample_count() const noexcept {
    return next_index_ - base_index();
  }
  /// Absolute retained-sample index range [base_index(), end_index()).
  /// Indices are absolute since the anchor — they stay stable across
  /// retirement, which is what keeps cull skip-ahead clamps identical to
  /// a fresh scan's.
  [[nodiscard]] std::size_t base_index() const noexcept;
  [[nodiscard]] std::size_t end_index() const noexcept { return next_index_; }
  /// Grid time / satellite ECEF position / geocentric distance at
  /// absolute retained sample `k`; throw std::out_of_range outside
  /// [base_index(), end_index()).
  [[nodiscard]] JulianDate sample_time(std::size_t k) const;
  [[nodiscard]] const Vec3& sample_position_ecef_km(std::size_t s,
                                                    std::size_t k) const;
  [[nodiscard]] double sample_distance_km(std::size_t s, std::size_t k) const;
  /// Retained sample nearest `jd` (clamped to the horizon; nearest up to
  /// the sub-microsecond float-accumulation drift of the grid).
  [[nodiscard]] std::size_t nearest_index(JulianDate jd) const;

  /// SGP4 propagations performed across all advances (retirement frees
  /// memory but never un-counts work).
  [[nodiscard]] std::uint64_t propagations() const noexcept {
    return propagations_;
  }
  /// Approximate bytes held by the retained grid + ephemeris tables.
  [[nodiscard]] std::size_t resident_bytes() const noexcept;

  /// Scan one satellite against one observer over the whole retained
  /// horizon. kReference windows are bit-identical to predict_passes over
  /// [start_time(), end_time()]. A NaN observer mask falls back to
  /// opts.min_elevation_deg. Throws std::invalid_argument when
  /// opts.coarse_step_s differs from the rolling grid step (a silently
  /// different grid would break the parity contract), std::logic_error
  /// on an empty horizon.
  [[nodiscard]] std::vector<ContactWindow> scan_satellite(
      std::size_t satellite, const GridObserver& observer,
      const PassPredictionOptions& opts) const;
  /// All satellites against one observer; result indexed by satellite.
  [[nodiscard]] std::vector<std::vector<ContactWindow>> scan_observer(
      const GridObserver& observer, const PassPredictionOptions& opts) const;

 private:
  struct Chunk;

  void append_chunk(sim::ThreadPool* pool, AdvanceStats* stats);
  [[nodiscard]] const Chunk& chunk_for(std::size_t k) const;

  std::vector<const Sgp4*> satellites_;
  Options opts_;
  JulianDate anchor_jd_;
  double step_days_;
  std::vector<SatelliteCullBounds> bounds_;
  std::deque<std::unique_ptr<Chunk>> chunks_;
  std::size_t base_chunk_ = 0;  ///< absolute chunk number of chunks_[0]
  std::size_t next_index_ = 0;  ///< absolute sample index of the next append
  JulianDate last_time_ = 0.0;  ///< last appended sample time
  std::uint64_t propagations_ = 0;
};

}  // namespace sinet::orbit
