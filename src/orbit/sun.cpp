#include "orbit/sun.h"

#include <cmath>
#include <stdexcept>

#include "orbit/sgp4.h"
#include "orbit/tle.h"

namespace sinet::orbit {

Vec3 sun_direction_teme(JulianDate jd) {
  // Low-precision solar position (Vallado Algorithm 29 / Meeus).
  const double t = (jd - kJdJ2000) / 36525.0;
  const double mean_lon_deg = 280.460 + 36000.771 * t;
  const double mean_anom_deg = 357.5291092 + 35999.05034 * t;
  const double m = wrap_two_pi(mean_anom_deg * kDegToRad);
  const double ecliptic_lon_deg =
      mean_lon_deg + 1.914666471 * std::sin(m) +
      0.019994643 * std::sin(2.0 * m);
  const double lambda = wrap_two_pi(ecliptic_lon_deg * kDegToRad);
  const double obliquity = (23.439291 - 0.0130042 * t) * kDegToRad;
  // Unit vector (mean equator & equinox of date ~ TEME for our purposes).
  return Vec3{std::cos(lambda),
              std::cos(obliquity) * std::sin(lambda),
              std::sin(obliquity) * std::sin(lambda)};
}

bool in_earth_shadow(const Vec3& r_sat_km, JulianDate jd) {
  const Vec3 s = sun_direction_teme(jd);
  const double along = r_sat_km.dot(s);
  if (along >= 0.0) return false;  // sunlit side of the planet
  const Vec3 perp = r_sat_km - s * along;
  return perp.norm() < kEarthRadiusKm;
}

double eclipse_fraction(const Sgp4& prop, JulianDate jd_start,
                        JulianDate jd_end, double step_s) {
  if (step_s <= 0.0)
    throw std::invalid_argument("eclipse_fraction: nonpositive step");
  if (jd_end <= jd_start)
    throw std::invalid_argument("eclipse_fraction: empty interval");
  std::size_t total = 0, shadowed = 0;
  const double step_days = step_s / kSecondsPerDay;
  for (JulianDate jd = jd_start; jd <= jd_end; jd += step_days) {
    ++total;
    if (in_earth_shadow(prop.at_jd(jd).position_km, jd)) ++shadowed;
  }
  return static_cast<double>(shadowed) / static_cast<double>(total);
}

}  // namespace sinet::orbit
