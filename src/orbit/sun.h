// Low-precision solar ephemeris and Earth-shadow (eclipse) test.
//
// Power-starved nanosats commonly disable their payload in eclipse; the
// paper lists "satellite resource constraints" among the suspected DtS
// loss causes (Appendix C / Sec 5). This module lets experiments gate
// beacon activity on sunlight.
#pragma once

#include "orbit/time.h"
#include "orbit/vec3.h"

namespace sinet::orbit {

/// Unit vector from Earth's center toward the Sun in the TEME/mean-
/// equator frame at `jd` (low-precision ephemeris, good to ~0.01 deg —
/// far more than eclipse geometry needs).
[[nodiscard]] Vec3 sun_direction_teme(JulianDate jd);

/// True when a satellite at TEME position `r_sat_km` is inside Earth's
/// shadow (cylindrical umbra model).
[[nodiscard]] bool in_earth_shadow(const Vec3& r_sat_km, JulianDate jd);

/// Fraction of the interval [jd_start, jd_end] a satellite spends in
/// shadow, sampled every `step_s` seconds. For LEO this is ~30-40% near
/// equinox for most orbits, ~0% for dawn-dusk sun-synchronous orbits.
class Sgp4;  // forward declaration
[[nodiscard]] double eclipse_fraction(const Sgp4& prop, JulianDate jd_start,
                                      JulianDate jd_end,
                                      double step_s = 60.0);

}  // namespace sinet::orbit
