// Ground tracks: the subsatellite path of an orbiting satellite, used
// for coverage visualization and latitude-coverage analysis.
#pragma once

#include <vector>

#include "orbit/geodetic.h"
#include "orbit/sgp4.h"

namespace sinet::orbit {

struct GroundTrackPoint {
  JulianDate jd = 0.0;
  Geodetic subsatellite;  ///< latitude/longitude/altitude of the nadir
  double speed_km_s = 0.0;  ///< inertial speed at the sample
};

/// Sample the subsatellite track every `step_s` seconds (inclusive start,
/// last sample at or before jd_end). Throws std::invalid_argument for a
/// nonpositive step or reversed interval.
[[nodiscard]] std::vector<GroundTrackPoint> ground_track(const Sgp4& prop,
                                                         JulianDate jd_start,
                                                         JulianDate jd_end,
                                                         double step_s = 30.0);

/// Highest |latitude| reached by the track — equals the orbital
/// inclination for prograde orbits (180 - i for retrograde).
[[nodiscard]] double max_track_latitude_deg(
    const std::vector<GroundTrackPoint>& track);

/// Westward drift of the ascending-node longitude per orbit (degrees),
/// estimated from successive northbound equator crossings. Returns 0 if
/// the track contains fewer than two crossings.
[[nodiscard]] double nodal_drift_deg_per_orbit(
    const std::vector<GroundTrackPoint>& track);

}  // namespace sinet::orbit
