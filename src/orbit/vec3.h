// Minimal 3-vector used by the orbital mechanics code.
#pragma once

#include <cmath>

namespace sinet::orbit {

struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr Vec3 operator+(const Vec3& o) const noexcept {
    return {x + o.x, y + o.y, z + o.z};
  }
  constexpr Vec3 operator-(const Vec3& o) const noexcept {
    return {x - o.x, y - o.y, z - o.z};
  }
  constexpr Vec3 operator*(double s) const noexcept {
    return {x * s, y * s, z * s};
  }
  constexpr Vec3 operator/(double s) const noexcept {
    return {x / s, y / s, z / s};
  }
  constexpr Vec3 operator-() const noexcept { return {-x, -y, -z}; }

  [[nodiscard]] constexpr double dot(const Vec3& o) const noexcept {
    return x * o.x + y * o.y + z * o.z;
  }
  [[nodiscard]] constexpr Vec3 cross(const Vec3& o) const noexcept {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }
  [[nodiscard]] double norm() const noexcept { return std::sqrt(dot(*this)); }
  [[nodiscard]] Vec3 normalized() const noexcept {
    const double n = norm();
    return n > 0.0 ? *this / n : Vec3{};
  }
};

constexpr Vec3 operator*(double s, const Vec3& v) noexcept { return v * s; }

}  // namespace sinet::orbit
