#include "orbit/passes.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "obs/metrics.h"
#include "obs/scoped_timer.h"
#include "orbit/frames.h"
#include "sim/thread_pool.h"

namespace sinet::orbit {

double ElevationSampler::elevation_deg(JulianDate jd) const {
  const TemeState st = prop_->at_jd(jd);
  const EcefState ecef =
      teme_to_ecef_state(st.position_km, st.velocity_km_s, jd);
  return look_angles(frame_, ecef.position_km, ecef.velocity_km_s)
      .elevation_deg;
}

PassSample ElevationSampler::sample(JulianDate jd) const {
  const TemeState st = prop_->at_jd(jd);
  const EcefState ecef =
      teme_to_ecef_state(st.position_km, st.velocity_km_s, jd);
  PassSample s;
  s.jd = jd;
  s.look = look_angles(frame_, ecef.position_km, ecef.velocity_km_s);
  s.subsatellite_point = ecef_to_geodetic(ecef.position_km);
  return s;
}

namespace {

/// Bisect for the elevation-mask crossing between jd_lo (below/above) and
/// jd_hi with opposite visibility state.
JulianDate refine_crossing(const ElevationSampler& sampler, JulianDate jd_lo,
                           JulianDate jd_hi, double mask_deg, double tol_s) {
  const bool lo_vis = sampler.elevation_deg(jd_lo) >= mask_deg;
  for (int i = 0; i < 64; ++i) {
    if ((jd_hi - jd_lo) * kSecondsPerDay <= tol_s) break;
    const JulianDate mid = 0.5 * (jd_lo + jd_hi);
    const bool mid_vis = sampler.elevation_deg(mid) >= mask_deg;
    if (mid_vis == lo_vis)
      jd_lo = mid;
    else
      jd_hi = mid;
  }
  return 0.5 * (jd_lo + jd_hi);
}

/// Golden-section search for max elevation inside [a, b].
std::pair<JulianDate, double> refine_peak(const ElevationSampler& sampler,
                                          JulianDate a, JulianDate b) {
  constexpr double kInvPhi = 0.6180339887498949;
  JulianDate x1 = b - kInvPhi * (b - a);
  JulianDate x2 = a + kInvPhi * (b - a);
  double f1 = sampler.elevation_deg(x1);
  double f2 = sampler.elevation_deg(x2);
  for (int i = 0; i < 48 && (b - a) * kSecondsPerDay > 0.5; ++i) {
    if (f1 < f2) {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + kInvPhi * (b - a);
      f2 = sampler.elevation_deg(x2);
    } else {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - kInvPhi * (b - a);
      f1 = sampler.elevation_deg(x1);
    }
  }
  const JulianDate peak = 0.5 * (a + b);
  return {peak, sampler.elevation_deg(peak)};
}

}  // namespace

PassSample sample_geometry(const Sgp4& prop, const Geodetic& observer,
                           JulianDate jd) {
  return ElevationSampler(prop, observer).sample(jd);
}

std::vector<ContactWindow> predict_passes(const Sgp4& prop,
                                          const Geodetic& observer,
                                          JulianDate jd_start,
                                          JulianDate jd_end,
                                          const PassPredictionOptions& opts) {
  if (jd_end < jd_start)
    throw std::invalid_argument("predict_passes: jd_end < jd_start");
  if (opts.coarse_step_s <= 0.0)
    throw std::invalid_argument("predict_passes: nonpositive step");

  const ElevationSampler sampler(prop, observer);
  std::vector<ContactWindow> out;
  const double step_days = opts.coarse_step_s / kSecondsPerDay;

  bool prev_vis = sampler.elevation_deg(jd_start) >= opts.min_elevation_deg;
  JulianDate window_start = prev_vis ? jd_start : 0.0;

  for (JulianDate jd = jd_start + step_days;; jd += step_days) {
    const JulianDate t = std::min(jd, jd_end);
    const bool vis = sampler.elevation_deg(t) >= opts.min_elevation_deg;
    if (vis && !prev_vis) {
      window_start = refine_crossing(sampler, t - step_days, t,
                                     opts.min_elevation_deg,
                                     opts.refine_tolerance_s);
    } else if (!vis && prev_vis) {
      const JulianDate window_end =
          refine_crossing(sampler, t - step_days, t, opts.min_elevation_deg,
                          opts.refine_tolerance_s);
      ContactWindow w;
      w.aos_jd = window_start;
      w.los_jd = window_end;
      auto [tca, elev] = refine_peak(sampler, w.aos_jd, w.los_jd);
      w.tca_jd = tca;
      w.max_elevation_deg = elev;
      out.push_back(w);
    }
    prev_vis = vis;
    if (t >= jd_end) break;
  }
  if (prev_vis) {  // window still open at jd_end: truncate
    ContactWindow w;
    w.aos_jd = window_start;
    w.los_jd = jd_end;
    auto [tca, elev] = refine_peak(sampler, w.aos_jd, w.los_jd);
    w.tca_jd = tca;
    w.max_elevation_deg = elev;
    out.push_back(w);
  }
  return out;
}

std::vector<std::vector<ContactWindow>> predict_passes_batch(
    const std::vector<PassBatchRequest>& requests, JulianDate jd_start,
    JulianDate jd_end, const PassPredictionOptions& opts, unsigned threads,
    obs::MetricsRegistry* metrics) {
  // Validate once up front so failures are thrown deterministically
  // before any task is spawned.
  if (jd_end < jd_start)
    throw std::invalid_argument("predict_passes_batch: jd_end < jd_start");
  if (opts.coarse_step_s <= 0.0)
    throw std::invalid_argument("predict_passes_batch: nonpositive step");
  for (const PassBatchRequest& req : requests)
    if (req.propagator == nullptr)
      throw std::invalid_argument("predict_passes_batch: null propagator");

  obs::ScopedTimer timer(
      metrics == nullptr
          ? nullptr
          : &metrics->histogram("orbit.pass_batch.latency_ms", 0.0, 10000.0,
                                50));
  if (metrics != nullptr) {
    metrics->counter("orbit.pass_batch.calls").add(1);
    metrics->counter("orbit.pass_batch.requests").add(requests.size());
  }

  std::vector<std::vector<ContactWindow>> out(requests.size());
  const auto run_one = [&](std::size_t i) {
    out[i] = predict_passes(*requests[i].propagator, requests[i].observer,
                            jd_start, jd_end, opts);
  };

  if (threads == 1 || requests.size() <= 1) {
    // Exact legacy path: serial loop on the calling thread.
    for (std::size_t i = 0; i < requests.size(); ++i) run_one(i);
    return out;
  }

  sim::ThreadPool& shared = sim::ThreadPool::shared();
  if (threads == 0 || threads == shared.size()) {
    shared.parallel_for(requests.size(), run_one);
  } else {
    sim::ThreadPool local(threads);  // explicit worker count (benchmarks)
    local.parallel_for(requests.size(), run_one);
  }
  return out;
}

ContactWindowCache::Key ContactWindowCache::make_key(
    const Tle& tle, const Geodetic& observer, JulianDate jd_start,
    JulianDate jd_end, const PassPredictionOptions& opts) {
  return Key{tle.epoch_jd,
             tle.inclination_deg,
             tle.raan_deg,
             tle.eccentricity,
             tle.arg_perigee_deg,
             tle.mean_anomaly_deg,
             tle.mean_motion_rev_day,
             tle.bstar,
             observer.latitude_deg,
             observer.longitude_deg,
             observer.altitude_km,
             jd_start,
             jd_end,
             opts.min_elevation_deg,
             opts.coarse_step_s,
             opts.refine_tolerance_s};
}

std::vector<ContactWindow> ContactWindowCache::get_or_predict(
    const Tle& tle, const Geodetic& observer, JulianDate jd_start,
    JulianDate jd_end, const PassPredictionOptions& opts) {
  const Key key = make_key(tle, observer, jd_start, jd_end, opts);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++hits_;
      return it->second;
    }
    ++misses_;
  }
  // Compute outside the lock; a concurrent miss on the same key does the
  // same deterministic work and the second insert is a no-op.
  const Sgp4 prop(tle);
  std::vector<ContactWindow> windows =
      predict_passes(prop, observer, jd_start, jd_end, opts);
  insert(key, windows);
  return windows;
}

void ContactWindowCache::insert(const Key& key,
                                const std::vector<ContactWindow>& windows) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!entries_.emplace(key, windows).second) return;  // already present
  insertion_order_.push_back(key);
  while (entries_.size() > max_entries_ && !insertion_order_.empty()) {
    entries_.erase(insertion_order_.front());
    insertion_order_.pop_front();
  }
}

ContactWindowCache::Stats ContactWindowCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {hits_, misses_, entries_.size()};
}

void ContactWindowCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  insertion_order_.clear();
  hits_ = 0;
  misses_ = 0;
}

ContactWindowCache& ContactWindowCache::global() {
  static ContactWindowCache cache;
  return cache;
}

std::vector<std::vector<ContactWindow>> predict_passes_batch_cached(
    const std::vector<Tle>& tles, const Geodetic& observer,
    JulianDate jd_start, JulianDate jd_end, const PassPredictionOptions& opts,
    unsigned threads, ContactWindowCache* cache,
    obs::MetricsRegistry* metrics) {
  std::vector<std::vector<ContactWindow>> out(tles.size());

  // Probe the cache; remember which TLEs still need computing.
  std::vector<std::size_t> miss_indices;
  if (cache == nullptr) {
    miss_indices.resize(tles.size());
    for (std::size_t i = 0; i < tles.size(); ++i) miss_indices[i] = i;
  } else {
    std::lock_guard<std::mutex> lock(cache->mutex_);
    for (std::size_t i = 0; i < tles.size(); ++i) {
      const auto key =
          ContactWindowCache::make_key(tles[i], observer, jd_start, jd_end,
                                       opts);
      const auto it = cache->entries_.find(key);
      if (it != cache->entries_.end()) {
        ++cache->hits_;
        out[i] = it->second;
      } else {
        ++cache->misses_;
        miss_indices.push_back(i);
      }
    }
  }
  if (metrics != nullptr) {
    // Per-call deltas, so concurrent callers sharing the global cache
    // each account only for their own probes.
    metrics->counter("orbit.pass_cache.hits")
        .add(tles.size() - miss_indices.size());
    metrics->counter("orbit.pass_cache.misses").add(miss_indices.size());
    if (cache != nullptr)
      metrics->gauge("orbit.pass_cache.entries")
          .set(static_cast<double>(cache->stats().entries));
  }
  if (miss_indices.empty()) return out;

  // Batch-predict the misses; results land in input order.
  std::vector<Sgp4> props;
  props.reserve(miss_indices.size());
  for (const std::size_t i : miss_indices) props.emplace_back(tles[i]);
  std::vector<PassBatchRequest> requests(miss_indices.size());
  for (std::size_t m = 0; m < miss_indices.size(); ++m)
    requests[m] = PassBatchRequest{&props[m], observer};
  auto computed =
      predict_passes_batch(requests, jd_start, jd_end, opts, threads, metrics);

  for (std::size_t m = 0; m < miss_indices.size(); ++m) {
    const std::size_t i = miss_indices[m];
    if (cache != nullptr)
      cache->insert(ContactWindowCache::make_key(tles[i], observer, jd_start,
                                                 jd_end, opts),
                    computed[m]);
    out[i] = std::move(computed[m]);
  }
  if (metrics != nullptr && cache != nullptr)
    metrics->gauge("orbit.pass_cache.entries")
        .set(static_cast<double>(cache->stats().entries));
  return out;
}

std::vector<PassSample> sample_pass(const Sgp4& prop, const Geodetic& observer,
                                    const ContactWindow& window,
                                    double step_s) {
  if (step_s <= 0.0) throw std::invalid_argument("sample_pass: step <= 0");
  const ElevationSampler sampler(prop, observer);
  std::vector<PassSample> out;
  const double step_days = step_s / kSecondsPerDay;
  for (JulianDate jd = window.aos_jd; jd < window.los_jd; jd += step_days)
    out.push_back(sampler.sample(jd));
  // The terminal sample is pinned to LOS exactly. When the window
  // duration is an exact multiple of step_s the loop's last grid point
  // already sits at LOS (modulo float accumulation) — drop it instead of
  // emitting a duplicate terminal sample microseconds apart.
  const double dup_tol_days = std::min(1e-6, 0.5 * step_days);
  if (!out.empty() && window.los_jd - out.back().jd < dup_tol_days)
    out.pop_back();
  out.push_back(sampler.sample(window.los_jd));
  return out;
}

std::vector<ContactWindow> merge_windows(std::vector<ContactWindow> windows) {
  if (windows.empty()) return windows;
  std::sort(windows.begin(), windows.end(),
            [](const ContactWindow& a, const ContactWindow& b) {
              return a.aos_jd < b.aos_jd;
            });
  std::vector<ContactWindow> merged;
  merged.push_back(windows.front());
  for (std::size_t i = 1; i < windows.size(); ++i) {
    ContactWindow& last = merged.back();
    const ContactWindow& w = windows[i];
    if (w.aos_jd <= last.los_jd) {
      if (w.los_jd > last.los_jd) last.los_jd = w.los_jd;
      if (w.max_elevation_deg > last.max_elevation_deg) {
        last.max_elevation_deg = w.max_elevation_deg;
        last.tca_jd = w.tca_jd;
      }
    } else {
      merged.push_back(w);
    }
  }
  return merged;
}

double daily_visible_seconds(const std::vector<ContactWindow>& windows,
                             JulianDate jd_start, JulianDate jd_end) {
  if (jd_end <= jd_start)
    throw std::invalid_argument("daily_visible_seconds: empty span");
  const std::vector<ContactWindow> merged = merge_windows(windows);
  double total_s = 0.0;
  for (const ContactWindow& w : merged) {
    const JulianDate a = std::max(w.aos_jd, jd_start);
    const JulianDate b = std::min(w.los_jd, jd_end);
    if (b > a) total_s += (b - a) * kSecondsPerDay;
  }
  return total_s / (jd_end - jd_start);
}

std::vector<double> contact_gaps_s(const std::vector<ContactWindow>& windows) {
  const std::vector<ContactWindow> merged = merge_windows(windows);
  std::vector<double> gaps;
  for (std::size_t i = 1; i < merged.size(); ++i)
    gaps.push_back((merged[i].aos_jd - merged[i - 1].los_jd) *
                   kSecondsPerDay);
  return gaps;
}

}  // namespace sinet::orbit
