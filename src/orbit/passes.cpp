#include "orbit/passes.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <tuple>
#include <utility>

#include "obs/metrics.h"
#include "obs/scoped_timer.h"
#include "orbit/ephemeris.h"
#include "orbit/frames.h"
#include "sim/thread_pool.h"

namespace sinet::orbit {

double ElevationSampler::elevation_deg(JulianDate jd) const {
  const TemeState st = prop_->at_jd(jd);
  const EcefState ecef =
      teme_to_ecef_state(st.position_km, st.velocity_km_s, jd);
  // Shared definition with the ephemeris-table scan (see look_angles.h):
  // both paths agreeing bit-for-bit is what makes culled windows
  // bit-identical to the legacy scan.
  return elevation_from_ecef(frame_, ecef.position_km);
}

PassSample ElevationSampler::sample(JulianDate jd) const {
  const TemeState st = prop_->at_jd(jd);
  const EcefState ecef =
      teme_to_ecef_state(st.position_km, st.velocity_km_s, jd);
  PassSample s;
  s.jd = jd;
  s.look = look_angles(frame_, ecef.position_km, ecef.velocity_km_s);
  s.subsatellite_point = ecef_to_geodetic(ecef.position_km);
  return s;
}

JulianDate refine_mask_crossing(const ElevationSampler& sampler,
                                JulianDate jd_lo, JulianDate jd_hi,
                                double mask_deg, double tol_s) {
  const bool lo_vis = sampler.elevation_deg(jd_lo) >= mask_deg;
  for (int i = 0; i < 64; ++i) {
    if ((jd_hi - jd_lo) * kSecondsPerDay <= tol_s) break;
    const JulianDate mid = 0.5 * (jd_lo + jd_hi);
    const bool mid_vis = sampler.elevation_deg(mid) >= mask_deg;
    if (mid_vis == lo_vis)
      jd_lo = mid;
    else
      jd_hi = mid;
  }
  return 0.5 * (jd_lo + jd_hi);
}

std::pair<JulianDate, double> refine_max_elevation(
    const ElevationSampler& sampler, JulianDate a, JulianDate b) {
  constexpr double kInvPhi = 0.6180339887498949;
  JulianDate x1 = b - kInvPhi * (b - a);
  JulianDate x2 = a + kInvPhi * (b - a);
  double f1 = sampler.elevation_deg(x1);
  double f2 = sampler.elevation_deg(x2);
  for (int i = 0; i < 48 && (b - a) * kSecondsPerDay > 0.5; ++i) {
    if (f1 < f2) {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + kInvPhi * (b - a);
      f2 = sampler.elevation_deg(x2);
    } else {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - kInvPhi * (b - a);
      f1 = sampler.elevation_deg(x1);
    }
  }
  const JulianDate peak = 0.5 * (a + b);
  return {peak, sampler.elevation_deg(peak)};
}

PassSample sample_geometry(const Sgp4& prop, const Geodetic& observer,
                           JulianDate jd) {
  return ElevationSampler(prop, observer).sample(jd);
}

std::vector<ContactWindow> predict_passes(const Sgp4& prop,
                                          const Geodetic& observer,
                                          JulianDate jd_start,
                                          JulianDate jd_end,
                                          const PassPredictionOptions& opts) {
  if (jd_end < jd_start)
    throw std::invalid_argument("predict_passes: jd_end < jd_start");
  if (opts.coarse_step_s <= 0.0)
    throw std::invalid_argument("predict_passes: nonpositive step");

  const ElevationSampler sampler(prop, observer);
  std::vector<ContactWindow> out;
  const double step_days = opts.coarse_step_s / kSecondsPerDay;

  bool prev_vis = sampler.elevation_deg(jd_start) >= opts.min_elevation_deg;
  JulianDate window_start = prev_vis ? jd_start : 0.0;

  for (JulianDate jd = jd_start + step_days;; jd += step_days) {
    const JulianDate t = std::min(jd, jd_end);
    const bool vis = sampler.elevation_deg(t) >= opts.min_elevation_deg;
    if (vis && !prev_vis) {
      window_start = refine_mask_crossing(sampler, t - step_days, t,
                                     opts.min_elevation_deg,
                                     opts.refine_tolerance_s);
    } else if (!vis && prev_vis) {
      const JulianDate window_end =
          refine_mask_crossing(sampler, t - step_days, t, opts.min_elevation_deg,
                          opts.refine_tolerance_s);
      ContactWindow w;
      w.aos_jd = window_start;
      w.los_jd = window_end;
      auto [tca, elev] = refine_max_elevation(sampler, w.aos_jd, w.los_jd);
      w.tca_jd = tca;
      w.max_elevation_deg = elev;
      out.push_back(w);
    }
    prev_vis = vis;
    if (t >= jd_end) break;
  }
  if (prev_vis) {  // window still open at jd_end: truncate
    ContactWindow w;
    w.aos_jd = window_start;
    w.los_jd = jd_end;
    auto [tca, elev] = refine_max_elevation(sampler, w.aos_jd, w.los_jd);
    w.tca_jd = tca;
    w.max_elevation_deg = elev;
    out.push_back(w);
  }
  return out;
}

std::vector<std::vector<ContactWindow>> predict_passes_batch(
    const std::vector<PassBatchRequest>& requests, JulianDate jd_start,
    JulianDate jd_end, const PassPredictionOptions& opts, unsigned threads,
    obs::MetricsRegistry* metrics) {
  // Validate once up front so failures are thrown deterministically
  // before any task is spawned.
  if (jd_end < jd_start)
    throw std::invalid_argument("predict_passes_batch: jd_end < jd_start");
  if (opts.coarse_step_s <= 0.0)
    throw std::invalid_argument("predict_passes_batch: nonpositive step");
  for (const PassBatchRequest& req : requests)
    if (req.propagator == nullptr)
      throw std::invalid_argument("predict_passes_batch: null propagator");

  obs::ScopedTimer timer(
      metrics == nullptr
          ? nullptr
          : &metrics->histogram("orbit.pass_batch.latency_ms", 0.0, 10000.0,
                                50));
  if (metrics != nullptr) {
    metrics->counter("orbit.pass_batch.calls").add(1);
    metrics->counter("orbit.pass_batch.requests").add(requests.size());
  }

  // Deduplicate propagators and observers so the engine shares ephemeris
  // rows between requests naming the same satellite and topocentric
  // frames between requests naming the same site.
  std::vector<const Sgp4*> satellites;
  std::map<const Sgp4*, std::size_t> satellite_index;
  std::vector<GridObserver> observers;
  std::map<std::tuple<double, double, double>, std::size_t> observer_index;
  std::vector<PairTask> pairs;
  pairs.reserve(requests.size());
  for (const PassBatchRequest& req : requests) {
    const auto [sit, s_new] =
        satellite_index.try_emplace(req.propagator, satellites.size());
    if (s_new) satellites.push_back(req.propagator);
    const auto [oit, o_new] = observer_index.try_emplace(
        std::tuple{req.observer.latitude_deg, req.observer.longitude_deg,
                   req.observer.altitude_km},
        observers.size());
    if (o_new) observers.push_back(GridObserver{req.observer});
    pairs.push_back(PairTask{sit->second, oit->second});
  }
  return scan_pass_pairs(satellites, observers, pairs, jd_start, jd_end,
                         opts, {}, threads, metrics);
}

std::vector<std::vector<std::vector<ContactWindow>>> predict_passes_grid(
    const std::vector<const Sgp4*>& satellites,
    const std::vector<GridObserver>& observers, JulianDate jd_start,
    JulianDate jd_end, const PassPredictionOptions& opts, unsigned threads,
    obs::MetricsRegistry* metrics) {
  std::vector<PairTask> pairs;
  pairs.reserve(satellites.size() * observers.size());
  for (std::size_t s = 0; s < satellites.size(); ++s)
    for (std::size_t o = 0; o < observers.size(); ++o)
      pairs.push_back(PairTask{s, o});
  auto flat = scan_pass_pairs(satellites, observers, pairs, jd_start, jd_end,
                              opts, {}, threads, metrics);
  std::vector<std::vector<std::vector<ContactWindow>>> out(satellites.size());
  std::size_t next = 0;
  for (std::size_t s = 0; s < satellites.size(); ++s) {
    out[s].resize(observers.size());
    for (std::size_t o = 0; o < observers.size(); ++o)
      out[s][o] = std::move(flat[next++]);
  }
  return out;
}

ContactWindowCache::Key ContactWindowCache::make_key(
    const Tle& tle, const Geodetic& observer, JulianDate jd_start,
    JulianDate jd_end, const PassPredictionOptions& opts, double mode_slot) {
  return Key{tle.epoch_jd,
             tle.inclination_deg,
             tle.raan_deg,
             tle.eccentricity,
             tle.arg_perigee_deg,
             tle.mean_anomaly_deg,
             tle.mean_motion_rev_day,
             tle.bstar,
             observer.latitude_deg,
             observer.longitude_deg,
             observer.altitude_km,
             jd_start,
             jd_end,
             opts.min_elevation_deg,
             opts.coarse_step_s,
             opts.refine_tolerance_s,
             mode_slot};
}

std::vector<ContactWindow> ContactWindowCache::get_or_predict(
    const Tle& tle, const Geodetic& observer, JulianDate jd_start,
    JulianDate jd_end, const PassPredictionOptions& opts) {
  // predict_passes() always runs the scalar reference propagator, so
  // this path keys (and stays mutually visible) with kReference.
  return get_or_compute(tle, observer, jd_start, jd_end, opts,
                        PropagationMode::kReference, [&] {
                          const Sgp4 prop(tle);
                          return predict_passes(prop, observer, jd_start,
                                                jd_end, opts);
                        });
}

std::vector<ContactWindow> ContactWindowCache::get_or_compute(
    const Tle& tle, const Geodetic& observer, JulianDate jd_start,
    JulianDate jd_end, const PassPredictionOptions& opts,
    PropagationMode mode_slot,
    const std::function<std::vector<ContactWindow>()>& compute) {
  const Key key =
      make_key(tle, observer, jd_start, jd_end, opts,
               static_cast<double>(static_cast<int>(mode_slot)));
  std::shared_ptr<InFlight> flight;
  bool owner = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++hits_;
      touch(it);
      return it->second.windows;
    }
    const auto in = inflight_.find(key);
    if (in != inflight_.end()) {
      // Another caller is already computing this key; wait for it
      // instead of duplicating the work. Counts as a hit: the windows
      // come from someone else's computation.
      ++hits_;
      flight = in->second;
    } else {
      ++misses_;
      flight = std::make_shared<InFlight>();
      inflight_.emplace(key, flight);
      owner = true;
    }
  }

  if (!owner) {
    std::unique_lock<std::mutex> lock(flight->m);
    flight->cv.wait(lock, [&] { return flight->done; });
    if (flight->error) std::rethrow_exception(flight->error);
    return flight->windows;
  }

  std::vector<ContactWindow> windows;
  try {
    windows = compute();
  } catch (...) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      inflight_.erase(key);
    }
    {
      std::lock_guard<std::mutex> lock(flight->m);
      flight->error = std::current_exception();
      flight->done = true;
    }
    flight->cv.notify_all();
    throw;
  }
  insert(key, windows);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    inflight_.erase(key);
  }
  {
    std::lock_guard<std::mutex> lock(flight->m);
    flight->windows = windows;
    flight->done = true;
  }
  flight->cv.notify_all();
  return windows;
}

void ContactWindowCache::touch(std::map<Key, Entry>::iterator it) {
  recency_.splice(recency_.end(), recency_, it->second.recency);
}

void ContactWindowCache::insert(const Key& key,
                                const std::vector<ContactWindow>& windows) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto [it, inserted] = entries_.try_emplace(key);
  if (!inserted) return;  // already present
  it->second.windows = windows;
  recency_.push_back(key);
  it->second.recency = std::prev(recency_.end());
  it->second.bytes = kEntryOverheadBytes +
                     it->second.windows.capacity() * sizeof(ContactWindow);
  bytes_ += it->second.bytes;
  evict_over_budget();
}

void ContactWindowCache::evict_over_budget() {
  while (!recency_.empty() &&
         (entries_.size() > max_entries_ ||
          (max_bytes_ != 0 && bytes_ > max_bytes_ && entries_.size() > 1))) {
    const auto victim = entries_.find(recency_.front());
    bytes_ -= victim->second.bytes;
    entries_.erase(victim);
    recency_.pop_front();
  }
}

ContactWindowCache::Stats ContactWindowCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {hits_, misses_, entries_.size(), bytes_};
}

void ContactWindowCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  recency_.clear();
  bytes_ = 0;
  hits_ = 0;
  misses_ = 0;
}

ContactWindowCache& ContactWindowCache::global() {
  static ContactWindowCache cache;
  return cache;
}

std::vector<std::vector<std::vector<ContactWindow>>>
predict_passes_grid_cached(const std::vector<Tle>& tles,
                           const std::vector<GridObserver>& observers,
                           JulianDate jd_start, JulianDate jd_end,
                           const PassPredictionOptions& opts,
                           unsigned threads, ContactWindowCache* cache,
                           obs::MetricsRegistry* metrics) {
  std::vector<std::vector<std::vector<ContactWindow>>> out(tles.size());
  for (auto& per_sat : out) per_sat.resize(observers.size());

  // Resolve the propagation mode once so the probe keys, the engine scan,
  // and the insert keys all agree even if another thread flips the global
  // mid-call. Fast-mode results never alias reference-mode entries.
  EphemerisScanOptions scan_opts;
  const double mode_slot =
      static_cast<double>(static_cast<int>(scan_opts.mode));

  // Cache keys carry the observer's *effective* mask so they are the
  // same keys get_or_predict / batch_cached would use for that pair.
  const auto effective_opts = [&](std::size_t o) {
    PassPredictionOptions eff = opts;
    if (!std::isnan(observers[o].min_elevation_deg))
      eff.min_elevation_deg = observers[o].min_elevation_deg;
    return eff;
  };

  // Probe the cache; remember which (satellite, observer) pairs still
  // need computing.
  std::vector<PairTask> miss_pairs;
  std::uint64_t probe_hits = 0;
  if (cache == nullptr) {
    for (std::size_t s = 0; s < tles.size(); ++s)
      for (std::size_t o = 0; o < observers.size(); ++o)
        miss_pairs.push_back(PairTask{s, o});
  } else {
    std::lock_guard<std::mutex> lock(cache->mutex_);
    for (std::size_t s = 0; s < tles.size(); ++s) {
      for (std::size_t o = 0; o < observers.size(); ++o) {
        const auto key = ContactWindowCache::make_key(
            tles[s], observers[o].location, jd_start, jd_end,
            effective_opts(o), mode_slot);
        const auto it = cache->entries_.find(key);
        if (it != cache->entries_.end()) {
          ++cache->hits_;
          ++probe_hits;
          cache->touch(it);  // LRU: a hit refreshes recency
          out[s][o] = it->second.windows;
        } else {
          ++cache->misses_;
          miss_pairs.push_back(PairTask{s, o});
        }
      }
    }
  }
  if (metrics != nullptr) {
    // Per-call deltas, so concurrent callers sharing the global cache
    // each account only for their own probes.
    metrics->counter("orbit.pass_cache.hits").add(probe_hits);
    metrics->counter("orbit.pass_cache.misses").add(miss_pairs.size());
  }

  if (!miss_pairs.empty()) {
    // One engine scan for every miss: satellites propagate once per step
    // regardless of how many observers missed against them.
    std::vector<std::size_t> sat_row(tles.size(),
                                     std::numeric_limits<std::size_t>::max());
    std::vector<Sgp4> props;
    std::vector<const Sgp4*> satellites;
    for (const PairTask& p : miss_pairs)
      if (sat_row[p.satellite] == std::numeric_limits<std::size_t>::max()) {
        sat_row[p.satellite] = props.size();
        props.emplace_back(tles[p.satellite]);
      }
    satellites.reserve(props.size());
    for (const Sgp4& prop : props) satellites.push_back(&prop);
    std::vector<PairTask> scan_pairs;
    scan_pairs.reserve(miss_pairs.size());
    for (const PairTask& p : miss_pairs)
      scan_pairs.push_back(PairTask{sat_row[p.satellite], p.observer});

    auto computed = scan_pass_pairs(satellites, observers, scan_pairs,
                                    jd_start, jd_end, opts, scan_opts,
                                    threads, metrics);
    for (std::size_t m = 0; m < miss_pairs.size(); ++m) {
      const PairTask& p = miss_pairs[m];
      if (cache != nullptr)
        cache->insert(ContactWindowCache::make_key(
                          tles[p.satellite], observers[p.observer].location,
                          jd_start, jd_end, effective_opts(p.observer),
                          mode_slot),
                      computed[m]);
      out[p.satellite][p.observer] = std::move(computed[m]);
    }
  }
  // Single entries/bytes-gauge refresh, after any insertions — the
  // pre-compute set this used to do was redundant on the miss path and
  // is folded into this one, which also covers the all-hits early path.
  if (metrics != nullptr && cache != nullptr) {
    const ContactWindowCache::Stats cs = cache->stats();
    metrics->gauge("orbit.pass_cache.entries")
        .set(static_cast<double>(cs.entries));
    metrics->gauge("orbit.pass_cache.bytes")
        .set(static_cast<double>(cs.bytes));
  }
  return out;
}

std::vector<std::vector<ContactWindow>> predict_passes_batch_cached(
    const std::vector<Tle>& tles, const Geodetic& observer,
    JulianDate jd_start, JulianDate jd_end, const PassPredictionOptions& opts,
    unsigned threads, ContactWindowCache* cache,
    obs::MetricsRegistry* metrics) {
  auto grid = predict_passes_grid_cached(tles, {GridObserver{observer}},
                                         jd_start, jd_end, opts, threads,
                                         cache, metrics);
  std::vector<std::vector<ContactWindow>> out(tles.size());
  for (std::size_t i = 0; i < tles.size(); ++i)
    out[i] = std::move(grid[i][0]);
  return out;
}

std::vector<PassSample> sample_pass(const Sgp4& prop, const Geodetic& observer,
                                    const ContactWindow& window,
                                    double step_s) {
  if (step_s <= 0.0) throw std::invalid_argument("sample_pass: step <= 0");
  const ElevationSampler sampler(prop, observer);
  std::vector<PassSample> out;
  const double step_days = step_s / kSecondsPerDay;
  for (JulianDate jd = window.aos_jd; jd < window.los_jd; jd += step_days)
    out.push_back(sampler.sample(jd));
  // The terminal sample is pinned to LOS exactly. When the window
  // duration is an exact multiple of step_s the loop's last grid point
  // already sits at LOS (modulo float accumulation) — drop it instead of
  // emitting a duplicate terminal sample microseconds apart.
  const double dup_tol_days = std::min(1e-6, 0.5 * step_days);
  if (!out.empty() && window.los_jd - out.back().jd < dup_tol_days)
    out.pop_back();
  out.push_back(sampler.sample(window.los_jd));
  return out;
}

std::vector<ContactWindow> merge_windows(std::vector<ContactWindow> windows) {
  if (windows.empty()) return windows;
  std::sort(windows.begin(), windows.end(),
            [](const ContactWindow& a, const ContactWindow& b) {
              return a.aos_jd < b.aos_jd;
            });
  std::vector<ContactWindow> merged;
  merged.push_back(windows.front());
  for (std::size_t i = 1; i < windows.size(); ++i) {
    ContactWindow& last = merged.back();
    const ContactWindow& w = windows[i];
    if (w.aos_jd <= last.los_jd) {
      if (w.los_jd > last.los_jd) last.los_jd = w.los_jd;
      if (w.max_elevation_deg > last.max_elevation_deg) {
        last.max_elevation_deg = w.max_elevation_deg;
        last.tca_jd = w.tca_jd;
      }
    } else {
      merged.push_back(w);
    }
  }
  return merged;
}

double daily_visible_seconds(const std::vector<ContactWindow>& windows,
                             JulianDate jd_start, JulianDate jd_end) {
  if (jd_end <= jd_start)
    throw std::invalid_argument("daily_visible_seconds: empty span");
  const std::vector<ContactWindow> merged = merge_windows(windows);
  double total_s = 0.0;
  for (const ContactWindow& w : merged) {
    const JulianDate a = std::max(w.aos_jd, jd_start);
    const JulianDate b = std::min(w.los_jd, jd_end);
    if (b > a) total_s += (b - a) * kSecondsPerDay;
  }
  return total_s / (jd_end - jd_start);
}

std::vector<double> contact_gaps_s(const std::vector<ContactWindow>& windows) {
  const std::vector<ContactWindow> merged = merge_windows(windows);
  std::vector<double> gaps;
  for (std::size_t i = 1; i < merged.size(); ++i)
    gaps.push_back((merged[i].aos_jd - merged[i - 1].los_jd) *
                   kSecondsPerDay);
  return gaps;
}

}  // namespace sinet::orbit
