#include "orbit/passes.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "orbit/frames.h"

namespace sinet::orbit {

namespace {

double elevation_at(const Sgp4& prop, const Geodetic& obs, JulianDate jd) {
  const TemeState st = prop.at_jd(jd);
  const Vec3 r = teme_to_ecef_position(st.position_km, jd);
  const Vec3 v = teme_to_ecef_velocity(st.position_km, st.velocity_km_s, jd);
  return look_angles(obs, r, v).elevation_deg;
}

/// Bisect for the elevation-mask crossing between jd_lo (below/above) and
/// jd_hi with opposite visibility state.
JulianDate refine_crossing(const Sgp4& prop, const Geodetic& obs,
                           JulianDate jd_lo, JulianDate jd_hi, double mask_deg,
                           double tol_s) {
  const bool lo_vis = elevation_at(prop, obs, jd_lo) >= mask_deg;
  for (int i = 0; i < 64; ++i) {
    if ((jd_hi - jd_lo) * kSecondsPerDay <= tol_s) break;
    const JulianDate mid = 0.5 * (jd_lo + jd_hi);
    const bool mid_vis = elevation_at(prop, obs, mid) >= mask_deg;
    if (mid_vis == lo_vis)
      jd_lo = mid;
    else
      jd_hi = mid;
  }
  return 0.5 * (jd_lo + jd_hi);
}

/// Golden-section search for max elevation inside [a, b].
std::pair<JulianDate, double> refine_peak(const Sgp4& prop,
                                          const Geodetic& obs, JulianDate a,
                                          JulianDate b) {
  constexpr double kInvPhi = 0.6180339887498949;
  JulianDate x1 = b - kInvPhi * (b - a);
  JulianDate x2 = a + kInvPhi * (b - a);
  double f1 = elevation_at(prop, obs, x1);
  double f2 = elevation_at(prop, obs, x2);
  for (int i = 0; i < 48 && (b - a) * kSecondsPerDay > 0.5; ++i) {
    if (f1 < f2) {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + kInvPhi * (b - a);
      f2 = elevation_at(prop, obs, x2);
    } else {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - kInvPhi * (b - a);
      f1 = elevation_at(prop, obs, x1);
    }
  }
  const JulianDate peak = 0.5 * (a + b);
  return {peak, elevation_at(prop, obs, peak)};
}

}  // namespace

PassSample sample_geometry(const Sgp4& prop, const Geodetic& observer,
                           JulianDate jd) {
  const TemeState st = prop.at_jd(jd);
  const Vec3 r = teme_to_ecef_position(st.position_km, jd);
  const Vec3 v = teme_to_ecef_velocity(st.position_km, st.velocity_km_s, jd);
  PassSample s;
  s.jd = jd;
  s.look = look_angles(observer, r, v);
  s.subsatellite_point = ecef_to_geodetic(r);
  return s;
}

std::vector<ContactWindow> predict_passes(const Sgp4& prop,
                                          const Geodetic& observer,
                                          JulianDate jd_start,
                                          JulianDate jd_end,
                                          const PassPredictionOptions& opts) {
  if (jd_end < jd_start)
    throw std::invalid_argument("predict_passes: jd_end < jd_start");
  if (opts.coarse_step_s <= 0.0)
    throw std::invalid_argument("predict_passes: nonpositive step");

  std::vector<ContactWindow> out;
  const double step_days = opts.coarse_step_s / kSecondsPerDay;

  bool prev_vis = elevation_at(prop, observer, jd_start) >=
                  opts.min_elevation_deg;
  JulianDate window_start = prev_vis ? jd_start : 0.0;

  for (JulianDate jd = jd_start + step_days;; jd += step_days) {
    const JulianDate t = std::min(jd, jd_end);
    const bool vis =
        elevation_at(prop, observer, t) >= opts.min_elevation_deg;
    if (vis && !prev_vis) {
      window_start = refine_crossing(prop, observer, t - step_days, t,
                                     opts.min_elevation_deg,
                                     opts.refine_tolerance_s);
    } else if (!vis && prev_vis) {
      const JulianDate window_end =
          refine_crossing(prop, observer, t - step_days, t,
                          opts.min_elevation_deg, opts.refine_tolerance_s);
      ContactWindow w;
      w.aos_jd = window_start;
      w.los_jd = window_end;
      auto [tca, elev] = refine_peak(prop, observer, w.aos_jd, w.los_jd);
      w.tca_jd = tca;
      w.max_elevation_deg = elev;
      out.push_back(w);
    }
    prev_vis = vis;
    if (t >= jd_end) break;
  }
  if (prev_vis) {  // window still open at jd_end: truncate
    ContactWindow w;
    w.aos_jd = window_start;
    w.los_jd = jd_end;
    auto [tca, elev] = refine_peak(prop, observer, w.aos_jd, w.los_jd);
    w.tca_jd = tca;
    w.max_elevation_deg = elev;
    out.push_back(w);
  }
  return out;
}

std::vector<PassSample> sample_pass(const Sgp4& prop, const Geodetic& observer,
                                    const ContactWindow& window,
                                    double step_s) {
  if (step_s <= 0.0) throw std::invalid_argument("sample_pass: step <= 0");
  std::vector<PassSample> out;
  const double step_days = step_s / kSecondsPerDay;
  for (JulianDate jd = window.aos_jd; jd < window.los_jd; jd += step_days)
    out.push_back(sample_geometry(prop, observer, jd));
  out.push_back(sample_geometry(prop, observer, window.los_jd));
  return out;
}

std::vector<ContactWindow> merge_windows(std::vector<ContactWindow> windows) {
  if (windows.empty()) return windows;
  std::sort(windows.begin(), windows.end(),
            [](const ContactWindow& a, const ContactWindow& b) {
              return a.aos_jd < b.aos_jd;
            });
  std::vector<ContactWindow> merged;
  merged.push_back(windows.front());
  for (std::size_t i = 1; i < windows.size(); ++i) {
    ContactWindow& last = merged.back();
    const ContactWindow& w = windows[i];
    if (w.aos_jd <= last.los_jd) {
      if (w.los_jd > last.los_jd) last.los_jd = w.los_jd;
      if (w.max_elevation_deg > last.max_elevation_deg) {
        last.max_elevation_deg = w.max_elevation_deg;
        last.tca_jd = w.tca_jd;
      }
    } else {
      merged.push_back(w);
    }
  }
  return merged;
}

double daily_visible_seconds(const std::vector<ContactWindow>& windows,
                             JulianDate jd_start, JulianDate jd_end) {
  if (jd_end <= jd_start)
    throw std::invalid_argument("daily_visible_seconds: empty span");
  const std::vector<ContactWindow> merged = merge_windows(windows);
  double total_s = 0.0;
  for (const ContactWindow& w : merged) {
    const JulianDate a = std::max(w.aos_jd, jd_start);
    const JulianDate b = std::min(w.los_jd, jd_end);
    if (b > a) total_s += (b - a) * kSecondsPerDay;
  }
  return total_s / (jd_end - jd_start);
}

std::vector<double> contact_gaps_s(const std::vector<ContactWindow>& windows) {
  const std::vector<ContactWindow> merged = merge_windows(windows);
  std::vector<double> gaps;
  for (std::size_t i = 1; i < merged.size(); ++i)
    gaps.push_back((merged[i].aos_jd - merged[i - 1].los_jd) *
                   kSecondsPerDay);
  return gaps;
}

}  // namespace sinet::orbit
