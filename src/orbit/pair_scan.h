// Per-(satellite, observer) scan state shared by the batch engine
// (scan_pass_pairs) and the rolling-horizon engine (RollingEphemeris).
//
// Both engines walk a coarse grid of precomputed ECEF samples, cull
// stretches that are provably below the elevation mask (see ephemeris.h
// for the cone/rate math), classify the rest exactly, and refine every
// visibility transition with the legacy predict_passes primitives. This
// header holds that walk ONCE, templated over a sample view, so the two
// engines cannot drift apart: the rolling scan is bit-identical to the
// fresh full-span scan by construction, not by parallel maintenance.
//
// The view concept supplies the grid samples by ABSOLUTE index:
//   JulianDate  time(std::size_t k)
//   const Vec3& position(std::size_t s, std::size_t k)   // ECEF km
//   double      distance(std::size_t s, std::size_t k)   // geocentric km
// Absolute indexing is what lets one scan state persist across table
// chunks (batch engine) or retained horizon chunks (rolling engine) with
// identical skip-ahead clamps in both.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "orbit/ephemeris.h"
#include "orbit/geodetic.h"
#include "orbit/look_angles.h"
#include "orbit/passes.h"
#include "orbit/sgp4.h"
#include "orbit/time.h"
#include "orbit/vec3.h"

namespace sinet::orbit {

/// Scan state of one (satellite, observer) pair; persists across table
/// chunks so culling skips can cross chunk boundaries. Fields are public
/// because the kFast lane-fused path (ephemeris.cpp) classifies samples
/// itself and feeds them in via record_init/record_sample.
struct PairScanState {
  PairScanState(const Sgp4& prop, const Geodetic& observer_location,
                double mask, const ObserverCullGeometry* observer_geometry,
                double gamma_vis, double omega_max, bool cull_enabled,
                std::size_t satellite_row)
      : sampler(prop, observer_location), geometry(observer_geometry),
        mask_deg(mask), gamma_vis_rad(gamma_vis),
        omega_max_rad_s(omega_max), cull(cull_enabled), sat(satellite_row) {}

  ElevationSampler sampler;
  const ObserverCullGeometry* geometry;
  double mask_deg;
  double gamma_vis_rad;
  double omega_max_rad_s;
  bool cull;
  std::size_t sat;

  bool init_done = false;
  bool prev_vis = false;
  JulianDate window_start = 0.0;
  std::size_t next_k = 1;  // next grid sample this pair must visit
  std::vector<ContactWindow> windows;

  std::uint64_t visited = 0;
  std::uint64_t culled = 0;
  std::uint64_t cull_decisions = 0;
  std::uint64_t exact_evals = 0;

  /// Seed the scan from an externally classified first sample (the kFast
  /// fused-kernel init path). Does not touch next_k — the fast path
  /// tracks its own lockstep cursor.
  void record_init(bool vis, JulianDate t0) {
    prev_vis = vis;
    window_start = prev_vis ? t0 : 0.0;
    init_done = true;
    ++visited;
    ++exact_evals;
  }

  /// Classify the scan's first sample (absolute index `base_k`) exactly,
  /// as predict_passes evaluates its sample 0, and aim the scan at the
  /// following sample.
  template <typename View>
  void init(const View& view, std::size_t base_k) {
    const double el0 =
        elevation_from_ecef(sampler.frame(), view.position(sat, base_k));
    record_init(el0 >= mask_deg, view.time(base_k));
    next_k = base_k + 1;
  }

  /// AOS/LOS transition handling for one classified sample — identical
  /// refinement primitives (and brackets) in every engine and mode.
  void record_sample(bool vis, JulianDate t, double step_days,
                     double refine_tolerance_s) {
    if (vis && !prev_vis) {
      window_start = refine_mask_crossing(sampler, t - step_days, t, mask_deg,
                                          refine_tolerance_s);
    } else if (!vis && prev_vis) {
      const JulianDate window_end = refine_mask_crossing(
          sampler, t - step_days, t, mask_deg, refine_tolerance_s);
      ContactWindow w;
      w.aos_jd = window_start;
      w.los_jd = window_end;
      const auto [tca, elev] = refine_max_elevation(sampler, w.aos_jd, w.los_jd);
      w.tca_jd = tca;
      w.max_elevation_deg = elev;
      windows.push_back(w);
    }
    prev_vis = vis;
  }

  /// Advance through grid samples [next_k, chunk_end). `total_end` is one
  /// past the last absolute sample of the WHOLE scan: it clamps the cull
  /// skip-ahead, so skip lengths are identical no matter how the span is
  /// chunked (total_end - k equals the fresh scan's size() - k_local).
  template <typename View>
  void scan(const View& view, std::size_t chunk_end, std::size_t total_end,
            double step_days, double step_s, double refine_tolerance_s) {
    while (next_k < chunk_end) {
      const std::size_t k = next_k;
      const JulianDate t = view.time(k);
      const Vec3& pos = view.position(sat, k);

      bool vis = false;
      bool decided = false;
      std::size_t advance = 1;
      if (cull) {
        const double d = view.distance(sat, k);
        const double cos_gamma = pos.dot(geometry->unit_ecef) / d;
        const double gamma = std::acos(std::clamp(cos_gamma, -1.0, 1.0));
        if (gamma > gamma_vis_rad) {
          // Provably below the mask here, and for at least margin_s: the
          // geocentric angle cannot close faster than omega_max.
          decided = true;
          ++cull_decisions;
          const double margin_s = (gamma - gamma_vis_rad) / omega_max_rad_s;
          const double steps = margin_s / step_s;
          if (steps > 1.0)
            advance =
                std::min(static_cast<std::size_t>(steps), total_end - k);
        }
      }
      if (!decided) {
        ++exact_evals;
        vis = elevation_from_ecef(sampler.frame(), pos) >= mask_deg;
      }
      ++visited;
      culled += advance - 1;

      // Identical transition handling (and refinement brackets) to
      // predict_passes; skipped samples are all proven invisible while
      // prev_vis is false, so no transition can hide inside a skip.
      record_sample(vis, t, step_days, refine_tolerance_s);
      next_k = k + advance;
    }
  }

  /// Truncate a still-open window at jd_end, exactly like predict_passes.
  void finalize(JulianDate jd_end) {
    if (!prev_vis) return;
    ContactWindow w;
    w.aos_jd = window_start;
    w.los_jd = jd_end;
    const auto [tca, elev] = refine_max_elevation(sampler, w.aos_jd, w.los_jd);
    w.tca_jd = tca;
    w.max_elevation_deg = elev;
    windows.push_back(w);
  }
};

}  // namespace sinet::orbit
