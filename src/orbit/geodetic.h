// WGS-84 geodetic coordinates and ECEF conversions.
#pragma once

#include "orbit/vec3.h"

namespace sinet::orbit {

inline constexpr double kWgs84SemiMajorKm = 6378.137;
inline constexpr double kWgs84Flattening = 1.0 / 298.257223563;
inline constexpr double kEarthMeanRadiusKm = 6371.0;

/// Geodetic position on the WGS-84 ellipsoid.
struct Geodetic {
  double latitude_deg = 0.0;   ///< [-90, 90]
  double longitude_deg = 0.0;  ///< (-180, 180]
  double altitude_km = 0.0;    ///< height above the ellipsoid
};

/// Geodetic -> ECEF (km). Throws std::invalid_argument for |lat| > 90.
[[nodiscard]] Vec3 geodetic_to_ecef(const Geodetic& g);

/// ECEF (km) -> geodetic, iterative (Bowring-style); converges in a few
/// iterations for any point outside the Earth's core.
[[nodiscard]] Geodetic ecef_to_geodetic(const Vec3& ecef_km);

/// Great-circle distance between two geodetic points (spherical Earth,
/// mean radius). Used for footprint sizing, not precise geodesy.
[[nodiscard]] double great_circle_km(const Geodetic& a, const Geodetic& b);

}  // namespace sinet::orbit
