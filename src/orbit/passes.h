// Contact-window ("pass") prediction for a satellite over a ground site.
//
// This is the paper's notion of *theoretical* contact: the interval during
// which the satellite is above the observer's elevation mask, computed
// from TLEs via SGP4 (paper Sec 3.1, Figs 3a/4a/4b).
#pragma once

#include <array>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <limits>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "orbit/geodetic.h"
#include "orbit/look_angles.h"
#include "orbit/sgp4.h"
#include "orbit/tle.h"

namespace sinet::obs {
class MetricsRegistry;
}  // namespace sinet::obs

namespace sinet::orbit {

// Defined in orbit/ephemeris.h; forward-declared here (fixed underlying
// type) so the cache API can carry the mode slot without a circular
// include — ephemeris.h includes this header.
enum class PropagationMode : int;

/// One predicted contact window.
struct ContactWindow {
  JulianDate aos_jd = 0.0;  ///< acquisition of signal (rise above mask)
  JulianDate los_jd = 0.0;  ///< loss of signal (set below mask)
  JulianDate tca_jd = 0.0;  ///< time of closest approach (max elevation)
  double max_elevation_deg = 0.0;

  [[nodiscard]] double duration_s() const noexcept {
    return (los_jd - aos_jd) * kSecondsPerDay;
  }
};

/// One sample of pass geometry, used to drive the channel model.
struct PassSample {
  JulianDate jd = 0.0;
  LookAngles look;
  Geodetic subsatellite_point;
};

struct PassPredictionOptions {
  double min_elevation_deg = 0.0;  ///< elevation mask defining visibility
  double coarse_step_s = 30.0;     ///< scan step; halved pass is ~60 s min
  double refine_tolerance_s = 0.5; ///< bisection tolerance on AOS/LOS
};

/// Evaluates pass geometry for one fixed (propagator, observer) pair.
///
/// Hoists everything that does not change between samples out of the
/// per-sample loop: the observer's ECEF position and ENU basis trig
/// (TopocentricFrame), and — via teme_to_ecef_state — the GMST rotation,
/// which the naive path (teme_to_ecef_position + teme_to_ecef_velocity)
/// evaluates twice per sample. Output is bit-identical to the naive path.
class ElevationSampler {
 public:
  /// `prop` must outlive the sampler.
  ElevationSampler(const Sgp4& prop, const Geodetic& observer)
      : prop_(&prop), frame_(observer) {}

  /// Elevation (deg) of the satellite above the observer's horizon.
  [[nodiscard]] double elevation_deg(JulianDate jd) const;

  /// Full geometry sample (look angles + subsatellite point).
  [[nodiscard]] PassSample sample(JulianDate jd) const;

  [[nodiscard]] const Sgp4& propagator() const noexcept { return *prop_; }
  [[nodiscard]] const TopocentricFrame& frame() const noexcept {
    return frame_;
  }

 private:
  const Sgp4* prop_;
  TopocentricFrame frame_;
};

/// Bisect for the elevation-mask crossing between jd_lo and jd_hi (which
/// must bracket a visibility transition). Exposed so the shared-ephemeris
/// scan (orbit/ephemeris.h) refines AOS/LOS with the *same* primitive as
/// predict_passes — bit-identical windows depend on it.
[[nodiscard]] JulianDate refine_mask_crossing(const ElevationSampler& sampler,
                                              JulianDate jd_lo,
                                              JulianDate jd_hi,
                                              double mask_deg, double tol_s);

/// Golden-section search for the max elevation inside [a, b]; returns
/// {tca_jd, max_elevation_deg}. Shared between the legacy and
/// shared-ephemeris scans for the same reason as refine_mask_crossing.
[[nodiscard]] std::pair<JulianDate, double> refine_max_elevation(
    const ElevationSampler& sampler, JulianDate a, JulianDate b);

/// Geometry of a satellite at a given instant, as seen from `observer`.
[[nodiscard]] PassSample sample_geometry(const Sgp4& prop,
                                         const Geodetic& observer,
                                         JulianDate jd);

/// Find all contact windows in [jd_start, jd_end].
/// Windows already in progress at jd_start are truncated to jd_start;
/// windows still open at jd_end are truncated to jd_end.
[[nodiscard]] std::vector<ContactWindow> predict_passes(
    const Sgp4& prop, const Geodetic& observer, JulianDate jd_start,
    JulianDate jd_end, const PassPredictionOptions& opts = {});

/// One (satellite, ground site) pair of a batch prediction.
struct PassBatchRequest {
  const Sgp4* propagator = nullptr;  ///< must outlive the batch call
  Geodetic observer;
};

/// Predict every request's windows over the same span.
///
/// Routed through the shared-ephemeris engine: requests naming the same
/// propagator share its coarse-grid states, requests naming the same
/// observer share one TopocentricFrame, and conservative culling skips
/// provably-below-mask samples. Results come back in input order and are
/// byte-identical to calling predict_passes serially per request.
///
/// `threads` semantics: 0 = all hardware threads (the process-wide shared
/// pool), 1 = serial on the calling thread (no pool), N > 1 = N workers.
///
/// When `metrics` is non-null the call records its wall time into the
/// "orbit.pass_batch.latency_ms" histogram and bumps the
/// "orbit.pass_batch.calls" / "orbit.pass_batch.requests" counters; null
/// (the default) takes no clock reads.
[[nodiscard]] std::vector<std::vector<ContactWindow>> predict_passes_batch(
    const std::vector<PassBatchRequest>& requests, JulianDate jd_start,
    JulianDate jd_end, const PassPredictionOptions& opts = {},
    unsigned threads = 0, obs::MetricsRegistry* metrics = nullptr);

/// One ground site of a multi-observer grid prediction. A NaN mask (the
/// default) means "use opts.min_elevation_deg"; setting it lets callers
/// with heterogeneous masks (e.g. DtS nodes at the visibility mask and
/// ground stations at their own minimum elevation) share one grid call.
struct GridObserver {
  Geodetic location;
  double min_elevation_deg = std::numeric_limits<double>::quiet_NaN();
};

/// Predict windows for every (satellite, observer) pair over one span,
/// through the shared-ephemeris + conservative-culling engine
/// (orbit/ephemeris.h): each satellite is propagated once per coarse
/// step and shared across all observers, GMST is evaluated once per step
/// across all satellites, and provably-below-mask samples are skipped.
/// Result is indexed [satellite][observer] and every window is
/// bit-identical to predict_passes on the same pair.
///
/// `threads` follows predict_passes_batch semantics (0 = shared pool,
/// 1 = serial, N = local pool); pairs fan out across the pool.
/// When `metrics` is non-null the engine records orbit.ephemeris.*
/// reuse/cull counters and a scan-latency histogram.
[[nodiscard]] std::vector<std::vector<std::vector<ContactWindow>>>
predict_passes_grid(const std::vector<const Sgp4*>& satellites,
                    const std::vector<GridObserver>& observers,
                    JulianDate jd_start, JulianDate jd_end,
                    const PassPredictionOptions& opts = {},
                    unsigned threads = 0,
                    obs::MetricsRegistry* metrics = nullptr);

/// Memoizes predicted windows per satellite.
///
/// Key = (TLE epoch + orbital elements, observer, span, prediction
/// options), all compared exactly — a cache hit can only return windows
/// an identical computation would have produced. The campaign drivers
/// (run_passive_campaign, constellation_windows, per_satellite_daily_hours)
/// repeatedly re-derive the same windows for the same satellite/site/span;
/// this cache collapses those recomputations. Thread-safe; bounded LRU
/// (hits refresh recency). get_or_predict is single-flight: concurrent
/// misses on the same key block on the first caller's computation instead
/// of each running predict_passes.
class ContactWindowCache {
 public:
  /// `max_bytes` bounds the resident footprint of the cached windows
  /// (entry payloads plus fixed per-entry bookkeeping, see
  /// Stats::bytes); 0 = unbounded. Entry-count and byte budgets evict
  /// independently — whichever is exceeded first takes the LRU victim.
  /// A resident server (src/svc) runs with a byte budget so its memory
  /// stays observable and bounded over days of rolling-horizon churn.
  explicit ContactWindowCache(std::size_t max_entries = 4096,
                              std::size_t max_bytes = 0)
      : max_entries_(max_entries), max_bytes_(max_bytes) {}

  /// Return the cached windows for (tle, observer, span, opts), computing
  /// and inserting them on a miss. Waiting on another caller's in-flight
  /// computation of the same key counts as a hit (only the first caller
  /// records the miss and does the work); if that computation throws, the
  /// exception is rethrown to every waiter.
  [[nodiscard]] std::vector<ContactWindow> get_or_predict(
      const Tle& tle, const Geodetic& observer, JulianDate jd_start,
      JulianDate jd_end, const PassPredictionOptions& opts = {});

  /// Same keying, single-flight and LRU behavior as get_or_predict, but
  /// the miss path runs `compute` instead of predict_passes. This is how
  /// the pass-prediction service (src/svc) serves misses from its warm
  /// rolling-horizon ephemeris while sharing one cache (and one set of
  /// keys) with the batch prediction APIs: `mode_slot` must say which
  /// propagation mode produced the windows so fast/reference results
  /// never alias.
  [[nodiscard]] std::vector<ContactWindow> get_or_compute(
      const Tle& tle, const Geodetic& observer, JulianDate jd_start,
      JulianDate jd_end, const PassPredictionOptions& opts,
      PropagationMode mode_slot,
      const std::function<std::vector<ContactWindow>()>& compute);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::size_t entries = 0;
    /// Accounted resident size: per-entry payload
    /// (windows.capacity() * sizeof(ContactWindow)) plus
    /// kEntryOverheadBytes of map/list bookkeeping.
    std::size_t bytes = 0;
  };
  [[nodiscard]] Stats stats() const;
  void clear();

  /// Fixed bookkeeping charged per entry on top of the window payload:
  /// two 17-double keys (map node + recency list node), red-black node
  /// and list pointers, and the Entry struct itself, rounded up. Exact
  /// malloc geometry is allocator-specific; what matters for the budget
  /// is that empty-window entries still have nonzero accounted cost.
  static constexpr std::size_t kEntryOverheadBytes = 384;

  /// Process-wide cache used by the core campaign drivers.
  [[nodiscard]] static ContactWindowCache& global();

 private:
  // Epoch + elements + observer + span + options + propagation mode,
  // compared exactly. The mode slot keeps kReference and kFast results
  // from ever aliasing: fast-mode windows are only tolerance-equal, so a
  // cache filled under one mode must miss under the other.
  using Key = std::array<double, 17>;
  static Key make_key(const Tle& tle, const Geodetic& observer,
                      JulianDate jd_start, JulianDate jd_end,
                      const PassPredictionOptions& opts, double mode_slot);

  struct Entry {
    std::vector<ContactWindow> windows;
    std::list<Key>::iterator recency;  // position in recency_
    std::size_t bytes = 0;             // accounted size incl. overhead
  };
  // One in-flight computation, shared between the owner and any waiters.
  struct InFlight {
    std::mutex m;
    std::condition_variable cv;
    bool done = false;
    std::vector<ContactWindow> windows;
    std::exception_ptr error;
  };

  friend std::vector<std::vector<std::vector<ContactWindow>>>
  predict_passes_grid_cached(const std::vector<Tle>& tles,
                             const std::vector<GridObserver>& observers,
                             JulianDate jd_start, JulianDate jd_end,
                             const PassPredictionOptions& opts,
                             unsigned threads, ContactWindowCache* cache,
                             obs::MetricsRegistry* metrics);

  void insert(const Key& key, const std::vector<ContactWindow>& windows);
  // Move `it` to most-recently-used. Caller holds mutex_.
  void touch(std::map<Key, Entry>::iterator it);
  // Evict LRU entries until both budgets are respected. Caller holds
  // mutex_.
  void evict_over_budget();

  mutable std::mutex mutex_;
  std::map<Key, Entry> entries_;
  std::list<Key> recency_;  // front = LRU victim, back = most recent
  std::map<Key, std::shared_ptr<InFlight>> inflight_;
  std::size_t max_entries_;
  std::size_t max_bytes_;
  std::size_t bytes_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

/// Cached multi-observer prediction: predict_passes_grid semantics (result
/// indexed [satellite][observer], per-observer masks honored) with every
/// (satellite, observer) pair served from `cache` where possible and the
/// misses computed in ONE shared-ephemeris engine scan. Cache keys use the
/// observer's *effective* mask, so entries interoperate with
/// predict_passes_batch_cached and get_or_predict.
[[nodiscard]] std::vector<std::vector<std::vector<ContactWindow>>>
predict_passes_grid_cached(const std::vector<Tle>& tles,
                           const std::vector<GridObserver>& observers,
                           JulianDate jd_start, JulianDate jd_end,
                           const PassPredictionOptions& opts = {},
                           unsigned threads = 0,
                           ContactWindowCache* cache =
                               &ContactWindowCache::global(),
                           obs::MetricsRegistry* metrics = nullptr);

/// Per-TLE windows over one site: predict_passes_grid_cached with a
/// single observer at the options' mask. Results in input (TLE) order.
/// Pass cache = nullptr to bypass caching entirely.
///
/// When `metrics` is non-null the call adds this probe's hits/misses to
/// the "orbit.pass_cache.hits" / "orbit.pass_cache.misses" counters and
/// refreshes the "orbit.pass_cache.entries" gauge once per call, in
/// addition to the engine's orbit.ephemeris.* instrumentation for the
/// miss computation.
[[nodiscard]] std::vector<std::vector<ContactWindow>>
predict_passes_batch_cached(const std::vector<Tle>& tles,
                            const Geodetic& observer, JulianDate jd_start,
                            JulianDate jd_end,
                            const PassPredictionOptions& opts = {},
                            unsigned threads = 0,
                            ContactWindowCache* cache =
                                &ContactWindowCache::global(),
                            obs::MetricsRegistry* metrics = nullptr);

/// Sample look angles along a window at `step_s` spacing (inclusive ends).
[[nodiscard]] std::vector<PassSample> sample_pass(const Sgp4& prop,
                                                  const Geodetic& observer,
                                                  const ContactWindow& window,
                                                  double step_s = 5.0);

/// Aggregate daily visibility: total seconds per day that at least one of
/// the windows is open, averaged over the span. (Windows may overlap when
/// aggregating a whole constellation; overlaps are merged.)
[[nodiscard]] double daily_visible_seconds(
    const std::vector<ContactWindow>& windows, JulianDate jd_start,
    JulianDate jd_end);

/// Gaps between consecutive (merged) windows, in seconds.
[[nodiscard]] std::vector<double> contact_gaps_s(
    const std::vector<ContactWindow>& windows);

/// Merge overlapping/adjacent windows (for constellation-level analysis).
[[nodiscard]] std::vector<ContactWindow> merge_windows(
    std::vector<ContactWindow> windows);

}  // namespace sinet::orbit
