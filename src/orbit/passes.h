// Contact-window ("pass") prediction for a satellite over a ground site.
//
// This is the paper's notion of *theoretical* contact: the interval during
// which the satellite is above the observer's elevation mask, computed
// from TLEs via SGP4 (paper Sec 3.1, Figs 3a/4a/4b).
#pragma once

#include <vector>

#include "orbit/geodetic.h"
#include "orbit/look_angles.h"
#include "orbit/sgp4.h"
#include "orbit/tle.h"

namespace sinet::orbit {

/// One predicted contact window.
struct ContactWindow {
  JulianDate aos_jd = 0.0;  ///< acquisition of signal (rise above mask)
  JulianDate los_jd = 0.0;  ///< loss of signal (set below mask)
  JulianDate tca_jd = 0.0;  ///< time of closest approach (max elevation)
  double max_elevation_deg = 0.0;

  [[nodiscard]] double duration_s() const noexcept {
    return (los_jd - aos_jd) * kSecondsPerDay;
  }
};

/// One sample of pass geometry, used to drive the channel model.
struct PassSample {
  JulianDate jd = 0.0;
  LookAngles look;
  Geodetic subsatellite_point;
};

struct PassPredictionOptions {
  double min_elevation_deg = 0.0;  ///< elevation mask defining visibility
  double coarse_step_s = 30.0;     ///< scan step; halved pass is ~60 s min
  double refine_tolerance_s = 0.5; ///< bisection tolerance on AOS/LOS
};

/// Geometry of a satellite at a given instant, as seen from `observer`.
[[nodiscard]] PassSample sample_geometry(const Sgp4& prop,
                                         const Geodetic& observer,
                                         JulianDate jd);

/// Find all contact windows in [jd_start, jd_end].
/// Windows already in progress at jd_start are truncated to jd_start;
/// windows still open at jd_end are truncated to jd_end.
[[nodiscard]] std::vector<ContactWindow> predict_passes(
    const Sgp4& prop, const Geodetic& observer, JulianDate jd_start,
    JulianDate jd_end, const PassPredictionOptions& opts = {});

/// Sample look angles along a window at `step_s` spacing (inclusive ends).
[[nodiscard]] std::vector<PassSample> sample_pass(const Sgp4& prop,
                                                  const Geodetic& observer,
                                                  const ContactWindow& window,
                                                  double step_s = 5.0);

/// Aggregate daily visibility: total seconds per day that at least one of
/// the windows is open, averaged over the span. (Windows may overlap when
/// aggregating a whole constellation; overlaps are merged.)
[[nodiscard]] double daily_visible_seconds(
    const std::vector<ContactWindow>& windows, JulianDate jd_start,
    JulianDate jd_end);

/// Gaps between consecutive (merged) windows, in seconds.
[[nodiscard]] std::vector<double> contact_gaps_s(
    const std::vector<ContactWindow>& windows);

/// Merge overlapping/adjacent windows (for constellation-level analysis).
[[nodiscard]] std::vector<ContactWindow> merge_windows(
    std::vector<ContactWindow> windows);

}  // namespace sinet::orbit
