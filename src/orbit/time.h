// Astronomical time utilities: Julian dates, calendar conversion, GMST.
//
// All timestamps in the framework are UTC. We treat UT1 == UTC, which is
// accurate to < 0.9 s and far below the fidelity needed for contact-window
// prediction (windows are minutes long).
#pragma once

#include <cstdint>

namespace sinet::orbit {

/// Julian date (days since 4713 BC Jan 1, 12:00 TT). Plain double: at
/// J2000-era magnitudes the resolution is ~40 us, ample for this domain.
using JulianDate = double;

inline constexpr JulianDate kJdUnixEpoch = 2440587.5;  // 1970-01-01T00:00Z
inline constexpr JulianDate kJdJ2000 = 2451545.0;      // 2000-01-01T12:00Z
inline constexpr double kSecondsPerDay = 86400.0;
inline constexpr double kMinutesPerDay = 1440.0;

/// Gregorian calendar date/time -> Julian date (valid for year >= 1901).
/// Throws std::invalid_argument for out-of-range fields.
[[nodiscard]] JulianDate julian_from_civil(int year, int month, int day,
                                           int hour = 0, int minute = 0,
                                           double second = 0.0);

/// Julian date -> Unix seconds (UTC).
[[nodiscard]] constexpr double julian_to_unix(JulianDate jd) noexcept {
  return (jd - kJdUnixEpoch) * kSecondsPerDay;
}

/// Unix seconds (UTC) -> Julian date.
[[nodiscard]] constexpr JulianDate unix_to_julian(double unix_s) noexcept {
  return kJdUnixEpoch + unix_s / kSecondsPerDay;
}

/// Civil calendar fields recovered from a Julian date.
struct CivilTime {
  int year;
  int month;
  int day;
  int hour;
  int minute;
  double second;
};

/// Julian date -> Gregorian calendar (UTC). Valid for 1901..2099.
[[nodiscard]] CivilTime civil_from_julian(JulianDate jd);

/// Greenwich Mean Sidereal Time in radians, [0, 2*pi).
/// IAU-82 model as used by the spacetrack conventions (Vallado).
[[nodiscard]] double gmst_rad(JulianDate jd_ut1);

/// TLE epoch fields (2-digit year + fractional day-of-year) -> Julian date.
/// Years 57..99 map to 1957..1999, 00..56 to 2000..2056 (NORAD rule).
[[nodiscard]] JulianDate julian_from_tle_epoch(int epoch_year_2digit,
                                               double epoch_day_of_year);

/// Wrap an angle to [0, 2*pi).
[[nodiscard]] double wrap_two_pi(double angle_rad) noexcept;

/// Wrap an angle to (-pi, pi].
[[nodiscard]] double wrap_pi(double angle_rad) noexcept;

inline constexpr double kPi = 3.14159265358979323846;
inline constexpr double kTwoPi = 2.0 * kPi;
inline constexpr double kDegToRad = kPi / 180.0;
inline constexpr double kRadToDeg = 180.0 / kPi;

}  // namespace sinet::orbit
