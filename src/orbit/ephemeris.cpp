#include "orbit/ephemeris.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

#include "obs/metrics.h"
#include "obs/scoped_timer.h"
#include "orbit/frames.h"
#include "orbit/look_angles.h"
#include "orbit/pair_scan.h"
#include "orbit/simd.h"
#include "orbit/tle.h"
#include "sim/thread_pool.h"

namespace sinet::orbit {

namespace {

PropagationMode mode_from_env() {
  const char* env = std::getenv("SINET_PROPAGATION_MODE");
  if (env == nullptr) return PropagationMode::kReference;
  try {
    return parse_propagation_mode(env);
  } catch (const std::invalid_argument&) {
    // Env misconfiguration must not crash static init; the safe default
    // is the bit-identical reference path.
    return PropagationMode::kReference;
  }
}

std::atomic<PropagationMode>& global_mode() {
  static std::atomic<PropagationMode> mode{mode_from_env()};
  return mode;
}

}  // namespace

PropagationMode propagation_mode() noexcept {
  return global_mode().load(std::memory_order_relaxed);
}

void set_propagation_mode(PropagationMode mode) noexcept {
  global_mode().store(mode, std::memory_order_relaxed);
}

PropagationMode parse_propagation_mode(std::string_view name) {
  if (name == "reference" || name == "scalar")
    return PropagationMode::kReference;
  if (name == "fast" || name == "simd") return PropagationMode::kFast;
  throw std::invalid_argument("parse_propagation_mode: unknown mode '" +
                              std::string(name) +
                              "' (expected 'reference' or 'fast')");
}

const char* propagation_mode_name(PropagationMode mode) noexcept {
  return mode == PropagationMode::kFast ? "fast" : "reference";
}

ScanGrid::ScanGrid(JulianDate jd_start, JulianDate jd_end,
                   double coarse_step_s) {
  if (jd_end < jd_start)
    throw std::invalid_argument("ScanGrid: jd_end < jd_start");
  if (coarse_step_s <= 0.0)
    throw std::invalid_argument("ScanGrid: nonpositive step");
  start_ = jd_start;
  end_ = jd_end;
  step_s_ = coarse_step_s;
  step_days_ = coarse_step_s / kSecondsPerDay;
  // Exactly predict_passes' sample times: the same float accumulation
  // (jd += step_days) with the same clamp, NOT jd_start + k * step.
  times_.push_back(jd_start);
  for (JulianDate jd = jd_start + step_days_;; jd += step_days_) {
    const JulianDate t = std::min(jd, jd_end);
    times_.push_back(t);
    if (t >= jd_end) break;
  }
}

ScanGrid::ScanGrid(std::vector<JulianDate> times, double coarse_step_s)
    : times_(std::move(times)) {
  if (times_.empty())
    throw std::invalid_argument("ScanGrid: empty sample times");
  if (coarse_step_s <= 0.0)
    throw std::invalid_argument("ScanGrid: nonpositive step");
  start_ = times_.front();
  end_ = times_.back();
  step_s_ = coarse_step_s;
  step_days_ = coarse_step_s / kSecondsPerDay;
}

EphemerisTable::EphemerisTable(const std::vector<const Sgp4*>& satellites,
                               const ScanGrid& grid, PropagationMode mode)
    : satellites_(&satellites), grid_(&grid), mode_(mode) {
  if (mode_ == PropagationMode::kFast && !satellites.empty())
    batch_ = std::make_unique<Sgp4Batch>(satellites);
}

void EphemerisTable::build(std::size_t first, std::size_t count,
                           sim::ThreadPool* pool,
                           const std::vector<std::size_t>* row_start) {
  built_first_ = first;
  built_count_ = count;
  const std::size_t chunk_end = first + count;
  // One GMST per timestep, shared by every satellite's rotation.
  gmst_.resize(count);
  for (std::size_t i = 0; i < count; ++i)
    gmst_[i] = gmst_rad(grid_->time(first + i));

  const std::size_t n = satellites_->size();
  positions_.resize(n * count);
  distances_.resize(n * count);

  const auto row_begin = [&](std::size_t s) {
    return row_start == nullptr ? first : std::max(first, (*row_start)[s]);
  };
  const auto fill_row = [&](std::size_t s) {
    const std::size_t begin = row_begin(s);
    if (begin >= chunk_end) return;  // satellite not needed this chunk
    const Sgp4& prop = *(*satellites_)[s];
    Vec3* pos = &positions_[s * count];
    double* dist = &distances_[s * count];
    for (std::size_t k = begin; k < chunk_end; ++k) {
      const TemeState st = prop.at_jd(grid_->time(k));
      const Vec3 p = teme_to_ecef_position_gmst(st.position_km,
                                                gmst_[k - first]);
      pos[k - first] = p;
      dist[k - first] = p.norm();
    }
  };

  // kFast: four satellite rows per lane group, one batched propagation +
  // shared-GMST rotation per column. The group starts at the earliest
  // row_start of its members — trailing members get (harmless) extra
  // samples, which costs nothing because the column is computed for the
  // whole group anyway.
  const auto group_begin = [&](std::size_t g) {
    const std::size_t lane0 = g * Sgp4Batch::kLaneWidth;
    const std::size_t members = batch_->group_members(g);
    std::size_t begin = chunk_end;
    for (std::size_t l = 0; l < members; ++l)
      begin = std::min(begin, row_begin(lane0 + l));
    return begin;
  };
  const auto fill_group = [&](std::size_t g) {
    const std::size_t begin = group_begin(g);
    if (begin >= chunk_end) return;  // no member needed this chunk
    const std::size_t lane0 = g * Sgp4Batch::kLaneWidth;
    const std::size_t members = batch_->group_members(g);
    double x[Sgp4Batch::kLaneWidth], y[Sgp4Batch::kLaneWidth];
    double z[Sgp4Batch::kLaneWidth], d[Sgp4Batch::kLaneWidth];
    LaneStatus status[Sgp4Batch::kLaneWidth];
    for (std::size_t k = begin; k < chunk_end; ++k) {
      const JulianDate t = grid_->time(k);
      const double gmst = gmst_[k - first];
      const bool ok =
          batch_->propagate_group_ecef(g, t, gmst, x, y, z, d, status);
      for (std::size_t l = 0; l < members; ++l) {
        const std::size_t s = lane0 + l;
        if (ok || status[l] == LaneStatus::kOk) {
          positions_[s * count + (k - first)] = Vec3{x[l], y[l], z[l]};
          distances_[s * count + (k - first)] = d[l];
        } else {
          // The scalar propagator either throws the typed
          // PropagationError the reference path would have surfaced, or
          // (near-threshold disagreement) supplies a valid state.
          simd_scalar_fallbacks_.fetch_add(1, std::memory_order_relaxed);
          const TemeState st = (*satellites_)[s]->at_jd(t);
          const Vec3 p = teme_to_ecef_position_gmst(st.position_km, gmst);
          positions_[s * count + (k - first)] = p;
          distances_[s * count + (k - first)] = p.norm();
        }
      }
    }
  };

  const bool fast = mode_ == PropagationMode::kFast && batch_ != nullptr;
  const std::size_t work_items = fast ? batch_->groups() : n;
  if (fast) {
    if (pool != nullptr && work_items > 1) {
      pool->parallel_for(work_items, fill_group);
    } else {
      for (std::size_t g = 0; g < work_items; ++g) fill_group(g);
    }
    for (std::size_t g = 0; g < batch_->groups(); ++g) {
      const std::size_t begin = group_begin(g);
      if (begin >= chunk_end) continue;
      const std::uint64_t filled = static_cast<std::uint64_t>(
          batch_->group_members(g) * (chunk_end - begin));
      propagations_ += filled;
      simd_lanes_filled_ += filled;
    }
  } else {
    if (pool != nullptr && work_items > 1) {
      pool->parallel_for(work_items, fill_row);
    } else {
      for (std::size_t s = 0; s < n; ++s) fill_row(s);
    }
    for (std::size_t s = 0; s < n; ++s) {
      const std::size_t begin = row_begin(s);
      if (begin < chunk_end) propagations_ += chunk_end - begin;
    }
  }
}

SatelliteCullBounds satellite_cull_bounds(const Sgp4& prop) {
  SatelliteCullBounds b;
  const double a_km = prop.semi_major_axis_er() * kEarthRadiusKm;
  const double e = prop.eccentricity();
  if (!(a_km > 0.0) || !(e >= 0.0) || e >= 1.0) return b;
  const double r_apogee = a_km * (1.0 + e) + kCullRadialMarginKm;
  const double r_perigee = a_km * (1.0 - e) - kCullRadialMarginKm;
  // Culling buys nothing (and the rate bound degenerates) for orbits
  // that graze the surface; leave it off and scan exactly.
  if (!(r_perigee > 0.5 * kEarthRadiusKm)) return b;
  // Vis-viva at the (margin-lowered) perigee bounds the inertial speed;
  // dividing by the same perigee radius bounds the geocentric angular
  // rate. Earth rotation adds at most its full rate in the fixed frame.
  const double v_sq = kMuEarthKm3PerS2 * (2.0 / r_perigee - 1.0 / a_km);
  if (!(v_sq > 0.0)) return b;
  b.max_distance_km = r_apogee;
  b.max_angular_rate_rad_s =
      kCullRateSafety * std::sqrt(v_sq) / r_perigee + kEarthRotationRadPerSec;
  b.valid = true;
  return b;
}

ObserverCullGeometry observer_cull_geometry(const Geodetic& observer) {
  const TopocentricFrame frame(observer);
  ObserverCullGeometry g;
  g.radius_km = frame.obs_ecef_km.norm();
  g.unit_ecef = g.radius_km > 0.0 ? frame.obs_ecef_km * (1.0 / g.radius_km)
                                  : Vec3{0.0, 0.0, 1.0};
  // Angle between the geodetic vertical (defines the elevation mask) and
  // the geocentric direction the cone test measures against; <= ~0.2 deg
  // anywhere on WGS-84.
  const Vec3 up{frame.cos_lat * frame.cos_lon, frame.cos_lat * frame.sin_lon,
                frame.sin_lat};
  g.vertical_deflection_rad =
      std::acos(std::clamp(up.dot(g.unit_ecef), -1.0, 1.0));
  return g;
}

double horizon_cone_half_angle_rad(const ObserverCullGeometry& observer,
                                   double max_distance_km, double mask_deg) {
  if (!(max_distance_km > 0.0) || !(observer.radius_km > 0.0)) return kPi;
  // Effective mask: the geodetic mask lowered by the vertical deflection
  // (so the geocentric test is conservative for the geodetic elevation)
  // and by the float-error pad.
  const double eps = mask_deg * kDegToRad - observer.vertical_deflection_rad -
                     kCullAngularPadRad;
  if (!(eps > -0.5 * kPi)) return kPi;
  // At geocentric separation gamma and distance d <= d_max, the elevation
  // above the geocentric horizon satisfies
  //   sin(el_geo) = (d cos(gamma) - R_o) / |d_vec - o_vec|,
  // monotone decreasing in gamma and increasing in d. Solving
  // el_geo = eps at d = d_max for gamma:
  const double arg =
      std::clamp(observer.radius_km / max_distance_km * std::cos(eps), -1.0,
                 1.0);
  const double gamma = std::acos(arg) - eps;
  if (!std::isfinite(gamma)) return kPi;
  return std::clamp(gamma, 0.0, kPi);
}

namespace {

/// Scan state of one (satellite, observer) pair — shared with the
/// rolling-horizon engine via orbit/pair_scan.h so both walk the grid
/// with literally the same code.
using PairScan = PairScanState;

/// Adapts one {grid, table} chunk pair to the PairScanState view
/// concept. Indices are absolute grid samples in both members, so the
/// adapter is a pure pass-through.
struct GridTableView {
  const ScanGrid* grid;
  const EphemerisTable* table;
  [[nodiscard]] JulianDate time(std::size_t k) const { return grid->time(k); }
  [[nodiscard]] const Vec3& position(std::size_t s, std::size_t k) const {
    return table->position_ecef_km(s, k);
  }
  [[nodiscard]] double distance(std::size_t s, std::size_t k) const {
    return table->distance_km(s, k);
  }
};

/// kFast scan unit: up to simd::kLanes pairs sharing one satellite, all
/// observer-side constants transposed into lane arrays. The lanes scan
/// in lockstep (one next_k for the block) so one table lookup + one
/// fused kernel evaluation serves every observer; per-lane window state
/// and statistics stay in the lanes' PairScan entries, which keeps the
/// finalize/metrics plumbing identical to the reference path. Pad lanes
/// replicate lane 0 and are never read back.
struct FastBlock {
  std::size_t sat = 0;
  std::size_t lanes = 0;
  std::array<std::size_t, simd::kLanes> pair{};
  TopocentricFrameSoA frames;
  simd::Vd sin_mask;        // sin(elevation mask)
  simd::Vd ux, uy, uz;      // observer geocentric unit vectors
  simd::Vd cos_vis;         // cos(gamma_vis); -1 = lane never culls
  simd::Vd inv_omega_step;  // 1 / (omega_max * coarse_step_s)
  bool init_done = false;
  std::size_t next_k = 1;
};

}  // namespace

std::vector<std::vector<ContactWindow>> scan_pass_pairs(
    const std::vector<const Sgp4*>& satellites,
    const std::vector<GridObserver>& observers,
    const std::vector<PairTask>& pairs, JulianDate jd_start,
    JulianDate jd_end, const PassPredictionOptions& opts,
    const EphemerisScanOptions& scan_opts, unsigned threads,
    obs::MetricsRegistry* metrics) {
  if (jd_end < jd_start)
    throw std::invalid_argument("scan_pass_pairs: jd_end < jd_start");
  if (opts.coarse_step_s <= 0.0)
    throw std::invalid_argument("scan_pass_pairs: nonpositive step");
  if (scan_opts.chunk_samples == 0)
    throw std::invalid_argument("scan_pass_pairs: zero chunk_samples");
  for (const Sgp4* sat : satellites)
    if (sat == nullptr)
      throw std::invalid_argument("scan_pass_pairs: null propagator");
  for (const PairTask& p : pairs)
    if (p.satellite >= satellites.size() || p.observer >= observers.size())
      throw std::out_of_range("scan_pass_pairs: pair index out of range");

  obs::ScopedTimer timer(
      metrics == nullptr
          ? nullptr
          : &metrics->histogram("orbit.ephemeris.scan_latency_ms", 0.0,
                                10000.0, 50));
  if (metrics != nullptr) {
    metrics->counter("orbit.ephemeris.scans").add(1);
    metrics->counter("orbit.ephemeris.pairs").add(pairs.size());
  }

  std::vector<std::vector<ContactWindow>> out(pairs.size());
  if (pairs.empty()) return out;

  const ScanGrid grid(jd_start, jd_end, opts.coarse_step_s);
  const std::size_t total = grid.size();
  const double step_days = grid.step_days();
  const double step_s = grid.step_s();

  std::vector<SatelliteCullBounds> bounds(satellites.size());
  if (scan_opts.cull)
    for (std::size_t s = 0; s < satellites.size(); ++s)
      bounds[s] = satellite_cull_bounds(*satellites[s]);

  std::vector<ObserverCullGeometry> geometry(observers.size());
  std::vector<double> masks(observers.size());
  for (std::size_t o = 0; o < observers.size(); ++o) {
    masks[o] = std::isnan(observers[o].min_elevation_deg)
                   ? opts.min_elevation_deg
                   : observers[o].min_elevation_deg;
    if (scan_opts.cull)
      geometry[o] = observer_cull_geometry(observers[o].location);
  }

  std::vector<PairScan> scans;
  scans.reserve(pairs.size());
  for (const PairTask& p : pairs) {
    double gamma_vis = kPi;
    double omega_max = 0.0;
    bool cull_enabled = false;
    if (scan_opts.cull && bounds[p.satellite].valid) {
      gamma_vis = horizon_cone_half_angle_rad(
          geometry[p.observer], bounds[p.satellite].max_distance_km,
          masks[p.observer]);
      omega_max = bounds[p.satellite].max_angular_rate_rad_s;
      cull_enabled = gamma_vis < kPi && omega_max > 0.0;
    }
    scans.emplace_back(*satellites[p.satellite],
                       observers[p.observer].location, masks[p.observer],
                       &geometry[p.observer], gamma_vis, omega_max,
                       cull_enabled, p.satellite);
  }

  sim::ThreadPool* pool = nullptr;
  std::optional<sim::ThreadPool> local;
  if (threads != 1 && pairs.size() > 1) {
    sim::ThreadPool& shared = sim::ThreadPool::shared();
    if (threads == 0 || threads == shared.size()) {
      pool = &shared;
    } else {
      local.emplace(threads);
      pool = &*local;
    }
  }

  const PropagationMode mode = scan_opts.mode;
  EphemerisTable table(satellites, grid, mode);

  // kFast: fuse each satellite's pairs into observer lane blocks.
  std::vector<FastBlock> blocks;
  if (mode == PropagationMode::kFast) {
    std::vector<std::vector<std::size_t>> by_sat(satellites.size());
    for (std::size_t i = 0; i < scans.size(); ++i)
      by_sat[scans[i].sat].push_back(i);
    for (std::size_t s = 0; s < by_sat.size(); ++s) {
      const std::vector<std::size_t>& members = by_sat[s];
      for (std::size_t b0 = 0; b0 < members.size(); b0 += simd::kLanes) {
        FastBlock b;
        b.sat = s;
        b.lanes = std::min(simd::kLanes, members.size() - b0);
        std::array<const TopocentricFrame*, simd::kLanes> frames{};
        for (std::size_t l = 0; l < simd::kLanes; ++l) {
          const std::size_t i = members[b0 + (l < b.lanes ? l : 0)];
          const PairScan& p = scans[i];
          b.pair[l] = i;
          frames[l] = &p.sampler.frame();
          b.sin_mask[l] = std::sin(p.mask_deg * kDegToRad);
          b.ux[l] = p.geometry->unit_ecef.x;
          b.uy[l] = p.geometry->unit_ecef.y;
          b.uz[l] = p.geometry->unit_ecef.z;
          b.cos_vis[l] = p.cull ? std::cos(p.gamma_vis_rad) : -1.0;
          b.inv_omega_step[l] =
              p.cull ? 1.0 / (p.omega_max_rad_s * step_s) : 0.0;
        }
        b.frames = pack_topocentric_frames(frames.data(), b.lanes);
        blocks.push_back(b);
      }
    }
  }

  constexpr std::size_t kUnused = std::numeric_limits<std::size_t>::max();
  std::vector<std::size_t> row_start(satellites.size());
  std::vector<std::size_t> active;
  active.reserve(mode == PropagationMode::kFast ? blocks.size()
                                                : scans.size());

  for (std::size_t first = 0; first < total;
       first += scan_opts.chunk_samples) {
    const std::size_t count = std::min(scan_opts.chunk_samples, total - first);
    const std::size_t chunk_end = first + count;

    active.clear();
    std::fill(row_start.begin(), row_start.end(), kUnused);
    if (mode == PropagationMode::kFast) {
      for (std::size_t i = 0; i < blocks.size(); ++i) {
        const FastBlock& b = blocks[i];
        const std::size_t from = b.init_done ? b.next_k : first;
        if (from >= chunk_end) continue;
        active.push_back(i);
        row_start[b.sat] = std::min(row_start[b.sat], from);
      }
    } else {
      for (std::size_t i = 0; i < scans.size(); ++i) {
        const PairScan& p = scans[i];
        // Every pair visits sample 0 (init) in the first chunk;
        // afterwards a pair is active only if its next sample lands in
        // this chunk — culling can have jumped it clean past it.
        const std::size_t from = p.init_done ? p.next_k : first;
        if (from >= chunk_end) continue;
        active.push_back(i);
        row_start[p.sat] = std::min(row_start[p.sat], from);
      }
    }
    if (active.empty()) continue;

    table.build(first, count, pool, &row_start);
    const GridTableView view{&grid, &table};

    // kFast: one table lookup + one fused kernel per block sample; the
    // cull compare and skip margin live in the cosine domain (acos is
    // 1-Lipschitz-inverse, so gamma - gamma_vis >= cos(gamma_vis) -
    // cos(gamma) — a conservative lower bound needing no arccosine).
    const auto scan_block = [&](std::size_t a) {
      FastBlock& b = blocks[active[a]];
      if (!b.init_done) {
        simd::Vi vis0{0, 0, 0, 0};
        fused_visibility(b.frames, table.position_ecef_km(b.sat, 0),
                         b.sin_mask, &vis0);
        for (std::size_t l = 0; l < b.lanes; ++l)
          scans[b.pair[l]].record_init(vis0[l] != 0, grid.time(0));
        b.init_done = true;
      }
      while (b.next_k < chunk_end) {
        const std::size_t k = b.next_k;
        const JulianDate t = grid.time(k);
        const Vec3& pos = table.position_ecef_km(b.sat, k);
        const double inv_d = 1.0 / table.distance_km(b.sat, k);
        const simd::Vd cos_gamma =
            (simd::broadcast(pos.x) * b.ux + simd::broadcast(pos.y) * b.uy +
             simd::broadcast(pos.z) * b.uz) *
            simd::broadcast(inv_d);
        const simd::Vi culled = cos_gamma < b.cos_vis;

        std::size_t advance = 1;
        simd::Vi vis_mask{0, 0, 0, 0};
        if (simd::all(culled)) {
          // Every lane provably below its mask: jump by the weakest
          // lane's margin (each lane is guaranteed invisible at least
          // that long, so no transition can hide inside the skip).
          const simd::Vd steps = (b.cos_vis - cos_gamma) * b.inv_omega_step;
          double min_steps = steps[0];
          for (std::size_t l = 1; l < b.lanes; ++l)
            min_steps = std::min(min_steps, steps[l]);
          if (min_steps > 1.0)
            advance = std::min(static_cast<std::size_t>(min_steps),
                               total - k);
        } else {
          fused_visibility(b.frames, pos, b.sin_mask, &vis_mask);
          vis_mask &= ~culled;
        }

        for (std::size_t l = 0; l < b.lanes; ++l) {
          PairScan& p = scans[b.pair[l]];
          ++p.visited;
          p.culled += advance - 1;
          if (culled[l] != 0)
            ++p.cull_decisions;
          else
            ++p.exact_evals;
          p.record_sample(vis_mask[l] != 0, t, step_days,
                          opts.refine_tolerance_s);
        }
        b.next_k = k + advance;
      }
    };

    const auto scan_one = [&](std::size_t a) {
      PairScan& p = scans[active[a]];
      // Sample 0 (init), then the shared grid walk from pair_scan.h.
      if (!p.init_done) p.init(view, 0);
      p.scan(view, chunk_end, total, step_days, step_s,
             opts.refine_tolerance_s);
    };
    if (mode == PropagationMode::kFast) {
      if (pool != nullptr && active.size() > 1) {
        pool->parallel_for(active.size(), scan_block);
      } else {
        for (std::size_t a = 0; a < active.size(); ++a) scan_block(a);
      }
    } else {
      if (pool != nullptr && active.size() > 1) {
        pool->parallel_for(active.size(), scan_one);
      } else {
        for (std::size_t a = 0; a < active.size(); ++a) scan_one(a);
      }
    }
  }

  // Windows still open at jd_end: truncate, exactly like predict_passes.
  const auto finalize_one = [&](std::size_t i) { scans[i].finalize(jd_end); };
  if (pool != nullptr) {
    pool->parallel_for(scans.size(), finalize_one);
  } else {
    for (std::size_t i = 0; i < scans.size(); ++i) finalize_one(i);
  }

  if (metrics != nullptr) {
    std::uint64_t visited = 0, culled = 0, cull_decisions = 0, exact = 0;
    for (const PairScan& p : scans) {
      visited += p.visited;
      culled += p.culled;
      cull_decisions += p.cull_decisions;
      exact += p.exact_evals;
    }
    const std::uint64_t done = table.propagations();
    const std::uint64_t naive =
        static_cast<std::uint64_t>(pairs.size()) * total;
    metrics->counter("orbit.ephemeris.propagations").add(done);
    metrics->counter("orbit.ephemeris.propagations_avoided")
        .add(naive > done ? naive - done : 0);
    metrics->counter("orbit.ephemeris.samples_visited").add(visited);
    metrics->counter("orbit.ephemeris.samples_culled").add(culled);
    metrics->counter("orbit.ephemeris.cull_decisions").add(cull_decisions);
    metrics->counter("orbit.ephemeris.exact_elevations").add(exact);
    metrics->gauge("orbit.simd.mode")
        .set(mode == PropagationMode::kFast ? 1.0 : 0.0);
    if (mode == PropagationMode::kFast) {
      metrics->counter("orbit.simd.lanes_filled")
          .add(table.simd_lanes_filled());
      metrics->counter("orbit.simd.scalar_fallbacks")
          .add(table.simd_scalar_fallbacks());
    }
  }

  for (std::size_t i = 0; i < scans.size(); ++i)
    out[i] = std::move(scans[i].windows);
  return out;
}

/// One retained horizon segment: its slice of the rolling grid plus the
/// shared ephemeris over it, built eagerly at append time. `first` is
/// the absolute index of grid sample 0 (chunk boundaries are always
/// multiples of chunk_samples, so absolute -> chunk lookup is a divide).
struct RollingEphemeris::Chunk {
  Chunk(const std::vector<const Sgp4*>& satellites,
        std::vector<JulianDate> times, double step_s, std::size_t first_abs,
        PropagationMode mode, sim::ThreadPool* pool)
      : grid(std::move(times), step_s), table(satellites, grid, mode),
        first(first_abs) {
    table.build(0, grid.size(), pool);
  }

  ScanGrid grid;
  EphemerisTable table;
  std::size_t first;
};

namespace {

/// Adapts the retained chunk deque to the PairScanState view concept:
/// absolute sample index -> owning chunk -> local table lookup.
struct RollingView {
  const RollingEphemeris* engine;
  [[nodiscard]] JulianDate time(std::size_t k) const {
    return engine->sample_time(k);
  }
  [[nodiscard]] const Vec3& position(std::size_t s, std::size_t k) const {
    return engine->sample_position_ecef_km(s, k);
  }
  [[nodiscard]] double distance(std::size_t s, std::size_t k) const {
    return engine->sample_distance_km(s, k);
  }
};

}  // namespace

RollingEphemeris::RollingEphemeris(std::vector<const Sgp4*> satellites,
                                   JulianDate anchor_jd)
    : RollingEphemeris(std::move(satellites), anchor_jd, Options{}) {}

RollingEphemeris::RollingEphemeris(std::vector<const Sgp4*> satellites,
                                   JulianDate anchor_jd, const Options& opts)
    : satellites_(std::move(satellites)), opts_(opts), anchor_jd_(anchor_jd),
      step_days_(opts.coarse_step_s / kSecondsPerDay) {
  if (opts_.coarse_step_s <= 0.0)
    throw std::invalid_argument("RollingEphemeris: nonpositive step");
  if (opts_.chunk_samples == 0)
    throw std::invalid_argument("RollingEphemeris: zero chunk_samples");
  for (const Sgp4* sat : satellites_)
    if (sat == nullptr)
      throw std::invalid_argument("RollingEphemeris: null propagator");
  bounds_.resize(satellites_.size());
  if (opts_.cull)
    for (std::size_t s = 0; s < satellites_.size(); ++s)
      bounds_[s] = satellite_cull_bounds(*satellites_[s]);
}

RollingEphemeris::~RollingEphemeris() = default;

void RollingEphemeris::append_chunk(sim::ThreadPool* pool,
                                    AdvanceStats* stats) {
  std::vector<JulianDate> times;
  times.reserve(opts_.chunk_samples);
  if (next_index_ == 0) {
    last_time_ = anchor_jd_;
    times.push_back(anchor_jd_);
  }
  // The exact accumulation a fresh full-span ScanGrid performs — NOT
  // anchor + k * step. Continuing it from the last retained sample is
  // what makes retained times bitwise equal to a fresh grid's.
  JulianDate jd = last_time_;
  while (times.size() < opts_.chunk_samples) {
    jd += step_days_;
    times.push_back(jd);
  }
  last_time_ = jd;
  const std::size_t first_abs = next_index_;
  next_index_ += times.size();
  auto chunk = std::make_unique<Chunk>(satellites_, std::move(times),
                                       opts_.coarse_step_s, first_abs,
                                       opts_.mode, pool);
  propagations_ += chunk->table.propagations();
  if (stats != nullptr) {
    ++stats->chunks_appended;
    stats->propagations += chunk->table.propagations();
  }
  chunks_.push_back(std::move(chunk));
}

RollingEphemeris::AdvanceStats RollingEphemeris::advance(
    JulianDate retire_before, JulianDate cover_until, sim::ThreadPool* pool) {
  AdvanceStats stats;
  while (chunks_.empty() || last_time_ < cover_until)
    append_chunk(pool, &stats);
  // Retire from the trailing edge: the front chunk goes once the NEXT
  // chunk still covers retire_before, so the horizon never loses "now".
  while (chunks_.size() > 1 && chunks_[1]->grid.start() <= retire_before) {
    chunks_.pop_front();
    ++base_chunk_;
    ++stats.chunks_retired;
  }
  return stats;
}

JulianDate RollingEphemeris::start_time() const {
  if (chunks_.empty())
    throw std::logic_error("RollingEphemeris: empty horizon");
  return chunks_.front()->grid.start();
}

JulianDate RollingEphemeris::end_time() const {
  if (chunks_.empty())
    throw std::logic_error("RollingEphemeris: empty horizon");
  return chunks_.back()->grid.end();
}

std::size_t RollingEphemeris::base_index() const noexcept {
  return chunks_.empty() ? next_index_ : chunks_.front()->first;
}

const RollingEphemeris::Chunk& RollingEphemeris::chunk_for(
    std::size_t k) const {
  if (k < base_index() || k >= next_index_)
    throw std::out_of_range("RollingEphemeris: sample index outside horizon");
  return *chunks_[k / opts_.chunk_samples - base_chunk_];
}

JulianDate RollingEphemeris::sample_time(std::size_t k) const {
  const Chunk& c = chunk_for(k);
  return c.grid.time(k - c.first);
}

const Vec3& RollingEphemeris::sample_position_ecef_km(std::size_t s,
                                                      std::size_t k) const {
  const Chunk& c = chunk_for(k);
  return c.table.position_ecef_km(s, k - c.first);
}

double RollingEphemeris::sample_distance_km(std::size_t s,
                                            std::size_t k) const {
  const Chunk& c = chunk_for(k);
  return c.table.distance_km(s, k - c.first);
}

std::size_t RollingEphemeris::nearest_index(JulianDate jd) const {
  const std::size_t base = base_index();
  if (jd <= start_time()) return base;
  if (jd >= last_time_) return next_index_ - 1;
  const double offset = (jd - start_time()) / step_days_;
  return std::min(base + static_cast<std::size_t>(offset + 0.5),
                  next_index_ - 1);
}

std::size_t RollingEphemeris::resident_bytes() const noexcept {
  const std::size_t n = satellites_.size();
  std::size_t bytes = 0;
  for (const auto& c : chunks_) {
    const std::size_t m = c->grid.size();
    bytes += m * sizeof(JulianDate)                 // grid times
             + m * sizeof(double)                   // shared GMST
             + n * m * (sizeof(Vec3) + sizeof(double));  // positions+dists
  }
  return bytes;
}

std::vector<ContactWindow> RollingEphemeris::scan_satellite(
    std::size_t satellite, const GridObserver& observer,
    const PassPredictionOptions& opts) const {
  if (satellite >= satellites_.size())
    throw std::out_of_range("RollingEphemeris: satellite index out of range");
  if (chunks_.empty())
    throw std::logic_error(
        "RollingEphemeris: scan on empty horizon (advance() first)");
  if (opts.coarse_step_s != opts_.coarse_step_s)
    throw std::invalid_argument(
        "RollingEphemeris: query coarse_step_s must match the rolling grid");

  const double mask = std::isnan(observer.min_elevation_deg)
                          ? opts.min_elevation_deg
                          : observer.min_elevation_deg;
  // Same per-pair cull setup as scan_pass_pairs.
  ObserverCullGeometry geometry;
  double gamma_vis = kPi;
  double omega_max = 0.0;
  bool cull_enabled = false;
  if (opts_.cull) {
    geometry = observer_cull_geometry(observer.location);
    if (bounds_[satellite].valid) {
      gamma_vis = horizon_cone_half_angle_rad(
          geometry, bounds_[satellite].max_distance_km, mask);
      omega_max = bounds_[satellite].max_angular_rate_rad_s;
      cull_enabled = gamma_vis < kPi && omega_max > 0.0;
    }
  }

  PairScanState p(*satellites_[satellite], observer.location, mask, &geometry,
                  gamma_vis, omega_max, cull_enabled, satellite);
  const RollingView view{this};
  const std::size_t end = next_index_;
  p.init(view, base_index());
  p.scan(view, end, end, step_days_, opts_.coarse_step_s,
         opts.refine_tolerance_s);
  p.finalize(end_time());
  return std::move(p.windows);
}

std::vector<std::vector<ContactWindow>> RollingEphemeris::scan_observer(
    const GridObserver& observer, const PassPredictionOptions& opts) const {
  std::vector<std::vector<ContactWindow>> out(satellites_.size());
  for (std::size_t s = 0; s < satellites_.size(); ++s)
    out[s] = scan_satellite(s, observer, opts);
  return out;
}

}  // namespace sinet::orbit
