#include "orbit/ephemeris.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <stdexcept>
#include <utility>

#include "obs/metrics.h"
#include "obs/scoped_timer.h"
#include "orbit/frames.h"
#include "orbit/look_angles.h"
#include "orbit/tle.h"
#include "sim/thread_pool.h"

namespace sinet::orbit {

ScanGrid::ScanGrid(JulianDate jd_start, JulianDate jd_end,
                   double coarse_step_s) {
  if (jd_end < jd_start)
    throw std::invalid_argument("ScanGrid: jd_end < jd_start");
  if (coarse_step_s <= 0.0)
    throw std::invalid_argument("ScanGrid: nonpositive step");
  start_ = jd_start;
  end_ = jd_end;
  step_s_ = coarse_step_s;
  step_days_ = coarse_step_s / kSecondsPerDay;
  // Exactly predict_passes' sample times: the same float accumulation
  // (jd += step_days) with the same clamp, NOT jd_start + k * step.
  times_.push_back(jd_start);
  for (JulianDate jd = jd_start + step_days_;; jd += step_days_) {
    const JulianDate t = std::min(jd, jd_end);
    times_.push_back(t);
    if (t >= jd_end) break;
  }
}

EphemerisTable::EphemerisTable(const std::vector<const Sgp4*>& satellites,
                               const ScanGrid& grid)
    : satellites_(&satellites), grid_(&grid) {}

void EphemerisTable::build(std::size_t first, std::size_t count,
                           sim::ThreadPool* pool,
                           const std::vector<std::size_t>* row_start) {
  built_first_ = first;
  built_count_ = count;
  const std::size_t chunk_end = first + count;
  // One GMST per timestep, shared by every satellite's rotation.
  gmst_.resize(count);
  for (std::size_t i = 0; i < count; ++i)
    gmst_[i] = gmst_rad(grid_->time(first + i));

  const std::size_t n = satellites_->size();
  positions_.resize(n * count);
  distances_.resize(n * count);

  const auto row_begin = [&](std::size_t s) {
    return row_start == nullptr ? first : std::max(first, (*row_start)[s]);
  };
  const auto fill_row = [&](std::size_t s) {
    const std::size_t begin = row_begin(s);
    if (begin >= chunk_end) return;  // satellite not needed this chunk
    const Sgp4& prop = *(*satellites_)[s];
    Vec3* pos = &positions_[s * count];
    double* dist = &distances_[s * count];
    for (std::size_t k = begin; k < chunk_end; ++k) {
      const TemeState st = prop.at_jd(grid_->time(k));
      const Vec3 p = teme_to_ecef_position_gmst(st.position_km,
                                                gmst_[k - first]);
      pos[k - first] = p;
      dist[k - first] = p.norm();
    }
  };

  if (pool != nullptr && n > 1) {
    pool->parallel_for(n, fill_row);
  } else {
    for (std::size_t s = 0; s < n; ++s) fill_row(s);
  }
  for (std::size_t s = 0; s < n; ++s) {
    const std::size_t begin = row_begin(s);
    if (begin < chunk_end) propagations_ += chunk_end - begin;
  }
}

SatelliteCullBounds satellite_cull_bounds(const Sgp4& prop) {
  SatelliteCullBounds b;
  const double a_km = prop.semi_major_axis_er() * kEarthRadiusKm;
  const double e = prop.eccentricity();
  if (!(a_km > 0.0) || !(e >= 0.0) || e >= 1.0) return b;
  const double r_apogee = a_km * (1.0 + e) + kCullRadialMarginKm;
  const double r_perigee = a_km * (1.0 - e) - kCullRadialMarginKm;
  // Culling buys nothing (and the rate bound degenerates) for orbits
  // that graze the surface; leave it off and scan exactly.
  if (!(r_perigee > 0.5 * kEarthRadiusKm)) return b;
  // Vis-viva at the (margin-lowered) perigee bounds the inertial speed;
  // dividing by the same perigee radius bounds the geocentric angular
  // rate. Earth rotation adds at most its full rate in the fixed frame.
  const double v_sq = kMuEarthKm3PerS2 * (2.0 / r_perigee - 1.0 / a_km);
  if (!(v_sq > 0.0)) return b;
  b.max_distance_km = r_apogee;
  b.max_angular_rate_rad_s =
      kCullRateSafety * std::sqrt(v_sq) / r_perigee + kEarthRotationRadPerSec;
  b.valid = true;
  return b;
}

ObserverCullGeometry observer_cull_geometry(const Geodetic& observer) {
  const TopocentricFrame frame(observer);
  ObserverCullGeometry g;
  g.radius_km = frame.obs_ecef_km.norm();
  g.unit_ecef = g.radius_km > 0.0 ? frame.obs_ecef_km * (1.0 / g.radius_km)
                                  : Vec3{0.0, 0.0, 1.0};
  // Angle between the geodetic vertical (defines the elevation mask) and
  // the geocentric direction the cone test measures against; <= ~0.2 deg
  // anywhere on WGS-84.
  const Vec3 up{frame.cos_lat * frame.cos_lon, frame.cos_lat * frame.sin_lon,
                frame.sin_lat};
  g.vertical_deflection_rad =
      std::acos(std::clamp(up.dot(g.unit_ecef), -1.0, 1.0));
  return g;
}

double horizon_cone_half_angle_rad(const ObserverCullGeometry& observer,
                                   double max_distance_km, double mask_deg) {
  if (!(max_distance_km > 0.0) || !(observer.radius_km > 0.0)) return kPi;
  // Effective mask: the geodetic mask lowered by the vertical deflection
  // (so the geocentric test is conservative for the geodetic elevation)
  // and by the float-error pad.
  const double eps = mask_deg * kDegToRad - observer.vertical_deflection_rad -
                     kCullAngularPadRad;
  if (!(eps > -0.5 * kPi)) return kPi;
  // At geocentric separation gamma and distance d <= d_max, the elevation
  // above the geocentric horizon satisfies
  //   sin(el_geo) = (d cos(gamma) - R_o) / |d_vec - o_vec|,
  // monotone decreasing in gamma and increasing in d. Solving
  // el_geo = eps at d = d_max for gamma:
  const double arg =
      std::clamp(observer.radius_km / max_distance_km * std::cos(eps), -1.0,
                 1.0);
  const double gamma = std::acos(arg) - eps;
  if (!std::isfinite(gamma)) return kPi;
  return std::clamp(gamma, 0.0, kPi);
}

namespace {

/// Scan state of one (satellite, observer) pair; persists across table
/// chunks so culling skips can cross chunk boundaries.
struct PairScan {
  PairScan(const Sgp4& prop, const Geodetic& observer_location, double mask,
           const ObserverCullGeometry* observer_geometry, double gamma_vis,
           double omega_max, bool cull_enabled, std::size_t satellite_row)
      : sampler(prop, observer_location), geometry(observer_geometry),
        mask_deg(mask), gamma_vis_rad(gamma_vis),
        omega_max_rad_s(omega_max), cull(cull_enabled), sat(satellite_row) {}

  ElevationSampler sampler;
  const ObserverCullGeometry* geometry;
  double mask_deg;
  double gamma_vis_rad;
  double omega_max_rad_s;
  bool cull;
  std::size_t sat;

  bool init_done = false;
  bool prev_vis = false;
  JulianDate window_start = 0.0;
  std::size_t next_k = 1;  // next grid sample this pair must visit
  std::vector<ContactWindow> windows;

  std::uint64_t visited = 0;
  std::uint64_t culled = 0;
  std::uint64_t cull_decisions = 0;
  std::uint64_t exact_evals = 0;
};

}  // namespace

std::vector<std::vector<ContactWindow>> scan_pass_pairs(
    const std::vector<const Sgp4*>& satellites,
    const std::vector<GridObserver>& observers,
    const std::vector<PairTask>& pairs, JulianDate jd_start,
    JulianDate jd_end, const PassPredictionOptions& opts,
    const EphemerisScanOptions& scan_opts, unsigned threads,
    obs::MetricsRegistry* metrics) {
  if (jd_end < jd_start)
    throw std::invalid_argument("scan_pass_pairs: jd_end < jd_start");
  if (opts.coarse_step_s <= 0.0)
    throw std::invalid_argument("scan_pass_pairs: nonpositive step");
  if (scan_opts.chunk_samples == 0)
    throw std::invalid_argument("scan_pass_pairs: zero chunk_samples");
  for (const Sgp4* sat : satellites)
    if (sat == nullptr)
      throw std::invalid_argument("scan_pass_pairs: null propagator");
  for (const PairTask& p : pairs)
    if (p.satellite >= satellites.size() || p.observer >= observers.size())
      throw std::out_of_range("scan_pass_pairs: pair index out of range");

  obs::ScopedTimer timer(
      metrics == nullptr
          ? nullptr
          : &metrics->histogram("orbit.ephemeris.scan_latency_ms", 0.0,
                                10000.0, 50));
  if (metrics != nullptr) {
    metrics->counter("orbit.ephemeris.scans").add(1);
    metrics->counter("orbit.ephemeris.pairs").add(pairs.size());
  }

  std::vector<std::vector<ContactWindow>> out(pairs.size());
  if (pairs.empty()) return out;

  const ScanGrid grid(jd_start, jd_end, opts.coarse_step_s);
  const std::size_t total = grid.size();
  const double step_days = grid.step_days();
  const double step_s = grid.step_s();

  std::vector<SatelliteCullBounds> bounds(satellites.size());
  if (scan_opts.cull)
    for (std::size_t s = 0; s < satellites.size(); ++s)
      bounds[s] = satellite_cull_bounds(*satellites[s]);

  std::vector<ObserverCullGeometry> geometry(observers.size());
  std::vector<double> masks(observers.size());
  for (std::size_t o = 0; o < observers.size(); ++o) {
    masks[o] = std::isnan(observers[o].min_elevation_deg)
                   ? opts.min_elevation_deg
                   : observers[o].min_elevation_deg;
    if (scan_opts.cull)
      geometry[o] = observer_cull_geometry(observers[o].location);
  }

  std::vector<PairScan> scans;
  scans.reserve(pairs.size());
  for (const PairTask& p : pairs) {
    double gamma_vis = kPi;
    double omega_max = 0.0;
    bool cull_enabled = false;
    if (scan_opts.cull && bounds[p.satellite].valid) {
      gamma_vis = horizon_cone_half_angle_rad(
          geometry[p.observer], bounds[p.satellite].max_distance_km,
          masks[p.observer]);
      omega_max = bounds[p.satellite].max_angular_rate_rad_s;
      cull_enabled = gamma_vis < kPi && omega_max > 0.0;
    }
    scans.emplace_back(*satellites[p.satellite],
                       observers[p.observer].location, masks[p.observer],
                       &geometry[p.observer], gamma_vis, omega_max,
                       cull_enabled, p.satellite);
  }

  sim::ThreadPool* pool = nullptr;
  std::optional<sim::ThreadPool> local;
  if (threads != 1 && pairs.size() > 1) {
    sim::ThreadPool& shared = sim::ThreadPool::shared();
    if (threads == 0 || threads == shared.size()) {
      pool = &shared;
    } else {
      local.emplace(threads);
      pool = &*local;
    }
  }

  EphemerisTable table(satellites, grid);
  constexpr std::size_t kUnused = std::numeric_limits<std::size_t>::max();
  std::vector<std::size_t> row_start(satellites.size());
  std::vector<std::size_t> active;
  active.reserve(scans.size());

  for (std::size_t first = 0; first < total;
       first += scan_opts.chunk_samples) {
    const std::size_t count = std::min(scan_opts.chunk_samples, total - first);
    const std::size_t chunk_end = first + count;

    active.clear();
    std::fill(row_start.begin(), row_start.end(), kUnused);
    for (std::size_t i = 0; i < scans.size(); ++i) {
      const PairScan& p = scans[i];
      // Every pair visits sample 0 (init) in the first chunk; afterwards
      // a pair is active only if its next sample lands in this chunk —
      // culling can have jumped it clean past it.
      const std::size_t from = p.init_done ? p.next_k : first;
      if (from >= chunk_end) continue;
      active.push_back(i);
      row_start[p.sat] = std::min(row_start[p.sat], from);
    }
    if (active.empty()) continue;

    table.build(first, count, pool, &row_start);

    const auto scan_one = [&](std::size_t a) {
      PairScan& p = scans[active[a]];
      if (!p.init_done) {
        // Sample 0, exactly as predict_passes evaluates it.
        const double el0 = elevation_from_ecef(
            p.sampler.frame(), table.position_ecef_km(p.sat, 0));
        p.prev_vis = el0 >= p.mask_deg;
        p.window_start = p.prev_vis ? grid.time(0) : 0.0;
        p.init_done = true;
        ++p.visited;
        ++p.exact_evals;
      }
      while (p.next_k < chunk_end) {
        const std::size_t k = p.next_k;
        const JulianDate t = grid.time(k);
        const Vec3& pos = table.position_ecef_km(p.sat, k);

        bool vis = false;
        bool decided = false;
        std::size_t advance = 1;
        if (p.cull) {
          const double d = table.distance_km(p.sat, k);
          const double cos_gamma = pos.dot(p.geometry->unit_ecef) / d;
          const double gamma =
              std::acos(std::clamp(cos_gamma, -1.0, 1.0));
          if (gamma > p.gamma_vis_rad) {
            // Provably below the mask here, and for at least margin_s:
            // the geocentric angle cannot close faster than omega_max.
            decided = true;
            ++p.cull_decisions;
            const double margin_s =
                (gamma - p.gamma_vis_rad) / p.omega_max_rad_s;
            const double steps = margin_s / step_s;
            if (steps > 1.0)
              advance = std::min(static_cast<std::size_t>(steps), total - k);
          }
        }
        if (!decided) {
          ++p.exact_evals;
          vis = elevation_from_ecef(p.sampler.frame(), pos) >= p.mask_deg;
        }
        ++p.visited;
        p.culled += advance - 1;

        // Identical transition handling (and refinement brackets) to
        // predict_passes; skipped samples are all proven invisible while
        // prev_vis is false, so no transition can hide inside a skip.
        if (vis && !p.prev_vis) {
          p.window_start =
              refine_mask_crossing(p.sampler, t - step_days, t, p.mask_deg,
                                   opts.refine_tolerance_s);
        } else if (!vis && p.prev_vis) {
          const JulianDate window_end =
              refine_mask_crossing(p.sampler, t - step_days, t, p.mask_deg,
                                   opts.refine_tolerance_s);
          ContactWindow w;
          w.aos_jd = p.window_start;
          w.los_jd = window_end;
          const auto [tca, elev] =
              refine_max_elevation(p.sampler, w.aos_jd, w.los_jd);
          w.tca_jd = tca;
          w.max_elevation_deg = elev;
          p.windows.push_back(w);
        }
        p.prev_vis = vis;
        p.next_k = k + advance;
      }
    };
    if (pool != nullptr && active.size() > 1) {
      pool->parallel_for(active.size(), scan_one);
    } else {
      for (std::size_t a = 0; a < active.size(); ++a) scan_one(a);
    }
  }

  // Windows still open at jd_end: truncate, exactly like predict_passes.
  const auto finalize_one = [&](std::size_t i) {
    PairScan& p = scans[i];
    if (!p.prev_vis) return;
    ContactWindow w;
    w.aos_jd = p.window_start;
    w.los_jd = jd_end;
    const auto [tca, elev] =
        refine_max_elevation(p.sampler, w.aos_jd, w.los_jd);
    w.tca_jd = tca;
    w.max_elevation_deg = elev;
    p.windows.push_back(w);
  };
  if (pool != nullptr) {
    pool->parallel_for(scans.size(), finalize_one);
  } else {
    for (std::size_t i = 0; i < scans.size(); ++i) finalize_one(i);
  }

  if (metrics != nullptr) {
    std::uint64_t visited = 0, culled = 0, cull_decisions = 0, exact = 0;
    for (const PairScan& p : scans) {
      visited += p.visited;
      culled += p.culled;
      cull_decisions += p.cull_decisions;
      exact += p.exact_evals;
    }
    const std::uint64_t done = table.propagations();
    const std::uint64_t naive =
        static_cast<std::uint64_t>(pairs.size()) * total;
    metrics->counter("orbit.ephemeris.propagations").add(done);
    metrics->counter("orbit.ephemeris.propagations_avoided")
        .add(naive > done ? naive - done : 0);
    metrics->counter("orbit.ephemeris.samples_visited").add(visited);
    metrics->counter("orbit.ephemeris.samples_culled").add(culled);
    metrics->counter("orbit.ephemeris.cull_decisions").add(cull_decisions);
    metrics->counter("orbit.ephemeris.exact_elevations").add(exact);
  }

  for (std::size_t i = 0; i < scans.size(); ++i)
    out[i] = std::move(scans[i].windows);
  return out;
}

}  // namespace sinet::orbit
