// WGS-72 gravitational constants in the SGP4/TLE convention, shared by
// the scalar propagator (orbit/sgp4.cpp) and the SoA batch propagator
// (orbit/sgp4_batch.cpp) so the two cannot drift. Values per Spacetrack
// Report #3 / Vallado 2006.
#pragma once

namespace sinet::orbit::sgp4c {

inline constexpr double kXke = 0.0743669161;      // sqrt(mu) in (er/min)^(3/2)
inline constexpr double kXkmper = 6378.135;       // earth radius, km
inline constexpr double kJ2 = 1.082616e-3;
inline constexpr double kJ3 = -2.53881e-6;
inline constexpr double kJ4 = -1.65597e-6;
inline constexpr double kCk2 = 0.5 * kJ2;         // ae = 1
inline constexpr double kCk4 = -0.375 * kJ4;
inline constexpr double kQoms2t = 1.88027916e-9;  // ((q0 - s)*ae)^4
inline constexpr double kS = 1.01222928;          // s = ae + 78/xkmper
inline constexpr double kAe = 1.0;

}  // namespace sinet::orbit::sgp4c
