#include "orbit/sgp4_batch.h"

#include <cmath>
#include <stdexcept>

#include "orbit/sgp4_constants.h"
#include "orbit/simd.h"

namespace sinet::orbit {

namespace {

using simd::broadcast;
using simd::kLanes;
using simd::select;
using simd::Vd;
using simd::Vi;

static_assert(Sgp4Batch::kLaneWidth == simd::kLanes,
              "Sgp4Batch lane width must match the SIMD vector width");

[[nodiscard]] inline Vd load(const std::vector<double>& v,
                             std::size_t lane0) noexcept {
  return Vd{v[lane0], v[lane0 + 1], v[lane0 + 2], v[lane0 + 3]};
}

// sin/cos of a small correction angle (the short-period periodics are
// < ~1e-3 rad), 5th/4th-order Maclaurin: absolute error < 1e-22 there.
inline void small_angle_sincos(Vd d, Vd* s, Vd* c) noexcept {
  const Vd d2 = d * d;
  *s = d * (broadcast(1.0) -
            d2 * broadcast(1.0 / 6.0) * (broadcast(1.0) - d2 * broadcast(0.05)));
  *c = broadcast(1.0) -
       d2 * broadcast(0.5) * (broadcast(1.0) - d2 * broadcast(1.0 / 12.0));
}

struct GroupResult {
  Vd x, y, z, dist;
  Vi ok;  // all-ones lanes are physical
};

// The whole near-earth SGP4 evaluation for one lane group, vectorized.
// `b` mirrors Sgp4::at() (orbit/sgp4.cpp) term by term — keep the two in
// sync when touching either. Marked for function multiversioning so the
// loader picks an AVX2/AVX-512 build on capable hosts.
SINET_SIMD_TARGET_CLONES
GroupResult propagate_lanes(std::size_t lane0, JulianDate jd, double gmst,
                            const std::vector<double>& epoch_jd,
                            const std::vector<double>& argp0,
                            const std::vector<double>& m0,
                            const std::vector<double>& raan0,
                            const std::vector<double>& e0,
                            const std::vector<double>& bstar,
                            const std::vector<double>& aodp,
                            const std::vector<double>& xnodp,
                            const std::vector<double>& cosio,
                            const std::vector<double>& sinio,
                            const std::vector<double>& x3thm1,
                            const std::vector<double>& x1mth2,
                            const std::vector<double>& x7thm1,
                            const std::vector<double>& eta,
                            const std::vector<double>& c1,
                            const std::vector<double>& c4,
                            const std::vector<double>& c5,
                            const std::vector<double>& d2,
                            const std::vector<double>& d3,
                            const std::vector<double>& d4,
                            const std::vector<double>& xmdot,
                            const std::vector<double>& omgdot,
                            const std::vector<double>& xnodot,
                            const std::vector<double>& xnodcf,
                            const std::vector<double>& omgcof,
                            const std::vector<double>& xmcof,
                            const std::vector<double>& t2cof,
                            const std::vector<double>& t3cof,
                            const std::vector<double>& t4cof,
                            const std::vector<double>& t5cof,
                            const std::vector<double>& xlcof,
                            const std::vector<double>& aycof,
                            const std::vector<double>& delmo,
                            const std::vector<double>& sinmo,
                            const std::vector<double>& nonsimple) {
  const Vd one = broadcast(1.0);

  const Vd ts =
      (broadcast(jd) - load(epoch_jd, lane0)) * broadcast(kMinutesPerDay);
  const Vd ns = load(nonsimple, lane0);

  // --- Secular gravity and atmospheric drag ---
  const Vd xmdf = load(m0, lane0) + load(xmdot, lane0) * ts;
  const Vd omgadf = load(argp0, lane0) + load(omgdot, lane0) * ts;
  const Vd xnoddf = load(raan0, lane0) + load(xnodot, lane0) * ts;
  const Vd tsq = ts * ts;
  const Vd xnode = xnoddf + load(xnodcf, lane0) * tsq;
  Vd tempa = one - load(c1, lane0) * ts;
  Vd tempe = load(bstar, lane0) * load(c4, lane0) * ts;
  Vd templ = load(t2cof, lane0) * tsq;

  // Lane-masked `simple_` handling: the low-perigee truncation zeroes
  // the corrections through `ns` instead of branching, so both element
  // flavors ride in one group.
  Vd sin_xmdf, cos_xmdf;
  simd::vsincos(xmdf, &sin_xmdf, &cos_xmdf);
  const Vd etacos = one + load(eta, lane0) * cos_xmdf;
  const Vd delm =
      load(xmcof, lane0) * (etacos * etacos * etacos - load(delmo, lane0));
  const Vd corr = ns * (load(omgcof, lane0) * ts + delm);
  const Vd xmp = xmdf + corr;
  const Vd omega = omgadf - corr;
  const Vd tcube = tsq * ts;
  const Vd tfour = ts * tcube;
  tempa = tempa - ns * (load(d2, lane0) * tsq + load(d3, lane0) * tcube +
                        load(d4, lane0) * tfour);
  Vd sin_xmp, cos_xmp;
  simd::vsincos(xmp, &sin_xmp, &cos_xmp);
  tempe = tempe + ns * load(bstar, lane0) * load(c5, lane0) *
                      (sin_xmp - load(sinmo, lane0));
  templ = templ + ns * (load(t3cof, lane0) * tcube + load(t4cof, lane0) * tfour +
                        load(t5cof, lane0) * tfour * ts);

  const Vd a = load(aodp, lane0) * tempa * tempa;
  const Vd e = load(e0, lane0) - tempe;
  Vi ok = (e < one) & (e >= broadcast(-0.001)) & (a > broadcast(0.0));
  const Vd e_clamped = simd::vmax(e, broadcast(1e-6));
  const Vd xl = xmp + omega + xnode + load(xnodp, lane0) * templ;

  // --- Long period periodics ---
  Vd sin_omega, cos_omega;
  simd::vsincos(omega, &sin_omega, &cos_omega);
  const Vd axn = e_clamped * cos_omega;
  const Vd beta2 = one - e_clamped * e_clamped;
  const Vd temp_lp = one / (a * beta2);
  const Vd xll = temp_lp * load(xlcof, lane0) * axn;
  const Vd aynl = temp_lp * load(aycof, lane0);
  const Vd xlt = xl + xll;
  const Vd ayn = e_clamped * sin_omega + aynl;

  // --- Kepler's equation, all lanes to convergence ---
  // capu is a 2*pi-shifted representative of the scalar wrap_two_pi
  // value; the converged anomaly differs by the same multiple, which
  // cancels in the trig below.
  const Vd capu = simd::vwrap_pi(xlt - xnode);
  Vd epw = capu;
  Vi converged = Vi{0, 0, 0, 0};
  for (int i = 0; i < 10; ++i) {
    Vd sinepw, cosepw;
    simd::vsincos(epw, &sinepw, &cosepw);
    const Vd t5 = axn * cosepw;
    const Vd t6 = ayn * sinepw;
    const Vd next =
        (capu - ayn * cosepw + axn * sinepw - epw) / (one - t5 - t6) + epw;
    const Vi newly = simd::vabs(next - epw) <= broadcast(1e-12);
    epw = select(converged, epw, next);
    converged |= newly;
    if (simd::all(converged)) break;
  }
  Vd sinepw, cosepw;
  simd::vsincos(epw, &sinepw, &cosepw);
  const Vd t3 = axn * sinepw;
  const Vd t4 = ayn * cosepw;
  const Vd t5 = axn * cosepw;
  const Vd t6 = ayn * sinepw;

  // --- Short period preliminary quantities ---
  const Vd ecose = t5 + t6;
  const Vd esine = t3 - t4;
  const Vd elsq = axn * axn + ayn * ayn;
  const Vd pl = a * (one - elsq);
  ok &= pl >= broadcast(0.0);
  const Vd r = a * (one - ecose);
  const Vd invr = one / r;
  const Vd temp_sp = a * invr;
  const Vd betal = simd::vsqrt(one - elsq);
  const Vd t3inv = one / (one + betal);
  const Vd cosu = temp_sp * (cosepw - axn + ayn * esine * t3inv);
  const Vd sinu = temp_sp * (sinepw - ayn - axn * esine * t3inv);
  // Instead of u = atan2(sinu, cosu) then sin/cos(u - duk), normalize
  // (sinu, cosu) — they are cos/sin of a true angle up to rounding — and
  // rotate by the small short-period correction angle directly.
  const Vd inv_rho = one / simd::vsqrt(sinu * sinu + cosu * cosu);
  const Vd su = sinu * inv_rho;
  const Vd cu = cosu * inv_rho;
  const Vd sin2u = (sinu + sinu) * cosu;
  const Vd cos2u = (cosu + cosu) * cosu - one;
  const Vd invpl = one / pl;
  const Vd tk1 = broadcast(sgp4c::kCk2) * invpl;
  const Vd tk2 = tk1 * invpl;

  // --- Short period periodics ---
  const Vd rk =
      r * (one - broadcast(1.5) * tk2 * betal * load(x3thm1, lane0)) +
      broadcast(0.5) * tk1 * load(x1mth2, lane0) * cos2u;
  ok &= rk >= one;

  const Vd duk = broadcast(0.25) * tk2 * load(x7thm1, lane0) * sin2u;
  Vd sin_duk, cos_duk;
  small_angle_sincos(duk, &sin_duk, &cos_duk);
  const Vd sinuk = su * cos_duk - cu * sin_duk;
  const Vd cosuk = cu * cos_duk + su * sin_duk;

  const Vd dnod = broadcast(1.5) * tk2 * load(cosio, lane0) * sin2u;
  Vd sin_dnod, cos_dnod;
  small_angle_sincos(dnod, &sin_dnod, &cos_dnod);
  Vd sinnok, cosnok;
  {
    Vd snod, cnod;
    simd::vsincos(xnode, &snod, &cnod);
    sinnok = snod * cos_dnod + cnod * sin_dnod;
    cosnok = cnod * cos_dnod - snod * sin_dnod;
  }

  const Vd dinc =
      broadcast(1.5) * tk2 * load(cosio, lane0) * load(sinio, lane0) * cos2u;
  Vd sin_dinc, cos_dinc;
  small_angle_sincos(dinc, &sin_dinc, &cos_dinc);
  const Vd sinik = load(sinio, lane0) * cos_dinc + load(cosio, lane0) * sin_dinc;
  const Vd cosik = load(cosio, lane0) * cos_dinc - load(sinio, lane0) * sin_dinc;

  // --- Orientation vector and final ECEF state ---
  const Vd xmx = -sinnok * cosik;
  const Vd xmy = cosnok * cosik;
  const Vd scale = rk * broadcast(sgp4c::kXkmper);
  const Vd px = (xmx * sinuk + cosnok * cosuk) * scale;
  const Vd py = (xmy * sinuk + sinnok * cosuk) * scale;
  const Vd pz = sinik * sinuk * scale;

  // Batched TEME->ECEF: rotate by the shared per-step GMST.
  const Vd cg = broadcast(std::cos(gmst));
  const Vd sg = broadcast(std::sin(gmst));
  GroupResult out;
  out.x = cg * px + sg * py;
  out.y = cg * py - sg * px;
  out.z = pz;
  out.dist = simd::vsqrt(out.x * out.x + out.y * out.y + out.z * out.z);
  ok &= out.dist == out.dist;  // NaN screen for anything the above missed
  out.ok = ok;
  return out;
}

inline void fill(std::vector<double>& v, std::size_t i,
                 double value) noexcept {
  v[i] = value;
}

}  // namespace

Sgp4Batch::Sgp4Batch(const std::vector<const Sgp4*>& satellites) {
  if (satellites.empty())
    throw std::invalid_argument("Sgp4Batch: empty satellite set");
  for (const Sgp4* s : satellites)
    if (s == nullptr)
      throw std::invalid_argument("Sgp4Batch: null propagator");

  n_ = satellites.size();
  pad_n_ = (n_ + kLaneWidth - 1) / kLaneWidth * kLaneWidth;

  const auto alloc = [&](std::vector<double>& v) { v.resize(pad_n_); };
  for (std::vector<double>* v :
       {&epoch_jd_, &argp0_, &m0_, &raan0_, &e0_, &bstar_, &aodp_, &xnodp_,
        &cosio_, &sinio_, &x3thm1_, &x1mth2_, &x7thm1_, &eta_, &c1_, &c4_,
        &c5_, &d2_, &d3_, &d4_, &xmdot_, &omgdot_, &xnodot_, &xnodcf_,
        &omgcof_, &xmcof_, &t2cof_, &t3cof_, &t4cof_, &t5cof_, &xlcof_,
        &aycof_, &delmo_, &sinmo_, &nonsimple_})
    alloc(*v);

  for (std::size_t i = 0; i < pad_n_; ++i) {
    // Pad lanes replicate the group's first member so their arithmetic
    // stays finite; their status is never reported.
    const std::size_t src = i < n_ ? i : i / kLaneWidth * kLaneWidth;
    const Sgp4Coefficients c = satellites[src]->coefficients();
    fill(epoch_jd_, i, c.epoch_jd);
    fill(argp0_, i, c.argp0);
    fill(m0_, i, c.m0);
    fill(raan0_, i, c.raan0);
    fill(e0_, i, c.e0);
    fill(bstar_, i, c.bstar);
    fill(aodp_, i, c.aodp);
    fill(xnodp_, i, c.xnodp);
    fill(cosio_, i, c.cosio);
    fill(sinio_, i, c.sinio);
    fill(x3thm1_, i, c.x3thm1);
    fill(x1mth2_, i, c.x1mth2);
    fill(x7thm1_, i, c.x7thm1);
    fill(eta_, i, c.eta);
    fill(c1_, i, c.c1);
    fill(c4_, i, c.c4);
    fill(c5_, i, c.c5);
    fill(d2_, i, c.d2);
    fill(d3_, i, c.d3);
    fill(d4_, i, c.d4);
    fill(xmdot_, i, c.xmdot);
    fill(omgdot_, i, c.omgdot);
    fill(xnodot_, i, c.xnodot);
    fill(xnodcf_, i, c.xnodcf);
    fill(omgcof_, i, c.omgcof);
    fill(xmcof_, i, c.xmcof);
    fill(t2cof_, i, c.t2cof);
    fill(t3cof_, i, c.t3cof);
    fill(t4cof_, i, c.t4cof);
    fill(t5cof_, i, c.t5cof);
    fill(xlcof_, i, c.xlcof);
    fill(aycof_, i, c.aycof);
    fill(delmo_, i, c.delmo);
    fill(sinmo_, i, c.sinmo);
    fill(nonsimple_, i, c.simple ? 0.0 : 1.0);
  }
}

bool Sgp4Batch::propagate_group_ecef(std::size_t group, JulianDate jd,
                                     double gmst, double* x_km, double* y_km,
                                     double* z_km, double* dist_km,
                                     LaneStatus* status) const {
  const std::size_t lane0 = group * kLaneWidth;
  const GroupResult res = propagate_lanes(
      lane0, jd, gmst, epoch_jd_, argp0_, m0_, raan0_, e0_, bstar_,
      aodp_, xnodp_, cosio_, sinio_, x3thm1_, x1mth2_, x7thm1_, eta_, c1_,
      c4_, c5_, d2_, d3_, d4_, xmdot_, omgdot_, xnodot_, xnodcf_, omgcof_,
      xmcof_, t2cof_, t3cof_, t4cof_, t5cof_, xlcof_, aycof_, delmo_, sinmo_,
      nonsimple_);

  const std::size_t members = group_members(group);
  bool all_ok = true;
  for (std::size_t l = 0; l < members; ++l) {
    x_km[l] = res.x[l];
    y_km[l] = res.y[l];
    z_km[l] = res.z[l];
    dist_km[l] = res.dist[l];
    if (res.ok[l] != 0) {
      status[l] = LaneStatus::kOk;
    } else {
      status[l] = LaneStatus::kError;
      all_ok = false;
    }
  }
  return all_ok;
}

}  // namespace sinet::orbit
