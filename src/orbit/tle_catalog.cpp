#include "orbit/tle_catalog.h"

#include <stdexcept>

namespace sinet::orbit {

namespace {

std::string rstrip(std::string s) {
  while (!s.empty() && (s.back() == '\r' || s.back() == '\n' ||
                        s.back() == ' ' || s.back() == '\t'))
    s.pop_back();
  return s;
}

bool looks_like_element_line(const std::string& s, char which) {
  return s.size() >= 2 && s[0] == which && s[1] == ' ';
}

}  // namespace

std::vector<Tle> read_tle_catalog(std::istream& is) {
  std::vector<Tle> out;
  std::string line;
  std::string pending_name;
  std::string line1;
  std::size_t line_no = 0;
  std::size_t line1_no = 0;

  while (std::getline(is, line)) {
    ++line_no;
    line = rstrip(line);
    if (line.empty()) continue;

    if (looks_like_element_line(line, '1')) {
      if (!line1.empty())
        throw std::invalid_argument(
            "TLE catalog: two consecutive line-1 entries at line " +
            std::to_string(line_no));
      line1 = line;
      line1_no = line_no;
    } else if (looks_like_element_line(line, '2')) {
      if (line1.empty())
        throw std::invalid_argument(
            "TLE catalog: line 2 without a preceding line 1 at line " +
            std::to_string(line_no));
      try {
        out.push_back(parse_tle(pending_name, line1, line));
      } catch (const std::invalid_argument& e) {
        throw std::invalid_argument("TLE catalog: entry ending at line " +
                                    std::to_string(line_no) + ": " +
                                    e.what());
      }
      pending_name.clear();
      line1.clear();
    } else {
      // A name line for the next entry.
      if (!line1.empty())
        throw std::invalid_argument(
            "TLE catalog: name line between element lines at line " +
            std::to_string(line_no));
      pending_name = line;
    }
  }
  if (!line1.empty())
    throw std::invalid_argument(
        "TLE catalog: dangling line 1 at line " + std::to_string(line1_no));
  return out;
}

void write_tle_catalog(std::ostream& os, const std::vector<Tle>& catalog) {
  for (const Tle& tle : catalog) {
    if (!tle.name.empty()) os << tle.name << '\n';
    const TleLines lines = format_tle(tle);
    os << lines.line1 << '\n' << lines.line2 << '\n';
  }
}

}  // namespace sinet::orbit
