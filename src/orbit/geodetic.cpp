#include "orbit/geodetic.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "orbit/time.h"

namespace sinet::orbit {

Vec3 geodetic_to_ecef(const Geodetic& g) {
  if (g.latitude_deg < -90.0 || g.latitude_deg > 90.0)
    throw std::invalid_argument("geodetic_to_ecef: latitude out of range");
  const double lat = g.latitude_deg * kDegToRad;
  const double lon = g.longitude_deg * kDegToRad;
  const double e2 = kWgs84Flattening * (2.0 - kWgs84Flattening);
  const double sin_lat = std::sin(lat);
  const double n =
      kWgs84SemiMajorKm / std::sqrt(1.0 - e2 * sin_lat * sin_lat);
  const double cos_lat = std::cos(lat);
  return {(n + g.altitude_km) * cos_lat * std::cos(lon),
          (n + g.altitude_km) * cos_lat * std::sin(lon),
          (n * (1.0 - e2) + g.altitude_km) * sin_lat};
}

Geodetic ecef_to_geodetic(const Vec3& p) {
  const double e2 = kWgs84Flattening * (2.0 - kWgs84Flattening);
  const double rho = std::hypot(p.x, p.y);
  double lat = std::atan2(p.z, rho * (1.0 - e2));  // initial guess
  double n = kWgs84SemiMajorKm;
  double alt = 0.0;
  for (int i = 0; i < 8; ++i) {
    const double sin_lat = std::sin(lat);
    n = kWgs84SemiMajorKm / std::sqrt(1.0 - e2 * sin_lat * sin_lat);
    alt = rho / std::cos(lat) - n;
    const double prev = lat;
    lat = std::atan2(p.z, rho * (1.0 - e2 * n / (n + alt)));
    if (std::abs(lat - prev) < 1e-12) break;
  }
  Geodetic g;
  g.latitude_deg = lat * kRadToDeg;
  g.longitude_deg = std::atan2(p.y, p.x) * kRadToDeg;
  g.altitude_km = alt;
  return g;
}

double great_circle_km(const Geodetic& a, const Geodetic& b) {
  const double la1 = a.latitude_deg * kDegToRad;
  const double la2 = b.latitude_deg * kDegToRad;
  const double dlat = la2 - la1;
  const double dlon = (b.longitude_deg - a.longitude_deg) * kDegToRad;
  const double s1 = std::sin(dlat / 2.0);
  const double s2 = std::sin(dlon / 2.0);
  const double h = s1 * s1 + std::cos(la1) * std::cos(la2) * s2 * s2;
  return 2.0 * kEarthMeanRadiusKm * std::asin(std::min(1.0, std::sqrt(h)));
}

}  // namespace sinet::orbit
