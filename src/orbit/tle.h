// Two-Line Element sets: parsing, serialization, and synthetic generation.
//
// The paper tracks satellites via TLEs fed to simplified-perturbation
// propagators (SGP4 family). We parse standard NORAD TLEs (with checksum
// validation) and can also synthesize a TLE from Keplerian elements — that
// is how the constellation catalog (paper Table 3) becomes propagatable
// without live CelesTrak access.
#pragma once

#include <string>
#include <string_view>

#include "orbit/time.h"

namespace sinet::orbit {

/// Orbital elements as encoded in a TLE (angles in degrees, mean motion in
/// revolutions/day, matching the wire format).
struct Tle {
  std::string name;           ///< line-0 satellite name (may be empty)
  int catalog_number = 0;     ///< NORAD id
  char classification = 'U';
  std::string intl_designator;  ///< e.g. "25001A"
  JulianDate epoch_jd = 0.0;    ///< UTC epoch
  double mean_motion_dot = 0.0;     ///< rev/day^2 /2 field (ndot/2)
  double mean_motion_ddot = 0.0;    ///< rev/day^3 /6 field (nddot/6)
  double bstar = 0.0;               ///< drag term, 1/earth-radii
  int element_set_number = 1;
  double inclination_deg = 0.0;
  double raan_deg = 0.0;        ///< right ascension of ascending node
  double eccentricity = 0.0;    ///< dimensionless, [0, 1)
  double arg_perigee_deg = 0.0;
  double mean_anomaly_deg = 0.0;
  double mean_motion_rev_day = 0.0;
  int revolution_number = 0;

  /// Orbital period in minutes.
  [[nodiscard]] double period_minutes() const;
  /// Semi-major axis (km) recovered from the mean motion (two-body).
  [[nodiscard]] double semi_major_axis_km() const;
  /// Mean altitude above a spherical Earth (km).
  [[nodiscard]] double mean_altitude_km() const;
  /// True if SGP4's deep-space branch would activate (period >= 225 min).
  [[nodiscard]] bool is_deep_space() const { return period_minutes() >= 225.0; }
};

/// Parse a TLE from its two element lines (and optional preceding name
/// line). Validates line structure and mod-10 checksums; throws
/// std::invalid_argument with a specific message on any violation.
[[nodiscard]] Tle parse_tle(std::string_view line1, std::string_view line2);
[[nodiscard]] Tle parse_tle(std::string_view name, std::string_view line1,
                            std::string_view line2);

/// Serialize back to standard 69-column lines with valid checksums.
struct TleLines {
  std::string line1;
  std::string line2;
};
[[nodiscard]] TleLines format_tle(const Tle& tle);

/// Compute the NORAD mod-10 checksum of the first 68 columns of a line.
[[nodiscard]] int tle_checksum(std::string_view line68);

/// Keplerian elements for synthetic TLE construction.
struct KeplerianElements {
  double altitude_km = 500.0;  ///< mean altitude (circularized)
  double eccentricity = 0.001;
  double inclination_deg = 97.5;
  double raan_deg = 0.0;
  double arg_perigee_deg = 0.0;
  double mean_anomaly_deg = 0.0;
  double bstar = 1e-4;
};

/// Build a TLE for the given elements at `epoch_jd`. Mean motion is
/// derived from the altitude via the two-body relation — adequate for
/// constellations specified by altitude band (paper Table 3).
[[nodiscard]] Tle make_tle(std::string name, int catalog_number,
                           const KeplerianElements& kep, JulianDate epoch_jd);

/// Standard gravitational parameter used for element<->motion conversion
/// (WGS-72 value, the SGP4 convention).
inline constexpr double kMuEarthKm3PerS2 = 398600.8;
inline constexpr double kEarthRadiusKm = 6378.135;  // WGS-72, SGP4's ae

}  // namespace sinet::orbit
