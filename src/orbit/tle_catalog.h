// TLE catalog file I/O: read/write multi-satellite element files in the
// standard CelesTrak 3-line (name + 2 element lines) or bare 2-line
// format. Lets the framework consume real published TLEs instead of the
// synthetic Table 3 catalog.
#pragma once

#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "orbit/tle.h"

namespace sinet::orbit {

/// Parse every TLE in the stream. Accepts mixed 2-line and 3-line
/// entries, blank lines between entries, and trailing whitespace.
/// Throws std::invalid_argument (with a line number) on malformed
/// element lines; unpaired trailing lines are an error too.
[[nodiscard]] std::vector<Tle> read_tle_catalog(std::istream& is);

/// Serialize TLEs in 3-line format (name line included when nonempty).
void write_tle_catalog(std::ostream& os, const std::vector<Tle>& catalog);

}  // namespace sinet::orbit
