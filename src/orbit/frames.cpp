#include "orbit/frames.h"

#include <cmath>

namespace sinet::orbit {

namespace {
Vec3 rotate_z(const Vec3& v, double angle_rad) {
  const double c = std::cos(angle_rad);
  const double s = std::sin(angle_rad);
  return {c * v.x + s * v.y, -s * v.x + c * v.y, v.z};
}
}  // namespace

Vec3 teme_to_ecef_position(const Vec3& r_teme_km, JulianDate jd) {
  return rotate_z(r_teme_km, gmst_rad(jd));
}

Vec3 teme_to_ecef_position_gmst(const Vec3& r_teme_km, double gmst) {
  return rotate_z(r_teme_km, gmst);
}

Vec3 teme_to_ecef_velocity(const Vec3& r_teme_km, const Vec3& v_teme_km_s,
                           JulianDate jd) {
  const double theta = gmst_rad(jd);
  const Vec3 v_rot = rotate_z(v_teme_km_s, theta);
  const Vec3 r_ecef = rotate_z(r_teme_km, theta);
  const Vec3 omega{0.0, 0.0, kEarthRotationRadPerSec};
  return v_rot - omega.cross(r_ecef);
}

EcefState teme_to_ecef_state(const Vec3& r_teme_km, const Vec3& v_teme_km_s,
                             JulianDate jd) {
  const double theta = gmst_rad(jd);
  const Vec3 r_ecef = rotate_z(r_teme_km, theta);
  const Vec3 v_rot = rotate_z(v_teme_km_s, theta);
  const Vec3 omega{0.0, 0.0, kEarthRotationRadPerSec};
  return {r_ecef, v_rot - omega.cross(r_ecef)};
}

Vec3 ecef_to_teme_position(const Vec3& r_ecef_km, JulianDate jd) {
  return rotate_z(r_ecef_km, -gmst_rad(jd));
}

}  // namespace sinet::orbit
