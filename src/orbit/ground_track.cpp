#include "orbit/ground_track.h"

#include <cmath>
#include <stdexcept>

#include "orbit/frames.h"
#include "orbit/time.h"

namespace sinet::orbit {

std::vector<GroundTrackPoint> ground_track(const Sgp4& prop,
                                           JulianDate jd_start,
                                           JulianDate jd_end, double step_s) {
  if (step_s <= 0.0)
    throw std::invalid_argument("ground_track: nonpositive step");
  if (jd_end < jd_start)
    throw std::invalid_argument("ground_track: reversed interval");
  std::vector<GroundTrackPoint> out;
  const double step_days = step_s / kSecondsPerDay;
  for (JulianDate jd = jd_start; jd <= jd_end; jd += step_days) {
    const TemeState st = prop.at_jd(jd);
    GroundTrackPoint p;
    p.jd = jd;
    p.subsatellite =
        ecef_to_geodetic(teme_to_ecef_position(st.position_km, jd));
    p.speed_km_s = st.velocity_km_s.norm();
    out.push_back(p);
  }
  return out;
}

double max_track_latitude_deg(const std::vector<GroundTrackPoint>& track) {
  double max_lat = 0.0;
  for (const GroundTrackPoint& p : track)
    max_lat = std::max(max_lat, std::abs(p.subsatellite.latitude_deg));
  return max_lat;
}

double nodal_drift_deg_per_orbit(
    const std::vector<GroundTrackPoint>& track) {
  // Find northbound equator crossings and difference their longitudes.
  std::vector<double> crossing_lons;
  for (std::size_t i = 1; i < track.size(); ++i) {
    const double lat0 = track[i - 1].subsatellite.latitude_deg;
    const double lat1 = track[i].subsatellite.latitude_deg;
    if (lat0 < 0.0 && lat1 >= 0.0) {
      // Linear interpolation of the crossing longitude.
      const double f = -lat0 / (lat1 - lat0);
      double lon0 = track[i - 1].subsatellite.longitude_deg;
      double lon1 = track[i].subsatellite.longitude_deg;
      // Unwrap across the date line.
      if (lon1 - lon0 > 180.0) lon1 -= 360.0;
      if (lon0 - lon1 > 180.0) lon1 += 360.0;
      crossing_lons.push_back(lon0 + f * (lon1 - lon0));
    }
  }
  if (crossing_lons.size() < 2) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 1; i < crossing_lons.size(); ++i) {
    double d = crossing_lons[i] - crossing_lons[i - 1];
    while (d > 180.0) d -= 360.0;
    while (d < -180.0) d += 360.0;
    sum += d;
  }
  return sum / static_cast<double>(crossing_lons.size() - 1);
}

}  // namespace sinet::orbit
