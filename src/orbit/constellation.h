// Constellation catalog and synthetic TLE generation.
//
// Reproduces the paper's Table 3: the four 400-450 MHz IoT constellations
// (Tianqi, FOSSA, PICO, CSTP) with their altitude bands, inclinations and
// DtS frequencies. Since live TLEs are not available offline, we generate
// deterministic synthetic TLEs matching these published orbital elements.
#pragma once

#include <string>
#include <vector>

#include "orbit/tle.h"

namespace sinet::orbit {

/// A homogeneous group of satellites sharing an altitude band/inclination
/// (Tianqi operates three such generations, Table 3).
struct OrbitalGroup {
  int count = 0;
  double altitude_low_km = 0.0;
  double altitude_high_km = 0.0;
  double inclination_deg = 0.0;
};

/// A named constellation as measured in the paper.
struct ConstellationSpec {
  std::string name;
  std::string region;  ///< operator region per Table 3
  double dts_frequency_hz = 0.0;
  /// LoRa spreading factor of the broadcast beacons (7..12). TinyGS-
  /// compatible satellites differ: commercial fleets favour SF10 for
  /// airtime, small research fleets SF11/SF12 for sensitivity — one
  /// source of the paper's wide RSSI band (Fig 3b).
  int beacon_sf = 10;
  /// Effective beacon EIRP (dBm) after tumbling/pointing losses. The
  /// commercial Tianqi satellites radiate several dB more than the
  /// PocketQube-class fleets, which compensate with slower SFs.
  double beacon_eirp_dbm = 18.5;
  std::vector<OrbitalGroup> groups;

  [[nodiscard]] int total_satellites() const;
};

/// The four constellations of paper Table 3 (Tianqi with all 22 sats).
[[nodiscard]] std::vector<ConstellationSpec> paper_constellations();

/// Look up one of the paper constellations by name; throws
/// std::invalid_argument for unknown names.
[[nodiscard]] ConstellationSpec paper_constellation(const std::string& name);

/// Generate one synthetic TLE per satellite of `spec` at `epoch_jd`.
///
/// Satellites in each group are distributed across RAAN planes and phased
/// in mean anomaly deterministically (golden-angle spread), so that the
/// generated constellation provides realistic revisit statistics without
/// artificial along-track clustering. Catalog numbers start at
/// `first_catalog_number` and increase by one per satellite.
[[nodiscard]] std::vector<Tle> generate_tles(const ConstellationSpec& spec,
                                             JulianDate epoch_jd,
                                             int first_catalog_number = 51000);

/// Instantaneous ground footprint area (km^2) of a satellite at altitude
/// `altitude_km` given a minimum elevation mask at the edge of coverage.
/// Spherical-cap formula; with a 0-deg mask this reproduces Table 3's
/// footprint column to within a few percent.
[[nodiscard]] double footprint_area_km2(double altitude_km,
                                        double min_elevation_deg = 0.0);

/// Maximum slant range (km) from a ground node to a satellite at
/// `altitude_km` when the satellite sits at elevation `elevation_deg`.
[[nodiscard]] double slant_range_km(double altitude_km, double elevation_deg);

}  // namespace sinet::orbit
