#include "orbit/constellation.h"

#include <cmath>
#include <stdexcept>

#include "orbit/geodetic.h"
#include "orbit/time.h"

namespace sinet::orbit {

int ConstellationSpec::total_satellites() const {
  int n = 0;
  for (const OrbitalGroup& g : groups) n += g.count;
  return n;
}

std::vector<ConstellationSpec> paper_constellations() {
  // Values transcribed from paper Table 3.
  std::vector<ConstellationSpec> out;

  ConstellationSpec tianqi;
  tianqi.name = "Tianqi";
  tianqi.region = "China";
  tianqi.dts_frequency_hz = 400.45e6;
  tianqi.beacon_sf = 10;
  tianqi.beacon_eirp_dbm = 18.5;
  tianqi.groups = {{16, 815.7, 897.5, 49.97},
                   {4, 544.0, 556.9, 35.00},
                   {2, 441.9, 493.0, 97.61}};
  out.push_back(tianqi);

  ConstellationSpec fossa;
  fossa.name = "FOSSA";
  fossa.region = "EU";
  fossa.dts_frequency_hz = 401.7e6;
  fossa.beacon_sf = 11;
  fossa.beacon_eirp_dbm = 15.0;
  fossa.groups = {{3, 508.7, 512.0, 97.36}};
  out.push_back(fossa);

  ConstellationSpec pico;
  pico.name = "PICO";
  pico.region = "US";
  pico.dts_frequency_hz = 436.26e6;
  pico.beacon_sf = 11;
  pico.beacon_eirp_dbm = 15.5;
  pico.groups = {{9, 507.9, 522.1, 97.72}};
  out.push_back(pico);

  ConstellationSpec cstp;
  cstp.name = "CSTP";
  cstp.region = "Russia";
  cstp.dts_frequency_hz = 437.985e6;
  cstp.beacon_sf = 12;
  cstp.beacon_eirp_dbm = 14.0;
  cstp.groups = {{5, 468.3, 523.7, 97.45}};
  out.push_back(cstp);

  return out;
}

ConstellationSpec paper_constellation(const std::string& name) {
  for (ConstellationSpec& c : paper_constellations())
    if (c.name == name) return c;
  throw std::invalid_argument("unknown constellation: " + name);
}

std::vector<Tle> generate_tles(const ConstellationSpec& spec,
                               JulianDate epoch_jd,
                               int first_catalog_number) {
  std::vector<Tle> out;
  int catalog = first_catalog_number;
  int group_index = 0;
  for (const OrbitalGroup& g : spec.groups) {
    if (g.count <= 0)
      throw std::invalid_argument("generate_tles: empty orbital group");
    for (int i = 0; i < g.count; ++i) {
      KeplerianElements kep;
      // Spread altitudes linearly across the published band.
      const double frac =
          g.count == 1 ? 0.5
                       : static_cast<double>(i) /
                             static_cast<double>(g.count - 1);
      kep.altitude_km =
          g.altitude_low_km + frac * (g.altitude_high_km - g.altitude_low_km);
      kep.eccentricity = 0.0008 + 0.0002 * (i % 3);
      kep.inclination_deg = g.inclination_deg;
      // Golden-angle spread avoids both clustering and artificial
      // regularity; offsets per group decorrelate the generations.
      const double golden = 137.50776405003785;
      kep.raan_deg = std::fmod(37.0 * (group_index + 1) + golden * i, 360.0);
      kep.arg_perigee_deg = std::fmod(90.0 + 45.0 * i, 360.0);
      kep.mean_anomaly_deg =
          std::fmod(golden * 2.0 * i + 71.0 * group_index, 360.0);
      kep.bstar = 1.0e-4;

      char name[64];
      std::snprintf(name, sizeof(name), "%s-%02d", spec.name.c_str(),
                    static_cast<int>(out.size()) + 1);
      out.push_back(make_tle(name, catalog++, kep, epoch_jd));
    }
    ++group_index;
  }
  return out;
}

double footprint_area_km2(double altitude_km, double min_elevation_deg) {
  if (altitude_km <= 0.0)
    throw std::invalid_argument("footprint_area_km2: altitude <= 0");
  const double re = kEarthMeanRadiusKm;
  const double eps = min_elevation_deg * kDegToRad;
  // Central angle from subsatellite point to the edge of coverage.
  const double ratio = re / (re + altitude_km) * std::cos(eps);
  const double lambda = std::acos(ratio) - eps;
  return kTwoPi * re * re * (1.0 - std::cos(lambda));
}

double slant_range_km(double altitude_km, double elevation_deg) {
  if (altitude_km <= 0.0)
    throw std::invalid_argument("slant_range_km: altitude <= 0");
  const double re = kEarthMeanRadiusKm;
  const double el = elevation_deg * kDegToRad;
  // Law of cosines in the earth-center / node / satellite triangle.
  const double rs = re + altitude_km;
  const double sin_el = std::sin(el);
  return -re * sin_el + std::sqrt(re * re * sin_el * sin_el +
                                  (rs * rs - re * re));
}

}  // namespace sinet::orbit
