#include "orbit/look_angles.h"

#include <algorithm>
#include <cmath>

#include "orbit/time.h"

namespace sinet::orbit {

TopocentricFrame::TopocentricFrame(const Geodetic& observer)
    : obs_ecef_km(geodetic_to_ecef(observer)) {
  const double lat = observer.latitude_deg * kDegToRad;
  const double lon = observer.longitude_deg * kDegToRad;
  sin_lat = std::sin(lat);
  cos_lat = std::cos(lat);
  sin_lon = std::sin(lon);
  cos_lon = std::cos(lon);
}

LookAngles look_angles(const Geodetic& observer, const Vec3& sat_ecef_km,
                       const Vec3& sat_ecef_vel_km_s) {
  return look_angles(TopocentricFrame(observer), sat_ecef_km,
                     sat_ecef_vel_km_s);
}

LookAngles look_angles(const TopocentricFrame& frame, const Vec3& sat_ecef_km,
                       const Vec3& sat_ecef_vel_km_s) {
  const Vec3 rel = sat_ecef_km - frame.obs_ecef_km;

  const double sin_lat = frame.sin_lat, cos_lat = frame.cos_lat;
  const double sin_lon = frame.sin_lon, cos_lon = frame.cos_lon;

  // ECEF -> ENU (east, north, up) at the observer.
  const double east = -sin_lon * rel.x + cos_lon * rel.y;
  const double north = -sin_lat * cos_lon * rel.x - sin_lat * sin_lon * rel.y +
                       cos_lat * rel.z;
  const double up = cos_lat * cos_lon * rel.x + cos_lat * sin_lon * rel.y +
                    sin_lat * rel.z;

  LookAngles la;
  la.range_km = rel.norm();
  la.elevation_deg =
      std::asin(std::clamp(up / la.range_km, -1.0, 1.0)) * kRadToDeg;
  double az = std::atan2(east, north) * kRadToDeg;
  if (az < 0.0) az += 360.0;
  la.azimuth_deg = az;
  // Observer is fixed in ECEF, so d(range)/dt = rel . v / |rel|.
  la.range_rate_km_s = rel.dot(sat_ecef_vel_km_s) / la.range_km;
  return la;
}

double elevation_from_ecef(const TopocentricFrame& frame,
                           const Vec3& sat_ecef_km) {
  // Same expressions as the `up` / range / asin steps of look_angles();
  // kept in one out-of-line definition so every caller gets identical
  // floating-point results.
  const Vec3 rel = sat_ecef_km - frame.obs_ecef_km;
  const double up = frame.cos_lat * frame.cos_lon * rel.x +
                    frame.cos_lat * frame.sin_lon * rel.y +
                    frame.sin_lat * rel.z;
  const double range_km = rel.norm();
  return std::asin(std::clamp(up / range_km, -1.0, 1.0)) * kRadToDeg;
}

double doppler_shift_hz(double range_rate_km_s, double carrier_hz) noexcept {
  return -range_rate_km_s / kSpeedOfLightKmPerSec * carrier_hz;
}

}  // namespace sinet::orbit
