#include "orbit/look_angles.h"

#include <algorithm>
#include <cmath>

#include "orbit/time.h"

namespace sinet::orbit {

TopocentricFrame::TopocentricFrame(const Geodetic& observer)
    : obs_ecef_km(geodetic_to_ecef(observer)) {
  const double lat = observer.latitude_deg * kDegToRad;
  const double lon = observer.longitude_deg * kDegToRad;
  sin_lat = std::sin(lat);
  cos_lat = std::cos(lat);
  sin_lon = std::sin(lon);
  cos_lon = std::cos(lon);
}

LookAngles look_angles(const Geodetic& observer, const Vec3& sat_ecef_km,
                       const Vec3& sat_ecef_vel_km_s) {
  return look_angles(TopocentricFrame(observer), sat_ecef_km,
                     sat_ecef_vel_km_s);
}

LookAngles look_angles(const TopocentricFrame& frame, const Vec3& sat_ecef_km,
                       const Vec3& sat_ecef_vel_km_s) {
  const Vec3 rel = sat_ecef_km - frame.obs_ecef_km;
  const Enu enu = ecef_to_enu(frame, rel);

  LookAngles la;
  la.range_km = rel.norm();
  la.elevation_deg =
      std::asin(std::clamp(enu.up / la.range_km, -1.0, 1.0)) * kRadToDeg;
  double az = std::atan2(enu.east, enu.north) * kRadToDeg;
  if (az < 0.0) az += 360.0;
  la.azimuth_deg = az;
  // Observer is fixed in ECEF, so d(range)/dt = rel . v / |rel|.
  la.range_rate_km_s = rel.dot(sat_ecef_vel_km_s) / la.range_km;
  return la;
}

double elevation_from_ecef(const TopocentricFrame& frame,
                           const Vec3& sat_ecef_km) {
  // The `up` / range / asin steps of look_angles(), through the shared
  // ecef_to_enu definition so every caller gets identical floating-point
  // results (the unused east/north terms fold away under inlining).
  const Vec3 rel = sat_ecef_km - frame.obs_ecef_km;
  const double up = ecef_to_enu(frame, rel).up;
  const double range_km = rel.norm();
  return std::asin(std::clamp(up / range_km, -1.0, 1.0)) * kRadToDeg;
}

TopocentricFrameSoA pack_topocentric_frames(
    const TopocentricFrame* const* frames, std::size_t n) {
  TopocentricFrameSoA soa;
  for (std::size_t l = 0; l < simd::kLanes; ++l) {
    const TopocentricFrame& f = *frames[l < n ? l : 0];
    soa.obs_x[l] = f.obs_ecef_km.x;
    soa.obs_y[l] = f.obs_ecef_km.y;
    soa.obs_z[l] = f.obs_ecef_km.z;
    soa.up_x[l] = f.cos_lat * f.cos_lon;
    soa.up_y[l] = f.cos_lat * f.sin_lon;
    soa.up_z[l] = f.sin_lat;
  }
  return soa;
}

SINET_SIMD_TARGET_CLONES
void fused_visibility(const TopocentricFrameSoA& frames,
                      const Vec3& sat_ecef_km, const simd::Vd& sin_mask,
                      simd::Vi* visible_out) noexcept {
  const simd::Vd rx = simd::broadcast(sat_ecef_km.x) - frames.obs_x;
  const simd::Vd ry = simd::broadcast(sat_ecef_km.y) - frames.obs_y;
  const simd::Vd rz = simd::broadcast(sat_ecef_km.z) - frames.obs_z;
  const simd::Vd up = frames.up_x * rx + frames.up_y * ry + frames.up_z * rz;
  const simd::Vd range = simd::vsqrt(rx * rx + ry * ry + rz * rz);
  *visible_out = up >= sin_mask * range;
}

double doppler_shift_hz(double range_rate_km_s, double carrier_hz) noexcept {
  return -range_rate_km_s / kSpeedOfLightKmPerSec * carrier_hz;
}

}  // namespace sinet::orbit
