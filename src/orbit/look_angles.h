// Topocentric look angles: azimuth / elevation / slant range / range rate
// from a ground observer to a satellite, plus the Doppler shift that the
// range rate induces on a carrier.
#pragma once

#include "orbit/geodetic.h"
#include "orbit/vec3.h"

namespace sinet::orbit {

struct LookAngles {
  double azimuth_deg = 0.0;    ///< clockwise from true north, [0, 360)
  double elevation_deg = 0.0;  ///< above local horizon, [-90, 90]
  double range_km = 0.0;       ///< slant range observer -> satellite
  double range_rate_km_s = 0.0;  ///< d(range)/dt; negative = approaching
};

/// Observer-fixed quantities of the ECEF->ENU transform (observer ECEF
/// position and the latitude/longitude trig of the ENU basis). Pass
/// prediction evaluates look angles thousands of times per window for the
/// same ground site; hoisting these out of the per-sample loop removes a
/// geodetic_to_ecef call and four trig evaluations per sample while
/// producing bit-identical angles.
struct TopocentricFrame {
  explicit TopocentricFrame(const Geodetic& observer);

  Vec3 obs_ecef_km;
  double sin_lat, cos_lat;
  double sin_lon, cos_lon;
};

/// Compute look angles from an observer (geodetic, WGS-84) to a satellite
/// given both ECEF position (km) and ECEF velocity (km/s).
[[nodiscard]] LookAngles look_angles(const Geodetic& observer,
                                     const Vec3& sat_ecef_km,
                                     const Vec3& sat_ecef_vel_km_s);

/// Same computation with the observer-fixed terms precomputed.
[[nodiscard]] LookAngles look_angles(const TopocentricFrame& frame,
                                     const Vec3& sat_ecef_km,
                                     const Vec3& sat_ecef_vel_km_s);

/// Elevation (deg) only, from an ECEF satellite position. This is THE
/// elevation evaluation for pass prediction: both the legacy per-pair
/// scan (via ElevationSampler) and the shared-ephemeris table scan call
/// this one definition, so the two paths agree bit-for-bit by
/// construction rather than by duplicated arithmetic.
[[nodiscard]] double elevation_from_ecef(const TopocentricFrame& frame,
                                         const Vec3& sat_ecef_km);

/// Doppler shift (Hz) observed on `carrier_hz` given a range rate.
/// Approaching satellites (negative range rate) shift the carrier up.
[[nodiscard]] double doppler_shift_hz(double range_rate_km_s,
                                      double carrier_hz) noexcept;

inline constexpr double kSpeedOfLightKmPerSec = 299792.458;

}  // namespace sinet::orbit
