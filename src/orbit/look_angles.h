// Topocentric look angles: azimuth / elevation / slant range / range rate
// from a ground observer to a satellite, plus the Doppler shift that the
// range rate induces on a carrier.
#pragma once

#include <cstddef>

#include "orbit/geodetic.h"
#include "orbit/simd.h"
#include "orbit/vec3.h"

namespace sinet::orbit {

struct LookAngles {
  double azimuth_deg = 0.0;    ///< clockwise from true north, [0, 360)
  double elevation_deg = 0.0;  ///< above local horizon, [-90, 90]
  double range_km = 0.0;       ///< slant range observer -> satellite
  double range_rate_km_s = 0.0;  ///< d(range)/dt; negative = approaching
};

/// Observer-fixed quantities of the ECEF->ENU transform (observer ECEF
/// position and the latitude/longitude trig of the ENU basis). Pass
/// prediction evaluates look angles thousands of times per window for the
/// same ground site; hoisting these out of the per-sample loop removes a
/// geodetic_to_ecef call and four trig evaluations per sample while
/// producing bit-identical angles.
struct TopocentricFrame {
  explicit TopocentricFrame(const Geodetic& observer);

  Vec3 obs_ecef_km;
  double sin_lat, cos_lat;
  double sin_lon, cos_lon;
};

/// Satellite position relative to an observer, in the observer's local
/// east/north/up basis (km).
struct Enu {
  double east, north, up;
};

/// ECEF relative vector -> ENU at the observer. This is THE one
/// definition of the ENU expressions: look_angles() and
/// elevation_from_ecef() both call it, so their shared `up` term cannot
/// drift apart bit-wise. Expression order is load-bearing — do not
/// refactor the arithmetic.
[[nodiscard]] inline Enu ecef_to_enu(const TopocentricFrame& frame,
                                     const Vec3& rel) noexcept {
  return Enu{
      -frame.sin_lon * rel.x + frame.cos_lon * rel.y,
      -frame.sin_lat * frame.cos_lon * rel.x -
          frame.sin_lat * frame.sin_lon * rel.y + frame.cos_lat * rel.z,
      frame.cos_lat * frame.cos_lon * rel.x +
          frame.cos_lat * frame.sin_lon * rel.y + frame.sin_lat * rel.z,
  };
}

/// Up to simd::kLanes observer frames transposed into lane arrays for the
/// fast-scan fused elevation test (PropagationMode::kFast): one satellite
/// position evaluated against every observer lane at once. Unused lanes
/// are padded with copies of the first frame; callers mask results by
/// their own active-lane count.
struct TopocentricFrameSoA {
  simd::Vd obs_x, obs_y, obs_z;  ///< observer ECEF positions, km
  simd::Vd up_x, up_y, up_z;     ///< geodetic "up" rows of the ENU bases
};

/// Transpose `n` frames (n in [1, simd::kLanes]) into lane arrays.
[[nodiscard]] TopocentricFrameSoA pack_topocentric_frames(
    const TopocentricFrame* const* frames, std::size_t n);

/// Fused multi-observer visibility: lane l of *visible_out is all-ones
/// iff the satellite's elevation over observer l is >= the lane's mask,
/// tested in the sine domain (up >= sin(mask) * slant_range — asin is
/// monotone, so no arcsine per sample). Numerically equivalent to
/// elevation_from_ecef(frame_l, sat) >= mask_l but not bit-identical to
/// it; only PropagationMode::kFast classification uses this (see the
/// fast-mode tolerance notes in docs/PERFORMANCE.md). Vector operands
/// pass by reference/pointer so the signature stays ABI-stable between
/// the function-multiversioned clones.
void fused_visibility(const TopocentricFrameSoA& frames,
                      const Vec3& sat_ecef_km, const simd::Vd& sin_mask,
                      simd::Vi* visible_out) noexcept;

/// Compute look angles from an observer (geodetic, WGS-84) to a satellite
/// given both ECEF position (km) and ECEF velocity (km/s).
[[nodiscard]] LookAngles look_angles(const Geodetic& observer,
                                     const Vec3& sat_ecef_km,
                                     const Vec3& sat_ecef_vel_km_s);

/// Same computation with the observer-fixed terms precomputed.
[[nodiscard]] LookAngles look_angles(const TopocentricFrame& frame,
                                     const Vec3& sat_ecef_km,
                                     const Vec3& sat_ecef_vel_km_s);

/// Elevation (deg) only, from an ECEF satellite position. This is THE
/// elevation evaluation for pass prediction: both the legacy per-pair
/// scan (via ElevationSampler) and the shared-ephemeris table scan call
/// this one definition, so the two paths agree bit-for-bit by
/// construction rather than by duplicated arithmetic.
[[nodiscard]] double elevation_from_ecef(const TopocentricFrame& frame,
                                         const Vec3& sat_ecef_km);

/// Doppler shift (Hz) observed on `carrier_hz` given a range rate.
/// Approaching satellites (negative range rate) shift the carrier up.
[[nodiscard]] double doppler_shift_hz(double range_rate_km_s,
                                      double carrier_hz) noexcept;

inline constexpr double kSpeedOfLightKmPerSec = 299792.458;

}  // namespace sinet::orbit
