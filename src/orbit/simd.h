// Explicit-width SIMD primitives for the batched propagation kernels.
//
// Built on GCC/Clang vector extensions (no intrinsics headers, no
// external dependency): a 4-lane double vector plus the handful of
// elementwise operations SGP4 needs — select, sqrt, abs, min/max, a
// round-to-nearest-integer, and an argument-reduced sincos. On targets
// without wide registers the compiler lowers the 4-lane ops to pairs of
// narrower ones; hot leaf functions in the .cpp files additionally carry
// SINET_SIMD_TARGET_CLONES so the loader picks an AVX2/AVX-512 build of
// the same source when the host supports it.
//
// Accuracy contract (the "fast mode" tolerance documented in
// docs/PERFORMANCE.md): vsincos uses a 2-term Cody-Waite pi/2 reduction
// and the fdlibm kernel polynomials, giving ~1 ulp on the reduced
// argument and absolute error < 1e-12 rad for |x| < 1e5 — the angles
// SGP4 feeds it over a 30-day campaign stay below ~3e3 rad. Nothing in
// this header is used by PropagationMode::kReference, whose results stay
// bit-identical to the scalar code by construction.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstring>

// Function-multiversioning attribute for the SIMD leaf kernels: compile
// AVX2 / AVX-512 variants next to the baseline and dispatch at load time
// via ifunc. Only meaningful for out-of-line definitions on x86-64 ELF;
// expands to nothing elsewhere so the baseline build is the only one.
#if defined(__x86_64__) && defined(__ELF__) && defined(__GNUC__) && \
    !defined(__clang__)
#define SINET_SIMD_TARGET_CLONES \
  __attribute__((target_clones("default", "avx2", "arch=x86-64-v4")))
#else
#define SINET_SIMD_TARGET_CLONES
#endif

namespace sinet::orbit::simd {

/// Lanes per vector. 4 doubles = one 256-bit register where available.
inline constexpr std::size_t kLanes = 4;

// The explicit aligned(32) is load-bearing: without it, baseline x86-64
// TUs give these types 16-byte alignment while AVX-enabled target_clones
// variants assume (and use vmovapd on) 32. A Vd stored in a struct that
// crosses that boundary by reference — e.g. TopocentricFrameSoA built in
// a baseline TU, read by the v4 clone of fused_visibility — would then
// fault on the aligned load. Pinning the alignment makes every TU agree.
typedef double Vd
    __attribute__((vector_size(kLanes * sizeof(double)), aligned(32)));
typedef std::int64_t Vi
    __attribute__((vector_size(kLanes * sizeof(std::int64_t)), aligned(32)));

[[nodiscard]] inline Vd broadcast(double x) noexcept {
  return Vd{x, x, x, x};
}

/// Lanewise select: mask lanes are all-ones (from a vector comparison)
/// or all-zeros; result takes `a` where set, `b` where clear.
[[nodiscard]] inline Vd select(Vi mask, Vd a, Vd b) noexcept {
  Vi ai, bi;
  std::memcpy(&ai, &a, sizeof ai);
  std::memcpy(&bi, &b, sizeof bi);
  const Vi ri = (ai & mask) | (bi & ~mask);
  Vd r;
  std::memcpy(&r, &ri, sizeof r);
  return r;
}

[[nodiscard]] inline bool any(Vi mask) noexcept {
  return (mask[0] | mask[1] | mask[2] | mask[3]) != 0;
}

[[nodiscard]] inline bool all(Vi mask) noexcept {
  return (mask[0] & mask[1] & mask[2] & mask[3]) != 0;
}

[[nodiscard]] inline Vd vabs(Vd x) noexcept {
  return select(x < broadcast(0.0), -x, x);
}

[[nodiscard]] inline Vd vmin(Vd a, Vd b) noexcept {
  return select(a < b, a, b);
}

[[nodiscard]] inline Vd vmax(Vd a, Vd b) noexcept {
  return select(a > b, a, b);
}

[[nodiscard]] inline Vd vclamp(Vd x, double lo, double hi) noexcept {
  return vmin(vmax(x, broadcast(lo)), broadcast(hi));
}

/// Lanewise sqrt. A plain loop: with -fno-math-errno the compiler turns
/// it into the vector sqrt instruction; NaN for negative lanes, which the
/// batch kernels turn into per-lane error status.
[[nodiscard]] inline Vd vsqrt(Vd x) noexcept {
  Vd r;
  for (std::size_t i = 0; i < kLanes; ++i) r[i] = std::sqrt(x[i]);
  return r;
}

/// Round to nearest integer (ties to even), returned as a double vector,
/// via the 2^52 + 2^51 shifter trick. Exact for |x| < 2^51 — far beyond
/// any reduction quotient the propagator produces.
[[nodiscard]] inline Vd vround(Vd x) noexcept {
  const Vd shifter = broadcast(6755399441055744.0);  // 2^52 + 2^51
  const Vd biased = x + shifter;
  return biased - shifter;
}

/// Truncate the rounded quotient to its low 2 bits (sin/cos quadrant).
[[nodiscard]] inline Vi quadrant(Vd n) noexcept {
  Vi q;
  for (std::size_t i = 0; i < kLanes; ++i)
    q[i] = static_cast<std::int64_t>(n[i]) & 3;
  return q;
}

namespace detail {
// fdlibm __kernel_sin / __kernel_cos minimax coefficients, |r| <= pi/4.
inline constexpr double kS1 = -1.66666666666666324348e-01;
inline constexpr double kS2 = 8.33333333332248946124e-03;
inline constexpr double kS3 = -1.98412698298579493134e-04;
inline constexpr double kS4 = 2.75573137070700676789e-06;
inline constexpr double kS5 = -2.50507602534068634195e-08;
inline constexpr double kS6 = 1.58969099521155010221e-10;
inline constexpr double kC1 = 4.16666666666666019037e-02;
inline constexpr double kC2 = -1.38888888888741095749e-03;
inline constexpr double kC3 = 2.48015872894767294178e-05;
inline constexpr double kC4 = -2.75573143513906633035e-07;
inline constexpr double kC5 = 2.08757232129817482790e-09;
inline constexpr double kC6 = -1.13596475577881948265e-11;
// Cody-Waite split of pi/2 (33 high bits + tail): n * kPio2Hi is exact
// for |n| < 2^20, so the reduction r = (x - n*hi) - n*lo loses almost
// nothing to rounding at SGP4's argument magnitudes.
inline constexpr double kPio2Hi = 1.57079632673412561417e+00;
inline constexpr double kPio2Lo = 6.07710050650619224932e-11;
inline constexpr double kTwoOverPi = 6.36619772367581382433e-01;
// Same idea for 2*pi (used by the lanewise angle wrap).
inline constexpr double kTwoPiHi = 6.28318530717958623200e+00;
inline constexpr double kTwoPiLo = 2.44929359829470641435e-16;

[[nodiscard]] inline Vd sin_kernel(Vd r) noexcept {
  const Vd z = r * r;
  const Vd p =
      broadcast(kS1) +
      z * (broadcast(kS2) +
           z * (broadcast(kS3) +
                z * (broadcast(kS4) +
                     z * (broadcast(kS5) + z * broadcast(kS6)))));
  return r + r * z * p;
}

[[nodiscard]] inline Vd cos_kernel(Vd r) noexcept {
  const Vd z = r * r;
  const Vd p =
      broadcast(kC1) +
      z * (broadcast(kC2) +
           z * (broadcast(kC3) +
                z * (broadcast(kC4) +
                     z * (broadcast(kC5) + z * broadcast(kC6)))));
  return broadcast(1.0) - z * broadcast(0.5) + z * z * p;
}
}  // namespace detail

/// Lanewise sin and cos of the same argument. One reduction, two kernel
/// polynomials, quadrant selection by the reduced quotient's low bits.
inline void vsincos(Vd x, Vd* sin_out, Vd* cos_out) noexcept {
  using namespace detail;
  const Vd n = vround(x * broadcast(kTwoOverPi));
  const Vd r = (x - n * broadcast(kPio2Hi)) - n * broadcast(kPio2Lo);
  const Vd s = sin_kernel(r);
  const Vd c = cos_kernel(r);
  const Vi q = quadrant(n);
  const Vi odd = (q & 1) != 0;       // quadrant 1 or 3: swap sin/cos
  const Vi sneg = (q & 2) != 0;      // quadrant 2 or 3: sin flips
  const Vi cneg = ((q + 1) & 2) != 0;  // quadrant 1 or 2: cos flips
  const Vd s_swapped = select(odd, c, s);
  const Vd c_swapped = select(odd, s, c);
  *sin_out = select(sneg, -s_swapped, s_swapped);
  *cos_out = select(cneg, -c_swapped, c_swapped);
}

/// Lanewise wrap to [-pi, pi] (a 2*pi-shifted representative of the
/// scalar wrap_two_pi result — identical modulo 2*pi, which is all the
/// Kepler iteration consumes).
[[nodiscard]] inline Vd vwrap_pi(Vd x) noexcept {
  using namespace detail;
  const Vd n = vround(x * broadcast(1.0 / kTwoPiHi));
  return (x - n * broadcast(kTwoPiHi)) - n * broadcast(kTwoPiLo);
}

}  // namespace sinet::orbit::simd
