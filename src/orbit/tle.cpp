#include "orbit/tle.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace sinet::orbit {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::invalid_argument("TLE parse error: " + what);
}

std::string_view field(std::string_view line, std::size_t col_1based,
                       std::size_t len) {
  if (col_1based - 1 + len > line.size()) fail("line too short");
  return line.substr(col_1based - 1, len);
}

bool only_spaces(const char* p) {
  while (*p == ' ') ++p;
  return *p == '\0';
}

double parse_double(std::string_view s, const char* what) {
  std::string buf(s);
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  // Require at least one converted char and nothing but spaces after it.
  // strtod stops silently at the first bad char, so without the `end`
  // check a corrupted column like "12.3X567" parses as 12.3 and the
  // element is quietly wrong.
  if (end == buf.c_str() || !only_spaces(end))
    fail(std::string("bad number in ") + what);
  return v;
}

int parse_int(std::string_view s, const char* what) {
  std::string buf(s);
  // Leading spaces are common in TLE integer fields.
  char* end = nullptr;
  const long v = std::strtol(buf.c_str(), &end, 10);
  if (end == buf.c_str() || !only_spaces(end))
    fail(std::string("bad integer in ") + what);
  return static_cast<int>(v);
}

/// TLE "implied decimal point" notation, e.g. " 12345-4" == 0.12345e-4.
double parse_implied_exponent(std::string_view s, const char* what) {
  std::string buf;
  buf.reserve(s.size() + 2);
  std::size_t i = 0;
  while (i < s.size() && s[i] == ' ') ++i;
  bool neg = false;
  bool saw_sign = false;
  if (i < s.size() && (s[i] == '-' || s[i] == '+')) {
    neg = s[i] == '-';
    saw_sign = true;
    ++i;
  }
  buf = neg ? "-0." : "0.";
  bool saw_digit = false;
  while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) {
    buf += s[i];
    saw_digit = true;
    ++i;
  }
  if (!saw_digit) {
    // Only a genuinely blank field means zero. Returning 0.0 for any
    // unparsable content (the old behavior) silently zeroed corrupted
    // bstar/nddot columns instead of rejecting the TLE.
    if (only_spaces(std::string(s.substr(i)).c_str()) && !saw_sign)
      return 0.0;
    fail(std::string("bad field in ") + what);
  }
  int exponent = 0;
  if (i < s.size() && (s[i] == '-' || s[i] == '+')) {
    const bool eneg = s[i] == '-';
    ++i;
    if (i >= s.size() || !std::isdigit(static_cast<unsigned char>(s[i])))
      fail(std::string("bad exponent in ") + what);
    exponent = s[i] - '0';
    if (eneg) exponent = -exponent;
    ++i;
  }
  if (!only_spaces(std::string(s.substr(i)).c_str()))
    fail(std::string("trailing garbage in ") + what);
  return std::strtod(buf.c_str(), nullptr) * std::pow(10.0, exponent);
}

void check_line(std::string_view line, char expect_first, const char* what) {
  if (line.size() < 69) fail(std::string(what) + " shorter than 69 columns");
  if (line[0] != expect_first)
    fail(std::string(what) + " does not start with the expected line number");
  const int want = tle_checksum(line.substr(0, 68));
  const char cs = line[68];
  if (!std::isdigit(static_cast<unsigned char>(cs)))
    fail(std::string(what) + " checksum column is not a digit");
  if (cs - '0' != want)
    fail(std::string(what) + " checksum mismatch (expected " +
         std::to_string(want) + ")");
}

std::string trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

/// Format a value in TLE implied-decimal notation (field width 8).
std::string format_implied_exponent(double v) {
  char out[16];
  if (v == 0.0) {
    std::snprintf(out, sizeof(out), " 00000+0");
    return out;
  }
  const char sign = v < 0.0 ? '-' : ' ';
  double mag = std::abs(v);
  int exponent = 0;
  // Normalize mantissa into [0.1, 1).
  while (mag >= 1.0) {
    mag /= 10.0;
    ++exponent;
  }
  while (mag < 0.1) {
    mag *= 10.0;
    --exponent;
  }
  const int mantissa = static_cast<int>(std::lround(mag * 1e5));
  std::snprintf(out, sizeof(out), "%c%05d%+d", sign,
                mantissa >= 100000 ? 99999 : mantissa, exponent);
  return out;
}

}  // namespace

int tle_checksum(std::string_view line68) {
  int sum = 0;
  for (const char c : line68) {
    if (std::isdigit(static_cast<unsigned char>(c))) sum += c - '0';
    if (c == '-') sum += 1;
  }
  return sum % 10;
}

double Tle::period_minutes() const {
  if (mean_motion_rev_day <= 0.0)
    throw std::logic_error("Tle: nonpositive mean motion");
  return kMinutesPerDay / mean_motion_rev_day;
}

double Tle::semi_major_axis_km() const {
  const double n_rad_s = mean_motion_rev_day * kTwoPi / kSecondsPerDay;
  return std::cbrt(kMuEarthKm3PerS2 / (n_rad_s * n_rad_s));
}

double Tle::mean_altitude_km() const {
  return semi_major_axis_km() - kEarthRadiusKm;
}

Tle parse_tle(std::string_view line1, std::string_view line2) {
  check_line(line1, '1', "line 1");
  check_line(line2, '2', "line 2");

  Tle t;
  t.catalog_number = parse_int(field(line1, 3, 5), "catalog number");
  t.classification = line1[7];
  t.intl_designator = trim(field(line1, 10, 8));
  const int epoch_yy = parse_int(field(line1, 19, 2), "epoch year");
  const double epoch_doy = parse_double(field(line1, 21, 12), "epoch day");
  t.epoch_jd = julian_from_tle_epoch(epoch_yy, epoch_doy);
  t.mean_motion_dot = parse_double(field(line1, 34, 10), "ndot");
  t.mean_motion_ddot = parse_implied_exponent(field(line1, 45, 8), "nddot");
  t.bstar = parse_implied_exponent(field(line1, 54, 8), "bstar");
  t.element_set_number = parse_int(field(line1, 65, 4), "element set");

  const int cat2 = parse_int(field(line2, 3, 5), "catalog number (line 2)");
  if (cat2 != t.catalog_number)
    fail("catalog numbers differ between line 1 and line 2");
  t.inclination_deg = parse_double(field(line2, 9, 8), "inclination");
  t.raan_deg = parse_double(field(line2, 18, 8), "raan");
  {
    // Eccentricity has an implied leading "0." and the field must be a
    // contiguous digit run (leading/trailing spaces tolerated). The old
    // strtod(..., nullptr) on "0." + field accepted arbitrary garbage
    // and truncated at the first bad char — a corrupted column parsed
    // as a smaller, plausible eccentricity with no error.
    const std::string_view ecc_field = field(line2, 27, 7);
    std::size_t b = 0;
    while (b < ecc_field.size() && ecc_field[b] == ' ') ++b;
    std::string digits;
    while (b < ecc_field.size() &&
           std::isdigit(static_cast<unsigned char>(ecc_field[b])))
      digits += ecc_field[b++];
    while (b < ecc_field.size() && ecc_field[b] == ' ') ++b;
    if (digits.empty() || b != ecc_field.size())
      fail("bad eccentricity field");
    t.eccentricity = std::strtod(("0." + digits).c_str(), nullptr);
  }
  t.arg_perigee_deg = parse_double(field(line2, 35, 8), "arg perigee");
  t.mean_anomaly_deg = parse_double(field(line2, 44, 8), "mean anomaly");
  t.mean_motion_rev_day = parse_double(field(line2, 53, 11), "mean motion");
  t.revolution_number = parse_int(field(line2, 64, 5), "rev number");

  if (t.eccentricity < 0.0 || t.eccentricity >= 1.0)
    fail("eccentricity out of [0,1)");
  if (t.mean_motion_rev_day <= 0.0) fail("nonpositive mean motion");
  if (t.inclination_deg < 0.0 || t.inclination_deg > 180.0)
    fail("inclination out of [0,180]");
  return t;
}

Tle parse_tle(std::string_view name, std::string_view line1,
              std::string_view line2) {
  Tle t = parse_tle(line1, line2);
  t.name = trim(name);
  return t;
}

TleLines format_tle(const Tle& t) {
  // Recover the 2-digit year + fractional day-of-year from the epoch.
  const CivilTime ct = civil_from_julian(t.epoch_jd);
  const JulianDate jan1 = julian_from_civil(ct.year, 1, 1);
  const double doy = t.epoch_jd - jan1 + 1.0;
  const int yy = ct.year % 100;

  char l1[80];
  std::snprintf(
      l1, sizeof(l1), "1 %05d%c %-8s %02d%012.8f %c.%08.0f %s %s 0 %4d",
      t.catalog_number % 100000, t.classification,
      t.intl_designator.substr(0, 8).c_str(), yy, doy,
      t.mean_motion_dot < 0.0 ? '-' : ' ',
      std::abs(t.mean_motion_dot) * 1e8,
      format_implied_exponent(t.mean_motion_ddot).c_str(),
      format_implied_exponent(t.bstar).c_str(),
      t.element_set_number % 10000);

  char l2[80];
  std::snprintf(l2, sizeof(l2),
                "2 %05d %8.4f %8.4f %07.0f %8.4f %8.4f %11.8f%05d",
                t.catalog_number % 100000, t.inclination_deg, t.raan_deg,
                t.eccentricity * 1e7, t.arg_perigee_deg, t.mean_anomaly_deg,
                t.mean_motion_rev_day, t.revolution_number % 100000);

  TleLines out{l1, l2};
  out.line1 += static_cast<char>('0' + tle_checksum(out.line1));
  out.line2 += static_cast<char>('0' + tle_checksum(out.line2));
  return out;
}

Tle make_tle(std::string name, int catalog_number,
             const KeplerianElements& kep, JulianDate epoch_jd) {
  if (kep.altitude_km < 120.0 || kep.altitude_km > 40000.0)
    throw std::invalid_argument("make_tle: altitude out of plausible range");
  if (kep.eccentricity < 0.0 || kep.eccentricity >= 1.0)
    throw std::invalid_argument("make_tle: eccentricity out of [0,1)");
  if (kep.inclination_deg < 0.0 || kep.inclination_deg > 180.0)
    throw std::invalid_argument("make_tle: inclination out of [0,180]");

  const double a_km = kEarthRadiusKm + kep.altitude_km;
  const double n_rad_s = std::sqrt(kMuEarthKm3PerS2 / (a_km * a_km * a_km));
  Tle t;
  t.name = std::move(name);
  t.catalog_number = catalog_number;
  t.intl_designator = "25001A";
  t.epoch_jd = epoch_jd;
  t.bstar = kep.bstar;
  t.inclination_deg = kep.inclination_deg;
  t.raan_deg = wrap_two_pi(kep.raan_deg * kDegToRad) * kRadToDeg;
  t.eccentricity = kep.eccentricity;
  t.arg_perigee_deg = wrap_two_pi(kep.arg_perigee_deg * kDegToRad) * kRadToDeg;
  t.mean_anomaly_deg =
      wrap_two_pi(kep.mean_anomaly_deg * kDegToRad) * kRadToDeg;
  t.mean_motion_rev_day = n_rad_s * kSecondsPerDay / kTwoPi;
  t.revolution_number = 1;
  return t;
}

}  // namespace sinet::orbit
