// Free-space path loss and elevation-dependent excess loss for
// ground-space links in the UHF (400-450 MHz) band.
#pragma once

namespace sinet::channel {

/// Free-space path loss (dB) at distance `distance_km` and carrier
/// `frequency_hz`. Throws std::invalid_argument for nonpositive inputs.
[[nodiscard]] double free_space_path_loss_db(double distance_km,
                                             double frequency_hz);

/// Excess atmospheric/tropospheric loss (dB) as a function of elevation.
/// At low elevation the signal traverses a much longer slice of the
/// troposphere and grazes terrain/clutter; the standard cosecant model is
/// clamped at `max_db`. Zenith loss at UHF is small (~0.1 dB).
[[nodiscard]] double elevation_excess_loss_db(double elevation_deg,
                                              double zenith_loss_db = 0.1,
                                              double max_db = 10.0);

/// Polarization mismatch loss (dB) between a linearly polarized ground
/// whip and a tumbling-satellite dipole; a fixed average of 3 dB is the
/// standard assumption for non-stabilized nanosats.
[[nodiscard]] constexpr double polarization_loss_db() noexcept { return 3.0; }

}  // namespace sinet::channel
