// Weather conditions and their attenuation on UHF satellite links.
//
// The paper compares beacon reception and DtS retransmissions across sunny
// and rainy days (Figs 3d, 5b). At 400-450 MHz rain attenuation itself is
// small; the dominant rainy-day penalties are increased sky noise, antenna
// wetting and scintillation, which we lump into a per-condition excess
// loss plus a shadowing-variance inflation.
#pragma once

#include <string>

namespace sinet::channel {

enum class Weather { kSunny, kCloudy, kRainy };

/// Mean excess attenuation (dB) added to the link budget.
[[nodiscard]] double weather_excess_loss_db(Weather w) noexcept;

/// Additional shadowing standard deviation (dB) stacked on the clear-sky
/// value: rainy links fluctuate more.
[[nodiscard]] double weather_extra_shadowing_db(Weather w) noexcept;

[[nodiscard]] std::string to_string(Weather w);

/// Parse "sunny" / "cloudy" / "rainy"; throws std::invalid_argument.
[[nodiscard]] Weather weather_from_string(const std::string& s);

}  // namespace sinet::channel
