#include "channel/fading.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sinet::channel {

FadingModel::FadingModel(const FadingConfig& cfg) : cfg_(cfg) {
  if (cfg.shadowing_sigma_db < 0.0)
    throw std::invalid_argument("FadingModel: negative shadowing sigma");
  if (cfg.k_rolloff_elevation_deg <= 0.0)
    throw std::invalid_argument("FadingModel: nonpositive K rolloff");
}

double FadingModel::k_factor_db(double elevation_deg) const noexcept {
  const double el = std::clamp(elevation_deg, 0.0, 90.0);
  if (el >= cfg_.k_rolloff_elevation_deg) return cfg_.rician_k_db;
  const double frac = el / cfg_.k_rolloff_elevation_deg;
  return cfg_.low_elevation_k_db +
         frac * (cfg_.rician_k_db - cfg_.low_elevation_k_db);
}

double FadingModel::draw_db(sinet::sim::Rng& rng, double elevation_deg,
                            Weather w) const {
  const double sigma =
      cfg_.shadowing_sigma_db + weather_extra_shadowing_db(w);
  const double shadowing = rng.normal(0.0, sigma);
  const double amp = rng.rician_amplitude(k_factor_db(elevation_deg));
  // Power gain of the small-scale component (mean ~ 1 by construction).
  const double small_scale_db = 20.0 * std::log10(std::max(amp, 1e-6));
  return shadowing + small_scale_db;
}

}  // namespace sinet::channel
