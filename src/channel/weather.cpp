#include "channel/weather.h"

#include <stdexcept>

namespace sinet::channel {

double weather_excess_loss_db(Weather w) noexcept {
  switch (w) {
    case Weather::kSunny:
      return 0.0;
    case Weather::kCloudy:
      return 0.7;
    case Weather::kRainy:
      return 2.0;
  }
  return 0.0;
}

double weather_extra_shadowing_db(Weather w) noexcept {
  switch (w) {
    case Weather::kSunny:
      return 0.0;
    case Weather::kCloudy:
      return 0.5;
    case Weather::kRainy:
      return 1.5;
  }
  return 0.0;
}

std::string to_string(Weather w) {
  switch (w) {
    case Weather::kSunny:
      return "sunny";
    case Weather::kCloudy:
      return "cloudy";
    case Weather::kRainy:
      return "rainy";
  }
  return "unknown";
}

Weather weather_from_string(const std::string& s) {
  if (s == "sunny") return Weather::kSunny;
  if (s == "cloudy") return Weather::kCloudy;
  if (s == "rainy") return Weather::kRainy;
  throw std::invalid_argument("unknown weather: " + s);
}

}  // namespace sinet::channel
