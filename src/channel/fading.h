// Stochastic link variation: log-normal shadowing plus Rician small-scale
// fading for the (mostly line-of-sight) ground-space channel.
#pragma once

#include "channel/weather.h"
#include "sim/rng.h"

namespace sinet::channel {

struct FadingConfig {
  double shadowing_sigma_db = 2.5;  ///< clear-sky log-normal sigma
  double rician_k_db = 10.0;        ///< strong LoS for elevated satellites
  /// Below this elevation the K-factor degrades linearly toward
  /// `low_elevation_k_db` at the horizon (multipath from terrain).
  double k_rolloff_elevation_deg = 20.0;
  double low_elevation_k_db = 3.0;
};

/// Draws per-packet fading realizations. The object holds configuration
/// only; the RNG stream is passed per call so that callers control
/// reproducibility.
class FadingModel {
 public:
  explicit FadingModel(const FadingConfig& cfg = {});

  /// Total random link-variation term (dB, signed; negative = deeper fade)
  /// for a packet received at `elevation_deg` under weather `w`.
  [[nodiscard]] double draw_db(sinet::sim::Rng& rng, double elevation_deg,
                               Weather w) const;

  /// Effective Rician K-factor (dB) at an elevation.
  [[nodiscard]] double k_factor_db(double elevation_deg) const noexcept;

  [[nodiscard]] const FadingConfig& config() const noexcept { return cfg_; }

 private:
  FadingConfig cfg_;
};

}  // namespace sinet::channel
