#include "channel/path_loss.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sinet::channel {

double free_space_path_loss_db(double distance_km, double frequency_hz) {
  if (distance_km <= 0.0)
    throw std::invalid_argument("free_space_path_loss_db: distance <= 0");
  if (frequency_hz <= 0.0)
    throw std::invalid_argument("free_space_path_loss_db: frequency <= 0");
  const double f_mhz = frequency_hz / 1e6;
  return 32.44778322 + 20.0 * std::log10(distance_km) +
         20.0 * std::log10(f_mhz);
}

double elevation_excess_loss_db(double elevation_deg, double zenith_loss_db,
                                double max_db) {
  if (zenith_loss_db < 0.0 || max_db < 0.0)
    throw std::invalid_argument("elevation_excess_loss_db: negative loss");
  if (elevation_deg <= 0.0) return max_db;
  const double el_rad = elevation_deg * 3.14159265358979323846 / 180.0;
  const double cosecant = 1.0 / std::sin(el_rad);
  return std::min(zenith_loss_db * cosecant, max_db);
}

}  // namespace sinet::channel
