// Ground antenna gain patterns.
//
// The paper's Fig 5b compares 1/4-wave and 5/8-wave whips on Tianqi nodes.
// Both are vertical monopoles: the 5/8-wave has higher peak gain
// concentrated at low-to-mid elevation; the 1/4-wave is closer to
// omnidirectional with lower gain. Satellites carry simple dipoles.
#pragma once

#include <string>

namespace sinet::channel {

enum class AntennaType {
  kQuarterWaveMonopole,
  kFiveEighthsWaveMonopole,
  kDipole,              ///< tumbling nanosat beacon antenna
  kSatelliteTurnstile,  ///< nadir-pointing gateway receive antenna
  kIsotropic,           ///< reference
};

/// Gain (dBi) toward a target at `elevation_deg` above the local horizon.
/// Patterns are azimuth-symmetric.
[[nodiscard]] double antenna_gain_dbi(AntennaType type, double elevation_deg);

/// Peak gain (dBi) of the pattern.
[[nodiscard]] double antenna_peak_gain_dbi(AntennaType type) noexcept;

[[nodiscard]] std::string to_string(AntennaType type);

}  // namespace sinet::channel
