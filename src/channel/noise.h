// Receiver noise floor.
#pragma once

namespace sinet::channel {

/// Thermal noise power (dBm) in `bandwidth_hz` at reference temperature
/// (kTB with T = 290 K): -174 dBm/Hz + 10*log10(B).
[[nodiscard]] double thermal_noise_dbm(double bandwidth_hz);

/// Full receiver noise floor: thermal noise + noise figure + external
/// (galactic/man-made) noise excess, which is non-negligible at UHF.
[[nodiscard]] double noise_floor_dbm(double bandwidth_hz,
                                     double noise_figure_db = 6.0,
                                     double external_noise_db = 2.0);

}  // namespace sinet::channel
