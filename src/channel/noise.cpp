#include "channel/noise.h"

#include <cmath>
#include <stdexcept>

namespace sinet::channel {

double thermal_noise_dbm(double bandwidth_hz) {
  if (bandwidth_hz <= 0.0)
    throw std::invalid_argument("thermal_noise_dbm: bandwidth <= 0");
  return -174.0 + 10.0 * std::log10(bandwidth_hz);
}

double noise_floor_dbm(double bandwidth_hz, double noise_figure_db,
                       double external_noise_db) {
  if (noise_figure_db < 0.0 || external_noise_db < 0.0)
    throw std::invalid_argument("noise_floor_dbm: negative noise term");
  return thermal_noise_dbm(bandwidth_hz) + noise_figure_db +
         external_noise_db;
}

}  // namespace sinet::channel
