#include "channel/antenna.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sinet::channel {

namespace {
constexpr double kPi = 3.14159265358979323846;

/// Normalized monopole pattern evaluated at elevation `el_deg`, with the
/// main lobe centred at `lobe_peak_el_deg` and a high-angle null depth.
double monopole_pattern_db(double el_deg, double peak_gain_dbi,
                           double lobe_peak_el_deg, double zenith_drop_db) {
  const double el = std::clamp(el_deg, 0.0, 90.0);
  // Raised-cosine main lobe in elevation; gain rolls off toward zenith
  // (monopole null) and slightly toward the horizon (ground effects).
  const double x = (el - lobe_peak_el_deg) / (90.0 - lobe_peak_el_deg);
  double rolloff;
  if (el >= lobe_peak_el_deg) {
    rolloff = zenith_drop_db * x * x;  // quadratic drop toward zenith null
  } else {
    const double y = (lobe_peak_el_deg - el) / lobe_peak_el_deg;
    rolloff = 3.0 * y * y;  // mild drop toward the horizon
  }
  return peak_gain_dbi - rolloff;
}
}  // namespace

double antenna_gain_dbi(AntennaType type, double elevation_deg) {
  switch (type) {
    case AntennaType::kIsotropic:
      return 0.0;
    case AntennaType::kDipole: {
      // Half-wave dipole on a tumbling nanosat: the classic
      // cos(pi/2 cos(theta))/sin(theta) pattern, but with the axial null
      // filled to ~-12 dB relative — tumbling randomizes the dipole
      // orientation, so on average the deep null is never pointed at the
      // ground for a whole packet.
      const double el = std::clamp(elevation_deg, -90.0, 90.0);
      const double theta = (90.0 - el) * kPi / 180.0;
      const double s = std::sin(theta);
      if (s < 1e-3) return 2.15 - 14.0;
      const double f = std::cos(kPi / 2.0 * std::cos(theta)) / s;
      return 2.15 + 20.0 * std::log10(std::max(std::abs(f), 0.2));
    }
    case AntennaType::kSatelliteTurnstile: {
      // Canted turnstile on an attitude-stabilized gateway satellite:
      // ~4.5 dBi toward nadir (high observer elevation), rolling off a
      // few dB toward the edge of coverage.
      const double el = std::clamp(elevation_deg, 0.0, 90.0);
      const double off = (90.0 - el) / 90.0;  // 0 at nadir, 1 at limb
      return 4.5 - 3.0 * off * off;
    }
    case AntennaType::kQuarterWaveMonopole:
      // ~2 dBi peak near 25 deg elevation, deep null at zenith.
      return monopole_pattern_db(elevation_deg, 2.0, 25.0, 12.0);
    case AntennaType::kFiveEighthsWaveMonopole:
      // ~4 dBi peak near 16 deg elevation, steeper zenith null.
      return monopole_pattern_db(elevation_deg, 4.0, 16.0, 15.0);
  }
  throw std::invalid_argument("antenna_gain_dbi: unknown antenna type");
}

double antenna_peak_gain_dbi(AntennaType type) noexcept {
  switch (type) {
    case AntennaType::kIsotropic:
      return 0.0;
    case AntennaType::kDipole:
      return 2.15;
    case AntennaType::kSatelliteTurnstile:
      return 4.5;
    case AntennaType::kQuarterWaveMonopole:
      return 2.0;
    case AntennaType::kFiveEighthsWaveMonopole:
      return 4.0;
  }
  return 0.0;
}

std::string to_string(AntennaType type) {
  switch (type) {
    case AntennaType::kIsotropic:
      return "isotropic";
    case AntennaType::kDipole:
      return "dipole";
    case AntennaType::kSatelliteTurnstile:
      return "satellite turnstile";
    case AntennaType::kQuarterWaveMonopole:
      return "1/4-wave monopole";
    case AntennaType::kFiveEighthsWaveMonopole:
      return "5/8-wave monopole";
  }
  return "unknown";
}

}  // namespace sinet::channel
