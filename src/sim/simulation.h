// Simulation context: event queue + named RNG streams + wall-clock anchor.
//
// Components receive a Simulation& and interact only through it, which
// keeps every run reproducible from (scenario, seed).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>

#include "sim/event_queue.h"
#include "sim/rng.h"

namespace sinet::obs {
class MetricsRegistry;
}  // namespace sinet::obs

namespace sinet::sim {

class Simulation {
 public:
  /// `epoch_unix_s`: wall-clock time (Unix seconds, UTC) of sim time 0.
  /// Lets orbital components convert SimTime to absolute epochs.
  explicit Simulation(std::uint64_t seed, double epoch_unix_s = 0.0)
      : rng_factory_(seed), epoch_unix_s_(epoch_unix_s) {}

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  [[nodiscard]] EventQueue& events() noexcept { return events_; }
  [[nodiscard]] SimTime now() const noexcept { return events_.now(); }
  [[nodiscard]] double epoch_unix_s() const noexcept { return epoch_unix_s_; }
  /// Absolute wall-clock (Unix seconds) of the current sim time.
  [[nodiscard]] double unix_now() const noexcept {
    return epoch_unix_s_ + now();
  }

  /// Named, lazily created random stream. Streams are stable: the same
  /// name always maps to the same seed for a given root seed.
  [[nodiscard]] Rng& rng(std::string_view component);

  EventHandle at(SimTime t, EventQueue::Callback cb) {
    return events_.schedule_at(t, std::move(cb));
  }
  EventHandle in(SimTime delay, EventQueue::Callback cb) {
    return events_.schedule_in(delay, std::move(cb));
  }

  std::size_t run_until(SimTime t) { return events_.run_until(t); }
  std::size_t run_all() { return events_.run_all(); }

  /// Observability: attach a metrics registry to the event queue (nullptr
  /// detaches; detached runs take no instrumentation cost) and flush the
  /// queue counters into it when a run finishes.
  void attach_metrics(obs::MetricsRegistry* registry) {
    events_.set_metrics(registry);
  }
  void publish_metrics() { events_.publish_metrics(); }

 private:
  EventQueue events_;
  RngFactory rng_factory_;
  double epoch_unix_s_;
  std::unordered_map<std::string, Rng> streams_;
};

}  // namespace sinet::sim
