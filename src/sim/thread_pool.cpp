#include "sim/thread_pool.h"

#include <atomic>
#include <exception>
#include <utility>

namespace sinet::sim {

ThreadPool::ThreadPool(unsigned thread_count) {
  if (thread_count == 0) thread_count = hardware_threads();
  workers_.reserve(thread_count);
  for (unsigned i = 0; i < thread_count; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (n == 1) {  // nothing to fan out; avoid the queue round trip
    body(0);
    return;
  }

  // Completion latch + per-index exception slots (rethrow lowest index so
  // failures are reproducible regardless of worker interleaving).
  struct State {
    std::mutex m;
    std::condition_variable done_cv;
    std::size_t remaining;
    std::vector<std::exception_ptr> errors;
  };
  auto state = std::make_shared<State>();
  state->remaining = n;
  state->errors.assign(n, nullptr);

  for (std::size_t i = 0; i < n; ++i) {
    submit([state, &body, i] {
      try {
        body(i);
      } catch (...) {
        state->errors[i] = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(state->m);
      if (--state->remaining == 0) state->done_cv.notify_all();
    });
  }

  std::unique_lock<std::mutex> lock(state->m);
  state->done_cv.wait(lock, [&] { return state->remaining == 0; });
  for (const std::exception_ptr& e : state->errors)
    if (e) std::rethrow_exception(e);
}

unsigned ThreadPool::hardware_threads() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1u : n;
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(hardware_threads());
  return pool;
}

}  // namespace sinet::sim
