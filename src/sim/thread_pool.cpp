#include "sim/thread_pool.h"

#include <exception>
#include <memory>
#include <string>
#include <utility>

#include "obs/metrics.h"

namespace sinet::sim {

namespace {
// Which pool (if any) owns the current thread. Lets parallel_for detect a
// nested call from one of its own workers and switch from blocking on the
// completion latch (which would deadlock a fully-busy pool) to helping
// drain the queue.
thread_local const ThreadPool* t_worker_pool = nullptr;
// Index of the current thread within its owning pool; only meaningful
// when t_worker_pool is set.
thread_local std::size_t t_worker_index = 0;
}  // namespace

ThreadPool::ThreadPool(unsigned thread_count) {
  if (thread_count == 0) thread_count = hardware_threads();
  busy_ns_ = std::make_unique<std::atomic<std::uint64_t>[]>(thread_count);
  for (unsigned i = 0; i < thread_count; ++i)
    busy_ns_[i].store(0, std::memory_order_relaxed);
  workers_.reserve(thread_count);
  for (unsigned i = 0; i < thread_count; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push(std::move(task));
    if (queue_.size() > max_queue_depth_) max_queue_depth_ = queue_.size();
  }
  cv_.notify_one();
}

bool ThreadPool::on_worker_thread() const noexcept {
  return t_worker_pool == this;
}

void ThreadPool::run_task(std::function<void()>& task,
                          std::size_t worker_index) {
  // Count before running: a parallel_for task's completion latch fires
  // inside task(), so counting afterwards would let the caller (and a
  // MetricsScope publishing on exit) observe fewer tasks than have
  // visibly completed.
  tasks_run_.fetch_add(1, std::memory_order_relaxed);
  if (timing_enabled_.load(std::memory_order_relaxed)) {
    const auto t0 = std::chrono::steady_clock::now();
    task();
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    busy_ns_[worker_index].fetch_add(static_cast<std::uint64_t>(ns),
                                     std::memory_order_relaxed);
  } else {
    task();
  }
}

void ThreadPool::worker_loop(std::size_t worker_index) {
  t_worker_pool = this;
  t_worker_index = worker_index;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      task = std::move(queue_.front());
      queue_.pop();
    }
    run_task(task, worker_index);
  }
}

bool ThreadPool::try_run_one_task() {
  std::function<void()> task;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop();
  }
  // Only ever called from parallel_for's helping branch, which requires
  // on_worker_thread(), so t_worker_index is valid here.
  run_task(task, t_worker_index);
  return true;
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (n == 1) {  // nothing to fan out; avoid the queue round trip
    body(0);
    return;
  }

  // Completion latch + per-index exception slots (rethrow lowest index so
  // failures are reproducible regardless of worker interleaving). The body
  // is copied into the shared state so queued tasks never dangle if the
  // caller's reference dies first.
  struct State {
    std::mutex m;
    std::condition_variable done_cv;
    std::size_t remaining;
    std::vector<std::exception_ptr> errors;
    std::function<void(std::size_t)> body;
  };
  auto state = std::make_shared<State>();
  state->remaining = n;
  state->errors.assign(n, nullptr);
  state->body = body;

  for (std::size_t i = 0; i < n; ++i) {
    submit([state, i] {
      try {
        state->body(i);
      } catch (...) {
        state->errors[i] = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(state->m);
      if (--state->remaining == 0) state->done_cv.notify_all();
    });
  }

  if (on_worker_thread()) {
    // Nested call: this worker is the thread that would run the queued
    // tasks, so blocking on done_cv could wait forever (it always does on
    // a 1-thread pool). Help drain the queue instead; once it is empty,
    // every task of ours is either done or in flight on another worker,
    // and waiting on the latch is safe.
    for (;;) {
      {
        std::lock_guard<std::mutex> lock(state->m);
        if (state->remaining == 0) break;
      }
      if (try_run_one_task()) continue;
      std::unique_lock<std::mutex> lock(state->m);
      state->done_cv.wait(lock, [&] { return state->remaining == 0; });
      break;
    }
  } else {
    std::unique_lock<std::mutex> lock(state->m);
    state->done_cv.wait(lock, [&] { return state->remaining == 0; });
  }

  for (const std::exception_ptr& e : state->errors)
    if (e) std::rethrow_exception(e);
}

unsigned ThreadPool::hardware_threads() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1u : n;
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(hardware_threads());
  return pool;
}

void ThreadPool::set_metrics(obs::MetricsRegistry* registry) {
  std::lock_guard<std::mutex> lock(metrics_mutex_);
  metrics_ = registry;
  if (registry != nullptr) {
    attach_time_ = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < workers_.size(); ++i)
      busy_ns_[i].store(0, std::memory_order_relaxed);
    timing_enabled_.store(true, std::memory_order_relaxed);
  } else {
    timing_enabled_.store(false, std::memory_order_relaxed);
  }
}

void ThreadPool::publish_metrics() {
  std::lock_guard<std::mutex> lock(metrics_mutex_);
  if (metrics_ == nullptr) return;
  const std::uint64_t run = tasks_run_.load(std::memory_order_relaxed);
  metrics_->counter("sim.thread_pool.tasks_run")
      .add(run - published_tasks_run_);
  published_tasks_run_ = run;
  metrics_->gauge("sim.thread_pool.workers")
      .set(static_cast<double>(workers_.size()));
  {
    std::lock_guard<std::mutex> qlock(mutex_);
    metrics_->gauge("sim.thread_pool.max_queue_depth")
        .set(static_cast<double>(max_queue_depth_));
  }
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    attach_time_)
          .count();
  double total_busy_s = 0.0;
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    const double busy_s =
        static_cast<double>(busy_ns_[i].load(std::memory_order_relaxed)) *
        1e-9;
    total_busy_s += busy_s;
    const std::string prefix =
        "sim.thread_pool.worker" + std::to_string(i);
    metrics_->gauge(prefix + ".busy_s").set(busy_s);
    metrics_->gauge(prefix + ".utilization")
        .set(wall_s > 0.0 ? busy_s / wall_s : 0.0);
  }
  metrics_->gauge("sim.thread_pool.busy_s").set(total_busy_s);
}

}  // namespace sinet::sim
