#include "sim/thread_pool.h"

#include <exception>
#include <memory>
#include <utility>

namespace sinet::sim {

namespace {
// Which pool (if any) owns the current thread. Lets parallel_for detect a
// nested call from one of its own workers and switch from blocking on the
// completion latch (which would deadlock a fully-busy pool) to helping
// drain the queue.
thread_local const ThreadPool* t_worker_pool = nullptr;
}  // namespace

ThreadPool::ThreadPool(unsigned thread_count) {
  if (thread_count == 0) thread_count = hardware_threads();
  workers_.reserve(thread_count);
  for (unsigned i = 0; i < thread_count; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push(std::move(task));
  }
  cv_.notify_one();
}

bool ThreadPool::on_worker_thread() const noexcept {
  return t_worker_pool == this;
}

void ThreadPool::worker_loop() {
  t_worker_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

bool ThreadPool::try_run_one_task() {
  std::function<void()> task;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop();
  }
  task();
  return true;
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (n == 1) {  // nothing to fan out; avoid the queue round trip
    body(0);
    return;
  }

  // Completion latch + per-index exception slots (rethrow lowest index so
  // failures are reproducible regardless of worker interleaving). The body
  // is copied into the shared state so queued tasks never dangle if the
  // caller's reference dies first.
  struct State {
    std::mutex m;
    std::condition_variable done_cv;
    std::size_t remaining;
    std::vector<std::exception_ptr> errors;
    std::function<void(std::size_t)> body;
  };
  auto state = std::make_shared<State>();
  state->remaining = n;
  state->errors.assign(n, nullptr);
  state->body = body;

  for (std::size_t i = 0; i < n; ++i) {
    submit([state, i] {
      try {
        state->body(i);
      } catch (...) {
        state->errors[i] = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(state->m);
      if (--state->remaining == 0) state->done_cv.notify_all();
    });
  }

  if (on_worker_thread()) {
    // Nested call: this worker is the thread that would run the queued
    // tasks, so blocking on done_cv could wait forever (it always does on
    // a 1-thread pool). Help drain the queue instead; once it is empty,
    // every task of ours is either done or in flight on another worker,
    // and waiting on the latch is safe.
    for (;;) {
      {
        std::lock_guard<std::mutex> lock(state->m);
        if (state->remaining == 0) break;
      }
      if (try_run_one_task()) continue;
      std::unique_lock<std::mutex> lock(state->m);
      state->done_cv.wait(lock, [&] { return state->remaining == 0; });
      break;
    }
  } else {
    std::unique_lock<std::mutex> lock(state->m);
    state->done_cv.wait(lock, [&] { return state->remaining == 0; });
  }

  for (const std::exception_ptr& e : state->errors)
    if (e) std::rethrow_exception(e);
}

unsigned ThreadPool::hardware_threads() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1u : n;
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(hardware_threads());
  return pool;
}

}  // namespace sinet::sim
