#include "sim/event_queue.h"

#include <chrono>
#include <memory>
#include <stdexcept>
#include <utility>

#include "obs/metrics.h"

namespace sinet::sim {

EventHandle EventQueue::schedule_at(SimTime t, Callback cb) {
  if (t < now_)
    throw std::invalid_argument("EventQueue: cannot schedule in the past");
  if (!cb) throw std::invalid_argument("EventQueue: null callback");
  const EventHandle h = next_seq_;
  heap_.push(Entry{t, next_seq_, h, std::move(cb)});
  ++next_seq_;
  pending_.insert(h);
  if (pending_.size() > max_pending_) max_pending_ = pending_.size();
  return h;
}

EventHandle EventQueue::schedule_in(SimTime delay, Callback cb) {
  if (delay < 0.0)
    throw std::invalid_argument("EventQueue: negative delay");
  return schedule_at(now_ + delay, std::move(cb));
}

EventHandle EventQueue::schedule_chain(std::vector<SimTime> times,
                                       std::function<void(std::size_t)> cb) {
  if (times.empty()) return kInvalidEvent;
  if (!cb) throw std::invalid_argument("EventQueue: null chain callback");
  for (std::size_t i = 1; i < times.size(); ++i)
    if (times[i] < times[i - 1])
      throw std::invalid_argument("EventQueue: chain times must be sorted");

  // Shared walker state: each fired link runs the visitor, then schedules
  // the next link. The chain holds exactly one pending entry at a time.
  struct Chain {
    std::vector<SimTime> times;
    std::function<void(std::size_t)> visit;
  };
  auto chain = std::make_shared<Chain>(Chain{std::move(times), std::move(cb)});
  auto fire = std::make_shared<std::function<void(std::size_t)>>();
  *fire = [this, chain, fire](std::size_t i) {
    chain->visit(i);
    if (i + 1 < chain->times.size())
      schedule_at(chain->times[i + 1], [fire, i] { (*fire)(i + 1); });
  };
  return schedule_at(chain->times.front(), [fire] { (*fire)(0); });
}

bool EventQueue::cancel(EventHandle h) {
  // Only a handle that is still pending may be cancelled: fired, unknown,
  // and double-cancelled handles all leave the queue state untouched, so
  // empty()/pending() can never report fewer events than the heap holds.
  if (pending_.erase(h) == 0) return false;
  cancelled_.insert(h);
  return true;
}

void EventQueue::purge_cancelled_top() const {
  while (!heap_.empty() && cancelled_.erase(heap_.top().handle) > 0)
    heap_.pop();
}

SimTime EventQueue::peek_time() const {
  purge_cancelled_top();
  if (heap_.empty())
    throw std::logic_error("EventQueue: peek_time on empty queue");
  return heap_.top().time;
}

bool EventQueue::step() {
  purge_cancelled_top();
  if (heap_.empty()) return false;
  Entry e = heap_.top();
  heap_.pop();
  pending_.erase(e.handle);
  now_ = e.time;
  ++executed_;
  if (handler_ms_) {
    const auto t0 = std::chrono::steady_clock::now();
    e.cb();
    const std::chrono::duration<double, std::milli> elapsed =
        std::chrono::steady_clock::now() - t0;
    handler_ms_->record(elapsed.count());
  } else {
    e.cb();
  }
  return true;
}

void EventQueue::set_metrics(obs::MetricsRegistry* registry) {
  metrics_ = registry;
  handler_ms_ =
      registry == nullptr
          ? nullptr
          : &registry->histogram("sim.event_queue.handler_ms", 0.0, 100.0,
                                 50);
}

std::size_t EventQueue::approx_memory_bytes() const noexcept {
  // Hash-set nodes cost roughly the key plus two pointers of per-node
  // overhead on mainstream implementations; the heap entries are stored
  // inline in the underlying vector. Approximate by element counts — the
  // point is an O(pending) bound, not an allocator audit.
  constexpr std::size_t kSetNodeBytes =
      sizeof(EventHandle) + 2 * sizeof(void*);
  return heap_.size() * sizeof(Entry) +
         (pending_.size() + cancelled_.size()) * kSetNodeBytes;
}

void EventQueue::publish_metrics() {
  if (metrics_ == nullptr) return;
  metrics_->counter("sim.event_queue.events_executed")
      .add(executed_ - published_executed_);
  published_executed_ = executed_;
  metrics_->gauge("sim.event_queue.max_pending")
      .set(static_cast<double>(max_pending_));
  metrics_->gauge("sim.event_queue.pending")
      .set(static_cast<double>(pending_.size()));
  // Gauge::set folds into the high-water mark, so the published max of
  // this gauge bounds queue memory across the run.
  metrics_->gauge("sim.event_queue.approx_bytes")
      .set(static_cast<double>(approx_memory_bytes()));
}

std::size_t EventQueue::run_until(SimTime until) {
  std::size_t executed = 0;
  while (!empty()) {
    const SimTime t = peek_time();
    if (t > until) break;
    if (step()) ++executed;
  }
  if (now_ < until) now_ = until;
  return executed;
}

std::size_t EventQueue::run_all() {
  std::size_t executed = 0;
  while (step()) ++executed;
  return executed;
}

}  // namespace sinet::sim
