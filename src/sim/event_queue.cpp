#include "sim/event_queue.h"

#include <chrono>
#include <stdexcept>
#include <utility>

#include "obs/metrics.h"

namespace sinet::sim {

EventHandle EventQueue::schedule_at(SimTime t, Callback cb) {
  if (t < now_)
    throw std::invalid_argument("EventQueue: cannot schedule in the past");
  if (!cb) throw std::invalid_argument("EventQueue: null callback");
  const EventHandle h = next_seq_;
  heap_.push(Entry{t, next_seq_, h, std::move(cb)});
  ++next_seq_;
  pending_.insert(h);
  if (pending_.size() > max_pending_) max_pending_ = pending_.size();
  return h;
}

EventHandle EventQueue::schedule_in(SimTime delay, Callback cb) {
  if (delay < 0.0)
    throw std::invalid_argument("EventQueue: negative delay");
  return schedule_at(now_ + delay, std::move(cb));
}

bool EventQueue::cancel(EventHandle h) {
  // Only a handle that is still pending may be cancelled: fired, unknown,
  // and double-cancelled handles all leave the queue state untouched, so
  // empty()/pending() can never report fewer events than the heap holds.
  if (pending_.erase(h) == 0) return false;
  cancelled_.insert(h);
  return true;
}

void EventQueue::purge_cancelled_top() const {
  while (!heap_.empty() && cancelled_.erase(heap_.top().handle) > 0)
    heap_.pop();
}

SimTime EventQueue::peek_time() const {
  purge_cancelled_top();
  if (heap_.empty())
    throw std::logic_error("EventQueue: peek_time on empty queue");
  return heap_.top().time;
}

bool EventQueue::step() {
  purge_cancelled_top();
  if (heap_.empty()) return false;
  Entry e = heap_.top();
  heap_.pop();
  pending_.erase(e.handle);
  now_ = e.time;
  ++executed_;
  if (handler_ms_) {
    const auto t0 = std::chrono::steady_clock::now();
    e.cb();
    const std::chrono::duration<double, std::milli> elapsed =
        std::chrono::steady_clock::now() - t0;
    handler_ms_->record(elapsed.count());
  } else {
    e.cb();
  }
  return true;
}

void EventQueue::set_metrics(obs::MetricsRegistry* registry) {
  metrics_ = registry;
  handler_ms_ =
      registry == nullptr
          ? nullptr
          : &registry->histogram("sim.event_queue.handler_ms", 0.0, 100.0,
                                 50);
}

void EventQueue::publish_metrics() {
  if (metrics_ == nullptr) return;
  metrics_->counter("sim.event_queue.events_executed")
      .add(executed_ - published_executed_);
  published_executed_ = executed_;
  metrics_->gauge("sim.event_queue.max_pending")
      .set(static_cast<double>(max_pending_));
  metrics_->gauge("sim.event_queue.pending")
      .set(static_cast<double>(pending_.size()));
}

std::size_t EventQueue::run_until(SimTime until) {
  std::size_t executed = 0;
  while (!empty()) {
    const SimTime t = peek_time();
    if (t > until) break;
    if (step()) ++executed;
  }
  if (now_ < until) now_ = until;
  return executed;
}

std::size_t EventQueue::run_all() {
  std::size_t executed = 0;
  while (step()) ++executed;
  return executed;
}

}  // namespace sinet::sim
