#include "sim/event_queue.h"

#include <stdexcept>
#include <utility>

namespace sinet::sim {

EventHandle EventQueue::schedule_at(SimTime t, Callback cb) {
  if (t < now_)
    throw std::invalid_argument("EventQueue: cannot schedule in the past");
  if (!cb) throw std::invalid_argument("EventQueue: null callback");
  const EventHandle h = next_seq_;
  heap_.push(Entry{t, next_seq_, h, std::move(cb)});
  ++next_seq_;
  pending_.insert(h);
  return h;
}

EventHandle EventQueue::schedule_in(SimTime delay, Callback cb) {
  if (delay < 0.0)
    throw std::invalid_argument("EventQueue: negative delay");
  return schedule_at(now_ + delay, std::move(cb));
}

bool EventQueue::cancel(EventHandle h) {
  // Only a handle that is still pending may be cancelled: fired, unknown,
  // and double-cancelled handles all leave the queue state untouched, so
  // empty()/pending() can never report fewer events than the heap holds.
  if (pending_.erase(h) == 0) return false;
  cancelled_.insert(h);
  return true;
}

void EventQueue::purge_cancelled_top() const {
  while (!heap_.empty() && cancelled_.erase(heap_.top().handle) > 0)
    heap_.pop();
}

SimTime EventQueue::peek_time() const {
  purge_cancelled_top();
  if (heap_.empty())
    throw std::logic_error("EventQueue: peek_time on empty queue");
  return heap_.top().time;
}

bool EventQueue::step() {
  purge_cancelled_top();
  if (heap_.empty()) return false;
  Entry e = heap_.top();
  heap_.pop();
  pending_.erase(e.handle);
  now_ = e.time;
  e.cb();
  return true;
}

std::size_t EventQueue::run_until(SimTime until) {
  std::size_t executed = 0;
  while (!empty()) {
    const SimTime t = peek_time();
    if (t > until) break;
    if (step()) ++executed;
  }
  if (now_ < until) now_ = until;
  return executed;
}

std::size_t EventQueue::run_all() {
  std::size_t executed = 0;
  while (step()) ++executed;
  return executed;
}

}  // namespace sinet::sim
