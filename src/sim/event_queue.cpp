#include "sim/event_queue.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace sinet::sim {

EventHandle EventQueue::schedule_at(SimTime t, Callback cb) {
  if (t < now_)
    throw std::invalid_argument("EventQueue: cannot schedule in the past");
  if (!cb) throw std::invalid_argument("EventQueue: null callback");
  const EventHandle h = next_seq_;
  heap_.push(Entry{t, next_seq_, h, std::move(cb)});
  ++next_seq_;
  ++live_;
  return h;
}

EventHandle EventQueue::schedule_in(SimTime delay, Callback cb) {
  if (delay < 0.0)
    throw std::invalid_argument("EventQueue: negative delay");
  return schedule_at(now_ + delay, std::move(cb));
}

bool EventQueue::cancel(EventHandle h) {
  if (h == kInvalidEvent || h >= next_seq_) return false;
  if (is_cancelled(h)) return false;
  cancelled_.push_back(h);
  if (live_ > 0) --live_;
  return true;
}

bool EventQueue::is_cancelled(EventHandle h) {
  return std::find(cancelled_.begin(), cancelled_.end(), h) !=
         cancelled_.end();
}

bool EventQueue::empty() const noexcept { return live_ == 0; }

SimTime EventQueue::peek_time() const {
  // Const view: skip tombstoned entries without popping. The heap top is
  // the earliest entry; tombstones are purged in step(), so we conservatively
  // report the top entry's time (a cancelled top is purged on next step).
  auto* self = const_cast<EventQueue*>(this);
  while (!self->heap_.empty() &&
         self->is_cancelled(self->heap_.top().handle)) {
    self->heap_.pop();
  }
  if (self->heap_.empty())
    throw std::logic_error("EventQueue: peek_time on empty queue");
  return self->heap_.top().time;
}

bool EventQueue::step() {
  while (!heap_.empty()) {
    if (is_cancelled(heap_.top().handle)) {
      heap_.pop();
      continue;
    }
    Entry e = heap_.top();
    heap_.pop();
    --live_;
    now_ = e.time;
    // Opportunistically clear tombstones once the heap drains.
    if (heap_.empty()) cancelled_.clear();
    e.cb();
    return true;
  }
  cancelled_.clear();
  return false;
}

std::size_t EventQueue::run_until(SimTime until) {
  std::size_t executed = 0;
  while (!empty()) {
    const SimTime t = peek_time();
    if (t > until) break;
    if (step()) ++executed;
  }
  if (now_ < until) now_ = until;
  return executed;
}

std::size_t EventQueue::run_all() {
  std::size_t executed = 0;
  while (step()) ++executed;
  return executed;
}

}  // namespace sinet::sim
