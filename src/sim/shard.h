// Deterministic conflict scheduling for sharded simulation.
//
// The parallel DtS engine (net/dts_batch.cpp) divides a run into fixed
// time slices and, inside each slice, groups satellites whose footprints
// touch a common ground location into one shard: shards never share a
// mutable resource, so they can run concurrently on sim::ThreadPool with
// no locks, and the schedule itself is a pure function of the input —
// identical for every thread count. This header is the generic piece:
// members (e.g. satellites) declare which resources (e.g. location
// indices) they touch in which slice, and build() returns, per slice,
// the connected components of the member/resource sharing graph as
// sorted member lists in a canonical order.
#pragma once

#include <cstdint>
#include <vector>

namespace sinet::sim {

/// Connected-component batches of one time slice: each inner vector is
/// one shard (members sorted ascending); shards are ordered by their
/// smallest member. Members of different shards share no resource within
/// the slice and may execute concurrently.
struct SliceShards {
  std::vector<std::vector<std::uint32_t>> shards;
};

/// Accumulates (slice, member, resource) touches and computes the
/// conflict schedule. Deterministic: the output depends only on the set
/// of touches, not on insertion order. Not thread-safe during
/// registration; build() is const and may be called repeatedly.
class ConflictScheduler {
 public:
  /// `member_count` fixes the member index universe [0, member_count).
  explicit ConflictScheduler(std::uint32_t member_count);

  /// Record that `member` uses `resource` during `slice`. Two members
  /// touching the same resource in the same slice land in one shard
  /// (transitively). Grows the slice count as needed.
  void touch(std::uint32_t slice, std::uint32_t member,
             std::uint64_t resource);

  /// Record that `member` is active in `slice` without claiming any
  /// shared resource (e.g. a satellite draining its own buffer): it
  /// becomes its own singleton shard unless touch() also links it.
  void activate(std::uint32_t slice, std::uint32_t member);

  [[nodiscard]] std::uint32_t slice_count() const noexcept {
    return static_cast<std::uint32_t>(slices_.size());
  }

  /// Shards for every slice, in slice order. Slices with no active
  /// member yield an empty shard list.
  [[nodiscard]] std::vector<SliceShards> build() const;

 private:
  struct SliceTouches {
    /// (resource, member) pairs; sorted + deduped at build time.
    std::vector<std::pair<std::uint64_t, std::uint32_t>> touches;
    std::vector<std::uint32_t> active;
  };

  std::uint32_t member_count_;
  std::vector<SliceTouches> slices_;
};

}  // namespace sinet::sim
