#include "sim/shard.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace sinet::sim {

namespace {

/// Union-find over member indices with path halving; no rank (member
/// counts per slice are small and the find chain is already short).
class UnionFind {
 public:
  explicit UnionFind(std::uint32_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0u);
  }

  std::uint32_t find(std::uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  /// Union by smaller root index so the representative of a component is
  /// always its smallest member — canonical without a second pass.
  void unite(std::uint32_t a, std::uint32_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    if (b < a) std::swap(a, b);
    parent_[b] = a;
  }

 private:
  std::vector<std::uint32_t> parent_;
};

}  // namespace

ConflictScheduler::ConflictScheduler(std::uint32_t member_count)
    : member_count_(member_count) {}

void ConflictScheduler::touch(std::uint32_t slice, std::uint32_t member,
                              std::uint64_t resource) {
  if (member >= member_count_)
    throw std::out_of_range("ConflictScheduler: member out of range");
  if (slice >= slices_.size()) slices_.resize(slice + 1);
  slices_[slice].touches.emplace_back(resource, member);
}

void ConflictScheduler::activate(std::uint32_t slice, std::uint32_t member) {
  if (member >= member_count_)
    throw std::out_of_range("ConflictScheduler: member out of range");
  if (slice >= slices_.size()) slices_.resize(slice + 1);
  slices_[slice].active.push_back(member);
}

std::vector<SliceShards> ConflictScheduler::build() const {
  std::vector<SliceShards> out(slices_.size());
  for (std::size_t k = 0; k < slices_.size(); ++k) {
    const SliceTouches& st = slices_[k];
    if (st.touches.empty() && st.active.empty()) continue;

    // Sort touches by (resource, member): equal-resource runs become
    // union chains, and the sort makes the result insertion-order-free.
    auto touches = st.touches;
    std::sort(touches.begin(), touches.end());
    touches.erase(std::unique(touches.begin(), touches.end()),
                  touches.end());

    UnionFind uf(member_count_);
    std::vector<std::uint32_t> members;
    members.reserve(touches.size() + st.active.size());
    for (std::size_t i = 0; i < touches.size(); ++i) {
      members.push_back(touches[i].second);
      if (i > 0 && touches[i].first == touches[i - 1].first)
        uf.unite(touches[i - 1].second, touches[i].second);
    }
    for (const std::uint32_t m : st.active) members.push_back(m);
    std::sort(members.begin(), members.end());
    members.erase(std::unique(members.begin(), members.end()),
                  members.end());

    // Emit components keyed by their (smallest-member) representative;
    // iterating members in ascending order yields shards ordered by
    // smallest member with each shard's list already sorted.
    std::vector<std::int64_t> shard_of(member_count_, -1);
    SliceShards& slice_out = out[k];
    for (const std::uint32_t m : members) {
      const std::uint32_t root = uf.find(m);
      if (shard_of[root] < 0) {
        shard_of[root] =
            static_cast<std::int64_t>(slice_out.shards.size());
        slice_out.shards.emplace_back();
      }
      slice_out.shards[static_cast<std::size_t>(shard_of[root])]
          .push_back(m);
    }
  }
  return out;
}

}  // namespace sinet::sim
