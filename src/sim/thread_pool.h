// Fixed-size thread pool for embarrassingly parallel fan-out.
//
// The hot loops of the reproduction (pass prediction over a full
// (site x constellation x satellite) campaign) are independent per task,
// so a deliberately simple design wins: one shared FIFO queue guarded by
// a mutex, a fixed set of workers, no work stealing. Determinism is the
// caller's job — tasks write into pre-sized slots indexed by input
// position, so results never depend on scheduling order.
//
// parallel_for is nesting-safe: a worker thread that calls parallel_for
// on its own pool helps drain the task queue instead of blocking, so
// nested fan-outs complete even on a 1-thread pool (the `threads=1`
// exact-legacy mode).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace sinet::obs {
class MetricsRegistry;
}  // namespace sinet::obs

namespace sinet::sim {

class ThreadPool {
 public:
  /// Spawn `thread_count` workers; 0 means hardware_threads().
  explicit ThreadPool(unsigned thread_count = 0);
  /// Drains the queue (pending tasks still run), then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned size() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// Enqueue one task. Tasks must not throw out of the pool unobserved;
  /// prefer parallel_for, which captures and rethrows exceptions.
  void submit(std::function<void()> task);

  /// Run body(0..n-1) across the workers and block until every index has
  /// finished. Results are deterministic as long as body(i) only writes
  /// state owned by index i. The first exception thrown by any body (in
  /// index order) is rethrown on the calling thread after all indices
  /// complete or are abandoned. Safe to call from inside a pool task:
  /// the calling worker executes queued tasks while it waits.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t)>& body);

  /// True when the calling thread is one of this pool's workers.
  [[nodiscard]] bool on_worker_thread() const noexcept;

  /// std::thread::hardware_concurrency with a floor of 1.
  [[nodiscard]] static unsigned hardware_threads() noexcept;

  /// Lazily-constructed process-wide pool with hardware_threads() workers.
  /// Shared by every batch API so nested fan-outs reuse one set of
  /// threads instead of oversubscribing the machine.
  [[nodiscard]] static ThreadPool& shared();

  /// Tasks executed since construction (always tracked; one relaxed
  /// atomic increment per task).
  [[nodiscard]] std::uint64_t tasks_run() const noexcept {
    return tasks_run_.load(std::memory_order_relaxed);
  }

  /// Attach a metrics registry (nullptr detaches). While attached each
  /// task is timed into a per-worker busy-time accumulator; detached (the
  /// default) workers take no clock reads.
  void set_metrics(obs::MetricsRegistry* registry);

  /// Flush pool counters into the attached registry under
  /// "sim.thread_pool.*": tasks_run (incremental), max_queue_depth,
  /// workers, and per-worker busy_s / utilization gauges (utilization is
  /// busy time over wall time since the registry was attached). No-op
  /// when detached.
  void publish_metrics();

  /// RAII attach/publish/detach. Drivers wrap the process-wide shared()
  /// pool with a scope so the pool never keeps a pointer to a registry
  /// that has gone out of scope.
  class MetricsScope {
   public:
    MetricsScope(ThreadPool& pool, obs::MetricsRegistry* registry)
        : pool_(pool), armed_(registry != nullptr) {
      if (armed_) pool_.set_metrics(registry);
    }
    ~MetricsScope() {
      if (armed_) {
        pool_.publish_metrics();
        pool_.set_metrics(nullptr);
      }
    }
    MetricsScope(const MetricsScope&) = delete;
    MetricsScope& operator=(const MetricsScope&) = delete;

   private:
    ThreadPool& pool_;
    bool armed_;
  };

 private:
  void worker_loop(std::size_t worker_index);
  /// Pop one task if available and run it outside the lock.
  bool try_run_one_task();
  /// Run `task`, bumping tasks_run_ and (when timing is on) the calling
  /// worker's busy-time accumulator.
  void run_task(std::function<void()>& task, std::size_t worker_index);

  std::mutex mutex_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stop_ = false;

  std::size_t max_queue_depth_ = 0;  // guarded by mutex_
  std::atomic<std::uint64_t> tasks_run_{0};
  // Per-worker busy time in nanoseconds; fixed-size, allocated once in
  // the constructor so enabling timing mid-flight never races an
  // allocation with a running worker.
  std::unique_ptr<std::atomic<std::uint64_t>[]> busy_ns_;
  std::atomic<bool> timing_enabled_{false};

  std::mutex metrics_mutex_;
  obs::MetricsRegistry* metrics_ = nullptr;  // guarded by metrics_mutex_
  std::uint64_t published_tasks_run_ = 0;    // guarded by metrics_mutex_
  std::chrono::steady_clock::time_point attach_time_{};
};

}  // namespace sinet::sim
