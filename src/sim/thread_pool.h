// Fixed-size thread pool for embarrassingly parallel fan-out.
//
// The hot loops of the reproduction (pass prediction over a full
// (site x constellation x satellite) campaign) are independent per task,
// so a deliberately simple design wins: one shared FIFO queue guarded by
// a mutex, a fixed set of workers, no work stealing. Determinism is the
// caller's job — tasks write into pre-sized slots indexed by input
// position, so results never depend on scheduling order.
//
// parallel_for is nesting-safe: a worker thread that calls parallel_for
// on its own pool helps drain the task queue instead of blocking, so
// nested fan-outs complete even on a 1-thread pool (the `threads=1`
// exact-legacy mode).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace sinet::sim {

class ThreadPool {
 public:
  /// Spawn `thread_count` workers; 0 means hardware_threads().
  explicit ThreadPool(unsigned thread_count = 0);
  /// Drains the queue (pending tasks still run), then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned size() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// Enqueue one task. Tasks must not throw out of the pool unobserved;
  /// prefer parallel_for, which captures and rethrows exceptions.
  void submit(std::function<void()> task);

  /// Run body(0..n-1) across the workers and block until every index has
  /// finished. Results are deterministic as long as body(i) only writes
  /// state owned by index i. The first exception thrown by any body (in
  /// index order) is rethrown on the calling thread after all indices
  /// complete or are abandoned. Safe to call from inside a pool task:
  /// the calling worker executes queued tasks while it waits.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t)>& body);

  /// True when the calling thread is one of this pool's workers.
  [[nodiscard]] bool on_worker_thread() const noexcept;

  /// std::thread::hardware_concurrency with a floor of 1.
  [[nodiscard]] static unsigned hardware_threads() noexcept;

  /// Lazily-constructed process-wide pool with hardware_threads() workers.
  /// Shared by every batch API so nested fan-outs reuse one set of
  /// threads instead of oversubscribing the machine.
  [[nodiscard]] static ThreadPool& shared();

 private:
  void worker_loop();
  /// Pop one task if available and run it outside the lock.
  bool try_run_one_task();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stop_ = false;
};

}  // namespace sinet::sim
