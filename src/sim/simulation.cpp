#include "sim/simulation.h"

namespace sinet::sim {

Rng& Simulation::rng(std::string_view component) {
  const auto it = streams_.find(std::string(component));
  if (it != streams_.end()) return it->second;
  auto [inserted, ok] = streams_.emplace(std::string(component),
                                         rng_factory_.make(component));
  return inserted->second;
}

}  // namespace sinet::sim
