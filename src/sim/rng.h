// Seeded random number streams for reproducible simulation.
//
// Every stochastic component (channel fading, packet jitter, weather, ...)
// draws from its own named stream so that adding a component never
// perturbs the draws of another — runs stay comparable across versions.
//
// Cross-platform determinism: every distribution below is an explicit
// algorithm over the raw (fully specified) mt19937_64 output — no
// std::*_distribution, whose sequences are implementation-defined and
// differ between standard libraries. This is what lets a sweep manifest
// written on one toolchain resume on another (see exp/sweep_runner.h);
// test_sim.cpp pins golden values for each helper.
#pragma once

#include <cstdint>
#include <random>
#include <string_view>

namespace sinet::sim {

/// One random stream. Thin, value-semantic wrapper over a 64-bit engine
/// with the distribution helpers the simulator needs.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Raw 64-bit engine draw (the primitive every helper is built on).
  std::uint64_t next_u64() { return engine_(); }
  /// Uniform in [0, 1), 53-bit resolution: (next_u64() >> 11) * 2^-53.
  double uniform();
  /// Uniform in [lo, hi). Requires hi >= lo.
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] inclusive (unbiased rejection sampling
  /// over raw draws).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Standard normal (mean 0, stddev 1) by inverse-transform sampling
  /// (Wichura's AS241 PPND16 inverse CDF); one uniform per draw.
  double normal();
  /// Normal with given mean / stddev.
  double normal(double mean, double stddev);
  /// Exponential with given mean (>0).
  double exponential(double mean);
  /// Bernoulli trial with probability p (clamped to [0,1]).
  bool chance(double p);
  /// Rayleigh-distributed magnitude with scale sigma.
  double rayleigh(double sigma);
  /// Rician fading amplitude with K-factor (dB) and mean power 1.
  double rician_amplitude(double k_factor_db);

  std::mt19937_64& engine() noexcept { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// Derive a child seed from a root seed and a component name (FNV-1a).
/// Deterministic across platforms.
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t root,
                                        std::string_view component);

/// Derive the `counter`-th child seed of `base` — the counter-based
/// (numeric) sibling of derive_seed for hot paths that would otherwise
/// format a string per draw (e.g. "node/<i>/event/<k>"). Splitmix64-style
/// avalanche over (base, counter): consecutive counters yield unrelated
/// seeds, so a per-entity stream family can be opened at any index in
/// O(1) with no shared state. Deterministic across platforms; golden
/// values pinned in test_sim.cpp.
[[nodiscard]] std::uint64_t derive_stream(std::uint64_t base,
                                          std::uint64_t counter);

/// Factory producing independent named streams from one root seed.
class RngFactory {
 public:
  explicit RngFactory(std::uint64_t root_seed) : root_(root_seed) {}
  [[nodiscard]] Rng make(std::string_view component) const {
    return Rng(derive_seed(root_, component));
  }
  [[nodiscard]] std::uint64_t root_seed() const noexcept { return root_; }

 private:
  std::uint64_t root_;
};

}  // namespace sinet::sim
