// Deterministic discrete-event queue.
//
// Events are ordered by (time, insertion sequence) so that equal-time
// events fire in schedule order — a requirement for reproducible protocol
// simulations across platforms and STL implementations.
//
// Cancellation is lazy: cancel() tombstones the handle in O(1) and the
// heap entry is discarded when it reaches the top. The pending-handle set
// is the source of truth for liveness, so cancel() on an already-fired or
// unknown handle is a strict no-op (it cannot desynchronize empty() /
// pending() from the heap contents).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

namespace sinet::obs {
class Histogram;
class MetricsRegistry;
}  // namespace sinet::obs

namespace sinet::sim {

/// Simulation time in seconds since simulation epoch.
using SimTime = double;

using EventHandle = std::uint64_t;
inline constexpr EventHandle kInvalidEvent = 0;

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedule `cb` at absolute time `t`. Returns a handle usable with
  /// cancel(). Throws std::invalid_argument if t precedes now().
  EventHandle schedule_at(SimTime t, Callback cb);

  /// Schedule `cb` `delay` seconds from now (delay >= 0).
  EventHandle schedule_in(SimTime delay, Callback cb);

  /// Lazily cancel a pending event. Cancelling an already-fired,
  /// already-cancelled, or unknown handle is a harmless no-op that
  /// returns false. Returns true iff the event was pending.
  bool cancel(EventHandle h);

  /// Batching helper for population-scale simulations: visit every time
  /// in `times` (non-decreasing, first one >= now()) with `cb(index)`,
  /// but keep only ONE pending heap entry for the whole chain — each
  /// link schedules its successor when it fires. A per-satellite beacon
  /// grid of millions of ticks therefore costs O(1) queue memory instead
  /// of one Entry (~= 80 bytes + callback state) per tick. Returns the
  /// handle of the first link (kInvalidEvent for an empty chain);
  /// cancelling it stops the whole chain.
  EventHandle schedule_chain(std::vector<SimTime> times,
                             std::function<void(std::size_t)> cb);

  [[nodiscard]] bool empty() const noexcept { return pending_.empty(); }
  [[nodiscard]] std::size_t pending() const noexcept {
    return pending_.size();
  }
  [[nodiscard]] SimTime now() const noexcept { return now_; }
  /// Time of the next live event; throws std::logic_error when empty.
  [[nodiscard]] SimTime peek_time() const;

  /// Pop and run the next event, advancing now(). Returns false if empty.
  bool step();

  /// Run until the queue drains or now() would exceed `until`.
  /// Events at exactly `until` are executed. Returns events executed.
  std::size_t run_until(SimTime until);

  /// Run until the queue drains. Returns events executed.
  std::size_t run_all();

  /// Events executed since construction (always tracked; two integer ops
  /// per event, no clock reads).
  [[nodiscard]] std::uint64_t executed() const noexcept { return executed_; }
  /// High-water mark of pending() over the queue's lifetime.
  [[nodiscard]] std::size_t max_pending() const noexcept {
    return max_pending_;
  }

  /// Approximate bytes held by the queue's own containers: heap entries
  /// (including tombstoned ones awaiting their turn at the top) plus the
  /// pending/cancelled hash sets. Callback capture state is not visible
  /// from here and is not counted — the figure bounds the queue's
  /// bookkeeping, which is the part that scales with pending events.
  [[nodiscard]] std::size_t approx_memory_bytes() const noexcept;

  /// Attach a metrics registry (nullptr detaches). While attached, each
  /// handler's wall time is sampled into the "sim.event_queue.handler_ms"
  /// histogram; detached (the default) the queue takes no clock reads and
  /// touches no registry state.
  void set_metrics(obs::MetricsRegistry* registry);

  /// Flush the executed/high-water counters into the attached registry
  /// ("sim.event_queue.*"). No-op when detached. Incremental: only the
  /// events executed since the previous publish are added.
  void publish_metrics();

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;
    EventHandle handle;
    Callback cb;
    bool operator>(const Entry& o) const noexcept {
      if (time != o.time) return time > o.time;
      return seq > o.seq;
    }
  };

  /// Drop cancelled entries sitting at the top of the heap. Logically
  /// const: only tombstoned garbage is removed, never a live event.
  void purge_cancelled_top() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, std::greater<>>
      heap_;
  mutable std::unordered_set<EventHandle> cancelled_;  // O(1) tombstones
  std::unordered_set<EventHandle> pending_;  // scheduled, not fired/cancelled
  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 1;

  std::uint64_t executed_ = 0;
  std::uint64_t published_executed_ = 0;
  std::size_t max_pending_ = 0;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Histogram* handler_ms_ = nullptr;  // resolved once in set_metrics
};

}  // namespace sinet::sim
