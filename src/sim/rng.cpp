#include "sim/rng.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sinet::sim {

double Rng::uniform() {
  return std::generate_canonical<double, 53>(engine_);
}

double Rng::uniform(double lo, double hi) {
  if (hi < lo) throw std::invalid_argument("Rng::uniform: hi < lo");
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (hi < lo) throw std::invalid_argument("Rng::uniform_int: hi < lo");
  std::uniform_int_distribution<std::int64_t> d(lo, hi);
  return d(engine_);
}

double Rng::normal() {
  std::normal_distribution<double> d(0.0, 1.0);
  return d(engine_);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::exponential(double mean) {
  if (mean <= 0.0) throw std::invalid_argument("Rng::exponential: mean <= 0");
  return -mean * std::log1p(-uniform());
}

bool Rng::chance(double p) {
  const double clamped = std::clamp(p, 0.0, 1.0);
  return uniform() < clamped;
}

double Rng::rayleigh(double sigma) {
  if (sigma <= 0.0) throw std::invalid_argument("Rng::rayleigh: sigma <= 0");
  return sigma * std::sqrt(-2.0 * std::log1p(-uniform()));
}

double Rng::rician_amplitude(double k_factor_db) {
  // Rician with mean power E[r^2] = 1: deterministic LoS component of
  // power K/(K+1) plus scattered complex Gaussian of power 1/(K+1).
  const double k = std::pow(10.0, k_factor_db / 10.0);
  const double los = std::sqrt(k / (k + 1.0));
  const double sigma = std::sqrt(1.0 / (2.0 * (k + 1.0)));
  const double x = los + sigma * normal();
  const double y = sigma * normal();
  return std::sqrt(x * x + y * y);
}

std::uint64_t derive_seed(std::uint64_t root, std::string_view component) {
  // FNV-1a over the component name, mixed with the root seed, then a
  // splitmix64 finalizer for avalanche.
  std::uint64_t h = 14695981039346656037ull ^ root;
  for (const char c : component) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 1099511628211ull;
  }
  h += 0x9E3779B97F4A7C15ull;
  h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ull;
  h = (h ^ (h >> 27)) * 0x94D049BB133111EBull;
  return h ^ (h >> 31);
}

}  // namespace sinet::sim
