#include "sim/rng.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sinet::sim {

namespace {

// Inverse of the standard normal CDF: Wichura's algorithm AS241,
// routine PPND16 (Applied Statistics 37, 1988). Absolute error below
// ~1e-15 over (0, 1); an explicit rational approximation, so the draw
// sequence does not depend on which standard library implements
// std::normal_distribution.
double inverse_normal_cdf(double p) {
  const double q = p - 0.5;
  if (std::abs(q) <= 0.425) {
    const double r = 0.180625 - q * q;
    return q *
           (((((((2.5090809287301226727e3 * r + 3.3430575583588128105e4) * r +
                 6.7265770927008700853e4) * r + 4.5921953931549871457e4) * r +
               1.3731693765509461125e4) * r + 1.9715909503065514427e3) * r +
             1.3314166789178437745e2) * r + 3.3871328727963666080e0) /
           (((((((5.2264952788528545610e3 * r + 2.8729085735721942674e4) * r +
                 3.9307895800092710610e4) * r + 2.1213794301586595867e4) * r +
               5.3941960214247511077e3) * r + 6.8718700749205790830e2) * r +
             4.2313330701600911252e1) * r + 1.0);
  }
  double r = q < 0.0 ? p : 1.0 - p;
  r = std::sqrt(-std::log(r));
  double v;
  if (r <= 5.0) {
    r -= 1.6;
    v = (((((((7.74545014278341407640e-4 * r + 2.27238449892691845833e-2) *
                  r + 2.41780725177450611770e-1) * r +
             1.27045825245236838258e0) * r + 3.64784832476320460504e0) * r +
           5.76949722146069140550e0) * r + 4.63033784615654529590e0) * r +
         1.42343711074968357734e0) /
        (((((((1.05075007164441684324e-9 * r + 5.47593808499534494600e-4) *
                  r + 1.51986665636164571966e-2) * r +
             1.48103976427480074590e-1) * r + 6.89767334985100004550e-1) *
           r + 1.67638483018380384940e0) * r + 2.05319162663775882187e0) *
             r + 1.0);
  } else {
    r -= 5.0;
    v = (((((((2.01033439929228813265e-7 * r + 2.71155556874348757815e-5) *
                  r + 1.24266094738807843860e-3) * r +
             2.65321895265761230930e-2) * r + 2.96560571828504891230e-1) *
              r + 1.78482653991729133580e0) * r + 5.46378491116411436990e0) *
             r + 6.65790464350110377720e0) /
        (((((((2.04426310338993978564e-15 * r + 1.42151175831644588870e-7) *
                  r + 1.84631831751005468180e-5) * r +
             7.86869131145613259100e-4) * r + 1.48753612908506148525e-2) *
           r + 1.36929880922735805310e-1) * r + 5.99832206555887937690e-1) *
             r + 1.0);
  }
  return q < 0.0 ? -v : v;
}

}  // namespace

double Rng::uniform() {
  // 53-bit mantissa from the top bits of one fully-specified raw draw.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  if (hi < lo) throw std::invalid_argument("Rng::uniform: hi < lo");
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (hi < lo) throw std::invalid_argument("Rng::uniform_int: hi < lo");
  const std::uint64_t span = static_cast<std::uint64_t>(hi) -
                             static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Unbiased rejection: discard draws below 2^64 mod span so every
  // residue is equally likely.
  const std::uint64_t threshold = (0 - span) % span;
  std::uint64_t raw;
  do {
    raw = next_u64();
  } while (raw < threshold);
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) +
                                   raw % span);
}

double Rng::normal() {
  // Inverse-transform sampling; reject u == 0 (probability 2^-53) so the
  // inverse CDF stays finite.
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return inverse_normal_cdf(u);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::exponential(double mean) {
  if (mean <= 0.0) throw std::invalid_argument("Rng::exponential: mean <= 0");
  return -mean * std::log1p(-uniform());
}

bool Rng::chance(double p) {
  const double clamped = std::clamp(p, 0.0, 1.0);
  return uniform() < clamped;
}

double Rng::rayleigh(double sigma) {
  if (sigma <= 0.0) throw std::invalid_argument("Rng::rayleigh: sigma <= 0");
  return sigma * std::sqrt(-2.0 * std::log1p(-uniform()));
}

double Rng::rician_amplitude(double k_factor_db) {
  // Rician with mean power E[r^2] = 1: deterministic LoS component of
  // power K/(K+1) plus scattered complex Gaussian of power 1/(K+1).
  const double k = std::pow(10.0, k_factor_db / 10.0);
  const double los = std::sqrt(k / (k + 1.0));
  const double sigma = std::sqrt(1.0 / (2.0 * (k + 1.0)));
  const double x = los + sigma * normal();
  const double y = sigma * normal();
  return std::sqrt(x * x + y * y);
}

std::uint64_t derive_seed(std::uint64_t root, std::string_view component) {
  // FNV-1a over the component name, mixed with the root seed, then a
  // splitmix64 finalizer for avalanche.
  std::uint64_t h = 14695981039346656037ull ^ root;
  for (const char c : component) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 1099511628211ull;
  }
  h += 0x9E3779B97F4A7C15ull;
  h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ull;
  h = (h ^ (h >> 27)) * 0x94D049BB133111EBull;
  return h ^ (h >> 31);
}

std::uint64_t derive_stream(std::uint64_t base, std::uint64_t counter) {
  // Advance `base` along the splitmix64 golden-ratio orbit by counter+1
  // steps (closed form), then run the standard finalizer. The +1 keeps
  // derive_stream(base, 0) != base itself even before mixing.
  std::uint64_t z = base + 0x9E3779B97F4A7C15ull * (counter + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace sinet::sim
