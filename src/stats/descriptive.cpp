#include "stats/descriptive.h"

#include <cmath>
#include <cstdio>

namespace sinet::stats {

void StreamingStats::add(double x) noexcept {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  if (x < min_) min_ = x;
  if (x > max_) max_ = x;
}

void StreamingStats::merge(const StreamingStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
}

double StreamingStats::mean() const noexcept {
  return n_ == 0 ? std::numeric_limits<double>::quiet_NaN() : mean_;
}

double StreamingStats::variance() const noexcept {
  if (n_ < 2) return std::numeric_limits<double>::quiet_NaN();
  return m2_ / static_cast<double>(n_ - 1);
}

double StreamingStats::stddev() const noexcept {
  const double v = variance();
  return std::isnan(v) ? v : std::sqrt(v);
}

Summary summarize(const StreamingStats& s) noexcept {
  Summary out;
  out.count = s.count();
  out.mean = s.mean();
  out.stddev = s.stddev();
  out.min = s.min();
  out.max = s.max();
  out.sum = s.sum();
  return out;
}

std::string to_string(const Summary& s) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%zu mean=%.4g sd=%.4g min=%.4g max=%.4g sum=%.4g", s.count,
                s.mean, s.stddev, s.min, s.max, s.sum);
  return buf;
}

}  // namespace sinet::stats
